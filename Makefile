# Developer entry points. CI runs the same steps (.github/workflows/ci.yml);
# `make lint` before pushing catches everything the lint job would.

GOBIN := $(shell go env GOPATH)/bin

.PHONY: build test race lint bench bench-ingest bench-baseline

build:
	go build ./...

test: build
	go test ./...

race:
	go test -race ./internal/engine/... ./internal/sqlmini/... ./internal/btree/... ./internal/pages/... ./internal/wal/...

# lint mirrors CI's lint job: formatting, stock vet, and sqlarraylint —
# the repo's own invariant suite (pinleak, latchorder, atomicfield,
# durasync, ctxloop; see internal/analysis). staticcheck additionally
# runs when it is installed; CI always installs it, offline dev
# environments may not have it.
lint:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; fi
	go vet ./...
	go test ./internal/analysis/...
	go install ./cmd/sqlarraylint
	go vet -vettool="$(GOBIN)/sqlarraylint" ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipped (CI runs it)"; fi

bench:
	go test -run='^$$' -bench='BenchmarkWALAppend|BenchmarkWALGroupCommit' -benchtime=300ms ./internal/wal
	go test -run='^$$' -bench='BenchmarkBufferPoolContention' -benchtime=300ms ./internal/pages
	go test -run='^$$' -bench='BenchmarkParallelAggregate|BenchmarkMixedScanDML' -benchtime=300ms ./internal/sqlmini
	go test -run='^$$' -bench='BenchmarkReadAll1MB|BenchmarkPartialRead4kOf1MB|BenchmarkReadRunsStencil|BenchmarkReadRunsPinnedStencil' -benchtime=300ms ./internal/blob
	$(MAKE) bench-ingest

# Ingest and partitioned-scan throughput: the COPY path vs the INSERT
# loop (rows/s, MB/s) and a Morton box query on the partitioned layout
# vs an unpartitioned full scan (pages/op).
bench-ingest:
	go test -run='^$$' -bench='BenchmarkBulkLoad' -benchtime=2x ./internal/engine
	go test -run='^$$' -bench='BenchmarkPartitionedScanSpeedup' -benchtime=300ms ./internal/partition

# Regenerate the checked-in benchmark reference point. Run on a quiet
# machine; the JSON records ns/op per benchmark plus the host's Go
# version so drift is attributable.
bench-baseline:
	./scripts/bench_baseline.sh > BENCH_baseline.json
	@echo "wrote BENCH_baseline.json"
