#!/bin/sh
# Emits BENCH_baseline.json: one short run of every perf-tracking
# benchmark, as {"meta": {...}, "benchmarks": [{"name", "iterations",
# "ns_per_op"}, ...]}. Run via `make bench-baseline` on a quiet machine.
set -eu

cd "$(dirname "$0")/.."

run_bench() {
	go test -run='^$' -bench="$1" -benchtime="${3:-300ms}" "$2" 2>/dev/null |
		grep -E '^Benchmark' || true
}

{
	run_bench 'BenchmarkWALAppend|BenchmarkWALGroupCommit' ./internal/wal
	run_bench 'BenchmarkBufferPoolContention|BenchmarkScanResistantEviction' ./internal/pages
	run_bench 'BenchmarkParallelAggregate|BenchmarkMixedScanDML' ./internal/sqlmini
	run_bench 'BenchmarkReadAll1MB|BenchmarkPartialRead4kOf1MB|BenchmarkReadRunsStencil|BenchmarkReadRunsPinnedStencil|BenchmarkCodec' ./internal/blob
	run_bench 'BenchmarkSubarrayPartialVsWholeBlob' . 1x
	run_bench 'BenchmarkBulkLoad' ./internal/engine 2x
	run_bench 'BenchmarkPartitionedScanSpeedup' ./internal/partition
	# The codec ratio table prints parseable "ratio-table:" lines with the
	# compression ratio and encode/decode throughput per codec/data shape.
	go test -run TestCompressionRatioTable -v ./internal/blob 2>/dev/null |
		grep -E 'ratio-table:' || true
} | awk -v gover="$(go version | awk '{print $3}')" -v date="$(date -u +%Y-%m-%d)" '
BEGIN {
	printf "{\n  \"meta\": {\n"
	printf "    \"date\": \"%s\",\n", date
	printf "    \"go\": \"%s\",\n", gover
	printf "    \"note\": \"short -benchtime runs; a reference point for trend comparison, not a gate\"\n"
	printf "  },\n  \"benchmarks\": [\n"
	n = 0
	r = 0
}
/^Benchmark/ {
	if (n++) printf ",\n"
	printf "    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s}", $1, $2, $3
}
/ratio-table:/ {
	# "ratio-table: name=lz/int64-seq ratio=25.31 enc_mbps=410 dec_mbps=1190"
	name = ""; ratio = ""; enc = ""; dec = ""
	for (i = 1; i <= NF; i++) {
		if (split($i, kv, "=") == 2) {
			if (kv[1] == "name") name = kv[2]
			else if (kv[1] == "ratio") ratio = kv[2]
			else if (kv[1] == "enc_mbps") enc = kv[2]
			else if (kv[1] == "dec_mbps") dec = kv[2]
		}
	}
	if (name != "")
		rows[r++] = sprintf("    {\"name\": \"%s\", \"ratio\": %s, \"enc_mbps\": %s, \"dec_mbps\": %s}", name, ratio, enc, dec)
}
END {
	printf "\n  ],\n  \"compression_ratios\": [\n"
	for (i = 0; i < r; i++) printf "%s%s\n", rows[i], (i < r - 1 ? "," : "")
	printf "  ]\n}\n"
}
'
