#!/bin/sh
# Emits BENCH_baseline.json: one short run of every perf-tracking
# benchmark, as {"meta": {...}, "benchmarks": [{"name", "iterations",
# "ns_per_op"}, ...]}. Run via `make bench-baseline` on a quiet machine.
set -eu

cd "$(dirname "$0")/.."

run_bench() {
	go test -run='^$' -bench="$1" -benchtime="${3:-300ms}" "$2" 2>/dev/null |
		grep -E '^Benchmark' || true
}

{
	run_bench 'BenchmarkWALAppend|BenchmarkWALGroupCommit' ./internal/wal
	run_bench 'BenchmarkBufferPoolContention' ./internal/pages
	run_bench 'BenchmarkParallelAggregate' ./internal/sqlmini
	run_bench 'BenchmarkReadAll1MB|BenchmarkPartialRead4kOf1MB|BenchmarkReadRunsStencil|BenchmarkReadRunsPinnedStencil' ./internal/blob
	run_bench 'BenchmarkSubarrayPartialVsWholeBlob' . 1x
} | awk -v gover="$(go version | awk '{print $3}')" -v date="$(date -u +%Y-%m-%d)" '
BEGIN {
	printf "{\n  \"meta\": {\n"
	printf "    \"date\": \"%s\",\n", date
	printf "    \"go\": \"%s\",\n", gover
	printf "    \"note\": \"short -benchtime runs; a reference point for trend comparison, not a gate\"\n"
	printf "  },\n  \"benchmarks\": [\n"
	n = 0
}
/^Benchmark/ {
	if (n++) printf ",\n"
	printf "    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s}", $1, $2, $3
}
END { printf "\n  ]\n}\n" }
'
