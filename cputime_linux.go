//go:build linux

package sqlarray

import (
	"syscall"
	"time"
)

// processCPUTime returns the cumulative user+system CPU time of this
// process — the measurement behind the paper's "CPU load" column.
func processCPUTime() time.Duration {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return time.Duration(ru.Utime.Sec+ru.Stime.Sec)*time.Second +
		time.Duration(ru.Utime.Usec+ru.Stime.Usec)*time.Microsecond
}
