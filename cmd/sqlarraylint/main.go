// Command sqlarraylint runs the project's invariant analyzers (pinleak,
// latchorder, atomicfield, durasync, ctxloop) as a `go vet` tool:
//
//	go build -o bin/sqlarraylint ./cmd/sqlarraylint
//	go vet -vettool=$(pwd)/bin/sqlarraylint ./...
//
// It speaks cmd/go's vettool protocol directly (the -V=full version
// handshake, the -flags JSON handshake, and the vet.cfg unit file), so it
// needs no dependency on golang.org/x/tools. Individual analyzers can be
// selected the same way as vet checks: `go vet -vettool=... -pinleak ./...`
// runs only pinleak; with no selection every analyzer runs.
//
// A config path can also be passed directly for debugging:
//
//	sqlarraylint /path/to/vet.cfg
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"sqlarray/internal/analysis"
)

const version = "sqlarraylint version v1.0.0"

func main() {
	// The -V flag must be handled before flag parsing quirks: cmd/go
	// invokes `tool -V=full` to build its cache key.
	for _, arg := range os.Args[1:] {
		if arg == "-V=full" || arg == "-V" || arg == "--V=full" {
			fmt.Println(version)
			return
		}
	}

	fs := flag.NewFlagSet("sqlarraylint", flag.ExitOnError)
	analyzers := analysis.All()
	sel := map[string]*bool{}
	for _, a := range analyzers {
		sel[a.Name] = fs.Bool(a.Name, false, a.Doc)
	}
	printFlags := fs.Bool("flags", false, "print analyzer flags in JSON (cmd/go handshake)")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: sqlarraylint [-analyzer...] vet.cfg\n\nanalyzers:\n")
		for _, a := range analyzers {
			fmt.Fprintf(os.Stderr, "  -%-12s %s\n", a.Name, a.Doc)
		}
	}
	if err := fs.Parse(os.Args[1:]); err != nil {
		os.Exit(2)
	}

	if *printFlags {
		type jsonFlag struct {
			Name  string
			Bool  bool
			Usage string
		}
		var out []jsonFlag
		for _, a := range analyzers {
			out = append(out, jsonFlag{Name: a.Name, Bool: true, Usage: a.Doc})
		}
		data, err := json.MarshalIndent(out, "", "\t")
		if err != nil {
			fatal(err)
		}
		os.Stdout.Write(data)
		fmt.Println()
		return
	}

	// No explicit selection → run the whole suite.
	enabled := map[string]bool{}
	any := false
	for name, on := range sel {
		if *on {
			enabled[name] = true
			any = true
		}
	}
	if !any {
		for _, a := range analyzers {
			enabled[a.Name] = true
		}
	}

	if fs.NArg() != 1 {
		fs.Usage()
		os.Exit(2)
	}

	n, err := analysis.RunUnit(fs.Arg(0), enabled, os.Stderr)
	if err != nil {
		fatal(err)
	}
	if n > 0 {
		os.Exit(2) // diagnostics reported; cmd/go prints them and fails the vet run
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "sqlarraylint: %v\n", err)
	os.Exit(1)
}
