// Command table1 regenerates the paper's Table 1: the five clustered-
// index-scan queries over the Tscalar/Tvector pair, reporting execution
// time, CPU load and I/O rate, plus the §6.2 storage-size comparison.
//
//	go run ./cmd/table1 -rows 500000
package main

import (
	"flag"
	"fmt"
	"os"

	"sqlarray"
)

func main() {
	rows := flag.Int("rows", 200_000, "rows per table (paper: 357e6)")
	mbps := flag.Float64("iomodel", 1150, "modeled sequential scan rate in MB/s (paper testbed: 1150)")
	sizes := flag.Bool("sizes", false, "also print the storage comparison (§6.2)")
	flag.Parse()

	db := sqlarray.NewDatabase()
	fmt.Fprintf(os.Stderr, "populating Tscalar and Tvector with %d rows each...\n", *rows)
	if err := sqlarray.SetupTable1(db, *rows); err != nil {
		fmt.Fprintln(os.Stderr, "setup:", err)
		os.Exit(1)
	}
	cfg := sqlarray.DefaultTable1Config()
	cfg.Rows = *rows
	cfg.Model.SeqReadBytesPerSec = *mbps * 1e6

	ms, err := sqlarray.RunTable1(db, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "run:", err)
		os.Exit(1)
	}

	fmt.Println("Table 1: query performance (reconstructed columns; see EXPERIMENTS.md)")
	fmt.Printf("%-5s %-12s %-10s %-10s %-12s %-10s\n",
		"Query", "Exec time", "CPU [%]", "I/O [MB/s]", "CPU meas.", "UDF calls")
	for _, m := range ms {
		fmt.Printf("%-5d %-12s %-10.0f %-10.0f %-12s %-10d\n",
			m.Index, m.Time.Round(0).String(), m.CPULoad, m.IOMBps, m.CPU.String(), m.UDFCalls)
	}

	bd, err := sqlarray.DeriveUDFCost(ms, *rows)
	if err != nil {
		fmt.Fprintln(os.Stderr, "derive:", err)
		os.Exit(1)
	}
	fmt.Println()
	fmt.Println("§7.1 derived costs (paper: ~2 us/call, >=38 % empty-call share, +22 % extraction)")
	fmt.Printf("  per-call cost (Q4-Q3):        %v\n", bd.PerCallCost)
	fmt.Printf("  per-empty-call cost (Q5-Q3):  %v\n", bd.PerEmptyCallCost)
	fmt.Printf("  empty-call share of Q5 CPU:   %.0f %%\n", 100*bd.EmptyCallShare)
	fmt.Printf("  item-extraction increment:    %+.0f %%\n", 100*bd.ExtractionIncrement)

	if *sizes {
		cmp, err := sqlarray.CompareTable1Storage(db)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sizes:", err)
			os.Exit(1)
		}
		fmt.Println()
		fmt.Println("§6.2 storage comparison (paper: vector table 43 % bigger)")
		fmt.Printf("  Tscalar: %d rows, %d leaf pages, %d row bytes\n",
			cmp.ScalarStats.Rows, cmp.ScalarStats.LeafPages, cmp.ScalarStats.RowBytes)
		fmt.Printf("  Tvector: %d rows, %d leaf pages, %d row bytes\n",
			cmp.VectorStats.Rows, cmp.VectorStats.LeafPages, cmp.VectorStats.RowBytes)
		fmt.Printf("  vector/scalar bytes: %.2fx   pages: %.2fx\n", cmp.ByteRatio, cmp.PageRatio)
	}
}
