// Command sqlsh is an interactive shell for the sqlarray dialect: it
// creates a database with the full T-SQL array surface registered, a
// demo table, and executes one SELECT per line. Array-subscript sugar
// (§8) is enabled with the \col meta command.
//
//	go run ./cmd/sqlsh
//	sql> SELECT FloatArray.Sum(FloatArray.Vector_3(1,2,3)) FROM dual
//	sql> \col v FloatArray
//	sql> SELECT v[0], v[1:3] FROM demo WHERE id < 3
package main

import (
	"bufio"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"strings"

	"sqlarray"
	"sqlarray/internal/core"
	"sqlarray/internal/engine"
	"sqlarray/internal/obs"
	"sqlarray/internal/partition"
	"sqlarray/internal/sqlmini"
)

func main() {
	// The shell runs over an in-memory disk with an in-memory WAL, so
	// DML is logged exactly as a file-backed database would log it and
	// .stats/.checkpoint show the real durability traffic.
	db := sqlarray.NewDatabaseWith(sqlarray.Options{WAL: sqlarray.NewMemWAL()})
	if err := createDemoTable(db); err != nil {
		fmt.Fprintln(os.Stderr, "sqlsh:", err)
		os.Exit(1)
	}
	// Every statement's I/O is measured as a registry snapshot delta.
	// Sharded tables open their member databases against this same
	// registry, so scatter queries report their full fan-out I/O here
	// instead of only the primary database's share.
	reg := db.Metrics()
	shards := map[string]*partition.Store{}
	cols := sqlarray.ArrayColumns{}
	fmt.Println(`sqlarray shell — one statement per line (SELECT, INSERT, UPDATE, DELETE,
EXPLAIN [ANALYZE] SELECT; UPDATE supports in-place subarray assignment:
SET v[1:3] = ...); \col <name> <schema> maps a column for subscript sugar;
.stats prints the last statement's buffer-pool, blob and WAL I/O;
.load <table> <file.csv> bulk-loads a headerless CSV file; .checkpoint
flushes and bounds recovery; .shard <table> <parts> [rows] creates a
range-partitioned demo table queried scatter-gather; .serve-metrics <addr>
exposes /metrics (Prometheus) and /debug/vars (JSON) over HTTP; \q quits.
A table "demo"(id BIGINT, v VARBINARY short float 5-vector) is preloaded
with 10 rows.`)
	sc := bufio.NewScanner(os.Stdin)
	var last obs.Snapshot
	for {
		fmt.Print("sql> ")
		if !sc.Scan() {
			break
		}
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
			continue
		case line == `\q` || line == "exit" || line == "quit":
			return
		case line == ".stats" || line == `\stats`:
			if last == nil {
				fmt.Println("no query has run yet")
				continue
			}
			printStats(last)
			continue
		case line == ".checkpoint" || line == `\checkpoint`:
			if err := db.Checkpoint(); err != nil {
				fmt.Println("error:", err)
				continue
			}
			ws := db.WAL().Stats()
			fmt.Printf("checkpoint done: WAL at LSN %d, %d segment(s), %d checkpoint(s) total\n",
				db.WAL().DurableLSN(), db.WAL().Segments(), ws.Checkpoints)
			continue
		case strings.HasPrefix(line, ".serve-metrics"):
			parts := strings.Fields(line)
			if len(parts) != 2 {
				fmt.Println("usage: .serve-metrics <addr>   e.g. .serve-metrics localhost:9090")
				continue
			}
			addr := parts[1]
			go func() {
				if err := http.ListenAndServe(addr, obs.Handler(reg)); err != nil {
					fmt.Fprintln(os.Stderr, "serve-metrics:", err)
				}
			}()
			fmt.Printf("serving /metrics (Prometheus) and /debug/vars (JSON) on http://%s\n", addr)
			continue
		case strings.HasPrefix(line, ".shard "):
			parts := strings.Fields(line)
			if len(parts) < 3 || len(parts) > 4 {
				fmt.Println("usage: .shard <table> <parts> [rows]")
				continue
			}
			nParts, err := strconv.Atoi(parts[2])
			rows := int64(1000)
			if err == nil && len(parts) == 4 {
				rows, err = strconv.ParseInt(parts[3], 10, 64)
			}
			if err != nil || nParts < 1 || rows < 1 {
				fmt.Println("usage: .shard <table> <parts> [rows]")
				continue
			}
			store, err := createShardedTable(reg, parts[1], nParts, rows)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			shards[parts[1]] = store
			fmt.Printf("sharded table %q: %d rows over %d members (id BIGINT, x FLOAT), queried scatter-gather\n",
				parts[1], rows, nParts)
			continue
		case strings.HasPrefix(line, ".load ") || strings.HasPrefix(line, `\load `):
			parts := strings.Fields(line)
			if len(parts) != 3 {
				fmt.Println("usage: .load <table> <file.csv>")
				continue
			}
			before := reg.Snapshot()
			st, err := loadCSV(db, parts[1], parts[2])
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Printf("loaded %d rows: %s on-page, %s blob data, %d leaf + %d blob pages\n",
				st.Rows, fmtBytes(uint64(st.RowBytes)), fmtBytes(uint64(st.BlobBytes)),
				st.LeafPages, st.BlobPages)
			last = reg.Snapshot().Delta(before)
			continue
		case strings.HasPrefix(line, `\col `):
			parts := strings.Fields(line)
			if len(parts) != 3 {
				fmt.Println(`usage: \col <column> <schema>, e.g. \col v FloatArray`)
				continue
			}
			cols[parts[1]] = parts[2]
			fmt.Printf("mapped %s -> %s\n", parts[1], parts[2])
			continue
		}
		before := reg.Snapshot()
		runStatement(db, shards, cols, line)
		last = reg.Snapshot().Delta(before)
	}
}

// runStatement routes one SQL line: sharded tables go scatter-gather
// through their partition store, everything else runs on the primary
// database (streaming for SELECT, Exec for the rest).
func runStatement(db *sqlarray.Database, shards map[string]*partition.Store, cols sqlarray.ArrayColumns, line string) {
	if store := shardTarget(shards, line); store != nil {
		if strings.HasPrefix(strings.ToUpper(line), "EXPLAIN") {
			plan, stats, err := store.Explain(line, sqlmini.ExecOptions{})
			if err != nil {
				fmt.Println("error:", err)
				return
			}
			fmt.Println(plan)
			fmt.Printf("(%d of %d partition(s) scanned)\n", stats.Scanned, stats.Partitions)
			return
		}
		res, stats, err := store.Query(line, sqlmini.ExecOptions{})
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		printResult(res)
		fmt.Printf("(%d of %d partition(s) scanned)\n", stats.Scanned, stats.Partitions)
		return
	}
	if isSelect(line) {
		rows, err := db.QueryArrayRows(line, cols)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		printRows(rows)
		return
	}
	res, err := db.ExecArray(line, cols)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	if res.Plan != "" {
		fmt.Println(res.Plan)
		return
	}
	fmt.Printf("(%d row(s) affected)\n", res.RowsAffected)
}

// shardTarget returns the partition store the statement targets, if its
// FROM table is sharded. Only plain SELECT / EXPLAIN parse here; array
// sugar never applies to shard tables (they are (id, x) only).
func shardTarget(shards map[string]*partition.Store, line string) *partition.Store {
	if len(shards) == 0 {
		return nil
	}
	stmt, err := sqlmini.ParseStatement(line)
	if err != nil {
		return nil
	}
	switch s := stmt.(type) {
	case *sqlmini.SelectStmt:
		return shards[s.Table]
	case *sqlmini.ExplainStmt:
		return shards[s.Stmt.Table]
	}
	return nil
}

// createShardedTable opens nParts member databases against the shared
// registry, splits [0, rows) evenly, and bulk-loads id, x = id/2.
func createShardedTable(reg *obs.Registry, name string, nParts int, rows int64) (*partition.Store, error) {
	splits := make([]int64, nParts-1)
	for i := 1; i < nParts; i++ {
		splits[i-1] = rows*int64(i)/int64(nParts) - 1
	}
	spec := partition.Spec{Mode: partition.RangeMode, Splits: splits}
	dbs := make([]*engine.DB, nParts)
	for i := range dbs {
		m, err := engine.Open(engine.Options{Metrics: reg})
		if err != nil {
			return nil, err
		}
		dbs[i] = m
	}
	store, err := partition.New(spec, dbs)
	if err != nil {
		return nil, err
	}
	s, err := engine.NewSchema(
		engine.Column{Name: "id", Type: engine.ColInt64},
		engine.Column{Name: "x", Type: engine.ColFloat64},
	)
	if err != nil {
		return nil, err
	}
	if err := store.CreateTable(name, s); err != nil {
		return nil, err
	}
	var vals [][]engine.Value
	for i := int64(0); i < rows; i++ {
		vals = append(vals, []engine.Value{engine.IntValue(i), engine.FloatValue(float64(i) / 2)})
	}
	if _, err := store.BulkLoad(name, engine.NewValuesSource(vals), engine.BulkOptions{}); err != nil {
		return nil, err
	}
	return store, nil
}

// isSelect routes a line to the streaming query path; everything else
// goes through Exec (which also handles SELECT, but materialized).
func isSelect(line string) bool {
	return len(line) >= 6 && strings.EqualFold(line[:6], "SELECT")
}

// printStats renders a registry snapshot delta in the shell's .stats
// format. The delta spans every database attached to the registry —
// the primary plus all shard members — which is what makes scatter
// queries report their full I/O.
func printStats(d obs.Snapshot) {
	logical, physical := d.Get("pages.logical_reads"), d.Get("pages.physical_reads")
	// A statement that read nothing has no meaningful hit ratio; the old
	// "100.0%" default was a lie (and 0/0 in disguise).
	hit := "n/a"
	if logical > 0 {
		hit = fmt.Sprintf("%.1f%%", 100*(1-float64(physical)/float64(logical)))
	}
	fmt.Printf("buffer pool: %d logical reads, %d physical (%s hit ratio), %s from disk\n",
		logical, physical, hit, fmtBytes(d.Get("pages.bytes_read")))
	fmt.Printf("eviction:    %d admissions, %d promotions to protected, %d scan evictions\n",
		d.Get("pages.admissions"), d.Get("pages.promotions"), d.Get("pages.scan_evictions"))
	fmt.Printf("versions:    %d copy-on-write page copies, %d snapshot version reads, %d versions retired\n",
		d.Get("pages.cow_copies"), d.Get("pages.snapshot_reads"), d.Get("pages.versions_retired"))
	fmt.Printf("blob store:  %d chunk reads, %d directory reads, %s of blob data, %d stream calls, %d chunks written\n",
		d.Get("blob.chunk_reads"), d.Get("blob.directory_reads"),
		fmtBytes(d.Get("blob.bytes_read")), d.Get("blob.stream_calls"), d.Get("blob.chunks_written"))
	if cw, lw := d.Get("blob.compressed_bytes_written"), d.Get("blob.bytes_written"); cw > 0 && lw > 0 {
		fmt.Printf("compression: wrote %s stored for %s logical (%.2fx)\n",
			fmtBytes(cw), fmtBytes(lw), float64(lw)/float64(cw))
	}
	if cr, lr := d.Get("blob.compressed_bytes_read"), d.Get("blob.bytes_read"); cr > 0 && lr > 0 {
		fmt.Printf("compression: read %s stored for %s logical (%.2fx)\n",
			fmtBytes(cr), fmtBytes(lr), float64(lr)/float64(cr))
	}
	fmt.Printf("WAL:         %d records, %s logged, %d syncs, %d group-commit piggybacks\n",
		d.Get("wal.records"), fmtBytes(d.Get("wal.bytes_logged")),
		d.Get("wal.syncs"), d.Get("wal.group_commit_piggybacks"))
}

func fmtBytes(n uint64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f kB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%d B", n)
}

// loadCSV bulk-loads a headerless CSV file through the parallel parse
// pipeline and the COPY path.
func loadCSV(db *sqlarray.Database, table, path string) (sqlarray.BulkStats, error) {
	f, err := os.Open(path)
	if err != nil {
		return sqlarray.BulkStats{}, err
	}
	defer f.Close()
	return db.CopyCSV(table, bufio.NewReader(f), sqlarray.CSVOptions{}, sqlarray.BulkOptions{})
}

func createDemoTable(db *sqlarray.Database) error {
	s, err := engine.NewSchema(
		engine.Column{Name: "id", Type: engine.ColInt64},
		engine.Column{Name: "v", Type: engine.ColVarBinary},
	)
	if err != nil {
		return err
	}
	tbl, err := db.CreateTable("demo", s)
	if err != nil {
		return err
	}
	for i := 0; i < 10; i++ {
		x := float64(i)
		a := sqlarray.Vector(x, 10*x, 100*x, x*x, 1)
		if err := tbl.Insert([]engine.Value{
			engine.IntValue(int64(i)), engine.BinaryValue(a.Bytes()),
		}); err != nil {
			return err
		}
	}
	return nil
}

// printResult prints a materialized result (the scatter-gather path).
func printResult(res *sqlarray.Result) {
	fmt.Println(strings.Join(res.Columns, " | "))
	for _, row := range res.Rows {
		cells := make([]string, len(row))
		for i, v := range row {
			cells[i] = renderValue(v)
		}
		fmt.Println(strings.Join(cells, " | "))
	}
	fmt.Printf("(%d row(s))\n", len(res.Rows))
}

// printRows streams the result: each row is printed as it comes off the
// operator pipeline, so a TOP n over a huge table prints immediately.
func printRows(rows *sqlarray.Rows) {
	defer func() {
		if err := rows.Close(); err != nil {
			fmt.Println("close error:", err)
		}
	}()
	fmt.Println(strings.Join(rows.Columns(), " | "))
	n := 0
	for rows.Next() {
		row := rows.Row()
		cells := make([]string, len(row))
		for i, v := range row {
			cells[i] = renderValue(v)
		}
		fmt.Println(strings.Join(cells, " | "))
		n++
	}
	if err := rows.Err(); err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("(%d row(s))\n", n)
}

// renderValue pretty-prints binary cells that hold valid arrays.
func renderValue(v engine.Value) string {
	if v.Kind == engine.ColVarBinary || v.Kind == engine.ColVarBinaryMax {
		if a, err := core.Wrap(v.B); err == nil {
			return core.Format(a)
		}
	}
	return v.String()
}
