// Command sqlsh is an interactive shell for the sqlarray dialect: it
// creates a database with the full T-SQL array surface registered, a
// demo table, and executes one SELECT per line. Array-subscript sugar
// (§8) is enabled with the \col meta command.
//
//	go run ./cmd/sqlsh
//	sql> SELECT FloatArray.Sum(FloatArray.Vector_3(1,2,3)) FROM dual
//	sql> \col v FloatArray
//	sql> SELECT v[0], v[1:3] FROM demo WHERE id < 3
package main

import (
	"bufio"
	"fmt"
	"os"
	"strings"

	"sqlarray"
	"sqlarray/internal/core"
	"sqlarray/internal/engine"
)

func main() {
	db := sqlarray.NewDatabase()
	if err := createDemoTable(db); err != nil {
		fmt.Fprintln(os.Stderr, "sqlsh:", err)
		os.Exit(1)
	}
	cols := sqlarray.ArrayColumns{}
	fmt.Println(`sqlarray shell — one SELECT per line; \col <name> <schema> maps a column for
subscript sugar; \q quits. A table "demo"(id BIGINT, v VARBINARY short float
5-vector) is preloaded with 10 rows.`)
	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("sql> ")
		if !sc.Scan() {
			break
		}
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
			continue
		case line == `\q` || line == "exit" || line == "quit":
			return
		case strings.HasPrefix(line, `\col `):
			parts := strings.Fields(line)
			if len(parts) != 3 {
				fmt.Println(`usage: \col <column> <schema>, e.g. \col v FloatArray`)
				continue
			}
			cols[parts[1]] = parts[2]
			fmt.Printf("mapped %s -> %s\n", parts[1], parts[2])
			continue
		}
		rows, err := db.QueryArrayRows(line, cols)
		if err != nil {
			fmt.Println("error:", err)
			continue
		}
		printRows(rows)
	}
}

func createDemoTable(db *sqlarray.Database) error {
	s, err := engine.NewSchema(
		engine.Column{Name: "id", Type: engine.ColInt64},
		engine.Column{Name: "v", Type: engine.ColVarBinary},
	)
	if err != nil {
		return err
	}
	tbl, err := db.CreateTable("demo", s)
	if err != nil {
		return err
	}
	for i := 0; i < 10; i++ {
		x := float64(i)
		a := sqlarray.Vector(x, 10*x, 100*x, x*x, 1)
		if err := tbl.Insert([]engine.Value{
			engine.IntValue(int64(i)), engine.BinaryValue(a.Bytes()),
		}); err != nil {
			return err
		}
	}
	return nil
}

// printRows streams the result: each row is printed as it comes off the
// operator pipeline, so a TOP n over a huge table prints immediately.
func printRows(rows *sqlarray.Rows) {
	defer rows.Close()
	fmt.Println(strings.Join(rows.Columns(), " | "))
	n := 0
	for rows.Next() {
		row := rows.Row()
		cells := make([]string, len(row))
		for i, v := range row {
			cells[i] = renderValue(v)
		}
		fmt.Println(strings.Join(cells, " | "))
		n++
	}
	if err := rows.Err(); err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("(%d row(s))\n", n)
}

// renderValue pretty-prints binary cells that hold valid arrays.
func renderValue(v engine.Value) string {
	if v.Kind == engine.ColVarBinary || v.Kind == engine.ColVarBinaryMax {
		if a, err := core.Wrap(v.B); err == nil {
			return core.Format(a)
		}
	}
	return v.String()
}
