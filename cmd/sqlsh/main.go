// Command sqlsh is an interactive shell for the sqlarray dialect: it
// creates a database with the full T-SQL array surface registered, a
// demo table, and executes one SELECT per line. Array-subscript sugar
// (§8) is enabled with the \col meta command.
//
//	go run ./cmd/sqlsh
//	sql> SELECT FloatArray.Sum(FloatArray.Vector_3(1,2,3)) FROM dual
//	sql> \col v FloatArray
//	sql> SELECT v[0], v[1:3] FROM demo WHERE id < 3
package main

import (
	"bufio"
	"fmt"
	"os"
	"strings"

	"sqlarray"
	"sqlarray/internal/blob"
	"sqlarray/internal/core"
	"sqlarray/internal/engine"
	"sqlarray/internal/pages"
	"sqlarray/internal/wal"
)

func main() {
	// The shell runs over an in-memory disk with an in-memory WAL, so
	// DML is logged exactly as a file-backed database would log it and
	// .stats/.checkpoint show the real durability traffic.
	db := sqlarray.NewDatabaseWith(sqlarray.Options{WAL: sqlarray.NewMemWAL()})
	if err := createDemoTable(db); err != nil {
		fmt.Fprintln(os.Stderr, "sqlsh:", err)
		os.Exit(1)
	}
	cols := sqlarray.ArrayColumns{}
	fmt.Println(`sqlarray shell — one statement per line (SELECT, INSERT, UPDATE, DELETE;
UPDATE supports in-place subarray assignment: SET v[1:3] = ...);
\col <name> <schema> maps a column for subscript sugar; .stats prints the
last statement's buffer-pool, blob and WAL I/O; .load <table> <file.csv>
bulk-loads a headerless CSV file (INT64/FLOAT64 fields plain, binary
columns hex, empty = NULL); .checkpoint flushes and bounds recovery;
\q quits. A table "demo"(id BIGINT, v VARBINARY short float 5-vector) is
preloaded with 10 rows.`)
	sc := bufio.NewScanner(os.Stdin)
	var last queryStats
	haveLast := false
	for {
		fmt.Print("sql> ")
		if !sc.Scan() {
			break
		}
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
			continue
		case line == `\q` || line == "exit" || line == "quit":
			return
		case line == ".stats" || line == `\stats`:
			if !haveLast {
				fmt.Println("no query has run yet")
				continue
			}
			last.print()
			continue
		case line == ".checkpoint" || line == `\checkpoint`:
			if err := db.Checkpoint(); err != nil {
				fmt.Println("error:", err)
				continue
			}
			ws := db.WAL().Stats()
			fmt.Printf("checkpoint done: WAL at LSN %d, %d segment(s), %d checkpoint(s) total\n",
				db.WAL().DurableLSN(), db.WAL().Segments(), ws.Checkpoints)
			continue
		case strings.HasPrefix(line, ".load ") || strings.HasPrefix(line, `\load `):
			parts := strings.Fields(line)
			if len(parts) != 3 {
				fmt.Println("usage: .load <table> <file.csv>")
				continue
			}
			p0, b0, w0 := db.Pool().Stats(), db.Blobs().Stats(), db.WAL().Stats()
			st, err := loadCSV(db, parts[1], parts[2])
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Printf("loaded %d rows: %s on-page, %s blob data, %d leaf + %d blob pages\n",
				st.Rows, fmtBytes(uint64(st.RowBytes)), fmtBytes(uint64(st.BlobBytes)),
				st.LeafPages, st.BlobPages)
			last = diffStats(p0, b0, w0, db.Pool().Stats(), db.Blobs().Stats(), db.WAL().Stats())
			haveLast = true
			continue
		case strings.HasPrefix(line, `\col `):
			parts := strings.Fields(line)
			if len(parts) != 3 {
				fmt.Println(`usage: \col <column> <schema>, e.g. \col v FloatArray`)
				continue
			}
			cols[parts[1]] = parts[2]
			fmt.Printf("mapped %s -> %s\n", parts[1], parts[2])
			continue
		}
		p0, b0, w0 := db.Pool().Stats(), db.Blobs().Stats(), db.WAL().Stats()
		if isSelect(line) {
			rows, err := db.QueryArrayRows(line, cols)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			printRows(rows)
		} else {
			res, err := db.ExecArray(line, cols)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Printf("(%d row(s) affected)\n", res.RowsAffected)
		}
		last = diffStats(p0, b0, w0, db.Pool().Stats(), db.Blobs().Stats(), db.WAL().Stats())
		haveLast = true
	}
}

// isSelect routes a line to the streaming query path; everything else
// goes through Exec (which also handles SELECT, but materialized).
func isSelect(line string) bool {
	return len(line) >= 6 && strings.EqualFold(line[:6], "SELECT")
}

// queryStats is the per-query delta of the pool and blob counters, the
// interactive window onto the subarray I/O pushdown: a sliced read of a
// big array shows chunk reads collapsing while the hit ratio climbs.
type queryStats struct {
	logical, physical, bytesRead          uint64
	admissions, promotions, scanEvictions uint64
	cowCopies, snapReads, versionsRetired uint64
	dirReads, chunkReads, blobBytes       uint64
	streamCalls                           uint64
	chunksWritten                         uint64
	compWritten, compRead                 uint64
	logicalWritten, logicalRead           uint64
	walRecords, walBytes, walSyncs        uint64
	walPiggybacks                         uint64
}

func diffStats(p0 pages.Stats, b0 blob.Stats, w0 wal.Stats, p1 pages.Stats, b1 blob.Stats, w1 wal.Stats) queryStats {
	return queryStats{
		logical:         p1.LogicalReads - p0.LogicalReads,
		physical:        p1.PhysicalReads - p0.PhysicalReads,
		bytesRead:       p1.BytesRead - p0.BytesRead,
		admissions:      p1.Admissions - p0.Admissions,
		promotions:      p1.Promotions - p0.Promotions,
		scanEvictions:   p1.ScanEvictions - p0.ScanEvictions,
		cowCopies:       p1.CowCopies - p0.CowCopies,
		snapReads:       p1.SnapshotReads - p0.SnapshotReads,
		versionsRetired: p1.VersionsRetired - p0.VersionsRetired,
		dirReads:        b1.DirectoryReads - b0.DirectoryReads,
		chunkReads:      b1.ChunkReads - b0.ChunkReads,
		blobBytes:       b1.BytesRead - b0.BytesRead,
		streamCalls:     b1.StreamCalls - b0.StreamCalls,
		chunksWritten:   b1.ChunksWritten - b0.ChunksWritten,
		compWritten:     b1.CompressedBytesWritten - b0.CompressedBytesWritten,
		compRead:        b1.CompressedBytesRead - b0.CompressedBytesRead,
		logicalWritten:  b1.BytesWritten - b0.BytesWritten,
		logicalRead:     b1.BytesRead - b0.BytesRead,
		walRecords:      w1.Records - w0.Records,
		walBytes:        w1.BytesLogged - w0.BytesLogged,
		walSyncs:        w1.Syncs - w0.Syncs,
		walPiggybacks:   w1.GroupCommitPiggybacks - w0.GroupCommitPiggybacks,
	}
}

func (q queryStats) print() {
	// A statement that read nothing has no meaningful hit ratio; the old
	// "100.0%" default was a lie (and 0/0 in disguise).
	hit := "n/a"
	if q.logical > 0 {
		hit = fmt.Sprintf("%.1f%%", 100*(1-float64(q.physical)/float64(q.logical)))
	}
	fmt.Printf("buffer pool: %d logical reads, %d physical (%s hit ratio), %s from disk\n",
		q.logical, q.physical, hit, fmtBytes(q.bytesRead))
	fmt.Printf("eviction:    %d admissions, %d promotions to protected, %d scan evictions\n",
		q.admissions, q.promotions, q.scanEvictions)
	fmt.Printf("versions:    %d copy-on-write page copies, %d snapshot version reads, %d versions retired\n",
		q.cowCopies, q.snapReads, q.versionsRetired)
	fmt.Printf("blob store:  %d chunk reads, %d directory reads, %s of blob data, %d stream calls, %d chunks written\n",
		q.chunkReads, q.dirReads, fmtBytes(q.blobBytes), q.streamCalls, q.chunksWritten)
	if q.compWritten > 0 && q.logicalWritten > 0 {
		fmt.Printf("compression: wrote %s stored for %s logical (%.2fx)\n",
			fmtBytes(q.compWritten), fmtBytes(q.logicalWritten),
			float64(q.logicalWritten)/float64(q.compWritten))
	}
	if q.compRead > 0 && q.logicalRead > 0 {
		fmt.Printf("compression: read %s stored for %s logical (%.2fx)\n",
			fmtBytes(q.compRead), fmtBytes(q.logicalRead),
			float64(q.logicalRead)/float64(q.compRead))
	}
	fmt.Printf("WAL:         %d records, %s logged, %d syncs, %d group-commit piggybacks\n",
		q.walRecords, fmtBytes(q.walBytes), q.walSyncs, q.walPiggybacks)
}

func fmtBytes(n uint64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f kB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%d B", n)
}

// loadCSV bulk-loads a headerless CSV file through the parallel parse
// pipeline and the COPY path.
func loadCSV(db *sqlarray.Database, table, path string) (sqlarray.BulkStats, error) {
	f, err := os.Open(path)
	if err != nil {
		return sqlarray.BulkStats{}, err
	}
	defer f.Close()
	return db.CopyCSV(table, bufio.NewReader(f), sqlarray.CSVOptions{}, sqlarray.BulkOptions{})
}

func createDemoTable(db *sqlarray.Database) error {
	s, err := engine.NewSchema(
		engine.Column{Name: "id", Type: engine.ColInt64},
		engine.Column{Name: "v", Type: engine.ColVarBinary},
	)
	if err != nil {
		return err
	}
	tbl, err := db.CreateTable("demo", s)
	if err != nil {
		return err
	}
	for i := 0; i < 10; i++ {
		x := float64(i)
		a := sqlarray.Vector(x, 10*x, 100*x, x*x, 1)
		if err := tbl.Insert([]engine.Value{
			engine.IntValue(int64(i)), engine.BinaryValue(a.Bytes()),
		}); err != nil {
			return err
		}
	}
	return nil
}

// printRows streams the result: each row is printed as it comes off the
// operator pipeline, so a TOP n over a huge table prints immediately.
func printRows(rows *sqlarray.Rows) {
	defer func() {
		if err := rows.Close(); err != nil {
			fmt.Println("close error:", err)
		}
	}()
	fmt.Println(strings.Join(rows.Columns(), " | "))
	n := 0
	for rows.Next() {
		row := rows.Row()
		cells := make([]string, len(row))
		for i, v := range row {
			cells[i] = renderValue(v)
		}
		fmt.Println(strings.Join(cells, " | "))
		n++
	}
	if err := rows.Err(); err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("(%d row(s))\n", n)
}

// renderValue pretty-prints binary cells that hold valid arrays.
func renderValue(v engine.Value) string {
	if v.Kind == engine.ColVarBinary || v.Kind == engine.ColVarBinaryMax {
		if a, err := core.Wrap(v.B); err == nil {
			return core.Format(a)
		}
	}
	return v.String()
}
