// Command arraytool is a small inspector for the array blob format:
// it parses the bracketed text form, prints the header, and can apply
// reshape/subarray/reduce operations — a command-line tour of the §5.1
// function surface.
//
//	go run ./cmd/arraytool -parse '[[1,2,3],[4,5,6]]' -reshape 3,2 -sum
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"sqlarray"
)

func parseDims(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]int, len(parts))
	for i, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad dimension %q", p)
		}
		out[i] = n
	}
	return out, nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "arraytool:", err)
	os.Exit(1)
}

func main() {
	text := flag.String("parse", "", "array literal, e.g. '[[1,2],[3,4]]'")
	elem := flag.String("type", "float", "element type: tinyint|smallint|int|bigint|real|float|complex|doublecomplex")
	reshape := flag.String("reshape", "", "reshape to comma-separated dims")
	subOff := flag.String("suboff", "", "subarray offset (with -subsize)")
	subSize := flag.String("subsize", "", "subarray size")
	collapse := flag.Bool("collapse", false, "collapse unit dims in subarray")
	sum := flag.Bool("sum", false, "print SUM/AVG/MIN/MAX of the result")
	hex := flag.Bool("hex", false, "print the serialized blob in hex")
	flag.Parse()

	if *text == "" {
		flag.Usage()
		os.Exit(2)
	}
	et, err := sqlarray.Float64, error(nil)
	if *elem != "float" {
		et, err = elemByName(*elem)
		if err != nil {
			fail(err)
		}
	}
	a, err := sqlarray.Parse(et, *text)
	if err != nil {
		fail(err)
	}
	if *reshape != "" {
		dims, err := parseDims(*reshape)
		if err != nil {
			fail(err)
		}
		if a, err = a.Reshape(dims...); err != nil {
			fail(err)
		}
	}
	if *subOff != "" || *subSize != "" {
		off, err := parseDims(*subOff)
		if err != nil {
			fail(err)
		}
		size, err := parseDims(*subSize)
		if err != nil {
			fail(err)
		}
		if a, err = a.Subarray(off, size, *collapse); err != nil {
			fail(err)
		}
	}
	h := a.Header()
	fmt.Printf("header:  %s\n", h.String())
	fmt.Printf("bytes:   %d (header %d + payload %d)\n",
		h.TotalBytes(), h.EncodedSize(), h.DataBytes())
	fmt.Printf("value:   %s\n", sqlarray.Format(a))
	if *sum {
		lo, hi := a.MinMax()
		fmt.Printf("sum=%g avg=%g min=%g max=%g std=%g\n", a.Sum(), a.Mean(), lo, hi, a.Std())
	}
	if *hex {
		fmt.Printf("blob:    %x\n", a.Bytes())
	}
}

func elemByName(name string) (sqlarray.ElemType, error) {
	for _, et := range []sqlarray.ElemType{
		sqlarray.Int8, sqlarray.Int16, sqlarray.Int32, sqlarray.Int64,
		sqlarray.Float32, sqlarray.Float64, sqlarray.Complex64, sqlarray.Complex128,
	} {
		if et.String() == name {
			return et, nil
		}
	}
	return 0, fmt.Errorf("unknown element type %q", name)
}
