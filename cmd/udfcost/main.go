// Command udfcost isolates the UDF-boundary cost of §7.1 with direct
// micro-measurements: empty call, item-extraction call, and the native
// (no-boundary) baseline, at several argument sizes.
//
//	go run ./cmd/udfcost -calls 2000000
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"sqlarray"
	"sqlarray/internal/core"
	"sqlarray/internal/engine"
)

func measure(label string, calls int, f func() error) (time.Duration, error) {
	start := time.Now()
	for i := 0; i < calls; i++ {
		if err := f(); err != nil {
			return 0, fmt.Errorf("%s: %w", label, err)
		}
	}
	total := time.Since(start)
	per := total / time.Duration(calls)
	fmt.Printf("  %-28s %10v/call   (%v total)\n", label, per, total.Round(time.Millisecond))
	return per, nil
}

func main() {
	calls := flag.Int("calls", 1_000_000, "boundary crossings per measurement")
	flag.Parse()

	db := sqlarray.NewDatabase()
	db.Funcs().Register("dbo.EmptyFunction", 2, func(args []engine.Value) (engine.Value, error) {
		return engine.FloatValue(0), nil
	})
	emptyDef, err := db.Funcs().Lookup("dbo.EmptyFunction")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	itemDef, err := db.Funcs().Lookup("floatarray.item_1")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("UDF boundary cost, %d calls each (paper §7.1: ~2 us/call on the 2008 CLR)\n\n", *calls)
	for _, n := range []int{5, 100, 997} {
		vals := make([]float64, n)
		arr, err := core.FromFloat64s(core.Short, core.Float64, vals, n)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		args := []engine.Value{engine.BinaryValue(arr.Bytes()), engine.IntValue(0)}
		fmt.Printf("argument: %d-element float vector (%d bytes)\n", n, len(arr.Bytes()))
		perEmpty, err := measure("empty UDF", *calls, func() error {
			_, err := db.Funcs().Call(emptyDef, args)
			return err
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		perItem, err := measure("Item_1 UDF", *calls, func() error {
			_, err := db.Funcs().Call(itemDef, args)
			return err
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		start := time.Now()
		sum := 0.0
		for i := 0; i < *calls; i++ {
			sum += arr.FloatAt(0)
		}
		perNative := time.Since(start) / time.Duration(*calls)
		_ = sum
		fmt.Printf("  %-28s %10v/call\n", "native item (no boundary)", perNative)
		if perItem > 0 {
			fmt.Printf("  boundary share of Item call: %.0f %%   extraction vs empty: %+.0f %%\n\n",
				100*float64(perEmpty)/float64(perItem),
				100*(float64(perItem)-float64(perEmpty))/float64(perEmpty))
		}
	}
}
