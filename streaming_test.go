package sqlarray

// Golden-equivalence tests for the streaming entry points: every query
// the integration suite runs must return identical results through
// QueryRows (the Volcano pipeline consumed incrementally) as through the
// materializing Query.

import (
	"bytes"
	"testing"

	"sqlarray/internal/engine"
)

func sameValue(a, b engine.Value) bool {
	if a.Kind != b.Kind {
		return false
	}
	switch a.Kind {
	case 0:
		return true
	case engine.ColInt64:
		return a.I == b.I
	case engine.ColFloat64:
		return a.F == b.F || (a.F != a.F && b.F != b.F)
	default:
		return bytes.Equal(a.B, b.B)
	}
}

func TestQueryRowsMatchesQuery(t *testing.T) {
	db := NewDatabase()
	vectorTable(t, db, "obs", 200)
	queries := []string{
		"SELECT SUM(FloatArray.Item_1(v, 0)) FROM obs",
		"SELECT MAX(FloatArray.Sum(v)) FROM obs",
		"SELECT COUNT(*) FROM obs WHERE FloatArray.Item_1(v, 2) > 100",
		"SELECT FloatArray.Item_1(FloatArray.Vector_5(1.0, 2.0, 3.0, 4.0, 5.0), 3) FROM dual",
		"SELECT id, FloatArray.Sum(v) FROM obs WHERE id >= 10 AND id < 20",
		"SELECT TOP 5 id, v FROM obs",
		"SELECT id FROM obs WHERE id = 137",
		"SELECT COUNT(*), MIN(id), MAX(id) FROM obs WITH (NOLOCK)",
		"SELECT id FROM obs WHERE id >= 190 LIMIT 3",
	}
	for _, q := range queries {
		want, err := db.Query(q)
		if err != nil {
			t.Fatalf("Query(%q): %v", q, err)
		}
		rows, err := db.QueryRows(q)
		if err != nil {
			t.Fatalf("QueryRows(%q): %v", q, err)
		}
		var got [][]engine.Value
		for rows.Next() {
			got = append(got, rows.Row())
		}
		if err := rows.Err(); err != nil {
			t.Fatalf("QueryRows(%q): %v", q, err)
		}
		if err := rows.Close(); err != nil {
			t.Fatalf("Close(%q): %v", q, err)
		}
		if len(got) != len(want.Rows) {
			t.Fatalf("QueryRows(%q) = %d rows, Query = %d", q, len(got), len(want.Rows))
		}
		for i := range got {
			for j := range got[i] {
				if !sameValue(got[i][j], want.Rows[i][j]) {
					t.Errorf("QueryRows(%q) row %d col %d = %v, want %v",
						q, i, j, got[i][j], want.Rows[i][j])
				}
			}
		}
	}
	if got := db.Pool().PinnedFrames(); got != 0 {
		t.Errorf("PinnedFrames after streaming sweep = %d", got)
	}
}

func TestQueryArrayRowsStreams(t *testing.T) {
	db := NewDatabase()
	vectorTable(t, db, "obs", 50)
	cols := ArrayColumns{"v": "FloatArray"}
	rows, err := db.QueryArrayRows("SELECT SUM(v[0]) FROM obs WHERE v[2] <= 100", cols)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := rows.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	}()
	if !rows.Next() {
		t.Fatalf("no rows: %v", rows.Err())
	}
	if got := rows.Row()[0].F; got != 55 {
		t.Errorf("streamed sugar query = %g, want 55", got)
	}
	if rows.Next() {
		t.Error("aggregate must yield exactly one row")
	}
}

func TestStreamingAbandonedMidScan(t *testing.T) {
	// A client walking away from a cursor mid-table (the sqlsh TOP-n use
	// case) must leave the buffer pool clean.
	db := NewDatabase()
	vectorTable(t, db, "obs", 2000)
	rows, err := db.QueryRows("SELECT id, FloatArray.Sum(v) FROM obs")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if !rows.Next() {
			t.Fatalf("short stream: %v", rows.Err())
		}
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
	if got := db.Pool().PinnedFrames(); got != 0 {
		t.Errorf("PinnedFrames after abandoning cursor = %d", got)
	}
	if err := db.DropCleanBuffers(); err != nil {
		t.Errorf("DropCleanBuffers after abandoning cursor: %v", err)
	}
}
