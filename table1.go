package sqlarray

import (
	"fmt"
	"runtime"
	"time"

	"sqlarray/internal/core"
	"sqlarray/internal/engine"
)

// This file is the experiment harness for the paper's evaluation
// (§6, Table 1): two 5-dimensional-vector tables — Tscalar with the
// components in five FLOAT columns, Tvector with them in one short
// array blob — scanned by five queries that isolate the UDF-boundary
// cost. EXPERIMENTS.md records paper-vs-measured numbers.

// Table1Config sizes the experiment. The paper used 357 M rows on an
// 8-core server; the defaults here are laptop-scale with the same
// shape.
type Table1Config struct {
	// Rows in each table (paper: 357e6).
	Rows int
	// PoolPages sizes the buffer pool; keep it smaller than the tables
	// to exercise real eviction, or large enough to hold them to
	// isolate CPU (the modeled I/O column uses counted bytes either
	// way).
	PoolPages int
	// Model converts counted bytes into the paper's I/O time column.
	Model IOModel
}

// DefaultTable1Config returns a configuration that runs in seconds.
func DefaultTable1Config() Table1Config {
	return Table1Config{Rows: 200_000, PoolPages: 32768, Model: DefaultIOModel}
}

// Table1Queries are the five test queries, verbatim from §6.3.
var Table1Queries = [5]string{
	"SELECT COUNT(*) FROM Tscalar WITH (NOLOCK)",
	"SELECT COUNT(*) FROM Tvector WITH (NOLOCK)",
	"SELECT SUM(v1) FROM Tscalar WITH (NOLOCK)",
	"SELECT SUM(floatarray.Item_1(v, 0)) FROM Tvector WITH (NOLOCK)",
	"SELECT SUM(dbo.EmptyFunction(v, 0)) FROM Tvector WITH (NOLOCK)",
}

// QueryMeasurement is one Table 1 row: measured CPU and counted bytes,
// with the paper's three columns (execution time, CPU load, I/O rate)
// reconstructed as time = max(CPU, modeled I/O).
type QueryMeasurement struct {
	Index     int // 1-based query number
	Query     string
	Value     float64       // the query's scalar result
	Wall      time.Duration // raw wall-clock on this machine
	CPU       time.Duration // process CPU consumed by the query
	Bytes     uint64        // bytes scanned (buffer pool)
	UDFCalls  uint64        // boundary crossings
	Time      time.Duration // reconstructed execution time
	CPULoad   float64       // percent, CPU/Time
	IOMBps    float64       // Bytes/Time in MB/s
	RowsPerNs float64       // throughput for sanity checks
}

// SetupTable1 populates Tscalar and Tvector with identical data:
// clustered BIGINT id plus a 5-vector of float64, stored as five scalar
// columns versus one short-array blob (24-byte header + 40 bytes of
// payload, §6.2).
func SetupTable1(db *Database, rows int) error {
	scalarSchema, err := engine.NewSchema(
		engine.Column{Name: "id", Type: engine.ColInt64},
		engine.Column{Name: "v1", Type: engine.ColFloat64},
		engine.Column{Name: "v2", Type: engine.ColFloat64},
		engine.Column{Name: "v3", Type: engine.ColFloat64},
		engine.Column{Name: "v4", Type: engine.ColFloat64},
		engine.Column{Name: "v5", Type: engine.ColFloat64},
	)
	if err != nil {
		return err
	}
	vectorSchema, err := engine.NewSchema(
		engine.Column{Name: "id", Type: engine.ColInt64},
		engine.Column{Name: "v", Type: engine.ColVarBinary},
	)
	if err != nil {
		return err
	}
	ts, err := db.CreateTable("Tscalar", scalarSchema)
	if err != nil {
		return err
	}
	tv, err := db.CreateTable("Tvector", vectorSchema)
	if err != nil {
		return err
	}
	// dbo.EmptyFunction mirrors the paper's Query 5 probe.
	db.Funcs().Register("dbo.EmptyFunction", 2, func(args []engine.Value) (engine.Value, error) {
		return engine.FloatValue(0), nil
	})
	vec, err := core.New(core.Short, core.Float64, 5)
	if err != nil {
		return err
	}
	for i := 0; i < rows; i++ {
		// A cheap deterministic pseudo-vector; Query 3/4 sums make the
		// two tables comparable.
		x := float64(i%1000) / 1000
		comps := [5]float64{x, 2 * x, 3 * x, 4 * x, 5 * x}
		err := ts.Insert([]engine.Value{
			engine.IntValue(int64(i)),
			engine.FloatValue(comps[0]), engine.FloatValue(comps[1]), engine.FloatValue(comps[2]),
			engine.FloatValue(comps[3]), engine.FloatValue(comps[4]),
		})
		if err != nil {
			return err
		}
		for k, c := range comps {
			vec.SetFloatAt(k, c)
		}
		if err := tv.Insert([]engine.Value{engine.IntValue(int64(i)), engine.BinaryValue(vec.Bytes())}); err != nil {
			return err
		}
	}
	return db.Pool().FlushAll()
}

// RunTable1 executes the five queries cold (cache dropped before each,
// as §6.3 does) and returns their measurements.
func RunTable1(db *Database, cfg Table1Config) ([]QueryMeasurement, error) {
	out := make([]QueryMeasurement, 0, len(Table1Queries))
	for qi, q := range Table1Queries {
		m, err := MeasureQuery(db, q, cfg.Model)
		if err != nil {
			return nil, fmt.Errorf("query %d: %w", qi+1, err)
		}
		m.Index = qi + 1
		out = append(out, m)
	}
	return out, nil
}

// MeasureQuery runs one query with a cold cache and reconstructs the
// paper's columns.
func MeasureQuery(db *Database, query string, model IOModel) (QueryMeasurement, error) {
	if err := db.DropCleanBuffers(); err != nil {
		return QueryMeasurement{}, err
	}
	// Settle the garbage collector so setup/previous-query debt is not
	// billed to this measurement's CPU time.
	runtime.GC()
	db.Pool().ResetStats()
	db.Funcs().ResetStats()
	cpu0 := processCPUTime()
	wall0 := time.Now()
	res, err := db.Query(query)
	if err != nil {
		return QueryMeasurement{}, err
	}
	wall := time.Since(wall0)
	cpu := processCPUTime() - cpu0
	if cpu <= 0 {
		cpu = wall // rusage granularity fallback for sub-tick queries
	}
	v, err := res.Scalar()
	if err != nil {
		return QueryMeasurement{}, err
	}
	f, _ := v.AsFloat()
	st := db.Pool().Stats()
	fs := db.Funcs().Stats()

	ioTime := model.SeqReadTime(st.BytesRead)
	t := cpu
	if ioTime > t {
		t = ioTime
	}
	m := QueryMeasurement{
		Query:    query,
		Value:    f,
		Wall:     wall,
		CPU:      cpu,
		Bytes:    st.BytesRead,
		UDFCalls: fs.Calls,
		Time:     t,
	}
	if t > 0 {
		m.CPULoad = 100 * float64(cpu) / float64(t)
		m.IOMBps = float64(st.BytesRead) / 1e6 / t.Seconds()
	}
	return m, nil
}

// StorageComparison is the §6.2 size claim: the vector table is bigger
// because of the per-row array headers ("this second table had 24 bytes
// overhead per row ... which made the whole table 43 % bigger").
type StorageComparison struct {
	ScalarStats engine.TableStats
	VectorStats engine.TableStats
	// PageRatio is vector leaf pages / scalar leaf pages.
	PageRatio float64
	// ByteRatio is vector row bytes / scalar row bytes.
	ByteRatio float64
}

// CompareTable1Storage measures both tables' footprints.
func CompareTable1Storage(db *Database) (StorageComparison, error) {
	ts, err := db.Table("Tscalar")
	if err != nil {
		return StorageComparison{}, err
	}
	tv, err := db.Table("Tvector")
	if err != nil {
		return StorageComparison{}, err
	}
	ss, err := ts.Stats()
	if err != nil {
		return StorageComparison{}, err
	}
	vs, err := tv.Stats()
	if err != nil {
		return StorageComparison{}, err
	}
	out := StorageComparison{ScalarStats: ss, VectorStats: vs}
	if ss.LeafPages > 0 {
		out.PageRatio = float64(vs.LeafPages) / float64(ss.LeafPages)
	}
	if ss.RowBytes > 0 {
		out.ByteRatio = float64(vs.RowBytes) / float64(ss.RowBytes)
	}
	return out, nil
}

// UDFCostBreakdown carries the §7.1 derived quantities.
type UDFCostBreakdown struct {
	Rows int
	// PerCallCost is (CPU_Q4 − CPU_Q3)/rows: the marginal cost of one
	// boundary crossing plus item extraction (paper: ≈2 µs/call).
	PerCallCost time.Duration
	// PerEmptyCallCost is (CPU_Q5 − CPU_Q3)/rows: the pure call cost.
	PerEmptyCallCost time.Duration
	// EmptyCallShare is (CPU_Q5 − CPU_Q3)/CPU_Q5: the fraction of
	// query-5 CPU attributable to the boundary alone (paper: ≥38 %).
	EmptyCallShare float64
	// ExtractionIncrement is (CPU_Q4 − CPU_Q5)/CPU_Q5: added cost of
	// actually extracting the item (paper: +22 %).
	ExtractionIncrement float64
}

// DeriveUDFCost computes the §7.1 numbers from Table 1 measurements.
func DeriveUDFCost(ms []QueryMeasurement, rows int) (UDFCostBreakdown, error) {
	if len(ms) != 5 {
		return UDFCostBreakdown{}, fmt.Errorf("sqlarray: want 5 measurements, got %d", len(ms))
	}
	cpu3, cpu4, cpu5 := ms[2].CPU, ms[3].CPU, ms[4].CPU
	out := UDFCostBreakdown{Rows: rows}
	if rows > 0 {
		out.PerCallCost = (cpu4 - cpu3) / time.Duration(rows)
		out.PerEmptyCallCost = (cpu5 - cpu3) / time.Duration(rows)
	}
	if cpu5 > 0 {
		out.EmptyCallShare = float64(cpu5-cpu3) / float64(cpu5)
		out.ExtractionIncrement = float64(cpu4-cpu5) / float64(cpu5)
	}
	return out, nil
}
