module sqlarray

go 1.22
