module sqlarray

go 1.21
