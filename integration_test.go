package sqlarray

// Integration tests crossing every layer: SQL text -> parser -> plan ->
// clustered scan -> UDF boundary -> array core -> blob/page storage.

import (
	"errors"
	"math"
	"strings"
	"testing"

	"sqlarray/internal/core"
	"sqlarray/internal/engine"
	"sqlarray/internal/pages"
)

// vectorTable creates a table with an inline array column and n rows of
// 5-vectors [i, i/2, i², √i, 1].
func vectorTable(t *testing.T, db *Database, name string, n int) {
	t.Helper()
	s, err := engine.NewSchema(
		engine.Column{Name: "id", Type: engine.ColInt64},
		engine.Column{Name: "v", Type: engine.ColVarBinary},
	)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := db.CreateTable(name, s)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		x := float64(i)
		a := Vector(x, x/2, x*x, math.Sqrt(x), 1)
		if err := tbl.Insert([]engine.Value{engine.IntValue(int64(i)), engine.BinaryValue(a.Bytes())}); err != nil {
			t.Fatal(err)
		}
	}
}

func TestSQLOverArrayColumn(t *testing.T) {
	db := NewDatabase()
	vectorTable(t, db, "obs", 100)
	// Aggregate over an array element across all rows.
	got, err := db.QueryScalarFloat("SELECT SUM(FloatArray.Item_1(v, 0)) FROM obs")
	if err != nil {
		t.Fatal(err)
	}
	if got != 99*100/2 {
		t.Errorf("sum of first components = %g", got)
	}
	// Array-aggregate per row, then SQL aggregate across rows:
	// AVG over rows of the per-array sum.
	got, err = db.QueryScalarFloat("SELECT MAX(FloatArray.Sum(v)) FROM obs")
	if err != nil {
		t.Fatal(err)
	}
	x := 99.0
	want := x + x/2 + x*x + math.Sqrt(x) + 1
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("MAX(Sum(v)) = %g, want %g", got, want)
	}
	// WHERE on array contents.
	got, err = db.QueryScalarFloat("SELECT COUNT(*) FROM obs WHERE FloatArray.Item_1(v, 2) > 100")
	if err != nil {
		t.Fatal(err)
	}
	if got != 89 { // i² > 100 for i >= 11
		t.Errorf("filtered count = %g, want 89", got)
	}
}

func TestArraySubscriptDialectEndToEnd(t *testing.T) {
	db := NewDatabase()
	vectorTable(t, db, "obs", 50)
	cols := ArrayColumns{"v": "FloatArray"}
	// The §8 sugar: v[0] instead of FloatArray.Item_1(v, 0).
	res, err := db.QueryArray("SELECT SUM(v[0]) FROM obs WHERE v[2] <= 100", cols)
	if err != nil {
		t.Fatal(err)
	}
	v, err := res.Scalar()
	if err != nil {
		t.Fatal(err)
	}
	if v.F != 55 { // i <= 10: sum 0..10
		t.Errorf("sugar query = %v, want 55", v)
	}
	// Slices through the sugar: Sum over a subarray.
	got, err := db.QueryArray("SELECT TOP 1 FloatArray.Sum(v[0:2]) FROM obs WHERE id = 4", cols)
	if err != nil {
		t.Fatal(err)
	}
	f, _ := got.Rows[0][0].AsFloat()
	if f != 4+2 { // elements 0 and 1 of row 4: 4, 2
		t.Errorf("slice sum = %g, want 6", f)
	}
	// Translation error surfaces cleanly.
	if _, err := db.QueryArray("SELECT nope[0] FROM obs", cols); err == nil {
		t.Error("unknown column subscript must fail")
	}
}

func TestTypeMismatchThroughSQL(t *testing.T) {
	db := NewDatabase()
	vectorTable(t, db, "obs", 5)
	// The float column handed to an int-schema function: the header
	// type flag catches it per §3.5.
	_, err := db.Query("SELECT SUM(IntArray.Item_1(v, 0)) FROM obs")
	if !errors.Is(err, core.ErrTypeMismatch) {
		t.Errorf("type mismatch through SQL: %v", err)
	}
	// Wrong storage class similarly.
	_, err = db.Query("SELECT SUM(FloatArrayMax.Item_1(v, 0)) FROM obs")
	if !errors.Is(err, core.ErrClassMismatch) {
		t.Errorf("class mismatch through SQL: %v", err)
	}
	// Out-of-bounds index inside the UDF.
	_, err = db.Query("SELECT SUM(FloatArray.Item_1(v, 99)) FROM obs")
	if !errors.Is(err, core.ErrBounds) {
		t.Errorf("bounds error through SQL: %v", err)
	}
}

func TestCorruptBlobDetectedThroughSQL(t *testing.T) {
	db := NewDatabase()
	s, _ := engine.NewSchema(
		engine.Column{Name: "id", Type: engine.ColInt64},
		engine.Column{Name: "v", Type: engine.ColVarBinary},
	)
	tbl, err := db.CreateTable("bad", s)
	if err != nil {
		t.Fatal(err)
	}
	blob := Vector(1, 2, 3).Bytes()
	corrupt := append([]byte(nil), blob...)
	corrupt[0] = 0x00 // destroy the magic byte
	if err := tbl.Insert([]engine.Value{engine.IntValue(1), engine.BinaryValue(corrupt)}); err != nil {
		t.Fatal(err)
	}
	_, err = db.Query("SELECT SUM(FloatArray.Item_1(v, 0)) FROM bad")
	if !errors.Is(err, core.ErrBadHeader) {
		t.Errorf("corrupt blob through SQL: %v", err)
	}
}

func TestPaperSnippetsVerbatim(t *testing.T) {
	// The §5.1 code snippets, as close to verbatim as the dialect allows
	// (DECLARE folds into nested calls).
	db := NewDatabase()
	cases := []struct {
		sql  string
		want float64
	}{
		{"SELECT FloatArray.Item_1(FloatArray.Vector_5(1.0, 2.0, 3.0, 4.0, 5.0), 3) FROM dual", 4},
		{"SELECT FloatArray.Item_2(FloatArray.Matrix_2(0.1, 0.2, 0.3, 0.4), 1, 0) FROM dual", 0.2},
		{"SELECT FloatArray.Item_1(FloatArray.UpdateItem_1(FloatArray.Vector_5(1,2,3,4,5), 3, 4.5), 3) FROM dual", 4.5},
	}
	for _, c := range cases {
		got, err := db.QueryScalarFloat(c.sql)
		if err != nil {
			t.Errorf("%q: %v", c.sql, err)
			continue
		}
		if got != c.want {
			t.Errorf("%q = %g, want %g", c.sql, got, c.want)
		}
	}
}

func TestFromQueryThroughSQLText(t *testing.T) {
	// FromQuery's inner query argument is a SQL string literal — the
	// exact §4.2 pattern, nested query and all.
	db := NewDatabase()
	s, _ := engine.NewSchema(
		engine.Column{Name: "i", Type: engine.ColInt64},
		engine.Column{Name: "x", Type: engine.ColFloat64},
	)
	tbl, err := db.CreateTable("cells", s)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 8; i++ {
		if err := tbl.Insert([]engine.Value{engine.IntValue(i), engine.FloatValue(float64(i * 10))}); err != nil {
			t.Fatal(err)
		}
	}
	res, err := db.Query(
		"SELECT FloatArrayMax.Sum(FloatArrayMax.VectorFromQuery(8, 'SELECT i, x FROM cells')) FROM dual")
	if err != nil {
		t.Fatal(err)
	}
	v, _ := res.Scalar()
	if v.F != 280 {
		t.Errorf("FromQuery sum = %v, want 280", v)
	}
}

func TestFileBackedDatabaseEndToEnd(t *testing.T) {
	// The same integration path over a real file on disk.
	dir := t.TempDir()
	disk, err := pages.OpenFileDisk(dir + "/test.db")
	if err != nil {
		t.Fatal(err)
	}
	db := NewDatabaseWith(Options{Disk: disk, PoolPages: 256})
	vectorTable(t, db, "obs", 2000)
	if err := db.Pool().FlushAll(); err != nil {
		t.Fatal(err)
	}
	if err := db.DropCleanBuffers(); err != nil {
		t.Fatal(err)
	}
	got, err := db.QueryScalarFloat("SELECT SUM(FloatArray.Item_1(v, 0)) FROM obs")
	if err != nil {
		t.Fatal(err)
	}
	if got != 1999*2000/2 {
		t.Errorf("file-backed sum = %g", got)
	}
	if db.Pool().Stats().PhysicalReads == 0 {
		t.Error("expected real file reads after cache drop")
	}
}

func TestExprTextSurvivesTranslation(t *testing.T) {
	// Sanity: translated queries stay valid SQL for the parser.
	q, err := TranslateArraySyntax(
		"SELECT v[0] + v[1:3], 'v[9]' FROM obs WHERE v[1] >= 2 AND id <> 0",
		ArrayColumns{"v": "FloatArray"})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(q, "[") && !strings.Contains(q, "'v[9]'") {
		t.Errorf("untranslated subscript remains: %q", q)
	}
}
