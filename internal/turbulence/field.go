// Package turbulence reproduces the paper's §2.1 use case: a turbulence
// database that stores a simulation's regular-grid velocity+pressure
// field as blobs of (cube+2·ghost)³ sub-cubes partitioned along a Morton
// z-curve, and serves point interpolation queries ("the equivalent of
// placing small sensors into the simulation instead of downloading all
// the data").
//
// The JHU 1024³ isotropic dataset is proprietary-scale; GenerateField
// synthesizes a divergence-free band-limited velocity field from random
// Fourier modes with a Kolmogorov-like k^(-5/3) energy spectrum, which
// exercises the identical storage and query paths (see DESIGN.md,
// substitution table).
package turbulence

import (
	"fmt"
	"math"
	"math/rand"
)

// Field is one snapshot: three velocity components and pressure on an
// N³ periodic grid, column-major (x fastest), matching §2.1 ("every
// point contains the three components of the fluid velocity and the
// pressure").
type Field struct {
	N          int
	U, V, W, P []float64
}

// Channels is the number of stored per-point quantities (u, v, w, p).
const Channels = 4

// GenerateField synthesizes a periodic, divergence-free velocity field
// plus a pressure field on an n³ grid from nModes random Fourier modes
// whose amplitudes follow E(k) ∝ k^(-5/3).
func GenerateField(n int, nModes int, seed int64) (*Field, error) {
	if n < 4 {
		return nil, fmt.Errorf("turbulence: grid side %d too small", n)
	}
	if nModes < 1 {
		return nil, fmt.Errorf("turbulence: need at least one mode")
	}
	rng := rand.New(rand.NewSource(seed))
	type mode struct {
		k      [3]float64 // wave vector (integer cycles per box)
		dir    [3]float64 // polarization, perpendicular to k
		amp    float64
		phase  float64
		pamp   float64 // pressure amplitude
		pphase float64
	}
	modes := make([]mode, 0, nModes)
	maxK := n / 3 // keep the field resolvable on the grid
	if maxK < 2 {
		maxK = 2
	}
	for len(modes) < nModes {
		kx := float64(rng.Intn(2*maxK+1) - maxK)
		ky := float64(rng.Intn(2*maxK+1) - maxK)
		kz := float64(rng.Intn(2*maxK+1) - maxK)
		k2 := kx*kx + ky*ky + kz*kz
		if k2 == 0 {
			continue
		}
		kmag := math.Sqrt(k2)
		// Random unit vector, projected perpendicular to k so the mode
		// is divergence-free (incompressible flow).
		rx, ry, rz := rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()
		dot := (rx*kx + ry*ky + rz*kz) / k2
		dx, dy, dz := rx-dot*kx, ry-dot*ky, rz-dot*kz
		dn := math.Sqrt(dx*dx + dy*dy + dz*dz)
		if dn < 1e-9 {
			continue
		}
		// E(k) ~ k^(-5/3) => per-mode amplitude ~ k^(-5/6 - 1) in 3-D
		// (shell surface absorbs k²); the exact constant is irrelevant
		// for the storage experiments.
		amp := math.Pow(kmag, -11.0/6.0)
		modes = append(modes, mode{
			k:      [3]float64{kx, ky, kz},
			dir:    [3]float64{dx / dn, dy / dn, dz / dn},
			amp:    amp,
			phase:  rng.Float64() * 2 * math.Pi,
			pamp:   amp * amp,
			pphase: rng.Float64() * 2 * math.Pi,
		})
	}
	f := &Field{
		N: n,
		U: make([]float64, n*n*n),
		V: make([]float64, n*n*n),
		W: make([]float64, n*n*n),
		P: make([]float64, n*n*n),
	}
	twoPi := 2 * math.Pi / float64(n)
	for z := 0; z < n; z++ {
		for y := 0; y < n; y++ {
			base := (z*n + y) * n
			for x := 0; x < n; x++ {
				var u, v, w, p float64
				for _, m := range modes {
					arg := twoPi*(m.k[0]*float64(x)+m.k[1]*float64(y)+m.k[2]*float64(z)) + m.phase
					c := math.Cos(arg)
					u += m.amp * m.dir[0] * c
					v += m.amp * m.dir[1] * c
					w += m.amp * m.dir[2] * c
					p += m.pamp * math.Cos(arg-m.phase+m.pphase)
				}
				f.U[base+x] = u
				f.V[base+x] = v
				f.W[base+x] = w
				f.P[base+x] = p
			}
		}
	}
	return f, nil
}

// At returns (u, v, w, p) at integer grid coordinates, periodic.
func (f *Field) At(x, y, z int) (u, v, w, p float64) {
	n := f.N
	x, y, z = wrap(x, n), wrap(y, n), wrap(z, n)
	i := (z*n+y)*n + x
	return f.U[i], f.V[i], f.W[i], f.P[i]
}

func wrap(i, n int) int {
	i %= n
	if i < 0 {
		i += n
	}
	return i
}

// Divergence computes the discrete central-difference divergence at a
// grid point — used by tests to verify the synthetic field is
// (approximately) incompressible.
func (f *Field) Divergence(x, y, z int) float64 {
	ux1, _, _, _ := f.At(x+1, y, z)
	ux0, _, _, _ := f.At(x-1, y, z)
	_, vy1, _, _ := f.At(x, y+1, z)
	_, vy0, _, _ := f.At(x, y-1, z)
	_, _, wz1, _ := f.At(x, y, z+1)
	_, _, wz0, _ := f.At(x, y, z-1)
	return (ux1 - ux0 + vy1 - vy0 + wz1 - wz0) / 2
}
