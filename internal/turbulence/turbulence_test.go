package turbulence

import (
	"math"
	"testing"

	"sqlarray/internal/engine"
	"sqlarray/internal/interp"
)

func genField(t *testing.T, n int) *Field {
	t.Helper()
	f, err := GenerateField(n, 24, 42)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestGenerateFieldErrors(t *testing.T) {
	if _, err := GenerateField(2, 8, 1); err == nil {
		t.Error("tiny grid must fail")
	}
	if _, err := GenerateField(16, 0, 1); err == nil {
		t.Error("zero modes must fail")
	}
}

func TestFieldIsDeterministic(t *testing.T) {
	a := genField(t, 16)
	b := genField(t, 16)
	for i := range a.U {
		if a.U[i] != b.U[i] || a.P[i] != b.P[i] {
			t.Fatal("same seed must reproduce the field")
		}
	}
}

func TestFieldDivergenceFree(t *testing.T) {
	f := genField(t, 32)
	// The analytic field is exactly divergence-free; the central
	// difference on the grid should be small relative to the velocity
	// magnitude.
	var maxDiv, maxV float64
	for z := 0; z < 32; z += 3 {
		for y := 0; y < 32; y += 3 {
			for x := 0; x < 32; x += 3 {
				if d := math.Abs(f.Divergence(x, y, z)); d > maxDiv {
					maxDiv = d
				}
				u, v, w, _ := f.At(x, y, z)
				if m := math.Sqrt(u*u + v*v + w*w); m > maxV {
					maxV = m
				}
			}
		}
	}
	if maxDiv > 0.2*maxV {
		t.Errorf("divergence %g too large vs velocity scale %g", maxDiv, maxV)
	}
}

func newStore(t *testing.T, n, cube, ghost int) (*Store, *Field) {
	t.Helper()
	f := genField(t, n)
	db := engine.NewMemDB()
	s, err := CreateStore(db, "turb", f, cube, ghost)
	if err != nil {
		t.Fatal(err)
	}
	return s, f
}

func TestCreateStoreValidation(t *testing.T) {
	f := genField(t, 16)
	db := engine.NewMemDB()
	if _, err := CreateStore(db, "t1", f, 5, 4); err == nil {
		t.Error("non-dividing cube must fail")
	}
	if _, err := CreateStore(db, "t2", f, 8, -1); err == nil {
		t.Error("negative ghost must fail")
	}
}

func TestStoreRowCountAndBlockBytes(t *testing.T) {
	s, _ := newStore(t, 16, 8, 4)
	// 16/8 = 2 cubes per axis -> 8 rows.
	if s.Table().Rows() != 8 {
		t.Errorf("rows = %d, want 8", s.Table().Rows())
	}
	// Block of (8+8)³ x 4 channels x 8 bytes + header.
	want := 16*16*16*4*8 + 32 // 16-byte fixed max header + 4 dims x 4
	if got := s.BlockBytes(); got != want {
		t.Errorf("BlockBytes = %d, want %d", got, want)
	}
	if s.GridSide() != 16 || s.CubeSide() != 8 || s.Ghost() != 4 {
		t.Error("geometry accessors wrong")
	}
}

func TestNearestInterpolationMatchesGrid(t *testing.T) {
	s, f := newStore(t, 16, 8, 4)
	for _, p := range [][3]float64{{0, 0, 0}, {5, 3, 7}, {15, 15, 15}, {8, 8, 8}} {
		v, err := s.Velocity(0, p, interp.Nearest, WholeBlob)
		if err != nil {
			t.Fatalf("at %v: %v", p, err)
		}
		u, vv, w, _ := f.At(int(p[0]), int(p[1]), int(p[2]))
		if v[0] != u || v[1] != vv || v[2] != w {
			t.Errorf("nearest at %v = %v, want (%g,%g,%g)", p, v, u, vv, w)
		}
	}
}

func TestInterpolationMatchesDirectGridSampling(t *testing.T) {
	// The service (blob path) must agree with interp.Grid3D applied to
	// the raw periodic field — this validates ghost-zone packing.
	s, f := newStore(t, 16, 8, 4)
	gu, err := interp.NewGrid3D(16, f.U)
	if err != nil {
		t.Fatal(err)
	}
	gv, _ := interp.NewGrid3D(16, f.V)
	gw, _ := interp.NewGrid3D(16, f.W)
	pts := [][3]float64{
		{1.3, 2.7, 3.1},
		{7.9, 7.9, 7.9},  // cube edge: stencil reaches into ghosts
		{8.1, 0.2, 15.8}, // wraps around the periodic boundary
		{0.05, 0.05, 0.05},
		{12.5, 4.25, 9.75},
	}
	for _, scheme := range []interp.Scheme{interp.Linear, interp.Lag4, interp.Lag6, interp.Lag8} {
		for _, p := range pts {
			got, err := s.Velocity(0, p, scheme, WholeBlob)
			if err != nil {
				t.Fatalf("%v at %v: %v", scheme, p, err)
			}
			want := [3]float64{
				gu.Sample(p[0], p[1], p[2], scheme),
				gv.Sample(p[0], p[1], p[2], scheme),
				gw.Sample(p[0], p[1], p[2], scheme),
			}
			for d := 0; d < 3; d++ {
				if math.Abs(got[d]-want[d]) > 1e-10 {
					t.Errorf("%v at %v ch %d: %g vs %g", scheme, p, d, got[d], want[d])
				}
			}
		}
	}
}

func TestPartialReadMatchesWholeBlob(t *testing.T) {
	s, _ := newStore(t, 16, 8, 4)
	pts := [][3]float64{
		{1.3, 2.7, 3.1}, {7.9, 7.9, 7.9}, {8.1, 0.2, 15.8}, {4.4, 11.6, 6.2},
	}
	for _, scheme := range []interp.Scheme{interp.Nearest, interp.Linear, interp.Lag8} {
		whole, err := s.VelocityBatch(0, pts, scheme, WholeBlob)
		if err != nil {
			t.Fatal(err)
		}
		part, err := s.VelocityBatch(0, pts, scheme, PartialRead)
		if err != nil {
			t.Fatal(err)
		}
		for i := range pts {
			for d := 0; d < 3; d++ {
				if math.Abs(whole[i][d]-part[i][d]) > 1e-12 {
					t.Errorf("%v point %d ch %d: whole %g, partial %g",
						scheme, i, d, whole[i][d], part[i][d])
				}
			}
		}
	}
}

func TestPartialReadTouchesLessData(t *testing.T) {
	// §2.1's point: an 8³ stencil should not pull a whole block.
	s, _ := newStore(t, 32, 16, 4)
	pts := [][3]float64{{5.5, 5.5, 5.5}}

	if err := s.DropCache(); err != nil {
		t.Fatal(err)
	}
	s.ResetStats()
	if _, err := s.VelocityBatch(0, pts, interp.Lag8, WholeBlob); err != nil {
		t.Fatal(err)
	}
	whole := s.Stats()

	if err := s.DropCache(); err != nil {
		t.Fatal(err)
	}
	s.ResetStats()
	if _, err := s.VelocityBatch(0, pts, interp.Lag8, PartialRead); err != nil {
		t.Fatal(err)
	}
	part := s.Stats()

	if part.BytesRead >= whole.BytesRead {
		t.Errorf("partial read %d bytes >= whole read %d bytes", part.BytesRead, whole.BytesRead)
	}
	// The partial path issues more logical chunk touches (one per run)
	// but they hit cached pages; the physical page traffic must drop.
	if part.PhysicalReads >= whole.PhysicalReads {
		t.Errorf("partial physical reads %d >= whole %d", part.PhysicalReads, whole.PhysicalReads)
	}
}

func TestGhostTooSmallRejected(t *testing.T) {
	s, _ := newStore(t, 16, 8, 2) // ghost 2 < 4 needed by Lag8
	if _, err := s.Velocity(0, [3]float64{1, 1, 1}, interp.Lag8, WholeBlob); err == nil {
		t.Error("Lag8 with ghost 2 must fail")
	}
	// Lag4 (needs 2) still works.
	if _, err := s.Velocity(0, [3]float64{5, 5, 5}, interp.Lag4, WholeBlob); err != nil {
		t.Errorf("Lag4 with ghost 2: %v", err)
	}
}

func TestMultipleSnapshots(t *testing.T) {
	f0 := genField(t, 16)
	f1, err := GenerateField(16, 24, 99) // different seed
	if err != nil {
		t.Fatal(err)
	}
	db := engine.NewMemDB()
	s, err := CreateStore(db, "turb", f0, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddSnapshot(1, f1); err != nil {
		t.Fatal(err)
	}
	if s.Table().Rows() != 16 {
		t.Errorf("rows = %d, want 16", s.Table().Rows())
	}
	p := [3]float64{3, 3, 3}
	v0, err := s.Velocity(0, p, interp.Nearest, WholeBlob)
	if err != nil {
		t.Fatal(err)
	}
	v1, err := s.Velocity(1, p, interp.Nearest, WholeBlob)
	if err != nil {
		t.Fatal(err)
	}
	if v0 == v1 {
		t.Error("snapshots with different seeds must differ")
	}
	u, _, _, _ := f1.At(3, 3, 3)
	if v1[0] != u {
		t.Errorf("snapshot 1 velocity = %g, want %g", v1[0], u)
	}
	// Mismatched snapshot geometry is rejected.
	f8, _ := GenerateField(8, 8, 1)
	if err := s.AddSnapshot(2, f8); err == nil {
		t.Error("mismatched snapshot grid must fail")
	}
}

func TestBatchCachesBlocks(t *testing.T) {
	s, _ := newStore(t, 16, 8, 4)
	// 100 points in the same cube: the whole-blob path must fetch the
	// blob once, not 100 times.
	pts := make([][3]float64, 100)
	for i := range pts {
		pts[i] = [3]float64{1 + float64(i%5)*0.3, 2, 3}
	}
	if err := s.DropCache(); err != nil {
		t.Fatal(err)
	}
	s.ResetStats()
	if _, err := s.VelocityBatch(0, pts, interp.Lag4, WholeBlob); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	blockPages := uint64(s.BlockBytes()/8096 + 2)
	if st.PhysicalReads > 4*blockPages {
		t.Errorf("batch read %d pages; caching broken (block is ~%d pages)",
			st.PhysicalReads, blockPages)
	}
}
