package turbulence

import (
	"fmt"

	"sqlarray/internal/blob"
	"sqlarray/internal/core"
	"sqlarray/internal/engine"
	"sqlarray/internal/sfc"
)

// Store is the turbulence database: one row per (cube+2g)³ sub-cube,
// clustered on (timestep, z-index) so spatially adjacent cubes are
// adjacent on disk (§2.1: "partitioned along a space filling curve
// (z-index) into cubes of (64+8)³ ... Each blob is ... stored in a
// separate row").
type Store struct {
	db    *engine.DB
	table *engine.Table
	n     int // full grid side
	cube  int // sub-cube side without ghosts
	ghost int // ghost-zone width on each face
}

// blockSide returns the stored cube side including ghosts.
func (s *Store) blockSide() int { return s.cube + 2*s.ghost }

// keyFor packs (step, zcode) into the clustered key.
func keyFor(step int, zcode uint64) int64 {
	return int64(uint64(step)<<40 | zcode)
}

// CreateStore builds the table and ingests snapshot 0 of field f,
// partitioned into cube³ blocks with the given ghost width. A ghost of
// 4 supports the 8-point Lagrangian kernel everywhere inside a block,
// exactly the paper's "+8 means that each cube contains an extra 8 voxel
// wide buffer so that particles on the edge ... still have their
// neighbors within 4 voxels in the same blob".
func CreateStore(db *engine.DB, tableName string, f *Field, cube, ghost int) (*Store, error) {
	if cube < 1 || f.N%cube != 0 {
		return nil, fmt.Errorf("turbulence: cube side %d must divide grid side %d", cube, f.N)
	}
	if ghost < 0 || ghost > f.N/2 {
		return nil, fmt.Errorf("turbulence: ghost width %d outside [0,%d]", ghost, f.N/2)
	}
	schema, err := engine.NewSchema(
		engine.Column{Name: "zkey", Type: engine.ColInt64},
		engine.Column{Name: "blob", Type: engine.ColVarBinaryMax},
	)
	if err != nil {
		return nil, err
	}
	table, err := db.CreateTable(tableName, schema)
	if err != nil {
		return nil, err
	}
	s := &Store{db: db, table: table, n: f.N, cube: cube, ghost: ghost}
	if err := s.AddSnapshot(0, f); err != nil {
		return nil, err
	}
	return s, nil
}

// AddSnapshot ingests another timestep of the same geometry through the
// bulk-load path: blocks are packed in grid order (z-shuffled keys —
// the loader sorts into z-curve order) and land as freshly packed
// leaves in one commit, so a crash mid-snapshot leaves no partial step.
func (s *Store) AddSnapshot(step int, f *Field) error {
	if f.N != s.n {
		return fmt.Errorf("turbulence: snapshot grid %d != store grid %d", f.N, s.n)
	}
	nc := s.n / s.cube
	rows := make([][]engine.Value, 0, nc*nc*nc)
	for cz := 0; cz < nc; cz++ {
		for cy := 0; cy < nc; cy++ {
			for cx := 0; cx < nc; cx++ {
				code, err := sfc.Encode3D(uint32(cx), uint32(cy), uint32(cz))
				if err != nil {
					return err
				}
				arr, err := s.packBlock(f, cx, cy, cz)
				if err != nil {
					return err
				}
				rows = append(rows, []engine.Value{
					engine.IntValue(keyFor(step, code)),
					engine.BinaryMaxValue(arr.Bytes()),
				})
			}
		}
	}
	_, err := s.table.BulkLoad(engine.NewValuesSource(rows), engine.BulkOptions{})
	return err
}

// packBlock builds the (m, m, m, 4) max array for one sub-cube,
// including ghost zones copied from periodic neighbours.
func (s *Store) packBlock(f *Field, cx, cy, cz int) (*core.Array, error) {
	m := s.blockSide()
	arr, err := core.New(core.Max, core.Float64, m, m, m, Channels)
	if err != nil {
		return nil, err
	}
	x0 := cx*s.cube - s.ghost
	y0 := cy*s.cube - s.ghost
	z0 := cz*s.cube - s.ghost
	m3 := m * m * m
	// Column-major with dims (m,m,m,4): channel ch occupies the
	// contiguous element range [ch·m³, (ch+1)·m³).
	for lz := 0; lz < m; lz++ {
		for ly := 0; ly < m; ly++ {
			for lx := 0; lx < m; lx++ {
				u, v, w, p := f.At(x0+lx, y0+ly, z0+lz)
				lin := (lz*m+ly)*m + lx
				arr.SetFloatAt(lin, u)
				arr.SetFloatAt(lin+m3, v)
				arr.SetFloatAt(lin+2*m3, w)
				arr.SetFloatAt(lin+3*m3, p)
			}
		}
	}
	return arr, nil
}

// Table exposes the underlying engine table (for SQL access).
func (s *Store) Table() *engine.Table { return s.table }

// GridSide returns the full grid resolution.
func (s *Store) GridSide() int { return s.n }

// CubeSide returns the partition cube side (without ghosts).
func (s *Store) CubeSide() int { return s.cube }

// Ghost returns the ghost-zone width.
func (s *Store) Ghost() int { return s.ghost }

// BlockBytes returns the stored blob size per block, header included.
func (s *Store) BlockBytes() int {
	m := s.blockSide()
	h := core.Header{Class: core.Max, Elem: core.Float64, Dims: []int{m, m, m, Channels}}
	return h.TotalBytes()
}

// fetchRef returns the blob ref for (step, cube coords).
func (s *Store) fetchRef(step, cx, cy, cz int) (blob.Ref, error) {
	code, err := sfc.Encode3D(uint32(cx), uint32(cy), uint32(cz))
	if err != nil {
		return blob.Ref{}, err
	}
	row, err := s.table.Get(keyFor(step, code))
	if err != nil {
		return blob.Ref{}, fmt.Errorf("turbulence: cube (%d,%d,%d): %w", cx, cy, cz, err)
	}
	return blob.DecodeRef(row[1].B)
}
