package turbulence

import (
	"fmt"
	"math"

	"sqlarray/internal/blob"
	"sqlarray/internal/core"
	"sqlarray/internal/interp"
	"sqlarray/internal/sfc"
)

// FetchMode selects how much of a blob an interpolation query reads.
type FetchMode int

const (
	// WholeBlob fetches the entire sub-cube blob, the "accessing the
	// whole blob (6 MB) for an 8-point 3D interpolation is obviously
	// overkill" baseline of §2.1.
	WholeBlob FetchMode = iota
	// PartialRead fetches only the stencil's byte runs through the blob
	// store's partial-read path.
	PartialRead
)

// String names the fetch mode.
func (m FetchMode) String() string {
	if m == PartialRead {
		return "partial"
	}
	return "whole"
}

// Velocity interpolates the velocity vector at a continuous position
// (in grid units, periodic) from snapshot step.
func (s *Store) Velocity(step int, p [3]float64, scheme interp.Scheme, mode FetchMode) ([3]float64, error) {
	out, err := s.VelocityBatch(step, [][3]float64{p}, scheme, mode)
	if err != nil {
		return [3]float64{}, err
	}
	return out[0], nil
}

// VelocityBatch interpolates a batch of positions, the shape of the
// public web service ("users can submit a set of about 10,000 particle
// positions ... and retrieve the interpolated values of the velocity
// field at those positions", §2.1). Whole-blob fetches are cached per
// batch so each touched cube is read once.
func (s *Store) VelocityBatch(step int, pts [][3]float64, scheme interp.Scheme, mode FetchMode) ([][3]float64, error) {
	np := scheme.Points()
	if np/2 > s.ghost && np > 1 {
		return nil, fmt.Errorf("turbulence: scheme %v needs ghost >= %d, store has %d",
			scheme, np/2, s.ghost)
	}
	out := make([][3]float64, len(pts))
	cache := map[int64][]float64{}
	for i, p := range pts {
		v, err := s.velocityOne(step, p, scheme, mode, cache)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

func (s *Store) velocityOne(step int, p [3]float64, scheme interp.Scheme, mode FetchMode, cache map[int64][]float64) ([3]float64, error) {
	n := float64(s.n)
	// Wrap into [0, n).
	var g [3]float64
	for d := 0; d < 3; d++ {
		x := math.Mod(p[d], n)
		if x < 0 {
			x += n
		}
		g[d] = x
	}
	cx := int(g[0]) / s.cube
	cy := int(g[1]) / s.cube
	cz := int(g[2]) / s.cube
	// Local coordinates inside the ghosted block.
	lx := g[0] - float64(cx*s.cube) + float64(s.ghost)
	ly := g[1] - float64(cy*s.cube) + float64(s.ghost)
	lz := g[2] - float64(cz*s.cube) + float64(s.ghost)

	np := scheme.Points()
	m := s.blockSide()
	if scheme == interp.Nearest {
		ix, iy, iz := int(math.Round(lx)), int(math.Round(ly)), int(math.Round(lz))
		if ix >= m {
			ix = m - 1
		}
		if iy >= m {
			iy = m - 1
		}
		if iz >= m {
			iz = m - 1
		}
		return s.stencilValue(step, cx, cy, cz, ix, iy, iz, 1,
			[]float64{1}, []float64{1}, []float64{1}, mode, cache)
	}
	i0x, tx := int(math.Floor(lx)), lx-math.Floor(lx)
	i0y, ty := int(math.Floor(ly)), ly-math.Floor(ly)
	i0z, tz := int(math.Floor(lz)), lz-math.Floor(lz)
	wx := make([]float64, np)
	wy := make([]float64, np)
	wz := make([]float64, np)
	axisWeightsFor(scheme, tx, wx)
	axisWeightsFor(scheme, ty, wy)
	axisWeightsFor(scheme, tz, wz)
	base := np/2 - 1
	return s.stencilValue(step, cx, cy, cz, i0x-base, i0y-base, i0z-base, np, wx, wy, wz, mode, cache)
}

// axisWeightsFor mirrors interp's per-axis weights for the tensor
// product kernels.
func axisWeightsFor(scheme interp.Scheme, t float64, w []float64) {
	switch scheme {
	case interp.Linear:
		w[0], w[1] = 1-t, t
	default:
		// PCHIP and LagN share the Lagrange tensor weights, matching
		// interp's per-axis construction.
		lagrangeInto(len(w), t, w)
	}
}

// lagrangeInto duplicates interp's Lagrange basis (kept here to avoid
// exporting interp internals).
func lagrangeInto(np int, t float64, w []float64) {
	for k := 0; k < np; k++ {
		xk := float64(k - (np/2 - 1))
		num, den := 1.0, 1.0
		for j := 0; j < np; j++ {
			if j == k {
				continue
			}
			xj := float64(j - (np/2 - 1))
			num *= t - xj
			den *= xk - xj
		}
		w[k] = num / den
	}
}

// stencilValue evaluates the weighted sum over an np³ stencil starting
// at (sx, sy, sz) in block coordinates, for the three velocity channels.
func (s *Store) stencilValue(step, cx, cy, cz, sx, sy, sz, np int,
	wx, wy, wz []float64, mode FetchMode, cache map[int64][]float64) ([3]float64, error) {
	m := s.blockSide()
	if sx < 0 || sy < 0 || sz < 0 || sx+np > m || sy+np > m || sz+np > m {
		return [3]float64{}, fmt.Errorf("turbulence: stencil [%d..%d) outside block of side %d (ghost too small)",
			sx, sx+np, m)
	}
	var data []float64 // stencil-local (np³ × 3) or whole block (m³ × 4)
	var stride, chStride, off int
	switch mode {
	case WholeBlob:
		code, err := s.cubeCode(cx, cy, cz)
		if err != nil {
			return [3]float64{}, err
		}
		key := keyFor(step, code)
		blk, ok := cache[key]
		if !ok {
			row, err := s.table.Get(key)
			if err != nil {
				return [3]float64{}, err
			}
			raw, err := s.table.FetchBlob(row[1].B)
			if err != nil {
				return [3]float64{}, err
			}
			arr, err := core.Wrap(raw)
			if err != nil {
				return [3]float64{}, err
			}
			blk = arr.Float64s()
			cache[key] = blk
		}
		data = blk
		stride = m
		chStride = m * m * m
		off = (sz*m+sy)*m + sx
	case PartialRead:
		sub, err := s.readStencil(step, cx, cy, cz, sx, sy, sz, np)
		if err != nil {
			return [3]float64{}, err
		}
		data = sub
		stride = np
		chStride = np * np * np
		off = 0
	default:
		return [3]float64{}, fmt.Errorf("turbulence: unknown fetch mode %d", mode)
	}
	var out [3]float64
	for ch := 0; ch < 3; ch++ {
		sum := 0.0
		for kz := 0; kz < np; kz++ {
			wzk := wz[kz]
			for ky := 0; ky < np; ky++ {
				wyk := wy[ky] * wzk
				row := off + ch*chStride + (kz*stride+ky)*stride
				for kx := 0; kx < np; kx++ {
					sum += wx[kx] * wyk * data[row+kx]
				}
			}
		}
		out[ch] = sum
	}
	return out, nil
}

func (s *Store) cubeCode(cx, cy, cz int) (uint64, error) {
	return sfc.Encode3D(uint32(cx), uint32(cy), uint32(cz))
}

// readStencil performs the partial-read path: only the byte runs of the
// np³×3 stencil sub-array are fetched from the out-of-page blob, and
// the float64 samples are decoded straight off the chunk bodies (pinned
// pages for raw blobs, decoded buffers for compressed ones) — no
// intermediate byte buffer, no copy. The direct decode requires every
// element to sit inside one chunk, which holds exactly when the header
// size and both chunk granularities are 8-byte aligned: raw chunks
// break at ChunkSize (8096) multiples and compressed chunks start on
// BlockSize (8064) multiples, so with a 32-byte rank-4 max header no
// float64 ever straddles a VisitRun segment boundary. The copying path
// remains as the fallback should any alignment ever change.
func (s *Store) readStencil(step, cx, cy, cz, sx, sy, sz, np int) ([]float64, error) {
	ref, err := s.fetchRef(step, cx, cy, cz)
	if err != nil {
		return nil, err
	}
	m := s.blockSide()
	h := core.Header{Class: core.Max, Elem: core.Float64, Dims: []int{m, m, m, Channels}}
	runs, err := core.SubarrayPlan(h, []int{sx, sy, sz, 0}, []int{np, np, np, 3})
	if err != nil {
		return nil, err
	}
	hdr := h.EncodedSize()
	blobRuns := make([]blob.Run, len(runs))
	dstBytes := 0
	for i, r := range runs {
		blobRuns[i] = blob.Run{SrcOff: r.SrcOff + hdr, DstOff: r.DstOff, Len: r.Len}
		dstBytes += r.Len
	}
	out := make([]float64, dstBytes/8)
	if hdr%8 == 0 && blob.ChunkSize%8 == 0 && blob.BlockSize%8 == 0 {
		rv, err := s.db.Blobs().ReadRunsPinned(ref, blobRuns)
		if err != nil {
			return nil, err
		}
		defer rv.Release()
		for i := range blobRuns {
			rv.VisitRun(i, func(dstOff int, seg []byte) {
				for w := 0; w+8 <= len(seg); w += 8 {
					out[(dstOff+w)/8] = math.Float64frombits(leUint64(seg[w:]))
				}
			})
		}
		return out, nil
	}
	// Copying fallback for unaligned layouts: scatter the runs into a
	// staging buffer, then decode.
	dst := make([]byte, dstBytes)
	if err := s.db.Blobs().ReadRuns(ref, dst, blobRuns); err != nil {
		return nil, err
	}
	for i := range out {
		out[i] = math.Float64frombits(leUint64(dst[8*i:]))
	}
	return out, nil
}

func leUint64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

// ServiceStats reports the I/O the service generated, for the blob-size
// trade-off experiment (E10).
type ServiceStats struct {
	PhysicalReads uint64
	BytesRead     uint64
	ChunkReads    uint64
}

// Stats snapshots I/O counters from the underlying pools.
func (s *Store) Stats() ServiceStats {
	ps := s.db.Pool().Stats()
	bs := s.db.Blobs().Stats()
	return ServiceStats{
		PhysicalReads: ps.PhysicalReads,
		BytesRead:     ps.BytesRead,
		ChunkReads:    bs.ChunkReads,
	}
}

// ResetStats zeroes the counters before a measured run.
func (s *Store) ResetStats() {
	s.db.Pool().ResetStats()
	s.db.Blobs().ResetStats()
}

// DropCache clears the buffer pool, forcing cold reads.
func (s *Store) DropCache() error { return s.db.DropCleanBuffers() }
