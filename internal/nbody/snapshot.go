// Package nbody reproduces the paper's §2.3 use case: cosmological
// N-body simulation archives. Particles are grouped "an order of a few
// thousand particles per bucket" into z-ordered octree buckets stored as
// array blobs (reducing 1.6 trillion candidate rows to ~a billion), and
// the analyses the paper lists run on top: friends-of-friends halo
// finding, merger-history linking by shared particle IDs, cloud-in-cell
// density assignment with an FFT power spectrum, two-point correlation
// functions, decimated octrees for visualization, and light-cone
// extraction through cone queries.
package nbody

import (
	"fmt"
	"math"
	"math/rand"
)

// Particle is one simulation particle in the unit box.
type Particle struct {
	ID  int64
	Pos [3]float64 // in [0,1)
	Vel [3]float64
}

// Snapshot is the state of one output time.
type Snapshot struct {
	Step      int
	Particles []Particle
}

// GenParams controls the synthetic snapshot generator.
type GenParams struct {
	N        int     // particle count
	NHalos   int     // number of seeded overdensities
	HaloFrac float64 // fraction of particles bound to halos
	HaloR    float64 // halo scale radius
	Seed     int64
}

// GenerateSnapshot synthesizes a clustered particle distribution: a
// uniform background plus Gaussian halos with infall velocities — a
// stand-in for the 320³-particle simulation outputs (DESIGN.md
// substitution table) that exercises the same bucketization and
// analysis paths.
func GenerateSnapshot(p GenParams) (*Snapshot, error) {
	if p.N < 1 {
		return nil, fmt.Errorf("nbody: particle count %d", p.N)
	}
	if p.HaloFrac < 0 || p.HaloFrac > 1 {
		return nil, fmt.Errorf("nbody: halo fraction %g", p.HaloFrac)
	}
	if p.NHalos < 0 {
		return nil, fmt.Errorf("nbody: halo count %d", p.NHalos)
	}
	if p.HaloR <= 0 {
		p.HaloR = 0.02
	}
	rng := rand.New(rand.NewSource(p.Seed))
	centers := make([][3]float64, p.NHalos)
	for i := range centers {
		centers[i] = [3]float64{rng.Float64(), rng.Float64(), rng.Float64()}
	}
	snap := &Snapshot{Particles: make([]Particle, p.N)}
	for i := 0; i < p.N; i++ {
		pt := Particle{ID: int64(i)}
		if p.NHalos > 0 && rng.Float64() < p.HaloFrac {
			c := centers[rng.Intn(p.NHalos)]
			for d := 0; d < 3; d++ {
				pt.Pos[d] = wrapUnit(c[d] + rng.NormFloat64()*p.HaloR)
				// Virial-ish velocity dispersion plus infall.
				pt.Vel[d] = rng.NormFloat64()*0.3 + 0.5*(c[d]-pt.Pos[d])
			}
		} else {
			for d := 0; d < 3; d++ {
				pt.Pos[d] = rng.Float64()
				pt.Vel[d] = rng.NormFloat64() * 0.1
			}
		}
		snap.Particles[i] = pt
	}
	return snap, nil
}

func wrapUnit(x float64) float64 {
	x = math.Mod(x, 1)
	if x < 0 {
		x += 1
	}
	// Guard against 1.0 from rounding.
	if x >= 1 {
		x = math.Nextafter(1, 0)
	}
	return x
}

// Evolve advances a snapshot by drifting particles along their
// velocities for time dt (periodic wrap), producing the next output
// time. Halo members share bulk motion, so FOF groups persist between
// steps — which is what the merger-history linking needs.
func Evolve(s *Snapshot, dt float64) *Snapshot {
	out := &Snapshot{Step: s.Step + 1, Particles: make([]Particle, len(s.Particles))}
	for i, p := range s.Particles {
		q := p
		for d := 0; d < 3; d++ {
			q.Pos[d] = wrapUnit(p.Pos[d] + p.Vel[d]*dt)
		}
		out.Particles[i] = q
	}
	return out
}
