package nbody

import (
	"fmt"
	"sort"

	"sqlarray/internal/core"
	"sqlarray/internal/engine"
	"sqlarray/internal/octree"
	"sqlarray/internal/sfc"
)

// BucketStore persists a snapshot as array-valued bucket rows: the
// paper's answer to "it does not seem feasible to store the particle
// data broken down into individual rows" (§2.3). Particles are grouped
// by an octree, buckets are ordered along the z-curve, and each row
// carries three arrays (ids, positions, velocities).
type BucketStore struct {
	db    *engine.DB
	table *engine.Table
}

// CreateBucketStore builds the bucket table and ingests the snapshot
// with the given bucket capacity.
func CreateBucketStore(db *engine.DB, name string, snap *Snapshot, bucketSize int) (*BucketStore, error) {
	schema, err := engine.NewSchema(
		engine.Column{Name: "bkey", Type: engine.ColInt64},
		engine.Column{Name: "ids", Type: engine.ColVarBinaryMax},
		engine.Column{Name: "pos", Type: engine.ColVarBinaryMax},
		engine.Column{Name: "vel", Type: engine.ColVarBinaryMax},
	)
	if err != nil {
		return nil, err
	}
	table, err := db.CreateTable(name, schema)
	if err != nil {
		return nil, err
	}
	bs := &BucketStore{db: db, table: table}
	if err := bs.AddSnapshot(snap, bucketSize); err != nil {
		return nil, err
	}
	return bs, nil
}

// bucket is one octree leaf pending storage.
type bucket struct {
	zcode uint64
	parts []Particle
}

// AddSnapshot bucketizes and stores one snapshot. Row keys are
// (step << 44) | zOrderRank so a snapshot scan walks the z-curve.
func (bs *BucketStore) AddSnapshot(snap *Snapshot, bucketSize int) error {
	if bucketSize < 1 {
		return fmt.Errorf("nbody: bucket size %d", bucketSize)
	}
	tree := octree.New(bucketSize)
	byID := make(map[int64]*Particle, len(snap.Particles))
	for i := range snap.Particles {
		p := &snap.Particles[i]
		byID[p.ID] = p
		if err := tree.Insert(octree.Point{X: p.Pos[0], Y: p.Pos[1], Z: p.Pos[2], ID: p.ID}); err != nil {
			return err
		}
	}
	var buckets []bucket
	tree.Buckets(func(x0, y0, z0, size float64, pts []octree.Point) bool {
		const res = 1 << 20
		code, err := sfc.Encode3D(uint32(x0*res), uint32(y0*res), uint32(z0*res))
		if err != nil {
			code = 0
		}
		b := bucket{zcode: code, parts: make([]Particle, len(pts))}
		for i, pt := range pts {
			b.parts[i] = *byID[pt.ID]
		}
		buckets = append(buckets, b)
		return true
	})
	sort.Slice(buckets, func(i, j int) bool { return buckets[i].zcode < buckets[j].zcode })
	rows := make([][]engine.Value, len(buckets))
	for rank, b := range buckets {
		key := int64(snap.Step)<<44 | int64(rank)
		row, err := encodeBucket(b.parts)
		if err != nil {
			return err
		}
		rows[rank] = append([]engine.Value{engine.IntValue(key)}, row...)
	}
	// One bulk commit per snapshot: keys ascend with the z-curve rank, so
	// the loader packs leaves straight off this slice.
	_, err := bs.table.BulkLoad(engine.NewValuesSource(rows), engine.BulkOptions{})
	return err
}

// encodeBucket packs particles into the three array blobs: ids as a
// bigint vector, pos and vel as (n, 3) float64 arrays.
func encodeBucket(parts []Particle) ([]engine.Value, error) {
	n := len(parts)
	ids := make([]int64, n)
	pos := make([]float64, n*3)
	vel := make([]float64, n*3)
	for i, p := range parts {
		ids[i] = p.ID
		for d := 0; d < 3; d++ {
			// Column-major (n,3): element (i,d) at i + d*n.
			pos[i+d*n] = p.Pos[d]
			vel[i+d*n] = p.Vel[d]
		}
	}
	idArr, err := core.FromInt64s(core.Max, core.Int64, ids, n)
	if err != nil {
		return nil, err
	}
	posArr, err := core.FromFloat64s(core.Max, core.Float64, pos, n, 3)
	if err != nil {
		return nil, err
	}
	velArr, err := core.FromFloat64s(core.Max, core.Float64, vel, n, 3)
	if err != nil {
		return nil, err
	}
	return []engine.Value{
		engine.BinaryMaxValue(idArr.Bytes()),
		engine.BinaryMaxValue(posArr.Bytes()),
		engine.BinaryMaxValue(velArr.Bytes()),
	}, nil
}

// Table exposes the bucket table.
func (bs *BucketStore) Table() *engine.Table { return bs.table }

// LoadSnapshot reassembles the particles of one step (order follows the
// z-curve, not particle ID).
func (bs *BucketStore) LoadSnapshot(step int) (*Snapshot, error) {
	lo := int64(step) << 44
	hi := int64(step+1) << 44
	snap := &Snapshot{Step: step}
	var keys []int64
	err := bs.table.Scan(func(key int64, _ *engine.RowView) (bool, error) {
		if key >= lo && key < hi {
			keys = append(keys, key)
		}
		return key < hi, nil
	})
	if err != nil {
		return nil, err
	}
	for _, key := range keys {
		row, err := bs.table.Get(key)
		if err != nil {
			return nil, err
		}
		parts, err := bs.decodeBucket(row)
		if err != nil {
			return nil, err
		}
		snap.Particles = append(snap.Particles, parts...)
	}
	return snap, nil
}

func (bs *BucketStore) decodeBucket(row []engine.Value) ([]Particle, error) {
	arrs := make([]*core.Array, 3)
	for i := 0; i < 3; i++ {
		raw, err := bs.table.FetchBlob(row[1+i].B)
		if err != nil {
			return nil, err
		}
		a, err := core.Wrap(raw)
		if err != nil {
			return nil, err
		}
		arrs[i] = a
	}
	n := arrs[0].Len()
	if arrs[1].Rank() != 2 || arrs[1].Dim(0) != n || arrs[2].Dim(0) != n {
		return nil, fmt.Errorf("nbody: inconsistent bucket arrays")
	}
	out := make([]Particle, n)
	for i := 0; i < n; i++ {
		out[i].ID = arrs[0].IntAt(i)
		for d := 0; d < 3; d++ {
			out[i].Pos[d] = arrs[1].FloatAt(i + d*n)
			out[i].Vel[d] = arrs[2].FloatAt(i + d*n)
		}
	}
	return out, nil
}

// RowStore is the strawman the paper rejects: one row per particle per
// snapshot. Implemented for the storage comparison (E12).
type RowStore struct {
	table *engine.Table
}

// CreateRowStore ingests a snapshot row by row.
func CreateRowStore(db *engine.DB, name string, snap *Snapshot) (*RowStore, error) {
	schema, err := engine.NewSchema(
		engine.Column{Name: "pid", Type: engine.ColInt64},
		engine.Column{Name: "x", Type: engine.ColFloat64},
		engine.Column{Name: "y", Type: engine.ColFloat64},
		engine.Column{Name: "z", Type: engine.ColFloat64},
		engine.Column{Name: "vx", Type: engine.ColFloat64},
		engine.Column{Name: "vy", Type: engine.ColFloat64},
		engine.Column{Name: "vz", Type: engine.ColFloat64},
	)
	if err != nil {
		return nil, err
	}
	table, err := db.CreateTable(name, schema)
	if err != nil {
		return nil, err
	}
	rows := make([][]engine.Value, len(snap.Particles))
	for i, p := range snap.Particles {
		key := int64(snap.Step)<<44 | p.ID
		rows[i] = []engine.Value{
			engine.IntValue(key),
			engine.FloatValue(p.Pos[0]), engine.FloatValue(p.Pos[1]), engine.FloatValue(p.Pos[2]),
			engine.FloatValue(p.Vel[0]), engine.FloatValue(p.Vel[1]), engine.FloatValue(p.Vel[2]),
		}
	}
	if _, err := table.BulkLoad(engine.NewValuesSource(rows), engine.BulkOptions{}); err != nil {
		return nil, err
	}
	return &RowStore{table: table}, nil
}

// Table exposes the per-particle table.
func (rs *RowStore) Table() *engine.Table { return rs.table }
