package nbody

import (
	"fmt"
	"math"
	"sort"
)

// Halo is one friends-of-friends group.
type Halo struct {
	Members []int64 // particle IDs, sorted
	Center  [3]float64
}

// FOF finds friends-of-friends halos: particles closer than the linking
// length belong to the same group (periodic metric); groups smaller
// than minMembers are discarded. This is §2.3's "clusters of particles
// identified by friends of friends (FOF) algorithms within a certain
// distance", implemented with a linked-cell grid and union-find.
func FOF(parts []Particle, linkLen float64, minMembers int) ([]Halo, error) {
	if linkLen <= 0 || linkLen >= 0.5 {
		return nil, fmt.Errorf("nbody: linking length %g outside (0, 0.5)", linkLen)
	}
	n := len(parts)
	if n == 0 {
		return nil, nil
	}
	// Linked-cell grid with cell size >= linkLen: neighbours live in the
	// 27 surrounding cells.
	nc := int(1 / linkLen)
	if nc < 1 {
		nc = 1
	}
	if nc > 128 {
		nc = 128
	}
	cell := func(p [3]float64) int {
		cx := int(p[0] * float64(nc))
		cy := int(p[1] * float64(nc))
		cz := int(p[2] * float64(nc))
		return (cz*nc+cy)*nc + cx
	}
	cells := make(map[int][]int, n)
	for i, p := range parts {
		c := cell(p.Pos)
		cells[c] = append(cells[c], i)
	}
	uf := newUnionFind(n)
	ll2 := linkLen * linkLen
	for i, p := range parts {
		cx := int(p.Pos[0] * float64(nc))
		cy := int(p.Pos[1] * float64(nc))
		cz := int(p.Pos[2] * float64(nc))
		for dz := -1; dz <= 1; dz++ {
			for dy := -1; dy <= 1; dy++ {
				for dx := -1; dx <= 1; dx++ {
					nx, ny, nz := modc(cx+dx, nc), modc(cy+dy, nc), modc(cz+dz, nc)
					for _, j := range cells[(nz*nc+ny)*nc+nx] {
						if j <= i {
							continue
						}
						if periodicDist2(p.Pos, parts[j].Pos) <= ll2 {
							uf.union(i, j)
						}
					}
				}
			}
		}
	}
	groups := map[int][]int{}
	for i := range parts {
		r := uf.find(i)
		groups[r] = append(groups[r], i)
	}
	var halos []Halo
	for _, idxs := range groups {
		if len(idxs) < minMembers {
			continue
		}
		h := Halo{Members: make([]int64, len(idxs))}
		// Periodic centroid via circular mean per axis.
		var sx, cx, sy, cy, sz, cz float64
		for k, i := range idxs {
			h.Members[k] = parts[i].ID
			sx += math.Sin(2 * math.Pi * parts[i].Pos[0])
			cx += math.Cos(2 * math.Pi * parts[i].Pos[0])
			sy += math.Sin(2 * math.Pi * parts[i].Pos[1])
			cy += math.Cos(2 * math.Pi * parts[i].Pos[1])
			sz += math.Sin(2 * math.Pi * parts[i].Pos[2])
			cz += math.Cos(2 * math.Pi * parts[i].Pos[2])
		}
		h.Center = [3]float64{
			wrapUnit(math.Atan2(sx, cx) / (2 * math.Pi)),
			wrapUnit(math.Atan2(sy, cy) / (2 * math.Pi)),
			wrapUnit(math.Atan2(sz, cz) / (2 * math.Pi)),
		}
		sort.Slice(h.Members, func(a, b int) bool { return h.Members[a] < h.Members[b] })
		halos = append(halos, h)
	}
	// Deterministic order: by size descending, then by first member.
	sort.Slice(halos, func(a, b int) bool {
		if len(halos[a].Members) != len(halos[b].Members) {
			return len(halos[a].Members) > len(halos[b].Members)
		}
		return halos[a].Members[0] < halos[b].Members[0]
	})
	return halos, nil
}

// FOFNaive is the O(n²) reference used by tests.
func FOFNaive(parts []Particle, linkLen float64, minMembers int) []Halo {
	n := len(parts)
	uf := newUnionFind(n)
	ll2 := linkLen * linkLen
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if periodicDist2(parts[i].Pos, parts[j].Pos) <= ll2 {
				uf.union(i, j)
			}
		}
	}
	groups := map[int][]int{}
	for i := 0; i < n; i++ {
		r := uf.find(i)
		groups[r] = append(groups[r], i)
	}
	var halos []Halo
	for _, idxs := range groups {
		if len(idxs) < minMembers {
			continue
		}
		h := Halo{Members: make([]int64, len(idxs))}
		for k, i := range idxs {
			h.Members[k] = parts[i].ID
		}
		sort.Slice(h.Members, func(a, b int) bool { return h.Members[a] < h.Members[b] })
		halos = append(halos, h)
	}
	sort.Slice(halos, func(a, b int) bool {
		if len(halos[a].Members) != len(halos[b].Members) {
			return len(halos[a].Members) > len(halos[b].Members)
		}
		return halos[a].Members[0] < halos[b].Members[0]
	})
	return halos
}

func modc(i, n int) int {
	i %= n
	if i < 0 {
		i += n
	}
	return i
}

// periodicDist2 is the squared minimum-image distance in the unit box.
func periodicDist2(a, b [3]float64) float64 {
	s := 0.0
	for d := 0; d < 3; d++ {
		dd := math.Abs(a[d] - b[d])
		if dd > 0.5 {
			dd = 1 - dd
		}
		s += dd * dd
	}
	return s
}

// unionFind is a standard weighted quick-union with path halving.
type unionFind struct {
	parent []int
	size   []int
}

func newUnionFind(n int) *unionFind {
	uf := &unionFind{parent: make([]int, n), size: make([]int, n)}
	for i := range uf.parent {
		uf.parent[i] = i
		uf.size[i] = 1
	}
	return uf
}

func (uf *unionFind) find(x int) int {
	for uf.parent[x] != x {
		uf.parent[x] = uf.parent[uf.parent[x]]
		x = uf.parent[x]
	}
	return x
}

func (uf *unionFind) union(a, b int) {
	ra, rb := uf.find(a), uf.find(b)
	if ra == rb {
		return
	}
	if uf.size[ra] < uf.size[rb] {
		ra, rb = rb, ra
	}
	uf.parent[rb] = ra
	uf.size[ra] += uf.size[rb]
}
