package nbody

import (
	"math"
	"sort"
	"testing"

	"sqlarray/internal/engine"
	"sqlarray/internal/octree"
)

func genSnap(t *testing.T, n int, halos int) *Snapshot {
	t.Helper()
	s, err := GenerateSnapshot(GenParams{
		N: n, NHalos: halos, HaloFrac: 0.6, HaloR: 0.015, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestGenerateSnapshotValidation(t *testing.T) {
	if _, err := GenerateSnapshot(GenParams{N: 0}); err == nil {
		t.Error("zero particles must fail")
	}
	if _, err := GenerateSnapshot(GenParams{N: 10, HaloFrac: 1.5}); err == nil {
		t.Error("bad halo fraction must fail")
	}
	if _, err := GenerateSnapshot(GenParams{N: 10, NHalos: -1}); err == nil {
		t.Error("negative halos must fail")
	}
	s := genSnap(t, 500, 3)
	for _, p := range s.Particles {
		for d := 0; d < 3; d++ {
			if p.Pos[d] < 0 || p.Pos[d] >= 1 {
				t.Fatalf("particle outside unit box: %v", p.Pos)
			}
		}
	}
}

func TestEvolvePreservesIDsAndWraps(t *testing.T) {
	s := genSnap(t, 100, 2)
	next := Evolve(s, 0.01)
	if next.Step != s.Step+1 || len(next.Particles) != 100 {
		t.Fatal("evolve metadata wrong")
	}
	for i := range next.Particles {
		if next.Particles[i].ID != s.Particles[i].ID {
			t.Fatal("IDs must be stable across snapshots")
		}
		for d := 0; d < 3; d++ {
			if next.Particles[i].Pos[d] < 0 || next.Particles[i].Pos[d] >= 1 {
				t.Fatal("evolved position outside box")
			}
		}
	}
}

func TestFOFMatchesNaive(t *testing.T) {
	s := genSnap(t, 600, 4)
	fast, err := FOF(s.Particles, 0.02, 5)
	if err != nil {
		t.Fatal(err)
	}
	slow := FOFNaive(s.Particles, 0.02, 5)
	if len(fast) != len(slow) {
		t.Fatalf("halo counts differ: %d vs %d", len(fast), len(slow))
	}
	for i := range fast {
		if len(fast[i].Members) != len(slow[i].Members) {
			t.Fatalf("halo %d sizes differ", i)
		}
		for j := range fast[i].Members {
			if fast[i].Members[j] != slow[i].Members[j] {
				t.Fatalf("halo %d member %d differs", i, j)
			}
		}
	}
	if len(fast) == 0 {
		t.Error("clustered snapshot should yield halos")
	}
}

func TestFOFValidation(t *testing.T) {
	s := genSnap(t, 50, 1)
	if _, err := FOF(s.Particles, 0, 5); err == nil {
		t.Error("zero linking length must fail")
	}
	if _, err := FOF(s.Particles, 0.6, 5); err == nil {
		t.Error("half-box linking length must fail")
	}
	if h, err := FOF(nil, 0.1, 5); err != nil || h != nil {
		t.Errorf("empty input: %v, %v", h, err)
	}
}

func TestFOFPeriodicLinking(t *testing.T) {
	// A pair straddling the box boundary must link.
	parts := []Particle{
		{ID: 1, Pos: [3]float64{0.001, 0.5, 0.5}},
		{ID: 2, Pos: [3]float64{0.999, 0.5, 0.5}},
	}
	halos, err := FOF(parts, 0.01, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(halos) != 1 || len(halos[0].Members) != 2 {
		t.Fatalf("boundary pair not linked: %+v", halos)
	}
	// The periodic centroid sits near the boundary, not at 0.5.
	cx := halos[0].Center[0]
	if cx > 0.1 && cx < 0.9 {
		t.Errorf("periodic centroid = %g, want near 0 or 1", cx)
	}
}

func TestMergerLinking(t *testing.T) {
	s0 := genSnap(t, 2000, 5)
	s1 := Evolve(s0, 0.005)
	h0, err := FOF(s0.Particles, 0.02, 10)
	if err != nil {
		t.Fatal(err)
	}
	h1, err := FOF(s1.Particles, 0.02, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(h0) == 0 || len(h1) == 0 {
		t.Skip("no halos formed; generator parameters too diffuse")
	}
	links := LinkMergers(h0, h1)
	linked := 0
	for _, l := range links {
		if l.ProgenitorIdx >= 0 {
			linked++
			// The progenitor must actually share particles.
			if l.Shared == 0 {
				t.Error("link with zero shared particles")
			}
		}
	}
	if linked < len(h1)/2 {
		t.Errorf("only %d of %d halos linked to progenitors", linked, len(h1))
	}
}

func TestCICMassConservation(t *testing.T) {
	s := genSnap(t, 3000, 4)
	rho, err := CICDensity(s.Particles, 16)
	if err != nil {
		t.Fatal(err)
	}
	total := 0.0
	for _, v := range rho {
		total += v
	}
	if math.Abs(total-3000) > 1e-6 {
		t.Errorf("CIC total mass = %g, want 3000", total)
	}
	if _, err := CICDensity(s.Particles, 1); err == nil {
		t.Error("1-cell grid must fail")
	}
}

func TestCICUniformLatticeIsFlat(t *testing.T) {
	// Particles exactly at cell centres deposit all mass in one cell.
	n := 8
	parts := make([]Particle, 0, n*n*n)
	id := int64(0)
	for z := 0; z < n; z++ {
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				parts = append(parts, Particle{
					ID: id,
					Pos: [3]float64{
						(float64(x) + 0.5) / float64(n),
						(float64(y) + 0.5) / float64(n),
						(float64(z) + 0.5) / float64(n),
					},
				})
				id++
			}
		}
	}
	rho, err := CICDensity(parts, n)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range rho {
		if math.Abs(v-1) > 1e-9 {
			t.Fatalf("cell %d density = %g, want 1", i, v)
		}
	}
}

func TestPowerSpectrumClusteringSignal(t *testing.T) {
	clustered := genSnap(t, 4000, 4)
	uniform, err := GenerateSnapshot(GenParams{N: 4000, NHalos: 0, HaloFrac: 0, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	pc, err := PowerSpectrum(clustered.Particles, 16)
	if err != nil {
		t.Fatal(err)
	}
	pu, err := PowerSpectrum(uniform.Particles, 16)
	if err != nil {
		t.Fatal(err)
	}
	// Clustered matter has far more large-scale (low-k) power.
	var lowC, lowU float64
	for k := 1; k <= 4; k++ {
		lowC += pc[k]
		lowU += pu[k]
	}
	if lowC < 5*lowU {
		t.Errorf("clustered low-k power %g not well above uniform %g", lowC, lowU)
	}
}

func TestTwoPointCorrelation(t *testing.T) {
	clustered := genSnap(t, 3000, 4)
	bins := []float64{0.01, 0.02, 0.05, 0.1, 0.2}
	xi, err := TwoPointCorrelation(clustered.Particles, bins)
	if err != nil {
		t.Fatal(err)
	}
	if xi[0] < 1 {
		t.Errorf("small-scale clustering xi[0] = %g, want >> 0", xi[0])
	}
	// A uniform distribution is consistent with zero.
	uniform, _ := GenerateSnapshot(GenParams{N: 3000, NHalos: 0, Seed: 9})
	xiU, err := TwoPointCorrelation(uniform.Particles, bins)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range xiU {
		if math.Abs(v) > 0.5 {
			t.Errorf("uniform xi[%d] = %g, want ~0", k, v)
		}
	}
	// Validation.
	if _, err := TwoPointCorrelation(clustered.Particles, nil); err == nil {
		t.Error("no bins must fail")
	}
	if _, err := TwoPointCorrelation(clustered.Particles, []float64{0.2, 0.1}); err == nil {
		t.Error("descending bins must fail")
	}
	if _, err := TwoPointCorrelation(clustered.Particles, []float64{0.6}); err == nil {
		t.Error("over-half-box radius must fail")
	}
}

func TestLightcone(t *testing.T) {
	s0 := genSnap(t, 3000, 3)
	s1 := Evolve(s0, 0.01)
	s2 := Evolve(s1, 0.01)
	cone := octree.Cone{
		Apex:      [3]float64{0.02, 0.02, 0.02},
		Axis:      [3]float64{1, 1, 1},
		HalfAngle: 0.5,
	}
	edges := []float64{0.05, 0.3, 0.6, 0.95}
	pts, err := Lightcone([]*Snapshot{s2, s1, s0}, edges, cone, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) == 0 {
		t.Fatal("empty light-cone")
	}
	if !sort.SliceIsSorted(pts, func(i, j int) bool { return pts[i].Dist < pts[j].Dist }) {
		t.Error("light-cone not sorted by distance")
	}
	for _, p := range pts {
		// Shell/snapshot correspondence: nearest shell from s2 (step 2).
		var wantStep int
		switch {
		case p.Dist < 0.3:
			wantStep = 2
		case p.Dist < 0.6:
			wantStep = 1
		default:
			wantStep = 0
		}
		if p.Step != wantStep {
			t.Fatalf("particle at %g from step %d, want %d", p.Dist, p.Step, wantStep)
		}
		if p.Dist < 0.05 || p.Dist >= 0.95 {
			t.Fatalf("particle outside shells at %g", p.Dist)
		}
	}
	// Redshift grows with distance on average (Hubble flow dominates).
	if pts[0].Redshift > pts[len(pts)-1].Redshift {
		t.Error("redshift not increasing outward")
	}
	// Validation.
	if _, err := Lightcone([]*Snapshot{s0}, []float64{0, 1, 2}, cone, 1); err == nil {
		t.Error("edge/snapshot mismatch must fail")
	}
	if _, err := Lightcone([]*Snapshot{s0}, []float64{0.5, 0.1}, cone, 1); err == nil {
		t.Error("empty shell must fail")
	}
}

func TestBucketStoreRoundtrip(t *testing.T) {
	db := engine.NewMemDB()
	s := genSnap(t, 5000, 4)
	bs, err := CreateBucketStore(db, "parts", s, 512)
	if err != nil {
		t.Fatal(err)
	}
	back, err := bs.LoadSnapshot(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Particles) != 5000 {
		t.Fatalf("loaded %d particles", len(back.Particles))
	}
	// Same particle set (order differs: z-curve vs ID).
	orig := map[int64]Particle{}
	for _, p := range s.Particles {
		orig[p.ID] = p
	}
	for _, p := range back.Particles {
		w, ok := orig[p.ID]
		if !ok {
			t.Fatalf("unknown particle %d", p.ID)
		}
		for d := 0; d < 3; d++ {
			if p.Pos[d] != w.Pos[d] || p.Vel[d] != w.Vel[d] {
				t.Fatalf("particle %d data mismatch", p.ID)
			}
		}
	}
}

func TestBucketVsRowStorage(t *testing.T) {
	// The §2.3 argument: bucketized arrays need orders of magnitude
	// fewer rows than row-per-particle.
	db := engine.NewMemDB()
	s := genSnap(t, 8000, 4)
	bs, err := CreateBucketStore(db, "buckets", s, 1000)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := CreateRowStore(db, "rows", s)
	if err != nil {
		t.Fatal(err)
	}
	bRows := bs.Table().Rows()
	rRows := rs.Table().Rows()
	if rRows != 8000 {
		t.Fatalf("row store rows = %d", rRows)
	}
	if bRows*100 > rRows {
		t.Errorf("bucket rows %d not <<< particle rows %d", bRows, rRows)
	}
	bStats, err := bs.Table().Stats()
	if err != nil {
		t.Fatal(err)
	}
	rStats, err := rs.Table().Stats()
	if err != nil {
		t.Fatal(err)
	}
	if bStats.LeafPages >= rStats.LeafPages {
		t.Errorf("bucket leaf pages %d >= row leaf pages %d (index should shrink)",
			bStats.LeafPages, rStats.LeafPages)
	}
	// Multi-snapshot keys do not collide.
	s1 := Evolve(s, 0.01)
	if err := bs.AddSnapshot(s1, 1000); err != nil {
		t.Fatal(err)
	}
	back1, err := bs.LoadSnapshot(1)
	if err != nil || len(back1.Particles) != 8000 {
		t.Fatalf("snapshot 1 load: %d, %v", len(back1.Particles), err)
	}
	back0, err := bs.LoadSnapshot(0)
	if err != nil || len(back0.Particles) != 8000 {
		t.Fatalf("snapshot 0 reload: %d, %v", len(back0.Particles), err)
	}
}
