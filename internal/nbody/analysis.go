package nbody

import (
	"fmt"
	"math"
	"sort"

	"sqlarray/internal/fft"
	"sqlarray/internal/octree"
)

// MergerLink connects a halo to its main progenitor in the previous
// snapshot.
type MergerLink struct {
	HaloIdx       int // index into the later snapshot's halo list
	ProgenitorIdx int // index into the earlier list, -1 if none
	Shared        int // particles in common
}

// LinkMergers matches halos across snapshots "by comparing the particle
// labels in the halos at different time steps" (§2.3): each later halo
// links to the earlier halo contributing the most shared IDs.
func LinkMergers(earlier, later []Halo) []MergerLink {
	owner := map[int64]int{}
	for hi, h := range earlier {
		for _, id := range h.Members {
			owner[id] = hi
		}
	}
	links := make([]MergerLink, len(later))
	for li, h := range later {
		counts := map[int]int{}
		for _, id := range h.Members {
			if hi, ok := owner[id]; ok {
				counts[hi]++
			}
		}
		best, bestN := -1, 0
		for hi, n := range counts {
			if n > bestN || (n == bestN && hi < best) {
				best, bestN = hi, n
			}
		}
		links[li] = MergerLink{HaloIdx: li, ProgenitorIdx: best, Shared: bestN}
	}
	return links
}

// CICDensity assigns particle mass onto an n³ grid with the cloud-in-
// cell kernel ("compute the density over a 6403 grid, interpolating over
// the particle positions, using a cloud-in-cell (CIC) algorithm",
// §2.3). Each particle deposits trilinear weights onto its 8
// surrounding cells; total mass is exactly conserved.
func CICDensity(parts []Particle, n int) ([]float64, error) {
	if n < 2 {
		return nil, fmt.Errorf("nbody: CIC grid side %d", n)
	}
	rho := make([]float64, n*n*n)
	fn := float64(n)
	for _, p := range parts {
		// Cell-centred convention: particle at x deposits between cell
		// floor(x·n - 0.5) and its neighbour.
		x := p.Pos[0]*fn - 0.5
		y := p.Pos[1]*fn - 0.5
		z := p.Pos[2]*fn - 0.5
		ix, iy, iz := int(math.Floor(x)), int(math.Floor(y)), int(math.Floor(z))
		tx, ty, tz := x-float64(ix), y-float64(iy), z-float64(iz)
		for dz := 0; dz < 2; dz++ {
			wz := tz
			if dz == 0 {
				wz = 1 - tz
			}
			gz := modc(iz+dz, n)
			for dy := 0; dy < 2; dy++ {
				wy := ty
				if dy == 0 {
					wy = 1 - ty
				}
				gy := modc(iy+dy, n)
				row := (gz*n + gy) * n
				for dx := 0; dx < 2; dx++ {
					wx := tx
					if dx == 0 {
						wx = 1 - tx
					}
					gx := modc(ix+dx, n)
					rho[row+gx] += wx * wy * wz
				}
			}
		}
	}
	return rho, nil
}

// PowerSpectrum computes P(k) of the density contrast δ = ρ/ρ̄ - 1 via
// the FFT substrate, returning shell-averaged power per integer k.
func PowerSpectrum(parts []Particle, n int) ([]float64, error) {
	rho, err := CICDensity(parts, n)
	if err != nil {
		return nil, err
	}
	mean := 0.0
	for _, v := range rho {
		mean += v
	}
	mean /= float64(len(rho))
	if mean == 0 {
		return nil, fmt.Errorf("nbody: empty density field")
	}
	delta := make([]complex128, len(rho))
	for i, v := range rho {
		delta[i] = complex(v/mean-1, 0)
	}
	if err := fft.FFTN(delta, []int{n, n, n}, fft.Forward); err != nil {
		return nil, err
	}
	p, _, err := fft.PowerSpectrum3D(delta, n)
	return p, err
}

// TwoPointCorrelation estimates ξ(r) with the natural estimator
// DD/RR − 1 on the periodic unit box, where RR is analytic (shell
// volume × pair density). bins are the right edges of the radial bins.
func TwoPointCorrelation(parts []Particle, bins []float64) ([]float64, error) {
	if len(bins) == 0 {
		return nil, fmt.Errorf("nbody: no bins")
	}
	for i := 1; i < len(bins); i++ {
		if bins[i] <= bins[i-1] {
			return nil, fmt.Errorf("nbody: bins not ascending")
		}
	}
	rmax := bins[len(bins)-1]
	if rmax >= 0.5 {
		return nil, fmt.Errorf("nbody: max radius %g exceeds half box", rmax)
	}
	// Count pairs with an octree (points near the boundary are handled
	// by the minimum-image metric in a direct pass over candidates from
	// a slightly enlarged sphere query — the tree is not periodic, so
	// use the linked-cell approach instead for exactness).
	n := len(parts)
	dd := make([]int64, len(bins))
	nc := int(1 / rmax)
	if nc < 1 {
		nc = 1
	}
	if nc > 64 {
		nc = 64
	}
	cells := make(map[int][]int, n)
	cellOf := func(p [3]float64) (int, int, int) {
		return int(p[0] * float64(nc)), int(p[1] * float64(nc)), int(p[2] * float64(nc))
	}
	for i, p := range parts {
		cx, cy, cz := cellOf(p.Pos)
		cells[(cz*nc+cy)*nc+cx] = append(cells[(cz*nc+cy)*nc+cx], i)
	}
	reach := 1
	if nc > 2 {
		reach = int(math.Ceil(rmax*float64(nc))) + 1
	}
	for i, p := range parts {
		cx, cy, cz := cellOf(p.Pos)
		for dz := -reach; dz <= reach; dz++ {
			for dy := -reach; dy <= reach; dy++ {
				for dx := -reach; dx <= reach; dx++ {
					key := (modc(cz+dz, nc)*nc+modc(cy+dy, nc))*nc + modc(cx+dx, nc)
					for _, j := range cells[key] {
						if j <= i {
							continue
						}
						r := math.Sqrt(periodicDist2(p.Pos, parts[j].Pos))
						if r > rmax {
							continue
						}
						k := sort.SearchFloat64s(bins, r)
						if k < len(bins) {
							dd[k]++
						}
					}
				}
			}
		}
	}
	// Analytic RR for a periodic box of volume 1: expected pairs in a
	// shell = N(N-1)/2 × shell volume.
	out := make([]float64, len(bins))
	prev := 0.0
	pairNorm := float64(n) * float64(n-1) / 2
	for k, hi := range bins {
		shellVol := 4 * math.Pi / 3 * (hi*hi*hi - prev*prev*prev)
		expected := pairNorm * shellVol
		if expected > 0 {
			out[k] = float64(dd[k])/expected - 1
		}
		prev = hi
	}
	return out, nil
}

// LightconePoint is one particle on the observer's light-cone.
type LightconePoint struct {
	Particle
	Dist     float64 // comoving distance from the observer
	Step     int     // snapshot the particle was taken from
	Redshift float64 // distance redshift + radial Doppler term
}

// Lightcone extracts particles inside a viewing cone, taking each
// radial shell from the snapshot whose epoch matches it ("as we look
// farther, the simulation box needs to be taken from an earlier time
// step", §2.3) and attaching a Doppler-shifted redshift along the
// radial direction. shellEdges must have len(snaps)+1 ascending entries:
// shell i = [shellEdges[i], shellEdges[i+1]) uses snaps[i], nearest
// first (latest epoch first).
func Lightcone(snaps []*Snapshot, shellEdges []float64, cone octree.Cone, hubble float64) ([]LightconePoint, error) {
	if len(shellEdges) != len(snaps)+1 {
		return nil, fmt.Errorf("nbody: %d shell edges for %d snapshots", len(shellEdges), len(snaps))
	}
	var out []LightconePoint
	for si, snap := range snaps {
		lo, hi := shellEdges[si], shellEdges[si+1]
		if hi <= lo {
			return nil, fmt.Errorf("nbody: shell %d empty [%g,%g)", si, lo, hi)
		}
		tree := octree.New(256)
		for i := range snap.Particles {
			p := &snap.Particles[i]
			err := tree.Insert(octree.Point{X: p.Pos[0], Y: p.Pos[1], Z: p.Pos[2], ID: p.ID})
			if err != nil {
				return nil, err
			}
		}
		c := cone
		c.RMin, c.RMax = lo, hi
		hits := tree.QueryCone(c)
		for _, h := range hits {
			if h.ID < 0 || int(h.ID) >= len(snap.Particles) {
				continue // foreign IDs: caller did not use generator ordering
			}
			p := snap.Particles[h.ID] // IDs are slice indexes by construction
			dx := [3]float64{p.Pos[0] - cone.Apex[0], p.Pos[1] - cone.Apex[1], p.Pos[2] - cone.Apex[2]}
			dist := math.Sqrt(dx[0]*dx[0] + dx[1]*dx[1] + dx[2]*dx[2])
			if dist == 0 {
				continue
			}
			vr := (p.Vel[0]*dx[0] + p.Vel[1]*dx[1] + p.Vel[2]*dx[2]) / dist
			out = append(out, LightconePoint{
				Particle: p,
				Dist:     dist,
				Step:     snap.Step,
				Redshift: hubble*dist + vr,
			})
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Dist < out[b].Dist })
	return out, nil
}
