package octree

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func randPoints(rng *rand.Rand, n int) []Point {
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{X: rng.Float64(), Y: rng.Float64(), Z: rng.Float64(), ID: int64(i)}
	}
	return pts
}

func buildTree(t *testing.T, pts []Point, bucket int) *Tree {
	t.Helper()
	tr := New(bucket)
	for _, p := range pts {
		if err := tr.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	return tr
}

func TestInsertBounds(t *testing.T) {
	tr := New(4)
	if err := tr.Insert(Point{X: 1.0, Y: 0, Z: 0}); !errors.Is(err, ErrBounds) {
		t.Errorf("x=1 must fail (half-open cube): %v", err)
	}
	if err := tr.Insert(Point{X: -0.1, Y: 0.5, Z: 0.5}); !errors.Is(err, ErrBounds) {
		t.Errorf("negative must fail: %v", err)
	}
	if err := tr.Insert(Point{X: 0, Y: 0, Z: 0}); err != nil {
		t.Errorf("origin must insert: %v", err)
	}
	if tr.Len() != 1 {
		t.Errorf("Len = %d", tr.Len())
	}
}

func TestBucketsPartitionPoints(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts := randPoints(rng, 2000)
	tr := buildTree(t, pts, 32)
	seen := map[int64]bool{}
	buckets := 0
	tr.Buckets(func(x0, y0, z0, size float64, bpts []Point) bool {
		buckets++
		if len(bpts) == 0 {
			t.Error("empty bucket visited")
		}
		for _, p := range bpts {
			if seen[p.ID] {
				t.Fatalf("point %d in two buckets", p.ID)
			}
			seen[p.ID] = true
			// The point must lie in the bucket's cube.
			if p.X < x0 || p.X >= x0+size || p.Y < y0 || p.Y >= y0+size || p.Z < z0 || p.Z >= z0+size {
				t.Fatalf("point %d outside its bucket", p.ID)
			}
		}
		return true
	})
	if len(seen) != 2000 {
		t.Errorf("buckets covered %d points", len(seen))
	}
	if buckets < 2000/32 {
		t.Errorf("only %d buckets for 2000 points at bucket size 32", buckets)
	}
	// Early stop works.
	n := 0
	tr.Buckets(func(_, _, _, _ float64, _ []Point) bool { n++; return false })
	if n != 1 {
		t.Errorf("early stop visited %d", n)
	}
}

func TestSplitOnOverflow(t *testing.T) {
	tr := New(4)
	// 10 points in the same octant force recursive splits.
	for i := 0; i < 10; i++ {
		if err := tr.Insert(Point{X: 0.01 + float64(i)*0.001, Y: 0.01, Z: 0.01, ID: int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Len() != 10 {
		t.Errorf("Len = %d", tr.Len())
	}
	// All points still findable.
	got := tr.QueryBox([3]float64{0, 0, 0}, [3]float64{0.1, 0.1, 0.1})
	if len(got) != 10 {
		t.Errorf("box found %d of 10", len(got))
	}
}

func TestQueryBoxMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts := randPoints(rng, 3000)
	tr := buildTree(t, pts, 16)
	for trial := 0; trial < 20; trial++ {
		var lo, hi [3]float64
		for d := 0; d < 3; d++ {
			a, b := rng.Float64(), rng.Float64()
			if a > b {
				a, b = b, a
			}
			lo[d], hi[d] = a, b
		}
		got := tr.QueryBox(lo, hi)
		want := 0
		for _, p := range pts {
			if p.X >= lo[0] && p.X < hi[0] && p.Y >= lo[1] && p.Y < hi[1] && p.Z >= lo[2] && p.Z < hi[2] {
				want++
			}
		}
		if len(got) != want {
			t.Fatalf("trial %d: box found %d, want %d", trial, len(got), want)
		}
	}
}

func TestQuerySphereMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := randPoints(rng, 3000)
	tr := buildTree(t, pts, 16)
	for trial := 0; trial < 20; trial++ {
		c := [3]float64{rng.Float64(), rng.Float64(), rng.Float64()}
		r := 0.05 + 0.3*rng.Float64()
		got := tr.QuerySphere(c, r)
		want := 0
		for _, p := range pts {
			dx, dy, dz := p.X-c[0], p.Y-c[1], p.Z-c[2]
			if dx*dx+dy*dy+dz*dz <= r*r {
				want++
			}
		}
		if len(got) != want {
			t.Fatalf("trial %d: sphere found %d, want %d", trial, len(got), want)
		}
	}
}

func TestQueryConeMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pts := randPoints(rng, 3000)
	tr := buildTree(t, pts, 16)
	for trial := 0; trial < 20; trial++ {
		cone := Cone{
			Apex:      [3]float64{rng.Float64() * 0.3, rng.Float64() * 0.3, rng.Float64() * 0.3},
			Axis:      [3]float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()},
			HalfAngle: 0.15 + 0.4*rng.Float64(),
			RMin:      0.05,
			RMax:      0.9,
		}
		norm := math.Sqrt(cone.Axis[0]*cone.Axis[0] + cone.Axis[1]*cone.Axis[1] + cone.Axis[2]*cone.Axis[2])
		if norm == 0 {
			continue
		}
		got := tr.QueryCone(cone)
		gotIDs := map[int64]bool{}
		for _, p := range got {
			gotIDs[p.ID] = true
		}
		cosA := math.Cos(cone.HalfAngle)
		want := 0
		for _, p := range pts {
			dx, dy, dz := p.X-cone.Apex[0], p.Y-cone.Apex[1], p.Z-cone.Apex[2]
			dist := math.Sqrt(dx*dx + dy*dy + dz*dz)
			if dist < cone.RMin || dist > cone.RMax || dist == 0 {
				continue
			}
			if (dx*cone.Axis[0]+dy*cone.Axis[1]+dz*cone.Axis[2])/(dist*norm) >= cosA {
				want++
				if !gotIDs[p.ID] {
					t.Fatalf("trial %d: point %d missing from cone", trial, p.ID)
				}
			}
		}
		if len(got) != want {
			t.Fatalf("trial %d: cone found %d, want %d", trial, len(got), want)
		}
	}
	// Degenerate axis returns nothing.
	if out := tr.QueryCone(Cone{HalfAngle: 0.5, RMax: 1}); out != nil {
		t.Error("zero axis must return nothing")
	}
}

func TestDecimate(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pts := randPoints(rng, 5000)
	tr := buildTree(t, pts, 64)
	dec := tr.Decimate(3) // 8³ = 512 cells max
	if len(dec) == 0 || len(dec) > 512 {
		t.Fatalf("decimated to %d cells", len(dec))
	}
	// Weights sum to the original count.
	total := 0
	for _, d := range dec {
		total += d.Weight
		if d.Weight <= 0 {
			t.Error("non-positive weight")
		}
		if d.X < 0 || d.X >= 1 || d.Y < 0 || d.Y >= 1 || d.Z < 0 || d.Z >= 1 {
			t.Error("centroid outside cube")
		}
	}
	if total != 5000 {
		t.Errorf("weights sum to %d, want 5000", total)
	}
	// Finer decimation produces more cells.
	fine := tr.Decimate(5)
	if len(fine) <= len(dec) {
		t.Errorf("depth 5 gave %d cells, depth 3 gave %d", len(fine), len(dec))
	}
}
