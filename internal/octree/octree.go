// Package octree implements a point octree over the unit cube: the
// spatial index the paper's N-body use case calls for (§2.3 — "arrange
// the data in coherent chunks organized into a spatial octree, not
// necessarily balanced", bucketized so "an order of a few thousand
// particles per bucket" reduces row counts by orders of magnitude),
// plus the decimated multi-resolution particle sets used for
// visualization and geometric queries (cones for light-cones, spheres
// and boxes).
package octree

import (
	"errors"
	"fmt"
	"math"
)

// Point is one particle: position in [0,1)³ plus a caller identifier.
type Point struct {
	X, Y, Z float64
	ID      int64
}

// ErrBounds reports a point outside the unit cube.
var ErrBounds = errors.New("octree: point outside unit cube")

// Tree is a bucketized point octree. Leaves hold up to BucketSize points;
// inserting into a full leaf splits it (unless MaxDepth is reached, in
// which case the bucket grows unboundedly — the tree is "not necessarily
// balanced").
type Tree struct {
	BucketSize int
	MaxDepth   int
	root       *treeNode
	count      int
}

type treeNode struct {
	// Cube covered: [x0, x0+size) etc.
	x0, y0, z0 float64
	size       float64
	depth      int
	pts        []Point // leaf payload (nil for internal nodes after split)
	kids       *[8]*treeNode
}

// New creates an empty octree with the given leaf capacity.
func New(bucketSize int) *Tree {
	if bucketSize < 1 {
		bucketSize = 1
	}
	return &Tree{
		BucketSize: bucketSize,
		MaxDepth:   21,
		root:       &treeNode{size: 1},
	}
}

// Len returns the number of stored points.
func (t *Tree) Len() int { return t.count }

// Insert adds a point.
func (t *Tree) Insert(p Point) error {
	if p.X < 0 || p.X >= 1 || p.Y < 0 || p.Y >= 1 || p.Z < 0 || p.Z >= 1 {
		return fmt.Errorf("%w: (%g,%g,%g)", ErrBounds, p.X, p.Y, p.Z)
	}
	n := t.root
	for n.kids != nil {
		n = n.childFor(p)
	}
	n.pts = append(n.pts, p)
	t.count++
	if len(n.pts) > t.BucketSize && n.depth < t.MaxDepth {
		t.split(n)
	}
	return nil
}

func (n *treeNode) childFor(p Point) *treeNode {
	half := n.size / 2
	oct := 0
	if p.X >= n.x0+half {
		oct |= 1
	}
	if p.Y >= n.y0+half {
		oct |= 2
	}
	if p.Z >= n.z0+half {
		oct |= 4
	}
	return n.kids[oct]
}

func (t *Tree) split(n *treeNode) {
	half := n.size / 2
	var kids [8]*treeNode
	for oct := 0; oct < 8; oct++ {
		kids[oct] = &treeNode{
			x0:    n.x0 + float64(oct&1)*half,
			y0:    n.y0 + float64((oct>>1)&1)*half,
			z0:    n.z0 + float64((oct>>2)&1)*half,
			size:  half,
			depth: n.depth + 1,
		}
	}
	n.kids = &kids
	pts := n.pts
	n.pts = nil
	for _, p := range pts {
		c := n.childFor(p)
		c.pts = append(c.pts, p)
	}
	// Recursively split any child that is still over capacity (all
	// points may have landed in one octant).
	for _, c := range kids {
		if len(c.pts) > t.BucketSize && c.depth < t.MaxDepth {
			t.split(c)
		}
	}
}

// Buckets visits every non-empty leaf with its cube and points. The
// N-body storage layer maps each bucket to one array-valued row.
func (t *Tree) Buckets(f func(x0, y0, z0, size float64, pts []Point) bool) {
	var walk func(n *treeNode) bool
	walk = func(n *treeNode) bool {
		if n.kids != nil {
			for _, c := range n.kids {
				if !walk(c) {
					return false
				}
			}
			return true
		}
		if len(n.pts) == 0 {
			return true
		}
		return f(n.x0, n.y0, n.z0, n.size, n.pts)
	}
	walk(t.root)
}

// QueryBox returns all points inside the axis-aligned box [lo, hi).
func (t *Tree) QueryBox(lo, hi [3]float64) []Point {
	var out []Point
	var walk func(n *treeNode)
	walk = func(n *treeNode) {
		if n.x0 >= hi[0] || n.x0+n.size <= lo[0] ||
			n.y0 >= hi[1] || n.y0+n.size <= lo[1] ||
			n.z0 >= hi[2] || n.z0+n.size <= lo[2] {
			return
		}
		if n.kids != nil {
			for _, c := range n.kids {
				walk(c)
			}
			return
		}
		for _, p := range n.pts {
			if p.X >= lo[0] && p.X < hi[0] &&
				p.Y >= lo[1] && p.Y < hi[1] &&
				p.Z >= lo[2] && p.Z < hi[2] {
				out = append(out, p)
			}
		}
	}
	walk(t.root)
	return out
}

// QuerySphere returns all points within radius r of center c.
func (t *Tree) QuerySphere(c [3]float64, r float64) []Point {
	var out []Point
	r2 := r * r
	var walk func(n *treeNode)
	walk = func(n *treeNode) {
		// Distance from c to the node cube.
		d2 := 0.0
		for i, lo := range [3]float64{n.x0, n.y0, n.z0} {
			hi := lo + n.size
			switch {
			case c[i] < lo:
				d := lo - c[i]
				d2 += d * d
			case c[i] > hi:
				d := c[i] - hi
				d2 += d * d
			}
		}
		if d2 > r2 {
			return
		}
		if n.kids != nil {
			for _, k := range n.kids {
				walk(k)
			}
			return
		}
		for _, p := range n.pts {
			dx, dy, dz := p.X-c[0], p.Y-c[1], p.Z-c[2]
			if dx*dx+dy*dy+dz*dz <= r2 {
				out = append(out, p)
			}
		}
	}
	walk(t.root)
	return out
}

// Cone is an apex + axis + half-angle query region — the geometric
// primitive the light-cone extraction needs ("a spatial index that can
// retrieve points from within a cone", §2.3). Points between rMin and
// rMax along the cone are returned.
type Cone struct {
	Apex      [3]float64
	Axis      [3]float64 // need not be normalized
	HalfAngle float64    // radians, in (0, π/2)
	RMin      float64
	RMax      float64
}

// QueryCone returns all points inside the cone.
func (t *Tree) QueryCone(c Cone) []Point {
	ax, ay, az := c.Axis[0], c.Axis[1], c.Axis[2]
	norm := math.Sqrt(ax*ax + ay*ay + az*az)
	if norm == 0 {
		return nil
	}
	ax, ay, az = ax/norm, ay/norm, az/norm
	cosA := math.Cos(c.HalfAngle)
	var out []Point
	var walk func(n *treeNode)
	walk = func(n *treeNode) {
		// Conservative prune: test the cube's bounding sphere against an
		// expanded cone (distance from axis test at the center).
		half := n.size / 2
		cx, cy, cz := n.x0+half, n.y0+half, n.z0+half
		dx, dy, dz := cx-c.Apex[0], cy-c.Apex[1], cz-c.Apex[2]
		dist := math.Sqrt(dx*dx + dy*dy + dz*dz)
		radius := half * math.Sqrt(3)
		if dist-radius > c.RMax || dist+radius < c.RMin {
			return
		}
		if dist > radius { // apex outside the sphere: cone angle prune
			along := dx*ax + dy*ay + dz*az
			if along < 0 && dist > radius {
				// Behind the apex entirely?
				if -along > radius {
					return
				}
			} else {
				// Angle between axis and center direction minus the
				// angular radius of the sphere must be within HalfAngle.
				cosC := along / dist
				angC := math.Acos(clamp(cosC, -1, 1))
				angR := math.Asin(clamp(radius/dist, 0, 1))
				if angC-angR > c.HalfAngle {
					return
				}
			}
		}
		if n.kids != nil {
			for _, k := range n.kids {
				walk(k)
			}
			return
		}
		for _, p := range n.pts {
			dx, dy, dz := p.X-c.Apex[0], p.Y-c.Apex[1], p.Z-c.Apex[2]
			dist := math.Sqrt(dx*dx + dy*dy + dz*dz)
			if dist < c.RMin || dist > c.RMax || dist == 0 {
				continue
			}
			if (dx*ax+dy*ay+dz*az)/dist >= cosA {
				out = append(out, p)
			}
		}
	}
	walk(t.root)
	return out
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// DecimatedPoint is a representative particle carrying the number of
// original particles it stands for (§2.3: "each sub-sampled particle
// would get a different weight according to the number of original
// particles in its region of attraction").
type DecimatedPoint struct {
	Point
	Weight int
}

// Decimate produces a multi-resolution subsample: one representative per
// occupied cube at the given depth (levels of the octree hierarchy). The
// representative is the centroid of the cube's points, weighted by count.
func (t *Tree) Decimate(depth int) []DecimatedPoint {
	type acc struct {
		x, y, z float64
		n       int
		id      int64
	}
	cells := make(map[uint64]*acc)
	side := 1 << uint(depth)
	t.Buckets(func(_, _, _, _ float64, pts []Point) bool {
		for _, p := range pts {
			ix := uint64(p.X * float64(side))
			iy := uint64(p.Y * float64(side))
			iz := uint64(p.Z * float64(side))
			key := (iz*uint64(side)+iy)*uint64(side) + ix
			a := cells[key]
			if a == nil {
				a = &acc{id: p.ID}
				cells[key] = a
			}
			a.x += p.X
			a.y += p.Y
			a.z += p.Z
			a.n++
		}
		return true
	})
	out := make([]DecimatedPoint, 0, len(cells))
	for _, a := range cells {
		inv := 1 / float64(a.n)
		out = append(out, DecimatedPoint{
			Point:  Point{X: a.x * inv, Y: a.y * inv, Z: a.z * inv, ID: a.id},
			Weight: a.n,
		})
	}
	return out
}
