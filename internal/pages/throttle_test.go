package pages

import (
	"sync"
	"testing"
	"time"
)

// TestThrottledDiskPacesTransfers checks the bandwidth model: n page
// reads through a throttled disk must take at least n*PageSize/rate,
// including when issued concurrently (the channel is serial), while a
// non-positive rate passes through unthrottled.
func TestThrottledDiskPacesTransfers(t *testing.T) {
	inner := NewMemDisk()
	id, err := inner.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	// 16 MB/s => 8 kB page = ~0.5 ms per transfer.
	d := NewThrottledDisk(inner, 16<<20)
	buf := make([]byte, PageSize)
	const n = 20
	start := time.Now()
	for i := 0; i < n; i++ {
		if err := d.ReadPage(id, buf); err != nil {
			t.Fatal(err)
		}
	}
	// The throttle batches sub-millisecond sleeps, so up to ~1 ms of
	// transfer debt can remain unslept at the end; require 80% of the
	// nominal floor rather than the exact figure.
	min := time.Duration(n) * time.Duration(int64(PageSize)*int64(time.Second)/(16<<20)) * 8 / 10
	if got := time.Since(start); got < min {
		t.Errorf("%d serial reads took %v, want >= %v", n, got, min)
	}

	start = time.Now()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			b := make([]byte, PageSize)
			if err := d.WritePage(id, b); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if got := time.Since(start); got < min {
		t.Errorf("%d concurrent writes took %v, want >= %v (serial channel)", n, got, min)
	}

	un := NewThrottledDisk(inner, 0)
	if err := un.ReadPage(id, buf); err != nil {
		t.Fatal(err)
	}
	if got, want := un.NumPages(), inner.NumPages(); got != want {
		t.Errorf("NumPages = %d, want %d", got, want)
	}
	if err := un.Close(); err != nil {
		t.Fatal(err)
	}
}
