package pages

import (
	"errors"
	"fmt"
	"sync"
)

// ErrInjected is the error a FaultDisk returns once its fault fires.
var ErrInjected = errors.New("pages: injected disk fault")

// FaultDisk wraps a DiskManager with crash-injection hooks for the
// recovery test harness: it can fail after a configured number of page
// writes, optionally tearing the failing write (persisting only the
// first half of the page — the classic torn-page failure a sector-level
// atomic disk cannot produce but a full 8 kB page write can). After the
// first failure every subsequent write fails too, modelling a machine
// that has crashed; reads keep working so the post-mortem can inspect
// what reached the platter.
type FaultDisk struct {
	inner DiskManager
	mu    sync.Mutex
	armed bool
	left  int  // writes remaining before the fault fires
	torn  bool // tear the failing write instead of dropping it
	fired bool
	wrote int // total WritePage calls observed
}

// NewFaultDisk wraps inner with fault hooks disarmed.
func NewFaultDisk(inner DiskManager) *FaultDisk {
	return &FaultDisk{inner: inner}
}

// FailAfterWrites arms the fault: the next n WritePage calls succeed,
// then the following one fails. With torn=true the failing write
// persists only the first half of the page before failing.
func (d *FaultDisk) FailAfterWrites(n int, torn bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.armed, d.left, d.torn, d.fired = true, n, torn, false
}

// Heal disarms the fault and clears the crashed state, modelling the
// machine coming back up over the same platter contents.
func (d *FaultDisk) Heal() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.armed, d.fired = false, false
}

// Fired reports whether the injected fault has triggered.
func (d *FaultDisk) Fired() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.fired
}

// Writes returns the total number of WritePage calls observed, so tests
// can aim FailAfterWrites at a specific write in a replayed workload.
func (d *FaultDisk) Writes() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.wrote
}

// ReadPage implements DiskManager.
func (d *FaultDisk) ReadPage(id PageID, buf []byte) error { return d.inner.ReadPage(id, buf) }

// WritePage implements DiskManager, applying the armed fault.
func (d *FaultDisk) WritePage(id PageID, buf []byte) error {
	d.mu.Lock()
	d.wrote++
	if d.fired {
		d.mu.Unlock()
		return fmt.Errorf("%w: disk crashed", ErrInjected)
	}
	if d.armed && d.left <= 0 {
		d.fired = true
		torn := d.torn
		d.mu.Unlock()
		if torn {
			// Persist the first half only: read-modify-write so the
			// second half keeps its previous contents, exactly what a
			// power cut mid-write leaves behind.
			old := make([]byte, PageSize)
			if err := d.inner.ReadPage(id, old); err == nil {
				copy(old[:PageSize/2], buf[:PageSize/2])
				_ = d.inner.WritePage(id, old)
			}
		}
		return fmt.Errorf("%w: write of page %d failed", ErrInjected, id)
	}
	if d.armed {
		d.left--
	}
	d.mu.Unlock()
	return d.inner.WritePage(id, buf)
}

// Allocate implements DiskManager.
func (d *FaultDisk) Allocate() (PageID, error) {
	d.mu.Lock()
	fired := d.fired
	d.mu.Unlock()
	if fired {
		return 0, fmt.Errorf("%w: disk crashed", ErrInjected)
	}
	return d.inner.Allocate()
}

// NumPages implements DiskManager.
func (d *FaultDisk) NumPages() int { return d.inner.NumPages() }

// Close implements DiskManager.
func (d *FaultDisk) Close() error { return d.inner.Close() }
