package pages

import (
	"container/list"
	"fmt"
	"sync"
	"sync/atomic"

	"sqlarray/internal/obs"
)

// Stats is a snapshot of the buffer-pool I/O counters. PhysicalReads
// counts pages actually fetched from the disk manager; LogicalReads
// counts every Fetch. The Table 1 harness derives its "I/O MB/s" column
// from BytesRead.
type Stats struct {
	LogicalReads  uint64
	PhysicalReads uint64
	BytesRead     uint64
	Writes        uint64
	BytesWritten  uint64
	Evictions     uint64
	// Scan-resistance (SLRU) counters. Admissions counts first-touch
	// pages entering the probationary segment; Promotions counts
	// probationary pages re-referenced into the protected segment;
	// ScanEvictions counts evictions taken from probation — one-touch
	// pages (a scan's wake) leaving without ever displacing hot pages.
	Admissions    uint64
	Promotions    uint64
	ScanEvictions uint64
	// MVCC snapshot-read counters. CowCopies counts copy-on-write page
	// duplications taken by write sessions (FetchForWrite); SnapshotReads
	// counts snapshot fetches served from the version sidecar instead of
	// the current page table; VersionsRetired counts sidecar entries
	// garbage-collected once no live snapshot could still need them.
	CowCopies       uint64
	SnapshotReads   uint64
	VersionsRetired uint64
}

// counters is the live, lock-free form of Stats. Every counter is an
// obs handle (an atomic) so hot paths (Fetch on a cache hit in
// particular) never serialize on a statistics lock, and Stats() needs
// no lock at all. RegisterMetrics exposes the same handles through an
// obs.Registry — the registry reads the live atomics, so registration
// adds zero cost to the increment sites.
type counters struct {
	logicalReads    obs.Counter
	physicalReads   obs.Counter
	bytesRead       obs.Counter
	writes          obs.Counter
	bytesWritten    obs.Counter
	evictions       obs.Counter
	admissions      obs.Counter
	promotions      obs.Counter
	scanEvictions   obs.Counter
	cowCopies       obs.Counter
	snapshotReads   obs.Counter
	versionsRetired obs.Counter
}

func (c *counters) snapshot() Stats {
	return Stats{
		LogicalReads:    c.logicalReads.Load(),
		PhysicalReads:   c.physicalReads.Load(),
		BytesRead:       c.bytesRead.Load(),
		Writes:          c.writes.Load(),
		BytesWritten:    c.bytesWritten.Load(),
		Evictions:       c.evictions.Load(),
		Admissions:      c.admissions.Load(),
		Promotions:      c.promotions.Load(),
		ScanEvictions:   c.scanEvictions.Load(),
		CowCopies:       c.cowCopies.Load(),
		SnapshotReads:   c.snapshotReads.Load(),
		VersionsRetired: c.versionsRetired.Load(),
	}
}

func (c *counters) reset() {
	c.logicalReads.Store(0)
	c.physicalReads.Store(0)
	c.bytesRead.Store(0)
	c.writes.Store(0)
	c.bytesWritten.Store(0)
	c.evictions.Store(0)
	c.admissions.Store(0)
	c.promotions.Store(0)
	c.scanEvictions.Store(0)
	c.cowCopies.Store(0)
	c.snapshotReads.Store(0)
	c.versionsRetired.Store(0)
}

// Frame is a pinned page in the buffer pool. Callers must Unpin every
// fetched frame; the Page must not be touched after unpinning. The pin
// count is an atomic so observers (PinnedFrames, assertions in tests)
// can read it without taking the owning shard's lock; mutations happen
// under that lock, which is what makes the pin-count/LRU transition
// race-free.
type Frame struct {
	Page  Page
	pins  atomic.Int32
	dirty bool          // guarded by shard.mu
	lru   *list.Element // guarded by shard.mu; element of the tier's list
	tier  int8          // SLRU segment (probation/protected); guarded by shard.mu
	shard *shard        // owning shard; frames never migrate
	// pageLSN is the WAL LSN of the record holding the frame's latest
	// logged image. The flush gate compares it against the log's durable
	// LSN: a dirty frame may only reach the database file once its log
	// record is durable (WAL-before-flush). Atomic so eviction scans can
	// read it without extra synchronization beyond the shard lock.
	pageLSN atomic.Uint64
	// unlogged marks a frame dirtied by the active write session whose
	// image has not been appended to the WAL yet. Such a frame must not
	// be flushed or evicted under any circumstances — its changes exist
	// nowhere but in memory. Guarded by shard.mu.
	unlogged bool
	// verTag is the commit tag of the version this frame holds: a page is
	// visible to a snapshot S exactly when verTag <= S (and the frame is
	// not pending). Tag 0 is "older than every snapshot". Atomic so
	// snapshot fetches can check visibility while a publish is stamping
	// other shards.
	verTag atomic.Uint64
	// pending marks the private copy-on-write frame of the active write
	// session: invisible to every snapshot, never on an LRU list, never
	// flushed or evicted (publish or abort decides its fate). Guarded by
	// shard.mu.
	pending bool
	// versioned marks a superseded pre-image living in the shard's
	// version sidecar rather than the page table: readable by old
	// snapshots, never re-enters the LRU, never flushed (its content is
	// stale by definition). Guarded by shard.mu.
	versioned bool
	// supersededBy is the commit tag of the version that replaced this
	// sidecar entry — 0 while the replacing session is still uncommitted.
	// A sidecar entry is droppable once every active snapshot is at or
	// past this tag. Guarded by shard.mu.
	supersededBy uint64
}

// PageLSN returns the LSN of the frame's latest logged image (0 if the
// frame was never logged).
func (f *Frame) PageLSN() uint64 { return f.pageLSN.Load() }

// WAL is the flush gate the buffer pool consults before writing a
// dirty frame to the database file. Implemented by *wal.Log; declared
// here so pages does not depend on the wal package.
type WAL interface {
	// DurableLSN returns the LSN below which every log record is
	// durable.
	DurableLSN() uint64
	// Sync makes all appended records durable (raising DurableLSN).
	Sync() error
}

// Capture collects the frames a write session dirties, so the session
// can log their after-images at commit. Only one capture may be active
// per pool; the engine's database-level write lock enforces that.
type Capture struct {
	mu     sync.Mutex
	frames []*Frame
	seen   map[*Frame]struct{}
	// pre maps a pending copy-on-write frame to the committed pre-image
	// it displaced into the version sidecar (nil entry = freshly created
	// page with no prior version). Publish stamps the pre-image's
	// supersede tag through this map; abort restores the pre-image into
	// the page table.
	pre map[*Frame]*Frame
}

func (c *Capture) add(f *Frame) {
	c.mu.Lock()
	if _, ok := c.seen[f]; !ok {
		c.seen[f] = struct{}{}
		c.frames = append(c.frames, f)
	}
	c.mu.Unlock()
}

// addPre records the pre-image a pending frame displaced (may be nil).
func (c *Capture) addPre(pending, pre *Frame) {
	c.mu.Lock()
	if c.pre == nil {
		c.pre = make(map[*Frame]*Frame)
	}
	c.pre[pending] = pre
	c.mu.Unlock()
}

// preimage returns the pre-image recorded for a pending frame, if any.
func (c *Capture) preimage(pending *Frame) *Frame {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.pre[pending]
}

// Frames returns the captured frames in first-dirtied order.
func (c *Capture) Frames() []*Frame {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]*Frame(nil), c.frames...)
}

// Frame SLRU tiers. First-touch frames enter probation; a re-reference
// promotes to protected. Eviction prefers probation, so a one-shot scan
// churns its own tier instead of flushing the hot set.
const (
	tierProbation int8 = iota
	tierProtected
)

// shard is one lock stripe of the pool: an independent page table,
// segmented LRU (probationary + protected lists) and recycled-frame
// free list guarded by a single mutex. Pages are assigned to shards by
// a multiplicative hash of their PageID, so two scans touching
// different pages contend only when their pages hash to the same
// stripe.
type shard struct {
	mu      sync.Mutex
	cap     int
	protCap int // max unpinned frames the protected segment may hold
	table   map[PageID]*Frame
	prob    *list.List // probationary segment; front = most recently used
	prot    *list.List // protected segment; front = most recently used
	free    []*Frame   // recycled frames (DropCleanBuffers feeds this)
	// vers is the page-version sidecar: superseded pre-image frames per
	// page, oldest first (ascending verTag). Entries live outside the
	// page table and the LRU lists; they are dropped once no active
	// snapshot can need them (see droppableLocked). Guarded by mu.
	vers map[PageID][]*Frame
}

// listFor returns the LRU list a frame's tier assigns it to. Caller
// holds s.mu. container/list requires Remove on the owning list, so
// every unhook must go through this.
func (s *shard) listFor(f *Frame) *list.List {
	if f.tier == tierProtected {
		return s.prot
	}
	return s.prob
}

// enforceProtCapLocked demotes protected-tail frames into probation's
// MRU end until the protected segment fits its cap, preserving the
// SLRU invariant that the protected segment cannot monopolize the
// stripe. Caller holds s.mu.
func (s *shard) enforceProtCapLocked() {
	for s.prot.Len() > s.protCap {
		el := s.prot.Back()
		f := el.Value.(*Frame)
		s.prot.Remove(el)
		f.tier = tierProbation
		f.lru = s.prob.PushFront(f)
	}
}

// BufferPool caches pages over a DiskManager with LRU replacement.
// It is safe for concurrent use: the page table is striped across a
// power-of-two set of shards, each with its own mutex, LRU list and
// free list, so parallel scan workers fetching disjoint pages do not
// serialize on a single pool lock.
type BufferPool struct {
	disk    DiskManager
	cap     int
	shards  []*shard
	shift   uint // 32 - log2(len(shards)); hash top bits pick the shard
	stats   counters
	verify  atomic.Bool // verify checksums on physical read
	slru    atomic.Bool // scan-resistant segmented LRU (off = plain LRU)
	wal     WAL         // flush gate; nil = no durability protocol
	capture atomic.Pointer[Capture]
	// snapClock is the synthetic commit clock: the tag of the newest
	// published commit. AcquireSnapshot reads it; FinishPublish advances
	// it. It starts at 1 so content tagged 0 ("pre-history": pages loaded
	// from disk with an empty sidecar, recovered state) is visible to
	// every snapshot.
	snapClock atomic.Uint64
	// minSnap caches the smallest active snapshot tag (^0 when none), so
	// GC checks under a shard lock never need snapMu.
	minSnap    atomic.Uint64
	snapMu     sync.Mutex
	snapActive map[uint64]int // tag -> live snapshot count
}

const (
	// minShardFrames is the smallest per-shard capacity worth striping:
	// below it, a shard's LRU is so short that per-shard capacity skew
	// would cause spurious "pool exhausted" errors, so small pools stay
	// single-shard (and keep the exact semantics the seed pool had).
	minShardFrames = 64
	// maxShards caps the stripe count; 64 stripes are plenty to spread
	// any realistic core count.
	maxShards = 64
)

// shardCountFor picks the power-of-two stripe count for a capacity.
func shardCountFor(capacity int) int {
	n := 1
	for n < maxShards && capacity/(n*2) >= minShardFrames {
		n *= 2
	}
	return n
}

// NewBufferPool creates a pool holding up to capacity pages, striped
// over an automatically sized shard set (1 stripe for small pools, up
// to 64 for large ones).
func NewBufferPool(disk DiskManager, capacity int) *BufferPool {
	return NewBufferPoolShards(disk, capacity, 0)
}

// NewBufferPoolShards creates a pool with an explicit shard count
// (rounded down to a power of two; 0 picks automatically, 1 yields the
// classic single-mutex pool — the baseline BenchmarkBufferPoolContention
// compares against).
func NewBufferPoolShards(disk DiskManager, capacity, nShards int) *BufferPool {
	if capacity < 1 {
		capacity = 1
	}
	if nShards <= 0 {
		nShards = shardCountFor(capacity)
	}
	// Round down to a power of two and never exceed one frame per shard.
	for nShards&(nShards-1) != 0 {
		nShards &= nShards - 1
	}
	if nShards > capacity {
		nShards = 1
	}
	log2 := 0
	for 1<<uint(log2+1) <= nShards {
		log2++
	}
	bp := &BufferPool{
		disk:       disk,
		cap:        capacity,
		shards:     make([]*shard, nShards),
		shift:      uint(32 - log2),
		snapActive: make(map[uint64]int),
	}
	bp.verify.Store(true)
	bp.slru.Store(true)
	bp.snapClock.Store(1)
	bp.minSnap.Store(^uint64(0))
	base, rem := capacity/nShards, capacity%nShards
	for i := range bp.shards {
		c := base
		if i < rem {
			c++
		}
		bp.shards[i] = &shard{
			cap:     c,
			protCap: c * 3 / 4,
			table:   make(map[PageID]*Frame, c),
			prob:    list.New(),
			prot:    list.New(),
			vers:    make(map[PageID][]*Frame),
		}
	}
	return bp
}

// SetScanResistant toggles the segmented (probation/protected) LRU.
// When off, promotion stops and every frame lives in the probationary
// list — exactly the classic single-list LRU the seed pool had; the
// eviction benchmark uses this as its collapse baseline.
func (bp *BufferPool) SetScanResistant(v bool) { bp.slru.Store(v) }

// ScanResistant reports whether segmented LRU replacement is active.
func (bp *BufferPool) ScanResistant() bool { return bp.slru.Load() }

// shardFor maps a page id onto its stripe. Fibonacci hashing spreads
// both sequential ids (B-tree leaf chains) and strided ones evenly.
func (bp *BufferPool) shardFor(id PageID) *shard {
	if len(bp.shards) == 1 {
		return bp.shards[0]
	}
	h := uint32(id) * 2654435769 // 2^32 / phi
	return bp.shards[h>>bp.shift]
}

// SetVerifyChecksums toggles checksum verification on physical reads.
func (bp *BufferPool) SetVerifyChecksums(v bool) { bp.verify.Store(v) }

// SetWAL attaches the write-ahead-log flush gate. Once set, a dirty
// frame is written to the database file only when its pageLSN is below
// the log's durable LSN, and frames dirtied by an active (uncommitted)
// write session are never flushed at all.
func (bp *BufferPool) SetWAL(w WAL) { bp.wal = w }

// BeginCapture starts recording which frames the caller's writes dirty.
// Exactly one capture may be active; the engine's write lock serializes
// sessions, so a second concurrent capture is a bug.
func (bp *BufferPool) BeginCapture() (*Capture, error) {
	c := &Capture{seen: make(map[*Frame]struct{})}
	if !bp.capture.CompareAndSwap(nil, c) {
		return nil, fmt.Errorf("pages: a write capture is already active")
	}
	return c, nil
}

// EndCapture stops recording and returns the dirtied frames. The caller
// must then log each frame (LogDirtyFrame) — until it does, the frames
// stay unflushable.
func (bp *BufferPool) EndCapture(c *Capture) []*Frame {
	bp.capture.CompareAndSwap(c, nil)
	return c.Frames()
}

// LogDirtyFrame locks the frame's shard and hands its page to fn, which
// must append the page image to the WAL and return the assigned LSN.
// On success the frame's pageLSN advances and its unlogged mark clears,
// making it flushable once the log syncs. fn runs under the shard lock:
// it may stamp the page header and read the buffer, but must not touch
// the pool.
func (bp *BufferPool) LogDirtyFrame(f *Frame, fn func(p *Page) (uint64, error)) error {
	s := f.shard
	s.mu.Lock()
	defer s.mu.Unlock()
	if !f.dirty {
		f.unlogged = false
		return nil
	}
	lsn, err := fn(&f.Page)
	if err != nil {
		return err
	}
	f.pageLSN.Store(lsn)
	f.unlogged = false
	return nil
}

// Disk returns the underlying disk manager.
func (bp *BufferPool) Disk() DiskManager { return bp.disk }

// RegisterMetrics attaches the pool's I/O counters to reg under the
// "pages." prefix, plus a computed pinned-frames gauge. Several pools
// may attach to one registry (partition members); the registry sums
// same-named counters on read.
func (bp *BufferPool) RegisterMetrics(reg *obs.Registry) {
	c := &bp.stats
	reg.Attach("pages.logical_reads", &c.logicalReads)
	reg.Attach("pages.physical_reads", &c.physicalReads)
	reg.Attach("pages.bytes_read", &c.bytesRead)
	reg.Attach("pages.writes", &c.writes)
	reg.Attach("pages.bytes_written", &c.bytesWritten)
	reg.Attach("pages.evictions", &c.evictions)
	reg.Attach("pages.admissions", &c.admissions)
	reg.Attach("pages.promotions", &c.promotions)
	reg.Attach("pages.scan_evictions", &c.scanEvictions)
	reg.Attach("pages.cow_copies", &c.cowCopies)
	reg.Attach("pages.snapshot_reads", &c.snapshotReads)
	reg.Attach("pages.versions_retired", &c.versionsRetired)
	reg.Func("pages.pinned_frames", func() uint64 { return uint64(bp.PinnedFrames()) })
}

// Stats returns a snapshot of the I/O counters. Lock-free: counters are
// atomics, so concurrent scans never stall on a stats reader.
func (bp *BufferPool) Stats() Stats { return bp.stats.snapshot() }

// ResetStats zeroes the I/O counters.
func (bp *BufferPool) ResetStats() { bp.stats.reset() }

// Fetch pins page id into the pool, reading it from disk on a miss.
func (bp *BufferPool) Fetch(id PageID) (*Frame, error) {
	bp.stats.logicalReads.Add(1)
	s := bp.shardFor(id)
	s.mu.Lock()
	if f, ok := s.table[id]; ok {
		if f.lru != nil {
			s.listFor(f).Remove(f.lru)
			f.lru = nil
		}
		// Re-reference: promote a probationary frame into the protected
		// segment (the SLRU admission rule — one touch is not enough to
		// displace the hot set, two are).
		if f.tier == tierProbation && bp.slru.Load() {
			f.tier = tierProtected
			bp.stats.promotions.Add(1)
		}
		f.pins.Add(1)
		s.mu.Unlock()
		return f, nil
	}
	f, err := s.victimLocked(bp)
	if err != nil {
		s.mu.Unlock()
		return nil, err
	}
	f.Page.ID = id
	if err := bp.disk.ReadPage(id, f.Page.Buf[:]); err != nil {
		s.releaseFrameLocked(f)
		s.mu.Unlock()
		return nil, err
	}
	bp.stats.physicalReads.Add(1)
	bp.stats.bytesRead.Add(PageSize)
	if bp.verify.Load() {
		if err := f.Page.VerifyChecksum(); err != nil {
			s.releaseFrameLocked(f)
			s.mu.Unlock()
			return nil, err
		}
	}
	f.pins.Store(1)
	f.dirty = false
	f.unlogged = false
	f.pending = false
	f.versioned = false
	f.tier = tierProbation
	f.pageLSN.Store(f.Page.LSN())
	// Disk always holds the newest published content at miss time
	// (published dirty frames are flushed before eviction), so the loaded
	// frame's version tag is the newest commit recorded against this page
	// in the sidecar — or 0 ("pre-history") when no retained version
	// chain mentions it.
	f.verTag.Store(s.latestSupersedeLocked(id))
	bp.stats.admissions.Add(1)
	s.table[id] = f
	s.mu.Unlock()
	return f, nil
}

// NewPage allocates a fresh page on disk and returns it pinned and
// zero-initialized with the given type.
func (bp *BufferPool) NewPage(t PageType) (*Frame, error) {
	id, err := bp.disk.Allocate()
	if err != nil {
		return nil, err
	}
	s := bp.shardFor(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	f, err := s.victimLocked(bp)
	if err != nil {
		return nil, err
	}
	f.Page.ID = id
	f.Page.Init(t)
	f.pins.Store(1)
	f.dirty = true
	f.unlogged = false
	f.pending = false
	f.versioned = false
	f.tier = tierProbation
	f.pageLSN.Store(0)
	f.verTag.Store(0)
	bp.stats.admissions.Add(1)
	if c := bp.capture.Load(); c != nil {
		// A page created inside a write session is a pending version with
		// no pre-image: invisible to snapshots, kept off the LRU until the
		// session publishes or aborts.
		f.unlogged = true
		f.pending = true
		c.add(f)
		c.addPre(f, nil)
	}
	s.table[id] = f
	return f, nil
}

// victimLocked returns a free frame, evicting the shard's coldest
// evictable unpinned page if the stripe is full. The returned frame is
// not yet in the table. Caller holds s.mu.
//
// Eviction order is probation tail first (one-touch pages — a scan's
// own wake), then the protected tail — so a whole-blob scan recycles
// its own probationary frames and the re-referenced hot set survives.
//
// With a WAL attached, a dirty frame is evictable only when its latest
// logged image is durable (pageLSN < DurableLSN) — the WAL-before-flush
// invariant — and a frame dirtied by the active uncommitted session
// (unlogged) is never evictable. Each scan walks from the list tail
// toward warmer frames until it finds an evictable victim.
func (s *shard) victimLocked(bp *BufferPool) (*Frame, error) {
	if len(s.table) < s.cap {
		if n := len(s.free); n > 0 {
			f := s.free[n-1]
			s.free = s.free[:n-1]
			return f, nil
		}
		return &Frame{shard: s}, nil
	}
	for _, l := range [2]*list.List{s.prob, s.prot} {
		for el := l.Back(); el != nil; el = el.Prev() {
			f := el.Value.(*Frame)
			// Pending and versioned frames never enter the LRU lists; the
			// guard is defense in depth (evicting one would recycle a frame
			// a capture or snapshot still points at).
			if f.pending || f.versioned {
				continue
			}
			if f.dirty && !bp.flushableLocked(f) {
				continue
			}
			// Flush a dirty victim BEFORE unhooking it: if the write-back
			// fails, the frame stays cached (table + LRU) so the modified
			// page is not lost — the caller sees the error and the data
			// survives for a retry.
			if f.dirty {
				if err := bp.writeFrameLocked(f); err != nil {
					return nil, err
				}
			}
			l.Remove(el)
			f.lru = nil
			delete(s.table, f.Page.ID)
			bp.stats.evictions.Add(1)
			if l == s.prob {
				bp.stats.scanEvictions.Add(1)
			}
			return f, nil
		}
	}
	return nil, fmt.Errorf("pages: buffer pool exhausted: all %d frames of the stripe pinned or awaiting WAL durability (pool capacity %d over %d shards)",
		s.cap, bp.cap, len(bp.shards))
}

// flushableLocked reports whether a dirty frame may be written to the
// database file under the WAL-before-flush protocol. Caller holds the
// owning shard's mutex.
func (bp *BufferPool) flushableLocked(f *Frame) bool {
	if bp.wal == nil {
		return true
	}
	if f.unlogged {
		return false
	}
	return f.pageLSN.Load() < bp.wal.DurableLSN()
}

// writeFrameLocked flushes one frame to disk. Caller holds the owning
// shard's mutex; the disk managers are themselves concurrency-safe, so
// two shards may write back simultaneously.
func (bp *BufferPool) writeFrameLocked(f *Frame) error {
	f.Page.UpdateChecksum()
	if err := bp.disk.WritePage(f.Page.ID, f.Page.Buf[:]); err != nil {
		return err
	}
	bp.stats.writes.Add(1)
	bp.stats.bytesWritten.Add(PageSize)
	f.dirty = false
	return nil
}

// releaseFrameLocked recycles a frame acquired by victimLocked before it
// was registered (e.g. after a failed read). Caller holds s.mu.
func (s *shard) releaseFrameLocked(f *Frame) {
	s.free = append(s.free, f)
}

// Unpin releases a pinned frame; dirty marks it modified so eviction
// writes it back.
func (bp *BufferPool) Unpin(f *Frame, dirty bool) {
	s := f.shard
	s.mu.Lock()
	if dirty {
		if f.versioned {
			s.mu.Unlock()
			panic(fmt.Sprintf("pages: write to superseded version of page %d", f.Page.ID))
		}
		f.dirty = true
		if c := bp.capture.Load(); c != nil {
			if !f.pending {
				// A write session must reach every page it mutates through
				// FetchForWrite (or NewPage) so snapshots keep reading the
				// committed pre-image; an in-place write here would tear
				// concurrent snapshot reads.
				s.mu.Unlock()
				panic(fmt.Sprintf("pages: in-place write to page %d under an active write session (missing FetchForWrite)", f.Page.ID))
			}
			f.unlogged = true
			c.add(f)
		}
	}
	if f.pins.Load() > 0 {
		f.pins.Add(-1)
	}
	// Pending and versioned frames stay off the LRU: a pending frame's
	// fate is decided by publish/abort, and a superseded version must
	// never become an eviction victim (its content is stale; flushing it
	// would clobber newer disk state). Versioned frames are instead
	// garbage-collected once unpinned and no longer needed.
	if f.pins.Load() == 0 && f.lru == nil && !f.pending && !f.versioned {
		if !bp.slru.Load() {
			// Plain-LRU mode: collapse everything back into the single
			// probationary list so the toggle degrades cleanly.
			f.tier = tierProbation
		}
		f.lru = s.listFor(f).PushFront(f)
		if f.tier == tierProtected {
			s.enforceProtCapLocked()
		}
	}
	if f.versioned && f.pins.Load() == 0 {
		s.dropVersionsLocked(bp, f.Page.ID)
	}
	s.mu.Unlock()
}

// FlushAll writes every dirty cached page to disk — the flush half of a
// checkpoint. With a WAL attached it first syncs the log (so every
// pageLSN is durable and the WAL-before-flush invariant holds for each
// write), and refuses outright if any dirty frame belongs to an active
// uncommitted write session.
func (bp *BufferPool) FlushAll() error {
	if bp.wal != nil {
		if err := bp.wal.Sync(); err != nil {
			return err
		}
	}
	for _, s := range bp.shards {
		s.mu.Lock()
		for _, f := range s.table {
			if f.dirty {
				if f.unlogged || f.pending {
					s.mu.Unlock()
					return fmt.Errorf("pages: page %d dirty but unlogged (write session active during flush)", f.Page.ID)
				}
				if err := bp.writeFrameLocked(f); err != nil {
					s.mu.Unlock()
					return err
				}
			}
		}
		s.mu.Unlock()
	}
	return nil
}

// DropCleanBuffers flushes dirty pages and then empties the cache — the
// equivalent of DBCC DROPCLEANBUFFERS, which the paper's benchmark runs
// before each query ("The database server cache was explicitly cleared
// before each performance test run", §6.3). Pinned pages make it fail
// before anything is flushed or dropped: all stripes are locked, the
// no-pins invariant is checked across the whole pool, and only then is
// the cache cleared.
func (bp *BufferPool) DropCleanBuffers() error {
	if bp.wal != nil {
		if err := bp.wal.Sync(); err != nil {
			return err
		}
	}
	for _, s := range bp.shards {
		s.mu.Lock()
	}
	defer func() {
		for _, s := range bp.shards {
			s.mu.Unlock()
		}
	}()
	for _, s := range bp.shards {
		for id, f := range s.table {
			if f.pins.Load() > 0 {
				return fmt.Errorf("pages: page %d still pinned", id)
			}
			if f.unlogged || f.pending {
				return fmt.Errorf("pages: page %d dirty but unlogged (write session active)", id)
			}
		}
		for id, vs := range s.vers {
			for _, f := range vs {
				if f.pins.Load() > 0 {
					return fmt.Errorf("pages: superseded version of page %d still pinned", id)
				}
			}
		}
	}
	for _, s := range bp.shards {
		for _, f := range s.table {
			if f.dirty {
				if err := bp.writeFrameLocked(f); err != nil {
					return err
				}
			}
		}
		// Recycle the frames instead of abandoning 8 kB buffers to the GC.
		for _, f := range s.table {
			f.lru = nil
			f.dirty = false
			f.unlogged = false
			f.tier = tierProbation
			f.pageLSN.Store(0)
			s.free = append(s.free, f)
		}
		s.table = make(map[PageID]*Frame, s.cap)
		s.prob.Init()
		s.prot.Init()
		// Retire whatever versions no live snapshot can still need; the
		// rest stay in the sidecar (an active snapshot may come back for
		// them — dropping the *current* cache never invalidates history).
		for id := range s.vers {
			s.dropVersionsLocked(bp, id)
		}
	}
	return nil
}

// Capacity returns the pool size in frames.
func (bp *BufferPool) Capacity() int { return bp.cap }

// Shards returns the number of lock stripes.
func (bp *BufferPool) Shards() int { return len(bp.shards) }

// PinnedFrames returns the number of frames with a nonzero pin count.
// A quiesced pool must report zero; iterators, cursors and pinned blob
// views that terminate early are required to release on Close, and
// tests assert this invariant through here.
func (bp *BufferPool) PinnedFrames() int {
	n := 0
	for _, s := range bp.shards {
		s.mu.Lock()
		for _, f := range s.table {
			if f.pins.Load() > 0 {
				n++
			}
		}
		for _, vs := range s.vers {
			for _, f := range vs {
				if f.pins.Load() > 0 {
					n++
				}
			}
		}
		s.mu.Unlock()
	}
	return n
}

// CachedPages returns the number of pages currently cached.
func (bp *BufferPool) CachedPages() int {
	n := 0
	for _, s := range bp.shards {
		s.mu.Lock()
		n += len(s.table)
		s.mu.Unlock()
	}
	return n
}
