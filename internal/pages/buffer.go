package pages

import (
	"container/list"
	"fmt"
	"sync"
)

// Stats accumulates buffer-pool I/O counters. PhysicalReads counts pages
// actually fetched from the disk manager; LogicalReads counts every Fetch.
// The Table 1 harness derives its "I/O MB/s" column from BytesRead.
type Stats struct {
	LogicalReads  uint64
	PhysicalReads uint64
	BytesRead     uint64
	Writes        uint64
	BytesWritten  uint64
	Evictions     uint64
}

// Frame is a pinned page in the buffer pool. Callers must Unpin every
// fetched frame; the Page must not be touched after unpinning.
type Frame struct {
	Page  Page
	pins  int
	dirty bool
	lru   *list.Element
}

// BufferPool caches pages over a DiskManager with LRU replacement.
// It is safe for concurrent use.
type BufferPool struct {
	mu     sync.Mutex
	disk   DiskManager
	cap    int
	table  map[PageID]*Frame
	lru    *list.List // front = most recently used; holds unpinned frames
	free   []*Frame   // recycled frames (DropCleanBuffers feeds this)
	stats  Stats
	verify bool // verify checksums on physical read
}

// NewBufferPool creates a pool holding up to capacity pages.
func NewBufferPool(disk DiskManager, capacity int) *BufferPool {
	if capacity < 1 {
		capacity = 1
	}
	return &BufferPool{
		disk:   disk,
		cap:    capacity,
		table:  make(map[PageID]*Frame, capacity),
		lru:    list.New(),
		verify: true,
	}
}

// SetVerifyChecksums toggles checksum verification on physical reads.
func (bp *BufferPool) SetVerifyChecksums(v bool) {
	bp.mu.Lock()
	bp.verify = v
	bp.mu.Unlock()
}

// Disk returns the underlying disk manager.
func (bp *BufferPool) Disk() DiskManager { return bp.disk }

// Stats returns a snapshot of the I/O counters.
func (bp *BufferPool) Stats() Stats {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	return bp.stats
}

// ResetStats zeroes the I/O counters.
func (bp *BufferPool) ResetStats() {
	bp.mu.Lock()
	bp.stats = Stats{}
	bp.mu.Unlock()
}

// Fetch pins page id into the pool, reading it from disk on a miss.
func (bp *BufferPool) Fetch(id PageID) (*Frame, error) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	bp.stats.LogicalReads++
	if f, ok := bp.table[id]; ok {
		if f.lru != nil {
			bp.lru.Remove(f.lru)
			f.lru = nil
		}
		f.pins++
		return f, nil
	}
	f, err := bp.victimLocked()
	if err != nil {
		return nil, err
	}
	f.Page.ID = id
	if err := bp.disk.ReadPage(id, f.Page.Buf[:]); err != nil {
		bp.releaseFrameLocked(f)
		return nil, err
	}
	bp.stats.PhysicalReads++
	bp.stats.BytesRead += PageSize
	if bp.verify {
		if err := f.Page.VerifyChecksum(); err != nil {
			bp.releaseFrameLocked(f)
			return nil, err
		}
	}
	f.pins = 1
	f.dirty = false
	bp.table[id] = f
	return f, nil
}

// NewPage allocates a fresh page on disk and returns it pinned and
// zero-initialized with the given type.
func (bp *BufferPool) NewPage(t PageType) (*Frame, error) {
	id, err := bp.disk.Allocate()
	if err != nil {
		return nil, err
	}
	bp.mu.Lock()
	defer bp.mu.Unlock()
	f, err := bp.victimLocked()
	if err != nil {
		return nil, err
	}
	f.Page.ID = id
	f.Page.Init(t)
	f.pins = 1
	f.dirty = true
	bp.table[id] = f
	return f, nil
}

// victimLocked returns a free frame, evicting the LRU unpinned page if
// the pool is full. The returned frame is not yet in the table.
func (bp *BufferPool) victimLocked() (*Frame, error) {
	if len(bp.table) < bp.cap {
		if n := len(bp.free); n > 0 {
			f := bp.free[n-1]
			bp.free = bp.free[:n-1]
			return f, nil
		}
		return &Frame{}, nil
	}
	el := bp.lru.Back()
	if el == nil {
		return nil, fmt.Errorf("pages: buffer pool exhausted: all %d frames pinned", bp.cap)
	}
	f := el.Value.(*Frame)
	bp.lru.Remove(el)
	f.lru = nil
	delete(bp.table, f.Page.ID)
	bp.stats.Evictions++
	if f.dirty {
		if err := bp.writeFrameLocked(f); err != nil {
			return nil, err
		}
	}
	return f, nil
}

func (bp *BufferPool) writeFrameLocked(f *Frame) error {
	f.Page.UpdateChecksum()
	if err := bp.disk.WritePage(f.Page.ID, f.Page.Buf[:]); err != nil {
		return err
	}
	bp.stats.Writes++
	bp.stats.BytesWritten += PageSize
	f.dirty = false
	return nil
}

// releaseFrameLocked abandons a frame acquired by victimLocked before it
// was registered (e.g. after a failed read).
func (bp *BufferPool) releaseFrameLocked(f *Frame) {
	// The frame was never added to table/lru; nothing to do. Kept as a
	// named method so failure paths read clearly.
	_ = f
}

// Unpin releases a pinned frame; dirty marks it modified so eviction
// writes it back.
func (bp *BufferPool) Unpin(f *Frame, dirty bool) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	if dirty {
		f.dirty = true
	}
	if f.pins > 0 {
		f.pins--
	}
	if f.pins == 0 && f.lru == nil {
		f.lru = bp.lru.PushFront(f)
	}
}

// FlushAll writes every dirty cached page to disk (checkpoint).
func (bp *BufferPool) FlushAll() error {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	for _, f := range bp.table {
		if f.dirty {
			if err := bp.writeFrameLocked(f); err != nil {
				return err
			}
		}
	}
	return nil
}

// DropCleanBuffers flushes dirty pages and then empties the cache — the
// equivalent of DBCC DROPCLEANBUFFERS, which the paper's benchmark runs
// before each query ("The database server cache was explicitly cleared
// before each performance test run", §6.3). Pinned pages make it fail.
func (bp *BufferPool) DropCleanBuffers() error {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	for id, f := range bp.table {
		if f.pins > 0 {
			return fmt.Errorf("pages: page %d still pinned", id)
		}
		if f.dirty {
			if err := bp.writeFrameLocked(f); err != nil {
				return err
			}
		}
	}
	// Recycle the frames instead of abandoning 8 kB buffers to the GC.
	for _, f := range bp.table {
		f.lru = nil
		f.dirty = false
		bp.free = append(bp.free, f)
	}
	bp.table = make(map[PageID]*Frame, bp.cap)
	bp.lru.Init()
	return nil
}

// Capacity returns the pool size in frames.
func (bp *BufferPool) Capacity() int { return bp.cap }

// PinnedFrames returns the number of frames with a nonzero pin count.
// A quiesced pool must report zero; iterators and cursors that terminate
// early (TOP n, bounded range scans) are required to unpin on Close, and
// tests assert this invariant through here.
func (bp *BufferPool) PinnedFrames() int {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	n := 0
	for _, f := range bp.table {
		if f.pins > 0 {
			n++
		}
	}
	return n
}

// CachedPages returns the number of pages currently cached.
func (bp *BufferPool) CachedPages() int {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	return len(bp.table)
}
