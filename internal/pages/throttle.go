package pages

import (
	"sync"
	"time"
)

// ThrottledDisk wraps a DiskManager with a fixed-bandwidth transfer
// model: every page read or write reserves PageSize bytes of a single
// serial channel and sleeps until its reserved transfer window ends.
// Concurrent requests queue behind one another the way they would on a
// saturated device, so benchmarks over a ThrottledDisk see wall-clock
// costs proportional to bytes moved — the regime the paper's
// spinning-disk-era measurements assume — instead of the memcpy speed
// of MemDisk, which makes I/O-volume optimizations invisible.
type ThrottledDisk struct {
	inner   DiskManager
	perPage time.Duration

	mu   sync.Mutex
	next time.Time // end of the latest reserved transfer window
}

// NewThrottledDisk wraps inner, limiting page transfers to
// bytesPerSecond in each direction combined. A non-positive rate
// disables throttling.
func NewThrottledDisk(inner DiskManager, bytesPerSecond int64) *ThrottledDisk {
	var perPage time.Duration
	if bytesPerSecond > 0 {
		perPage = time.Duration(int64(PageSize) * int64(time.Second) / bytesPerSecond)
	}
	return &ThrottledDisk{inner: inner, perPage: perPage}
}

// reserve claims the next perPage-wide transfer window. The sleep is
// deferred until at least a millisecond of transfer debt has built up:
// a per-page sleep of a few dozen microseconds would be rounded up to
// the scheduler's wakeup granularity and inflate the modelled cost by
// an order of magnitude, whereas batching keeps the long-run rate at
// the configured bandwidth.
func (d *ThrottledDisk) reserve() {
	if d.perPage <= 0 {
		return
	}
	now := time.Now()
	d.mu.Lock()
	if d.next.Before(now) {
		d.next = now
	}
	d.next = d.next.Add(d.perPage)
	deadline := d.next
	d.mu.Unlock()
	if wait := time.Until(deadline); wait > time.Millisecond {
		time.Sleep(wait)
	}
}

// ReadPage implements DiskManager.
func (d *ThrottledDisk) ReadPage(id PageID, buf []byte) error {
	d.reserve()
	return d.inner.ReadPage(id, buf)
}

// WritePage implements DiskManager.
func (d *ThrottledDisk) WritePage(id PageID, buf []byte) error {
	d.reserve()
	return d.inner.WritePage(id, buf)
}

// Allocate implements DiskManager. Allocation is metadata, not a
// transfer; it is not throttled.
func (d *ThrottledDisk) Allocate() (PageID, error) { return d.inner.Allocate() }

// NumPages implements DiskManager.
func (d *ThrottledDisk) NumPages() int { return d.inner.NumPages() }

// Close implements DiskManager.
func (d *ThrottledDisk) Close() error { return d.inner.Close() }
