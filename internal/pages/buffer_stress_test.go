package pages

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
)

// TestBufferPoolShardCounts pins the stripe sizing policy: tiny pools
// stay single-shard (exact legacy semantics), large pools stripe, and
// explicit counts are honored after power-of-two rounding.
func TestBufferPoolShardCounts(t *testing.T) {
	cases := []struct {
		capacity, explicit, want int
	}{
		{1, 0, 1},
		{8, 0, 1},
		{127, 0, 1},
		{128, 0, 2},
		{1024, 0, 16},
		{16384, 0, 64},
		{1 << 20, 0, 64},
		{1024, 1, 1},
		{1024, 8, 8},
		{1024, 7, 4}, // rounded down to a power of two
		{4, 64, 1},   // more shards than frames degrades to one stripe
	}
	for _, c := range cases {
		bp := NewBufferPoolShards(NewMemDisk(), c.capacity, c.explicit)
		if got := bp.Shards(); got != c.want {
			t.Errorf("capacity %d explicit %d: shards = %d, want %d",
				c.capacity, c.explicit, got, c.want)
		}
		if got := bp.Capacity(); got != c.capacity {
			t.Errorf("capacity %d: Capacity() = %d", c.capacity, got)
		}
		// Per-shard capacities must sum to the pool capacity.
		sum := 0
		for _, s := range bp.shards {
			sum += s.cap
		}
		if sum != c.capacity {
			t.Errorf("capacity %d over %d shards: per-shard sum = %d",
				c.capacity, bp.Shards(), sum)
		}
	}
}

// TestShardedPoolBasicContract re-runs the seed pool's contract against
// an explicitly multi-shard pool, so striping cannot silently change
// Fetch/Unpin/eviction semantics.
func TestShardedPoolBasicContract(t *testing.T) {
	d := NewMemDisk()
	bp := NewBufferPoolShards(d, 64, 8)
	ids := make([]PageID, 200)
	for i := range ids {
		f, err := bp.NewPage(TypeData)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Page.Insert([]byte{byte(i), byte(i >> 8)}); err != nil {
			t.Fatal(err)
		}
		ids[i] = f.Page.ID
		bp.Unpin(f, true)
	}
	for i, id := range ids {
		f, err := bp.Fetch(id)
		if err != nil {
			t.Fatalf("Fetch %d: %v", id, err)
		}
		rec, err := f.Page.Record(0)
		if err != nil || rec[0] != byte(i) || rec[1] != byte(i>>8) {
			t.Fatalf("page %d record = %v, %v", id, rec, err)
		}
		bp.Unpin(f, false)
	}
	st := bp.Stats()
	if st.Evictions == 0 || st.PhysicalReads == 0 {
		t.Errorf("expected evictions and physical reads, got %+v", st)
	}
	if got := bp.PinnedFrames(); got != 0 {
		t.Errorf("PinnedFrames = %d", got)
	}
	if err := bp.DropCleanBuffers(); err != nil {
		t.Errorf("DropCleanBuffers: %v", err)
	}
	if bp.CachedPages() != 0 {
		t.Errorf("CachedPages after drop = %d", bp.CachedPages())
	}
}

// TestShardedPoolConcurrentStress hammers a striped pool from many
// goroutines with interleaved Fetch / NewPage / Unpin / DropCleanBuffers
// and checks the pin-count and eviction invariants afterward. Run under
// -race this is the regression test for the old single-mutex pool's
// stats races and for any striping bug that lets two shards adopt the
// same page.
func TestShardedPoolConcurrentStress(t *testing.T) {
	d := NewMemDisk()
	bp := NewBufferPoolShards(d, 256, 8)

	// Seed a shared set of pages all workers fetch.
	const seedPages = 512
	ids := make([]PageID, seedPages)
	for i := range ids {
		f, err := bp.NewPage(TypeData)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Page.Insert([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		ids[i] = f.Page.ID
		bp.Unpin(f, true)
	}

	const workers = 16
	const opsPerWorker = 2000
	var wg sync.WaitGroup
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			pinned := make([]*Frame, 0, 8)
			unpinAll := func() {
				for _, f := range pinned {
					bp.Unpin(f, false)
				}
				pinned = pinned[:0]
			}
			defer unpinAll()
			for op := 0; op < opsPerWorker; op++ {
				switch k := rng.Intn(100); {
				case k < 70: // fetch a shared page, sometimes holding the pin
					f, err := bp.Fetch(ids[rng.Intn(seedPages)])
					if err != nil {
						errc <- err
						return
					}
					if rec, err := f.Page.Record(0); err != nil || len(rec) != 1 {
						errc <- errors.New("corrupt record under concurrency")
						bp.Unpin(f, false)
						return
					}
					if len(pinned) < 8 && k < 20 {
						pinned = append(pinned, f)
					} else {
						bp.Unpin(f, false)
					}
				case k < 80: // allocate a fresh page, dirty it, release
					f, err := bp.NewPage(TypeData)
					if err != nil {
						errc <- err
						return
					}
					if _, err := f.Page.Insert([]byte{0xEE}); err != nil {
						errc <- err
						bp.Unpin(f, true)
						return
					}
					bp.Unpin(f, true)
				case k < 90: // release everything we hold
					unpinAll()
				default: // attempt a drop; only legal when nothing is pinned
					unpinAll()
					// Other workers may hold pins, so an error is expected
					// sometimes; it must be the pinned-page error, not a
					// corruption.
					if err := bp.DropCleanBuffers(); err != nil {
						if got := err.Error(); len(got) == 0 {
							errc <- errors.New("empty DropCleanBuffers error")
							return
						}
					}
				}
			}
		}(int64(w) + 42)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	if got := bp.PinnedFrames(); got != 0 {
		t.Fatalf("PinnedFrames after stress = %d, want 0", got)
	}
	if got := bp.CachedPages(); got > bp.Capacity() {
		t.Fatalf("CachedPages = %d exceeds capacity %d", got, bp.Capacity())
	}
	// With every pin released the pool must quiesce cleanly.
	if err := bp.DropCleanBuffers(); err != nil {
		t.Fatalf("DropCleanBuffers after stress: %v", err)
	}
	// All seed pages must still round-trip through disk.
	for i, id := range ids {
		f, err := bp.Fetch(id)
		if err != nil {
			t.Fatalf("post-stress Fetch %d: %v", id, err)
		}
		rec, err := f.Page.Record(0)
		if err != nil || rec[0] != byte(i) {
			t.Fatalf("post-stress page %d record = %v, %v", id, rec, err)
		}
		bp.Unpin(f, false)
	}
}

// TestShardedPoolStatsLockFree checks the atomic counters tally exactly
// under concurrent fetches (the seed pool's counters were mutex-guarded;
// the striped pool's must not lose increments).
func TestShardedPoolStatsLockFree(t *testing.T) {
	bp := NewBufferPoolShards(NewMemDisk(), 128, 4)
	f, err := bp.NewPage(TypeData)
	if err != nil {
		t.Fatal(err)
	}
	id := f.Page.ID
	bp.Unpin(f, false)
	bp.ResetStats()

	const workers = 8
	const fetches = 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < fetches; i++ {
				f, err := bp.Fetch(id)
				if err != nil {
					t.Error(err)
					return
				}
				bp.Unpin(f, false)
			}
		}()
	}
	wg.Wait()
	if got := bp.Stats().LogicalReads; got != workers*fetches {
		t.Errorf("LogicalReads = %d, want %d", got, workers*fetches)
	}
}

// failingDisk wraps MemDisk and fails WritePage while tripped.
type failingDisk struct {
	*MemDisk
	failWrites bool
}

func (d *failingDisk) WritePage(id PageID, buf []byte) error {
	if d.failWrites {
		return errors.New("injected write failure")
	}
	return d.MemDisk.WritePage(id, buf)
}

// TestEvictionWriteBackFailureKeepsDirtyPage pins the recovery contract
// of a failed dirty-victim flush: the dirty page must stay cached (its
// only up-to-date copy lives in the frame), the caller gets the error,
// and once the disk recovers the data survives.
func TestEvictionWriteBackFailureKeepsDirtyPage(t *testing.T) {
	d := &failingDisk{MemDisk: NewMemDisk()}
	bp := NewBufferPool(d, 1)
	f, err := bp.NewPage(TypeData)
	if err != nil {
		t.Fatal(err)
	}
	dirtyID := f.Page.ID
	if _, err := f.Page.Insert([]byte("precious")); err != nil {
		t.Fatal(err)
	}
	bp.Unpin(f, true)

	// Allocate a second page id while writes still work, then trip the
	// disk so evicting the dirty page must fail.
	id2, err := d.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	d.failWrites = true
	//lint:allow pinleak the fetch must fail on the unflushable victim and pins nothing
	if _, err := bp.Fetch(id2); err == nil {
		t.Fatal("Fetch must fail when the dirty victim cannot be flushed")
	}
	if got := bp.CachedPages(); got != 1 {
		t.Fatalf("CachedPages after failed eviction = %d, want 1 (dirty page retained)", got)
	}
	// The dirty page is still in cache with its modification intact.
	f, err = bp.Fetch(dirtyID)
	if err != nil {
		t.Fatalf("re-Fetch of retained dirty page: %v", err)
	}
	rec, err := f.Page.Record(0)
	if err != nil || string(rec) != "precious" {
		t.Fatalf("dirty page content lost: %q, %v", rec, err)
	}
	bp.Unpin(f, false)

	// Disk recovers: the eviction now succeeds and the data round-trips.
	d.failWrites = false
	f, err = bp.Fetch(id2)
	if err != nil {
		t.Fatalf("Fetch after disk recovery: %v", err)
	}
	bp.Unpin(f, false)
	f, err = bp.Fetch(dirtyID)
	if err != nil {
		t.Fatal(err)
	}
	rec, err = f.Page.Record(0)
	if err != nil || string(rec) != "precious" {
		t.Fatalf("dirty page lost across recovered eviction: %q, %v", rec, err)
	}
	bp.Unpin(f, false)
}
