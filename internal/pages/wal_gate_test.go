package pages

import (
	"errors"
	"sync/atomic"
	"testing"
)

// fakeWAL is a controllable flush gate.
type fakeWAL struct {
	durable atomic.Uint64
	synced  atomic.Int64
}

func (w *fakeWAL) DurableLSN() uint64 { return w.durable.Load() }
func (w *fakeWAL) Sync() error        { w.synced.Add(1); return nil }

// dirtyOnePage creates a page, writes through it, and returns its id.
func dirtyOnePage(t *testing.T, bp *BufferPool) PageID {
	t.Helper()
	f, err := bp.NewPage(TypeData)
	if err != nil {
		t.Fatal(err)
	}
	id := f.Page.ID
	bp.Unpin(f, true)
	return id
}

func TestEvictionRespectsDurableLSN(t *testing.T) {
	disk := NewMemDisk()
	bp := NewBufferPoolShards(disk, 2, 1)
	w := &fakeWAL{}
	bp.SetWAL(w)

	// Two dirty frames fill the pool; both logged at LSN 10 and 20 but
	// nothing durable yet.
	cap1, err := bp.BeginCapture()
	if err != nil {
		t.Fatal(err)
	}
	id1 := dirtyOnePage(t, bp)
	id2 := dirtyOnePage(t, bp)
	frames := bp.EndCapture(cap1)
	if len(frames) != 2 {
		t.Fatalf("captured %d frames, want 2", len(frames))
	}
	lsns := map[PageID]uint64{id1: 10, id2: 20}
	for _, f := range frames {
		lsn := lsns[f.Page.ID]
		if err := bp.LogDirtyFrame(f, func(p *Page) (uint64, error) { return lsn, nil }); err != nil {
			t.Fatal(err)
		}
	}
	bp.FinishPublish(bp.PreparePublish(cap1))

	// With durable = 0 no dirty frame may be flushed: allocating a third
	// page must fail rather than evict one.
	//lint:allow pinleak the WAL gate must reject the allocation, so nothing is pinned
	if _, err := bp.NewPage(TypeData); err == nil {
		t.Fatal("NewPage evicted a frame whose pageLSN exceeds the durable LSN")
	}

	// Making LSN 10 durable (durable LSN past it) frees exactly one
	// victim.
	w.durable.Store(11)
	f3, err := bp.NewPage(TypeData)
	if err != nil {
		t.Fatalf("NewPage after partial durability: %v", err)
	}
	bp.Unpin(f3, false)
	// id1 must be the evicted one: it is gone from cache, id2 remains.
	if disk.NumPages() < 2 {
		t.Fatalf("flushed page never reached disk")
	}
}

func TestUnloggedFramesAreNeverFlushed(t *testing.T) {
	disk := NewMemDisk()
	bp := NewBufferPoolShards(disk, 4, 1)
	w := &fakeWAL{}
	w.durable.Store(1 << 60) // everything logged is durable
	bp.SetWAL(w)

	c, err := bp.BeginCapture()
	if err != nil {
		t.Fatal(err)
	}
	dirtyOnePage(t, bp)
	// Mid-session (capture active, frame unlogged): FlushAll must refuse.
	if err := bp.FlushAll(); err == nil {
		t.Fatal("FlushAll flushed an unlogged frame of an active write session")
	}
	frames := bp.EndCapture(c)
	for _, f := range frames {
		if err := bp.LogDirtyFrame(f, func(p *Page) (uint64, error) { return 1, nil }); err != nil {
			t.Fatal(err)
		}
	}
	bp.FinishPublish(bp.PreparePublish(c))
	if err := bp.FlushAll(); err != nil {
		t.Fatalf("FlushAll after logging: %v", err)
	}
	if w.synced.Load() == 0 {
		t.Fatal("FlushAll did not sync the WAL first")
	}
}

func TestCaptureRecordsEachFrameOnce(t *testing.T) {
	bp := NewBufferPool(NewMemDisk(), 8)
	bp.SetWAL(&fakeWAL{})
	c, err := bp.BeginCapture()
	if err != nil {
		t.Fatal(err)
	}
	f, err := bp.NewPage(TypeData)
	if err != nil {
		t.Fatal(err)
	}
	id := f.Page.ID
	bp.Unpin(f, true)
	// Re-dirty the same page.
	f2, err := bp.Fetch(id)
	if err != nil {
		t.Fatal(err)
	}
	bp.Unpin(f2, true)
	frames := bp.EndCapture(c)
	if len(frames) != 1 {
		t.Fatalf("captured %d frames for one page, want 1", len(frames))
	}
	if frames[0].PageLSN() != 0 {
		t.Fatalf("unlogged frame has pageLSN %d", frames[0].PageLSN())
	}
}

func TestFaultDiskFailsAndTears(t *testing.T) {
	inner := NewMemDisk()
	d := NewFaultDisk(inner)
	id, err := d.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	full := make([]byte, PageSize)
	for i := range full {
		full[i] = 0x11
	}
	if err := d.WritePage(id, full); err != nil {
		t.Fatal(err)
	}
	// Arm a torn write: the next write persists only its first half.
	d.FailAfterWrites(0, true)
	newBuf := make([]byte, PageSize)
	for i := range newBuf {
		newBuf[i] = 0x22
	}
	err = d.WritePage(id, newBuf)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("torn write error = %v", err)
	}
	got := make([]byte, PageSize)
	if err := inner.ReadPage(id, got); err != nil {
		t.Fatal(err)
	}
	if got[0] != 0x22 || got[PageSize-1] != 0x11 {
		t.Fatalf("torn write left first byte %x last byte %x, want 22 / 11", got[0], got[PageSize-1])
	}
	// Disk is crashed: further writes fail until healed.
	if err := d.WritePage(id, full); !errors.Is(err, ErrInjected) {
		t.Fatalf("post-crash write error = %v", err)
	}
	d.Heal()
	if err := d.WritePage(id, full); err != nil {
		t.Fatalf("write after heal: %v", err)
	}
}

func TestPageLSNRoundTrip(t *testing.T) {
	var p Page
	p.Init(TypeData)
	p.SetLSN(0xDEADBEEF01)
	if got := p.LSN(); got != 0xDEADBEEF01 {
		t.Fatalf("LSN round trip got %x", got)
	}
	p.UpdateChecksum()
	if err := p.VerifyChecksum(); err != nil {
		t.Fatal(err)
	}
}
