package pages

import "time"

// IOModel converts byte counts observed at the buffer pool into modeled
// I/O time for a reference storage subsystem. The paper's testbed
// sustained "above 1 GB/s sequential read throughput for I/O limited
// scan operations" and Table 1 reports 1150 MB/s on the scan queries;
// DefaultIOModel is calibrated to that machine so the Table 1 harness can
// reconstruct the paper's time/CPU%/MB/s columns from our measured CPU
// time and counted bytes.
type IOModel struct {
	// SeqReadBytesPerSec is the sequential scan throughput.
	SeqReadBytesPerSec float64
	// RandReadLatency is charged per physical read when access is not
	// sequential (out-of-page blob hops, index descents).
	RandReadLatency time.Duration
}

// DefaultIOModel matches the paper's Dell PowerVault I/O subsystem.
var DefaultIOModel = IOModel{
	SeqReadBytesPerSec: 1150e6,
	RandReadLatency:    200 * time.Microsecond,
}

// SeqReadTime models the time to sequentially scan n bytes.
func (m IOModel) SeqReadTime(n uint64) time.Duration {
	if m.SeqReadBytesPerSec <= 0 {
		return 0
	}
	return time.Duration(float64(n) / m.SeqReadBytesPerSec * float64(time.Second))
}

// RandReadTime models the time for r random page reads totalling n bytes.
func (m IOModel) RandReadTime(r uint64, n uint64) time.Duration {
	return time.Duration(r)*m.RandReadLatency + m.SeqReadTime(n)
}
