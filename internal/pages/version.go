// MVCC page versioning: copy-on-write page versions and snapshot reads.
//
// The pool keeps, besides the current page table, a small per-shard
// *version sidecar*: superseded pre-image frames keyed by PageID. A
// write session never mutates a committed frame in place — FetchForWrite
// moves the committed frame into the sidecar and hands the session a
// private ("pending") copy, which replaces it in the page table. At
// commit the session *publishes*: every pending frame is stamped with
// the next commit tag, the displaced pre-images record which tag
// superseded them, and the commit clock advances — one atomic flip from
// every reader's point of view. On error the session *aborts*: pending
// frames are discarded and the pre-images are restored, so nothing
// uncommitted can ever be read, flushed, or logged.
//
// A snapshot is just a tag S read from the commit clock. Page content
// tagged t is visible to S iff t <= S; Snapshot.Fetch resolves a page to
// the newest visible version — the current table frame when its tag
// qualifies, else the newest qualifying sidecar entry, else the disk
// image (whose tag is the newest commit the sidecar records against the
// page, or 0 when no retained chain mentions it — sound because
// published dirty frames are flushed before eviction, so disk always
// holds the newest published content at miss time).
//
// Version lifetime: a sidecar entry superseded by commit T is needed
// exactly by snapshots older than T. It is dropped once it is unpinned
// and every active snapshot is at or past T (or none is active). GC
// runs opportunistically: at publish, at snapshot release, on the last
// unpin of a versioned frame, and in DropCleanBuffers.
//
// Memory: pending and versioned frames live outside the page table and
// the LRU lists, so they do not consume table capacity — the pool can
// transiently exceed its frame budget by (pages dirtied by the one
// active write session) + (versions retained for live snapshots). Both
// are bounded: the engine is single-writer, and snapshots are
// query-scoped.
package pages

import "fmt"

// Fetcher is the read-side page access interface: the plain pool
// ("current mode" — a write session sees its own pending pages) and
// Snapshot (committed-as-of-S visibility) both implement it, so B+tree
// descents and blob chunk walks can run against either.
type Fetcher interface {
	Fetch(id PageID) (*Frame, error)
	Unpin(f *Frame, dirty bool)
}

var _ Fetcher = (*BufferPool)(nil)
var _ Fetcher = (*Snapshot)(nil)

// Snapshot is a read view of the database as of a commit tag: every
// Fetch resolves to the newest version published at or before the tag,
// never seeing uncommitted or later state. Snapshots are cheap (no
// page copying on the read side), safe for concurrent use by parallel
// scan workers, and must be Released so the version store can shrink.
type Snapshot struct {
	bp       *BufferPool
	tag      uint64
	released bool
}

// AcquireSnapshot registers a read view at the current commit clock.
// The caller must Release it exactly once.
func (bp *BufferPool) AcquireSnapshot() *Snapshot {
	bp.snapMu.Lock()
	tag := bp.snapClock.Load()
	bp.snapActive[tag]++
	if tag < bp.minSnap.Load() {
		bp.minSnap.Store(tag)
	}
	bp.snapMu.Unlock()
	return &Snapshot{bp: bp, tag: tag}
}

// Tag returns the snapshot's commit tag.
func (sn *Snapshot) Tag() uint64 { return sn.tag }

// Release deregisters the snapshot and retires any page versions only
// it was keeping alive. Idempotent is NOT guaranteed — callers own the
// single release (engine wrappers add idempotence where needed).
func (sn *Snapshot) Release() {
	if sn.released {
		return
	}
	sn.released = true
	bp := sn.bp
	bp.snapMu.Lock()
	if n := bp.snapActive[sn.tag] - 1; n > 0 {
		bp.snapActive[sn.tag] = n
	} else {
		delete(bp.snapActive, sn.tag)
	}
	min := ^uint64(0)
	for t := range bp.snapActive {
		if t < min {
			min = t
		}
	}
	bp.minSnap.Store(min)
	bp.snapMu.Unlock()
	bp.retireVersions()
}

// Fetch resolves page id to the newest version visible at the snapshot's
// tag and pins it. The returned frame may be a shared sidecar version —
// callers must treat it as read-only and Unpin it as usual.
func (sn *Snapshot) Fetch(id PageID) (*Frame, error) {
	bp := sn.bp
	bp.stats.logicalReads.Add(1)
	s := bp.shardFor(id)
	s.mu.Lock()
	if f, ok := s.table[id]; ok {
		if !f.pending && f.verTag.Load() <= sn.tag {
			if f.lru != nil {
				s.listFor(f).Remove(f.lru)
				f.lru = nil
			}
			if f.tier == tierProbation && bp.slru.Load() {
				f.tier = tierProtected
				bp.stats.promotions.Add(1)
			}
			f.pins.Add(1)
			s.mu.Unlock()
			return f, nil
		}
		// Current content is pending or too new: fall through to the
		// version sidecar.
		if v := s.newestVisibleLocked(id, sn.tag); v != nil {
			v.pins.Add(1)
			bp.stats.snapshotReads.Add(1)
			s.mu.Unlock()
			return v, nil
		}
		s.mu.Unlock()
		// Unreachable while the GC rule holds (a pre-image superseded by
		// commit T is retained until every snapshot reaches T); kept as a
		// hard error rather than silent wrong data.
		return nil, fmt.Errorf("pages: snapshot %d has no visible version of page %d", sn.tag, id)
	}
	if v := s.newestVisibleLocked(id, sn.tag); v != nil {
		v.pins.Add(1)
		bp.stats.snapshotReads.Add(1)
		s.mu.Unlock()
		return v, nil
	}
	// Miss: the disk image is the newest published version; load it into
	// the shared page table exactly like a current-mode miss.
	f, err := s.victimLocked(bp)
	if err != nil {
		s.mu.Unlock()
		return nil, err
	}
	f.Page.ID = id
	if err := bp.disk.ReadPage(id, f.Page.Buf[:]); err != nil {
		s.releaseFrameLocked(f)
		s.mu.Unlock()
		return nil, err
	}
	bp.stats.physicalReads.Add(1)
	bp.stats.bytesRead.Add(PageSize)
	if bp.verify.Load() {
		if err := f.Page.VerifyChecksum(); err != nil {
			s.releaseFrameLocked(f)
			s.mu.Unlock()
			return nil, err
		}
	}
	f.pins.Store(1)
	f.dirty = false
	f.unlogged = false
	f.pending = false
	f.versioned = false
	f.tier = tierProbation
	f.pageLSN.Store(f.Page.LSN())
	tag := s.latestSupersedeLocked(id)
	f.verTag.Store(tag)
	bp.stats.admissions.Add(1)
	s.table[id] = f
	s.mu.Unlock()
	if tag > sn.tag {
		// Same unreachable-by-construction guard as above.
		bp.Unpin(f, false)
		return nil, fmt.Errorf("pages: snapshot %d has no visible version of page %d (disk at %d)", sn.tag, id, tag)
	}
	return f, nil
}

// Unpin releases a frame fetched through the snapshot. Snapshot reads
// never dirty pages; dirty=true panics via the pool's versioned-write
// guard.
func (sn *Snapshot) Unpin(f *Frame, dirty bool) { sn.bp.Unpin(f, dirty) }

// newestVisibleLocked returns the newest sidecar version of id whose tag
// is <= snapTag, or nil. Caller holds s.mu.
func (s *shard) newestVisibleLocked(id PageID, snapTag uint64) *Frame {
	vs := s.vers[id]
	for i := len(vs) - 1; i >= 0; i-- {
		if vs[i].verTag.Load() <= snapTag {
			return vs[i]
		}
	}
	return nil
}

// latestSupersedeLocked returns the newest commit tag the sidecar
// records against id — the tag of the content currently on disk when id
// is not cached — or 0 when no retained chain mentions the page. Caller
// holds s.mu.
func (s *shard) latestSupersedeLocked(id PageID) uint64 {
	var max uint64
	for _, v := range s.vers[id] {
		if t := v.supersededBy; t > max {
			max = t
		}
	}
	return max
}

// FetchForWrite pins page id for mutation inside the active write
// session. With no capture active it is identical to Fetch (the
// engine's non-durable unit-test paths keep their in-place semantics).
// Under a capture it returns the session's private pending copy,
// creating it copy-on-write on first touch: the committed frame moves
// into the version sidecar (old snapshots keep reading it) and a fresh
// frame with identical contents replaces it in the page table.
func (bp *BufferPool) FetchForWrite(id PageID) (*Frame, error) {
	c := bp.capture.Load()
	if c == nil {
		return bp.Fetch(id)
	}
	bp.stats.logicalReads.Add(1)
	s := bp.shardFor(id)
	s.mu.Lock()
	old, cached := s.table[id]
	if cached && old.pending {
		old.pins.Add(1)
		s.mu.Unlock()
		return old, nil
	}
	if !cached {
		// Load the committed image first; it becomes the pre-image.
		f, err := s.victimLocked(bp)
		if err != nil {
			s.mu.Unlock()
			return nil, err
		}
		f.Page.ID = id
		if err := bp.disk.ReadPage(id, f.Page.Buf[:]); err != nil {
			s.releaseFrameLocked(f)
			s.mu.Unlock()
			return nil, err
		}
		bp.stats.physicalReads.Add(1)
		bp.stats.bytesRead.Add(PageSize)
		if bp.verify.Load() {
			if err := f.Page.VerifyChecksum(); err != nil {
				s.releaseFrameLocked(f)
				s.mu.Unlock()
				return nil, err
			}
		}
		f.pins.Store(0)
		f.dirty = false
		f.unlogged = false
		f.pending = false
		f.versioned = false
		f.tier = tierProbation
		f.pageLSN.Store(f.Page.LSN())
		f.verTag.Store(s.latestSupersedeLocked(id))
		bp.stats.admissions.Add(1)
		old = f
		// Not inserted into table or LRU: it goes straight to the sidecar
		// below, and the pending copy takes the table slot.
	} else if old.lru != nil {
		// Unhook the pre-image so the victim scan below cannot evict it
		// out from under us.
		s.listFor(old).Remove(old.lru)
		old.lru = nil
	}
	pend, err := s.victimLocked(bp)
	if err != nil {
		// Roll the pre-image back to where it came from.
		if !cached {
			s.releaseFrameLocked(old)
		} else if old.pins.Load() == 0 {
			old.lru = s.listFor(old).PushFront(old)
		}
		s.mu.Unlock()
		return nil, err
	}
	pend.Page = old.Page // full 8 kB copy, same ID
	pend.pins.Store(1)
	pend.dirty = old.dirty
	pend.unlogged = true
	pend.pending = true
	pend.versioned = false
	pend.tier = old.tier
	pend.pageLSN.Store(old.pageLSN.Load())
	pend.verTag.Store(old.verTag.Load())
	old.versioned = true
	old.supersededBy = 0
	s.vers[id] = append(s.vers[id], old)
	s.table[id] = pend
	bp.stats.cowCopies.Add(1)
	s.mu.Unlock()
	c.add(pend)
	c.addPre(pend, old)
	return pend, nil
}

// PreparePublish stamps every frame of an ended capture with the next
// commit tag and records that tag on the displaced pre-images, without
// advancing the commit clock: snapshots acquired while this runs still
// resolve to the pre-images (their tag exceeds the clock), so the
// commit stays invisible until FinishPublish. Returns the tag.
//
// The caller must have ended the capture (EndCapture) and, with a WAL
// attached, logged every frame (LogDirtyFrame) first.
func (bp *BufferPool) PreparePublish(c *Capture) uint64 {
	tag := bp.snapClock.Load() + 1
	for _, f := range c.Frames() {
		pre := c.preimage(f)
		s := f.shard
		s.mu.Lock()
		f.verTag.Store(tag)
		f.pending = false
		if bp.wal == nil {
			// No durability protocol: published frames are immediately
			// flushable (the WAL gate otherwise clears unlogged in
			// LogDirtyFrame).
			f.unlogged = false
		}
		if f.pins.Load() == 0 && f.lru == nil {
			f.lru = s.listFor(f).PushFront(f)
			if f.tier == tierProtected {
				s.enforceProtCapLocked()
			}
		}
		if pre != nil {
			pre.supersededBy = tag
		}
		s.dropVersionsLocked(bp, f.Page.ID)
		s.mu.Unlock()
	}
	return tag
}

// FinishPublish advances the commit clock to the prepared tag, making
// the commit visible to every snapshot acquired from now on, then
// retires the pre-images the publish window was protecting (they only
// become droppable once the clock passes their superseding tag).
func (bp *BufferPool) FinishPublish(tag uint64) {
	bp.snapClock.Store(tag)
	bp.retireVersions()
}

// AbortCapture discards every pending frame of an ended capture and
// restores the displaced pre-images into the page table, as if the
// write session never ran. Frames created by the session (no pre-image)
// vanish from the cache; their disk pages leak until the file is next
// compacted, which matches the redo-only WAL's contract (an aborted
// statement logs nothing, so recovery also never resurrects them).
func (bp *BufferPool) AbortCapture(c *Capture) {
	for _, f := range c.Frames() {
		pre := c.preimage(f)
		s := f.shard
		s.mu.Lock()
		if !f.pending {
			// Defensive: only pending frames are discardable. A published
			// or never-captured frame stays untouched.
			s.mu.Unlock()
			continue
		}
		id := f.Page.ID
		delete(s.table, id)
		if pre != nil {
			// Remove the pre-image's sidecar entry and put it back as the
			// current frame.
			vs := s.vers[id]
			for i := len(vs) - 1; i >= 0; i-- {
				if vs[i] == pre {
					s.vers[id] = append(vs[:i], vs[i+1:]...)
					break
				}
			}
			if len(s.vers[id]) == 0 {
				delete(s.vers, id)
			}
			pre.versioned = false
			pre.supersededBy = 0
			s.table[id] = pre
			if pre.pins.Load() == 0 && pre.lru == nil {
				pre.lru = s.listFor(pre).PushFront(pre)
				if pre.tier == tierProtected {
					s.enforceProtCapLocked()
				}
			}
		}
		// Discard the pending copy. A nonzero pin count here would be a
		// caller bug (the session must unpin before aborting); the frame
		// is then orphaned rather than recycled so the dangling pointer
		// cannot alias a future page.
		f.pending = false
		f.dirty = false
		f.unlogged = false
		f.pageLSN.Store(0)
		f.verTag.Store(0)
		if f.pins.Load() == 0 {
			s.releaseFrameLocked(f)
		}
		s.mu.Unlock()
	}
}

// droppableLocked reports whether a sidecar version can be retired: its
// superseding commit is published and no active snapshot predates it.
// Caller holds the owning shard's mutex.
func (bp *BufferPool) droppableLocked(f *Frame) bool {
	if f.supersededBy == 0 || f.pins.Load() != 0 {
		return false
	}
	if f.supersededBy > bp.snapClock.Load() {
		// The superseding commit is still between PreparePublish and
		// FinishPublish: a snapshot acquired right now (at the old
		// clock) resolves to THIS version, so it must survive until the
		// clock passes the tag.
		return false
	}
	return bp.minSnap.Load() >= f.supersededBy // ^0 when no snapshot is active
}

// dropVersionsLocked retires every droppable sidecar version of id,
// recycling their frames. Caller holds s.mu.
func (s *shard) dropVersionsLocked(bp *BufferPool, id PageID) {
	vs, ok := s.vers[id]
	if !ok {
		return
	}
	kept := vs[:0]
	for _, f := range vs {
		if bp.droppableLocked(f) {
			f.versioned = false
			f.dirty = false
			f.unlogged = false
			f.supersededBy = 0
			f.pageLSN.Store(0)
			f.verTag.Store(0)
			s.releaseFrameLocked(f)
			bp.stats.versionsRetired.Add(1)
			continue
		}
		kept = append(kept, f)
	}
	if len(kept) == 0 {
		delete(s.vers, id)
	} else {
		s.vers[id] = kept
	}
}

// retireVersions sweeps every shard's sidecar for droppable versions.
func (bp *BufferPool) retireVersions() {
	for _, s := range bp.shards {
		s.mu.Lock()
		for id := range s.vers {
			s.dropVersionsLocked(bp, id)
		}
		s.mu.Unlock()
	}
}

// VersionPages returns the number of page versions currently retained
// in the sidecar — the version-store footprint tests assert drains to
// zero once all snapshots are released.
func (bp *BufferPool) VersionPages() int {
	n := 0
	for _, s := range bp.shards {
		s.mu.Lock()
		for _, vs := range s.vers {
			n += len(vs)
		}
		s.mu.Unlock()
	}
	return n
}

// ActiveSnapshots returns how many snapshots are currently registered.
func (bp *BufferPool) ActiveSnapshots() int {
	bp.snapMu.Lock()
	defer bp.snapMu.Unlock()
	n := 0
	for _, c := range bp.snapActive {
		n += c
	}
	return n
}

// CommitTag returns the current commit clock value (the tag the next
// AcquireSnapshot would observe).
func (bp *BufferPool) CommitTag() uint64 { return bp.snapClock.Load() }

// MinSnapshotTag returns the smallest tag among active snapshots, or
// ^uint64(0) when none is active — the horizon below which superseded
// versions (and the engine's per-table catalog versions) are dead.
func (bp *BufferPool) MinSnapshotTag() uint64 { return bp.minSnap.Load() }
