package pages

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

func TestPageInsertRead(t *testing.T) {
	var p Page
	p.Init(TypeData)
	recs := [][]byte{[]byte("alpha"), []byte("bravo-bravo"), {0x01, 0x02}}
	slots := make([]int, len(recs))
	for i, r := range recs {
		s, err := p.Insert(r)
		if err != nil {
			t.Fatalf("Insert %d: %v", i, err)
		}
		slots[i] = s
	}
	for i, r := range recs {
		got, err := p.Record(slots[i])
		if err != nil {
			t.Fatalf("Record %d: %v", i, err)
		}
		if !bytes.Equal(got, r) {
			t.Errorf("slot %d = %q, want %q", slots[i], got, r)
		}
	}
	if p.LiveRecords() != 3 {
		t.Errorf("LiveRecords = %d", p.LiveRecords())
	}
}

func TestPageFull(t *testing.T) {
	var p Page
	p.Init(TypeData)
	rec := make([]byte, 1000)
	inserted := 0
	for {
		if _, err := p.Insert(rec); err != nil {
			if !errors.Is(err, ErrPageFull) {
				t.Fatalf("unexpected error: %v", err)
			}
			break
		}
		inserted++
	}
	// 8192-96 = 8096 usable; each record costs 1000+4 -> 8 fit.
	if inserted != 8 {
		t.Errorf("inserted %d records, want 8", inserted)
	}
	if _, err := p.Insert(make([]byte, MaxRecordSize+1)); !errors.Is(err, ErrPageFull) {
		t.Errorf("oversized record: %v", err)
	}
}

func TestPageDeleteUpdateCompact(t *testing.T) {
	var p Page
	p.Init(TypeData)
	s0, _ := p.Insert([]byte("first-record"))
	s1, _ := p.Insert([]byte("second-record"))
	if err := p.Delete(s0); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Record(s0); !errors.Is(err, ErrBadSlot) {
		t.Errorf("dead slot read: %v", err)
	}
	if p.LiveRecords() != 1 {
		t.Errorf("LiveRecords = %d", p.LiveRecords())
	}
	// In-place update (same size or smaller).
	if err := p.Update(s1, []byte("SECOND")); err != nil {
		t.Fatal(err)
	}
	got, _ := p.Record(s1)
	if string(got) != "SECOND" {
		t.Errorf("after update: %q", got)
	}
	// Growing update allocates fresh space.
	long := bytes.Repeat([]byte("x"), 100)
	if err := p.Update(s1, long); err != nil {
		t.Fatal(err)
	}
	before := p.FreeSpace()
	p.Compact()
	if p.FreeSpace() <= before {
		t.Errorf("Compact did not reclaim: %d -> %d", before, p.FreeSpace())
	}
	got, _ = p.Record(s1)
	if !bytes.Equal(got, long) {
		t.Error("Compact corrupted record")
	}
	if err := p.Delete(99); !errors.Is(err, ErrBadSlot) {
		t.Errorf("bad delete: %v", err)
	}
	if err := p.Update(99, nil); !errors.Is(err, ErrBadSlot) {
		t.Errorf("bad update: %v", err)
	}
}

func TestPageChecksum(t *testing.T) {
	var p Page
	p.Init(TypeData)
	if _, err := p.Insert([]byte("payload")); err != nil {
		t.Fatal(err)
	}
	p.UpdateChecksum()
	if err := p.VerifyChecksum(); err != nil {
		t.Fatalf("fresh checksum: %v", err)
	}
	p.Buf[HeaderSize] ^= 0xFF // corrupt a body byte
	if err := p.VerifyChecksum(); !errors.Is(err, ErrChecksum) {
		t.Errorf("corruption not detected: %v", err)
	}
}

func TestMemDisk(t *testing.T) {
	d := NewMemDisk()
	if d.NumPages() != 1 {
		t.Fatalf("fresh disk pages = %d", d.NumPages())
	}
	id, err := d.Allocate()
	if err != nil || id != 1 {
		t.Fatalf("Allocate = %d, %v", id, err)
	}
	buf := make([]byte, PageSize)
	buf[0] = 0x42
	if err := d.WritePage(id, buf); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, PageSize)
	if err := d.ReadPage(id, got); err != nil {
		t.Fatal(err)
	}
	if got[0] != 0x42 {
		t.Error("read back mismatch")
	}
	if err := d.ReadPage(99, got); !errors.Is(err, ErrOutOfBounds) {
		t.Errorf("out of bounds read: %v", err)
	}
	if err := d.WritePage(99, buf); !errors.Is(err, ErrOutOfBounds) {
		t.Errorf("out of bounds write: %v", err)
	}
}

func TestFileDiskPersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "test.db")
	d, err := OpenFileDisk(path)
	if err != nil {
		t.Fatal(err)
	}
	id, err := d.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, PageSize)
	copy(buf, "persistent-bytes")
	if err := d.WritePage(id, buf); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen and verify.
	d2, err := OpenFileDisk(path)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if d2.NumPages() != 2 {
		t.Errorf("reopened pages = %d, want 2", d2.NumPages())
	}
	got := make([]byte, PageSize)
	if err := d2.ReadPage(id, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(got, []byte("persistent-bytes")) {
		t.Error("data not persisted")
	}
	st, _ := os.Stat(path)
	if st.Size() != 2*PageSize {
		t.Errorf("file size = %d", st.Size())
	}
}

func TestBufferPoolFetchAndEvict(t *testing.T) {
	d := NewMemDisk()
	bp := NewBufferPool(d, 4)
	// Create 10 pages each holding one marker record.
	ids := make([]PageID, 10)
	for i := range ids {
		f, err := bp.NewPage(TypeData)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Page.Insert([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		ids[i] = f.Page.ID
		bp.Unpin(f, true)
	}
	// Re-fetch all; pool holds only 4, so evictions must occur and dirty
	// pages must round-trip through disk.
	for i, id := range ids {
		f, err := bp.Fetch(id)
		if err != nil {
			t.Fatalf("Fetch %d: %v", id, err)
		}
		rec, err := f.Page.Record(0)
		if err != nil || rec[0] != byte(i) {
			t.Fatalf("page %d record = %v, %v", id, rec, err)
		}
		bp.Unpin(f, false)
	}
	st := bp.Stats()
	if st.Evictions == 0 {
		t.Error("expected evictions with a small pool")
	}
	if st.PhysicalReads == 0 {
		t.Error("expected physical reads after eviction")
	}
	if st.LogicalReads != 10 {
		t.Errorf("LogicalReads = %d, want 10", st.LogicalReads)
	}
}

func TestBufferPoolPinnedExhaustion(t *testing.T) {
	bp := NewBufferPool(NewMemDisk(), 2)
	f1, err := bp.NewPage(TypeData)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := bp.NewPage(TypeData)
	if err != nil {
		t.Fatal(err)
	}
	//lint:allow pinleak exhaustion is the point: the call must fail and pin nothing
	if _, err := bp.NewPage(TypeData); err == nil {
		t.Error("expected exhaustion with all frames pinned")
	}
	bp.Unpin(f1, false)
	bp.Unpin(f2, false)
	//lint:allow pinleak deliberate terminal pin; the pool is discarded with the test
	if _, err := bp.NewPage(TypeData); err != nil {
		t.Errorf("after unpin: %v", err)
	}
}

func TestBufferPoolDropCleanBuffers(t *testing.T) {
	bp := NewBufferPool(NewMemDisk(), 8)
	f, err := bp.NewPage(TypeData)
	if err != nil {
		t.Fatal(err)
	}
	id := f.Page.ID
	if _, err := f.Page.Insert([]byte("dirty")); err != nil {
		t.Fatal(err)
	}
	bp.Unpin(f, true)
	if err := bp.DropCleanBuffers(); err != nil {
		t.Fatal(err)
	}
	if bp.CachedPages() != 0 {
		t.Errorf("cache not empty: %d", bp.CachedPages())
	}
	bp.ResetStats()
	f, err = bp.Fetch(id)
	if err != nil {
		t.Fatal(err)
	}
	rec, _ := f.Page.Record(0)
	if string(rec) != "dirty" {
		t.Error("dirty page lost by DropCleanBuffers")
	}
	bp.Unpin(f, false)
	if bp.Stats().PhysicalReads != 1 {
		t.Errorf("PhysicalReads = %d, want 1 (cold fetch)", bp.Stats().PhysicalReads)
	}
	// Pinned pages block the drop.
	f, _ = bp.Fetch(id)
	if err := bp.DropCleanBuffers(); err == nil {
		t.Error("DropCleanBuffers must fail with pinned pages")
	}
	bp.Unpin(f, false)
}

func TestBufferPoolChecksumVerification(t *testing.T) {
	d := NewMemDisk()
	bp := NewBufferPool(d, 4)
	f, err := bp.NewPage(TypeData)
	if err != nil {
		t.Fatal(err)
	}
	id := f.Page.ID
	if _, err := f.Page.Insert([]byte("guarded")); err != nil {
		t.Fatal(err)
	}
	bp.Unpin(f, true)
	if err := bp.DropCleanBuffers(); err != nil {
		t.Fatal(err)
	}
	// Corrupt the page behind the pool's back.
	raw := make([]byte, PageSize)
	if err := d.ReadPage(id, raw); err != nil {
		t.Fatal(err)
	}
	raw[HeaderSize+2] ^= 0x01
	if err := d.WritePage(id, raw); err != nil {
		t.Fatal(err)
	}
	//lint:allow pinleak the corrupted fetch fails the checksum and pins nothing
	if _, err := bp.Fetch(id); !errors.Is(err, ErrChecksum) {
		t.Errorf("corrupted fetch: %v", err)
	}
	// With verification off the fetch succeeds.
	bp.SetVerifyChecksums(false)
	f, err = bp.Fetch(id)
	if err != nil {
		t.Fatalf("unverified fetch: %v", err)
	}
	bp.Unpin(f, false)
}

func TestBufferPoolFlushAll(t *testing.T) {
	d := NewMemDisk()
	bp := NewBufferPool(d, 8)
	f, _ := bp.NewPage(TypeData)
	id := f.Page.ID
	if _, err := f.Page.Insert([]byte("flush-me")); err != nil {
		t.Fatal(err)
	}
	bp.Unpin(f, true)
	if err := bp.FlushAll(); err != nil {
		t.Fatal(err)
	}
	raw := make([]byte, PageSize)
	if err := d.ReadPage(id, raw); err != nil {
		t.Fatal(err)
	}
	var p Page
	copy(p.Buf[:], raw)
	rec, err := p.Record(0)
	if err != nil || string(rec) != "flush-me" {
		t.Errorf("flushed page record = %q, %v", rec, err)
	}
}

func TestPageRandomizedInsertReadProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		var p Page
		p.Init(TypeData)
		var want [][]byte
		for {
			rec := make([]byte, 1+rng.Intn(300))
			rng.Read(rec)
			if _, err := p.Insert(rec); err != nil {
				break
			}
			want = append(want, rec)
		}
		for i, w := range want {
			got, err := p.Record(i)
			if err != nil || !bytes.Equal(got, w) {
				t.Fatalf("trial %d slot %d mismatch", trial, i)
			}
		}
	}
}

func TestIOModel(t *testing.T) {
	m := IOModel{SeqReadBytesPerSec: 1000e6, RandReadLatency: 0}
	if got := m.SeqReadTime(1000e6); got.Seconds() < 0.99 || got.Seconds() > 1.01 {
		t.Errorf("SeqReadTime(1GB) = %v, want ~1s", got)
	}
	if (IOModel{}).SeqReadTime(1<<30) != 0 {
		t.Error("zero model must charge nothing")
	}
	m2 := IOModel{SeqReadBytesPerSec: 1e9, RandReadLatency: 1e6}
	if got := m2.RandReadTime(10, 0); got.Milliseconds() != 10 {
		t.Errorf("RandReadTime = %v", got)
	}
}

func TestBufferPoolPinnedFrames(t *testing.T) {
	disk := NewMemDisk()
	bp := NewBufferPool(disk, 8)
	if got := bp.PinnedFrames(); got != 0 {
		t.Fatalf("fresh pool PinnedFrames = %d", got)
	}
	f1, err := bp.NewPage(TypeData)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := bp.NewPage(TypeData)
	if err != nil {
		t.Fatal(err)
	}
	if got := bp.PinnedFrames(); got != 2 {
		t.Errorf("PinnedFrames after two NewPage = %d, want 2", got)
	}
	// A second Fetch of a pinned page raises its pin count but not the
	// pinned-frame count.
	f1b, err := bp.Fetch(f1.Page.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got := bp.PinnedFrames(); got != 2 {
		t.Errorf("PinnedFrames after re-Fetch = %d, want 2", got)
	}
	bp.Unpin(f1b, false)
	if got := bp.PinnedFrames(); got != 2 {
		t.Errorf("PinnedFrames after one of two unpins = %d, want 2", got)
	}
	bp.Unpin(f1, false)
	bp.Unpin(f2, true)
	if got := bp.PinnedFrames(); got != 0 {
		t.Errorf("PinnedFrames after unpinning all = %d, want 0", got)
	}
	// The invariant DropCleanBuffers enforces is exactly "no pins".
	if err := bp.DropCleanBuffers(); err != nil {
		t.Errorf("DropCleanBuffers on quiesced pool: %v", err)
	}
}
