package pages

import "testing"

// Probe: a snapshot acquired between PreparePublish and FinishPublish
// (legal, since readers never hold the write lock) must still resolve
// every page. droppableLocked has no "superseding commit is published"
// check, so with no other snapshot active the pre-image is retired
// inside PreparePublish and the mid-window snapshot fails.
func TestProbePublishWindowSnapshot(t *testing.T) {
	bp := NewBufferPool(NewMemDisk(), 16)
	f, err := bp.NewPage(TypeData)
	if err != nil {
		t.Fatal(err)
	}
	id := f.Page.ID
	bp.Unpin(f, true)

	// Commit 1: publish the page so it has a committed version.
	c1, _ := bp.BeginCapture()
	f, err = bp.FetchForWrite(id)
	if err != nil {
		t.Fatal(err)
	}
	f.Page.Buf[100] = 1
	bp.Unpin(f, true)
	bp.EndCapture(c1)
	bp.FinishPublish(bp.PreparePublish(c1))

	// Commit 2: stop between PreparePublish and FinishPublish.
	c2, _ := bp.BeginCapture()
	f, err = bp.FetchForWrite(id)
	if err != nil {
		t.Fatal(err)
	}
	f.Page.Buf[100] = 2
	bp.Unpin(f, true)
	bp.EndCapture(c2)
	tag := bp.PreparePublish(c2)

	sn := bp.AcquireSnapshot() // concurrent reader lands here
	defer sn.Release()
	if _, err := sn.Fetch(id); err != nil {
		t.Fatalf("snapshot acquired mid-publish cannot read page: %v", err)
	}
	bp.FinishPublish(tag)
}
