package pages

import (
	"fmt"
	"os"
	"sync"
)

// DiskManager abstracts the backing store of a database file: a flat array
// of 8 kB pages addressed by PageID. Page 0 exists but is reserved for
// metadata, so the first Allocate returns page 1.
type DiskManager interface {
	// ReadPage fills buf (len PageSize) with page id's contents.
	ReadPage(id PageID, buf []byte) error
	// WritePage persists buf (len PageSize) as page id's contents.
	WritePage(id PageID, buf []byte) error
	// Allocate extends the file by one page and returns its id.
	Allocate() (PageID, error)
	// NumPages returns the current file length in pages (including page 0).
	NumPages() int
	// Close releases resources.
	Close() error
}

// MemDisk is an in-memory DiskManager, the default for tests and
// benchmarks. It is safe for concurrent use.
type MemDisk struct {
	mu    sync.RWMutex
	pages [][]byte
}

// NewMemDisk returns an empty in-memory database file (page 0 allocated).
func NewMemDisk() *MemDisk {
	return &MemDisk{pages: [][]byte{make([]byte, PageSize)}}
}

// ReadPage implements DiskManager.
func (d *MemDisk) ReadPage(id PageID, buf []byte) error {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if int(id) >= len(d.pages) {
		return fmt.Errorf("%w: read page %d of %d", ErrOutOfBounds, id, len(d.pages))
	}
	copy(buf, d.pages[id])
	return nil
}

// WritePage implements DiskManager.
func (d *MemDisk) WritePage(id PageID, buf []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if int(id) >= len(d.pages) {
		return fmt.Errorf("%w: write page %d of %d", ErrOutOfBounds, id, len(d.pages))
	}
	copy(d.pages[id], buf)
	return nil
}

// Allocate implements DiskManager.
func (d *MemDisk) Allocate() (PageID, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.pages = append(d.pages, make([]byte, PageSize))
	return PageID(len(d.pages) - 1), nil
}

// NumPages implements DiskManager.
func (d *MemDisk) NumPages() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.pages)
}

// Close implements DiskManager.
func (d *MemDisk) Close() error { return nil }

// FileDisk is a file-backed DiskManager.
type FileDisk struct {
	mu    sync.Mutex
	f     *os.File
	count int
}

// OpenFileDisk opens (or creates) a database file. A new file gets its
// reserved page 0 immediately.
func OpenFileDisk(path string) (*FileDisk, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("pages: open %s: %w", path, err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("pages: stat %s: %w", path, err)
	}
	d := &FileDisk{f: f, count: int(st.Size() / PageSize)}
	if d.count == 0 {
		zero := make([]byte, PageSize)
		if _, err := f.WriteAt(zero, 0); err != nil {
			f.Close()
			return nil, fmt.Errorf("pages: init %s: %w", path, err)
		}
		d.count = 1
	}
	return d, nil
}

// ReadPage implements DiskManager.
func (d *FileDisk) ReadPage(id PageID, buf []byte) error {
	d.mu.Lock()
	n := d.count
	d.mu.Unlock()
	if int(id) >= n {
		return fmt.Errorf("%w: read page %d of %d", ErrOutOfBounds, id, n)
	}
	if _, err := d.f.ReadAt(buf[:PageSize], int64(id)*PageSize); err != nil {
		return fmt.Errorf("pages: read page %d: %w", id, err)
	}
	return nil
}

// WritePage implements DiskManager.
func (d *FileDisk) WritePage(id PageID, buf []byte) error {
	d.mu.Lock()
	n := d.count
	d.mu.Unlock()
	if int(id) >= n {
		return fmt.Errorf("%w: write page %d of %d", ErrOutOfBounds, id, n)
	}
	if _, err := d.f.WriteAt(buf[:PageSize], int64(id)*PageSize); err != nil {
		return fmt.Errorf("pages: write page %d: %w", id, err)
	}
	return nil
}

// Allocate implements DiskManager.
func (d *FileDisk) Allocate() (PageID, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	id := PageID(d.count)
	zero := make([]byte, PageSize)
	if _, err := d.f.WriteAt(zero, int64(id)*PageSize); err != nil {
		return 0, fmt.Errorf("pages: extend to page %d: %w", id, err)
	}
	d.count++
	return id, nil
}

// NumPages implements DiskManager.
func (d *FileDisk) NumPages() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.count
}

// Close implements DiskManager.
func (d *FileDisk) Close() error { return d.f.Close() }
