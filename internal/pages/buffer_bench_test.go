package pages

import (
	"fmt"
	"sync"
	"testing"
)

// benchPool builds a pool with the given stripe count and a working set
// of hot pages all goroutines hammer.
func benchPool(b *testing.B, shards, capacity, pagesN int) (*BufferPool, []PageID) {
	b.Helper()
	bp := NewBufferPoolShards(NewMemDisk(), capacity, shards)
	ids := make([]PageID, pagesN)
	for i := range ids {
		f, err := bp.NewPage(TypeData)
		if err != nil {
			b.Fatal(err)
		}
		ids[i] = f.Page.ID
		bp.Unpin(f, false)
	}
	return bp, ids
}

// BenchmarkBufferPoolContention measures aggregate Fetch/Unpin
// throughput with goroutines hammering a cached working set — the shape
// of the parallel aggregate scan's page traffic. The shards=1 variant is
// the seed's single-mutex pool; the sharded variants are the lock-striped
// replacement. The acceptance bar for this PR is >= 2x ops/s at 8
// goroutines for sharded vs shards=1.
func BenchmarkBufferPoolContention(b *testing.B) {
	const capacity = 4096
	const hotPages = 1024
	for _, shards := range []int{1, 8, 64} {
		for _, workers := range []int{1, 4, 8} {
			name := fmt.Sprintf("shards=%d/goroutines=%d", shards, workers)
			b.Run(name, func(b *testing.B) {
				bp, ids := benchPool(b, shards, capacity, hotPages)
				b.ResetTimer()
				var wg sync.WaitGroup
				per := b.N / workers
				if per == 0 {
					per = 1
				}
				for w := 0; w < workers; w++ {
					wg.Add(1)
					go func(w int) {
						defer wg.Done()
						// Stride so goroutines walk different pages and the
						// contention measured is lock traffic, not one hot
						// frame.
						i := w * 37
						for n := 0; n < per; n++ {
							f, err := bp.Fetch(ids[i%hotPages])
							if err != nil {
								b.Error(err)
								return
							}
							bp.Unpin(f, false)
							i += 7
						}
					}(w)
				}
				wg.Wait()
				b.StopTimer()
				if got := bp.PinnedFrames(); got != 0 {
					b.Fatalf("leaked pins: %d", got)
				}
			})
		}
	}
}

// BenchmarkBufferPoolFetchMiss measures the cold path (evicting fetches)
// so the striping overhead on misses stays visible.
func BenchmarkBufferPoolFetchMiss(b *testing.B) {
	for _, shards := range []int{1, 64} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			// Pool much smaller than the page set: every wrap evicts.
			bp, ids := benchPool(b, shards, 256, 4096)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f, err := bp.Fetch(ids[(i*61)%len(ids)])
				if err != nil {
					b.Fatal(err)
				}
				bp.Unpin(f, false)
			}
		})
	}
}
