package pages

import (
	"fmt"
	"testing"
)

// makePages materializes n marker pages on disk through the pool and
// returns their ids, leaving the cache in whatever state the churn put
// it in (callers DropCleanBuffers for a cold start).
func makePages(t testing.TB, bp *BufferPool, n int) []PageID {
	t.Helper()
	ids := make([]PageID, n)
	for i := range ids {
		f, err := bp.NewPage(TypeData)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = f.Page.ID
		bp.Unpin(f, true)
	}
	return ids
}

func fetchUnpin(t testing.TB, bp *BufferPool, id PageID) {
	t.Helper()
	f, err := bp.Fetch(id)
	if err != nil {
		t.Fatal(err)
	}
	bp.Unpin(f, false)
}

// TestScanResistantEviction drives the SLRU's headline property: a hot,
// re-referenced working set survives a one-touch scan that is several
// times larger than the pool, while the same scan under plain LRU
// flushes it completely.
func TestScanResistantEviction(t *testing.T) {
	for _, slru := range []bool{true, false} {
		t.Run(fmt.Sprintf("slru=%v", slru), func(t *testing.T) {
			bp := NewBufferPoolShards(NewMemDisk(), 16, 1)
			hot := makePages(t, bp, 4)
			scan := makePages(t, bp, 64)
			if err := bp.DropCleanBuffers(); err != nil {
				t.Fatal(err)
			}
			bp.SetScanResistant(slru)
			bp.ResetStats()
			// Touch the hot set twice: the second touch is the
			// re-reference that promotes into the protected segment.
			for i := 0; i < 2; i++ {
				for _, id := range hot {
					fetchUnpin(t, bp, id)
				}
			}
			// One-touch scan of 4x the pool capacity.
			for _, id := range scan {
				fetchUnpin(t, bp, id)
			}
			// Re-fetch the hot set and count the misses it takes.
			before := bp.Stats().PhysicalReads
			for _, id := range hot {
				fetchUnpin(t, bp, id)
			}
			misses := bp.Stats().PhysicalReads - before
			st := bp.Stats()
			if slru {
				if misses != 0 {
					t.Errorf("SLRU: hot set took %d misses after scan, want 0", misses)
				}
				if st.Promotions < uint64(len(hot)) {
					t.Errorf("Promotions = %d, want >= %d", st.Promotions, len(hot))
				}
				if st.ScanEvictions == 0 {
					t.Error("ScanEvictions = 0, want > 0 (scan should churn probation)")
				}
			} else {
				if misses != uint64(len(hot)) {
					t.Errorf("plain LRU: hot set took %d misses after scan, want %d (collapse)", misses, len(hot))
				}
			}
			if st.Admissions == 0 {
				t.Error("Admissions = 0, want > 0")
			}
		})
	}
}

// TestScanResistantToggleDegradesToPlainLRU verifies SetScanResistant
// semantics: with the toggle off, nothing promotes and eviction order
// is exactly the classic single-list LRU.
func TestScanResistantToggleDegradesToPlainLRU(t *testing.T) {
	bp := NewBufferPoolShards(NewMemDisk(), 4, 1)
	bp.SetScanResistant(false)
	ids := makePages(t, bp, 8)
	if err := bp.DropCleanBuffers(); err != nil {
		t.Fatal(err)
	}
	bp.ResetStats()
	// Touch ids[0] many times; under SLRU it would be protected, but
	// with the toggle off it must still be evicted by a 4-page sweep.
	for i := 0; i < 3; i++ {
		fetchUnpin(t, bp, ids[0])
	}
	for _, id := range ids[4:] {
		fetchUnpin(t, bp, id)
	}
	before := bp.Stats().PhysicalReads
	fetchUnpin(t, bp, ids[0])
	if miss := bp.Stats().PhysicalReads - before; miss != 1 {
		t.Errorf("re-fetch after sweep took %d physical reads, want 1 (plain LRU evicts)", miss)
	}
	if p := bp.Stats().Promotions; p != 0 {
		t.Errorf("Promotions = %d with scan resistance off, want 0", p)
	}
}

// TestProtectedSegmentCapDemotes checks the protected segment cannot
// monopolize a stripe: promoting more frames than protCap (3/4 of the
// stripe) demotes the coldest back to probation instead of growing the
// protected list without bound.
func TestProtectedSegmentCapDemotes(t *testing.T) {
	bp := NewBufferPoolShards(NewMemDisk(), 8, 1) // protCap = 6
	ids := makePages(t, bp, 8)
	if err := bp.DropCleanBuffers(); err != nil {
		t.Fatal(err)
	}
	// Promote all 8: each gets two touches.
	for i := 0; i < 2; i++ {
		for _, id := range ids {
			fetchUnpin(t, bp, id)
		}
	}
	s := bp.shards[0]
	s.mu.Lock()
	prob, prot := s.prob.Len(), s.prot.Len()
	s.mu.Unlock()
	if prot > s.protCap {
		t.Errorf("protected segment holds %d frames, cap %d", prot, s.protCap)
	}
	if prob+prot != 8 {
		t.Errorf("prob+prot = %d+%d, want 8 unpinned frames total", prob, prot)
	}
}

// BenchmarkScanResistantEviction interleaves a giant one-touch scan
// with point accesses to a small hot set (the B+tree-interior shape)
// and reports the hot set's hit ratio. SLRU keeps it ~1.0; the
// plain-LRU baseline collapses toward 0 because every scan page
// displaces a hot page.
func BenchmarkScanResistantEviction(b *testing.B) {
	for _, slru := range []bool{true, false} {
		name := "plain-lru"
		if slru {
			name = "slru"
		}
		b.Run(name, func(b *testing.B) {
			bp := NewBufferPoolShards(NewMemDisk(), 64, 1)
			hot := makePages(b, bp, 16)
			scan := makePages(b, bp, 512)
			if err := bp.DropCleanBuffers(); err != nil {
				b.Fatal(err)
			}
			bp.SetScanResistant(slru)
			// Warm the hot set with the promoting double touch.
			for i := 0; i < 2; i++ {
				for _, id := range hot {
					fetchUnpin(b, bp, id)
				}
			}
			// Each iteration is one scan burst (2x the pool capacity —
			// larger than any LRU can absorb) followed by a round of
			// point accesses to the hot set, the pattern of an analytic
			// blob scan running beside B+tree lookups.
			var hotFetches, hotMisses uint64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := 0; j < 128; j++ {
					fetchUnpin(b, bp, scan[(i*128+j)%len(scan)])
				}
				for _, id := range hot {
					before := bp.Stats().PhysicalReads
					fetchUnpin(b, bp, id)
					hotFetches++
					hotMisses += bp.Stats().PhysicalReads - before
				}
			}
			b.StopTimer()
			b.ReportMetric(1-float64(hotMisses)/float64(hotFetches), "hot-hit-ratio")
		})
	}
}
