// Package pages implements the lowest storage layer of the sqlarray
// engine: fixed 8 kB pages with a slotted-record layout, pluggable disk
// managers (in-memory and file-backed), and an LRU buffer pool with I/O
// accounting.
//
// The geometry deliberately mirrors Microsoft SQL Server's storage engine
// as described in §3.3 of the paper: 8 kB data pages with a 96-byte page
// header, so that "blobs smaller than 8 kB are stored on-page" has the
// same meaning here as there.
package pages

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

const (
	// PageSize is the fixed page size (8 kB, as in SQL Server).
	PageSize = 8192
	// HeaderSize is the reserved page header area (96 bytes, as in SQL
	// Server). Slotted records live between HeaderSize and the slot
	// directory growing down from the end of the page.
	HeaderSize = 96
	// slotSize is one slot-directory entry: uint16 offset + uint16 length.
	slotSize = 4
	// MaxRecordSize is the largest record a single page can hold.
	MaxRecordSize = PageSize - HeaderSize - slotSize
)

// PageID identifies a page within a database file. Page 0 is reserved for
// file metadata, so 0 doubles as the invalid/absent page id.
type PageID uint32

// InvalidPageID marks "no page" in link fields.
const InvalidPageID PageID = 0

// PageType tags what a page is used for.
type PageType uint8

const (
	TypeFree PageType = iota
	TypeMeta
	TypeData     // slotted heap/B-tree leaf records
	TypeIndex    // B-tree internal nodes
	TypeBlobData // out-of-page blob chunk
	TypeBlobTree // out-of-page blob chunk directory
)

// Header field offsets within the 96-byte page header.
const (
	offMagic    = 0  // uint16
	offType     = 2  // uint8
	offFlags    = 3  // uint8
	offSlots    = 4  // uint16 number of slots
	offFreeLo   = 6  // uint16 start of free space
	offFreeHi   = 8  // uint16 end of free space (start of used record area)
	offNext     = 12 // uint32 next page link
	offPrev     = 16 // uint32 prev page link
	offOwner    = 20 // uint32 owner object id (table/index)
	offUsed     = 24 // uint32 used payload bytes (blob pages)
	offLSN      = 32 // uint64 log sequence number (reserved)
	offChecksum = 40 // uint32 CRC32 of page body
)

const pageMagic = 0x5153 // "SQ"

// Errors returned by the page layer.
var (
	ErrPageFull    = errors.New("pages: page full")
	ErrBadSlot     = errors.New("pages: invalid slot")
	ErrChecksum    = errors.New("pages: checksum mismatch")
	ErrBadPage     = errors.New("pages: malformed page")
	ErrOutOfBounds = errors.New("pages: page id out of bounds")
)

// Page is an 8 kB buffer with typed accessors for the header fields and a
// slotted record area. Page contents are what goes to disk verbatim.
type Page struct {
	ID  PageID
	Buf [PageSize]byte
}

// Init formats the page in place with the given type and empty record area.
func (p *Page) Init(t PageType) {
	for i := range p.Buf {
		p.Buf[i] = 0
	}
	binary.LittleEndian.PutUint16(p.Buf[offMagic:], pageMagic)
	p.Buf[offType] = byte(t)
	p.setFreeLo(HeaderSize)
	p.setFreeHi(PageSize)
}

// Type returns the page type tag.
func (p *Page) Type() PageType { return PageType(p.Buf[offType]) }

// FlagCompressedBlob marks blob chunk and directory pages written in
// the compressed block format (see internal/blob): directory entries
// carry logical lengths and chunk bodies hold packed compressed blocks
// instead of raw payload bytes.
const FlagCompressedBlob uint8 = 0x01

// Flags returns the per-page flag bits (zero on legacy pages — the
// byte was reserved and always cleared by Init).
func (p *Page) Flags() uint8 { return p.Buf[offFlags] }

// SetFlags stores the per-page flag bits.
func (p *Page) SetFlags(f uint8) { p.Buf[offFlags] = f }

// NumSlots returns the number of slot-directory entries (including dead
// slots left by deletions).
func (p *Page) NumSlots() int {
	return int(binary.LittleEndian.Uint16(p.Buf[offSlots:]))
}

func (p *Page) setNumSlots(n int) {
	binary.LittleEndian.PutUint16(p.Buf[offSlots:], uint16(n))
}

func (p *Page) freeLo() int { return int(binary.LittleEndian.Uint16(p.Buf[offFreeLo:])) }
func (p *Page) freeHi() int { return int(binary.LittleEndian.Uint16(p.Buf[offFreeHi:])) }
func (p *Page) setFreeLo(v int) {
	binary.LittleEndian.PutUint16(p.Buf[offFreeLo:], uint16(v))
}
func (p *Page) setFreeHi(v int) {
	if v == PageSize {
		// PageSize does not fit uint16; store 0 and decode specially.
		binary.LittleEndian.PutUint16(p.Buf[offFreeHi:], 0)
		return
	}
	binary.LittleEndian.PutUint16(p.Buf[offFreeHi:], uint16(v))
}

func (p *Page) freeHiDecoded() int {
	v := p.freeHi()
	if v == 0 {
		return PageSize
	}
	return v
}

// Next returns the next-page link (chain pointer).
func (p *Page) Next() PageID { return PageID(binary.LittleEndian.Uint32(p.Buf[offNext:])) }

// SetNext stores the next-page link.
func (p *Page) SetNext(id PageID) { binary.LittleEndian.PutUint32(p.Buf[offNext:], uint32(id)) }

// Prev returns the previous-page link.
func (p *Page) Prev() PageID { return PageID(binary.LittleEndian.Uint32(p.Buf[offPrev:])) }

// SetPrev stores the previous-page link.
func (p *Page) SetPrev(id PageID) { binary.LittleEndian.PutUint32(p.Buf[offPrev:], uint32(id)) }

// LSN returns the page's log sequence number: the WAL position of the
// record holding this page's image when it was last logged. Zero means
// the page predates the WAL (or was never logged).
func (p *Page) LSN() uint64 { return binary.LittleEndian.Uint64(p.Buf[offLSN:]) }

// SetLSN stamps the page's log sequence number; the engine calls it
// just before appending the page image to the WAL, so the logged image
// carries its own LSN.
func (p *Page) SetLSN(v uint64) { binary.LittleEndian.PutUint64(p.Buf[offLSN:], v) }

// Owner returns the owning object id (table or index).
func (p *Page) Owner() uint32 { return binary.LittleEndian.Uint32(p.Buf[offOwner:]) }

// SetOwner stores the owning object id.
func (p *Page) SetOwner(v uint32) { binary.LittleEndian.PutUint32(p.Buf[offOwner:], v) }

// Used returns the used-bytes counter (blob pages track their chunk
// length here).
func (p *Page) Used() int { return int(binary.LittleEndian.Uint32(p.Buf[offUsed:])) }

// SetUsed stores the used-bytes counter.
func (p *Page) SetUsed(v int) { binary.LittleEndian.PutUint32(p.Buf[offUsed:], uint32(v)) }

// Body returns the non-header portion of the page (blob pages use it as a
// raw chunk area).
func (p *Page) Body() []byte { return p.Buf[HeaderSize:] }

// FreeSpace returns the bytes available for one more record (accounting
// for its slot entry).
func (p *Page) FreeSpace() int {
	free := p.freeHiDecoded() - p.freeLo() - slotSize
	if free < 0 {
		return 0
	}
	return free
}

// slotAt returns the byte offset of slot i's directory entry.
func slotAt(i int) int { return PageSize - (i+1)*slotSize }

// slot returns the (offset, length) stored in slot i.
func (p *Page) slot(i int) (off, ln int) {
	base := slotAt(i)
	return int(binary.LittleEndian.Uint16(p.Buf[base:])),
		int(binary.LittleEndian.Uint16(p.Buf[base+2:]))
}

func (p *Page) setSlot(i, off, ln int) {
	base := slotAt(i)
	binary.LittleEndian.PutUint16(p.Buf[base:], uint16(off))
	binary.LittleEndian.PutUint16(p.Buf[base+2:], uint16(ln))
}

// Insert appends a record and returns its slot number.
func (p *Page) Insert(rec []byte) (int, error) {
	if len(rec) > MaxRecordSize {
		return 0, fmt.Errorf("%w: record %d bytes > max %d", ErrPageFull, len(rec), MaxRecordSize)
	}
	if p.FreeSpace() < len(rec) {
		return 0, ErrPageFull
	}
	n := p.NumSlots()
	off := p.freeLo()
	copy(p.Buf[off:], rec)
	p.setSlot(n, off, len(rec))
	p.setFreeLo(off + len(rec))
	// Slot directory grows downward; freeHi tracks its lower edge.
	p.setFreeHi(slotAt(n))
	p.setNumSlots(n + 1)
	return n, nil
}

// InsertAt inserts a record so that it occupies slot position pos,
// shifting later slot-directory entries up by one. B-tree nodes use this
// to keep records in key order.
func (p *Page) InsertAt(pos int, rec []byte) error {
	n := p.NumSlots()
	if pos < 0 || pos > n {
		return fmt.Errorf("%w: insert position %d of %d", ErrBadSlot, pos, n)
	}
	if p.FreeSpace() < len(rec) {
		return ErrPageFull
	}
	off := p.freeLo()
	copy(p.Buf[off:], rec)
	p.setFreeLo(off + len(rec))
	// Shift slots [pos, n) up to [pos+1, n+1).
	for i := n; i > pos; i-- {
		o, l := p.slot(i - 1)
		p.setSlot(i, o, l)
	}
	p.setSlot(pos, off, len(rec))
	p.setNumSlots(n + 1)
	p.setFreeHi(slotAt(n))
	return nil
}

// RemoveAt deletes the slot-directory entry at pos entirely, shifting
// later entries down (record space becomes garbage until Compact).
func (p *Page) RemoveAt(pos int) error {
	n := p.NumSlots()
	if pos < 0 || pos >= n {
		return fmt.Errorf("%w: remove position %d of %d", ErrBadSlot, pos, n)
	}
	for i := pos; i < n-1; i++ {
		o, l := p.slot(i + 1)
		p.setSlot(i, o, l)
	}
	p.setNumSlots(n - 1)
	if n-1 > 0 {
		p.setFreeHi(slotAt(n - 2))
	} else {
		p.setFreeHi(PageSize)
	}
	return nil
}

// Record returns the bytes of slot i, aliasing the page buffer. A zero
// length marks a dead (deleted) slot and returns ErrBadSlot.
func (p *Page) Record(i int) ([]byte, error) {
	if i < 0 || i >= p.NumSlots() {
		return nil, fmt.Errorf("%w: slot %d of %d", ErrBadSlot, i, p.NumSlots())
	}
	off, ln := p.slot(i)
	if ln == 0 {
		return nil, fmt.Errorf("%w: slot %d is dead", ErrBadSlot, i)
	}
	if off < HeaderSize || off+ln > PageSize {
		return nil, fmt.Errorf("%w: slot %d points outside page", ErrBadPage, i)
	}
	return p.Buf[off : off+ln], nil
}

// Delete marks slot i dead. Space is reclaimed only by Compact.
func (p *Page) Delete(i int) error {
	if i < 0 || i >= p.NumSlots() {
		return fmt.Errorf("%w: slot %d of %d", ErrBadSlot, i, p.NumSlots())
	}
	p.setSlot(i, 0, 0)
	return nil
}

// Update replaces slot i's record. If the new record is no longer than
// the old one it is updated in place; otherwise it must fit the free
// space (the old space becomes garbage until Compact).
func (p *Page) Update(i int, rec []byte) error {
	if i < 0 || i >= p.NumSlots() {
		return fmt.Errorf("%w: slot %d of %d", ErrBadSlot, i, p.NumSlots())
	}
	off, ln := p.slot(i)
	if ln == 0 {
		return fmt.Errorf("%w: slot %d is dead", ErrBadSlot, i)
	}
	if len(rec) <= ln {
		copy(p.Buf[off:], rec)
		p.setSlot(i, off, len(rec))
		return nil
	}
	if p.freeHiDecoded()-p.freeLo() < len(rec) {
		return ErrPageFull
	}
	n := p.freeLo()
	copy(p.Buf[n:], rec)
	p.setSlot(i, n, len(rec))
	p.setFreeLo(n + len(rec))
	return nil
}

// Compact rewrites the record area dropping dead-slot garbage, preserving
// slot numbering (dead slots stay dead).
func (p *Page) Compact() {
	var tmp [PageSize]byte
	w := HeaderSize
	n := p.NumSlots()
	type ent struct{ off, ln int }
	ents := make([]ent, n)
	for i := 0; i < n; i++ {
		off, ln := p.slot(i)
		if ln == 0 {
			continue
		}
		copy(tmp[w:], p.Buf[off:off+ln])
		ents[i] = ent{w, ln}
		w += ln
	}
	copy(p.Buf[HeaderSize:w], tmp[HeaderSize:w])
	for i := 0; i < n; i++ {
		if ents[i].ln != 0 {
			p.setSlot(i, ents[i].off, ents[i].ln)
		}
	}
	p.setFreeLo(w)
}

// LiveRecords returns the number of non-dead slots.
func (p *Page) LiveRecords() int {
	live := 0
	for i := 0; i < p.NumSlots(); i++ {
		if _, ln := p.slot(i); ln != 0 {
			live++
		}
	}
	return live
}

// UpdateChecksum recomputes and stores the page checksum. Called by the
// buffer pool before a page is written out.
func (p *Page) UpdateChecksum() {
	binary.LittleEndian.PutUint32(p.Buf[offChecksum:], 0)
	sum := crc32.ChecksumIEEE(p.Buf[:])
	binary.LittleEndian.PutUint32(p.Buf[offChecksum:], sum)
}

// VerifyChecksum validates the stored checksum; zero (never written)
// checksums pass, matching freshly allocated pages.
func (p *Page) VerifyChecksum() error {
	stored := binary.LittleEndian.Uint32(p.Buf[offChecksum:])
	if stored == 0 {
		return nil
	}
	binary.LittleEndian.PutUint32(p.Buf[offChecksum:], 0)
	sum := crc32.ChecksumIEEE(p.Buf[:])
	binary.LittleEndian.PutUint32(p.Buf[offChecksum:], stored)
	if sum != stored {
		return fmt.Errorf("%w: page %d: stored %08x computed %08x", ErrChecksum, p.ID, stored, sum)
	}
	return nil
}

// Validate performs structural sanity checks on a page read from disk.
func (p *Page) Validate() error {
	if binary.LittleEndian.Uint16(p.Buf[offMagic:]) != pageMagic {
		return fmt.Errorf("%w: page %d: bad magic", ErrBadPage, p.ID)
	}
	if p.freeLo() < HeaderSize || p.freeLo() > PageSize {
		return fmt.Errorf("%w: page %d: freeLo %d", ErrBadPage, p.ID, p.freeLo())
	}
	return nil
}
