// Package spectra reproduces the paper's §2.2 use case: an astronomical
// spectrum archive built on the array type. A spectrum is a set of
// parallel vectors (wavelength bins, flux, flux error, integer flags);
// the processing steps are the ones the paper enumerates — integration
// and normalization, flux-conserving resampling to a common grid,
// composite averaging, PCA over a spectrum set, masked least-squares
// expansion on the PCA basis (plain dot products are wrong in the
// presence of flagged pixels), and kd-tree similar-spectrum search over
// the expansion coefficients.
package spectra

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Spectrum is one observation. Wave must be strictly ascending; the
// scale is typically logarithmic and differs between observations ("the
// wavelength scale can change from observation to observation ... it is
// necessary to store the wavelength vector of each spectrum
// separately").
type Spectrum struct {
	ID    int64
	Z     float64 // redshift, the grouping attribute for composites
	Wave  []float64
	Flux  []float64
	Err   []float64
	Flags []int64 // nonzero = bad pixel, masked from fits
}

// ErrGrid reports an invalid wavelength grid.
var ErrGrid = errors.New("spectra: bad wavelength grid")

// Validate checks the parallel vectors.
func (s *Spectrum) Validate() error {
	n := len(s.Wave)
	if n < 2 {
		return fmt.Errorf("%w: %d bins", ErrGrid, n)
	}
	if len(s.Flux) != n || len(s.Err) != n || len(s.Flags) != n {
		return fmt.Errorf("%w: vector lengths %d/%d/%d/%d",
			ErrGrid, n, len(s.Flux), len(s.Err), len(s.Flags))
	}
	for i := 1; i < n; i++ {
		if s.Wave[i] <= s.Wave[i-1] {
			return fmt.Errorf("%w: not ascending at bin %d", ErrGrid, i)
		}
	}
	return nil
}

// Clone deep-copies the spectrum.
func (s *Spectrum) Clone() *Spectrum {
	return &Spectrum{
		ID: s.ID, Z: s.Z,
		Wave:  append([]float64(nil), s.Wave...),
		Flux:  append([]float64(nil), s.Flux...),
		Err:   append([]float64(nil), s.Err...),
		Flags: append([]int64(nil), s.Flags...),
	}
}

// LogGrid builds an n-bin logarithmic wavelength grid over [lo, hi].
func LogGrid(lo, hi float64, n int) ([]float64, error) {
	if n < 2 || lo <= 0 || hi <= lo {
		return nil, fmt.Errorf("%w: [%g,%g] x %d", ErrGrid, lo, hi, n)
	}
	out := make([]float64, n)
	step := math.Log(hi/lo) / float64(n-1)
	for i := range out {
		out[i] = lo * math.Exp(float64(i)*step)
	}
	return out, nil
}

// SynthesisParams controls Synthesize.
type SynthesisParams struct {
	Bins     int
	LoWave   float64 // rest-frame grid start
	HiWave   float64
	Z        float64 // redshift applied to the grid
	SNR      float64 // signal-to-noise of the continuum
	BadFrac  float64 // fraction of pixels flagged bad
	LineSeed int64
}

// Synthesize generates a galaxy-like spectrum: a smooth continuum, a
// fixed set of emission/absorption lines redshifted by z, Gaussian
// noise at the requested SNR, and randomly flagged bad pixels. All
// spectra share rest-frame lines so PCA has real structure to find.
func Synthesize(rng *rand.Rand, p SynthesisParams) (*Spectrum, error) {
	if p.Bins < 8 {
		return nil, fmt.Errorf("%w: %d bins", ErrGrid, p.Bins)
	}
	if p.SNR <= 0 {
		p.SNR = 20
	}
	grid, err := LogGrid(p.LoWave*(1+p.Z), p.HiWave*(1+p.Z), p.Bins)
	if err != nil {
		return nil, err
	}
	// Rest-frame line list (wavelength, amplitude, width) — loosely the
	// strong optical features of galaxy spectra.
	lines := []struct{ w, a, sig float64 }{
		{4102, -0.3, 8}, {4341, -0.35, 8}, {4861, -0.5, 9}, // Balmer absorption
		{5007, 0.9, 6},   // [OIII] emission
		{5175, -0.4, 12}, // Mg b
		{5893, -0.3, 10}, // Na D
		{6563, 1.4, 7},   // H-alpha emission
	}
	s := &Spectrum{
		Z:     p.Z,
		Wave:  grid,
		Flux:  make([]float64, p.Bins),
		Err:   make([]float64, p.Bins),
		Flags: make([]int64, p.Bins),
	}
	// Per-line strengths drawn from the LineSeed make each seed a
	// distinct "object type" with its own line-ratio signature.
	lineRng := rand.New(rand.NewSource(p.LineSeed))
	strengths := make([]float64, len(lines))
	for i := range strengths {
		strengths[i] = 0.3 + 1.4*lineRng.Float64()
	}
	for i, w := range grid {
		rest := w / (1 + p.Z)
		// Continuum: a gentle power law.
		cont := math.Pow(rest/5000.0, -0.5)
		f := cont
		for li, ln := range lines {
			d := (rest - ln.w) / ln.sig
			f += strengths[li] * ln.a * cont * math.Exp(-0.5*d*d)
		}
		sigma := cont / p.SNR
		s.Flux[i] = f + rng.NormFloat64()*sigma
		s.Err[i] = sigma
		if rng.Float64() < p.BadFrac {
			s.Flags[i] = 1
			s.Flux[i] += rng.NormFloat64() * 10 * cont // cosmic-ray hit
		}
	}
	return s, nil
}

// Integrate returns the integrated flux over [lo, hi] using
// trapezoidal integration on the (possibly non-linear) grid.
func (s *Spectrum) Integrate(lo, hi float64) float64 {
	total := 0.0
	for i := 1; i < len(s.Wave); i++ {
		w0, w1 := s.Wave[i-1], s.Wave[i]
		if w1 < lo || w0 > hi {
			continue
		}
		a, b := math.Max(w0, lo), math.Min(w1, hi)
		if b <= a {
			continue
		}
		// Linear flux between samples.
		t0 := (a - w0) / (w1 - w0)
		t1 := (b - w0) / (w1 - w0)
		f0 := s.Flux[i-1] + t0*(s.Flux[i]-s.Flux[i-1])
		f1 := s.Flux[i-1] + t1*(s.Flux[i]-s.Flux[i-1])
		total += 0.5 * (f0 + f1) * (b - a)
	}
	return total
}

// Normalize scales the flux (and error) so the integrated flux over
// [lo, hi] becomes 1 (§2.2: "Normalization of the flux vector which
// requires integration of the flux in given wavelength ranges and
// multiplication by scalar").
func (s *Spectrum) Normalize(lo, hi float64) error {
	total := s.Integrate(lo, hi)
	if total == 0 || math.IsNaN(total) {
		return fmt.Errorf("spectra: zero integrated flux in [%g,%g]", lo, hi)
	}
	inv := 1 / total
	for i := range s.Flux {
		s.Flux[i] *= inv
		s.Err[i] *= math.Abs(inv)
	}
	return nil
}

// Resample maps the spectrum onto a new wavelength grid conserving
// integrated flux ("the resampling should be done such a way that the
// integrated flux in any wavelength range remains the same"). Bin edges
// are the midpoints between grid centers; each target bin receives the
// integral of the (piecewise-constant) source flux density over its
// extent, divided by its width. Flags propagate: a target bin
// overlapping any flagged source bin is flagged; errors combine in
// quadrature weighted by overlap.
func Resample(s *Spectrum, newWave []float64) (*Spectrum, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if len(newWave) < 2 {
		return nil, fmt.Errorf("%w: target grid of %d bins", ErrGrid, len(newWave))
	}
	for i := 1; i < len(newWave); i++ {
		if newWave[i] <= newWave[i-1] {
			return nil, fmt.Errorf("%w: target grid not ascending at %d", ErrGrid, i)
		}
	}
	srcEdges := binEdges(s.Wave)
	dstEdges := binEdges(newWave)
	out := &Spectrum{
		ID: s.ID, Z: s.Z,
		Wave:  append([]float64(nil), newWave...),
		Flux:  make([]float64, len(newWave)),
		Err:   make([]float64, len(newWave)),
		Flags: make([]int64, len(newWave)),
	}
	for j := 0; j < len(newWave); j++ {
		lo, hi := dstEdges[j], dstEdges[j+1]
		width := hi - lo
		// Find overlapping source bins by binary search on edges.
		i0 := sort.SearchFloat64s(srcEdges, lo) - 1
		if i0 < 0 {
			i0 = 0
		}
		var fluxInt, errQuad, overlapTotal float64
		flagged := false
		covered := 0.0
		for i := i0; i < len(s.Wave); i++ {
			slo, shi := srcEdges[i], srcEdges[i+1]
			if slo >= hi {
				break
			}
			ov := math.Min(shi, hi) - math.Max(slo, lo)
			if ov <= 0 {
				continue
			}
			fluxInt += s.Flux[i] * ov
			e := s.Err[i] * ov
			errQuad += e * e
			overlapTotal += ov
			covered += ov
			if s.Flags[i] != 0 {
				flagged = true
			}
		}
		if overlapTotal == 0 {
			out.Flags[j] = 2 // no coverage
			continue
		}
		// Flux density averaged over the covered extent keeps the
		// integral identical where coverage is complete.
		out.Flux[j] = fluxInt / width
		out.Err[j] = math.Sqrt(errQuad) / width
		if flagged {
			out.Flags[j] = 1
		}
		if covered < width*(1-1e-9) {
			out.Flags[j] |= 2 // partially uncovered
		}
	}
	return out, nil
}

// binEdges returns n+1 edges: midpoints between centers, with the end
// bins mirrored.
func binEdges(centers []float64) []float64 {
	n := len(centers)
	edges := make([]float64, n+1)
	for i := 1; i < n; i++ {
		edges[i] = 0.5 * (centers[i-1] + centers[i])
	}
	edges[0] = centers[0] - (edges[1] - centers[0])
	edges[n] = centers[n-1] + (centers[n-1] - edges[n-1])
	return edges
}

// Composite averages a set of spectra on a common grid, ignoring
// flagged bins, propagating errors as the error of the mean — the
// aggregate behind "spectra can be averaged to get composites with high
// signal to noise ratio", groupable by redshift.
func Composite(specs []*Spectrum, grid []float64) (*Spectrum, error) {
	if len(specs) == 0 {
		return nil, errors.New("spectra: empty composite")
	}
	n := len(grid)
	sum := make([]float64, n)
	wsum := make([]float64, n)
	count := make([]int64, n)
	for _, s := range specs {
		r, err := Resample(s, grid)
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			if r.Flags[i] != 0 || r.Err[i] <= 0 {
				continue
			}
			w := 1 / (r.Err[i] * r.Err[i]) // inverse-variance weight
			sum[i] += w * r.Flux[i]
			wsum[i] += w
			count[i]++
		}
	}
	out := &Spectrum{
		Wave:  append([]float64(nil), grid...),
		Flux:  make([]float64, n),
		Err:   make([]float64, n),
		Flags: make([]int64, n),
	}
	for i := 0; i < n; i++ {
		if wsum[i] == 0 {
			out.Flags[i] = 1
			continue
		}
		out.Flux[i] = sum[i] / wsum[i]
		out.Err[i] = math.Sqrt(1 / wsum[i])
	}
	return out, nil
}

// CompositeByRedshift groups spectra into redshift bins of width dz and
// composites each group — the paper's "group spectra by certain
// parameters (for example redshift of the observed galaxies)" with a
// simple SQL query.
func CompositeByRedshift(specs []*Spectrum, grid []float64, dz float64) (map[int]*Spectrum, error) {
	if dz <= 0 {
		return nil, fmt.Errorf("spectra: bad redshift bin %g", dz)
	}
	groups := map[int][]*Spectrum{}
	for _, s := range specs {
		bin := int(math.Floor(s.Z / dz))
		groups[bin] = append(groups[bin], s)
	}
	out := make(map[int]*Spectrum, len(groups))
	for bin, group := range groups {
		c, err := Composite(group, grid)
		if err != nil {
			return nil, err
		}
		out[bin] = c
	}
	return out, nil
}
