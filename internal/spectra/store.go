package spectra

import (
	"fmt"

	"sqlarray/internal/core"
	"sqlarray/internal/engine"
)

// This file is the storage glue: spectra persist as array blobs in an
// engine table with the schema the paper sketches — one row per
// spectrum, the wavelength/flux/error vectors as float64 arrays and the
// flag vector as a 16-bit integer array ("usually a vector of 8 or 16
// bit integers").

// Store wraps the spectrum table.
type Store struct {
	db    *engine.DB
	table *engine.Table
}

// CreateStore builds the spectrum table.
func CreateStore(db *engine.DB, name string) (*Store, error) {
	schema, err := engine.NewSchema(
		engine.Column{Name: "id", Type: engine.ColInt64},
		engine.Column{Name: "z", Type: engine.ColFloat64},
		engine.Column{Name: "wave", Type: engine.ColVarBinaryMax},
		engine.Column{Name: "flux", Type: engine.ColVarBinaryMax},
		engine.Column{Name: "err", Type: engine.ColVarBinaryMax},
		engine.Column{Name: "flags", Type: engine.ColVarBinaryMax},
	)
	if err != nil {
		return nil, err
	}
	table, err := db.CreateTable(name, schema)
	if err != nil {
		return nil, err
	}
	return &Store{db: db, table: table}, nil
}

// Table exposes the underlying engine table.
func (st *Store) Table() *engine.Table { return st.table }

// Insert persists a spectrum as four array blobs.
func (st *Store) Insert(s *Spectrum) error {
	if err := s.Validate(); err != nil {
		return err
	}
	n := len(s.Wave)
	wave, err := core.FromFloat64s(core.Max, core.Float64, s.Wave, n)
	if err != nil {
		return err
	}
	flux, err := core.FromFloat64s(core.Max, core.Float64, s.Flux, n)
	if err != nil {
		return err
	}
	errs, err := core.FromFloat64s(core.Max, core.Float64, s.Err, n)
	if err != nil {
		return err
	}
	flags, err := core.FromInt64s(core.Max, core.Int16, s.Flags, n)
	if err != nil {
		return err
	}
	return st.table.Insert([]engine.Value{
		engine.IntValue(s.ID),
		engine.FloatValue(s.Z),
		engine.BinaryMaxValue(wave.Bytes()),
		engine.BinaryMaxValue(flux.Bytes()),
		engine.BinaryMaxValue(errs.Bytes()),
		engine.BinaryMaxValue(flags.Bytes()),
	})
}

// Get loads a spectrum by id.
func (st *Store) Get(id int64) (*Spectrum, error) {
	row, err := st.table.Get(id)
	if err != nil {
		return nil, err
	}
	s := &Spectrum{ID: id, Z: row[1].F}
	for i, dst := range []*[]float64{&s.Wave, &s.Flux, &s.Err} {
		raw, err := st.table.FetchBlob(row[2+i].B)
		if err != nil {
			return nil, err
		}
		arr, err := core.Wrap(raw)
		if err != nil {
			return nil, err
		}
		if arr.ElemType() != core.Float64 {
			return nil, fmt.Errorf("%w: column %d holds %s", core.ErrTypeMismatch, 2+i, arr.ElemType())
		}
		*dst = arr.Float64s()
	}
	raw, err := st.table.FetchBlob(row[5].B)
	if err != nil {
		return nil, err
	}
	arr, err := core.Wrap(raw)
	if err != nil {
		return nil, err
	}
	if !arr.ElemType().IsInteger() {
		return nil, fmt.Errorf("%w: flags column holds %s", core.ErrTypeMismatch, arr.ElemType())
	}
	s.Flags = arr.Int64s()
	return s, nil
}

// GetSlice loads only samples [lo, hi) of a spectrum — the "cutting out
// small regions around the interesting spectral lines" access pattern
// (§2.2) — reading just the blob chunks those samples live on instead of
// materializing the four full arrays. Flags are included; Z and ID come
// from the row as usual.
func (st *Store) GetSlice(id int64, lo, hi int) (*Spectrum, error) {
	if lo < 0 || hi <= lo {
		return nil, fmt.Errorf("spectra: bad slice [%d,%d)", lo, hi)
	}
	row, err := st.table.Get(id)
	if err != nil {
		return nil, err
	}
	s := &Spectrum{ID: id, Z: row[1].F}
	offset, size := []int{lo}, []int{hi - lo}
	for i, dst := range []*[]float64{&s.Wave, &s.Flux, &s.Err} {
		arr, err := st.table.BlobSubarray(row[2+i].B, offset, size, false)
		if err != nil {
			return nil, fmt.Errorf("spectra: slicing column %d: %w", 2+i, err)
		}
		if arr.ElemType() != core.Float64 {
			return nil, fmt.Errorf("%w: column %d holds %s", core.ErrTypeMismatch, 2+i, arr.ElemType())
		}
		*dst = arr.Float64s()
	}
	flags, err := st.table.BlobSubarray(row[5].B, offset, size, false)
	if err != nil {
		return nil, fmt.Errorf("spectra: slicing flags: %w", err)
	}
	if !flags.ElemType().IsInteger() {
		return nil, fmt.Errorf("%w: flags column holds %s", core.ErrTypeMismatch, flags.ElemType())
	}
	s.Flags = flags.Int64s()
	return s, nil
}

// All loads every stored spectrum in id order.
func (st *Store) All() ([]*Spectrum, error) {
	var ids []int64
	err := st.table.Scan(func(key int64, _ *engine.RowView) (bool, error) {
		ids = append(ids, key)
		return true, nil
	})
	if err != nil {
		return nil, err
	}
	out := make([]*Spectrum, 0, len(ids))
	for _, id := range ids {
		s, err := st.Get(id)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}
