package spectra

import (
	"errors"
	"fmt"

	"sqlarray/internal/kdtree"
	"sqlarray/internal/lapack"
)

// Basis is a PCA decomposition of a spectrum set on a common grid:
// the mean spectrum and the leading eigenvectors of the covariance
// matrix, eigenvalues descending (§2.2: "Running PCA over a set of
// spectra requires resampling and normalization of the individual data
// vectors, computing the correlation matrix and executing a singular
// value decomposition algorithm").
type Basis struct {
	Grid       []float64
	Mean       []float64
	Components lapack.Mat // nBins × nComp, columns are eigenspectra
	Values     []float64  // leading eigenvalues
	normLo     float64
	normHi     float64
}

// PCA builds an nComp-component basis from the given spectra: each is
// resampled to grid, normalized over [normLo, normHi], mean-subtracted;
// the covariance matrix is diagonalized with the symmetric eigensolver
// (the SVD route gives identical components; the covariance route keeps
// memory at nBins², independent of the set size).
//
// Flagged bins are patched with the running mean before entering the
// covariance — standard practice so a few bad pixels do not puncture
// the basis.
func PCA(specs []*Spectrum, grid []float64, nComp int, normLo, normHi float64) (*Basis, error) {
	if len(specs) < 2 {
		return nil, errors.New("spectra: PCA needs at least 2 spectra")
	}
	nb := len(grid)
	if nComp < 1 || nComp > nb {
		return nil, fmt.Errorf("spectra: %d components for %d bins", nComp, nb)
	}
	rows := make([][]float64, 0, len(specs))
	masks := make([][]int64, 0, len(specs))
	for _, s := range specs {
		r, err := Resample(s, grid)
		if err != nil {
			return nil, err
		}
		if err := r.Normalize(normLo, normHi); err != nil {
			return nil, err
		}
		rows = append(rows, r.Flux)
		masks = append(masks, r.Flags)
	}
	// Mean over good pixels per bin.
	mean := make([]float64, nb)
	cnt := make([]int, nb)
	for k, row := range rows {
		for i, v := range row {
			if masks[k][i] == 0 {
				mean[i] += v
				cnt[i]++
			}
		}
	}
	for i := range mean {
		if cnt[i] > 0 {
			mean[i] /= float64(cnt[i])
		}
	}
	// Patch flagged pixels with the mean, subtract the mean everywhere.
	for k, row := range rows {
		for i := range row {
			if masks[k][i] != 0 {
				row[i] = 0
			} else {
				row[i] -= mean[i]
			}
		}
		_ = k
	}
	// Covariance C = Σ x xᵀ / (n-1), nb × nb.
	cov := lapack.NewMat(nb, nb)
	for _, row := range rows {
		for j := 0; j < nb; j++ {
			xj := row[j]
			if xj == 0 {
				continue
			}
			col := cov.Col(j)
			for i := 0; i < nb; i++ {
				col[i] += row[i] * xj
			}
		}
	}
	inv := 1 / float64(len(rows)-1)
	for i := range cov.Data {
		cov.Data[i] *= inv
	}
	eig, err := lapack.SymEig(cov)
	if err != nil {
		return nil, err
	}
	comp := lapack.NewMat(nb, nComp)
	for j := 0; j < nComp; j++ {
		copy(comp.Col(j), eig.Vectors.Col(j))
	}
	return &Basis{
		Grid:       append([]float64(nil), grid...),
		Mean:       mean,
		Components: comp,
		Values:     append([]float64(nil), eig.Values[:nComp]...),
		normLo:     normLo,
		normHi:     normHi,
	}, nil
}

// NComp returns the number of basis components.
func (b *Basis) NComp() int { return b.Components.N }

// prepare resamples and normalizes a spectrum onto the basis grid.
func (b *Basis) prepare(s *Spectrum) (*Spectrum, error) {
	r, err := Resample(s, b.Grid)
	if err != nil {
		return nil, err
	}
	if err := r.Normalize(b.normLo, b.normHi); err != nil {
		return nil, err
	}
	return r, nil
}

// Expand computes expansion coefficients with masked least squares:
// flagged bins are excluded from the fit entirely. This is the paper's
// §2.2 observation made executable: "because of the flags that mask out
// wrong measurements bin by bin, dot product cannot be used for
// expanding spectra on a basis but least squares fitting is necessary".
func (b *Basis) Expand(s *Spectrum) ([]float64, error) {
	r, err := b.prepare(s)
	if err != nil {
		return nil, err
	}
	nb := len(b.Grid)
	resid := make([]float64, nb)
	for i := 0; i < nb; i++ {
		resid[i] = r.Flux[i] - b.Mean[i]
	}
	return lapack.MaskedLeastSquares(b.Components, resid, r.Flags)
}

// ExpandDot computes coefficients with plain dot products, ignoring the
// flags — correct only for clean spectra; kept as the ablation baseline
// showing why the masked fit is required.
func (b *Basis) ExpandDot(s *Spectrum) ([]float64, error) {
	r, err := b.prepare(s)
	if err != nil {
		return nil, err
	}
	nb := len(b.Grid)
	coef := make([]float64, b.NComp())
	for j := 0; j < b.NComp(); j++ {
		col := b.Components.Col(j)
		sum := 0.0
		for i := 0; i < nb; i++ {
			sum += (r.Flux[i] - b.Mean[i]) * col[i]
		}
		coef[j] = sum
	}
	return coef, nil
}

// Reconstruct synthesizes the flux vector mean + Σ c_j · comp_j.
func (b *Basis) Reconstruct(coef []float64) ([]float64, error) {
	if len(coef) != b.NComp() {
		return nil, fmt.Errorf("spectra: %d coefficients for %d components", len(coef), b.NComp())
	}
	out := append([]float64(nil), b.Mean...)
	for j, c := range coef {
		if c == 0 {
			continue
		}
		col := b.Components.Col(j)
		for i := range out {
			out[i] += c * col[i]
		}
	}
	return out, nil
}

// SearchIndex is a kd-tree over expansion coefficients, the §2.2
// similar-spectrum search: "One builds a kd-tree over the coefficients
// so nearest neighbor searches can be executed very quickly. A 'query'
// spectrum is expanded on the same basis on the fly and the nearest
// neighbors of its coefficient vector are looked up".
type SearchIndex struct {
	basis *Basis
	tree  *kdtree.Tree
}

// BuildSearchIndex expands every spectrum and indexes the coefficients.
func BuildSearchIndex(basis *Basis, specs []*Spectrum) (*SearchIndex, error) {
	pts := make([]kdtree.Point, 0, len(specs))
	for _, s := range specs {
		coef, err := basis.Expand(s)
		if err != nil {
			return nil, fmt.Errorf("spectra: expanding %d: %w", s.ID, err)
		}
		pts = append(pts, kdtree.Point{Coords: coef, ID: s.ID})
	}
	tree, err := kdtree.Build(pts, basis.NComp())
	if err != nil {
		return nil, err
	}
	return &SearchIndex{basis: basis, tree: tree}, nil
}

// Similar returns the IDs of the k most similar indexed spectra.
func (ix *SearchIndex) Similar(query *Spectrum, k int) ([]int64, error) {
	coef, err := ix.basis.Expand(query)
	if err != nil {
		return nil, err
	}
	ns, err := ix.tree.KNN(coef, k)
	if err != nil {
		return nil, err
	}
	out := make([]int64, len(ns))
	for i, n := range ns {
		out[i] = n.Point.ID
	}
	return out, nil
}
