package spectra

import (
	"math"
	"math/rand"
	"testing"

	"sqlarray/internal/engine"
)

func synth(t *testing.T, rng *rand.Rand, id int64, z, badFrac float64) *Spectrum {
	t.Helper()
	s, err := Synthesize(rng, SynthesisParams{
		Bins: 200, LoWave: 3800, HiWave: 7000, Z: z, SNR: 30,
		BadFrac: badFrac, LineSeed: id,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.ID = id
	return s
}

func TestLogGrid(t *testing.T) {
	g, err := LogGrid(4000, 8000, 101)
	if err != nil {
		t.Fatal(err)
	}
	if g[0] != 4000 || math.Abs(g[100]-8000) > 1e-9 {
		t.Errorf("ends = %g, %g", g[0], g[100])
	}
	// Constant ratio between neighbours.
	r := g[1] / g[0]
	for i := 2; i < len(g); i++ {
		if math.Abs(g[i]/g[i-1]-r) > 1e-12 {
			t.Fatal("grid not logarithmic")
		}
	}
	if _, err := LogGrid(0, 100, 10); err == nil {
		t.Error("zero lower bound must fail")
	}
	if _, err := LogGrid(100, 50, 10); err == nil {
		t.Error("inverted range must fail")
	}
	if _, err := LogGrid(1, 2, 1); err == nil {
		t.Error("single bin must fail")
	}
}

func TestSynthesizeAndValidate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := synth(t, rng, 1, 0.1, 0.02)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := 0
	for _, f := range s.Flags {
		if f != 0 {
			bad++
		}
	}
	if bad == 0 {
		t.Error("expected some flagged pixels at BadFrac=0.02")
	}
	// Wavelengths redshifted: first bin at 3800*(1.1).
	if math.Abs(s.Wave[0]-3800*1.1) > 1e-9 {
		t.Errorf("start = %g", s.Wave[0])
	}
	// Broken inputs.
	if err := (&Spectrum{Wave: []float64{1}}).Validate(); err == nil {
		t.Error("single bin must fail")
	}
	bad2 := synth(t, rng, 2, 0, 0)
	bad2.Wave[5] = bad2.Wave[4]
	if err := bad2.Validate(); err == nil {
		t.Error("non-ascending grid must fail")
	}
}

func TestIntegrateLinearFlux(t *testing.T) {
	// Constant flux density 2 over [0,10]: integral over [2,5] = 6.
	s := &Spectrum{
		Wave:  []float64{0, 2.5, 5, 7.5, 10},
		Flux:  []float64{2, 2, 2, 2, 2},
		Err:   make([]float64, 5),
		Flags: make([]int64, 5),
	}
	if got := s.Integrate(2, 5); math.Abs(got-6) > 1e-12 {
		t.Errorf("Integrate = %g, want 6", got)
	}
	// Outside the domain: zero.
	if got := s.Integrate(20, 30); got != 0 {
		t.Errorf("outside = %g", got)
	}
}

func TestNormalize(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s := synth(t, rng, 3, 0.05, 0)
	lo, hi := s.Wave[20], s.Wave[150]
	if err := s.Normalize(lo, hi); err != nil {
		t.Fatal(err)
	}
	if got := s.Integrate(lo, hi); math.Abs(got-1) > 1e-9 {
		t.Errorf("normalized integral = %g", got)
	}
	zero := &Spectrum{Wave: []float64{1, 2}, Flux: []float64{0, 0}, Err: []float64{1, 1}, Flags: []int64{0, 0}}
	if err := zero.Normalize(1, 2); err == nil {
		t.Error("zero flux must fail")
	}
}

func TestResampleConservesFlux(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := synth(t, rng, 4, 0.08, 0)
	// Resample to a coarser grid fully inside the source coverage.
	grid, _ := LogGrid(s.Wave[10], s.Wave[180], 60)
	r, err := Resample(s, grid)
	if err != nil {
		t.Fatal(err)
	}
	// Integrated flux over a wide interior range must be conserved.
	lo, hi := grid[5], grid[54]
	a := s.Integrate(lo, hi)
	b := r.Integrate(lo, hi)
	if math.Abs(a-b) > 0.02*math.Abs(a) {
		t.Errorf("flux not conserved: %g vs %g", a, b)
	}
}

func TestResampleFlagPropagation(t *testing.T) {
	s := &Spectrum{
		Wave:  []float64{1, 2, 3, 4, 5, 6, 7, 8},
		Flux:  []float64{1, 1, 1, 1, 1, 1, 1, 1},
		Err:   []float64{.1, .1, .1, .1, .1, .1, .1, .1},
		Flags: []int64{0, 0, 0, 1, 0, 0, 0, 0},
	}
	r, err := Resample(s, []float64{2.5, 4.5, 6.5})
	if err != nil {
		t.Fatal(err)
	}
	// The middle target bin overlaps source bin 3 (flagged).
	if r.Flags[1]&1 == 0 {
		t.Errorf("flag not propagated: %v", r.Flags)
	}
	// Bins outside source coverage get the no-coverage flag.
	r2, err := Resample(s, []float64{0.1, 0.2, 5, 6})
	if err != nil {
		t.Fatal(err)
	}
	if r2.Flags[0]&2 == 0 {
		t.Errorf("no-coverage flag missing: %v", r2.Flags)
	}
	// Invalid target grids fail.
	if _, err := Resample(s, []float64{5, 4}); err == nil {
		t.Error("descending target must fail")
	}
	if _, err := Resample(s, []float64{5}); err == nil {
		t.Error("single-bin target must fail")
	}
}

func TestCompositeImprovesSNR(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	// Many noisy realizations of the same object.
	specs := make([]*Spectrum, 40)
	for i := range specs {
		s, err := Synthesize(rng, SynthesisParams{
			Bins: 200, LoWave: 3800, HiWave: 7000, Z: 0.05, SNR: 5,
			BadFrac: 0.01, LineSeed: 7,
		})
		if err != nil {
			t.Fatal(err)
		}
		s.ID = int64(i)
		specs[i] = s
	}
	grid, _ := LogGrid(4100, 7000, 150)
	comp, err := Composite(specs, grid)
	if err != nil {
		t.Fatal(err)
	}
	clean, err := Synthesize(rng, SynthesisParams{
		Bins: 200, LoWave: 3800, HiWave: 7000, Z: 0.05, SNR: 1e9,
		BadFrac: 0, LineSeed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	cleanR, err := Resample(clean, grid)
	if err != nil {
		t.Fatal(err)
	}
	single, err := Resample(specs[0], grid)
	if err != nil {
		t.Fatal(err)
	}
	var errComp, errSingle float64
	n := 0
	for i := range grid {
		if comp.Flags[i] != 0 || single.Flags[i] != 0 || cleanR.Flags[i] != 0 {
			continue
		}
		errComp += math.Abs(comp.Flux[i] - cleanR.Flux[i])
		errSingle += math.Abs(single.Flux[i] - cleanR.Flux[i])
		n++
	}
	if n == 0 {
		t.Fatal("no clean bins to compare")
	}
	if errComp > errSingle/2 {
		t.Errorf("composite error %g not clearly below single %g", errComp/float64(n), errSingle/float64(n))
	}
	if _, err := Composite(nil, grid); err == nil {
		t.Error("empty composite must fail")
	}
}

func TestCompositeByRedshift(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var specs []*Spectrum
	for i := 0; i < 12; i++ {
		z := 0.05 + 0.1*float64(i%3) // three z groups
		specs = append(specs, synth(t, rng, int64(i), z, 0))
	}
	grid, _ := LogGrid(4300, 6800, 100)
	groups, err := CompositeByRedshift(specs, grid, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 3 {
		t.Errorf("groups = %d, want 3", len(groups))
	}
	if _, err := CompositeByRedshift(specs, grid, 0); err == nil {
		t.Error("zero bin width must fail")
	}
}

func buildPCASet(t *testing.T, rng *rand.Rand, n int, badFrac float64) []*Spectrum {
	t.Helper()
	specs := make([]*Spectrum, n)
	for i := range specs {
		// Nearly common redshift: similarity search operates on spectra
		// aligned to a common frame, as the archive pipeline would do.
		z := 0.03 + 0.0002*float64(i%5)
		s, err := Synthesize(rng, SynthesisParams{
			Bins: 180, LoWave: 3800, HiWave: 7000, Z: z, SNR: 40,
			BadFrac: badFrac, LineSeed: int64(i % 6), // six distinct object types
		})
		if err != nil {
			t.Fatal(err)
		}
		s.ID = int64(i)
		specs[i] = s
	}
	return specs
}

func TestPCAReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	specs := buildPCASet(t, rng, 50, 0)
	grid, _ := LogGrid(4000, 6900, 120)
	basis, err := PCA(specs, grid, 8, 4300, 6500)
	if err != nil {
		t.Fatal(err)
	}
	if basis.NComp() != 8 || len(basis.Values) != 8 {
		t.Fatalf("basis shape wrong")
	}
	// Eigenvalues descending, non-negative.
	for j := 1; j < 8; j++ {
		if basis.Values[j] > basis.Values[j-1]+1e-12 {
			t.Error("eigenvalues not descending")
		}
	}
	// Expansion + reconstruction approximates the (clean) spectrum well.
	coef, err := basis.Expand(specs[0])
	if err != nil {
		t.Fatal(err)
	}
	rec, err := basis.Reconstruct(coef)
	if err != nil {
		t.Fatal(err)
	}
	prep, err := basis.prepare(specs[0])
	if err != nil {
		t.Fatal(err)
	}
	var num, den float64
	for i := range rec {
		d := rec[i] - prep.Flux[i]
		num += d * d
		m := prep.Flux[i] - basis.Mean[i]
		den += m * m
	}
	if num > 0.2*den {
		t.Errorf("reconstruction captures too little variance: residual %g of %g", num, den)
	}
	if _, err := basis.Reconstruct([]float64{1}); err == nil {
		t.Error("wrong coefficient count must fail")
	}
	if _, err := PCA(specs[:1], grid, 2, 4300, 6500); err == nil {
		t.Error("single-spectrum PCA must fail")
	}
	if _, err := PCA(specs, grid, 0, 4300, 6500); err == nil {
		t.Error("zero components must fail")
	}
}

func TestMaskedExpansionBeatsDotProducts(t *testing.T) {
	// The §2.2 claim: with flagged pixels, dot products are polluted but
	// masked least squares recovers the true coefficients.
	rng := rand.New(rand.NewSource(7))
	specs := buildPCASet(t, rng, 60, 0)
	grid, _ := LogGrid(4000, 6900, 120)
	basis, err := PCA(specs, grid, 5, 4300, 6500)
	if err != nil {
		t.Fatal(err)
	}
	clean := specs[10]
	truth, err := basis.Expand(clean)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt 5% of pixels and flag them. Alternating signs keep the
	// broadband normalization integral roughly intact, isolating the
	// expansion method as the only difference.
	dirty := clean.Clone()
	sign := 50.0
	for i := 0; i < len(dirty.Flux); i += 20 {
		dirty.Flux[i] += sign
		sign = -sign
		dirty.Flags[i] = 1
	}
	masked, err := basis.Expand(dirty)
	if err != nil {
		t.Fatal(err)
	}
	dotted, err := basis.ExpandDot(dirty)
	if err != nil {
		t.Fatal(err)
	}
	var errMasked, errDot float64
	for j := range truth {
		errMasked += math.Abs(masked[j] - truth[j])
		errDot += math.Abs(dotted[j] - truth[j])
	}
	if errMasked > errDot/5 {
		t.Errorf("masked fit error %g not clearly below dot-product error %g", errMasked, errDot)
	}
}

func TestSimilarSpectrumSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	specs := buildPCASet(t, rng, 72, 0.01)
	grid, _ := LogGrid(4000, 6900, 120)
	basis, err := PCA(specs, grid, 6, 4300, 6500)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := BuildSearchIndex(basis, specs)
	if err != nil {
		t.Fatal(err)
	}
	// A fresh spectrum of object type 2 should retrieve mostly type-2
	// neighbours (IDs ≡ 2 mod 6).
	q, err := Synthesize(rng, SynthesisParams{
		Bins: 180, LoWave: 3800, HiWave: 7000, Z: 0.03, SNR: 40,
		BadFrac: 0.01, LineSeed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	ids, err := ix.Similar(q, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 8 {
		t.Fatalf("got %d results", len(ids))
	}
	sameType := 0
	for _, id := range ids {
		if id%6 == 2 {
			sameType++
		}
	}
	if sameType < 5 {
		t.Errorf("only %d of 8 neighbours share the query's type", sameType)
	}
}

func TestStoreRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	db := engine.NewMemDB()
	st, err := CreateStore(db, "spectra")
	if err != nil {
		t.Fatal(err)
	}
	want := make([]*Spectrum, 5)
	for i := range want {
		want[i] = synth(t, rng, int64(i), 0.01*float64(i), 0.02)
		if err := st.Insert(want[i]); err != nil {
			t.Fatal(err)
		}
	}
	got, err := st.Get(3)
	if err != nil {
		t.Fatal(err)
	}
	if got.Z != want[3].Z || len(got.Wave) != len(want[3].Wave) {
		t.Fatalf("metadata mismatch")
	}
	for i := range got.Wave {
		if got.Wave[i] != want[3].Wave[i] || got.Flux[i] != want[3].Flux[i] ||
			got.Err[i] != want[3].Err[i] || got.Flags[i] != want[3].Flags[i] {
			t.Fatalf("bin %d mismatch", i)
		}
	}
	all, err := st.All()
	if err != nil || len(all) != 5 {
		t.Fatalf("All = %d spectra, %v", len(all), err)
	}
	// Invalid spectrum rejected at insert.
	badSpec := want[0].Clone()
	badSpec.ID = 99
	badSpec.Wave[1] = badSpec.Wave[0]
	if err := st.Insert(badSpec); err == nil {
		t.Error("invalid spectrum must be rejected")
	}
}

// TestGetSliceMatchesGetAndReadsFewerChunks checks the ranged read: a
// narrow wavelength window must reproduce Get's samples exactly while
// touching fewer blob chunk pages than materializing the full spectrum.
func TestGetSliceMatchesGetAndReadsFewerChunks(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	db := engine.NewMemDB()
	st, err := CreateStore(db, "spectra")
	if err != nil {
		t.Fatal(err)
	}
	// 4000 bins = 32 kB per float column: four chunk pages each.
	s, err := Synthesize(rng, SynthesisParams{
		Bins: 4000, LoWave: 3800, HiWave: 9200, Z: 0.05, SNR: 25, LineSeed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.ID = 7
	if err := st.Insert(s); err != nil {
		t.Fatal(err)
	}

	db.Blobs().ResetStats()
	full, err := st.Get(7)
	if err != nil {
		t.Fatal(err)
	}
	fullChunks := db.Blobs().Stats().ChunkReads

	const lo, hi = 1500, 1600
	db.Blobs().ResetStats()
	sl, err := st.GetSlice(7, lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	sliceChunks := db.Blobs().Stats().ChunkReads
	if len(sl.Wave) != hi-lo {
		t.Fatalf("slice length = %d", len(sl.Wave))
	}
	for i := 0; i < hi-lo; i++ {
		if sl.Wave[i] != full.Wave[lo+i] || sl.Flux[i] != full.Flux[lo+i] ||
			sl.Err[i] != full.Err[lo+i] || sl.Flags[i] != full.Flags[lo+i] {
			t.Fatalf("bin %d mismatch", i)
		}
	}
	if sliceChunks >= fullChunks {
		t.Errorf("GetSlice touched %d chunks, Get touched %d — pushdown not effective",
			sliceChunks, fullChunks)
	}
	if got := db.Pool().PinnedFrames(); got != 0 {
		t.Errorf("PinnedFrames = %d", got)
	}

	if _, err := st.GetSlice(7, 100, 100); err == nil {
		t.Error("empty slice must fail")
	}
	if _, err := st.GetSlice(7, 3990, 5000); err == nil {
		t.Error("out-of-range slice must fail")
	}
}
