// Package sfc implements space-filling curves — the Morton (z-order)
// indexes both large use cases of the paper partition their data along:
// the turbulence database stores (64+8)³ cubes "partitioned along a space
// filling curve (z-index)" (§2.1) and the N-body octree "would be
// computed from a space filling curve index" (§2.3).
package sfc

import "fmt"

// Bit-interleaving constants for 21-bit coordinates packed into 63 bits
// (3-D) and 31-bit coordinates into 62 bits (2-D), via the standard
// parallel-prefix spreading.

// Max3DCoord is the largest coordinate Encode3D accepts (21 bits).
const Max3DCoord = 1<<21 - 1

// Max2DCoord is the largest coordinate Encode2D accepts (31 bits).
const Max2DCoord = 1<<31 - 1

// spread3 inserts two zero bits between each of the low 21 bits of x.
func spread3(x uint64) uint64 {
	x &= 0x1FFFFF
	x = (x | x<<32) & 0x1F00000000FFFF
	x = (x | x<<16) & 0x1F0000FF0000FF
	x = (x | x<<8) & 0x100F00F00F00F00F
	x = (x | x<<4) & 0x10C30C30C30C30C3
	x = (x | x<<2) & 0x1249249249249249
	return x
}

// compact3 is the inverse of spread3.
func compact3(x uint64) uint64 {
	x &= 0x1249249249249249
	x = (x ^ x>>2) & 0x10C30C30C30C30C3
	x = (x ^ x>>4) & 0x100F00F00F00F00F
	x = (x ^ x>>8) & 0x1F0000FF0000FF
	x = (x ^ x>>16) & 0x1F00000000FFFF
	x = (x ^ x>>32) & 0x1FFFFF
	return x
}

// spread2 inserts one zero bit between each of the low 31 bits of x.
func spread2(x uint64) uint64 {
	x &= 0x7FFFFFFF
	x = (x | x<<16) & 0x0000FFFF0000FFFF
	x = (x | x<<8) & 0x00FF00FF00FF00FF
	x = (x | x<<4) & 0x0F0F0F0F0F0F0F0F
	x = (x | x<<2) & 0x3333333333333333
	x = (x | x<<1) & 0x5555555555555555
	return x
}

func compact2(x uint64) uint64 {
	x &= 0x5555555555555555
	x = (x ^ x>>1) & 0x3333333333333333
	x = (x ^ x>>2) & 0x0F0F0F0F0F0F0F0F
	x = (x ^ x>>4) & 0x00FF00FF00FF00FF
	x = (x ^ x>>8) & 0x0000FFFF0000FFFF
	x = (x ^ x>>16) & 0x7FFFFFFF
	return x
}

// Encode3D packs (x, y, z) into their Morton code (x contributes the
// lowest bit of each triple).
func Encode3D(x, y, z uint32) (uint64, error) {
	if x > Max3DCoord || y > Max3DCoord || z > Max3DCoord {
		return 0, fmt.Errorf("sfc: coordinate out of 21-bit range: (%d,%d,%d)", x, y, z)
	}
	return spread3(uint64(x)) | spread3(uint64(y))<<1 | spread3(uint64(z))<<2, nil
}

// Decode3D is the inverse of Encode3D.
func Decode3D(code uint64) (x, y, z uint32) {
	return uint32(compact3(code)), uint32(compact3(code >> 1)), uint32(compact3(code >> 2))
}

// Encode2D packs (x, y) into their Morton code.
func Encode2D(x, y uint32) (uint64, error) {
	if x > Max2DCoord || y > Max2DCoord {
		return 0, fmt.Errorf("sfc: coordinate out of 31-bit range: (%d,%d)", x, y)
	}
	return spread2(uint64(x)) | spread2(uint64(y))<<1, nil
}

// Decode2D is the inverse of Encode2D.
func Decode2D(code uint64) (x, y uint32) {
	return uint32(compact2(code)), uint32(compact2(code >> 1))
}

// Range is a half-open interval [Lo, Hi) of Morton codes.
type Range struct {
	Lo, Hi uint64
}

// BoxRanges3D decomposes the axis-aligned box [lo, hi] (inclusive cell
// coordinates) into maximal runs of consecutive 3-D Morton codes. The
// decomposition recursively splits the box against octant boundaries:
// a sub-box that exactly fills its octant contributes one range. The
// turbulence service uses this to turn a spatial request into a small
// set of clustered-key range scans.
//
// maxRanges caps the output (<=0 means unlimited); when the cap is hit,
// remaining sub-boxes are emitted as coarse covering ranges that may
// include extra codes, so callers must post-filter.
func BoxRanges3D(lo, hi [3]uint32, maxRanges int) ([]Range, error) {
	for d := 0; d < 3; d++ {
		if lo[d] > hi[d] {
			return nil, fmt.Errorf("sfc: empty box on axis %d: [%d,%d]", d, lo[d], hi[d])
		}
		if hi[d] > Max3DCoord {
			return nil, fmt.Errorf("sfc: box exceeds 21-bit range on axis %d", d)
		}
	}
	var out []Range
	var walk func(cellLo [3]uint32, size uint32) bool
	walk = func(cellLo [3]uint32, size uint32) bool {
		// Intersect this cube with the query box.
		var iLo, iHi [3]uint32
		for d := 0; d < 3; d++ {
			cLo, cHi := cellLo[d], cellLo[d]+size-1
			if cHi < lo[d] || cLo > hi[d] {
				return true // disjoint
			}
			iLo[d] = maxU32(cLo, lo[d])
			iHi[d] = minU32(cHi, hi[d])
		}
		full := true
		for d := 0; d < 3; d++ {
			if iLo[d] != cellLo[d] || iHi[d] != cellLo[d]+size-1 {
				full = false
				break
			}
		}
		start, _ := Encode3D(cellLo[0], cellLo[1], cellLo[2])
		if full || size == 1 {
			appendRange(&out, Range{start, start + uint64(size)*uint64(size)*uint64(size)})
			return true
		}
		if maxRanges > 0 && len(out) >= maxRanges {
			// Cap hit: cover the whole cube coarsely.
			appendRange(&out, Range{start, start + uint64(size)*uint64(size)*uint64(size)})
			return true
		}
		half := size / 2
		// Children in Morton order: z-major bit order is (z,y,x) from
		// bit 2 down, matching Encode3D's packing.
		for oct := uint32(0); oct < 8; oct++ {
			child := [3]uint32{
				cellLo[0] + (oct&1)*half,
				cellLo[1] + ((oct>>1)&1)*half,
				cellLo[2] + ((oct>>2)&1)*half,
			}
			if !walk(child, half) {
				return false
			}
		}
		return true
	}
	// Root cube: the smallest power-of-two cube containing the box.
	size := uint32(1)
	for size <= hi[0] || size <= hi[1] || size <= hi[2] {
		size <<= 1
	}
	walk([3]uint32{0, 0, 0}, size)
	return out, nil
}

// appendRange merges adjacent ranges as they are produced (children are
// visited in Morton order, so adjacency in the output is common).
func appendRange(out *[]Range, r Range) {
	if n := len(*out); n > 0 && (*out)[n-1].Hi == r.Lo {
		(*out)[n-1].Hi = r.Hi
		return
	}
	*out = append(*out, r)
}

func maxU32(a, b uint32) uint32 {
	if a > b {
		return a
	}
	return b
}

func minU32(a, b uint32) uint32 {
	if a < b {
		return a
	}
	return b
}
