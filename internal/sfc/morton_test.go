package sfc

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEncode3DKnown(t *testing.T) {
	// Interleave pattern: x -> bit 0, y -> bit 1, z -> bit 2.
	cases := []struct {
		x, y, z uint32
		want    uint64
	}{
		{0, 0, 0, 0},
		{1, 0, 0, 1},
		{0, 1, 0, 2},
		{0, 0, 1, 4},
		{1, 1, 1, 7},
		{2, 0, 0, 8},
		{3, 3, 3, 63},
	}
	for _, c := range cases {
		got, err := Encode3D(c.x, c.y, c.z)
		if err != nil || got != c.want {
			t.Errorf("Encode3D(%d,%d,%d) = %d, %v; want %d", c.x, c.y, c.z, got, err, c.want)
		}
	}
}

func TestRoundtrip3DProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func() bool {
		x := uint32(rng.Intn(Max3DCoord + 1))
		y := uint32(rng.Intn(Max3DCoord + 1))
		z := uint32(rng.Intn(Max3DCoord + 1))
		code, err := Encode3D(x, y, z)
		if err != nil {
			return false
		}
		bx, by, bz := Decode3D(code)
		return bx == x && by == y && bz == z
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestRoundtrip2DProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := func() bool {
		x := uint32(rng.Int63n(Max2DCoord + 1))
		y := uint32(rng.Int63n(Max2DCoord + 1))
		code, err := Encode2D(x, y)
		if err != nil {
			return false
		}
		bx, by := Decode2D(code)
		return bx == x && by == y
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeBounds(t *testing.T) {
	if _, err := Encode3D(Max3DCoord+1, 0, 0); err == nil {
		t.Error("over-range 3D must fail")
	}
	if _, err := Encode2D(0, uint32(Max2DCoord)+1); err == nil {
		t.Error("over-range 2D must fail")
	}
	if c, err := Encode3D(Max3DCoord, Max3DCoord, Max3DCoord); err != nil || c != 1<<63-1 {
		t.Errorf("max encode = %d, %v", c, err)
	}
}

func TestLocalityNeighborCodes(t *testing.T) {
	// Adjacent cells within an octant share long prefixes: the code of
	// (x,y,z) and (x+1,y,z) with even x differ only in the low bits.
	c0, _ := Encode3D(4, 2, 6)
	c1, _ := Encode3D(5, 2, 6)
	if c1 != c0+1 {
		t.Errorf("x-neighbor codes %d, %d; want consecutive", c0, c1)
	}
}

func TestBoxRangesCoverExactly(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 40; trial++ {
		var lo, hi [3]uint32
		for d := 0; d < 3; d++ {
			a := uint32(rng.Intn(16))
			b := uint32(rng.Intn(16))
			if a > b {
				a, b = b, a
			}
			lo[d], hi[d] = a, b
		}
		ranges, err := BoxRanges3D(lo, hi, 0)
		if err != nil {
			t.Fatal(err)
		}
		// Collect codes from ranges.
		got := map[uint64]bool{}
		for _, r := range ranges {
			if r.Hi <= r.Lo {
				t.Fatalf("empty range %+v", r)
			}
			for c := r.Lo; c < r.Hi; c++ {
				if got[c] {
					t.Fatalf("code %d covered twice", c)
				}
				got[c] = true
			}
		}
		// Expected codes from brute force.
		want := map[uint64]bool{}
		for x := lo[0]; x <= hi[0]; x++ {
			for y := lo[1]; y <= hi[1]; y++ {
				for z := lo[2]; z <= hi[2]; z++ {
					c, _ := Encode3D(x, y, z)
					want[c] = true
				}
			}
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: covered %d codes, want %d", trial, len(got), len(want))
		}
		for c := range want {
			if !got[c] {
				t.Fatalf("trial %d: code %d missing", trial, c)
			}
		}
	}
}

func TestBoxRangesMerged(t *testing.T) {
	// A full octant-aligned cube must be a single range.
	ranges, err := BoxRanges3D([3]uint32{0, 0, 0}, [3]uint32{7, 7, 7}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranges) != 1 || ranges[0].Lo != 0 || ranges[0].Hi != 512 {
		t.Errorf("full cube ranges = %+v", ranges)
	}
}

func TestBoxRangesCapCoarsens(t *testing.T) {
	// A thin slab produces many exact ranges; with a cap the result is
	// shorter but must still cover all wanted codes (superset allowed).
	lo, hi := [3]uint32{3, 0, 0}, [3]uint32{3, 15, 15}
	exact, err := BoxRanges3D(lo, hi, 0)
	if err != nil {
		t.Fatal(err)
	}
	capped, err := BoxRanges3D(lo, hi, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(capped) >= len(exact) {
		t.Errorf("cap did not shrink: %d vs %d", len(capped), len(exact))
	}
	inCapped := func(c uint64) bool {
		for _, r := range capped {
			if c >= r.Lo && c < r.Hi {
				return true
			}
		}
		return false
	}
	for x := lo[0]; x <= hi[0]; x++ {
		for y := lo[1]; y <= hi[1]; y++ {
			for z := lo[2]; z <= hi[2]; z++ {
				c, _ := Encode3D(x, y, z)
				if !inCapped(c) {
					t.Fatalf("capped ranges miss code %d", c)
				}
			}
		}
	}
}

func TestBoxRangesErrors(t *testing.T) {
	if _, err := BoxRanges3D([3]uint32{2, 0, 0}, [3]uint32{1, 5, 5}, 0); err == nil {
		t.Error("inverted box must fail")
	}
	if _, err := BoxRanges3D([3]uint32{0, 0, 0}, [3]uint32{Max3DCoord + 1, 0, 0}, 0); err == nil {
		t.Error("out-of-range box must fail")
	}
}

func TestMortonOrderIsSorted(t *testing.T) {
	// Scanning a small cube in Morton order visits strictly increasing
	// codes — the property that makes z-indexed clustered keys scan
	// sequentially.
	prev := uint64(0)
	first := true
	for c := uint64(0); c < 512; c++ {
		x, y, z := Decode3D(c)
		back, _ := Encode3D(x, y, z)
		if back != c {
			t.Fatalf("decode/encode mismatch at %d", c)
		}
		if !first && back <= prev {
			t.Fatalf("order violated at %d", c)
		}
		prev, first = back, false
	}
}
