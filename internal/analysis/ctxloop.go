package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Ctxloop prepares the multi-session server work: every executor-internal
// scan or drain loop must poll cancellation, so a long analytical query can
// be aborted without waiting for the full table scan. Concretely, inside
// packages named "sqlmini", any `for`/`range` loop that advances a stream —
// calling a method named `next` or `nextBatch` (the internal operator
// protocol) or `engine.Cursor.Next`/`FillBatch` — must, somewhere in the
// loop body or its condition, do one of:
//
//   - call a method on a context.Context value (ctx.Err(), ctx.Done()),
//   - call .Load() on an atomic.Bool (the parallel workers' stop flag),
//   - call a function or method whose name contains "cancel" (the
//     pollCancel helper).
//
// The exported Rows.Next is deliberately not matched: user-facing drain
// loops outside the executor are the caller's business.
var Ctxloop = &Analyzer{
	Name: "ctxloop",
	Doc:  "executor scan/drain loops must poll cancellation (ctx.Err, stop.Load, or a pollCancel helper)",
	Run:  runCtxloop,
}

func runCtxloop(p *Pass) error {
	if p.Pkg == nil || p.Pkg.Name() != "sqlmini" {
		return nil
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			var cond ast.Expr
			switch l := n.(type) {
			case *ast.ForStmt:
				body, cond = l.Body, l.Cond
			case *ast.RangeStmt:
				body = l.Body
			default:
				return true
			}
			if body == nil {
				return true
			}
			if !loopAdvancesStream(p.TypesInfo, body, cond) {
				return true
			}
			if loopPollsCancel(p.TypesInfo, body, cond) {
				return true
			}
			p.Reportf(n.Pos(), "executor loop advances a row/batch stream without polling cancellation; check ctx (pollCancel) or the worker stop flag each iteration")
			return true
		})
	}
	return nil
}

// streamAdvance reports whether call advances a stream: the internal
// operator protocol (next/nextBatch on any type) or a cursor walk
// (engine.Cursor Next/FillBatch, btree.Iterator Next).
func streamAdvance(info *types.Info, call *ast.CallExpr) bool {
	recv, name, ok := calleeMethod(info, call)
	if !ok {
		return false
	}
	switch name {
	case "next", "nextBatch":
		// Only the operator protocol: the `operator`/`batchOperator`
		// interfaces or a *fooOp struct. The parser and lexer also have
		// `next` methods (token streams), which are not row streams.
		n := namedOf(recv)
		if n == nil || n.Obj() == nil {
			return false
		}
		tn := n.Obj().Name()
		return tn == "operator" || tn == "batchOperator" || strings.HasSuffix(tn, "Op")
	case "Next", "FillBatch":
		return typeIs(recv, "engine", "Cursor") || typeIs(recv, "btree", "Iterator")
	}
	return false
}

// nested loops do their own polling; scan only this loop's direct body.
func loopAdvancesStream(info *types.Info, body *ast.BlockStmt, cond ast.Expr) bool {
	found := false
	scan := func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.FuncLit:
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && streamAdvance(info, call) {
			found = true
		}
		return !found
	}
	if cond != nil {
		ast.Inspect(cond, scan)
	}
	ast.Inspect(body, scan)
	return found
}

func loopPollsCancel(info *types.Info, body *ast.BlockStmt, cond ast.Expr) bool {
	polls := false
	scan := func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.FuncLit:
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return !polls
		}
		if isCancelPoll(info, call) {
			polls = true
		}
		return !polls
	}
	if cond != nil {
		ast.Inspect(cond, scan)
	}
	ast.Inspect(body, scan)
	return polls
}

func isCancelPoll(info *types.Info, call *ast.CallExpr) bool {
	// Plain function whose name mentions cancel: pollCancel(ctx).
	if id, ok := unparen(call.Fun).(*ast.Ident); ok {
		if strings.Contains(strings.ToLower(id.Name), "cancel") {
			return true
		}
	}
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if strings.Contains(strings.ToLower(sel.Sel.Name), "cancel") {
		return true
	}
	// Method call on a context.Context value: ctx.Err(), ctx.Done().
	if tv, ok := info.Types[sel.X]; ok && tv.Type != nil {
		if isContextType(tv.Type) {
			return true
		}
		// stop.Load() on the workers' cooperative abort flag.
		if sel.Sel.Name == "Load" && isAtomicBool(tv.Type) {
			return true
		}
	}
	return false
}

func isContextType(t types.Type) bool {
	n := namedOf(t)
	if n == nil || n.Obj() == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Path() == "context" && n.Obj().Name() == "Context"
}

func isAtomicBool(t types.Type) bool {
	n := namedOf(t)
	if n == nil || n.Obj() == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Path() == "sync/atomic" && n.Obj().Name() == "Bool"
}
