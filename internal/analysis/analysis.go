// Package analysis is a self-contained, dependency-free re-implementation
// of the narrow slice of golang.org/x/tools/go/analysis that this project
// needs: named analyzers over a type-checked package, diagnostics with
// positions, and per-site suppression comments.
//
// It exists because the repo builds offline (no module proxy), so x/tools
// cannot be vendored; the surface is deliberately tiny and the driver in
// cmd/sqlarraylint speaks cmd/go's `-vettool` JSON protocol directly, which
// makes the suite usable as `go vet -vettool=$(which sqlarraylint) ./...`.
//
// Suppression convention (documented in ARCHITECTURE.md): a comment
//
//	//lint:allow <analyzer> <reason>
//
// on the flagged line, or on the line immediately above it, silences that
// analyzer at that site. The reason is mandatory; an allow comment without
// one is itself reported.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one invariant checker.
type Analyzer struct {
	Name string // short lowercase identifier, used in flags and suppressions
	Doc  string // one-line description shown by -flags usage
	Run  func(*Pass) error
}

// A Diagnostic is a single finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Pos
	Message  string
}

// A Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags   []Diagnostic
	allows  []allowSite
	badUses []Diagnostic // malformed //lint:allow comments
}

type allowSite struct {
	file     string
	line     int
	analyzer string
	used     bool
}

// NewPass assembles a Pass and indexes its suppression comments.
func NewPass(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) *Pass {
	p := &Pass{Analyzer: a, Fset: fset, Files: files, Pkg: pkg, TypesInfo: info}
	p.collectAllows()
	return p
}

const allowPrefix = "//lint:allow "

func (p *Pass) collectAllows() {
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowPrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(c.Text, allowPrefix))
				name, reason, _ := strings.Cut(rest, " ")
				pos := p.Fset.Position(c.Pos())
				if name == "" || strings.TrimSpace(reason) == "" {
					if p.Analyzer.Name == "lintdirective" {
						p.badUses = append(p.badUses, Diagnostic{
							Analyzer: "lintdirective",
							Pos:      c.Pos(),
							Message:  "//lint:allow needs an analyzer name and a reason: //lint:allow <analyzer> <reason>",
						})
					}
					continue
				}
				p.allows = append(p.allows, allowSite{
					file:     pos.Filename,
					line:     pos.Line,
					analyzer: name,
				})
			}
		}
	}
}

// suppressed reports whether an allow comment for this pass's analyzer
// covers the line of pos (same line or the line immediately above).
func (p *Pass) suppressed(pos token.Pos) bool {
	at := p.Fset.Position(pos)
	for i := range p.allows {
		a := &p.allows[i]
		if a.analyzer != p.Analyzer.Name || a.file != at.Filename {
			continue
		}
		if a.line == at.Line || a.line == at.Line-1 {
			a.used = true
			return true
		}
	}
	return false
}

// Reportf records a diagnostic unless a suppression covers it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	if p.suppressed(pos) {
		return
	}
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostics returns the findings in file/line order.
func (p *Pass) Diagnostics() []Diagnostic {
	out := append(p.badUses, p.diags...)
	sort.SliceStable(out, func(i, j int) bool {
		pi, pj := p.Fset.Position(out[i].Pos), p.Fset.Position(out[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return pi.Column < pj.Column
	})
	return out
}

// ---- type-resolution helpers shared by the analyzers --------------------

// pkgPathMatches reports whether path is suffix itself or ends in
// "/"+suffix. Matching by suffix lets analyzer testdata use short mock
// package paths ("pages") while the real repo uses "sqlarray/internal/pages".
func pkgPathMatches(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// namedOf unwraps pointers and aliases down to a *types.Named, or nil.
func namedOf(t types.Type) *types.Named {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Named:
			return u
		case *types.Alias:
			t = types.Unalias(u)
		default:
			return nil
		}
	}
}

// typeIs reports whether t (possibly behind pointers) is the named type
// pkgSuffix.typeName.
func typeIs(t types.Type, pkgSuffix, typeName string) bool {
	n := namedOf(t)
	if n == nil || n.Obj() == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Name() == typeName && pkgPathMatches(n.Obj().Pkg().Path(), pkgSuffix)
}

// unparen strips any number of parens around an expression.
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// calleeMethod resolves a call expression to (receiver type, method name).
// It returns ok=false for calls that are not method calls on a named type
// (plain function calls, builtins, conversions, function values).
func calleeMethod(info *types.Info, call *ast.CallExpr) (recv types.Type, name string, ok bool) {
	sel, isSel := unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return nil, "", false
	}
	selInfo, found := info.Selections[sel]
	if !found {
		return nil, "", false // package-qualified call or conversion
	}
	if selInfo.Kind() != types.MethodVal {
		return nil, "", false
	}
	return selInfo.Recv(), sel.Sel.Name, true
}

// isMethodCall reports whether call is pkgSuffix.typeName.methodName.
func isMethodCall(info *types.Info, call *ast.CallExpr, pkgSuffix, typeName, methodName string) bool {
	recv, name, ok := calleeMethod(info, call)
	if !ok || name != methodName {
		return false
	}
	return typeIs(recv, pkgSuffix, typeName)
}

// funcDeclObj returns the *types.Func for a declaration, or nil.
func funcDeclObj(info *types.Info, fd *ast.FuncDecl) *types.Func {
	if fd.Name == nil {
		return nil
	}
	if fn, ok := info.Defs[fd.Name].(*types.Func); ok {
		return fn
	}
	return nil
}

// ---- registry ------------------------------------------------------------

// All returns the full suite in a stable order.
func All() []*Analyzer {
	return []*Analyzer{
		Pinleak,
		Latchorder,
		Atomicfield,
		Durasync,
		Ctxloop,
		Lintdirective,
	}
}

// Lintdirective validates the suppression comments themselves: every
// //lint:allow must name an analyzer and give a reason, and must name an
// analyzer that exists.
var Lintdirective = &Analyzer{
	Name: "lintdirective",
	Doc:  "check that //lint:allow comments are well-formed and name a real analyzer",
}

func init() { // assigned in init to avoid an initialization cycle via All
	Lintdirective.Run = func(p *Pass) error {
		known := map[string]bool{}
		for _, a := range All() {
			known[a.Name] = true
		}
		for _, f := range p.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if !strings.HasPrefix(c.Text, allowPrefix) {
						continue
					}
					rest := strings.TrimSpace(strings.TrimPrefix(c.Text, allowPrefix))
					name, reason, _ := strings.Cut(rest, " ")
					if name == "" || strings.TrimSpace(reason) == "" {
						continue // already queued by collectAllows
					}
					if !known[name] {
						p.Reportf(c.Pos(), "//lint:allow names unknown analyzer %q", name)
					}
				}
			}
		}
		return nil
	}
}
