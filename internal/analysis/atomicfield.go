package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Atomicfield enforces atomic-only access to fields that carry concurrent
// counters or LSNs:
//
// Rule A — fields whose type lives in sync/atomic (atomic.Uint64,
// atomic.Int32, ...) must never be copied by value: a copy tears the value
// out of the synchronization domain and silently reads a stale snapshot
// (and `go vet -copylocks` does not catch a plain field read, only struct
// copies). Loads must go through .Load(), and the only legal bare uses of
// such a selector are calling a method on it, taking its address, or
// selecting deeper into it.
//
// Rule B — plain integer fields annotated `//lint:atomic` on their
// declaration (the documented convention for pre-Go-1.19-style counters)
// must only be accessed via sync/atomic functions taking their address.
// Any direct read, write, or ++/-- on such a field is flagged.
var Atomicfield = &Analyzer{
	Name: "atomicfield",
	Doc:  "fields documented or typed as atomic must never be read or written non-atomically",
	Run:  runAtomicfield,
}

func isSyncAtomicType(t types.Type) bool {
	// A pointer to an atomic-carrying type copies freely — only value
	// copies tear the state out of the synchronization domain.
	if _, isPtr := types.Unalias(t).(*types.Pointer); isPtr {
		return false
	}
	n := namedOf(t)
	if n == nil || n.Obj() == nil || n.Obj().Pkg() == nil {
		return false
	}
	switch n.Obj().Pkg().Path() {
	case "sync/atomic":
		return true
	case "sqlarray/internal/obs", "obs":
		// The obs metric handles embed sync/atomic values; copying one
		// by value tears it out of the registry's synchronization
		// domain exactly like copying the raw atomic would — and a
		// copied handle silently stops feeding the registered series.
		switch n.Obj().Name() {
		case "Counter", "Gauge", "Histogram":
			return true
		}
	}
	return false
}

// markedFields collects struct fields whose declaration carries a
// `//lint:atomic` comment (same line or line above), keyed by *types.Var.
func markedFields(p *Pass) map[*types.Var]bool {
	marks := map[string]bool{} // "file:line" of each //lint:atomic comment
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if strings.HasPrefix(c.Text, "//lint:atomic") {
					pos := p.Fset.Position(c.Pos())
					marks[pos.Filename] = true // file has at least one mark
					marks[key(pos.Filename, pos.Line)] = true
				}
			}
		}
	}
	out := map[*types.Var]bool{}
	if len(marks) == 0 {
		return out
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, fld := range st.Fields.List {
				for _, name := range fld.Names {
					pos := p.Fset.Position(name.Pos())
					if marks[key(pos.Filename, pos.Line)] || marks[key(pos.Filename, pos.Line-1)] {
						if v, ok := p.TypesInfo.Defs[name].(*types.Var); ok {
							out[v] = true
						}
					}
				}
			}
			return true
		})
	}
	return out
}

func key(file string, line int) string {
	return file + ":" + itoa(line)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

func runAtomicfield(p *Pass) error {
	marked := markedFields(p)

	// parents maps each node to its parent so a selector can see how it
	// is used (address-taken, called, assigned, ...).
	for _, f := range p.Files {
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fld := fieldOf(p.TypesInfo, sel)
			if fld == nil {
				return true
			}
			parent := parentOf(stack)
			if isSyncAtomicType(fld.Type()) {
				checkAtomicTyped(p, sel, parent, fld)
			} else if marked[fld] {
				checkMarked(p, sel, parent, fld, stack)
			}
			return true
		})
	}
	return nil
}

// fieldOf returns the struct field a selector resolves to, or nil.
func fieldOf(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	return s.Obj().(*types.Var)
}

func parentOf(stack []ast.Node) ast.Node {
	if len(stack) < 2 {
		return nil
	}
	return stack[len(stack)-2]
}

// checkAtomicTyped flags value copies of a sync/atomic-typed field.
// Legal parents: &sel, sel.Method(...), sel.deeper, *ast.SelectorExpr as
// the Fun of a call (method call), or being the X of another selector.
func checkAtomicTyped(p *Pass, sel *ast.SelectorExpr, parent ast.Node, fld *types.Var) {
	switch pn := parent.(type) {
	case *ast.UnaryExpr:
		if pn.Op == token.AND {
			return // address-taken: passing &c.hits to a helper is fine
		}
	case *ast.SelectorExpr:
		// Either sel.Method (call below) or selecting a deeper field.
		if pn.X == sel {
			return
		}
	case *ast.StarExpr:
		return // (*p).field chains
	}
	p.Reportf(sel.Pos(), "field %s has atomic type %s and is copied by value; use .Load() (or take its address)",
		fld.Name(), types.TypeString(fld.Type(), types.RelativeTo(p.Pkg)))
}

// checkMarked flags non-atomic access to a //lint:atomic plain field. The
// only legal use is &sel passed as an argument to a sync/atomic function.
func checkMarked(p *Pass, sel *ast.SelectorExpr, parent ast.Node, fld *types.Var, stack []ast.Node) {
	if ue, ok := parent.(*ast.UnaryExpr); ok && ue.Op == token.AND {
		// &sel — legal only as an argument of atomic.XXX(...).
		if len(stack) >= 3 {
			if call, ok := stack[len(stack)-3].(*ast.CallExpr); ok && isSyncAtomicCall(p.TypesInfo, call) {
				return
			}
		}
		p.Reportf(sel.Pos(), "address of //lint:atomic field %s escapes outside sync/atomic; all access must go through atomic operations", fld.Name())
		return
	}
	p.Reportf(sel.Pos(), "//lint:atomic field %s accessed non-atomically; use sync/atomic operations on &%s", fld.Name(), fld.Name())
}

func isSyncAtomicCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if id, ok := sel.X.(*ast.Ident); ok {
		if pn, ok := info.Uses[id].(*types.PkgName); ok {
			return pn.Imported().Path() == "sync/atomic"
		}
	}
	return false
}
