package analysis

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
)

// VetConfig mirrors the JSON configuration file cmd/go passes to a
// `-vettool` for each package unit (see cmd/go/internal/work's vetConfig).
// Only the fields this driver consumes are declared; unknown fields are
// ignored by encoding/json.
type VetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	GoVersion                 string
	SucceedOnTypecheckFailure bool
}

// RunUnit executes the analyzer suite on one vet.cfg unit. It returns the
// number of diagnostics printed to w. Protocol notes:
//
//   - VetxOnly units exist only to export facts for dependents; this suite
//     has no cross-package facts, so they are satisfied by an empty vetx.
//   - Export data for imports is resolved through ImportMap (source path →
//     canonical path) and PackageFile (canonical path → compiled export
//     file), read with the stdlib gc importer.
func RunUnit(cfgPath string, enabled map[string]bool, w io.Writer) (int, error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return 0, err
	}
	var cfg VetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return 0, fmt.Errorf("parsing %s: %v", cfgPath, err)
	}

	if cfg.VetxOutput != "" {
		// cmd/go reads this back opportunistically for caching; content
		// is opaque to it.
		if err := os.WriteFile(cfg.VetxOutput, []byte("sqlarraylint: no facts\n"), 0o666); err != nil {
			return 0, err
		}
	}
	if cfg.VetxOnly {
		return 0, nil
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		if !filepath.IsAbs(name) {
			name = filepath.Join(cfg.Dir, name)
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0, nil
			}
			return 0, err
		}
		files = append(files, f)
	}

	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if canon, ok := cfg.ImportMap[path]; ok {
			path = canon
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	imp := importer.ForCompiler(fset, compiler, lookup)

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	tcfg := &types.Config{
		Importer:  imp,
		GoVersion: cfg.GoVersion,
		Error:     func(error) {}, // collect via returned err; keep going
	}
	pkg, err := tcfg.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0, nil
		}
		return 0, fmt.Errorf("typechecking %s: %v", cfg.ImportPath, err)
	}

	return RunAnalyzers(fset, files, pkg, info, enabled, w)
}

// RunAnalyzers runs every enabled analyzer over one type-checked package
// and prints diagnostics in `file:line:col: analyzer: message` form.
func RunAnalyzers(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, enabled map[string]bool, w io.Writer) (int, error) {
	n := 0
	for _, a := range All() {
		if enabled != nil && !enabled[a.Name] {
			continue
		}
		pass := NewPass(a, fset, files, pkg, info)
		if err := a.Run(pass); err != nil {
			return n, fmt.Errorf("analyzer %s: %v", a.Name, err)
		}
		for _, d := range pass.Diagnostics() {
			pos := fset.Position(d.Pos)
			fmt.Fprintf(w, "%s:%d:%d: %s: %s\n", pos.Filename, pos.Line, pos.Column, d.Analyzer, d.Message)
			n++
		}
	}
	return n, nil
}
