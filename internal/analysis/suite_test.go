package analysis_test

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"

	"sqlarray/internal/analysis"
	"sqlarray/internal/analysis/analyzertest"
)

func TestPinleak(t *testing.T) {
	analyzertest.Run(t, "testdata/pinleak", analysis.Pinleak, "a")
}

func TestLatchorder(t *testing.T) {
	analyzertest.Run(t, "testdata/latchorder", analysis.Latchorder, "pages", "engine")
}

func TestAtomicfield(t *testing.T) {
	analyzertest.Run(t, "testdata/atomicfield", analysis.Atomicfield, "a")
}

func TestDurasync(t *testing.T) {
	analyzertest.Run(t, "testdata/durasync", analysis.Durasync, "a")
}

func TestCtxloop(t *testing.T) {
	analyzertest.Run(t, "testdata/ctxloop", analysis.Ctxloop, "sqlmini")
}

// checkSrc typechecks one self-contained source and runs a over it,
// returning the diagnostic messages.
func checkSrc(t *testing.T, a *analysis.Analyzer, src string) []string {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	cfg := &types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	pkg, err := cfg.Check("x", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	pass := analysis.NewPass(a, fset, []*ast.File{f}, pkg, info)
	if err := a.Run(pass); err != nil {
		t.Fatal(err)
	}
	var msgs []string
	for _, d := range pass.Diagnostics() {
		msgs = append(msgs, d.Message)
	}
	return msgs
}

func TestLintdirectiveUnknownAnalyzer(t *testing.T) {
	msgs := checkSrc(t, analysis.Lintdirective, `package x

func f() {
	_ = 1 //lint:allow nosuchanalyzer this analyzer does not exist
	_ = 2 //lint:allow durasync a perfectly fine directive
}
`)
	if len(msgs) != 1 || !strings.Contains(msgs[0], `unknown analyzer "nosuchanalyzer"`) {
		t.Fatalf("got %q, want one unknown-analyzer diagnostic", msgs)
	}
}

func TestLintdirectiveMissingReason(t *testing.T) {
	msgs := checkSrc(t, analysis.Lintdirective, `package x

func f() {
	_ = 1 //lint:allow durasync
}
`)
	if len(msgs) != 1 || !strings.Contains(msgs[0], "needs an analyzer name and a reason") {
		t.Fatalf("got %q, want one malformed-directive diagnostic", msgs)
	}
}

// A suppression for analyzer A must not silence analyzer B.
func TestAllowIsPerAnalyzer(t *testing.T) {
	src := `package x

import "sync/atomic"

type c struct{ n atomic.Uint64 }

func f(v *c) {
	x := v.n //lint:allow durasync wrong analyzer named here
	_ = x
}
`
	msgs := checkSrc(t, analysis.Atomicfield, src)
	if len(msgs) != 1 {
		t.Fatalf("want the atomicfield diagnostic to survive a durasync allow, got %q", msgs)
	}
}
