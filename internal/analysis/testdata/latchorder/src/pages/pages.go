// Package pages mocks the pool's lock stripes for the latchorder tests.
package pages

import "sync"

type Frame struct{}

type shard struct {
	mu sync.Mutex
}

type BufferPool struct {
	shards []shard
}

func (bp *BufferPool) Fetch(id uint64) (*Frame, error) { return &Frame{}, nil }
func (bp *BufferPool) Unpin(f *Frame, dirty bool)      {}

func (bp *BufferPool) lockShard(s *shard) {
	s.mu.Lock()
	s.mu.Unlock()
}

// bad: re-entering the stripe level while a stripe is held self-deadlocks.
func (bp *BufferPool) badNested(s *shard) {
	s.mu.Lock()
	bp.lockShard(s) // want `call may acquire pool shard\.mu while pool shard\.mu is held`
	s.mu.Unlock()
}

// good: strictly sequential stripe use.
func (bp *BufferPool) goodSequential(a, b *shard) {
	a.mu.Lock()
	a.mu.Unlock()
	b.mu.Lock()
	b.mu.Unlock()
}
