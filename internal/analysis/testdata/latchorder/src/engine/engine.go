// Package engine mocks the engine's lock hierarchy: DB.writeMu (0) →
// DB.mu (1) → Table.metaMu (2) → pool stripe (3). Level 2 was the
// table reader latch before snapshot reads replaced it; the slot now
// belongs to the catalog-version mutex.
package engine

import (
	"sync"

	"pages"
)

type DB struct {
	mu      sync.RWMutex
	writeMu sync.Mutex
	tables  map[string]*Table
}

type Tx struct {
	db *DB
}

func (db *DB) Begin() (*Tx, error) {
	db.writeMu.Lock()
	return &Tx{db: db}, nil
}

func (tx *Tx) Close() error {
	tx.db.writeMu.Unlock()
	return nil
}

type Table struct {
	metaMu sync.Mutex
	bp     *pages.BufferPool
}

func (t *Table) InsertTx(tx *Tx, v int) error {
	t.metaMu.Lock()
	defer t.metaMu.Unlock()
	return nil
}

// good: the documented descent order.
func goodOrder(db *DB, t *Table) {
	db.writeMu.Lock()
	db.mu.RLock()
	t.metaMu.Lock()
	t.metaMu.Unlock()
	db.mu.RUnlock()
	db.writeMu.Unlock()
}

// bad: catalog lock taken above the table's version mutex.
func badOrder(db *DB, t *Table) {
	t.metaMu.Lock()
	db.mu.RLock() // want `acquiring db\.mu while holding table\.metaMu violates the latch order`
	db.mu.RUnlock()
	t.metaMu.Unlock()
}

func lockCatalog(db *DB) {
	db.mu.Lock()
	db.mu.Unlock()
}

// bad: the same inversion hidden behind an intra-package call.
func badTransitive(db *DB, t *Table) {
	t.metaMu.Lock()
	lockCatalog(db) // want `call may acquire db\.mu while table\.metaMu is held`
	t.metaMu.Unlock()
}

// good: holding the version mutex while descending into the pool is the
// documented order (level 2 → level 3).
func goodDescend(t *Table) error {
	t.metaMu.Lock()
	defer t.metaMu.Unlock()
	f, err := t.bp.Fetch(1)
	if err != nil {
		return err
	}
	t.bp.Unpin(f, false)
	return nil
}

// bad: DML entry point called with no transaction in scope.
func badDML(t *Table) error {
	return t.InsertTx(nil, 1) // want `DML entry point InsertTx requires a write transaction`
}

// good: the transaction is obtained from Begin first.
func goodDML(db *DB, t *Table) error {
	tx, err := db.Begin()
	if err != nil {
		return err
	}
	defer tx.Close()
	return t.InsertTx(tx, 1)
}

// good: *Tx parameter marks the caller as transaction context.
func goodDMLParam(tx *Tx, t *Table) error {
	return t.InsertTx(tx, 1)
}

// good: *Tx receiver likewise.
func (tx *Tx) insertInto(t *Table) error {
	return t.InsertTx(tx, 1)
}

func suppressedOrder(db *DB, t *Table) {
	t.metaMu.Lock()
	db.mu.RLock() //lint:allow latchorder deliberate inversion exercised by this fixture
	db.mu.RUnlock()
	t.metaMu.Unlock()
}
