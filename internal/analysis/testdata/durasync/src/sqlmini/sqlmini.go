// Package sqlmini mocks the executor's streaming result surface.
package sqlmini

type DB struct{}

func (db *DB) Query(q string) (*Rows, error) { return &Rows{}, nil }

type Rows struct{}

func (r *Rows) Next() bool   { return false }
func (r *Rows) Err() error   { return nil }
func (r *Rows) Close() error { return nil }
