package a

import "sqlmini"

// Regression fixture for a real bug this suite caught on its first run
// over the repo: the executor's Exec helper (internal/sqlmini/exec.go)
// wrote `defer rows.Close()`, dropping the close error — but Rows.Close
// is what releases the scan's page pins and surfaces a failed early
// close, so its error must merge into the function result. cmd/sqlsh's
// printRows and three test helpers had the same shape.
func execLike(db *sqlmini.DB) error {
	rows, err := db.Query("SELECT 1")
	if err != nil {
		return err
	}
	defer rows.Close() // want `defer discards the error of Rows\.Close`
	for rows.Next() {
	}
	return rows.Err()
}

// the shape the executor uses after the fix.
func execFixed(db *sqlmini.DB) (err error) {
	rows, qerr := db.Query("SELECT 1")
	if qerr != nil {
		return qerr
	}
	defer func() {
		if cerr := rows.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	for rows.Next() {
	}
	return rows.Err()
}
