package a

import (
	"wal"
)

// discarding a durability error as a bare statement.
func bad(l *wal.Log) {
	l.Sync() // want `statement discards the error of Log\.Sync`
}

func badDefer(l *wal.Log) {
	defer l.Close() // want `defer discards the error of Log\.Close`
}

func badGo(l *wal.Log) {
	go l.Sync() // want `go statement discards the error of Log\.Sync`
}

func badCheckpoint(l *wal.Log) {
	l.Checkpoint(nil) // want `statement discards the error of Log\.Checkpoint`
}

// explicit discard is a deliberate, visible decision.
func okExplicit(l *wal.Log) {
	_, _ = l.Checkpoint(nil)
}

func okChecked(l *wal.Log) error {
	return l.Sync()
}

func okIf(l *wal.Log) {
	if err := l.Sync(); err != nil {
		panic(err)
	}
}

// the named-return merge is the preferred shape for deferred closes.
func okMerge(l *wal.Log) (err error) {
	defer func() {
		if cerr := l.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	return l.Sync()
}

func suppressedClose(l *wal.Log) {
	defer l.Close() //lint:allow durasync close error is reported by the caller in this fixture
}
