// Package wal mocks the write-ahead log's durability surface.
package wal

type LSN uint64

type Log struct{}

func (l *Log) Sync() error                            { return nil }
func (l *Log) Close() error                           { return nil }
func (l *Log) Checkpoint(payload []byte) (LSN, error) { return 0, nil }
