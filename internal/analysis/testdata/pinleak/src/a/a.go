package a

import "pages"

type holder struct{ f *pages.Frame }

// good: fetch, use, unpin on every path.
func good(bp *pages.BufferPool) error {
	f, err := bp.Fetch(1)
	if err != nil {
		return err
	}
	_ = f.Data()
	bp.Unpin(f, false)
	return nil
}

// the classic leak: an early return between Fetch and Unpin.
func leakEarlyReturn(bp *pages.BufferPool, bad bool) error {
	f, err := bp.Fetch(1)
	if err != nil {
		return err
	}
	if bad {
		return nil // want `return leaks the BufferPool\.Fetch pin`
	}
	bp.Unpin(f, false)
	return nil
}

// falling off the end of the function while pinned.
func leakFallThrough(bp *pages.BufferPool) {
	f, err := bp.Fetch(1) // want `pin is not released on the fall-through path`
	if err != nil {
		return
	}
	_ = f.Data()
}

// acquiring and dropping the result outright.
func leakDiscard(bp *pages.BufferPool) {
	bp.Fetch(1) // want `result of BufferPool\.Fetch is discarded`
}

func leakBlank(bp *pages.BufferPool) error {
	_, err := bp.NewPage() // want `result of BufferPool\.NewPage assigned to _`
	return err
}

// re-fetching into the same variable while the old pin is live.
func leakOverwrite(bp *pages.BufferPool) {
	f, err := bp.Fetch(1)
	if err != nil {
		return
	}
	f, err = bp.Fetch(2) // want `pin from line \d+ is overwritten while still held`
	if err != nil {
		return
	}
	bp.Unpin(f, false)
}

// escape: ownership moves to the caller inside a composite literal.
func escapeStruct(bp *pages.BufferPool) (*holder, error) {
	f, err := bp.Fetch(1)
	if err != nil {
		return nil, err
	}
	return &holder{f: f}, nil
}

// escape: the deferred unpin covers every exit.
func escapeDefer(bp *pages.BufferPool, n int) error {
	f, err := bp.Fetch(1)
	if err != nil {
		return err
	}
	defer bp.Unpin(f, false)
	if n > 0 {
		return nil
	}
	_ = f.Data()
	return nil
}

// escape: a helper takes the frame; responsibility transfers with it.
func escapeHelper(bp *pages.BufferPool) error {
	f, err := bp.Fetch(1)
	if err != nil {
		return err
	}
	consume(f)
	return nil
}

func consume(f *pages.Frame) {}

// the iterator rotation: unpin the old frame, fetch the next one, with
// the loop owning the live pin across iterations.
func rotate(bp *pages.BufferPool, n int) error {
	f, err := bp.Fetch(1)
	if err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		bp.Unpin(f, false)
		f, err = bp.Fetch(pages.PageID(i))
		if err != nil {
			return err
		}
	}
	bp.Unpin(f, false)
	return nil
}

// regression: reading a field through the blank identifier is a use,
// not an alias — the leak must still be reported. (A real miss: the
// repo's acceptance scratch `_ = f.Page; return nil` sailed through
// the first implementation because `_ = ...` was treated as an
// aliasing assignment and exempted the acquisition.)
func leakBlankFieldRead(bp *pages.BufferPool) error {
	f, err := bp.Fetch(3)
	if err != nil {
		return err
	}
	_ = f.ID
	return nil // want `return leaks the BufferPool\.Fetch pin`
}

// a documented intentional hold is silenced by the allow comment.
func suppressed(bp *pages.BufferPool) {
	f, _ := bp.Fetch(1) //lint:allow pinleak frame is intentionally held for the pool's lifetime in this fixture
	_ = f.Data()
}
