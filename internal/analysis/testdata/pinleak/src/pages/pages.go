// Package pages mocks the real buffer pool's shape: just enough surface
// (types, method names, signatures) for the type-matched analyzers to
// trigger on the short import path "pages".
package pages

type PageID uint64

type Frame struct{ ID PageID }

func (f *Frame) Data() []byte { return nil }

type BufferPool struct{}

func (bp *BufferPool) Fetch(id PageID) (*Frame, error) { return &Frame{ID: id}, nil }
func (bp *BufferPool) NewPage() (*Frame, error)        { return &Frame{}, nil }
func (bp *BufferPool) Unpin(f *Frame, dirty bool)      {}
