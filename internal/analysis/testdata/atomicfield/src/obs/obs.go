// Package obs mocks the real internal/obs metric handles: counters and
// gauges embedding sync/atomic values, registered by pointer. Copying
// one by value detaches it from its registered series.
package obs

import "sync/atomic"

type Counter struct {
	atomic.Uint64
}

func (c *Counter) Inc() { c.Add(1) }

type Gauge struct {
	atomic.Int64
}

func (g *Gauge) Inc() { g.Add(1) }
func (g *Gauge) Dec() { g.Add(-1) }

type Histogram struct {
	buckets [4]Counter
	count   Counter
}

func (h *Histogram) Observe(ns int64) {
	h.buckets[0].Inc()
	h.count.Inc()
}

func (h *Histogram) Count() uint64 { return h.count.Load() }

type Registry struct{}

func (r *Registry) Attach(name string, c *Counter)            {}
func (r *Registry) AttachGauge(name string, g *Gauge)         {}
func (r *Registry) AttachHistogram(name string, h *Histogram) {}
