package a

import "sync/atomic"

type counters struct {
	hits atomic.Uint64
	//lint:atomic guarded by convention; accessed via atomic.AddUint64/LoadUint64
	legacy uint64
	plain  int
}

// Rule A: a sync/atomic-typed field must not be copied by value.
func badCopy(c *counters) {
	x := c.hits // want `atomic type .* copied by value`
	_ = x
}

func badCompare(c *counters) bool {
	return c.hits == c.hits // want `copied by value` `copied by value`
}

func goodLoad(c *counters) uint64 { return c.hits.Load() }

func goodAdd(c *counters) { c.hits.Add(1) }

func goodAddr(c *counters) *atomic.Uint64 { return &c.hits }

// Rule B: //lint:atomic plain fields only via sync/atomic.
func badLegacyRead(c *counters) uint64 {
	return c.legacy // want `accessed non-atomically`
}

func badLegacyWrite(c *counters) {
	c.legacy = 1 // want `accessed non-atomically`
}

func badLegacyAddr(c *counters) *uint64 {
	return &c.legacy // want `escapes outside sync/atomic`
}

func goodLegacy(c *counters) uint64 {
	atomic.AddUint64(&c.legacy, 1)
	return atomic.LoadUint64(&c.legacy)
}

// unannotated plain fields are unconstrained.
func goodPlain(c *counters) int {
	c.plain++
	return c.plain
}

func suppressedRead(c *counters) uint64 {
	return c.legacy //lint:allow atomicfield single-threaded startup path in this fixture
}
