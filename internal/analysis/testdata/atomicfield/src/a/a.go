package a

import (
	"sync/atomic"

	"obs"
)

type counters struct {
	hits atomic.Uint64
	//lint:atomic guarded by convention; accessed via atomic.AddUint64/LoadUint64
	legacy uint64
	plain  int
}

// Rule A: a sync/atomic-typed field must not be copied by value.
func badCopy(c *counters) {
	x := c.hits // want `atomic type .* copied by value`
	_ = x
}

func badCompare(c *counters) bool {
	return c.hits == c.hits // want `copied by value` `copied by value`
}

func goodLoad(c *counters) uint64 { return c.hits.Load() }

func goodAdd(c *counters) { c.hits.Add(1) }

func goodAddr(c *counters) *atomic.Uint64 { return &c.hits }

// Rule B: //lint:atomic plain fields only via sync/atomic.
func badLegacyRead(c *counters) uint64 {
	return c.legacy // want `accessed non-atomically`
}

func badLegacyWrite(c *counters) {
	c.legacy = 1 // want `accessed non-atomically`
}

func badLegacyAddr(c *counters) *uint64 {
	return &c.legacy // want `escapes outside sync/atomic`
}

func goodLegacy(c *counters) uint64 {
	atomic.AddUint64(&c.legacy, 1)
	return atomic.LoadUint64(&c.legacy)
}

// unannotated plain fields are unconstrained.
func goodPlain(c *counters) int {
	c.plain++
	return c.plain
}

func suppressedRead(c *counters) uint64 {
	return c.legacy //lint:allow atomicfield single-threaded startup path in this fixture
}

// obs handle misuse: the registry holds a pointer to each handle, so a
// value copy silently forks the counter away from its series.
type obsMetrics struct {
	scans obs.Counter
	open  obs.Gauge
	lat   obs.Histogram
}

func badObsCounterCopy(m *obsMetrics) {
	c := m.scans // want `copied by value`
	_ = c
}

func badObsGaugeCopy(m *obsMetrics) obs.Gauge {
	return m.open // want `copied by value`
}

func badObsHistogramCopy(m *obsMetrics) {
	h := m.lat // want `copied by value`
	_ = h
}

func badObsCompare(m *obsMetrics) bool {
	return m.scans == m.scans // want `copied by value` `copied by value`
}

func goodObsUpdates(m *obsMetrics) uint64 {
	m.scans.Inc()
	m.open.Dec()
	m.lat.Observe(5)
	return m.scans.Load() + m.lat.Count()
}

func goodObsAttach(m *obsMetrics, r *obs.Registry) {
	r.Attach("scans", &m.scans)
	r.AttachGauge("open", &m.open)
	r.AttachHistogram("lat", &m.lat)
}

// Pointer handles copy freely: only value copies detach a handle from
// its registered series.
type obsPointers struct {
	lat *obs.Histogram
	cnt *obs.Counter
}

func goodObsPointerCopies(m *obsPointers) *obs.Histogram {
	c := m.cnt
	_ = c
	if m.lat != nil {
		m.lat.Observe(5)
	}
	return m.lat
}
