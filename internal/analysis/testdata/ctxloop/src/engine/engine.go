// Package engine mocks the cursor surface the executor drains.
package engine

type RowView struct{}

type Cursor struct{}

func (c *Cursor) Next() bool { return false }
func (c *Cursor) FillBatch(max int, fn func(key int64, row *RowView) error) (int, error) {
	return 0, nil
}
func (c *Cursor) Key() int64 { return 0 }
func (c *Cursor) Close()     {}
