// Package sqlmini mocks the executor's operator protocol; ctxloop only
// fires inside packages named sqlmini.
package sqlmini

import (
	"context"
	"sync/atomic"

	"engine"
)

type rowCtx struct{}

type operator interface {
	next() (*rowCtx, error)
}

func pollCancel(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

type filterOp struct {
	child operator
	ctx   context.Context
	stop  *atomic.Bool
}

// bad: drains the child without ever polling cancellation.
func (f *filterOp) drainNoPoll() (*rowCtx, error) {
	for { // want `advances a row/batch stream without polling cancellation`
		c, err := f.child.next()
		if c == nil || err != nil {
			return nil, err
		}
	}
}

// good: the pollCancel helper is checked each iteration.
func (f *filterOp) drainHelper() (*rowCtx, error) {
	for {
		if err := pollCancel(f.ctx); err != nil {
			return nil, err
		}
		c, err := f.child.next()
		if c == nil || err != nil {
			return nil, err
		}
	}
}

// good: direct ctx.Err poll.
func (f *filterOp) drainCtxErr() (*rowCtx, error) {
	for {
		if err := f.ctx.Err(); err != nil {
			return nil, err
		}
		c, err := f.child.next()
		if c == nil || err != nil {
			return nil, err
		}
	}
}

// good: the parallel workers' stop flag counts as a poll.
func (f *filterOp) drainStopFlag() (*rowCtx, error) {
	for {
		if f.stop.Load() {
			return nil, nil
		}
		c, err := f.child.next()
		if c == nil || err != nil {
			return nil, err
		}
	}
}

// bad: a cursor walk with the advance in the loop condition.
func drainCursor(cur *engine.Cursor) int64 {
	var last int64
	for cur.Next() { // want `advances a row/batch stream without polling cancellation`
		last = cur.Key()
	}
	return last
}

// good: cursor walk polling ctx.
func drainCursorPolled(ctx context.Context, cur *engine.Cursor) (int64, error) {
	var last int64
	for cur.Next() {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		last = cur.Key()
	}
	return last, nil
}

// loops that advance nothing are not the analyzer's business.
func plainLoop(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		total += i
	}
	return total
}

func suppressedDrain(f *filterOp) (*rowCtx, error) {
	//lint:allow ctxloop bounded two-row drain in this fixture
	for {
		c, err := f.child.next()
		if c == nil || err != nil {
			return nil, err
		}
	}
}
