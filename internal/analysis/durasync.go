package analysis

import (
	"go/ast"
)

// durable lists the methods whose error results guard durability or pin
// hygiene: discarding them can silently lose committed data (a Sync that
// failed), leak pins (a Rows.Close that failed mid-stream), or hide a torn
// checkpoint. Matching is (package path suffix, receiver type, method).
var durable = []struct {
	pkg, typ, method string
}{
	{"wal", "Log", "Sync"},
	{"wal", "Log", "Close"},
	{"wal", "Log", "Checkpoint"},
	{"pages", "BufferPool", "FlushAll"},
	{"pages", "BufferPool", "DropCleanBuffers"},
	{"engine", "DB", "Checkpoint"},
	{"engine", "DB", "SyncWAL"},
	{"engine", "DB", "Close"},
	{"engine", "Tx", "Commit"},
	{"engine", "Tx", "Close"},
	{"sqlmini", "Rows", "Close"},
	{"sqlarray", "Database", "Checkpoint"},
	{"sqlarray", "Database", "SyncWAL"},
	{"sqlarray", "Database", "Close"},
	{"os", "File", "Sync"},
}

// Durasync flags statements that discard the error result of a durability
// call: a bare expression statement, `defer x.Close()`, or `go x.Sync()`.
// An explicit `_ = x.Close()` is accepted as a deliberate discard; the
// preferred fix for defers is merging the error into a named return.
var Durasync = &Analyzer{
	Name: "durasync",
	Doc:  "durability-path errors (wal.Sync, FlushAll, Checkpoint, Close) must be checked, not discarded",
	Run:  runDurasync,
}

func runDurasync(p *Pass) error {
	check := func(expr ast.Expr, kind string) {
		call, ok := unparen(expr).(*ast.CallExpr)
		if !ok {
			return
		}
		recv, name, ok := calleeMethod(p.TypesInfo, call)
		if !ok {
			return
		}
		for _, d := range durable {
			if name == d.method && typeIs(recv, d.pkg, d.typ) {
				p.Reportf(call.Pos(), "%s discards the error of %s.%s; durability and pin-release failures must be checked (use a named-return merge for defers, or `_ =` to discard deliberately)",
					kind, d.typ, d.method)
				return
			}
		}
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.ExprStmt:
				check(s.X, "statement")
			case *ast.DeferStmt:
				check(s.Call, "defer")
			case *ast.GoStmt:
				check(s.Call, "go statement")
			}
			return true
		})
	}
	return nil
}
