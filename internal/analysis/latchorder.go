package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Latchorder proves the documented lock hierarchy
//
//	db.writeMu (0) → db.mu (1) → table.metaMu (2) → pool shard.mu (3) → leaves (4)
//
// (Level 2 used to be the table reader-writer latch; scans now ride
// buffer-pool snapshots, and the slot is held by the mutex guarding each
// table's committed catalog versions.)
//
// A function holding a level-L latch may only acquire latches at a
// strictly greater level. The analyzer classifies direct Lock/RLock calls
// on the known mutex fields, computes a per-function summary of all latch
// levels it may transitively acquire (intra-package call graph to a
// fixpoint, plus seeded summaries for the engine's external callees:
// buffer-pool, btree and blob operations all reach the pool stripes), and
// then walks each function lexically with the set of currently-held
// levels, reporting any call or Lock that can acquire a level ≤ one
// already held.
//
// It also enforces the write-transaction discipline: Table methods whose
// name ends in Tx (the DML entry points) mutate under WAL capture, so a
// caller must itself be in transaction context — have a *engine.Tx
// parameter or receiver, or have obtained one via db.Begin() earlier in
// the same function.
var Latchorder = &Analyzer{
	Name: "latchorder",
	Doc:  "lock acquisitions must follow db.writeMu → db.mu → table.metaMu → pool stripe; DML *Tx entry points require transaction context",
	Run:  runLatchorder,
}

// latch levels by (package suffix, struct type, field name).
var latchLevels = []struct {
	pkg, typ, field string
	level           int
}{
	{"engine", "DB", "writeMu", 0},
	{"engine", "DB", "mu", 1},
	{"engine", "Table", "metaMu", 2},
	{"pages", "shard", "mu", 3},
	{"pages", "Capture", "mu", 4},
	{"wal", "Log", "mu", 4},
}

var latchNames = map[int]string{
	0: "db.writeMu",
	1: "db.mu",
	2: "table.metaMu",
	3: "pool shard.mu",
	4: "leaf mutex (wal/capture)",
}

// external summaries: calls into these (pkg, type) pairs may acquire the
// listed levels, used when the callee's body is outside the package under
// analysis.
var externalAcquires = []struct {
	pkg, typ string
	levels   []int
}{
	{"pages", "BufferPool", []int{3}},
	{"pages", "Capture", []int{4}},
	{"btree", "Tree", []int{3}},
	{"btree", "Iterator", []int{3}},
	{"blob", "Store", []int{3}},
	{"blob", "View", []int{3}},
	{"blob", "RunsView", []int{3}},
	{"blob", "Stream", []int{3}},
	{"engine", "Table", []int{2, 3}},
	{"engine", "Snapshot", []int{2, 3}},
	{"engine", "Cursor", []int{3}},
	{"pages", "Snapshot", []int{3}},
	{"wal", "Log", []int{4}},
}

type levelSet uint8

func (s levelSet) has(l int) bool    { return s&(1<<uint(l)) != 0 }
func (s *levelSet) add(l int)        { *s |= 1 << uint(l) }
func (s *levelSet) union(o levelSet) { *s |= o }
func (s levelSet) min() int {
	for l := 0; l <= 4; l++ {
		if s.has(l) {
			return l
		}
	}
	return -1
}
func (s levelSet) maxHeld() int {
	for l := 4; l >= 0; l-- {
		if s.has(l) {
			return l
		}
	}
	return -1
}

// lockOp classifies one direct mutex operation.
type lockOp struct {
	level   int
	acquire bool // Lock/RLock vs Unlock/RUnlock
}

// classifyLockCall returns the lock op if call is mu.Lock() etc. on one of
// the known latch fields.
func classifyLockCall(info *types.Info, call *ast.CallExpr) (lockOp, bool) {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return lockOp{}, false
	}
	var acquire bool
	switch sel.Sel.Name {
	case "Lock", "RLock":
		acquire = true
	case "Unlock", "RUnlock":
		acquire = false
	default:
		return lockOp{}, false
	}
	// sel.X must be a selector for a known field: <expr>.mu
	fieldSel, ok := unparen(sel.X).(*ast.SelectorExpr)
	if !ok {
		return lockOp{}, false
	}
	fld := fieldOf(info, fieldSel)
	if fld == nil {
		return lockOp{}, false
	}
	owner := fieldOwner(info, fieldSel)
	for _, m := range latchLevels {
		if fld.Name() == m.field && owner != nil &&
			owner.Obj().Name() == m.typ && pkgPathMatches(owner.Obj().Pkg().Path(), m.pkg) {
			return lockOp{level: m.level, acquire: acquire}, true
		}
	}
	return lockOp{}, false
}

// fieldOwner returns the named struct type whose field a selector picks.
func fieldOwner(info *types.Info, sel *ast.SelectorExpr) *types.Named {
	tv, ok := info.Types[sel.X]
	if !ok || tv.Type == nil {
		return nil
	}
	return namedOf(tv.Type)
}

// calleeLevels returns the latch levels a call may acquire, using the
// intra-package summary when available and the external table otherwise.
func calleeLevels(info *types.Info, call *ast.CallExpr, summaries map[*types.Func]levelSet) levelSet {
	var out levelSet
	// Same-package (or any summarized) function?
	if fn := calledFunc(info, call); fn != nil {
		if s, ok := summaries[fn]; ok {
			return s
		}
	}
	if recv, _, ok := calleeMethod(info, call); ok {
		for _, e := range externalAcquires {
			if typeIs(recv, e.pkg, e.typ) {
				for _, l := range e.levels {
					out.add(l)
				}
				return out
			}
		}
	}
	return out
}

// calledFunc resolves a call to its *types.Func, if statically known.
func calledFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

func runLatchorder(p *Pass) error {
	info := p.TypesInfo

	// Pass 1: direct acquisitions per function declaration.
	type fnDecl struct {
		fn   *types.Func
		decl *ast.FuncDecl
	}
	var fns []fnDecl
	for _, f := range p.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if fn := funcDeclObj(info, fd); fn != nil {
					fns = append(fns, fnDecl{fn, fd})
				}
			}
		}
	}

	summaries := map[*types.Func]levelSet{}
	direct := func(fd *ast.FuncDecl) levelSet {
		var s levelSet
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if op, ok := classifyLockCall(info, call); ok && op.acquire {
					s.add(op.level)
				}
			}
			return true
		})
		return s
	}
	for _, fd := range fns {
		summaries[fd.fn] = direct(fd.decl)
	}

	// Fixpoint over the intra-package call graph.
	for changed := true; changed; {
		changed = false
		for _, fd := range fns {
			s := summaries[fd.fn]
			before := s
			ast.Inspect(fd.decl.Body, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					s.union(calleeLevels(info, call, summaries))
				}
				return true
			})
			if s != before {
				summaries[fd.fn] = s
				changed = true
			}
		}
	}

	// Pass 2: lexical held-set walk per function.
	for _, fd := range fns {
		walkLatches(p, fd.decl, summaries)
		checkTxDiscipline(p, fd.decl)
	}
	return nil
}

// walkLatches tracks the held set lexically through a function body:
// Lock adds, Unlock removes, `defer mu.Unlock()` keeps the latch held to
// the end. Calls are checked against their transitive summary.
func walkLatches(p *Pass, fd *ast.FuncDecl, summaries map[*types.Func]levelSet) {
	info := p.TypesInfo
	var held levelSet

	check := func(call *ast.CallExpr) {
		maxHeld := held.maxHeld()
		if maxHeld < 0 {
			return
		}
		if op, ok := classifyLockCall(info, call); ok {
			if op.acquire && op.level <= maxHeld {
				p.Reportf(call.Pos(), "acquiring %s while holding %s violates the latch order (writeMu → db.mu → table.metaMu → pool stripe)",
					latchNames[op.level], latchNames[maxHeld])
			}
			return
		}
		lv := calleeLevels(info, call, summaries)
		if lv == 0 {
			return
		}
		if m := lv.min(); m >= 0 && m <= maxHeld {
			p.Reportf(call.Pos(), "call may acquire %s while %s is held, violating the latch order",
				latchNames[m], latchNames[maxHeld])
		}
	}

	walkInner(p, fd.Body, &held, summaries, check)
}

// walkInner is the sequential statement walk, shared with closures.
func walkInner(p *Pass, body *ast.BlockStmt, held *levelSet, summaries map[*types.Func]levelSet, check func(*ast.CallExpr)) {
	info := p.TypesInfo
	var doStmt func(s ast.Stmt)
	doExpr := func(e ast.Node) {
		if e == nil {
			return
		}
		ast.Inspect(e, func(m ast.Node) bool {
			switch t := m.(type) {
			case *ast.FuncLit:
				var inner levelSet
				walkInner(p, t.Body, &inner, summaries, check)
				return false
			case *ast.CallExpr:
				check(t)
				if op, ok := classifyLockCall(info, t); ok {
					if op.acquire {
						held.add(op.level)
					} else {
						*held &^= 1 << uint(op.level)
					}
				}
			}
			return true
		})
	}
	doStmt = func(s ast.Stmt) {
		switch t := s.(type) {
		case *ast.DeferStmt:
			// defer mu.Unlock() → latch stays held to function end: no
			// change to the held set. defer mu.Lock() is nonsense; any
			// other deferred call is checked with an empty held set at
			// exit — skip.
			if op, ok := classifyLockCall(info, t.Call); ok && !op.acquire {
				return
			}
			// A deferred call runs at function exit, after the lexical
			// unlocks; analyze it against an empty held set.
			saved := *held
			*held = 0
			doExpr(t.Call)
			*held = saved
		case *ast.BlockStmt:
			for _, st := range t.List {
				doStmt(st)
			}
		case *ast.IfStmt:
			if t.Init != nil {
				doStmt(t.Init)
			}
			doExpr(t.Cond)
			saved := *held
			doStmt(t.Body)
			*held = saved
			if t.Else != nil {
				doStmt(t.Else)
				*held = saved
			}
		case *ast.ForStmt:
			if t.Init != nil {
				doStmt(t.Init)
			}
			doExpr(t.Cond)
			saved := *held
			doStmt(t.Body)
			*held = saved
		case *ast.RangeStmt:
			doExpr(t.X)
			saved := *held
			doStmt(t.Body)
			*held = saved
		case *ast.SwitchStmt:
			if t.Init != nil {
				doStmt(t.Init)
			}
			doExpr(t.Tag)
			saved := *held
			for _, c := range t.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					for _, st := range cc.Body {
						doStmt(st)
					}
					*held = saved
				}
			}
		case *ast.LabeledStmt:
			doStmt(t.Stmt)
		default:
			doExpr(s)
		}
	}
	for _, s := range body.List {
		doStmt(s)
	}
}

// checkTxDiscipline: any call to a Table method ending in "Tx" must be in
// transaction context.
func checkTxDiscipline(p *Pass, fd *ast.FuncDecl) {
	info := p.TypesInfo

	inTxCtx := false
	// (a) *Tx receiver or parameter.
	check := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			if tv, ok := info.Types[f.Type]; ok && tv.Type != nil && typeIs(tv.Type, "engine", "Tx") {
				inTxCtx = true
			}
		}
	}
	check(fd.Recv)
	check(fd.Type.Params)
	if inTxCtx {
		return
	}

	// (b) a Begin() call anywhere before the Tx call (lexically).
	var beginPos = token.NoPos
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if _, name, ok := calleeMethod(info, call); ok && name == "Begin" {
			if beginPos == token.NoPos || call.Pos() < beginPos {
				beginPos = call.Pos()
			}
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		recv, name, ok := calleeMethod(info, call)
		if !ok || !strings.HasSuffix(name, "Tx") || name == "Tx" {
			return true
		}
		if !typeIs(recv, "engine", "Table") {
			return true
		}
		if beginPos != token.NoPos && beginPos < call.Pos() {
			return true
		}
		p.Reportf(call.Pos(), "DML entry point %s requires a write transaction: call it with a *Tx from db.Begin() (or from a *Tx method)", name)
		return true
	})
}
