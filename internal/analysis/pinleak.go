package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Pinleak verifies the engine's pin discipline: every buffer-pool or
// pinned-view acquisition must reach a release on all return paths,
// including error paths, unless the value escapes into a documented owner
// (returned to the caller, stored in a struct like Cursor or BlobPins,
// captured by a defer).
//
// The acquisition table below is matched by (package suffix, receiver
// type, method). For each local acquisition `v, err := acquire(...)` the
// analyzer walks the statements that follow, path-sensitively:
//
//   - a call taking v as an argument, or a Release/Close/Unpin method on
//     v, releases it (transfers responsibility);
//   - the then-branch of the first `if` testing the acquisition's fresh
//     err is the failure path, where v is nil and needs no release;
//   - a `return` reached while v is held is reported — this is exactly
//     the "early error return between Fetch and Unpin" leak class;
//   - falling off the end of the function while v is held is reported.
//
// Escapes make an acquisition exempt: v returned, stored into a field,
// slice or composite literal, aliased to another variable, address-taken,
// or referenced from a defer/go/closure (the defer IS the usual correct
// release). Loops are handled conservatively: a loop body that mentions v
// takes over responsibility (covering the iterator's unpin-then-refetch
// rotation), and an acquisition inside a loop body may rely on a release
// anywhere in that body.
var Pinleak = &Analyzer{
	Name: "pinleak",
	Doc:  "buffer-pool pins and pinned views must be released on every path or escape to a documented owner",
	Run:  runPinleak,
}

// acquisitions: methods that hand back a pinned resource.
var pinAcquire = []struct {
	pkg, typ, method string
}{
	{"pages", "BufferPool", "Fetch"},
	{"pages", "BufferPool", "NewPage"},
	{"blob", "Store", "View"},
	{"blob", "Store", "ReadRunsPinned"},
	{"engine", "Table", "ViewBlob"},
	{"engine", "Table", "ReadBlobRunsPinned"},
	{"engine", "Table", "Cursor"},
	{"engine", "Table", "CursorFrom"},
	{"engine", "Table", "CursorRange"},
	{"btree", "Tree", "Scan"},
	{"btree", "Tree", "ScanFrom"},
	{"btree", "Tree", "ScanRange"},
}

// releaseMethods are methods on the pinned value itself that release it.
var releaseMethods = map[string]bool{"Unpin": true, "Release": true, "Close": true}

func isPinAcquire(info *types.Info, call *ast.CallExpr) (string, bool) {
	recv, name, ok := calleeMethod(info, call)
	if !ok {
		return "", false
	}
	for _, a := range pinAcquire {
		if name == a.method && typeIs(recv, a.pkg, a.typ) {
			return a.typ + "." + a.method, true
		}
	}
	return "", false
}

func runPinleak(p *Pass) error {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			runPinleakFunc(p, fd)
		}
	}
	return nil
}

// oneAcq is one tracked acquisition within a function.
type oneAcq struct {
	label  string       // "BufferPool.Fetch"
	v      types.Object // the pinned value's object (nil if blank)
	errObj types.Object // the paired err object (nil if none / blank)
	pos    token.Pos
}

func runPinleakFunc(p *Pass, fd *ast.FuncDecl) {
	info := p.TypesInfo

	// Collect acquisitions and flag outright discards.
	var acqs []*oneAcq
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.ExprStmt:
			if call, ok := unparen(s.X).(*ast.CallExpr); ok {
				if label, ok := isPinAcquire(info, call); ok {
					p.Reportf(call.Pos(), "result of %s is discarded: the pin is acquired and immediately leaked", label)
				}
			}
		case *ast.AssignStmt:
			if len(s.Rhs) != 1 {
				return true
			}
			call, ok := unparen(s.Rhs[0]).(*ast.CallExpr)
			if !ok {
				return true
			}
			label, ok := isPinAcquire(info, call)
			if !ok {
				return true
			}
			a := &oneAcq{label: label, pos: call.Pos()}
			if len(s.Lhs) >= 1 {
				a.v = lhsObject(info, s.Lhs[0])
			}
			if len(s.Lhs) >= 2 {
				a.errObj = lhsObject(info, s.Lhs[1])
			}
			if a.v == nil {
				p.Reportf(call.Pos(), "result of %s assigned to _: the pin is acquired and immediately leaked", label)
				return true
			}
			acqs = append(acqs, a)
		}
		return true
	})

	for _, a := range acqs {
		checkAcquisition(p, fd, a)
	}
}

func lhsObject(info *types.Info, e ast.Expr) types.Object {
	id, ok := unparen(e).(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if o := info.Defs[id]; o != nil {
		return o
	}
	return info.Uses[id]
}

// usesObj reports whether n contains a direct identifier for obj.
func usesObj(info *types.Info, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// isIdentFor reports whether e IS obj (possibly parenthesized or &obj).
func isIdentFor(info *types.Info, e ast.Expr, obj types.Object) bool {
	e = unparen(e)
	if ue, ok := e.(*ast.UnaryExpr); ok && ue.Op == token.AND {
		e = unparen(ue.X)
	}
	id, ok := e.(*ast.Ident)
	return ok && info.Uses[id] == obj
}

// calleeName returns the bare name of a call's function or method.
func calleeName(fun ast.Expr) string {
	switch f := unparen(fun).(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		return f.Sel.Name
	}
	return ""
}

// escapes reports whether v's ownership leaves the straight-line scope
// anywhere in the function: returned, stored, aliased, address-taken,
// placed in a composite literal, passed to a non-release call (ownership
// transfer to BlobPins.add, a btree helper, ...), or referenced from
// defer/go/closure.
func escapes(info *types.Info, body *ast.BlockStmt, a *oneAcq) bool {
	esc := false
	ast.Inspect(body, func(n ast.Node) bool {
		if esc {
			return false
		}
		switch s := n.(type) {
		case *ast.CallExpr:
			if !releaseMethods[calleeName(s.Fun)] {
				for _, arg := range s.Args {
					if isIdentFor(info, arg, a.v) {
						esc = true
					}
				}
			}
		case *ast.ReturnStmt:
			for _, r := range s.Results {
				if usesObj(info, r, a.v) {
					esc = true
				}
			}
		case *ast.DeferStmt:
			if usesObj(info, s.Call, a.v) {
				esc = true // defer f.Release() — release on all exits
			}
		case *ast.GoStmt:
			if usesObj(info, s.Call, a.v) {
				esc = true
			}
		case *ast.FuncLit:
			if usesObj(info, s.Body, a.v) {
				esc = true
			}
			return false
		case *ast.CompositeLit:
			for _, el := range s.Elts {
				if usesObj(info, el, a.v) {
					esc = true
				}
			}
		case *ast.UnaryExpr:
			if s.Op == token.AND && isIdentFor(info, s.X, a.v) {
				esc = true
			}
		case *ast.SendStmt:
			if usesObj(info, s.Value, a.v) {
				esc = true
			}
		case *ast.AssignStmt:
			// v on the RHS of an assignment aliases or stores it —
			// unless the RHS is a call (v passed to a call is a release,
			// handled by the path walk) or every target is the blank
			// identifier (`_ = f.Page` reads v, it creates no alias).
			if allBlank(s.Lhs) {
				return true
			}
			for _, r := range s.Rhs {
				if _, isCall := unparen(r).(*ast.CallExpr); isCall {
					continue
				}
				if usesObj(info, r, a.v) {
					esc = true
				}
			}
		}
		return !esc
	})
	return esc
}

// allBlank reports whether every assignment target is the blank
// identifier.
func allBlank(lhs []ast.Expr) bool {
	for _, l := range lhs {
		id, ok := unparen(l).(*ast.Ident)
		if !ok || id.Name != "_" {
			return false
		}
	}
	return true
}

// releasesHere reports whether n contains a release of v: a call to a
// method named Unpin/Release/Close taking v as an argument (bp.Unpin(f))
// or as its receiver (view.Release()).
func releasesHere(info *types.Info, n ast.Node, a *oneAcq) bool {
	rel := false
	ast.Inspect(n, func(m ast.Node) bool {
		if rel {
			return false
		}
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		if !releaseMethods[calleeName(call.Fun)] {
			return true
		}
		for _, arg := range call.Args {
			if isIdentFor(info, arg, a.v) {
				rel = true
				return false
			}
		}
		if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
			if isIdentFor(info, sel.X, a.v) {
				rel = true
				return false
			}
		}
		return true
	})
	return rel
}

// pathState is the per-path abstract state of one acquisition.
type pathState struct {
	held     bool
	errFresh bool // a.errObj still holds the acquisition's error
}

// checkAcquisition walks the statements that follow the acquisition.
func checkAcquisition(p *Pass, fd *ast.FuncDecl, a *oneAcq) {
	if escapes(p.TypesInfo, fd.Body, a) {
		return
	}

	// Locate the chain of blocks from the function body down to the
	// statement containing the acquisition.
	path := enclosingPath(fd.Body, a.pos)
	if path == nil {
		return
	}

	st := pathState{held: true, errFresh: a.errObj != nil}

	// Walk outward: remainder of the innermost block, then the parent
	// block after the enclosing statement, and so on.
	for level := len(path) - 1; level >= 0; level-- {
		blk := path[level].block
		idx := path[level].index
		heldOut, terminated := walkStmts(p, a, blk.List[idx+1:], &st)
		if terminated {
			return
		}
		if !heldOut {
			return
		}
		// Fell off the end of this block while held. A loop body that
		// releases v somewhere (the unpin-then-refetch rotation) is fine.
		if path[level].loop != nil {
			if releasesHere(p.TypesInfo, path[level].loop, a) {
				return
			}
			p.Reportf(a.pos, "%s pin is still held at the end of a loop iteration with no release in the loop; the next iteration leaks it", a.label)
			return
		}
	}
	p.Reportf(a.pos, "%s pin is not released on the fall-through path; add the release or a defer", a.label)
}

type pathStep struct {
	block *ast.BlockStmt
	index int      // index in block.List of the stmt containing pos
	loop  ast.Node // non-nil if block is the body of a for/range
}

// enclosingPath returns the block chain containing pos, innermost last.
func enclosingPath(body *ast.BlockStmt, pos token.Pos) []pathStep {
	var path []pathStep
	var find func(blk *ast.BlockStmt, loop ast.Node) bool
	find = func(blk *ast.BlockStmt, loop ast.Node) bool {
		for i, s := range blk.List {
			if s.Pos() <= pos && pos < s.End() {
				path = append(path, pathStep{block: blk, index: i, loop: loop})
				// Descend if the statement itself holds blocks.
				switch t := s.(type) {
				case *ast.BlockStmt:
					return find(t, nil)
				case *ast.IfStmt:
					if t.Body.Pos() <= pos && pos < t.Body.End() {
						return find(t.Body, nil)
					}
					if eb, ok := t.Else.(*ast.BlockStmt); ok && eb != nil && eb.Pos() <= pos && pos < eb.End() {
						return find(eb, nil)
					}
				case *ast.ForStmt:
					if t.Body.Pos() <= pos && pos < t.Body.End() {
						return find(t.Body, t)
					}
				case *ast.RangeStmt:
					if t.Body.Pos() <= pos && pos < t.Body.End() {
						return find(t.Body, t)
					}
				}
				return true
			}
		}
		return false
	}
	if !find(body, nil) {
		return nil
	}
	return path
}

// walkStmts interprets a statement list under state st. It reports leaks
// at returns. Returns (held at end, path definitely terminated).
func walkStmts(p *Pass, a *oneAcq, stmts []ast.Stmt, st *pathState) (bool, bool) {
	info := p.TypesInfo
	for _, s := range stmts {
		if !st.held {
			return false, false
		}
		switch t := s.(type) {
		case *ast.ReturnStmt:
			if st.held {
				p.Reportf(t.Pos(), "return leaks the %s pin acquired at line %d; release it before returning (or on the error path)",
					a.label, p.Fset.Position(a.pos).Line)
			}
			return st.held, true

		case *ast.AssignStmt:
			// Reassigning v while held leaks the old pin — unless the
			// same statement's RHS released it (not expressible here) or
			// the old value was released before; path walk handles order.
			for _, l := range t.Lhs {
				if isIdentFor(info, l, a.v) && st.held {
					if !releasesHere(info, t, a) {
						p.Reportf(t.Pos(), "%s pin from line %d is overwritten while still held",
							a.label, p.Fset.Position(a.pos).Line)
					}
					return false, false // stop tracking the old value
				}
				if a.errObj != nil && isIdentFor(info, l, a.errObj) {
					st.errFresh = false
				}
			}
			if releasesHere(info, t, a) {
				st.held = false
			}

		case *ast.ExprStmt, *ast.DeclStmt, *ast.IncDecStmt, *ast.SendStmt:
			if releasesHere(info, s, a) {
				st.held = false
			}

		case *ast.DeferStmt, *ast.GoStmt:
			if releasesHere(info, s, a) {
				st.held = false
			}

		case *ast.BlockStmt:
			heldOut, term := walkStmts(p, a, t.List, st)
			if term {
				return heldOut, true
			}
			st.held = heldOut

		case *ast.IfStmt:
			heldOut, term := walkIf(p, a, t, st)
			if term {
				return heldOut, true
			}
			st.held = heldOut

		case *ast.ForStmt, *ast.RangeStmt:
			// Loops are opaque: if the loop mentions v at all, it has
			// taken over responsibility for the pin.
			if usesObj(info, s, a.v) {
				st.held = false
			}

		case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			// Conservative: a release inside any case ends tracking
			// (pessimistic paths through switches are rare in this
			// codebase's pin code).
			if releasesHere(info, s, a) {
				st.held = false
			}

		case *ast.LabeledStmt:
			heldOut, term := walkStmts(p, a, []ast.Stmt{t.Stmt}, st)
			if term {
				return heldOut, true
			}
			st.held = heldOut

		case *ast.BranchStmt:
			// break/continue/goto: give up tracking this path.
			return st.held, true
		}
	}
	return st.held, false
}

// walkIf handles the error-guard special case and branch merging.
func walkIf(p *Pass, a *oneAcq, t *ast.IfStmt, st *pathState) (bool, bool) {
	info := p.TypesInfo

	// `if err != nil` testing the acquisition's fresh err: on that path
	// the acquisition failed and v is nil — walk the then-branch unheld.
	errGuard := st.errFresh && a.errObj != nil && usesObj(info, t.Cond, a.errObj)

	thenSt := pathState{held: st.held && !errGuard, errFresh: st.errFresh}
	thenHeld, thenTerm := walkStmts(p, a, t.Body.List, &thenSt)

	elseHeld, elseTerm := st.held, false
	switch eb := t.Else.(type) {
	case *ast.BlockStmt:
		elseSt := pathState{held: st.held, errFresh: st.errFresh}
		elseHeld, elseTerm = walkStmts(p, a, eb.List, &elseSt)
	case *ast.IfStmt:
		elseSt := pathState{held: st.held, errFresh: st.errFresh}
		elseHeld, elseTerm = walkIf(p, a, eb, &elseSt)
	case nil:
		// fall-through keeps current state
	}

	if thenTerm && elseTerm {
		return false, true
	}
	// Merge: held afterwards if any continuing branch still holds.
	held := false
	if !thenTerm && thenHeld {
		held = true
	}
	if !elseTerm && elseHeld {
		held = true
	}
	// After a successful errGuard if, err has been consumed.
	if errGuard {
		st.errFresh = false
	}
	return held, false
}
