// Package analyzertest is a minimal analogue of
// golang.org/x/tools/go/analysis/analysistest: it loads GOPATH-style
// fixture packages from a testdata directory, runs one analyzer over
// them, and matches the diagnostics against `// want "regexp"` comments
// in the fixture sources.
//
// Fixture layout: <testdata>/src/<importpath>/*.go. Fixture packages may
// import each other by those short paths ("pages", "engine"), which lets
// them mock just enough of the real engine's shape to trigger the
// type-matched analyzers; standard-library imports are type-checked from
// GOROOT source.
package analyzertest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"sqlarray/internal/analysis"
)

// loadedPkg is one type-checked fixture package.
type loadedPkg struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
}

// loader resolves imports first against <root>/src, then the standard
// library (compiled from GOROOT source, so no export data is needed).
type loader struct {
	fset *token.FileSet
	root string
	std  types.Importer
	pkgs map[string]*loadedPkg
}

func newLoader(fset *token.FileSet, root string) *loader {
	return &loader{
		fset: fset,
		root: root,
		std:  importer.ForCompiler(fset, "source", nil),
		pkgs: map[string]*loadedPkg{},
	}
}

func (l *loader) Import(path string) (*types.Package, error) {
	p, err := l.load(path)
	if err != nil {
		return nil, err
	}
	return p.pkg, nil
}

func (l *loader) load(path string) (*loadedPkg, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	dir := filepath.Join(l.root, "src", filepath.FromSlash(path))
	st, err := os.Stat(dir)
	if err != nil || !st.IsDir() {
		pkg, err := l.std.Import(path)
		if err != nil {
			return nil, fmt.Errorf("import %q: not in testdata and not stdlib: %v", path, err)
		}
		p := &loadedPkg{pkg: pkg}
		l.pkgs[path] = p
		return p, nil
	}

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	cfg := &types.Config{Importer: l}
	pkg, err := cfg.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typechecking fixture %q: %v", path, err)
	}
	p := &loadedPkg{pkg: pkg, files: files, info: info}
	l.pkgs[path] = p
	return p, nil
}

// want is one expectation extracted from a fixture comment.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

var wantRe = regexp.MustCompile("// want (.*)$")

// collectWants scans fixture files for `// want "re"` (or backquoted)
// comments; several patterns may follow one want.
func collectWants(fset *token.FileSet, files []*ast.File) ([]*want, error) {
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				rest := strings.TrimSpace(m[1])
				for rest != "" {
					var lit string
					var err error
					switch rest[0] {
					case '"':
						end := matchEnd(rest, '"')
						if end < 0 {
							return nil, fmt.Errorf("%s:%d: unterminated want pattern", pos.Filename, pos.Line)
						}
						lit, err = strconv.Unquote(rest[:end+1])
						rest = strings.TrimSpace(rest[end+1:])
					case '`':
						end := matchEnd(rest, '`')
						if end < 0 {
							return nil, fmt.Errorf("%s:%d: unterminated want pattern", pos.Filename, pos.Line)
						}
						lit = rest[1:end]
						rest = strings.TrimSpace(rest[end+1:])
					default:
						return nil, fmt.Errorf("%s:%d: malformed want comment %q", pos.Filename, pos.Line, c.Text)
					}
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want pattern: %v", pos.Filename, pos.Line, err)
					}
					re, err := regexp.Compile(lit)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want regexp: %v", pos.Filename, pos.Line, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re, raw: lit})
				}
			}
		}
	}
	return wants, nil
}

// matchEnd returns the index of the closing quote q in s (which starts
// with q), or -1. Escapes are honored for double quotes.
func matchEnd(s string, q byte) int {
	for i := 1; i < len(s); i++ {
		if s[i] == '\\' && q == '"' {
			i++
			continue
		}
		if s[i] == q {
			return i
		}
	}
	return -1
}

// Run loads each fixture package, runs a over it, and matches diagnostics
// against the fixtures' want comments. testdata defaults to
// "testdata/<analyzer-name>" relative to the caller's directory.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, paths ...string) {
	t.Helper()
	root, err := filepath.Abs(testdata)
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	l := newLoader(fset, root)

	for _, path := range paths {
		p, err := l.load(path)
		if err != nil {
			t.Fatalf("loading fixture %q: %v", path, err)
		}
		pass := analysis.NewPass(a, fset, p.files, p.pkg, p.info)
		if err := a.Run(pass); err != nil {
			t.Fatalf("analyzer %s on %q: %v", a.Name, path, err)
		}
		diags := pass.Diagnostics()

		wants, err := collectWants(fset, p.files)
		if err != nil {
			t.Fatal(err)
		}

		for _, d := range diags {
			pos := fset.Position(d.Pos)
			found := false
			for _, w := range wants {
				if w.matched || w.file != pos.Filename || w.line != pos.Line {
					continue
				}
				if w.re.MatchString(d.Message) {
					w.matched = true
					found = true
					break
				}
			}
			if !found {
				t.Errorf("%s:%d:%d: unexpected diagnostic: %s", pos.Filename, pos.Line, pos.Column, d.Message)
			}
		}
		var unmatched []*want
		for _, w := range wants {
			if !w.matched {
				unmatched = append(unmatched, w)
			}
		}
		sort.Slice(unmatched, func(i, j int) bool {
			if unmatched[i].file != unmatched[j].file {
				return unmatched[i].file < unmatched[j].file
			}
			return unmatched[i].line < unmatched[j].line
		})
		for _, w := range unmatched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.raw)
		}
	}
}
