package engine

import (
	"bytes"
	"math"
	"testing"

	"sqlarray/internal/core"
	"sqlarray/internal/pages"
	"sqlarray/internal/wal"
)

// compressibleArray builds a Max float64 array whose values are a small
// fluctuation on a large mean — the XOR-delta codec's favorable case —
// so the engine's default write path actually stores compressed chunks.
func compressibleArray(t *testing.T, n int, seed float64) *core.Array {
	t.Helper()
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = 1000.0 + math.Sin(float64(i)/37.0+seed)*1e-9
	}
	a, err := core.FromFloat64s(core.Max, core.Float64, vals, n)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// TestRecoverCompressedBlobByteExact is the compressed-format
// crash-recovery contract: commit compressed blob writes (including an
// in-place subarray patch over compressed chunks), tear a page during a
// checkpoint, crash, and recover — every payload must replay to
// byte-identical contents and the recovered blobs must still be in the
// compressed layout.
func TestRecoverCompressedBlobByteExact(t *testing.T) {
	mem := pages.NewMemDisk()
	fd := pages.NewFaultDisk(mem)
	st := wal.NewMemStorage()
	db := openDB(t, fd, st) // compression on by default
	tbl, err := db.CreateTable("t", walTestSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	const mCol = 2
	const elems = 16000 // 128 kB logical payload per row
	want := map[int64][]byte{}
	for i := int64(0); i < 6; i++ {
		a := compressibleArray(t, elems, float64(i))
		want[i] = append([]byte(nil), a.Bytes()...)
		if err := tbl.Insert([]Value{
			IntValue(i), FloatValue(float64(i)), BinaryMaxValue(a.Bytes()),
		}); err != nil {
			t.Fatal(err)
		}
	}
	bs := db.Blobs().Stats()
	if bs.CompressedBytesWritten == 0 {
		t.Fatal("test premise broken: inserts did not produce compressed chunks")
	}
	if bs.CompressedBytesWritten >= bs.BytesWritten {
		t.Fatalf("compressed %d >= logical %d; payload not compressible", bs.CompressedBytesWritten, bs.BytesWritten)
	}

	// Patch a compressed blob in place (WriteRuns over compressed chunks)
	// and mirror it into the expectation. The patch is incompressible
	// relative to the field, so re-encoded chunks may split.
	patchVals := []float64{math.Pi, -math.E, 1e300, -1e-300}
	patch, err := core.FromFloat64s(core.Short, core.Float64, patchVals, len(patchVals))
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.UpdateBlobSubarray(2, mCol, []int{8000}, []int{len(patchVals)}, patch); err != nil {
		t.Fatal(err)
	}
	hdr := int64(len(want[2])) - int64(elems*8)
	copy(want[2][hdr+8000*8:], patch.Bytes()[len(patch.Bytes())-len(patchVals)*8:])

	// Whole-blob overwrite of another row.
	a5 := compressibleArray(t, elems, 99)
	want[5] = append([]byte(nil), a5.Bytes()...)
	if err := tbl.Update(5, []int{mCol}, []Value{BinaryMaxValue(a5.Bytes())}); err != nil {
		t.Fatal(err)
	}

	// The checkpoint tears its 4th page write; recovery must reapply the
	// logged (prefix-compressed) after-images over the torn platter.
	fd.FailAfterWrites(3, true)
	if err := db.Checkpoint(); err == nil {
		t.Fatal("checkpoint survived an injected torn write")
	}
	if !fd.Fired() {
		t.Fatal("fault never fired")
	}
	st.Crash()
	fd.Heal()

	db2 := openDB(t, fd, st)
	tbl2, err := db2.Table("t")
	if err != nil {
		t.Fatal(err)
	}
	for key, payload := range want {
		vals, err := tbl2.Get(key)
		if err != nil {
			t.Fatalf("Get(%d): %v", key, err)
		}
		got, err := tbl2.FetchBlob(vals[mCol].B)
		if err != nil {
			t.Fatalf("FetchBlob(%d): %v", key, err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("row %d: recovered blob not byte-identical (%d vs %d bytes)", key, len(got), len(payload))
		}
	}
	// The recovered store still reads through the compressed path.
	db2.Blobs().ResetStats()
	vals, err := tbl2.Get(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tbl2.FetchBlob(vals[mCol].B); err != nil {
		t.Fatal(err)
	}
	if db2.Blobs().Stats().CompressedBytesRead == 0 {
		t.Error("recovered blob no longer reads as compressed")
	}
	verifyInvariants(t, db2, "t")
}

// TestCompressedWALVolumeShrinks asserts the log-volume half of the
// feature: committing the same compressible payload logs fewer framed
// bytes with compression on than off, because chunk after-images are
// prefix-logged at their stored (compressed) length.
func TestCompressedWALVolumeShrinks(t *testing.T) {
	run := func(disable bool) uint64 {
		st := wal.NewMemStorage()
		db, err := Open(Options{
			Disk: pages.NewMemDisk(), PoolPages: 512,
			WAL:                    openWAL(t, st),
			DisableBlobCompression: disable,
		})
		if err != nil {
			t.Fatal(err)
		}
		tbl, err := db.CreateTable("t", walTestSchema(t))
		if err != nil {
			t.Fatal(err)
		}
		w0 := db.WAL().Stats().BytesLogged
		for i := int64(0); i < 4; i++ {
			a := compressibleArray(t, 16000, float64(i))
			if err := tbl.Insert([]Value{IntValue(i), FloatValue(0), BinaryMaxValue(a.Bytes())}); err != nil {
				t.Fatal(err)
			}
		}
		return db.WAL().Stats().BytesLogged - w0
	}
	raw := run(true)
	comp := run(false)
	if comp >= raw {
		t.Fatalf("compressed WAL volume %d >= raw %d", comp, raw)
	}
	t.Logf("WAL bytes for 4 compressible inserts: raw=%d compressed=%d (%.1fx)", raw, comp, float64(raw)/float64(comp))
}
