package engine

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
)

func testSchema(t *testing.T) Schema {
	t.Helper()
	s, err := NewSchema(
		Column{"id", ColInt64},
		Column{"x", ColFloat64},
		Column{"v", ColVarBinary},
		Column{"big", ColVarBinaryMax},
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSchemaValidation(t *testing.T) {
	if _, err := NewSchema(); err == nil {
		t.Error("empty schema must fail")
	}
	if _, err := NewSchema(Column{"x", ColFloat64}); !errors.Is(err, ErrTypeError) {
		t.Errorf("non-BIGINT key: %v", err)
	}
	if _, err := NewSchema(Column{"id", ColInt64}, Column{"id", ColFloat64}); err == nil {
		t.Error("duplicate column must fail")
	}
	s := testSchema(t)
	if s.ColIndex("v") != 2 || s.ColIndex("nope") != -1 {
		t.Error("ColIndex wrong")
	}
}

func TestValueCoercions(t *testing.T) {
	if f, err := IntValue(3).AsFloat(); err != nil || f != 3 {
		t.Errorf("int->float: %g, %v", f, err)
	}
	if i, err := FloatValue(3.9).AsInt(); err != nil || i != 3 {
		t.Errorf("float->int: %d, %v", i, err)
	}
	if _, err := BinaryValue(nil).AsFloat(); !errors.Is(err, ErrTypeError) {
		t.Errorf("binary->float: %v", err)
	}
	if _, err := Null.AsFloat(); !errors.Is(err, ErrNullValue) {
		t.Errorf("null->float: %v", err)
	}
	if b, err := BinaryValue([]byte{1}).AsBinary(); err != nil || len(b) != 1 {
		t.Errorf("binary: %v, %v", b, err)
	}
	if !Null.IsNull() || IntValue(0).IsNull() {
		t.Error("null detection wrong")
	}
	for _, v := range []Value{Null, IntValue(5), FloatValue(2.5), BinaryValue([]byte{1, 2})} {
		if v.String() == "" {
			t.Error("empty String()")
		}
	}
}

func TestRowEncodeDecodeRoundtrip(t *testing.T) {
	s := testSchema(t)
	// big column holds an encoded ref in real rows; fake one here (12 bytes).
	vals := []Value{
		IntValue(42),
		FloatValue(3.25),
		BinaryValue([]byte{9, 8, 7}),
		BinaryMaxValue(make([]byte, 12)),
	}
	raw, err := encodeRow(&s, vals)
	if err != nil {
		t.Fatal(err)
	}
	var rv RowView
	rv.reset(&s, raw)
	if v, err := rv.Col(0); err != nil || v.I != 42 {
		t.Errorf("col 0 = %v, %v", v, err)
	}
	if v, err := rv.Col(1); err != nil || v.F != 3.25 {
		t.Errorf("col 1 = %v, %v", v, err)
	}
	if v, err := rv.Col(2); err != nil || !bytes.Equal(v.B, []byte{9, 8, 7}) {
		t.Errorf("col 2 = %v, %v", v, err)
	}
	if v, err := rv.Col(3); err != nil || len(v.B) != 12 {
		t.Errorf("col 3 = %v, %v", v, err)
	}
	if _, err := rv.Col(7); !errors.Is(err, ErrNoColumn) {
		t.Errorf("bad col: %v", err)
	}
	// Out-of-order access must work (offsets computed on demand).
	rv.reset(&s, raw)
	if v, err := rv.Col(2); err != nil || len(v.B) != 3 {
		t.Errorf("direct col 2 = %v, %v", v, err)
	}
}

func TestRowNulls(t *testing.T) {
	s := testSchema(t)
	vals := []Value{IntValue(1), Null, Null, Null}
	raw, err := encodeRow(&s, vals)
	if err != nil {
		t.Fatal(err)
	}
	var rv RowView
	rv.reset(&s, raw)
	for i := 1; i < 4; i++ {
		v, err := rv.Col(i)
		if err != nil || !v.IsNull() {
			t.Errorf("col %d = %v, %v; want NULL", i, v, err)
		}
	}
}

func TestRowEncodeErrors(t *testing.T) {
	s := testSchema(t)
	if _, err := encodeRow(&s, []Value{IntValue(1)}); !errors.Is(err, ErrTypeError) {
		t.Errorf("arity: %v", err)
	}
	tooBig := make([]byte, 8001)
	if _, err := encodeRow(&s, []Value{IntValue(1), Null, BinaryValue(tooBig), Null}); !errors.Is(err, ErrTypeError) {
		t.Errorf("oversized VARBINARY: %v", err)
	}
	if _, err := encodeRow(&s, []Value{IntValue(1), BinaryValue([]byte{1}), Null, Null}); !errors.Is(err, ErrTypeError) {
		t.Errorf("binary in float column: %v", err)
	}
	if _, err := encodeRow(&s, []Value{IntValue(1), Null, Null, BinaryMaxValue([]byte{1})}); !errors.Is(err, ErrTypeError) {
		t.Errorf("non-ref in MAX column: %v", err)
	}
}

func TestTableInsertGetScan(t *testing.T) {
	db := NewMemDB()
	tbl, err := db.CreateTable("t", testSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	big := make([]byte, 20000)
	for i := range big {
		big[i] = byte(i)
	}
	for i := int64(0); i < 100; i++ {
		err := tbl.Insert([]Value{
			IntValue(i),
			FloatValue(float64(i) / 2),
			BinaryValue([]byte{byte(i)}),
			BinaryMaxValue(big),
		})
		if err != nil {
			t.Fatalf("Insert %d: %v", i, err)
		}
	}
	if tbl.Rows() != 100 {
		t.Errorf("Rows = %d", tbl.Rows())
	}
	// Point lookup.
	row, err := tbl.Get(42)
	if err != nil {
		t.Fatal(err)
	}
	if row[1].F != 21 {
		t.Errorf("x = %v", row[1])
	}
	// The MAX column decodes to a ref; materialize it.
	got, err := tbl.FetchBlob(row[3].B)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, big) {
		t.Error("blob roundtrip mismatch")
	}
	// Scan in key order.
	var keys []int64
	sum := 0.0
	err = tbl.Scan(func(key int64, rv *RowView) (bool, error) {
		keys = append(keys, key)
		v, err := rv.Col(1)
		if err != nil {
			return false, err
		}
		sum += v.F
		return true, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 100 || keys[0] != 0 || keys[99] != 99 {
		t.Errorf("scan keys wrong: %d keys", len(keys))
	}
	if sum != 99.0*100/4 {
		t.Errorf("scan sum = %g", sum)
	}
	// Early stop.
	n := 0
	err = tbl.Scan(func(int64, *RowView) (bool, error) { n++; return n < 10, nil })
	if err != nil || n != 10 {
		t.Errorf("early stop: n=%d, %v", n, err)
	}
}

func TestTableBlobStream(t *testing.T) {
	db := NewMemDB()
	tbl, err := db.CreateTable("t", testSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 50000)
	rng := rand.New(rand.NewSource(8))
	rng.Read(data)
	if err := tbl.Insert([]Value{IntValue(1), Null, Null, BinaryMaxValue(data)}); err != nil {
		t.Fatal(err)
	}
	row, err := tbl.Get(1)
	if err != nil {
		t.Fatal(err)
	}
	st, err := tbl.OpenBlob(row[3].B)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 100)
	if _, err := st.ReadAt(buf, 30000); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, data[30000:30100]) {
		t.Error("stream partial read mismatch")
	}
}

func TestDBCatalog(t *testing.T) {
	db := NewMemDB()
	if _, err := db.Table("missing"); !errors.Is(err, ErrNoTable) {
		t.Errorf("missing table: %v", err)
	}
	s := testSchema(t)
	if _, err := db.CreateTable("t", s); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateTable("t", s); !errors.Is(err, ErrTableExists) {
		t.Errorf("duplicate table: %v", err)
	}
	tbl, err := db.Table("t")
	if err != nil || tbl.Name() != "t" {
		t.Errorf("lookup: %v, %v", tbl, err)
	}
}

func TestTableStats(t *testing.T) {
	db := NewMemDB()
	tbl, _ := db.CreateTable("t", testSchema(t))
	for i := int64(0); i < 1000; i++ {
		if err := tbl.Insert([]Value{IntValue(i), FloatValue(1), BinaryValue(make([]byte, 40)), Null}); err != nil {
			t.Fatal(err)
		}
	}
	st, err := tbl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Rows != 1000 || st.LeafPages < 5 || st.RowBytes <= 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestUDFBoundary(t *testing.T) {
	r := NewFuncRegistry()
	r.Register("dbo.AddOne", 1, func(args []Value) (Value, error) {
		f, err := args[0].AsFloat()
		if err != nil {
			return Null, err
		}
		return FloatValue(f + 1), nil
	})
	def, err := r.Lookup("DBO.addone") // case-insensitive
	if err != nil {
		t.Fatal(err)
	}
	out, err := r.Call(def, []Value{FloatValue(41)})
	if err != nil || out.F != 42 {
		t.Errorf("call = %v, %v", out, err)
	}
	// Arity enforcement.
	if _, err := r.Call(def, []Value{FloatValue(1), FloatValue(2)}); err == nil {
		t.Error("arity violation must fail")
	}
	if _, err := r.Lookup("nope"); !errors.Is(err, ErrNoFunc) {
		t.Errorf("missing func: %v", err)
	}
	st := r.Stats()
	if st.Calls != 1 || st.BytesMarshaled == 0 {
		t.Errorf("stats = %+v", st)
	}
	r.ResetStats()
	if r.Stats().Calls != 0 {
		t.Error("ResetStats failed")
	}
	if len(r.Names()) != 1 {
		t.Errorf("Names = %v", r.Names())
	}
}

func TestUDFBoundaryBinaryArgs(t *testing.T) {
	r := NewFuncRegistry()
	r.Register("dbo.len", -1, func(args []Value) (Value, error) {
		b, err := args[0].AsBinary()
		if err != nil {
			return Null, err
		}
		return IntValue(int64(len(b))), nil
	})
	payload := make([]byte, 4096)
	out, err := r.CallByName("dbo.len", []Value{BinaryValue(payload)})
	if err != nil || out.I != 4096 {
		t.Fatalf("call = %v, %v", out, err)
	}
	// Marshaling must have copied the payload across (arg + result).
	if r.Stats().BytesMarshaled < 4096 {
		t.Errorf("BytesMarshaled = %d", r.Stats().BytesMarshaled)
	}
	// NULL argument passes through.
	out, err = r.CallByName("dbo.len", []Value{Null})
	if !errors.Is(err, ErrNullValue) {
		t.Errorf("null arg: %v, %v", out, err)
	}
}

// sumAgg is a float SUM aggregate with serializable state.
type sumAgg struct {
	sum float64
	n   int64
}

func (a *sumAgg) Init() { a.sum, a.n = 0, 0 }
func (a *sumAgg) Accumulate(v Value) error {
	f, err := v.AsFloat()
	if err != nil {
		return err
	}
	a.sum += f
	a.n++
	return nil
}
func (a *sumAgg) Terminate() (Value, error) { return FloatValue(a.sum), nil }
func (a *sumAgg) Serialize(dst []byte) []byte {
	var b [16]byte
	v := marshalValue(nil, FloatValue(a.sum))
	copy(b[:], v[1:])
	v = marshalValue(nil, IntValue(a.n))
	copy(b[8:], v[1:])
	return append(dst, b[:]...)
}
func (a *sumAgg) Deserialize(src []byte) error {
	if len(src) < 16 {
		return errors.New("short state")
	}
	v, _, err := unmarshalValue(append([]byte{byte(ColFloat64)}, src[:8]...))
	if err != nil {
		return err
	}
	a.sum = v.F
	v, _, err = unmarshalValue(append([]byte{byte(ColInt64)}, src[8:16]...))
	if err != nil {
		return err
	}
	a.n = v.I
	return nil
}

func TestUDAvsDirectAggregate(t *testing.T) {
	db := NewMemDB()
	s, _ := NewSchema(Column{"id", ColInt64}, Column{"x", ColFloat64})
	tbl, _ := db.CreateTable("t", s)
	want := 0.0
	for i := int64(0); i < 500; i++ {
		x := float64(i) * 1.5
		want += x
		if err := tbl.Insert([]Value{IntValue(i), FloatValue(x)}); err != nil {
			t.Fatal(err)
		}
	}
	var agg sumAgg
	out, st, err := RunAggregateUDA(tbl, 1, &agg)
	if err != nil {
		t.Fatal(err)
	}
	if out.F != want {
		t.Errorf("UDA sum = %g, want %g", out.F, want)
	}
	if st.Rows != 500 || st.StateBytesMoved != 500*32 {
		t.Errorf("UDA stats = %+v (state must round-trip per row)", st)
	}
	out2, st2, err := RunAggregateDirect(tbl, 1, &agg)
	if err != nil {
		t.Fatal(err)
	}
	if out2.F != want {
		t.Errorf("direct sum = %g", out2.F)
	}
	if st2.StateBytesMoved != 0 {
		t.Errorf("direct run must not serialize state: %+v", st2)
	}
}

func TestCursorStreamsRows(t *testing.T) {
	db := NewMemDB()
	s, err := NewSchema(
		Column{Name: "id", Type: ColInt64},
		Column{Name: "x", Type: ColFloat64},
	)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := db.CreateTable("t", s)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 300; i++ {
		if err := tbl.Insert([]Value{IntValue(i), FloatValue(float64(i) * 1.5)}); err != nil {
			t.Fatal(err)
		}
	}
	cur, err := tbl.Cursor()
	if err != nil {
		t.Fatal(err)
	}
	var n int64
	for cur.Next() {
		if cur.Key() != n {
			t.Fatalf("key %d out of order (want %d)", cur.Key(), n)
		}
		v, err := cur.Row().Col(1)
		if err != nil {
			t.Fatal(err)
		}
		if v.F != float64(n)*1.5 {
			t.Fatalf("row %d col x = %v", n, v)
		}
		n++
	}
	if err := cur.Err(); err != nil {
		t.Fatal(err)
	}
	cur.Close()
	if n != 300 {
		t.Errorf("cursor yielded %d rows, want 300", n)
	}
	if got := db.Pool().PinnedFrames(); got != 0 {
		t.Errorf("PinnedFrames after full cursor scan = %d", got)
	}
}

func TestCursorRangeAndEarlyClose(t *testing.T) {
	db := NewMemDB()
	s, _ := NewSchema(
		Column{Name: "id", Type: ColInt64},
		Column{Name: "x", Type: ColFloat64},
	)
	tbl, _ := db.CreateTable("t", s)
	for i := int64(0); i < 5000; i++ {
		if err := tbl.Insert([]Value{IntValue(i), FloatValue(float64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	// Range cursor yields exactly [lo, hi].
	cur, err := tbl.CursorRange(1000, 1009)
	if err != nil {
		t.Fatal(err)
	}
	var keys []int64
	for cur.Next() {
		keys = append(keys, cur.Key())
	}
	if err := cur.Err(); err != nil {
		t.Fatal(err)
	}
	cur.Close()
	if len(keys) != 10 || keys[0] != 1000 || keys[9] != 1009 {
		t.Errorf("range keys = %v", keys)
	}
	// Early Close (the TOP-n exit) releases all pins; the cache can be
	// dropped afterwards.
	cur, err = tbl.CursorFrom(2500)
	if err != nil {
		t.Fatal(err)
	}
	if !cur.Next() || cur.Key() != 2500 {
		t.Fatalf("CursorFrom(2500) first key = %d", cur.Key())
	}
	cur.Close()
	cur.Close() // idempotent
	if got := db.Pool().PinnedFrames(); got != 0 {
		t.Errorf("PinnedFrames after early Close = %d, want 0", got)
	}
	if err := db.DropCleanBuffers(); err != nil {
		t.Errorf("DropCleanBuffers after early Close: %v", err)
	}
}

func TestKeyBounds(t *testing.T) {
	db := NewMemDB()
	s, _ := NewSchema(Column{Name: "id", Type: ColInt64})
	tbl, _ := db.CreateTable("t", s)
	if _, _, ok, err := tbl.KeyBounds(); err != nil || ok {
		t.Fatalf("empty table KeyBounds: ok=%v err=%v", ok, err)
	}
	for _, k := range []int64{-5, 7, 1000, 3} {
		if err := tbl.Insert([]Value{IntValue(k)}); err != nil {
			t.Fatal(err)
		}
	}
	min, max, ok, err := tbl.KeyBounds()
	if err != nil || !ok {
		t.Fatal(err)
	}
	if min != -5 || max != 1000 {
		t.Errorf("KeyBounds = [%d, %d], want [-5, 1000]", min, max)
	}
}
