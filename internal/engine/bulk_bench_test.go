package engine

import (
	"testing"
	"time"

	"sqlarray/internal/pages"
	"sqlarray/internal/wal"
)

// benchDB opens a WAL-backed database sized like the test databases.
func benchDB(tb testing.TB) *DB {
	tb.Helper()
	l, err := wal.Open(wal.NewMemStorage(), wal.Options{})
	if err != nil {
		tb.Fatal(err)
	}
	db, err := Open(Options{Disk: pages.NewMemDisk(), PoolPages: 2048, WAL: l})
	if err != nil {
		tb.Fatal(err)
	}
	return db
}

func benchSchema(tb testing.TB) Schema {
	tb.Helper()
	s, err := NewSchema(
		Column{Name: "id", Type: ColInt64},
		Column{Name: "x", Type: ColFloat64},
		Column{Name: "y", Type: ColFloat64},
		Column{Name: "z", Type: ColFloat64},
	)
	if err != nil {
		tb.Fatal(err)
	}
	return s
}

func benchRows(n int) [][]Value {
	rows := make([][]Value, n)
	for i := range rows {
		f := float64(i)
		rows[i] = []Value{IntValue(int64(i)), FloatValue(f), FloatValue(f * 2), FloatValue(f * 3)}
	}
	return rows
}

// rowBytesOf sums the encoded size of the fixed-width bench rows for
// the MB/s metric (4 columns × 8 bytes plus the row header).
func rowBytesOf(tb testing.TB, schema *Schema, rows [][]Value) int64 {
	tb.Helper()
	var total int64
	enc, err := encodeRow(schema, rows[0])
	if err != nil {
		tb.Fatal(err)
	}
	total = int64(len(enc)) * int64(len(rows))
	return total
}

// BenchmarkBulkLoad compares the COPY path against the row-at-a-time
// INSERT loop it replaces: identical rows into a fresh WAL-backed table
// per iteration. The insert loop pays a full write session — begin, WAL
// commit record, group-commit sync, snapshot publish — per row; the
// bulk path stages everything and commits once.
func BenchmarkBulkLoad(b *testing.B) {
	const n = 10000
	rows := benchRows(n)
	schema := benchSchema(b)
	bytes := rowBytesOf(b, &schema, rows)

	b.Run("insert", func(b *testing.B) {
		b.SetBytes(bytes)
		for i := 0; i < b.N; i++ {
			db := benchDB(b)
			tbl, err := db.CreateTable("t", benchSchema(b))
			if err != nil {
				b.Fatal(err)
			}
			start := time.Now()
			b.StartTimer()
			for _, r := range rows {
				if err := tbl.Insert(r); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(n)/time.Since(start).Seconds(), "rows/s")
		}
	})
	b.Run("copy", func(b *testing.B) {
		b.SetBytes(bytes)
		for i := 0; i < b.N; i++ {
			db := benchDB(b)
			tbl, err := db.CreateTable("t", benchSchema(b))
			if err != nil {
				b.Fatal(err)
			}
			start := time.Now()
			b.StartTimer()
			if _, err := tbl.BulkLoad(NewValuesSource(rows), BulkOptions{}); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			b.ReportMetric(float64(n)/time.Since(start).Seconds(), "rows/s")
		}
	})
}

// TestBulkLoadSpeedup is the acceptance check behind BenchmarkBulkLoad:
// the COPY path must beat the row-at-a-time INSERT loop by at least an
// order of magnitude on identical data. Wall-clock ratios this large
// are stable even on noisy CI machines — the insert loop pays ~n write
// sessions of WAL and publish overhead that the bulk path pays once.
func TestBulkLoadSpeedup(t *testing.T) {
	const n = 5000
	rows := benchRows(n)

	db := benchDB(t)
	tbl, err := db.CreateTable("t", benchSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	for _, r := range rows {
		if err := tbl.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	insertDur := time.Since(start)

	db2 := benchDB(t)
	tbl2, err := db2.CreateTable("t", benchSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	start = time.Now()
	if _, err := tbl2.BulkLoad(NewValuesSource(rows), BulkOptions{}); err != nil {
		t.Fatal(err)
	}
	copyDur := time.Since(start)

	if tbl.Rows() != tbl2.Rows() {
		t.Fatalf("row counts diverge: %d vs %d", tbl.Rows(), tbl2.Rows())
	}
	speedup := float64(insertDur) / float64(copyDur)
	t.Logf("insert loop %v, bulk load %v: %.1fx", insertDur, copyDur, speedup)
	if speedup < 10 {
		t.Errorf("bulk load only %.1fx faster than insert loop, want >= 10x", speedup)
	}
}
