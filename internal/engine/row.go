package engine

import (
	"encoding/binary"
	"fmt"
	"math"

	"sqlarray/internal/blob"
)

// Row wire format, per column in schema order:
//
//	1 byte  null flag (1 = NULL, no payload follows)
//	BIGINT / FLOAT: 8 bytes little-endian
//	VARBINARY(8000): uint16 length + bytes (inline — this is where short
//	  arrays live on-page, §3.3)
//	VARBINARY(MAX): 12-byte blob.Ref (the data lives out-of-page)
//
// The clustered key is additionally the B-tree key, so the row image is
// the leaf value and the key column is also encoded inline (keeping rows
// self-describing, like SQL Server's clustered leaf rows).

// encodeRow serializes vals (in schema order) into a fresh buffer.
// VARBINARY(MAX) values must already be converted to blob refs by the
// table layer; here they are 12-byte encoded refs carried in Value.B.
func encodeRow(s *Schema, vals []Value) ([]byte, error) {
	if len(vals) != len(s.Columns) {
		return nil, fmt.Errorf("%w: %d values for %d columns", ErrTypeError, len(vals), len(s.Columns))
	}
	size := 0
	for i, c := range s.Columns {
		size++
		if vals[i].IsNull() {
			continue
		}
		switch c.Type {
		case ColInt64, ColFloat64:
			size += 8
		case ColVarBinary:
			if len(vals[i].B) > 8000 {
				return nil, fmt.Errorf("%w: VARBINARY(8000) value of %d bytes", ErrTypeError, len(vals[i].B))
			}
			size += 2 + len(vals[i].B)
		case ColVarBinaryMax:
			size += blob.RefSize
		}
	}
	out := make([]byte, 0, size)
	for i, c := range s.Columns {
		v := vals[i]
		if v.IsNull() {
			out = append(out, 1)
			continue
		}
		out = append(out, 0)
		switch c.Type {
		case ColInt64:
			n, err := v.AsInt()
			if err != nil {
				return nil, fmt.Errorf("column %q: %w", c.Name, err)
			}
			var b [8]byte
			binary.LittleEndian.PutUint64(b[:], uint64(n))
			out = append(out, b[:]...)
		case ColFloat64:
			f, err := v.AsFloat()
			if err != nil {
				return nil, fmt.Errorf("column %q: %w", c.Name, err)
			}
			var b [8]byte
			binary.LittleEndian.PutUint64(b[:], math.Float64bits(f))
			out = append(out, b[:]...)
		case ColVarBinary:
			if v.Kind != ColVarBinary && v.Kind != ColVarBinaryMax {
				return nil, fmt.Errorf("column %q: %w: %v", c.Name, ErrTypeError, v.Kind)
			}
			var b [2]byte
			binary.LittleEndian.PutUint16(b[:], uint16(len(v.B)))
			out = append(out, b[:]...)
			out = append(out, v.B...)
		case ColVarBinaryMax:
			if len(v.B) != blob.RefSize {
				return nil, fmt.Errorf("column %q: %w: MAX column wants a %d-byte ref, got %d",
					c.Name, ErrTypeError, blob.RefSize, len(v.B))
			}
			out = append(out, v.B...)
		default:
			return nil, fmt.Errorf("column %q: %w: %v", c.Name, ErrTypeError, c.Type)
		}
	}
	return out, nil
}

// RowView is a lazily-decoded row image. Column accessors decode in a
// single forward pass cached per row, so a scan that touches only
// column 0 never pays for the rest.
type RowView struct {
	schema *Schema
	raw    []byte
	// offs[i] is the byte offset of column i's null flag; computed on
	// first access past the current frontier.
	offs    []int
	decoded int // number of entries valid in offs
}

// resetRowView re-targets a view at a new raw row, reusing the offsets
// slice (scans allocate one view for the whole pass).
func (r *RowView) reset(s *Schema, raw []byte) {
	r.schema = s
	r.raw = raw
	if cap(r.offs) < len(s.Columns) {
		r.offs = make([]int, len(s.Columns))
	}
	r.offs = r.offs[:len(s.Columns)]
	r.offs[0] = 0
	r.decoded = 1
}

// advanceTo ensures offs[i] is computed.
func (r *RowView) advanceTo(i int) error {
	for r.decoded <= i {
		k := r.decoded - 1 // last known column
		off := r.offs[k]
		if off >= len(r.raw) {
			return fmt.Errorf("engine: row truncated at column %d", k)
		}
		null := r.raw[off] == 1
		off++
		if !null {
			switch r.schema.Columns[k].Type {
			case ColInt64, ColFloat64:
				off += 8
			case ColVarBinary:
				if off+2 > len(r.raw) {
					return fmt.Errorf("engine: row truncated in column %d", k)
				}
				off += 2 + int(binary.LittleEndian.Uint16(r.raw[off:]))
			case ColVarBinaryMax:
				off += blob.RefSize
			}
		}
		r.offs[r.decoded] = off
		r.decoded++
	}
	return nil
}

// Col decodes column i. VARBINARY values alias the row buffer (valid only
// while the underlying page is pinned, i.e. within the scan callback);
// VARBINARY(MAX) yields the 12-byte ref — use Table.FetchBlob to load it.
func (r *RowView) Col(i int) (Value, error) {
	if i < 0 || i >= len(r.schema.Columns) {
		return Null, fmt.Errorf("%w: index %d", ErrNoColumn, i)
	}
	if err := r.advanceTo(i); err != nil {
		return Null, err
	}
	off := r.offs[i]
	if off >= len(r.raw) {
		return Null, fmt.Errorf("engine: row truncated at column %d", i)
	}
	if r.raw[off] == 1 {
		return Null, nil
	}
	off++
	c := r.schema.Columns[i]
	switch c.Type {
	case ColInt64:
		return IntValue(int64(binary.LittleEndian.Uint64(r.raw[off:]))), nil
	case ColFloat64:
		return FloatValue(math.Float64frombits(binary.LittleEndian.Uint64(r.raw[off:]))), nil
	case ColVarBinary:
		n := int(binary.LittleEndian.Uint16(r.raw[off:]))
		return BinaryValue(r.raw[off+2 : off+2+n]), nil
	case ColVarBinaryMax:
		return BinaryMaxValue(r.raw[off : off+blob.RefSize]), nil
	}
	return Null, fmt.Errorf("%w: column %d type %v", ErrTypeError, i, c.Type)
}

// Raw returns the undecoded row image.
func (r *RowView) Raw() []byte { return r.raw }
