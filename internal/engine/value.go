// Package engine implements a miniature relational engine with just
// enough machinery to reproduce the paper's evaluation: catalogued tables
// clustered on a BIGINT key, page-at-a-time clustered index scans over the
// B+tree, inline VARBINARY(8000) and out-of-page VARBINARY(MAX) columns,
// scalar aggregation, and — centrally — a user-defined-function boundary
// that charges the same serialization costs the SQL Server CLR hosting
// layer charges (§3.2, §4, §7.1 of the paper).
package engine

import (
	"errors"
	"fmt"
)

// ColType enumerates the column types the engine supports; the set is
// what the paper's test schema needs (BIGINT ids, FLOAT scalar columns,
// VARBINARY(8000) short arrays, VARBINARY(MAX) max arrays).
type ColType uint8

const (
	ColInt64 ColType = iota + 1
	ColFloat64
	ColVarBinary    // inline, <= 8000 bytes (short arrays live here)
	ColVarBinaryMax // out-of-page blob reference (max arrays live here)
)

// String returns the T-SQL name of the column type.
func (t ColType) String() string {
	switch t {
	case ColInt64:
		return "BIGINT"
	case ColFloat64:
		return "FLOAT"
	case ColVarBinary:
		return "VARBINARY(8000)"
	case ColVarBinaryMax:
		return "VARBINARY(MAX)"
	}
	return fmt.Sprintf("ColType(%d)", uint8(t))
}

// Errors returned by the engine.
var (
	ErrNoTable     = errors.New("engine: no such table")
	ErrNoColumn    = errors.New("engine: no such column")
	ErrNoFunc      = errors.New("engine: no such function")
	ErrTypeError   = errors.New("engine: type error")
	ErrTableExists = errors.New("engine: table already exists")
	ErrRowTooWide  = errors.New("engine: row exceeds page capacity")
	ErrNullValue   = errors.New("engine: unexpected NULL")
)

// Value is a runtime SQL value: a tagged union of the supported types
// plus NULL. The zero Value is NULL.
type Value struct {
	Kind ColType // 0 = NULL
	I    int64
	F    float64
	B    []byte
}

// Null is the NULL value.
var Null = Value{}

// IsNull reports whether v is NULL.
func (v Value) IsNull() bool { return v.Kind == 0 }

// IntValue builds a BIGINT value.
func IntValue(i int64) Value { return Value{Kind: ColInt64, I: i} }

// FloatValue builds a FLOAT value.
func FloatValue(f float64) Value { return Value{Kind: ColFloat64, F: f} }

// BinaryValue builds a VARBINARY value (inline).
func BinaryValue(b []byte) Value { return Value{Kind: ColVarBinary, B: b} }

// BinaryMaxValue builds a VARBINARY(MAX) value.
func BinaryMaxValue(b []byte) Value { return Value{Kind: ColVarBinaryMax, B: b} }

// AsFloat coerces numeric values to float64 (SQL implicit conversion).
func (v Value) AsFloat() (float64, error) {
	switch v.Kind {
	case ColFloat64:
		return v.F, nil
	case ColInt64:
		return float64(v.I), nil
	case 0:
		return 0, ErrNullValue
	}
	return 0, fmt.Errorf("%w: %v is not numeric", ErrTypeError, v.Kind)
}

// AsInt coerces numeric values to int64.
func (v Value) AsInt() (int64, error) {
	switch v.Kind {
	case ColInt64:
		return v.I, nil
	case ColFloat64:
		return int64(v.F), nil
	case 0:
		return 0, ErrNullValue
	}
	return 0, fmt.Errorf("%w: %v is not numeric", ErrTypeError, v.Kind)
}

// AsBinary returns the value's bytes for either VARBINARY kind.
func (v Value) AsBinary() ([]byte, error) {
	switch v.Kind {
	case ColVarBinary, ColVarBinaryMax:
		return v.B, nil
	case 0:
		return nil, ErrNullValue
	}
	return nil, fmt.Errorf("%w: %v is not binary", ErrTypeError, v.Kind)
}

// String renders the value for diagnostics.
func (v Value) String() string {
	switch v.Kind {
	case 0:
		return "NULL"
	case ColInt64:
		return fmt.Sprint(v.I)
	case ColFloat64:
		return fmt.Sprint(v.F)
	case ColVarBinary, ColVarBinaryMax:
		return fmt.Sprintf("0x<%d bytes>", len(v.B))
	}
	return "?"
}

// Column describes one table column.
type Column struct {
	Name string
	Type ColType
}

// Schema is an ordered column list. The first ColInt64 column is the
// clustered key by convention unless KeyColumn overrides it.
type Schema struct {
	Columns []Column
	Key     int // index of the clustered key column (must be ColInt64)
}

// NewSchema builds a schema clustered on the first column, which must be
// ColInt64.
func NewSchema(cols ...Column) (Schema, error) {
	if len(cols) == 0 {
		return Schema{}, errors.New("engine: empty schema")
	}
	if cols[0].Type != ColInt64 {
		return Schema{}, fmt.Errorf("%w: clustered key column %q must be BIGINT",
			ErrTypeError, cols[0].Name)
	}
	seen := map[string]bool{}
	for _, c := range cols {
		if c.Name == "" {
			return Schema{}, errors.New("engine: empty column name")
		}
		if seen[c.Name] {
			return Schema{}, fmt.Errorf("engine: duplicate column %q", c.Name)
		}
		seen[c.Name] = true
	}
	return Schema{Columns: cols, Key: 0}, nil
}

// ColIndex finds a column by (case-sensitive) name, returning -1 if
// absent.
func (s *Schema) ColIndex(name string) int {
	for i, c := range s.Columns {
		if c.Name == name {
			return i
		}
	}
	return -1
}
