package engine

import "fmt"

// This file reproduces the paper's §4.2 finding about user-defined
// aggregates: "independently of the aggregate function internal storage
// requirements, the state of aggregation had to be serialized via a
// binary stream interface for each row processed by the aggregation.
// This turned out to be prohibitive."
//
// Aggregate implementations provide Init/Accumulate/Terminate plus
// state (de)serialization. RunAggregateUDA performs the faithful SQL
// Server protocol — serialize + deserialize the whole state around every
// row — while RunAggregateDirect is the paper's workaround (§4.2): a
// plain function that drives the scan itself and keeps its state in
// memory.

// Aggregate is a user-defined aggregate in the SQLCLR mould.
type Aggregate interface {
	// Init resets the aggregate state.
	Init()
	// Accumulate folds one input value into the state.
	Accumulate(v Value) error
	// Terminate produces the aggregate result.
	Terminate() (Value, error)
	// Serialize appends the state to dst (the per-row stream write).
	Serialize(dst []byte) []byte
	// Deserialize replaces the state from its serialized form.
	Deserialize(src []byte) error
}

// UDAStats reports the serialization traffic a UDA run generated.
type UDAStats struct {
	Rows            uint64
	StateBytesMoved uint64
}

// RunAggregateUDA evaluates agg over column col of every row in t using
// the SQL Server UDA protocol: the aggregation state is round-tripped
// through its serialized form for every processed row.
func RunAggregateUDA(t *Table, col int, agg Aggregate) (Value, UDAStats, error) {
	if col < 0 || col >= len(t.schema.Columns) {
		return Null, UDAStats{}, fmt.Errorf("%w: index %d", ErrNoColumn, col)
	}
	agg.Init()
	var stats UDAStats
	state := agg.Serialize(nil)
	err := t.Scan(func(key int64, row *RowView) (bool, error) {
		// The engine hands the stored state back to the CLR object...
		if err := agg.Deserialize(state); err != nil {
			return false, err
		}
		v, err := row.Col(col)
		if err != nil {
			return false, err
		}
		if err := agg.Accumulate(v); err != nil {
			return false, err
		}
		// ...and persists it again after the row.
		state = agg.Serialize(state[:0])
		stats.Rows++
		stats.StateBytesMoved += 2 * uint64(len(state))
		return true, nil
	})
	if err != nil {
		return Null, stats, err
	}
	if err := agg.Deserialize(state); err != nil {
		return Null, stats, err
	}
	out, err := agg.Terminate()
	return out, stats, err
}

// RunAggregateDirect evaluates agg over column col driving the scan from
// a plain function, keeping state in memory — the paper's faster
// replacement ("we wrote plain SQL CLR scalar functions that take a SQL
// query as an input parameter ... aggregate rows sequentially").
func RunAggregateDirect(t *Table, col int, agg Aggregate) (Value, UDAStats, error) {
	if col < 0 || col >= len(t.schema.Columns) {
		return Null, UDAStats{}, fmt.Errorf("%w: index %d", ErrNoColumn, col)
	}
	agg.Init()
	var stats UDAStats
	err := t.Scan(func(key int64, row *RowView) (bool, error) {
		v, err := row.Col(col)
		if err != nil {
			return false, err
		}
		if err := agg.Accumulate(v); err != nil {
			return false, err
		}
		stats.Rows++
		return true, nil
	})
	if err != nil {
		return Null, stats, err
	}
	out, err := agg.Terminate()
	return out, stats, err
}
