package engine

import (
	"encoding/csv"
	"encoding/hex"
	"fmt"
	"io"
	"runtime"
	"strconv"
	"strings"
	"sync"
)

// CSVSource feeds a bulk load from CSV text: one row per record, fields
// in schema order. A reader goroutine tokenizes records and fans them
// out to a pool of parse workers that convert fields to typed Values —
// the parse stage of the ingest pipeline, and the part of a text load
// that actually burns CPU. Rows are handed to the loader in whatever
// order workers finish; BulkLoad sorts by key anyway, so no reordering
// stage is needed.
//
// Field syntax per column type: INT64 and FLOAT64 are parsed by
// strconv; VARBINARY and VARBINARY(MAX) are hex-encoded; an empty field
// is NULL.
type CSVSource struct {
	out     chan csvParsed
	pending []csvRow

	errMu sync.Mutex
	err   error

	cancel chan struct{} // closed by Close to stop the pipeline
	once   sync.Once
}

type csvRow struct {
	line int
	vals []Value
}

type csvParsed struct {
	rows []csvRow
	err  error
}

// CSVOptions tunes a CSV source. The zero value is ready to use.
type CSVOptions struct {
	// Workers is the number of parallel parse goroutines
	// (default GOMAXPROCS).
	Workers int
	// Header skips the first record (a column-name line).
	Header bool
	// Comma is the field delimiter (default ',').
	Comma rune
}

const csvBatchRecords = 256

// NewCSVSource starts the parse pipeline over r for the given schema.
// The caller must drain it with BulkLoad (or Close it on early exit).
func NewCSVSource(r io.Reader, schema *Schema, opts CSVOptions) *CSVSource {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	s := &CSVSource{
		out:    make(chan csvParsed, workers),
		cancel: make(chan struct{}),
	}
	in := make(chan csvBatch, workers)
	go s.read(r, opts, in)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.parseWorker(schema, in)
		}()
	}
	go func() {
		wg.Wait()
		close(s.out)
	}()
	return s
}

type csvBatch struct {
	firstLine int
	records   [][]string
}

// read tokenizes the CSV stream into record batches for the workers.
func (s *CSVSource) read(r io.Reader, opts CSVOptions, in chan<- csvBatch) {
	defer close(in)
	cr := csv.NewReader(r)
	cr.ReuseRecord = false
	if opts.Comma != 0 {
		cr.Comma = opts.Comma
	}
	line := 0
	if opts.Header {
		line++
		if _, err := cr.Read(); err != nil {
			if err != io.EOF {
				s.fail(err)
			}
			return
		}
	}
	batch := csvBatch{firstLine: line + 1}
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			s.fail(err)
			return
		}
		line++
		batch.records = append(batch.records, rec)
		if len(batch.records) >= csvBatchRecords {
			select {
			case in <- batch:
			case <-s.cancel:
				return
			}
			batch = csvBatch{firstLine: line + 1}
		}
	}
	if len(batch.records) > 0 {
		select {
		case in <- batch:
		case <-s.cancel:
		}
	}
}

// parseWorker converts record batches to typed rows.
func (s *CSVSource) parseWorker(schema *Schema, in <-chan csvBatch) {
	for batch := range in {
		rows := make([]csvRow, 0, len(batch.records))
		for i, rec := range batch.records {
			vals, err := parseCSVRecord(schema, rec)
			if err != nil {
				s.emit(csvParsed{err: fmt.Errorf("csv line %d: %w", batch.firstLine+i, err)})
				return
			}
			rows = append(rows, csvRow{line: batch.firstLine + i, vals: vals})
		}
		if !s.emit(csvParsed{rows: rows}) {
			return
		}
	}
}

func (s *CSVSource) emit(p csvParsed) bool {
	select {
	case s.out <- p:
		return true
	case <-s.cancel:
		return false
	}
}

func (s *CSVSource) fail(err error) {
	s.errMu.Lock()
	if s.err == nil {
		s.err = err
	}
	s.errMu.Unlock()
}

// Next implements BulkSource.
func (s *CSVSource) Next() ([]Value, error) {
	for len(s.pending) == 0 {
		p, ok := <-s.out
		if !ok {
			s.errMu.Lock()
			err := s.err
			s.errMu.Unlock()
			if err != nil {
				return nil, err
			}
			return nil, io.EOF
		}
		if p.err != nil {
			s.Close() // stop the other workers; the load is over
			return nil, p.err
		}
		s.pending = p.rows
	}
	row := s.pending[0]
	s.pending = s.pending[1:]
	return row.vals, nil
}

// Close tears the pipeline down early (after an error or partial
// consumption); draining to io.EOF makes it unnecessary.
func (s *CSVSource) Close() {
	s.once.Do(func() { close(s.cancel) })
}

// parseCSVRecord converts one CSV record's fields per the schema.
func parseCSVRecord(schema *Schema, rec []string) ([]Value, error) {
	if len(rec) != len(schema.Columns) {
		return nil, fmt.Errorf("%d fields for %d columns", len(rec), len(schema.Columns))
	}
	vals := make([]Value, len(rec))
	for i, field := range rec {
		c := schema.Columns[i]
		if field == "" {
			vals[i] = Null
			continue
		}
		switch c.Type {
		case ColInt64:
			n, err := strconv.ParseInt(strings.TrimSpace(field), 10, 64)
			if err != nil {
				return nil, fmt.Errorf("column %q: %w", c.Name, err)
			}
			vals[i] = IntValue(n)
		case ColFloat64:
			f, err := strconv.ParseFloat(strings.TrimSpace(field), 64)
			if err != nil {
				return nil, fmt.Errorf("column %q: %w", c.Name, err)
			}
			vals[i] = FloatValue(f)
		case ColVarBinary, ColVarBinaryMax:
			b, err := hex.DecodeString(strings.TrimSpace(field))
			if err != nil {
				return nil, fmt.Errorf("column %q: %w", c.Name, err)
			}
			if c.Type == ColVarBinary {
				vals[i] = BinaryValue(b)
			} else {
				vals[i] = BinaryMaxValue(b)
			}
		default:
			return nil, fmt.Errorf("column %q: unsupported type", c.Name)
		}
	}
	return vals, nil
}
