package engine

import (
	"encoding/binary"
	"fmt"
	"math"
	"strings"
	"sync"
	"sync/atomic"
)

// This file implements the engine's user-defined-function boundary. The
// paper's central measurement (§6-7) is the cost of calling a hosted-CLR
// scalar function once per scanned row: arguments are serialized into the
// hosted runtime, the call is dispatched dynamically, and the result is
// deserialized back. Our boundary reproduces that structure faithfully:
//
//  1. every argument is serialized into a per-call byte buffer (the
//     SQLCLR parameter marshaling),
//  2. the function is resolved and dispatched through an indirect call,
//  3. inside the "hosted" side the arguments are deserialized into
//     Values again before the native Go implementation runs,
//  4. the result is serialized and deserialized symmetric to (1).
//
// The absolute per-call cost is smaller than the paper's ~2 µs (a 2008
// CLR transition), but it is real, measured work with the same scaling
// behaviour: proportional to argument bytes, independent of the work the
// function performs.

// ScalarFunc is the native implementation hosted behind the boundary.
type ScalarFunc func(args []Value) (Value, error)

// FuncDef describes a registered scalar UDF. Name is lower-case,
// schema-qualified ("floatarray.item_1"); Arity < 0 means variadic.
type FuncDef struct {
	Name  string
	Arity int
	Fn    ScalarFunc
}

// BoundaryStats counts traffic across the UDF boundary.
type BoundaryStats struct {
	Calls          uint64
	BytesMarshaled uint64
}

// FuncRegistry resolves and invokes UDFs. Call may be invoked from
// multiple goroutines concurrently (the parallel aggregate scan does);
// the boundary counters are atomics for that reason.
type FuncRegistry struct {
	mu             sync.RWMutex
	funcs          map[string]*FuncDef
	calls          atomic.Uint64
	bytesMarshaled atomic.Uint64
}

// boundaryPool recycles argument-marshaling buffers (a leaky free list:
// nested calls — constructors inside other calls, FromQuery running a
// whole query inside a UDF — each draw their own buffer).
var boundaryPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 512)
		return &b
	},
}

// NewFuncRegistry returns an empty registry.
func NewFuncRegistry() *FuncRegistry {
	return &FuncRegistry{funcs: make(map[string]*FuncDef)}
}

// Register adds a function; names are case-insensitive, T-SQL style.
func (r *FuncRegistry) Register(name string, arity int, fn ScalarFunc) {
	r.mu.Lock()
	defer r.mu.Unlock()
	key := strings.ToLower(name)
	r.funcs[key] = &FuncDef{Name: key, Arity: arity, Fn: fn}
}

// Lookup resolves a function by case-insensitive name.
func (r *FuncRegistry) Lookup(name string) (*FuncDef, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	def, ok := r.funcs[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoFunc, name)
	}
	return def, nil
}

// Names returns the registered function names (for diagnostics).
func (r *FuncRegistry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.funcs))
	for k := range r.funcs {
		out = append(out, k)
	}
	return out
}

// Stats returns a snapshot of the boundary counters. The two counters
// are loaded independently, so a snapshot taken while calls are in
// flight may be torn by one call; quiesced reads are exact.
func (r *FuncRegistry) Stats() BoundaryStats {
	return BoundaryStats{
		Calls:          r.calls.Load(),
		BytesMarshaled: r.bytesMarshaled.Load(),
	}
}

// ResetStats zeroes the boundary counters.
func (r *FuncRegistry) ResetStats() {
	r.calls.Store(0)
	r.bytesMarshaled.Store(0)
}

// Call invokes a resolved UDF across the boundary. This is the per-row
// hot path of Table 1's queries 4 and 5.
func (r *FuncRegistry) Call(def *FuncDef, args []Value) (Value, error) {
	if def.Arity >= 0 && len(args) != def.Arity {
		return Null, fmt.Errorf("engine: %s expects %d args, got %d", def.Name, def.Arity, len(args))
	}
	// (1) serialize arguments into a boundary buffer
	bufp := boundaryPool.Get().(*[]byte)
	buf := (*bufp)[:0]
	for _, a := range args {
		buf = marshalValue(buf, a)
	}
	r.calls.Add(1)
	r.bytesMarshaled.Add(uint64(len(buf)))
	// (3) deserialize on the hosted side (values alias buf, which stays
	// alive until the call returns)
	hosted := make([]Value, 0, len(args))
	rest := buf
	for len(rest) > 0 {
		var v Value
		var err error
		v, rest, err = unmarshalValue(rest)
		if err != nil {
			*bufp = buf
			boundaryPool.Put(bufp)
			return Null, fmt.Errorf("engine: boundary corrupt: %w", err)
		}
		hosted = append(hosted, v)
	}
	// (2) indirect dispatch into the native implementation
	out, err := def.Fn(hosted)
	if err != nil {
		*bufp = buf
		boundaryPool.Put(bufp)
		return Null, err
	}
	// (4) the result crosses back through a fresh buffer the caller
	// owns — never the pooled one, since out may alias hosted args.
	rbuf := marshalValue(make([]byte, 0, 16+len(out.B)), out)
	r.bytesMarshaled.Add(uint64(len(rbuf)))
	res, _, err := unmarshalValue(rbuf)
	*bufp = buf
	boundaryPool.Put(bufp)
	if err != nil {
		return Null, fmt.Errorf("engine: boundary corrupt on return: %w", err)
	}
	return res, nil
}

// CallByName resolves and invokes in one step (slow path).
func (r *FuncRegistry) CallByName(name string, args []Value) (Value, error) {
	def, err := r.Lookup(name)
	if err != nil {
		return Null, err
	}
	return r.Call(def, args)
}

// marshalValue appends the boundary wire form of v.
func marshalValue(dst []byte, v Value) []byte {
	dst = append(dst, byte(v.Kind))
	switch v.Kind {
	case 0:
		return dst
	case ColInt64:
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], uint64(v.I))
		return append(dst, b[:]...)
	case ColFloat64:
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(v.F))
		return append(dst, b[:]...)
	case ColVarBinary, ColVarBinaryMax:
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], uint32(len(v.B)))
		dst = append(dst, b[:]...)
		return append(dst, v.B...) // the copy the CLR boundary charges
	}
	return dst
}

// unmarshalValue decodes one value, returning the remaining buffer.
// Binary payloads alias the boundary buffer (hosted code treating them
// as read-only, as SqlBytes buffers are).
func unmarshalValue(b []byte) (Value, []byte, error) {
	if len(b) == 0 {
		return Null, nil, fmt.Errorf("empty buffer")
	}
	kind := ColType(b[0])
	b = b[1:]
	switch kind {
	case 0:
		return Null, b, nil
	case ColInt64:
		if len(b) < 8 {
			return Null, nil, fmt.Errorf("truncated int64")
		}
		return IntValue(int64(binary.LittleEndian.Uint64(b))), b[8:], nil
	case ColFloat64:
		if len(b) < 8 {
			return Null, nil, fmt.Errorf("truncated float64")
		}
		return FloatValue(math.Float64frombits(binary.LittleEndian.Uint64(b))), b[8:], nil
	case ColVarBinary, ColVarBinaryMax:
		if len(b) < 4 {
			return Null, nil, fmt.Errorf("truncated binary length")
		}
		n := int(binary.LittleEndian.Uint32(b))
		b = b[4:]
		if len(b) < n {
			return Null, nil, fmt.Errorf("truncated binary payload")
		}
		return Value{Kind: kind, B: b[:n]}, b[n:], nil
	}
	return Null, nil, fmt.Errorf("unknown kind %d", kind)
}
