package engine

import (
	"fmt"

	"sqlarray/internal/blob"
	"sqlarray/internal/core"
)

// This file is the engine half of the subarray I/O pushdown: MAX column
// values are 12-byte blob refs on the row, and the accessors here read
// only the chunk pages a consumer actually needs — the property the
// paper attributes to the SqlBytes stream wrapper ("supports reading
// only parts of the binary data if the whole array is not required",
// §3.3) — or hand back pinned, zero-copy payload bytes for blobs small
// enough to live on a single chunk page.

// BlobPins owns the pinned zero-copy blob views a consumer accumulates
// while decoding MAX values. Whoever drives the decode (a batch, a
// cursor loop, a test) must Release the set when the decoded bytes are
// no longer referenced; until then the backing chunk pages stay pinned
// in the buffer pool and cannot be evicted. Release is idempotent. The
// zero value is ready to use.
type BlobPins struct {
	views []*blob.View
}

// Held returns how many pinned views the set currently owns.
func (p *BlobPins) Held() int { return len(p.views) }

// Release unpins every held view, returning their frames to the pool's
// LRU, and empties the set for reuse.
func (p *BlobPins) Release() {
	for _, v := range p.views {
		v.Release()
	}
	p.views = p.views[:0]
}

func (p *BlobPins) add(v *blob.View) { p.views = append(p.views, v) }

// codecForBlob sniffs a serialized value's array header and picks the
// write-time codec: float64-family elements get the XOR-delta codec
// (Gorilla-style, exploits slowly varying scientific floats), every
// other fixed-width element gets byte-shuffled LZ at its element width,
// and bytes that do not decode as an array fall back to plain LZ. The
// choice is recorded in the chunk headers, so readers never re-sniff.
func codecForBlob(b []byte) blob.Codec {
	if h, hs, err := core.DecodeHeader(b); err == nil {
		switch h.Elem {
		case core.Float64, core.Complex128:
			// The serialized header precedes the elements, so the word
			// grid is offset by the header size within the blob stream;
			// the phase realigns the XOR deltas with element boundaries.
			return blob.Codec{Kind: blob.CodecXOR, Width: 8, Phase: hs % 8}
		default:
			if w := h.Elem.Size(); w > 0 {
				return blob.Codec{Kind: blob.CodecLZ, Width: w}
			}
		}
	}
	return blob.Codec{Kind: blob.CodecLZ, Width: 1}
}

// writeBlob stores a MAX value through the blob store — compressed per
// element type unless the database was opened with
// DisableBlobCompression. Reads are format-agnostic either way.
func (db *DB) writeBlob(b []byte) (blob.Ref, error) {
	if !db.compress {
		return db.blobs.Write(b)
	}
	return db.blobs.WriteCompressed(b, codecForBlob(b))
}

// resolvePinFraction bounds how much of the buffer pool one BlobPins
// set may hold pinned through zero-copy resolves: once a set holds
// capacity/resolvePinFraction frames, further resolves fall back to the
// copying read. Without the cap, a single 1024-row batch of single-chunk
// MAX values could pin 1024 frames and exhaust a lock stripe of a
// legally sized small pool.
const resolvePinFraction = 4

// ResolveMax materializes a VARBINARY(MAX) column value (the 12-byte
// ref RowView.Col yields) into the array payload bytes.
//
// When the blob fits a single chunk page, pins is non-nil and the set
// is under its pin budget, the returned slice aliases the pinned page
// body — zero copies; ownership of the pin transfers to pins and the
// bytes are valid until pins.Release(). Multi-chunk blobs, a nil pins,
// or an exhausted budget fall back to the copying read, because an
// array payload must be contiguous and chunk pages are not (and because
// pinning must never wedge the pool). A null ref resolves to nil.
func (t *Table) ResolveMax(refBytes []byte, pins *BlobPins) ([]byte, error) {
	return t.resolveMax(t.db.blobs, refBytes, pins)
}

// ResolveMaxAt is ResolveMax reading blob pages through the snapshot —
// a ref decoded from a snapshot scan must resolve against the same
// commit's chunk pages, or a concurrent UPDATE that freed and reused
// the blob's pages could hand the scan foreign bytes.
func (t *Table) ResolveMaxAt(s *Snapshot, refBytes []byte, pins *BlobPins) ([]byte, error) {
	return t.resolveMax(s.blobs, refBytes, pins)
}

func (t *Table) resolveMax(bs *blob.Store, refBytes []byte, pins *BlobPins) ([]byte, error) {
	ref, err := blob.DecodeRef(refBytes)
	if err != nil {
		return nil, err
	}
	if ref.IsNull() {
		return nil, nil
	}
	if pins != nil && blob.NumChunks(ref.Length) == 1 &&
		pins.Held() < t.db.bp.Capacity()/resolvePinFraction {
		v, err := bs.View(ref)
		if err != nil {
			return nil, err
		}
		if b, ok := v.Contiguous(); ok {
			pins.add(v)
			return b, nil
		}
		v.Release() // stored length disagreed with chunk count; fall back
	}
	return bs.ReadAll(ref)
}

// ViewBlob pins a MAX column value's chunk pages and returns the
// zero-copy view. The caller must Release it.
func (t *Table) ViewBlob(refBytes []byte) (*blob.View, error) {
	ref, err := blob.DecodeRef(refBytes)
	if err != nil {
		return nil, err
	}
	return t.db.blobs.View(ref)
}

// ViewBlobAt is ViewBlob through the snapshot's blob view.
func (t *Table) ViewBlobAt(s *Snapshot, refBytes []byte) (*blob.View, error) {
	ref, err := blob.DecodeRef(refBytes)
	if err != nil {
		return nil, err
	}
	return s.blobs.View(ref)
}

// ReadBlobRuns performs a batch of partial reads of a MAX column blob,
// described as byte runs of the stored blob (header offset already
// applied), sharing one directory walk. This is how core.SubarrayPlan
// runs reach the blob store without materializing the whole array.
func (t *Table) ReadBlobRuns(refBytes []byte, dst []byte, runs []blob.Run) error {
	return t.readBlobRuns(t.db.blobs, refBytes, dst, runs)
}

// ReadBlobRunsAt is ReadBlobRuns through the snapshot's blob view.
func (t *Table) ReadBlobRunsAt(s *Snapshot, refBytes []byte, dst []byte, runs []blob.Run) error {
	return t.readBlobRuns(s.blobs, refBytes, dst, runs)
}

func (t *Table) readBlobRuns(bs *blob.Store, refBytes []byte, dst []byte, runs []blob.Run) error {
	ref, err := blob.DecodeRef(refBytes)
	if err != nil {
		return err
	}
	return bs.ReadRuns(ref, dst, runs)
}

// ReadBlobRunsPinned is the zero-copy variant of ReadBlobRuns: only the
// chunk pages the runs touch are pinned, and the run bytes are visited
// in place. The caller must Release the view.
func (t *Table) ReadBlobRunsPinned(refBytes []byte, runs []blob.Run) (*blob.RunsView, error) {
	return t.readBlobRunsPinned(t.db.blobs, refBytes, runs)
}

// ReadBlobRunsPinnedAt is ReadBlobRunsPinned through the snapshot's
// blob view.
func (t *Table) ReadBlobRunsPinnedAt(s *Snapshot, refBytes []byte, runs []blob.Run) (*blob.RunsView, error) {
	return t.readBlobRunsPinned(s.blobs, refBytes, runs)
}

func (t *Table) readBlobRunsPinned(bs *blob.Store, refBytes []byte, runs []blob.Run) (*blob.RunsView, error) {
	ref, err := blob.DecodeRef(refBytes)
	if err != nil {
		return nil, err
	}
	return bs.ReadRunsPinned(ref, runs)
}

// BlobHeader decodes just the array header of a stored MAX array,
// touching only the blob's first chunk page (one short partial read for
// headers up to rank 6; a second for higher-rank dimension lists).
func (t *Table) BlobHeader(refBytes []byte) (core.Header, int, error) {
	ref, err := blob.DecodeRef(refBytes)
	if err != nil {
		return core.Header{}, 0, err
	}
	return t.blobHeader(t.db.blobs, ref)
}

// BlobHeaderAt is BlobHeader through the snapshot's blob view.
func (t *Table) BlobHeaderAt(s *Snapshot, refBytes []byte) (core.Header, int, error) {
	ref, err := blob.DecodeRef(refBytes)
	if err != nil {
		return core.Header{}, 0, err
	}
	return t.blobHeader(s.blobs, ref)
}

// blobHeader is BlobHeader on an already-decoded ref, reading through
// the given store view (live or snapshot).
func (t *Table) blobHeader(bs *blob.Store, ref blob.Ref) (core.Header, int, error) {
	if ref.IsNull() {
		return core.Header{}, 0, fmt.Errorf("%w: null blob", blob.ErrBadRef)
	}
	// One prefix read covers short headers (24 bytes) and max headers up
	// to rank 6 (16 + 4*6 = 40); only higher-rank max arrays need the
	// second read.
	prefixLen := int64(core.MaxFixedHeaderSize + 4*core.MaxShortRank)
	if prefixLen > ref.Length {
		prefixLen = ref.Length
	}
	buf := make([]byte, prefixLen)
	if err := bs.ReadAt(ref, buf, 0); err != nil {
		return core.Header{}, 0, err
	}
	hs, err := core.HeaderSizeFromPrefix(buf)
	if err != nil {
		return core.Header{}, 0, err
	}
	if int64(hs) > ref.Length {
		return core.Header{}, 0, fmt.Errorf("%w: header of %d bytes exceeds blob of %d",
			blob.ErrBadRef, hs, ref.Length)
	}
	if hs > len(buf) {
		buf = make([]byte, hs)
		if err := bs.ReadAt(ref, buf, 0); err != nil {
			return core.Header{}, 0, err
		}
	}
	h, n, err := core.DecodeHeader(buf)
	if err != nil {
		return core.Header{}, 0, err
	}
	return h, n, nil
}

// BlobSubarray extracts a subarray of a stored MAX array, reading only
// the header and the chunk pages the subarray's runs touch — the full
// I/O pushdown of the paper's Subarray-on-max-array case. offset and
// size follow core.Array.Subarray; collapse drops unit dimensions. The
// result is a fresh, caller-owned array.
func (t *Table) BlobSubarray(refBytes []byte, offset, size []int, collapse bool) (*core.Array, error) {
	return t.blobSubarray(t.db.blobs, refBytes, offset, size, collapse)
}

// BlobSubarrayAt is BlobSubarray through the snapshot's blob view.
func (t *Table) BlobSubarrayAt(s *Snapshot, refBytes []byte, offset, size []int, collapse bool) (*core.Array, error) {
	return t.blobSubarray(s.blobs, refBytes, offset, size, collapse)
}

func (t *Table) blobSubarray(bs *blob.Store, refBytes []byte, offset, size []int, collapse bool) (*core.Array, error) {
	ref, err := blob.DecodeRef(refBytes)
	if err != nil {
		return nil, err
	}
	h, hs, err := t.blobHeader(bs, ref)
	if err != nil {
		return nil, err
	}
	if int64(h.TotalBytes()) != ref.Length {
		return nil, fmt.Errorf("%w: header declares %d bytes, blob holds %d",
			blob.ErrBadRef, h.TotalBytes(), ref.Length)
	}
	runs, err := core.SubarrayPlan(h, offset, size)
	if err != nil {
		return nil, err
	}
	dims := append([]int(nil), size...)
	if collapse {
		dims = core.CollapseDims(dims)
	}
	out, err := core.NewAuto(h.Elem, dims...)
	if err != nil {
		return nil, err
	}
	blobRuns := make([]blob.Run, len(runs))
	for i, r := range runs {
		blobRuns[i] = blob.Run{SrcOff: r.SrcOff + hs, DstOff: r.DstOff, Len: r.Len}
	}
	// Pinned run read rather than ReadRuns: a dense subarray's runs often
	// share chunk pages (a small corner of a cube lives on one chunk),
	// and the pinned view fetches each touched chunk exactly once where
	// ReadRuns would re-fetch per run.
	rv, err := bs.ReadRunsPinned(ref, blobRuns)
	if err != nil {
		return nil, err
	}
	rv.CopyTo(out.Payload())
	rv.Release()
	return out, nil
}
