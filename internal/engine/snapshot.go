// Snapshot reads: the engine half of MVCC.
//
// A Snapshot freezes the database at a commit tag. Page content is
// resolved by the buffer pool's version store (pages.Snapshot); table
// identity — which B+tree root, how many rows — is resolved here, by a
// per-table list of committed catalog versions (tableMeta) that Commit
// appends to atomically with the page publish. Together they give a
// scan a consistent view: the tree it descends and every page it reads
// belong to the same commit, no matter how many commits land while the
// scan streams.
//
// Readers never take a table latch. Writers (always under the
// database's single-writer lock) copy-on-write every page they touch
// and publish at commit; scans opened before the commit keep reading
// the superseded versions until they Release.
package engine

import (
	"fmt"
	"math"
	"sync/atomic"

	"sqlarray/internal/blob"
	"sqlarray/internal/btree"
	"sqlarray/internal/pages"
)

// Snapshot is a frozen, immutable read view of the whole database as of
// a commit. It is safe for concurrent use by parallel scan workers and
// must be Released exactly like a pin: the buffer pool retains every
// superseded page version some live snapshot might still need.
// Release is idempotent.
type Snapshot struct {
	db       *DB
	ps       *pages.Snapshot
	blobs    *blob.Store
	released atomic.Bool
}

// Snapshot opens a read view at the current commit clock. Writers never
// wait for it, and it never observes their uncommitted or later work.
func (db *DB) Snapshot() *Snapshot {
	ps := db.bp.AcquireSnapshot()
	db.m.snapshots.Inc()
	return &Snapshot{db: db, ps: ps, blobs: db.blobs.WithFetcher(ps)}
}

// Release deregisters the snapshot, letting the version store retire
// page versions only it was holding. Idempotent.
func (s *Snapshot) Release() {
	if s.released.CompareAndSwap(false, true) {
		s.ps.Release()
		s.db.m.snapshots.Dec()
	}
}

// Tag returns the snapshot's commit tag.
func (s *Snapshot) Tag() uint64 { return s.ps.Tag() }

// tableMeta is one committed version of a table's catalog state: the
// tree attachment plus the derived counters, stamped with the commit
// tag that published it. Snapshot reads resolve the newest version at
// or before their tag; none visible means the table did not exist yet
// in that view.
type tableMeta struct {
	tag       uint64
	root      pages.PageID
	height    int
	count     int
	rows      int64
	rowBytes  int64
	blobBytes int64
}

// currentMeta captures the table's live state under the given tag.
// Only the single writer calls this (its fields are in flux otherwise).
func (t *Table) currentMeta(tag uint64) tableMeta {
	return tableMeta{
		tag:       tag,
		root:      t.tree.Root(),
		height:    t.tree.Height(),
		count:     t.tree.Len(),
		rows:      t.rows.Load(),
		rowBytes:  t.rowBytes.Load(),
		blobBytes: t.blobBytes.Load(),
	}
}

// publishMeta appends the committed version tagged tag and prunes
// versions no active snapshot can resolve anymore (a version is dead
// once a newer one is at or below the oldest active snapshot's tag).
func (t *Table) publishMeta(tag uint64) {
	m := t.currentMeta(tag)
	min := t.db.bp.MinSnapshotTag()
	t.metaMu.Lock()
	t.metas = append(t.metas, m)
	from := 0
	for i := len(t.metas) - 1; i >= 0; i-- {
		if t.metas[i].tag <= min {
			from = i
			break
		}
	}
	if from > 0 {
		t.metas = append(t.metas[:0], t.metas[from:]...)
	}
	t.metaMu.Unlock()
}

// restoreMeta resets the table's live state to its newest committed
// version — the abort path. A table with no committed version was
// created by the aborted session; the caller drops it from the catalog.
func (t *Table) restoreMeta() {
	t.metaMu.Lock()
	n := len(t.metas)
	var m tableMeta
	if n > 0 {
		m = t.metas[n-1]
	}
	t.metaMu.Unlock()
	if n == 0 {
		return
	}
	t.tree = btree.Open(t.db.bp, m.root, m.height, m.count)
	t.rows.Store(m.rows)
	t.rowBytes.Store(m.rowBytes)
	t.blobBytes.Store(m.blobBytes)
}

// metaAt resolves the newest committed version visible at tag.
func (t *Table) metaAt(tag uint64) (tableMeta, bool) {
	t.metaMu.Lock()
	defer t.metaMu.Unlock()
	for i := len(t.metas) - 1; i >= 0; i-- {
		if t.metas[i].tag <= tag {
			return t.metas[i], true
		}
	}
	return tableMeta{}, false
}

// treeAt opens the table's B+tree as the snapshot sees it. ok is false
// when the table has no committed version at the snapshot's tag (it was
// created after the snapshot opened).
func (t *Table) treeAt(s *Snapshot) (*btree.Tree, bool) {
	m, ok := t.metaAt(s.ps.Tag())
	if !ok {
		return nil, false
	}
	return btree.OpenFetch(s.ps, m.root, m.height, m.count), true
}

// CursorAt opens a streaming scan of the whole table as of s. The
// cursor does not own the snapshot; the caller Releases s after closing
// every cursor opened on it.
func (t *Table) CursorAt(s *Snapshot) (*Cursor, error) {
	return t.CursorRangeAt(s, math.MinInt64, math.MaxInt64)
}

// CursorRangeAt opens a streaming scan over keys in [lo, hi] as of s.
func (t *Table) CursorRangeAt(s *Snapshot, lo, hi int64) (*Cursor, error) {
	tree, ok := t.treeAt(s)
	if !ok {
		return &Cursor{it: btree.EmptyIterator(), schema: &t.schema}, nil
	}
	it, err := tree.ScanRange(lo, hi)
	if err != nil {
		return nil, err
	}
	return &Cursor{it: it, schema: &t.schema}, nil
}

// GetAt fetches the row with the given clustered key as of s.
func (t *Table) GetAt(s *Snapshot, key int64) ([]Value, error) {
	tree, ok := t.treeAt(s)
	if !ok {
		return nil, fmt.Errorf("%w: %d", btree.ErrNotFound, key)
	}
	raw, err := tree.Get(key)
	if err != nil {
		return nil, err
	}
	return t.decodeAll(raw)
}

// RowsAt returns the committed row count as of s.
func (t *Table) RowsAt(s *Snapshot) int64 {
	m, ok := t.metaAt(s.ps.Tag())
	if !ok {
		return 0
	}
	return m.rows
}

// KeyBoundsAt returns the clustered-key bounds as of s; ok is false for
// an empty (or not yet existing) table.
func (t *Table) KeyBoundsAt(s *Snapshot) (min, max int64, ok bool, err error) {
	tree, tok := t.treeAt(s)
	if !tok {
		return 0, 0, false, nil
	}
	return tree.Bounds()
}

// StatsAt returns the table's storage footprint as of s. The leaf count
// walks the snapshot's leaf chain, so a concurrent writer splitting
// pages does not skew it.
func (t *Table) StatsAt(s *Snapshot) (TableStats, error) {
	m, ok := t.metaAt(s.ps.Tag())
	if !ok {
		return TableStats{}, nil
	}
	tree := btree.OpenFetch(s.ps, m.root, m.height, m.count)
	leaves, err := tree.LeafPageCount()
	if err != nil {
		return TableStats{}, err
	}
	return TableStats{
		Rows:       m.rows,
		RowBytes:   m.rowBytes,
		BlobBytes:  m.blobBytes,
		LeafPages:  leaves,
		TreeHeight: m.height,
	}, nil
}
