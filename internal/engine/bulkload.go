package engine

import (
	"errors"
	"fmt"
	"io"
	"sort"

	"sqlarray/internal/blob"
	"sqlarray/internal/btree"
	"sqlarray/internal/pages"
)

// Bulk ingest: the COPY path. A row-at-a-time INSERT session pays for a
// root descent, copy-on-write of the whole leaf path, a full-page log
// image of every touched page, a commit record, and (by default) an
// fsync — per row. BulkLoad amortizes all of it: rows are staged and
// sorted, blob payloads and row images stream onto freshly allocated
// pages packed full and logged exactly once, the WAL syncs every few
// hundred pages instead of every row, and a single commit record grafts
// the finished leaves onto the table's right spine and publishes the
// catalog delta.
//
// Durability is all-or-nothing without any extra machinery: recovery
// only applies page images that a later commit record covers, so a
// crash mid-load finds an uncommitted tail, truncates it, and the table
// is exactly as it was before the load began. The fresh pages a died
// load may have flushed are unreachable garbage, never visible state.
//
// The load holds the database write lock for its whole duration —
// bulk ingest is still single-writer — but snapshot readers are never
// blocked: phase 1 touches only fresh pages, and phase 2 is an ordinary
// capture-backed commit.

// BulkSource yields rows for a bulk load in schema order. Next returns
// io.EOF after the last row. Values need only stay valid until the next
// call — the loader copies what it keeps.
type BulkSource interface {
	Next() ([]Value, error)
}

// ValuesSource adapts an in-memory row slice to BulkSource.
type ValuesSource struct {
	rows [][]Value
	i    int
}

// NewValuesSource returns a BulkSource over rows.
func NewValuesSource(rows [][]Value) *ValuesSource {
	return &ValuesSource{rows: rows}
}

// Next implements BulkSource.
func (s *ValuesSource) Next() ([]Value, error) {
	if s.i >= len(s.rows) {
		return nil, io.EOF
	}
	r := s.rows[s.i]
	s.i++
	return r, nil
}

// BulkOptions tunes a bulk load. The zero value is ready to use.
type BulkOptions struct {
	// SyncEvery is how many freshly written pages are logged between
	// WAL syncs during staging. Each sync makes the pages behind it
	// evictable, bounding the dirty working set; more frequent syncs
	// trade throughput for a smaller bound. Default 256 (2 MB of log).
	SyncEvery int
}

const defaultBulkSyncEvery = 256

// BulkStats reports what a completed load wrote.
type BulkStats struct {
	Rows      int64 // rows ingested
	RowBytes  int64 // on-page row-image bytes
	BlobBytes int64 // out-of-page blob payload bytes
	LeafPages int   // fresh leaf pages written
	BlobPages int   // fresh blob chunk + directory pages written
}

// ErrBulkOverlap reports a bulk load whose keys are not strictly above
// the table's current maximum. The bulk path writes packed leaves and
// grafts them after the existing rightmost leaf, so it can only append;
// interleaving loads go through INSERT.
var ErrBulkOverlap = errors.New("engine: bulk load keys must exceed every existing key")

// pendingRow is a staged row: key plus its final on-page image (MAX
// columns already replaced by blob refs).
type pendingRow struct {
	key int64
	raw []byte
}

// BulkLoad ingests every row src yields into the table and commits them
// as one write session. The table must be empty or every new key must
// be strictly greater than the current maximum key; duplicate keys in
// the source are rejected. On any error the table is left exactly as it
// was (fresh pages already written become unreferenced garbage).
func (t *Table) BulkLoad(src BulkSource, opts BulkOptions) (BulkStats, error) {
	db := t.db
	syncEvery := opts.SyncEvery
	if syncEvery <= 0 {
		syncEvery = defaultBulkSyncEvery
	}

	db.writeMu.Lock()
	locked := true
	defer func() {
		if locked {
			db.writeMu.Unlock()
		}
	}()

	var stats BulkStats

	// The live tree is the writer's view; under writeMu it is stable.
	_, maxOld, nonEmpty, err := t.tree.Bounds()
	if err != nil {
		return stats, err
	}
	prevLeaf, err := t.tree.RightmostLeaf()
	if err != nil {
		return stats, err
	}

	// onPage streams every completed fresh page's image into the WAL
	// while the page is still pinned, syncing every syncEvery pages so
	// the logged prefix becomes evictable — the load's dirty working
	// set stays bounded no matter how large the ingest is.
	pagesDone := 0
	onPage := func(f *pages.Frame) error {
		pagesDone++
		if db.wal == nil {
			return nil
		}
		if err := db.logFrame(f); err != nil {
			return err
		}
		if pagesDone%syncEvery == 0 {
			return db.wal.Sync()
		}
		return nil
	}

	// Phase 1a: pull and stage rows. Blob payloads (the bulk of the
	// bytes in array workloads) stream to fresh chunk pages immediately
	// — their page order does not depend on key order — while the small
	// row images accumulate for the sort.
	pending, err := t.stageRows(src, onPage, &stats)
	if err != nil {
		return stats, err
	}
	if len(pending) == 0 {
		return stats, nil
	}

	// Phase 1b: sort by key, reject duplicates and overlap. The bulk
	// path is append-only: packed leaves graft after the current
	// rightmost leaf, so every new key must clear the old maximum.
	sort.Slice(pending, func(i, j int) bool { return pending[i].key < pending[j].key })
	for i := 1; i < len(pending); i++ {
		if pending[i].key == pending[i-1].key {
			return stats, fmt.Errorf("%w: %d", btree.ErrDuplicate, pending[i].key)
		}
	}
	if nonEmpty && pending[0].key <= maxOld {
		return stats, fmt.Errorf("%w: new key %d <= existing max %d",
			ErrBulkOverlap, pending[0].key, maxOld)
	}

	// Phase 1c: pack the sorted stream into fresh leaves, logged as
	// they complete.
	stats.BlobPages = pagesDone
	lw := btree.NewLeafWriter(db.bp, prevLeaf, onPage)
	for _, pr := range pending {
		if err := lw.Add(pr.key, pr.raw); err != nil {
			lw.Abandon()
			return stats, err
		}
	}
	leaves, err := lw.Finish()
	if err != nil {
		return stats, err
	}
	stats.LeafPages = len(leaves)

	// Phase 2: graft the leaves onto the tree and commit. This is an
	// ordinary capture-backed session — the right-spine pages it COWs
	// are logged by Commit, the single commit record carries the
	// catalog delta, and publish flips snapshot visibility atomically.
	tx, err := db.beginTxLocked()
	if err != nil {
		return stats, err
	}
	locked = false // the session owns the unlock now
	tx.touch(t)
	if err := t.tree.GraftAppend(prevLeaf, leaves, len(pending)); err != nil {
		tx.Abort()
		return stats, err
	}
	t.rows.Add(stats.Rows)
	t.rowBytes.Add(stats.RowBytes)
	t.blobBytes.Add(stats.BlobBytes)
	if err := tx.Commit(); err != nil {
		return stats, err
	}
	db.m.bulkLoads.Inc()
	db.m.bulkRows.Add(uint64(stats.Rows))
	db.m.bulkLeafPages.Add(uint64(stats.LeafPages))
	db.m.bulkBlobPages.Add(uint64(stats.BlobPages))
	return stats, nil
}

// stageRows drains src: MAX columns are written to fresh blob pages and
// replaced by their refs, the row image is encoded, and the (key, image)
// pairs are returned for sorting. Keys are pre-checked against nothing
// here — ordering and overlap are the caller's phase 1b.
func (t *Table) stageRows(src BulkSource, onPage func(*pages.Frame) error, stats *BulkStats) ([]pendingRow, error) {
	db := t.db
	var pending []pendingRow
	for {
		vals, err := src.Next()
		if errors.Is(err, io.EOF) {
			return pending, nil
		}
		if err != nil {
			return nil, err
		}
		if len(vals) != len(t.schema.Columns) {
			return nil, fmt.Errorf("%w: %d values for %d columns",
				ErrTypeError, len(vals), len(t.schema.Columns))
		}
		key, err := vals[t.schema.Key].AsInt()
		if err != nil {
			return nil, fmt.Errorf("engine: clustered key: %w", err)
		}
		stored := vals
		copied := false
		for i, c := range t.schema.Columns {
			if c.Type != ColVarBinaryMax || vals[i].IsNull() {
				continue
			}
			if !copied {
				stored = append([]Value(nil), vals...)
				copied = true
			}
			codec := blob.Codec{}
			if db.compress {
				codec = codecForBlob(vals[i].B)
			}
			ref, err := db.blobs.WriteFresh(vals[i].B, codec, onPage)
			if err != nil {
				return nil, fmt.Errorf("engine: writing MAX column %q: %w", c.Name, err)
			}
			enc := make([]byte, blob.RefSize)
			ref.Encode(enc)
			stored[i] = BinaryMaxValue(enc)
			stats.BlobBytes += int64(len(vals[i].B))
		}
		raw, err := encodeRow(&t.schema, stored)
		if err != nil {
			return nil, err
		}
		if len(raw) > btree.MaxValueSize {
			return nil, fmt.Errorf("%w: %d bytes", ErrRowTooWide, len(raw))
		}
		pending = append(pending, pendingRow{key: key, raw: raw})
		stats.Rows++
		stats.RowBytes += int64(len(raw))
	}
}
