package engine

import (
	"bytes"
	"testing"

	"sqlarray/internal/blob"
	"sqlarray/internal/core"
)

// maxTable builds a table with one MAX array column holding a 20x20x20
// float64 cube (a 64 kB, multi-chunk blob) under key 1 and a small 5-vector
// (single-chunk) under key 2.
func maxTable(t *testing.T) (*DB, *Table, *core.Array, *core.Array) {
	t.Helper()
	db := NewMemDB()
	s, err := NewSchema(
		Column{Name: "id", Type: ColInt64},
		Column{Name: "a", Type: ColVarBinaryMax},
	)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := db.CreateTable("cubes", s)
	if err != nil {
		t.Fatal(err)
	}
	cube, err := core.New(core.Max, core.Float64, 20, 20, 20)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < cube.Len(); i++ {
		cube.SetFloatAt(i, float64(i))
	}
	vec := core.Vector(1, 2, 3, 4, 5)
	if err := tbl.Insert([]Value{IntValue(1), BinaryMaxValue(cube.Bytes())}); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Insert([]Value{IntValue(2), BinaryMaxValue(vec.Bytes())}); err != nil {
		t.Fatal(err)
	}
	return db, tbl, cube, vec
}

func maxRef(t *testing.T, tbl *Table, key int64) []byte {
	t.Helper()
	row, err := tbl.Get(key)
	if err != nil {
		t.Fatal(err)
	}
	return row[1].B
}

func TestBlobHeaderReadsPrefixOnly(t *testing.T) {
	db, tbl, cube, _ := maxTable(t)
	ref := maxRef(t, tbl, 1)
	db.Blobs().ResetStats()
	h, hs, err := tbl.BlobHeader(ref)
	if err != nil {
		t.Fatal(err)
	}
	if h.Rank() != 3 || h.Dims[0] != 20 || h.Elem != core.Float64 {
		t.Errorf("header = %v", h)
	}
	ch := cube.Header()
	if hs != ch.EncodedSize() {
		t.Errorf("header size = %d, want %d", hs, ch.EncodedSize())
	}
	// The cube is 8000 floats = ~64 kB over 8 chunks; the header read
	// must touch only the first chunk (twice: prefix, then full header).
	if got := db.Blobs().Stats().ChunkReads; got > 2 {
		t.Errorf("BlobHeader touched %d chunks, want <= 2", got)
	}
}

func TestBlobSubarrayMatchesInMemory(t *testing.T) {
	db, tbl, cube, _ := maxTable(t)
	ref := maxRef(t, tbl, 1)
	offset, size := []int{1, 4, 6}, []int{5, 5, 3}
	want, err := cube.Subarray(offset, size, false)
	if err != nil {
		t.Fatal(err)
	}
	got, err := tbl.BlobSubarray(ref, offset, size, false)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Payload(), want.Payload()) {
		t.Error("BlobSubarray payload disagrees with in-memory Subarray")
	}
	if got.Rank() != 3 || got.Dim(0) != 5 || got.Dim(2) != 3 {
		t.Errorf("dims = %v", got.Dims())
	}
	// Collapse drops unit dims like the in-memory path.
	col, err := tbl.BlobSubarray(ref, []int{0, 0, 0}, []int{20, 1, 1}, true)
	if err != nil {
		t.Fatal(err)
	}
	if col.Rank() != 1 || col.Dim(0) != 20 {
		t.Errorf("collapsed dims = %v", col.Dims())
	}
	if got := db.Pool().PinnedFrames(); got != 0 {
		t.Errorf("PinnedFrames = %d", got)
	}
}

// TestBlobSubarrayTouchesFewerChunksThanReadAll is the engine-level
// acceptance check for the pushdown: slicing a small corner of a stored
// cube must read strictly fewer chunk pages than materializing it.
func TestBlobSubarrayTouchesFewerChunksThanReadAll(t *testing.T) {
	db, tbl, _, _ := maxTable(t)
	ref := maxRef(t, tbl, 1)
	db.Blobs().ResetStats()
	if _, err := tbl.FetchBlob(ref); err != nil {
		t.Fatal(err)
	}
	whole := db.Blobs().Stats().ChunkReads
	db.Blobs().ResetStats()
	if _, err := tbl.BlobSubarray(ref, []int{0, 0, 0}, []int{4, 4, 1}, false); err != nil {
		t.Fatal(err)
	}
	sliced := db.Blobs().Stats().ChunkReads
	if sliced >= whole {
		t.Errorf("BlobSubarray touched %d chunks, FetchBlob touched %d — pushdown not effective",
			sliced, whole)
	}
}

func TestResolveMaxZeroCopyAndFallback(t *testing.T) {
	db, tbl, cube, vec := maxTable(t)
	var pins BlobPins

	// Single-chunk blob: zero-copy, the pin is held by the set.
	small, err := tbl.ResolveMax(maxRef(t, tbl, 2), &pins)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(small, vec.Bytes()) {
		t.Error("zero-copy resolve bytes mismatch")
	}
	if pins.Held() != 1 {
		t.Errorf("Held = %d, want 1", pins.Held())
	}
	if got := db.Pool().PinnedFrames(); got != 1 {
		t.Errorf("PinnedFrames with live zero-copy value = %d, want 1", got)
	}

	// Multi-chunk blob: copying fallback, no pin.
	big, err := tbl.ResolveMax(maxRef(t, tbl, 1), &pins)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(big, cube.Bytes()) {
		t.Error("fallback resolve bytes mismatch")
	}
	if pins.Held() != 1 {
		t.Errorf("Held after fallback = %d, want still 1", pins.Held())
	}

	// nil pins forces the copying path even for small blobs.
	small2, err := tbl.ResolveMax(maxRef(t, tbl, 2), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(small2, vec.Bytes()) {
		t.Error("nil-pins resolve bytes mismatch")
	}

	pins.Release()
	pins.Release() // idempotent
	if got := db.Pool().PinnedFrames(); got != 0 {
		t.Errorf("PinnedFrames after Release = %d", got)
	}
	if err := db.DropCleanBuffers(); err != nil {
		t.Errorf("DropCleanBuffers after Release: %v", err)
	}
}

func TestReadBlobRunsPinnedThroughTable(t *testing.T) {
	db, tbl, cube, _ := maxTable(t)
	ref := maxRef(t, tbl, 1)
	h := cube.Header()
	hs := h.EncodedSize()
	runs, err := core.SubarrayPlan(h, []int{2, 3, 4}, []int{4, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	blobRuns := make([]blob.Run, len(runs))
	total := 0
	for i, r := range runs {
		blobRuns[i] = blob.Run{SrcOff: r.SrcOff + hs, DstOff: r.DstOff, Len: r.Len}
		total += r.Len
	}
	want := make([]byte, total)
	if err := tbl.ReadBlobRuns(ref, want, blobRuns); err != nil {
		t.Fatal(err)
	}
	rv, err := tbl.ReadBlobRunsPinned(ref, blobRuns)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, total)
	rv.CopyTo(got)
	rv.Release()
	if !bytes.Equal(got, want) {
		t.Error("pinned run read disagrees with copying run read")
	}
	if got := db.Pool().PinnedFrames(); got != 0 {
		t.Errorf("PinnedFrames = %d", got)
	}
}
