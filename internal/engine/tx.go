package engine

import (
	"encoding/binary"
	"encoding/json"
	"fmt"

	"sqlarray/internal/pages"
	"sqlarray/internal/wal"
)

// This file implements the engine's write sessions — the unit of
// durability. Every DML statement (and CREATE TABLE) runs inside a Tx:
//
//  1. Begin takes the database write lock (the engine is single-writer,
//     like SQLite) and starts a buffer-pool capture, so every frame the
//     statement dirties is recorded and marked unflushable.
//  2. The statement mutates pages freely through the B-tree and blob
//     layers; nothing it touches can reach the database file.
//  3. Commit appends a full after-image of each dirtied page to the
//     WAL, stamps the frames' pageLSNs, appends a commit record carrying
//     the catalog delta (tree roots, row counts, new table schemas), and
//     syncs the log — the WAL-before-flush protocol. Only then may the
//     buffer pool write those frames to the database file.
//
// Redo is physical and idempotent: recovery replays committed page
// images in log order, so it converges from any mix of flushed and
// unflushed pages, and a torn database-file write is repaired by the
// logged image. Records after the last commit record are an uncommitted
// tail and are truncated away. No before-images (undo) are needed.

// walTableState is the catalog entry logged in commit and checkpoint
// records: everything needed to re-attach a table after recovery. Cols
// is present only when the record introduces the table (CREATE TABLE or
// a checkpoint snapshot).
type walTableState struct {
	Name      string      `json:"name"`
	Cols      []walColumn `json:"cols,omitempty"`
	Key       int         `json:"key,omitempty"`
	Root      uint32      `json:"root"`
	Height    int         `json:"height"`
	Count     int         `json:"count"`
	Rows      int64       `json:"rows"`
	RowBytes  int64       `json:"rowBytes"`
	BlobBytes int64       `json:"blobBytes"`
}

type walColumn struct {
	Name string `json:"name"`
	Type uint8  `json:"type"`
}

// walCatalog is the payload of commit records (delta: touched tables)
// and checkpoint records (snapshot: all tables).
type walCatalog struct {
	Tables []walTableState `json:"tables"`
}

// Tx is a write session. It owns the database write lock from Begin to
// Commit; all mutating Table methods take one (the convenience wrappers
// open a single-statement session internally).
type Tx struct {
	db      *DB
	cap     *pages.Capture
	touched map[*Table]struct{}
	created map[*Table]struct{}
	done    bool
}

// Begin opens a write session, serializing against all other writers
// and starting the dirty-frame capture. The capture makes every page
// the session touches copy-on-write: snapshot readers keep resolving
// the pre-images until Commit publishes, and Abort discards the copies
// as if the session never ran.
func (db *DB) Begin() (*Tx, error) {
	db.writeMu.Lock()
	c, err := db.bp.BeginCapture()
	if err != nil {
		db.writeMu.Unlock()
		return nil, err
	}
	return &Tx{
		db:      db,
		cap:     c,
		touched: make(map[*Table]struct{}),
		created: make(map[*Table]struct{}),
	}, nil
}

// beginTxLocked opens a write session for a caller that already holds
// db.writeMu — the bulk loader, which needs the writer lock across its
// capture-free staging phase before opening the capture that covers its
// catalog graft. Commit/Abort release writeMu as usual; if this errors,
// the caller still owns the lock.
func (db *DB) beginTxLocked() (*Tx, error) {
	c, err := db.bp.BeginCapture()
	if err != nil {
		return nil, err
	}
	return &Tx{
		db:      db,
		cap:     c,
		touched: make(map[*Table]struct{}),
		created: make(map[*Table]struct{}),
	}, nil
}

// logFrame appends one dirty frame's after-image to the WAL and stamps
// its pageLSN, making the frame flushable once the log syncs past it.
// Shared by Tx.Commit (capture frames) and the bulk loader (fresh pages
// streamed out while still pinned).
func (db *DB) logFrame(f *pages.Frame) error {
	l := db.wal
	return db.bp.LogDirtyFrame(f, func(p *pages.Page) (uint64, error) {
		// Blob and free-list pages get truncated after-images: their
		// meaningful bytes end at Used() (compressed chunks in
		// particular use a fraction of the 8 kB body), so logging
		// header+used shrinks the log. Recovery zero-extends, which
		// is byte-exact only if the tail really is zero — clear it
		// BEFORE stamping the LSN and checksum so the reconstructed
		// page checksums identically.
		prefix := false
		switch p.Type() {
		case pages.TypeBlobData, pages.TypeBlobTree, pages.TypeFree:
			prefix = true
			clear(p.Body()[p.Used():])
		}
		lsn := uint64(l.NextLSN())
		p.SetLSN(lsn)
		p.UpdateChecksum()
		if prefix {
			n := pages.HeaderSize + p.Used()
			payload := make([]byte, 4+n)
			binary.LittleEndian.PutUint32(payload, uint32(p.ID))
			copy(payload[4:], p.Buf[:n])
			got, err := l.Append(wal.RecPagePrefix, payload)
			return uint64(got), err
		}
		payload := make([]byte, 4+pages.PageSize)
		binary.LittleEndian.PutUint32(payload, uint32(p.ID))
		copy(payload[4:], p.Buf[:])
		got, err := l.Append(wal.RecPageImage, payload)
		return uint64(got), err
	})
}

// touch records that the session mutated t (its state goes into the
// commit record's catalog delta).
func (tx *Tx) touch(t *Table) { tx.touched[t] = struct{}{} }

// noteCreated records that the session created t (its schema goes into
// the commit record).
func (tx *Tx) noteCreated(t *Table) {
	tx.created[t] = struct{}{}
	tx.touched[t] = struct{}{}
}

// Commit logs the session's page after-images and catalog delta (when a
// WAL is attached), syncs the WAL (unless the database was opened with
// NoSyncOnCommit), publishes the session's page versions and catalog
// versions atomically — one commit-clock tick, so a concurrent snapshot
// sees all of the commit or none of it — and releases the write lock.
// Commit is idempotent; a Tx must not be used after it.
func (tx *Tx) Commit() error {
	if tx.done {
		return nil
	}
	tx.done = true
	defer tx.db.writeMu.Unlock()
	frames := tx.db.bp.EndCapture(tx.cap)
	if len(frames) == 0 && len(tx.touched) == 0 {
		return nil // read-only session: nothing to log or publish
	}
	if tx.db.wal == nil {
		tx.publish()
		return nil
	}
	l := tx.db.wal
	var firstErr error
	for _, f := range frames {
		if err := tx.db.logFrame(f); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if firstErr != nil {
		// A page image failed to reach the log. Without it, a commit
		// record would let recovery apply this group's catalog delta
		// against stale pages — silent corruption. Leave the group
		// uncommitted and unpublished: recovery discards it wholesale,
		// the frames stay pending (unflushable, off the LRU), and
		// snapshot readers keep resolving the pre-images — the database
		// degrades to read-only rather than diverging from its log.
		return firstErr
	}
	payload, err := json.Marshal(tx.catalogDelta())
	if err != nil {
		return fmt.Errorf("engine: encoding commit record: %w", err)
	}
	if _, err := l.Append(wal.RecCommit, payload); err != nil {
		firstErr = err
	}
	if tx.db.syncOnCommit {
		if err := l.Sync(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	// Publish even when the commit record or sync degraded: the page
	// images are logged and the in-memory state reflects the statement,
	// so readers should see it — only durability is weakened, exactly as
	// under NoSyncOnCommit, and the error still reaches the caller.
	tx.publish()
	return firstErr
}

// publish makes the session's work visible: stamp every captured frame
// with the next commit tag, append each touched table's catalog version
// under the same tag, then advance the commit clock. Snapshots acquired
// before the clock tick resolve the pre-images; snapshots after it see
// the whole commit.
func (tx *Tx) publish() {
	tag := tx.db.bp.PreparePublish(tx.cap)
	for t := range tx.touched {
		t.publishMeta(tag)
	}
	tx.db.bp.FinishPublish(tag)
	tx.db.m.commits.Inc()
}

// Abort discards the session: captured page copies are invalidated (the
// WAL-before-flush victim scan can never persist them), displaced
// pre-images are restored, touched tables' live state is reset to their
// newest committed version, tables the session created are dropped from
// the catalog, and the write lock is released. Nothing is logged — a
// plain abort appends no WAL records, so recovery cannot resurrect any
// of it. Idempotent (after Commit it is a no-op).
func (tx *Tx) Abort() {
	if tx.done {
		return
	}
	tx.done = true
	tx.db.m.aborts.Inc()
	defer tx.db.writeMu.Unlock()
	tx.db.bp.EndCapture(tx.cap)
	tx.db.bp.AbortCapture(tx.cap)
	for t := range tx.touched {
		t.restoreMeta()
	}
	if len(tx.created) > 0 {
		tx.db.mu.Lock()
		for t := range tx.created {
			delete(tx.db.tables, t.name)
		}
		tx.db.mu.Unlock()
	}
}

// Close finishes the session: on a nil opErr it commits and returns the
// commit error; on a non-nil opErr it aborts — releasing the write lock
// and rolling every partial page and catalog effect back — and returns
// opErr. This is the one-liner for single-statement wrappers: a failed
// statement leaves the database exactly as it found it.
func (tx *Tx) Close(opErr error) error {
	if opErr != nil {
		tx.Abort()
		return opErr
	}
	return tx.Commit()
}

// catalogDelta builds the commit record's table list.
func (tx *Tx) catalogDelta() walCatalog {
	var cat walCatalog
	for t := range tx.touched {
		_, isNew := tx.created[t]
		cat.Tables = append(cat.Tables, t.walState(isNew))
	}
	return cat
}

// walState snapshots a table's catalog entry. withSchema includes the
// column definitions (CREATE TABLE commits and checkpoint snapshots).
func (t *Table) walState(withSchema bool) walTableState {
	st := walTableState{
		Name:      t.name,
		Root:      uint32(t.tree.Root()),
		Height:    t.tree.Height(),
		Count:     t.tree.Len(),
		Rows:      t.rows.Load(),
		RowBytes:  t.rowBytes.Load(),
		BlobBytes: t.blobBytes.Load(),
	}
	if withSchema {
		st.Key = t.schema.Key
		for _, c := range t.schema.Columns {
			st.Cols = append(st.Cols, walColumn{Name: c.Name, Type: uint8(c.Type)})
		}
	}
	return st
}
