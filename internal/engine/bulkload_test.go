package engine

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"sqlarray/internal/btree"
	"sqlarray/internal/pages"
	"sqlarray/internal/wal"
)

// bulkRows builds n rows of the walTestSchema with keys base..base+n-1,
// every third row carrying a multi-chunk MAX array.
func bulkRows(t *testing.T, base int64, n int) [][]Value {
	t.Helper()
	rows := make([][]Value, n)
	for i := 0; i < n; i++ {
		k := base + int64(i)
		m := Null
		if i%3 == 0 {
			m = BinaryMaxValue(bigArray(t, arrElems, float64(k)*10).Bytes())
		}
		rows[i] = []Value{IntValue(k), FloatValue(float64(k) / 2), m}
	}
	return rows
}

// TestBulkLoadMatchesInsert loads one table through BulkLoad and a twin
// through row-at-a-time Insert, then checks the two read identically.
func TestBulkLoadMatchesInsert(t *testing.T) {
	db := openDB(t, pages.NewMemDisk(), wal.NewMemStorage())
	bulk, err := db.CreateTable("bulk", walTestSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	slow, err := db.CreateTable("slow", walTestSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	const n = 400
	rows := bulkRows(t, 0, n)
	// Feed the loader in shuffled order to exercise the sort stage.
	shuffled := make([][]Value, n)
	for i, r := range rows {
		shuffled[(i*7)%n] = r
	}
	st, err := bulk.BulkLoad(NewValuesSource(shuffled), BulkOptions{SyncEvery: 8})
	if err != nil {
		t.Fatalf("BulkLoad: %v", err)
	}
	if st.Rows != n {
		t.Fatalf("stats.Rows = %d, want %d", st.Rows, n)
	}
	if st.LeafPages == 0 || st.BlobPages == 0 {
		t.Fatalf("stats pages = %+v, want both kinds written", st)
	}
	for _, r := range rows {
		if err := slow.Insert(r); err != nil {
			t.Fatal(err)
		}
	}

	if got, want := bulk.Rows(), slow.Rows(); got != want {
		t.Fatalf("rows %d, want %d", got, want)
	}
	bs, err := bulk.Stats()
	if err != nil {
		t.Fatal(err)
	}
	ss, err := slow.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if bs.Rows != ss.Rows || bs.RowBytes != ss.RowBytes || bs.BlobBytes != ss.BlobBytes {
		t.Fatalf("stats diverge: bulk %+v, insert %+v", bs, ss)
	}
	if bs.LeafPages > ss.LeafPages {
		t.Fatalf("bulk wrote %d leaves, insert path %d — packed leaves must not be worse", bs.LeafPages, ss.LeafPages)
	}
	// Row-by-row equivalence, forward scan order and blob contents.
	var keys []int64
	err = bulk.Scan(func(key int64, row *RowView) (bool, error) {
		keys = append(keys, key)
		return true, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != n {
		t.Fatalf("scanned %d rows, want %d", len(keys), n)
	}
	for i, k := range keys {
		if k != int64(i) {
			t.Fatalf("scan order broken at %d: key %d", i, k)
		}
	}
	for _, k := range []int64{0, 3, n - 1, n / 2} {
		bv, err := bulk.Get(k)
		if err != nil {
			t.Fatalf("bulk Get(%d): %v", k, err)
		}
		sv, err := slow.Get(k)
		if err != nil {
			t.Fatalf("slow Get(%d): %v", k, err)
		}
		if bv[1].F != sv[1].F {
			t.Fatalf("key %d: f %v != %v", k, bv[1].F, sv[1].F)
		}
		if k%3 == 0 {
			ba := fetchArray(t, bulk, k, 2)
			sa := fetchArray(t, slow, k, 2)
			if ba.FloatAt(arrElems-1) != sa.FloatAt(arrElems-1) {
				t.Fatalf("key %d: blob tails diverge", k)
			}
		}
	}
	verifyInvariants(t, db, "bulk", "slow")
}

// TestBulkLoadAppend checks the strict-append contract: loads stack on
// top of existing rows, overlapping keys and in-source duplicates are
// rejected without disturbing the table.
func TestBulkLoadAppend(t *testing.T) {
	db := openDB(t, pages.NewMemDisk(), wal.NewMemStorage())
	tbl, err := db.CreateTable("t", walTestSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range bulkRows(t, 0, 20) {
		if err := tbl.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tbl.BulkLoad(NewValuesSource(bulkRows(t, 20, 50)), BulkOptions{}); err != nil {
		t.Fatalf("append load: %v", err)
	}
	// Second stacked load on top of the first.
	if _, err := tbl.BulkLoad(NewValuesSource(bulkRows(t, 70, 30)), BulkOptions{}); err != nil {
		t.Fatalf("second append load: %v", err)
	}
	if got := tbl.Rows(); got != 100 {
		t.Fatalf("rows = %d, want 100", got)
	}

	// Overlap with existing keys must be rejected wholesale.
	if _, err := tbl.BulkLoad(NewValuesSource(bulkRows(t, 99, 5)), BulkOptions{}); !errors.Is(err, ErrBulkOverlap) {
		t.Fatalf("overlapping load: err = %v, want ErrBulkOverlap", err)
	}
	// Duplicate keys inside the source are rejected.
	dup := bulkRows(t, 200, 3)
	dup = append(dup, dup[1])
	if _, err := tbl.BulkLoad(NewValuesSource(dup), BulkOptions{}); !errors.Is(err, btree.ErrDuplicate) {
		t.Fatalf("duplicate load: err = %v, want ErrDuplicate", err)
	}
	if got := tbl.Rows(); got != 100 {
		t.Fatalf("rows after rejected loads = %d, want 100", got)
	}
	// The table still takes normal writes and reads coherently.
	if err := tbl.Insert([]Value{IntValue(500), FloatValue(1), Null}); err != nil {
		t.Fatal(err)
	}
	verifyInvariants(t, db, "t")
}

// TestBulkLoadEmptySource loads zero rows: a no-op, no session, no
// catalog churn.
func TestBulkLoadEmptySource(t *testing.T) {
	db := openDB(t, pages.NewMemDisk(), wal.NewMemStorage())
	tbl, err := db.CreateTable("t", walTestSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	st, err := tbl.BulkLoad(NewValuesSource(nil), BulkOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if st != (BulkStats{}) {
		t.Fatalf("stats = %+v, want zero", st)
	}
	verifyInvariants(t, db, "t")
}

// failingSource yields good rows, then an injected error — a parse
// failure deep into a load, after blob pages have already been written
// and synced into the WAL.
type failingSource struct {
	rows [][]Value
	i    int
}

var errInjected = errors.New("injected source failure")

func (s *failingSource) Next() ([]Value, error) {
	if s.i >= len(s.rows) {
		return nil, errInjected
	}
	r := s.rows[s.i]
	s.i++
	return r, nil
}

// TestBulkLoadCrashMidLoad kills the database after a load died part way
// through staging (blob pages logged and synced, no commit). Recovery
// must show none of the load: prior rows intact, free list untouched,
// and the table fully usable — including a clean retry of the same load.
func TestBulkLoadCrashMidLoad(t *testing.T) {
	disk := pages.NewMemDisk()
	st := wal.NewMemStorage()
	db := openDB(t, disk, st)
	tbl, err := db.CreateTable("t", walTestSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range bulkRows(t, 0, 10) {
		if err := tbl.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	freeBefore, err := db.blobs.FreeListLen()
	if err != nil {
		t.Fatal(err)
	}

	// SyncEvery 2 forces WAL syncs mid-staging: uncommitted page images
	// are durably in the log when the load dies.
	_, err = tbl.BulkLoad(&failingSource{rows: bulkRows(t, 100, 30)}, BulkOptions{SyncEvery: 2})
	if !errors.Is(err, errInjected) {
		t.Fatalf("load error = %v, want injected failure", err)
	}
	if got := tbl.Rows(); got != 10 {
		t.Fatalf("rows after failed load = %d, want 10", got)
	}

	// Crash and recover: the uncommitted staged images must not be
	// applied (all-or-nothing: none of the load).
	st.Crash()
	db2 := openDB(t, disk, st)
	tbl2, err := db2.Table("t")
	if err != nil {
		t.Fatal(err)
	}
	if got := tbl2.Rows(); got != 10 {
		t.Fatalf("recovered rows = %d, want 10", got)
	}
	if _, err := tbl2.Get(100); !errors.Is(err, btree.ErrNotFound) {
		t.Fatalf("staged key visible after crash: err = %v", err)
	}
	freeAfter, err := db2.blobs.FreeListLen()
	if err != nil {
		t.Fatal(err)
	}
	if freeAfter != freeBefore {
		t.Fatalf("free list length changed across failed load: %d -> %d", freeBefore, freeAfter)
	}

	// The same load retried on the recovered database lands completely.
	if _, err := tbl2.BulkLoad(NewValuesSource(bulkRows(t, 100, 30)), BulkOptions{SyncEvery: 2}); err != nil {
		t.Fatalf("retry load: %v", err)
	}
	if got := tbl2.Rows(); got != 40 {
		t.Fatalf("rows after retry = %d, want 40", got)
	}
	verifyInvariants(t, db2, "t")
}

// TestBulkLoadCrashAfterCommit is the other half of all-or-nothing: a
// load whose commit record synced survives a crash in full.
func TestBulkLoadCrashAfterCommit(t *testing.T) {
	disk := pages.NewMemDisk()
	st := wal.NewMemStorage()
	db := openDB(t, disk, st)
	tbl, err := db.CreateTable("t", walTestSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.BulkLoad(NewValuesSource(bulkRows(t, 0, 120)), BulkOptions{SyncEvery: 4}); err != nil {
		t.Fatal(err)
	}
	st.Crash()
	db2 := openDB(t, disk, st)
	tbl2, err := db2.Table("t")
	if err != nil {
		t.Fatal(err)
	}
	if got := tbl2.Rows(); got != 120 {
		t.Fatalf("recovered rows = %d, want 120", got)
	}
	a := fetchArray(t, tbl2, 117, 2)
	if got, want := a.FloatAt(5), 1170.0+5; got != want {
		t.Fatalf("recovered blob elem = %v, want %v", got, want)
	}
	verifyInvariants(t, db2, "t")
}

// TestBulkLoadConcurrentSnapshots races bulk loads against snapshot
// scans: every reader must see a committed prefix of whole loads —
// a multiple of the batch size — never a torn one. Run under -race.
func TestBulkLoadConcurrentSnapshots(t *testing.T) {
	db := openDB(t, pages.NewMemDisk(), wal.NewMemStorage())
	schema, err := NewSchema(
		Column{Name: "id", Type: ColInt64},
		Column{Name: "x", Type: ColFloat64},
	)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := db.CreateTable("t", schema)
	if err != nil {
		t.Fatal(err)
	}
	const batches = 12
	const perBatch = 300

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := db.Snapshot()
				cur, err := tbl.CursorAt(s)
				if err != nil {
					s.Release()
					errs <- err
					return
				}
				n := 0
				last := int64(-1)
				for cur.Next() {
					if k := cur.Key(); k != last+1 {
						errs <- fmt.Errorf("scan gap: key %d after %d", k, last)
						cur.Close()
						s.Release()
						return
					} else {
						last = k
					}
					n++
				}
				err = cur.Err()
				cur.Close()
				s.Release()
				if err != nil {
					errs <- err
					return
				}
				if n%perBatch != 0 {
					errs <- fmt.Errorf("torn read: %d rows is not a whole number of loads", n)
					return
				}
			}
		}()
	}
	for b := 0; b < batches; b++ {
		rows := make([][]Value, perBatch)
		for i := range rows {
			k := int64(b*perBatch + i)
			rows[i] = []Value{IntValue(k), FloatValue(float64(k))}
		}
		if _, err := tbl.BulkLoad(NewValuesSource(rows), BulkOptions{SyncEvery: 16}); err != nil {
			t.Fatalf("load %d: %v", b, err)
		}
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := tbl.Rows(); got != batches*perBatch {
		t.Fatalf("rows = %d, want %d", got, batches*perBatch)
	}
	verifyInvariants(t, db, "t")
}
