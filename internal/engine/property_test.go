package engine

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randValue draws a random value legal for the column type (including
// NULLs).
func randValue(rng *rand.Rand, t ColType) Value {
	if rng.Intn(5) == 0 {
		return Null
	}
	switch t {
	case ColInt64:
		return IntValue(rng.Int63() - rng.Int63())
	case ColFloat64:
		return FloatValue(rng.NormFloat64() * math.Pow(10, float64(rng.Intn(20)-10)))
	case ColVarBinary:
		b := make([]byte, rng.Intn(200))
		rng.Read(b)
		return BinaryValue(b)
	case ColVarBinaryMax:
		b := make([]byte, 12) // refs are fixed-size at the row layer
		rng.Read(b)
		return BinaryMaxValue(b)
	}
	return Null
}

// TestRowCodecRoundtripProperty: encode/decode with random schemas and
// values is the identity.
func TestRowCodecRoundtripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	types := []ColType{ColInt64, ColFloat64, ColVarBinary, ColVarBinaryMax}
	f := func() bool {
		ncols := 1 + rng.Intn(8)
		cols := make([]Column, ncols)
		cols[0] = Column{Name: "id", Type: ColInt64}
		for i := 1; i < ncols; i++ {
			cols[i] = Column{Name: string(rune('a' + i)), Type: types[rng.Intn(len(types))]}
		}
		schema, err := NewSchema(cols...)
		if err != nil {
			return false
		}
		vals := make([]Value, ncols)
		vals[0] = IntValue(rng.Int63n(1 << 40)) // key must not be NULL
		for i := 1; i < ncols; i++ {
			vals[i] = randValue(rng, cols[i].Type)
		}
		raw, err := encodeRow(&schema, vals)
		if err != nil {
			return false
		}
		var rv RowView
		rv.reset(&schema, raw)
		// Decode in a random order to exercise offset memoization.
		order := rng.Perm(ncols)
		for _, i := range order {
			got, err := rv.Col(i)
			if err != nil {
				return false
			}
			want := vals[i]
			if got.IsNull() != want.IsNull() {
				return false
			}
			if want.IsNull() {
				continue
			}
			switch cols[i].Type {
			case ColInt64:
				w, _ := want.AsInt()
				if got.I != w {
					return false
				}
			case ColFloat64:
				w, _ := want.AsFloat()
				if got.F != w && !(math.IsNaN(got.F) && math.IsNaN(w)) {
					return false
				}
			case ColVarBinary, ColVarBinaryMax:
				if !bytes.Equal(got.B, want.B) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestBoundaryMarshalRoundtripProperty: values crossing the UDF
// boundary arrive intact, including NULLs and empty binaries.
func TestBoundaryMarshalRoundtripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	types := []ColType{ColInt64, ColFloat64, ColVarBinary, ColVarBinaryMax}
	f := func() bool {
		n := rng.Intn(6)
		vals := make([]Value, n)
		for i := range vals {
			vals[i] = randValue(rng, types[rng.Intn(len(types))])
		}
		var buf []byte
		for _, v := range vals {
			buf = marshalValue(buf, v)
		}
		rest := buf
		for _, want := range vals {
			var got Value
			var err error
			got, rest, err = unmarshalValue(rest)
			if err != nil {
				return false
			}
			if got.IsNull() != want.IsNull() {
				return false
			}
			if want.IsNull() {
				continue
			}
			switch want.Kind {
			case ColInt64:
				if got.I != want.I {
					return false
				}
			case ColFloat64:
				if got.F != want.F && !(math.IsNaN(got.F) && math.IsNaN(want.F)) {
					return false
				}
			default:
				if !bytes.Equal(got.B, want.B) {
					return false
				}
			}
		}
		return len(rest) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestBoundaryTruncationDetected: every strict prefix of a marshaled
// stream fails to decode cleanly rather than yielding garbage.
func TestBoundaryTruncationDetected(t *testing.T) {
	vals := []Value{IntValue(7), FloatValue(2.5), BinaryValue([]byte{1, 2, 3, 4})}
	var buf []byte
	for _, v := range vals {
		buf = marshalValue(buf, v)
	}
	for cut := 1; cut < len(buf); cut++ {
		rest := buf[:cut]
		bad := false
		for len(rest) > 0 {
			var err error
			_, rest, err = unmarshalValue(rest)
			if err != nil {
				bad = true
				break
			}
		}
		// Cuts landing exactly on a value boundary legitimately decode a
		// shorter argument list; every other cut must error.
		if !bad && cut != 9 && cut != 18 {
			t.Errorf("truncation at %d went undetected", cut)
		}
	}
}

// TestTableInsertScanProperty: a batch of random rows inserted into a
// real table scans back in key order with identical contents.
func TestTableInsertScanProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	db := NewMemDB()
	s, err := NewSchema(
		Column{Name: "id", Type: ColInt64},
		Column{Name: "x", Type: ColFloat64},
		Column{Name: "b", Type: ColVarBinary},
	)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := db.CreateTable("prop", s)
	if err != nil {
		t.Fatal(err)
	}
	ref := map[int64][2]any{}
	for len(ref) < 3000 {
		key := rng.Int63n(1 << 32)
		if _, dup := ref[key]; dup {
			continue
		}
		x := rng.NormFloat64()
		b := make([]byte, rng.Intn(64))
		rng.Read(b)
		if err := tbl.Insert([]Value{IntValue(key), FloatValue(x), BinaryValue(b)}); err != nil {
			t.Fatal(err)
		}
		ref[key] = [2]any{x, append([]byte(nil), b...)}
	}
	prev := int64(math.MinInt64)
	seen := 0
	err = tbl.Scan(func(key int64, row *RowView) (bool, error) {
		if key <= prev {
			t.Fatalf("scan out of order: %d after %d", key, prev)
		}
		prev = key
		want, ok := ref[key]
		if !ok {
			t.Fatalf("unknown key %d", key)
		}
		xv, err := row.Col(1)
		if err != nil {
			return false, err
		}
		if xv.F != want[0].(float64) {
			t.Fatalf("key %d float mismatch", key)
		}
		bv, err := row.Col(2)
		if err != nil {
			return false, err
		}
		if !bytes.Equal(bv.B, want[1].([]byte)) {
			t.Fatalf("key %d binary mismatch", key)
		}
		seen++
		return true, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if seen != len(ref) {
		t.Fatalf("scanned %d of %d rows", seen, len(ref))
	}
}
