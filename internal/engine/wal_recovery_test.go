package engine

import (
	"errors"
	"testing"

	"sqlarray/internal/blob"
	"sqlarray/internal/btree"
	"sqlarray/internal/core"
	"sqlarray/internal/pages"
	"sqlarray/internal/wal"
)

// ---- harness ------------------------------------------------------------

func openWAL(t *testing.T, st wal.Storage) *wal.Log {
	t.Helper()
	l, err := wal.Open(st, wal.Options{SegmentSize: 1 << 20})
	if err != nil {
		t.Fatalf("wal.Open: %v", err)
	}
	return l
}

func openDB(t *testing.T, disk pages.DiskManager, st wal.Storage) *DB {
	t.Helper()
	db, err := Open(Options{Disk: disk, PoolPages: 512, WAL: openWAL(t, st)})
	if err != nil {
		t.Fatalf("engine.Open: %v", err)
	}
	return db
}

func walTestSchema(t *testing.T) Schema {
	t.Helper()
	s, err := NewSchema(
		Column{Name: "id", Type: ColInt64},
		Column{Name: "x", Type: ColFloat64},
		Column{Name: "m", Type: ColVarBinaryMax},
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// bigArray builds a 1-D Max float64 array spanning several blob chunks,
// with element i = seed + i.
func bigArray(t *testing.T, n int, seed float64) *core.Array {
	t.Helper()
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = seed + float64(i)
	}
	a, err := core.FromFloat64s(core.Max, core.Float64, vals, n)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// fetchArray reads a row's MAX column back as a core array.
func fetchArray(t *testing.T, tbl *Table, key int64, col int) *core.Array {
	t.Helper()
	vals, err := tbl.Get(key)
	if err != nil {
		t.Fatalf("Get(%d): %v", key, err)
	}
	payload, err := tbl.FetchBlob(vals[col].B)
	if err != nil {
		t.Fatalf("FetchBlob(%d): %v", key, err)
	}
	a, err := core.Wrap(payload)
	if err != nil {
		t.Fatalf("Wrap(%d): %v", key, err)
	}
	return a
}

// verifyInvariants scans every table end to end, reads every MAX blob,
// and checks the structural invariants the acceptance criteria name:
// row counts match the catalog, blob directories resolve, zero pins.
func verifyInvariants(t *testing.T, db *DB, tables ...string) {
	t.Helper()
	for _, name := range tables {
		tbl, err := db.Table(name)
		if err != nil {
			t.Fatalf("table %q: %v", name, err)
		}
		n := int64(0)
		err = tbl.Scan(func(key int64, row *RowView) (bool, error) {
			for i, c := range tbl.Schema().Columns {
				v, err := row.Col(i)
				if err != nil {
					return false, err
				}
				if c.Type == ColVarBinaryMax && !v.IsNull() {
					payload, err := tbl.FetchBlob(v.B)
					if err != nil {
						return false, err
					}
					if _, err := core.Wrap(payload); err != nil {
						return false, err
					}
				}
			}
			n++
			return true, nil
		})
		if err != nil {
			t.Fatalf("scan %q: %v", name, err)
		}
		if n != tbl.Rows() {
			t.Fatalf("table %q: scanned %d rows, catalog says %d", name, n, tbl.Rows())
		}
	}
	if pins := db.Pool().PinnedFrames(); pins != 0 {
		t.Fatalf("%d frames left pinned", pins)
	}
}

// ---- kill-and-recover ---------------------------------------------------

const arrElems = 5000 // ~40 kB payload: 5 blob chunks

func TestRecoverCommittedDML(t *testing.T) {
	disk := pages.NewMemDisk()
	st := wal.NewMemStorage()
	db := openDB(t, disk, st)
	tbl, err := db.CreateTable("t", walTestSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	mCol := 2
	for i := int64(0); i < 10; i++ {
		if err := tbl.Insert([]Value{
			IntValue(i), FloatValue(float64(i)), BinaryMaxValue(bigArray(t, arrElems, float64(i)*10000).Bytes()),
		}); err != nil {
			t.Fatal(err)
		}
	}
	// Checkpoint mid-workload: everything so far moves to the database
	// file and the log is pruned; recovery must compose checkpoint state
	// with the post-checkpoint tail.
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Post-checkpoint DML, all committed (synced) before the crash.
	if err := tbl.Update(4, []int{1}, []Value{FloatValue(44.5)}); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Update(3, []int{mCol}, []Value{BinaryMaxValue(bigArray(t, arrElems, 777).Bytes())}); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Delete(7); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Delete(8); err != nil {
		t.Fatal(err)
	}
	patch, err := core.FromFloat64s(core.Short, core.Float64, []float64{-1, -2, -3}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.UpdateBlobSubarray(0, mCol, []int{2500}, []int{3}, patch); err != nil {
		t.Fatal(err)
	}

	// Crash: the process dies, the OS cache (unsynced WAL bytes, which
	// there are none of — every statement synced) is lost, and all dirty
	// buffer-pool pages vanish with the process.
	st.Crash()
	db2 := openDB(t, disk, st)
	tbl2, err := db2.Table("t")
	if err != nil {
		t.Fatalf("recovered catalog: %v", err)
	}
	if got := tbl2.Rows(); got != 8 {
		t.Fatalf("recovered row count %d, want 8", got)
	}
	// Deleted rows are gone.
	for _, k := range []int64{7, 8} {
		if _, err := tbl2.Get(k); !errors.Is(err, btree.ErrNotFound) {
			t.Fatalf("deleted key %d: err = %v", k, err)
		}
	}
	// Scalar update survived.
	vals, err := tbl2.Get(4)
	if err != nil {
		t.Fatal(err)
	}
	if vals[1].F != 44.5 {
		t.Fatalf("updated x = %v, want 44.5", vals[1].F)
	}
	// Blob overwrite survived (and reads as the new content).
	a3 := fetchArray(t, tbl2, 3, mCol)
	if got := a3.FloatAt(0); got != 777 {
		t.Fatalf("rewritten blob elem 0 = %v, want 777", got)
	}
	// In-place subarray update survived.
	a0 := fetchArray(t, tbl2, 0, mCol)
	for i, want := range []float64{-1, -2, -3} {
		if got := a0.FloatAt(2500 + i); got != want {
			t.Fatalf("patched elem %d = %v, want %v", 2500+i, got, want)
		}
	}
	if got, want := a0.FloatAt(2499), float64(2499); got != want {
		t.Fatalf("neighbour elem = %v, want %v", got, want)
	}
	// Untouched row intact.
	a9 := fetchArray(t, tbl2, 9, mCol)
	if got, want := a9.FloatAt(123), 90000.0+123; got != want {
		t.Fatalf("row 9 elem = %v, want %v", got, want)
	}
	verifyInvariants(t, db2, "t")
}

func TestRecoverDiscardsUncommittedTail(t *testing.T) {
	disk := pages.NewMemDisk()
	st := wal.NewMemStorage()
	db := openDB(t, disk, st)
	tbl, err := db.CreateTable("t", walTestSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.Insert([]Value{IntValue(1), FloatValue(1), Null}); err != nil {
		t.Fatal(err)
	}
	// Forge an uncommitted tail: page images synced to the log with no
	// commit record after them (a statement that died mid-commit). The
	// images are garbage pages that must NOT be applied.
	junk := make([]byte, 4+pages.PageSize)
	junk[0] = 2 // page id 2 (a live page of the tree or blob space)
	for i := 4; i < len(junk); i++ {
		junk[i] = 0xFF
	}
	if _, err := db.WAL().Append(wal.RecPageImage, junk); err != nil {
		t.Fatal(err)
	}
	if err := db.WAL().Sync(); err != nil {
		t.Fatal(err)
	}
	st.Crash()
	db2 := openDB(t, disk, st)
	tbl2, err := db2.Table("t")
	if err != nil {
		t.Fatal(err)
	}
	if got := tbl2.Rows(); got != 1 {
		t.Fatalf("rows = %d, want 1", got)
	}
	if _, err := tbl2.Get(1); err != nil {
		t.Fatalf("committed row lost: %v", err)
	}
	// The tail was truncated: fresh DML appends after the commit
	// boundary and a second recovery still converges.
	if err := tbl2.Insert([]Value{IntValue(2), FloatValue(2), Null}); err != nil {
		t.Fatal(err)
	}
	st.Crash()
	db3 := openDB(t, disk, st)
	tbl3, err := db3.Table("t")
	if err != nil {
		t.Fatal(err)
	}
	if got := tbl3.Rows(); got != 2 {
		t.Fatalf("after second recovery rows = %d, want 2", got)
	}
	verifyInvariants(t, db3, "t")
}

func TestRecoverRepairsTornPageWrite(t *testing.T) {
	mem := pages.NewMemDisk()
	fd := pages.NewFaultDisk(mem)
	st := wal.NewMemStorage()
	db := openDB(t, fd, st)
	tbl, err := db.CreateTable("t", walTestSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 20; i++ {
		if err := tbl.Insert([]Value{
			IntValue(i), FloatValue(float64(i)), BinaryMaxValue(bigArray(t, 500, float64(i)).Bytes()),
		}); err != nil {
			t.Fatal(err)
		}
	}
	// The checkpoint's FlushAll dies on its 4th write, tearing that page
	// half-old/half-new on the platter. No checkpoint record is written.
	fd.FailAfterWrites(3, true)
	if err := db.Checkpoint(); err == nil {
		t.Fatal("checkpoint survived an injected torn write")
	}
	if !fd.Fired() {
		t.Fatal("fault never fired")
	}
	st.Crash()
	fd.Heal()
	// Recovery over the torn platter: every committed page image since
	// the (nonexistent) checkpoint is reapplied, overwriting the torn
	// page with its logged after-image.
	db2 := openDB(t, fd, st)
	tbl2, err := db2.Table("t")
	if err != nil {
		t.Fatal(err)
	}
	if got := tbl2.Rows(); got != 20 {
		t.Fatalf("rows = %d, want 20", got)
	}
	for i := int64(0); i < 20; i++ {
		a := fetchArray(t, tbl2, i, 2)
		if got, want := a.FloatAt(100), float64(i)+100; got != want {
			t.Fatalf("row %d elem 100 = %v, want %v", i, got, want)
		}
	}
	verifyInvariants(t, db2, "t")
}

// TestSubarrayUpdateTouchesFewerChunks is the write-side mirror of the
// PR 4 read-pushdown test: an in-place subarray update of a multi-chunk
// array must write (and log) strictly fewer chunk pages than rewriting
// the whole blob.
func TestSubarrayUpdateTouchesFewerChunks(t *testing.T) {
	disk := pages.NewMemDisk()
	st := wal.NewMemStorage()
	db := openDB(t, disk, st)
	tbl, err := db.CreateTable("t", walTestSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	const elems = 16000 // 128 kB payload: 16 chunks
	whole := bigArray(t, elems, 0)
	nChunks := blob.NumChunks(int64(len(whole.Bytes())))
	if nChunks < 16 {
		t.Fatalf("test array spans only %d chunks", nChunks)
	}
	if err := tbl.Insert([]Value{IntValue(1), FloatValue(0), BinaryMaxValue(whole.Bytes())}); err != nil {
		t.Fatal(err)
	}

	patch, err := core.FromFloat64s(core.Short, core.Float64, []float64{1, 2, 3, 4}, 4)
	if err != nil {
		t.Fatal(err)
	}
	b0 := db.Blobs().Stats()
	w0 := db.WAL().Stats()
	if err := tbl.UpdateBlobSubarray(1, 2, []int{8000}, []int{4}, patch); err != nil {
		t.Fatal(err)
	}
	b1 := db.Blobs().Stats()
	w1 := db.WAL().Stats()
	subChunks := b1.ChunksWritten - b0.ChunksWritten
	subRecords := w1.Records - w0.Records

	// Whole-blob rewrite of the same column for comparison.
	if err := tbl.Update(1, []int{2}, []Value{BinaryMaxValue(bigArray(t, elems, 5).Bytes())}); err != nil {
		t.Fatal(err)
	}
	b2 := db.Blobs().Stats()
	w2 := db.WAL().Stats()
	fullChunks := b2.ChunksWritten - b1.ChunksWritten
	fullRecords := w2.Records - w1.Records

	if subChunks == 0 || subChunks >= uint64(nChunks) {
		t.Fatalf("subarray update wrote %d chunks; want 0 < n < %d", subChunks, nChunks)
	}
	if subChunks >= fullChunks {
		t.Fatalf("subarray update wrote %d chunks, not strictly below the %d of a whole-blob rewrite",
			subChunks, fullChunks)
	}
	if subRecords >= fullRecords {
		t.Fatalf("subarray update logged %d records, not strictly below the %d of a whole-blob rewrite",
			subRecords, fullRecords)
	}
	t.Logf("subarray: %d chunks written, %d WAL records; whole rewrite: %d chunks, %d records",
		subChunks, subRecords, fullChunks, fullRecords)
	verifyInvariants(t, db, "t")
}

// TestUpdateDeleteAccounting exercises the DML bookkeeping without a
// crash: counters, key relocation, blob free-list routing.
func TestUpdateDeleteAccounting(t *testing.T) {
	db := NewMemDB()
	tbl, err := db.CreateTable("t", walTestSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	big := bigArray(t, 3000, 1)
	if err := tbl.Insert([]Value{IntValue(1), FloatValue(1), BinaryMaxValue(big.Bytes())}); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Insert([]Value{IntValue(2), FloatValue(2), Null}); err != nil {
		t.Fatal(err)
	}
	// The first overwrite writes the new blob before freeing the old one
	// (failure safety), growing the file once by one blob footprint;
	// from then on rewrites recycle the freed pages and the file stops
	// growing — the leak regression.
	if err := tbl.Update(1, []int{2}, []Value{BinaryMaxValue(bigArray(t, 3000, 9).Bytes())}); err != nil {
		t.Fatal(err)
	}
	baselinePages := db.Pool().Disk().NumPages()
	for round := 0; round < 4; round++ {
		if err := tbl.Update(1, []int{2}, []Value{BinaryMaxValue(bigArray(t, 3000, float64(round)).Bytes())}); err != nil {
			t.Fatal(err)
		}
		if got := db.Pool().Disk().NumPages(); got != baselinePages {
			t.Fatalf("round %d: blob overwrite grew the file %d -> %d pages", round, baselinePages, got)
		}
	}

	// Key relocation: moving id 2 -> 5.
	if err := tbl.Update(2, []int{0}, []Value{IntValue(5)}); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.Get(2); !errors.Is(err, btree.ErrNotFound) {
		t.Fatalf("old key still present: %v", err)
	}
	if _, err := tbl.Get(5); err != nil {
		t.Fatalf("moved row missing: %v", err)
	}
	// Moving onto an existing key fails cleanly.
	if err := tbl.Update(5, []int{0}, []Value{IntValue(1)}); err == nil {
		t.Fatal("key collision not detected")
	}

	// Delete frees the blob; rows and counters settle.
	if err := tbl.Delete(1); err != nil {
		t.Fatal(err)
	}
	if got := tbl.Rows(); got != 1 {
		t.Fatalf("rows = %d, want 1", got)
	}
	st, err := tbl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.BlobBytes != 0 {
		t.Fatalf("blobBytes = %d after deleting the only blob row", st.BlobBytes)
	}
	if db.Blobs().Stats().PagesFreed == 0 {
		t.Fatal("delete did not route through blob.Free")
	}
	verifyInvariants(t, db, "t")
}
