package engine

import (
	"encoding/binary"
	"encoding/json"
	"fmt"

	"sqlarray/internal/btree"
	"sqlarray/internal/pages"
	"sqlarray/internal/wal"
)

// Crash recovery: replay the WAL's committed tail into the database
// file and rebuild the table catalog.
//
// The log stream since the last checkpoint looks like
//
//	[checkpoint: catalog snapshot]
//	page page page ... commit{catalog delta}
//	page ...           commit{...}
//	page page                         <- uncommitted tail (crash)
//
// Replay groups page images by their trailing commit record: a group is
// applied to the disk only when its commit record survived, so a crash
// mid-statement leaves no partial effects. Page images are full
// after-images applied in log order — idempotent, so it does not matter
// which of them had already reached the database file before the crash
// (including a torn page write: the logged image simply overwrites the
// torn bytes). The uncommitted tail is then truncated so future appends
// cannot merge with half a statement.
func (db *DB) recover() error {
	l := db.wal
	type pageImg struct {
		id  pages.PageID
		img []byte
	}
	var pending []pageImg
	catalog := make(map[string]walTableState)
	order := []string{} // stable application order for table rebuild
	var lastGood wal.LSN
	upsert := func(st walTableState) error {
		prev, ok := catalog[st.Name]
		if !ok {
			if len(st.Cols) == 0 {
				return fmt.Errorf("catalog delta for unknown table %q", st.Name)
			}
			order = append(order, st.Name)
			catalog[st.Name] = st
			return nil
		}
		if len(st.Cols) == 0 { // state-only delta: keep the known schema
			st.Cols, st.Key = prev.Cols, prev.Key
		}
		catalog[st.Name] = st
		return nil
	}
	err := l.Recover(func(lsn wal.LSN, typ wal.RecordType, payload []byte) error {
		end := lsn + wal.FrameSize(len(payload))
		switch typ {
		case wal.RecCheckpoint:
			var snap walCatalog
			if err := json.Unmarshal(payload, &snap); err != nil {
				return fmt.Errorf("checkpoint record at LSN %d: %w", lsn, err)
			}
			catalog = make(map[string]walTableState)
			order = order[:0]
			for _, st := range snap.Tables {
				if err := upsert(st); err != nil {
					return err
				}
			}
			pending = pending[:0]
			lastGood = end
		case wal.RecPageImage:
			if len(payload) != 4+pages.PageSize {
				return fmt.Errorf("page record at LSN %d has %d bytes", lsn, len(payload))
			}
			id := pages.PageID(binary.LittleEndian.Uint32(payload))
			img := append([]byte(nil), payload[4:]...)
			pending = append(pending, pageImg{id: id, img: img})
		case wal.RecPagePrefix:
			// Truncated after-image (blob/free pages): header + used body
			// bytes; the writer zeroed the tail before checksumming, so
			// zero-extension reconstructs the page byte-exactly.
			if len(payload) < 4+pages.HeaderSize || len(payload) > 4+pages.PageSize {
				return fmt.Errorf("page prefix record at LSN %d has %d bytes", lsn, len(payload))
			}
			id := pages.PageID(binary.LittleEndian.Uint32(payload))
			img := make([]byte, pages.PageSize)
			copy(img, payload[4:])
			pending = append(pending, pageImg{id: id, img: img})
		case wal.RecCommit:
			var delta walCatalog
			if err := json.Unmarshal(payload, &delta); err != nil {
				return fmt.Errorf("commit record at LSN %d: %w", lsn, err)
			}
			for _, p := range pending {
				if err := db.writeRecoveredPage(p.id, p.img); err != nil {
					return err
				}
			}
			pending = pending[:0]
			for _, st := range delta.Tables {
				if err := upsert(st); err != nil {
					return err
				}
			}
			lastGood = end
		}
		return nil
	})
	if err != nil {
		return err
	}
	if err := l.TruncateTo(lastGood); err != nil {
		return err
	}
	// Rebuild the catalog: attach each table to its recovered B-tree.
	for _, name := range order {
		st := catalog[name]
		schema, err := schemaFromWAL(st)
		if err != nil {
			return err
		}
		t := &Table{
			db:     db,
			name:   name,
			schema: schema,
			tree:   btree.Open(db.bp, pages.PageID(st.Root), st.Height, st.Count),
		}
		t.rows.Store(st.Rows)
		t.rowBytes.Store(st.RowBytes)
		t.blobBytes.Store(st.BlobBytes)
		// Seed the committed-version list: recovered state is visible to
		// every snapshot (the commit clock starts at 1, so tag 1 <= any
		// snapshot tag).
		t.metas = []tableMeta{t.currentMeta(db.bp.CommitTag())}
		db.tables[name] = t
	}
	return nil
}

// writeRecoveredPage applies one page after-image directly to the disk,
// extending the file if the crash happened before the allocation's
// contents ever reached it.
func (db *DB) writeRecoveredPage(id pages.PageID, img []byte) error {
	disk := db.bp.Disk()
	for int(id) >= disk.NumPages() {
		if _, err := disk.Allocate(); err != nil {
			return err
		}
	}
	return disk.WritePage(id, img)
}

// schemaFromWAL decodes a logged table schema.
func schemaFromWAL(st walTableState) (Schema, error) {
	cols := make([]Column, len(st.Cols))
	for i, c := range st.Cols {
		ct := ColType(c.Type)
		switch ct {
		case ColInt64, ColFloat64, ColVarBinary, ColVarBinaryMax:
		default:
			return Schema{}, fmt.Errorf("engine: table %q column %q has invalid logged type %d",
				st.Name, c.Name, c.Type)
		}
		cols[i] = Column{Name: c.Name, Type: ct}
	}
	if len(cols) == 0 {
		return Schema{}, fmt.Errorf("engine: table %q recovered without schema", st.Name)
	}
	if st.Key < 0 || st.Key >= len(cols) {
		return Schema{}, fmt.Errorf("engine: table %q key index %d out of range", st.Name, st.Key)
	}
	return Schema{Columns: cols, Key: st.Key}, nil
}
