package engine

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"

	"sqlarray/internal/blob"
	"sqlarray/internal/btree"
	"sqlarray/internal/obs"
	"sqlarray/internal/pages"
	"sqlarray/internal/wal"
)

// DB is a database instance: a buffer pool over one disk file, a blob
// store for out-of-page data, a table catalog, a function registry and
// (optionally) a write-ahead log that makes DML durable and the
// database recoverable after a crash.
type DB struct {
	mu      sync.RWMutex // guards the table catalog
	writeMu sync.Mutex   // serializes write sessions (single-writer engine)
	bp      *pages.BufferPool
	blobs   *blob.Store
	tables  map[string]*Table
	funcs   *FuncRegistry

	wal          *wal.Log
	syncOnCommit bool
	compress     bool // compress new blobs (per-element-type codec)

	reg *obs.Registry
	m   dbMetrics
}

// dbMetrics is the engine-level counter block: DML row counts, write
// sessions, checkpoints and the bulk loader's page/row totals. Like
// every other counter island these are obs handles attached to the
// database's registry, so they show up in per-query trace deltas and
// on the HTTP export alongside the pool/blob/WAL counters.
type dbMetrics struct {
	rowsInserted  obs.Counter
	rowsUpdated   obs.Counter
	rowsDeleted   obs.Counter
	commits       obs.Counter
	aborts        obs.Counter
	checkpoints   obs.Counter
	bulkLoads     obs.Counter
	bulkRows      obs.Counter
	bulkLeafPages obs.Counter
	bulkBlobPages obs.Counter
	snapshots     obs.Gauge // currently open MVCC snapshots
}

func (m *dbMetrics) register(reg *obs.Registry) {
	reg.Attach("engine.rows_inserted", &m.rowsInserted)
	reg.Attach("engine.rows_updated", &m.rowsUpdated)
	reg.Attach("engine.rows_deleted", &m.rowsDeleted)
	reg.Attach("engine.commits", &m.commits)
	reg.Attach("engine.aborts", &m.aborts)
	reg.Attach("engine.checkpoints", &m.checkpoints)
	reg.Attach("engine.bulk_loads", &m.bulkLoads)
	reg.Attach("engine.bulk_rows", &m.bulkRows)
	reg.Attach("engine.bulk_leaf_pages", &m.bulkLeafPages)
	reg.Attach("engine.bulk_blob_pages", &m.bulkBlobPages)
	reg.AttachGauge("engine.open_snapshots", &m.snapshots)
}

// Options configures a database.
type Options struct {
	// Disk backs the database; defaults to an in-memory disk.
	Disk pages.DiskManager
	// PoolPages sizes the buffer pool; defaults to 16384 frames (128 MB).
	PoolPages int
	// WAL attaches a write-ahead log. On Open the log's committed tail
	// is replayed into the disk (crash recovery) and the catalog is
	// rebuilt from the log; afterward every write session logs page
	// after-images before the pool may flush them. Nil disables
	// durability (the seed behavior).
	WAL *wal.Log
	// NoSyncOnCommit relaxes durability: commit records are appended to
	// the group-commit buffer but not synced per statement. A crash may
	// lose recent statements (never corrupt the database); Checkpoint
	// and explicit SyncWAL still harden everything up to their point.
	NoSyncOnCommit bool
	// Metrics attaches the database to an existing obs.Registry instead
	// of a private one. Partitioned stores open every member against one
	// shared registry so member I/O folds into the same series — the fix
	// for scatter queries undercounting in sqlsh `.stats`.
	Metrics *obs.Registry
	// DisableBlobCompression stores every blob in the raw chunk format.
	// By default new MAX-column blobs are compressed per element type
	// (float64 XOR-delta, byte-shuffled LZ for other fixed-width
	// elements); existing blobs read back either way regardless of this
	// setting. Tests that assert exact raw-chunk page counts set it.
	DisableBlobCompression bool
}

// Open creates a database over opts, running crash recovery first when
// a WAL is attached: committed page images since the last checkpoint
// are replayed into the disk, the table catalog is rebuilt from
// checkpoint and commit records, and any uncommitted log tail is
// truncated.
func Open(opts Options) (*DB, error) {
	if opts.Disk == nil {
		opts.Disk = pages.NewMemDisk()
	}
	if opts.PoolPages <= 0 {
		opts.PoolPages = 16384
	}
	bp := pages.NewBufferPool(opts.Disk, opts.PoolPages)
	db := &DB{
		bp:           bp,
		blobs:        blob.NewStore(bp),
		tables:       make(map[string]*Table),
		funcs:        NewFuncRegistry(),
		wal:          opts.WAL,
		syncOnCommit: !opts.NoSyncOnCommit,
		compress:     !opts.DisableBlobCompression,
	}
	db.reg = opts.Metrics
	if db.reg == nil {
		db.reg = obs.New()
	}
	bp.RegisterMetrics(db.reg)
	db.blobs.RegisterMetrics(db.reg)
	db.m.register(db.reg)
	if db.wal != nil {
		db.wal.RegisterMetrics(db.reg)
		if err := db.recover(); err != nil {
			return nil, fmt.Errorf("engine: recovery: %w", err)
		}
		bp.SetWAL(db.wal)
	}
	return db, nil
}

// NewDB creates a database with the given options. For WAL-backed
// databases prefer Open — recovery can fail, and NewDB panics on a
// recovery error.
func NewDB(opts Options) *DB {
	db, err := Open(opts)
	if err != nil {
		panic(err)
	}
	return db
}

// NewMemDB creates an in-memory database with default sizing.
func NewMemDB() *DB { return NewDB(Options{}) }

// Metrics returns the database's metrics registry (never nil). All
// subsystem counters — pool, blob store, WAL, engine DML — are
// registered here; obs.Handler serves it over HTTP.
func (db *DB) Metrics() *obs.Registry { return db.reg }

// Pool exposes the buffer pool (benchmarks read its I/O counters).
func (db *DB) Pool() *pages.BufferPool { return db.bp }

// Blobs exposes the blob store.
func (db *DB) Blobs() *blob.Store { return db.blobs }

// Funcs exposes the UDF registry.
func (db *DB) Funcs() *FuncRegistry { return db.funcs }

// WAL returns the attached write-ahead log, or nil.
func (db *DB) WAL() *wal.Log { return db.wal }

// CreateTable registers a new table with the given schema. The creation
// (root page and schema) is logged like any other statement.
func (db *DB) CreateTable(name string, schema Schema) (*Table, error) {
	tx, err := db.Begin()
	if err != nil {
		return nil, err
	}
	t, err := db.CreateTableTx(tx, name, schema)
	return t, tx.Close(err)
}

// CreateTableTx is CreateTable inside an existing write session.
func (db *DB) CreateTableTx(tx *Tx, name string, schema Schema) (*Table, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.tables[name]; ok {
		return nil, fmt.Errorf("%w: %q", ErrTableExists, name)
	}
	tree, err := btree.New(db.bp)
	if err != nil {
		return nil, err
	}
	t := &Table{db: db, name: name, schema: schema, tree: tree}
	db.tables[name] = t
	tx.noteCreated(t)
	return t, nil
}

// Table looks a table up by name.
func (db *DB) Table(name string) (*Table, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoTable, name)
	}
	return t, nil
}

// DropCleanBuffers clears the page cache, as the paper does before each
// measured query run.
func (db *DB) DropCleanBuffers() error { return db.bp.DropCleanBuffers() }

// SyncWAL makes every logged record durable (a group-commit flush
// point). No-op without a WAL.
func (db *DB) SyncWAL() error {
	if db.wal == nil {
		return nil
	}
	return db.wal.Sync()
}

// Checkpoint bounds future recovery: it syncs the WAL, flushes every
// dirty page to the database file (each flush is legal because its log
// record is durable), syncs the disk when it supports syncing, and
// appends a checkpoint record carrying a full catalog snapshot. Old log
// segments that no recovery can need are pruned. Without a WAL it
// degrades to a plain flush.
func (db *DB) Checkpoint() error {
	db.writeMu.Lock()
	defer db.writeMu.Unlock()
	if err := db.bp.FlushAll(); err != nil {
		return err
	}
	if s, ok := db.bp.Disk().(interface{ Sync() error }); ok {
		if err := s.Sync(); err != nil {
			return err
		}
	}
	if db.wal == nil {
		db.m.checkpoints.Inc()
		return nil
	}
	payload, err := json.Marshal(db.catalogSnapshot())
	if err != nil {
		return err
	}
	if _, err := db.wal.Checkpoint(payload); err != nil {
		return err
	}
	db.m.checkpoints.Inc()
	return nil
}

// catalogSnapshot captures every table's state with schemas — the
// checkpoint record payload. Caller holds writeMu (so no table state is
// in flux).
func (db *DB) catalogSnapshot() walCatalog {
	db.mu.RLock()
	defer db.mu.RUnlock()
	names := make([]string, 0, len(db.tables))
	for name := range db.tables {
		names = append(names, name)
	}
	sort.Strings(names)
	var cat walCatalog
	for _, name := range names {
		cat.Tables = append(cat.Tables, db.tables[name].walState(true))
	}
	return cat
}
