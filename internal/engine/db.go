package engine

import (
	"fmt"
	"sync"

	"sqlarray/internal/blob"
	"sqlarray/internal/btree"
	"sqlarray/internal/pages"
)

// DB is a database instance: a buffer pool over one disk file, a blob
// store for out-of-page data, a table catalog and a function registry.
type DB struct {
	mu     sync.RWMutex
	bp     *pages.BufferPool
	blobs  *blob.Store
	tables map[string]*Table
	funcs  *FuncRegistry
}

// Options configures a database.
type Options struct {
	// Disk backs the database; defaults to an in-memory disk.
	Disk pages.DiskManager
	// PoolPages sizes the buffer pool; defaults to 16384 frames (128 MB).
	PoolPages int
}

// NewDB creates a database with the given options.
func NewDB(opts Options) *DB {
	if opts.Disk == nil {
		opts.Disk = pages.NewMemDisk()
	}
	if opts.PoolPages <= 0 {
		opts.PoolPages = 16384
	}
	bp := pages.NewBufferPool(opts.Disk, opts.PoolPages)
	return &DB{
		bp:     bp,
		blobs:  blob.NewStore(bp),
		tables: make(map[string]*Table),
		funcs:  NewFuncRegistry(),
	}
}

// NewMemDB creates an in-memory database with default sizing.
func NewMemDB() *DB { return NewDB(Options{}) }

// Pool exposes the buffer pool (benchmarks read its I/O counters).
func (db *DB) Pool() *pages.BufferPool { return db.bp }

// Blobs exposes the blob store.
func (db *DB) Blobs() *blob.Store { return db.blobs }

// Funcs exposes the UDF registry.
func (db *DB) Funcs() *FuncRegistry { return db.funcs }

// CreateTable registers a new table with the given schema.
func (db *DB) CreateTable(name string, schema Schema) (*Table, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.tables[name]; ok {
		return nil, fmt.Errorf("%w: %q", ErrTableExists, name)
	}
	tree, err := btree.New(db.bp)
	if err != nil {
		return nil, err
	}
	t := &Table{db: db, name: name, schema: schema, tree: tree}
	db.tables[name] = t
	return t, nil
}

// Table looks a table up by name.
func (db *DB) Table(name string) (*Table, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoTable, name)
	}
	return t, nil
}

// DropCleanBuffers clears the page cache, as the paper does before each
// measured query run.
func (db *DB) DropCleanBuffers() error { return db.bp.DropCleanBuffers() }
