package engine

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"sqlarray/internal/blob"
	"sqlarray/internal/btree"
	"sqlarray/internal/core"
)

// Table is a clustered table: rows live in B-tree leaves ordered by the
// BIGINT key column, exactly the layout Table 1's queries scan.
//
// Concurrency: there is no table latch. Write sessions
// (Insert/Update/Delete/UpdateBlobSubarray) are serialized by the
// database's single-writer lock and mutate the live fields below
// through copy-on-write page versions; readers never block them and
// never see their uncommitted work. Cursors, scans and the blob
// accessors resolve everything through a Snapshot — either one the
// caller passes to the ...At variants, or one the convenience forms
// acquire per call — whose visibility is fixed at open: the committed
// catalog version in metas plus the page versions the buffer pool
// retains. The live tree/rows/... fields are the single writer's
// working state; only the writer (and commit/abort) touch them.
type Table struct {
	db     *DB
	name   string
	schema Schema

	// Committed catalog versions, ascending commit tag. Guarded by
	// metaMu; appended by Commit, resolved by snapshot reads.
	metaMu sync.Mutex
	metas  []tableMeta

	// Live single-writer state (the version under construction).
	tree      *btree.Tree
	rows      atomic.Int64
	rowBytes  atomic.Int64 // sum of row-image sizes (excludes out-of-page blobs)
	blobBytes atomic.Int64 // bytes pushed out of page
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Schema returns the table schema.
func (t *Table) Schema() *Schema { return &t.schema }

// Rows returns the row count. Lock-free (the planner reads it while
// scans run).
func (t *Table) Rows() int64 { return t.rows.Load() }

// Insert adds a row as a single-statement write session.
func (t *Table) Insert(vals []Value) error {
	tx, err := t.db.Begin()
	if err != nil {
		return err
	}
	return tx.Close(t.InsertTx(tx, vals))
}

// InsertTx adds a row inside an existing write session. VARBINARY(MAX)
// values are written to the blob store and replaced by their refs
// before the row image is built; everything else is stored inline on
// the page.
func (t *Table) InsertTx(tx *Tx, vals []Value) error {
	if len(vals) != len(t.schema.Columns) {
		return fmt.Errorf("%w: %d values for %d columns", ErrTypeError, len(vals), len(t.schema.Columns))
	}
	key, err := vals[t.schema.Key].AsInt()
	if err != nil {
		return fmt.Errorf("engine: clustered key: %w", err)
	}
	tx.touch(t)
	stored := vals
	copied := false
	var blobAdded int64
	for i, c := range t.schema.Columns {
		if c.Type != ColVarBinaryMax || vals[i].IsNull() {
			continue
		}
		if !copied {
			stored = append([]Value(nil), vals...)
			copied = true
		}
		ref, err := t.db.writeBlob(vals[i].B)
		if err != nil {
			return fmt.Errorf("engine: writing MAX column %q: %w", c.Name, err)
		}
		enc := make([]byte, blob.RefSize)
		ref.Encode(enc)
		stored[i] = BinaryMaxValue(enc)
		blobAdded += int64(len(vals[i].B))
	}
	raw, err := encodeRow(&t.schema, stored)
	if err != nil {
		return err
	}
	if len(raw) > btree.MaxValueSize {
		return fmt.Errorf("%w: %d bytes", ErrRowTooWide, len(raw))
	}
	if err := t.tree.Insert(key, raw); err != nil {
		return err
	}
	t.rows.Add(1)
	t.rowBytes.Add(int64(len(raw)))
	t.blobBytes.Add(blobAdded)
	t.db.m.rowsInserted.Inc()
	return nil
}

// Update overwrites the given columns of the row with the given
// clustered key, as a single-statement write session.
func (t *Table) Update(key int64, cols []int, vals []Value) error {
	tx, err := t.db.Begin()
	if err != nil {
		return err
	}
	return tx.Close(t.UpdateTx(tx, key, cols, vals))
}

// UpdateTx overwrites columns cols (schema indexes) of the row with the
// given key. A MAX column receives a fresh payload (the old blob is
// freed and the new one written); setting the key column relocates the
// row. Returns btree.ErrNotFound if the key is absent.
func (t *Table) UpdateTx(tx *Tx, key int64, cols []int, vals []Value) error {
	if len(cols) != len(vals) {
		return fmt.Errorf("%w: %d columns for %d values", ErrTypeError, len(cols), len(vals))
	}
	tx.touch(t)
	raw, err := t.tree.Get(key)
	if err != nil {
		return err
	}
	cur, err := t.decodeAll(raw)
	if err != nil {
		return err
	}
	set := make(map[int]Value, len(cols))
	for i, c := range cols {
		if c < 0 || c >= len(t.schema.Columns) {
			return fmt.Errorf("%w: index %d", ErrNoColumn, c)
		}
		set[c] = vals[i]
	}
	// Stage blob rewrites: new payloads are written first; the old refs
	// are freed only after the row image lands, so a failure part-way
	// leaves the old blobs intact (the new ones are freed on unwind).
	var freeOld, freeNew []blob.Ref
	var blobDelta int64
	next := append([]Value(nil), cur...)
	for c, v := range set {
		if t.schema.Columns[c].Type != ColVarBinaryMax {
			next[c] = v
			continue
		}
		oldV := cur[c]
		if !oldV.IsNull() {
			oldRef, err := blob.DecodeRef(oldV.B)
			if err != nil {
				return err
			}
			freeOld = append(freeOld, oldRef)
			blobDelta -= oldRef.Length
		}
		if v.IsNull() {
			next[c] = Null
			continue
		}
		ref, err := t.db.writeBlob(v.B)
		if err != nil {
			return fmt.Errorf("engine: writing MAX column %q: %w", t.schema.Columns[c].Name, err)
		}
		freeNew = append(freeNew, ref)
		blobDelta += int64(len(v.B))
		enc := make([]byte, blob.RefSize)
		ref.Encode(enc)
		next[c] = BinaryMaxValue(enc)
	}
	unwind := func(e error) error {
		for _, r := range freeNew {
			_ = t.db.blobs.Free(r)
		}
		return e
	}
	newRaw, err := encodeRow(&t.schema, next)
	if err != nil {
		return unwind(err)
	}
	if len(newRaw) > btree.MaxValueSize {
		return unwind(fmt.Errorf("%w: %d bytes", ErrRowTooWide, len(newRaw)))
	}
	newKey, err := next[t.schema.Key].AsInt()
	if err != nil {
		return unwind(fmt.Errorf("engine: clustered key: %w", err))
	}
	if newKey != key {
		if _, err := t.tree.Get(newKey); err == nil {
			return unwind(fmt.Errorf("%w: %d", btree.ErrDuplicate, newKey))
		} else if !errors.Is(err, btree.ErrNotFound) {
			return unwind(err)
		}
		if err := t.tree.Delete(key); err != nil {
			return unwind(err)
		}
		if err := t.tree.Insert(newKey, newRaw); err != nil {
			// Try to restore the original row before surfacing the error.
			_ = t.tree.Insert(key, raw)
			return unwind(err)
		}
	} else if err := t.tree.Put(key, newRaw); err != nil {
		return unwind(err)
	}
	for _, r := range freeOld {
		if err := t.db.blobs.Free(r); err != nil {
			return err
		}
	}
	t.rowBytes.Add(int64(len(newRaw)) - int64(len(raw)))
	t.blobBytes.Add(blobDelta)
	t.db.m.rowsUpdated.Inc()
	return nil
}

// Delete removes the row with the given clustered key as a
// single-statement write session.
func (t *Table) Delete(key int64) error {
	tx, err := t.db.Begin()
	if err != nil {
		return err
	}
	return tx.Close(t.DeleteTx(tx, key))
}

// DeleteTx removes a row, returning its out-of-page blobs to the free
// list. Returns btree.ErrNotFound if the key is absent.
func (t *Table) DeleteTx(tx *Tx, key int64) error {
	tx.touch(t)
	raw, err := t.tree.Get(key)
	if err != nil {
		return err
	}
	cur, err := t.decodeAll(raw)
	if err != nil {
		return err
	}
	if err := t.tree.Delete(key); err != nil {
		return err
	}
	var blobFreed int64
	for i, c := range t.schema.Columns {
		if c.Type != ColVarBinaryMax || cur[i].IsNull() {
			continue
		}
		ref, err := blob.DecodeRef(cur[i].B)
		if err != nil {
			return err
		}
		if err := t.db.blobs.Free(ref); err != nil {
			return err
		}
		blobFreed += ref.Length
	}
	t.rows.Add(-1)
	t.rowBytes.Add(-int64(len(raw)))
	t.blobBytes.Add(-blobFreed)
	t.db.m.rowsDeleted.Inc()
	return nil
}

// UpdateBlobSubarray overwrites the subarray [offset, offset+size) of a
// stored MAX array in place as a single-statement write session.
func (t *Table) UpdateBlobSubarray(key int64, col int, offset, size []int, src *core.Array) error {
	tx, err := t.db.Begin()
	if err != nil {
		return err
	}
	return tx.Close(t.UpdateBlobSubarrayTx(tx, key, col, offset, size, src))
}

// UpdateBlobSubarrayTx rewrites only the chunk pages the subarray's
// byte runs touch — the write-side mirror of BlobSubarray's read
// pushdown, and the engine form of the paper's UpdateArray UDFs that
// "modify subarrays in place without rewriting whole blobs". The row
// image is untouched (the blob ref does not change), so a subarray
// update of a multi-gigabyte array logs and writes a handful of chunk
// pages. src supplies the replacement elements in column-major order
// and must match the stored element type and the product of size.
func (t *Table) UpdateBlobSubarrayTx(tx *Tx, key int64, col int, offset, size []int, src *core.Array) error {
	tx.touch(t)
	if col < 0 || col >= len(t.schema.Columns) {
		return fmt.Errorf("%w: index %d", ErrNoColumn, col)
	}
	if t.schema.Columns[col].Type != ColVarBinaryMax {
		return fmt.Errorf("%w: column %q is %s, not VARBINARY(MAX)",
			ErrTypeError, t.schema.Columns[col].Name, t.schema.Columns[col].Type)
	}
	raw, err := t.tree.Get(key)
	if err != nil {
		return err
	}
	var rv RowView
	rv.reset(&t.schema, raw)
	v, err := rv.Col(col)
	if err != nil {
		return err
	}
	if v.IsNull() {
		return fmt.Errorf("%w: column %q is NULL at key %d", ErrNullValue, t.schema.Columns[col].Name, key)
	}
	ref, err := blob.DecodeRef(v.B)
	if err != nil {
		return err
	}
	h, hs, err := t.blobHeader(t.db.blobs, ref)
	if err != nil {
		return err
	}
	if int64(h.TotalBytes()) != ref.Length {
		return fmt.Errorf("%w: header declares %d bytes, blob holds %d",
			blob.ErrBadRef, h.TotalBytes(), ref.Length)
	}
	if src.ElemType() != h.Elem {
		return fmt.Errorf("%w: assigning %s elements into a %s array",
			ErrTypeError, src.ElemType(), h.Elem)
	}
	runs, err := core.SubarrayPlan(h, offset, size)
	if err != nil {
		return err
	}
	need := h.Elem.Size()
	for _, d := range size {
		need *= d
	}
	if len(src.Payload()) != need {
		return fmt.Errorf("%w: subarray of %v needs %d bytes, value has %d",
			ErrTypeError, size, need, len(src.Payload()))
	}
	blobRuns := make([]blob.Run, len(runs))
	for i, r := range runs {
		blobRuns[i] = blob.Run{SrcOff: r.SrcOff + hs, DstOff: r.DstOff, Len: r.Len}
	}
	return t.db.blobs.WriteRuns(ref, src.Payload(), blobRuns)
}

// decodeAll decodes every column of a raw row image. The returned
// Values alias raw.
func (t *Table) decodeAll(raw []byte) ([]Value, error) {
	var rv RowView
	rv.reset(&t.schema, raw)
	out := make([]Value, len(t.schema.Columns))
	for i := range out {
		v, err := rv.Col(i)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// Get fetches the row with the given clustered key, fully decoded, from
// a fresh snapshot (the committed state as of the call).
func (t *Table) Get(key int64) ([]Value, error) {
	s := t.db.Snapshot()
	defer s.Release()
	// Values alias the tree.Get copy, which the caller may retain.
	return t.GetAt(s, key)
}

// Scan performs a clustered index scan over a fresh snapshot, invoking
// fn for every row in key order. The RowView (and any binary Values
// decoded from it) is only valid inside the callback. Returning false
// stops the scan.
func (t *Table) Scan(fn func(key int64, row *RowView) (bool, error)) error {
	s := t.db.Snapshot()
	defer s.Release()
	cur, err := t.CursorAt(s)
	if err != nil {
		return err
	}
	defer cur.Close()
	for cur.Next() {
		ok, err := fn(cur.Key(), cur.Row())
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
	}
	return cur.Err()
}

// KeyBounds returns the smallest and largest clustered keys present, or
// ok=false for an empty table. The parallel scan planner partitions the
// key space with this.
func (t *Table) KeyBounds() (min, max int64, ok bool, err error) {
	s := t.db.Snapshot()
	defer s.Release()
	return t.KeyBoundsAt(s)
}

// FetchBlob materializes a VARBINARY(MAX) column value (a 12-byte ref,
// as returned by RowView.Col) into its full bytes.
func (t *Table) FetchBlob(refBytes []byte) ([]byte, error) {
	ref, err := blob.DecodeRef(refBytes)
	if err != nil {
		return nil, err
	}
	return t.db.blobs.ReadAll(ref)
}

// OpenBlob returns the stream wrapper over a MAX column value, for
// partial reads.
func (t *Table) OpenBlob(refBytes []byte) (*blob.Stream, error) {
	ref, err := blob.DecodeRef(refBytes)
	if err != nil {
		return nil, err
	}
	return t.db.blobs.Open(ref), nil
}

// TableStats summarizes a table's storage footprint; the Table 1 harness
// uses it for the "43 % bigger" comparison (§6.2).
type TableStats struct {
	Rows       int64
	RowBytes   int64 // on-page row images
	BlobBytes  int64 // out-of-page blob payloads
	LeafPages  int   // clustered-index leaf pages
	TreeHeight int
}

// Stats walks the leaf chain of a fresh snapshot to count pages and
// returns the footprint.
func (t *Table) Stats() (TableStats, error) {
	s := t.db.Snapshot()
	defer s.Release()
	return t.StatsAt(s)
}
