package engine

import (
	"fmt"

	"sqlarray/internal/blob"
	"sqlarray/internal/btree"
)

// Table is a clustered table: rows live in B-tree leaves ordered by the
// BIGINT key column, exactly the layout Table 1's queries scan.
type Table struct {
	db        *DB
	name      string
	schema    Schema
	tree      *btree.Tree
	rows      int64
	rowBytes  int64 // sum of row-image sizes (excludes out-of-page blobs)
	blobBytes int64 // bytes pushed out of page
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Schema returns the table schema.
func (t *Table) Schema() *Schema { return &t.schema }

// Rows returns the row count.
func (t *Table) Rows() int64 { return t.rows }

// Insert adds a row. VARBINARY(MAX) values are written to the blob store
// and replaced by their refs before the row image is built; everything
// else is stored inline on the page.
func (t *Table) Insert(vals []Value) error {
	if len(vals) != len(t.schema.Columns) {
		return fmt.Errorf("%w: %d values for %d columns", ErrTypeError, len(vals), len(t.schema.Columns))
	}
	key, err := vals[t.schema.Key].AsInt()
	if err != nil {
		return fmt.Errorf("engine: clustered key: %w", err)
	}
	stored := vals
	copied := false
	for i, c := range t.schema.Columns {
		if c.Type != ColVarBinaryMax || vals[i].IsNull() {
			continue
		}
		if !copied {
			stored = append([]Value(nil), vals...)
			copied = true
		}
		ref, err := t.db.blobs.Write(vals[i].B)
		if err != nil {
			return fmt.Errorf("engine: writing MAX column %q: %w", c.Name, err)
		}
		enc := make([]byte, blob.RefSize)
		ref.Encode(enc)
		stored[i] = BinaryMaxValue(enc)
		t.blobBytes += int64(len(vals[i].B))
	}
	raw, err := encodeRow(&t.schema, stored)
	if err != nil {
		return err
	}
	if len(raw) > btree.MaxValueSize {
		return fmt.Errorf("%w: %d bytes", ErrRowTooWide, len(raw))
	}
	if err := t.tree.Insert(key, raw); err != nil {
		return err
	}
	t.rows++
	t.rowBytes += int64(len(raw))
	return nil
}

// Get fetches the row with the given clustered key, fully decoded.
func (t *Table) Get(key int64) ([]Value, error) {
	raw, err := t.tree.Get(key)
	if err != nil {
		return nil, err
	}
	var rv RowView
	rv.reset(&t.schema, raw)
	out := make([]Value, len(t.schema.Columns))
	for i := range out {
		v, err := rv.Col(i)
		if err != nil {
			return nil, err
		}
		// Values alias raw, which we own here (tree.Get copies), so the
		// caller may retain them.
		out[i] = v
	}
	return out, nil
}

// Scan performs a clustered index scan, invoking fn for every row in key
// order. The RowView (and any binary Values decoded from it) is only
// valid inside the callback. Returning false stops the scan.
func (t *Table) Scan(fn func(key int64, row *RowView) (bool, error)) error {
	it, err := t.tree.Scan()
	if err != nil {
		return err
	}
	defer it.Close()
	var rv RowView
	for it.Next() {
		rv.reset(&t.schema, it.Value())
		ok, err := fn(it.Key(), &rv)
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
	}
	return it.Err()
}

// KeyBounds returns the smallest and largest clustered keys present, or
// ok=false for an empty table. The parallel scan planner partitions the
// key space with this.
func (t *Table) KeyBounds() (min, max int64, ok bool, err error) {
	return t.tree.Bounds()
}

// FetchBlob materializes a VARBINARY(MAX) column value (a 12-byte ref,
// as returned by RowView.Col) into its full bytes.
func (t *Table) FetchBlob(refBytes []byte) ([]byte, error) {
	ref, err := blob.DecodeRef(refBytes)
	if err != nil {
		return nil, err
	}
	return t.db.blobs.ReadAll(ref)
}

// OpenBlob returns the stream wrapper over a MAX column value, for
// partial reads.
func (t *Table) OpenBlob(refBytes []byte) (*blob.Stream, error) {
	ref, err := blob.DecodeRef(refBytes)
	if err != nil {
		return nil, err
	}
	return t.db.blobs.Open(ref), nil
}

// TableStats summarizes a table's storage footprint; the Table 1 harness
// uses it for the "43 % bigger" comparison (§6.2).
type TableStats struct {
	Rows       int64
	RowBytes   int64 // on-page row images
	BlobBytes  int64 // out-of-page blob payloads
	LeafPages  int   // clustered-index leaf pages
	TreeHeight int
}

// Stats walks the leaf chain to count pages and returns the footprint.
func (t *Table) Stats() (TableStats, error) {
	leaves, err := t.countLeafPages()
	if err != nil {
		return TableStats{}, err
	}
	return TableStats{
		Rows:       t.rows,
		RowBytes:   t.rowBytes,
		BlobBytes:  t.blobBytes,
		LeafPages:  leaves,
		TreeHeight: t.tree.Height(),
	}, nil
}

func (t *Table) countLeafPages() (int, error) {
	return t.tree.LeafPageCount()
}
