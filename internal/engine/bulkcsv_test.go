package engine

import (
	"encoding/hex"
	"fmt"
	"strings"
	"testing"

	"sqlarray/internal/pages"
	"sqlarray/internal/wal"
)

func TestCSVSourceLoad(t *testing.T) {
	db := openDB(t, pages.NewMemDisk(), wal.NewMemStorage())
	tbl, err := db.CreateTable("t", walTestSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	arr := bigArray(t, 300, 5)
	var sb strings.Builder
	sb.WriteString("id,x,m\n") // header line
	const n = 1000
	for i := 0; i < n; i++ {
		m := ""
		if i == 42 {
			m = hex.EncodeToString(arr.Bytes())
		}
		fmt.Fprintf(&sb, "%d,%g,%s\n", i, float64(i)*1.5, m)
	}
	src := NewCSVSource(strings.NewReader(sb.String()), tbl.Schema(), CSVOptions{Workers: 4, Header: true})
	st, err := tbl.BulkLoad(src, BulkOptions{})
	if err != nil {
		t.Fatalf("BulkLoad over CSV: %v", err)
	}
	if st.Rows != n {
		t.Fatalf("rows = %d, want %d", st.Rows, n)
	}
	vals, err := tbl.Get(7)
	if err != nil {
		t.Fatal(err)
	}
	if vals[1].F != 10.5 {
		t.Fatalf("x = %v, want 10.5", vals[1].F)
	}
	if !vals[2].IsNull() {
		t.Fatalf("m should be NULL")
	}
	got := fetchArray(t, tbl, 42, 2)
	if got.FloatAt(299) != arr.FloatAt(299) {
		t.Fatalf("blob round-trip diverged")
	}
	verifyInvariants(t, db, "t")
}

func TestCSVSourceParseError(t *testing.T) {
	db := openDB(t, pages.NewMemDisk(), wal.NewMemStorage())
	tbl, err := db.CreateTable("t", walTestSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	csv := "1,0.5,\n2,not-a-number,\n3,1.5,\n"
	src := NewCSVSource(strings.NewReader(csv), tbl.Schema(), CSVOptions{Workers: 2})
	_, err = tbl.BulkLoad(src, BulkOptions{})
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("err = %v, want parse failure naming line 2", err)
	}
	if got := tbl.Rows(); got != 0 {
		t.Fatalf("rows after failed CSV load = %d, want 0", got)
	}
	verifyInvariants(t, db, "t")
}
