package engine

import (
	"math"

	"sqlarray/internal/btree"
)

// Cursor streams a table's rows in clustered-key order without
// materializing them — the engine half of the Volcano executor. It wraps
// the B+tree leaf iterator and decodes rows lazily through a reused
// RowView:
//
//	cur, err := tbl.Cursor()
//	for cur.Next() {
//	    key, row := cur.Key(), cur.Row()
//	}
//	err = cur.Err()
//	cur.Close()
//
// Row (and any binary Values decoded from it) aliases the pinned leaf
// page and is only valid until the next call to Next or Close; copy to
// retain. Close must always be called: it releases the pinned page and
// the cursor's snapshot (when the cursor owns one — the convenience
// constructors acquire a snapshot per cursor; the ...At variants read
// through a caller-owned snapshot instead), and early termination
// (TOP n) would otherwise leak a pin and wedge DropCleanBuffers.
//
// Cursors never latch the table: the snapshot pins the committed state
// as of open, so concurrent DML commits do not block the scan and the
// scan does not block them.
type Cursor struct {
	it      *btree.Iterator
	schema  *Schema
	rv      RowView
	release func()
}

// Cursor opens a streaming scan over the whole table.
func (t *Table) Cursor() (*Cursor, error) {
	return t.CursorRange(math.MinInt64, math.MaxInt64)
}

// CursorFrom opens a streaming scan at the first key >= start.
func (t *Table) CursorFrom(start int64) (*Cursor, error) {
	return t.CursorRange(start, math.MaxInt64)
}

// CursorRange opens a streaming scan over keys in [lo, hi], inclusive,
// on a snapshot acquired for the cursor's lifetime. The underlying
// iterator stops (and unpins) as soon as it passes hi, so a key-range
// query touches only the root-to-leaf descent plus the pages the range
// spans.
func (t *Table) CursorRange(lo, hi int64) (*Cursor, error) {
	s := t.db.Snapshot()
	cur, err := t.CursorRangeAt(s, lo, hi)
	if err != nil {
		s.Release()
		return nil, err
	}
	cur.release = s.Release
	return cur, nil
}

// Next advances to the next row, returning false at the end of the range
// or on error (check Err).
func (c *Cursor) Next() bool {
	if !c.it.Next() {
		return false
	}
	c.rv.reset(c.schema, c.it.Value())
	return true
}

// FillBatch advances the cursor through up to max rows, invoking fn for
// each one — the engine half of batch-at-a-time execution. It drives the
// B+tree leaf iterator directly, so a batch fill walks leaf runs without
// crossing the Cursor interface per row. The RowView passed to fn is
// reused and aliases the pinned leaf page: fn must copy anything it
// keeps. It returns the number of rows consumed; fewer than max means
// the range is exhausted (or fn failed — check the error). FillBatch and
// Next may be interleaved freely; both advance the same scan position.
func (c *Cursor) FillBatch(max int, fn func(key int64, row *RowView) error) (int, error) {
	n := 0
	for n < max && c.it.Next() {
		c.rv.reset(c.schema, c.it.Value())
		if err := fn(c.it.Key(), &c.rv); err != nil {
			return n, err
		}
		n++
	}
	return n, c.it.Err()
}

// Key returns the current row's clustered key.
func (c *Cursor) Key() int64 { return c.it.Key() }

// Row returns the current row view, valid until the next Next or Close.
func (c *Cursor) Row() *RowView { return &c.rv }

// Err returns the first error encountered while scanning.
func (c *Cursor) Err() error { return c.it.Err() }

// Close releases the cursor's pinned page and its snapshot (when the
// cursor owns one). Safe to call twice.
func (c *Cursor) Close() {
	c.it.Close()
	if c.release != nil {
		c.release()
	}
}
