package wal

import (
	"fmt"
	"testing"
)

// BenchmarkWALAppend measures raw append throughput into the
// group-commit buffer (the per-record cost a DML statement pays per
// dirtied page) and the append+sync cycle (the full per-statement
// durability cost), for a page-image-sized payload.
func BenchmarkWALAppend(b *testing.B) {
	payload := make([]byte, 8196) // page image + id prefix

	for _, sync := range []bool{false, true} {
		name := "buffered"
		if sync {
			name = "sync"
		}
		b.Run(name, func(b *testing.B) {
			l, err := Open(NewMemStorage(), Options{SegmentSize: 64 << 20})
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(len(payload)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := l.Append(RecPageImage, payload); err != nil {
					b.Fatal(err)
				}
				if sync {
					if err := l.Sync(); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.StopTimer()
			if err := l.Sync(); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkWALGroupCommit batches k appends per sync, showing what the
// group-commit buffer buys over sync-per-record.
func BenchmarkWALGroupCommit(b *testing.B) {
	payload := make([]byte, 8196)
	for _, k := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("batch%d", k), func(b *testing.B) {
			l, err := Open(NewMemStorage(), Options{SegmentSize: 64 << 20})
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(len(payload)) * int64(k))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := 0; j < k; j++ {
					if _, err := l.Append(RecPageImage, payload); err != nil {
						b.Fatal(err)
					}
				}
				if err := l.Sync(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
