// Storage backends for the write-ahead log: a directory of segment
// files on a real filesystem, and an in-memory implementation whose
// sync boundary can be crash-simulated (everything appended after the
// last Sync vanishes), which is what the recovery tests are built on.
package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Storage is a directory of numbered log segments. Segment sequence
// numbers are dense and increasing; the log appends to the
// highest-numbered segment and prunes whole low-numbered segments once
// a checkpoint makes them unreachable.
type Storage interface {
	// List returns the existing segment sequence numbers in ascending
	// order.
	List() ([]uint32, error)
	// Open opens an existing segment for reading and appending.
	Open(seq uint32) (Segment, error)
	// Create creates a new, empty segment.
	Create(seq uint32) (Segment, error)
	// Remove deletes a segment (checkpoint pruning).
	Remove(seq uint32) error
}

// Segment is one log segment file.
type Segment interface {
	// ReadAt fills p with segment bytes starting at off.
	ReadAt(p []byte, off int64) (int, error)
	// Append writes p at the current end of the segment.
	Append(p []byte) error
	// Sync makes all appended bytes durable.
	Sync() error
	// Truncate discards bytes past size (torn-tail repair).
	Truncate(size int64) error
	// Size returns the current segment length in bytes.
	Size() (int64, error)
	// Close releases resources.
	Close() error
}

// ---- file-backed storage ------------------------------------------------

// DirStorage stores segments as files named wal-%08d.seg in one
// directory.
type DirStorage struct{ dir string }

// NewDirStorage creates (if necessary) and opens a log directory.
func NewDirStorage(dir string) (*DirStorage, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: mkdir %s: %w", dir, err)
	}
	return &DirStorage{dir: dir}, nil
}

func (d *DirStorage) segPath(seq uint32) string {
	return filepath.Join(d.dir, fmt.Sprintf("wal-%08d.seg", seq))
}

// List implements Storage.
func (d *DirStorage) List() ([]uint32, error) {
	ents, err := os.ReadDir(d.dir)
	if err != nil {
		return nil, fmt.Errorf("wal: list %s: %w", d.dir, err)
	}
	var seqs []uint32
	for _, e := range ents {
		name := e.Name()
		if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".seg") {
			continue
		}
		n, err := strconv.ParseUint(name[4:len(name)-4], 10, 32)
		if err != nil {
			continue
		}
		seqs = append(seqs, uint32(n))
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

// Open implements Storage.
func (d *DirStorage) Open(seq uint32) (Segment, error) {
	f, err := os.OpenFile(d.segPath(seq), os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open segment %d: %w", seq, err)
	}
	return &fileSegment{f: f}, nil
}

// Create implements Storage.
func (d *DirStorage) Create(seq uint32) (Segment, error) {
	f, err := os.OpenFile(d.segPath(seq), os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: create segment %d: %w", seq, err)
	}
	return &fileSegment{f: f}, nil
}

// Remove implements Storage.
func (d *DirStorage) Remove(seq uint32) error {
	return os.Remove(d.segPath(seq))
}

type fileSegment struct{ f *os.File }

func (s *fileSegment) ReadAt(p []byte, off int64) (int, error) { return s.f.ReadAt(p, off) }

func (s *fileSegment) Append(p []byte) error {
	st, err := s.f.Stat()
	if err != nil {
		return err
	}
	_, err = s.f.WriteAt(p, st.Size())
	return err
}

func (s *fileSegment) Sync() error               { return s.f.Sync() }
func (s *fileSegment) Truncate(size int64) error { return s.f.Truncate(size) }
func (s *fileSegment) Close() error              { return s.f.Close() }
func (s *fileSegment) Size() (int64, error) {
	st, err := s.f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

// ---- in-memory storage with crash simulation ----------------------------

// MemStorage keeps segments in memory and tracks, per segment, how many
// bytes have been Sync'd. Crash() rolls every segment back to its synced
// prefix — the moral equivalent of the machine losing power with the OS
// page cache unflushed — so recovery tests can assert exactly which
// records survive.
type MemStorage struct {
	mu   sync.Mutex
	segs map[uint32]*memSegment
}

// NewMemStorage returns an empty in-memory log directory.
func NewMemStorage() *MemStorage {
	return &MemStorage{segs: make(map[uint32]*memSegment)}
}

// Crash discards all bytes appended after each segment's last Sync.
// Any Log currently attached to the storage must be abandoned; reopen
// with Open to recover.
func (m *MemStorage) Crash() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, s := range m.segs {
		s.mu.Lock()
		s.data = s.data[:s.synced]
		s.mu.Unlock()
	}
}

// CorruptTail overwrites the last n durable bytes of the highest
// segment with garbage, simulating a torn record write that made it to
// the platter half-way. Recovery must detect it via the record CRC.
func (m *MemStorage) CorruptTail(n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var top *memSegment
	var topSeq uint32
	for seq, s := range m.segs {
		if top == nil || seq >= topSeq {
			top, topSeq = s, seq
		}
	}
	if top == nil {
		return
	}
	top.mu.Lock()
	defer top.mu.Unlock()
	start := len(top.data) - n
	if start < 0 {
		start = 0
	}
	for i := start; i < len(top.data); i++ {
		top.data[i] ^= 0xA5
	}
}

// List implements Storage.
func (m *MemStorage) List() ([]uint32, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	seqs := make([]uint32, 0, len(m.segs))
	for seq := range m.segs {
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

// Open implements Storage.
func (m *MemStorage) Open(seq uint32) (Segment, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.segs[seq]
	if !ok {
		return nil, fmt.Errorf("wal: no segment %d", seq)
	}
	return s, nil
}

// Create implements Storage.
func (m *MemStorage) Create(seq uint32) (Segment, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.segs[seq]; ok {
		return nil, fmt.Errorf("wal: segment %d exists", seq)
	}
	s := &memSegment{}
	m.segs[seq] = s
	return s, nil
}

// Remove implements Storage.
func (m *MemStorage) Remove(seq uint32) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.segs, seq)
	return nil
}

type memSegment struct {
	mu     sync.Mutex
	data   []byte
	synced int
}

func (s *memSegment) ReadAt(p []byte, off int64) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if off >= int64(len(s.data)) {
		return 0, fmt.Errorf("wal: read past segment end")
	}
	n := copy(p, s.data[off:])
	if n < len(p) {
		return n, fmt.Errorf("wal: short segment read")
	}
	return n, nil
}

func (s *memSegment) Append(p []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.data = append(s.data, p...)
	return nil
}

func (s *memSegment) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.synced = len(s.data)
	return nil
}

func (s *memSegment) Truncate(size int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if size < int64(len(s.data)) {
		s.data = s.data[:size]
	}
	if s.synced > len(s.data) {
		s.synced = len(s.data)
	}
	return nil
}

func (s *memSegment) Size() (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return int64(len(s.data)), nil
}

func (s *memSegment) Close() error { return nil }
