package wal

import (
	"sync"
	"testing"
	"time"
)

// gatedStorage wraps MemStorage so a test can hold a segment fsync open:
// Sync blocks until the gate channel is released, and signals on started
// when an fsync enters. That makes the group-commit interleaving
// deterministic — a follower can be launched while the leader is provably
// mid-fsync.
type gatedStorage struct {
	*MemStorage
	mu      sync.Mutex
	gate    chan struct{} // closed/filled to let Sync proceed
	started chan struct{} // receives one token per Sync entry
	armed   bool
}

func newGatedStorage() *gatedStorage {
	return &gatedStorage{
		MemStorage: NewMemStorage(),
		gate:       make(chan struct{}, 16),
		started:    make(chan struct{}, 16),
	}
}

// arm makes subsequent Syncs block on the gate.
func (g *gatedStorage) arm() {
	g.mu.Lock()
	g.armed = true
	g.mu.Unlock()
}

func (g *gatedStorage) disarm() {
	g.mu.Lock()
	g.armed = false
	g.mu.Unlock()
}

func (g *gatedStorage) Open(seq uint32) (Segment, error) {
	s, err := g.MemStorage.Open(seq)
	if err != nil {
		return nil, err
	}
	return &gatedSegment{Segment: s, st: g}, nil
}

func (g *gatedStorage) Create(seq uint32) (Segment, error) {
	s, err := g.MemStorage.Create(seq)
	if err != nil {
		return nil, err
	}
	return &gatedSegment{Segment: s, st: g}, nil
}

type gatedSegment struct {
	Segment
	st *gatedStorage
}

func (s *gatedSegment) Sync() error {
	s.st.mu.Lock()
	armed := s.st.armed
	s.st.mu.Unlock()
	if armed {
		s.st.started <- struct{}{}
		<-s.st.gate
	}
	return s.Segment.Sync()
}

// TestGroupCommitPiggyback holds a leader's fsync open at the storage
// layer, lets a second committer arrive, and asserts the second one
// piggybacks on the first fsync instead of issuing its own.
func TestGroupCommitPiggyback(t *testing.T) {
	st := newGatedStorage()
	l, err := Open(st, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = l.Close() }()

	if _, err := l.Append(RecCommit, []byte("a")); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(RecCommit, []byte("b")); err != nil {
		t.Fatal(err)
	}

	st.arm()
	leaderDone := make(chan error, 1)
	go func() { leaderDone <- l.Sync() }()
	// Wait until the leader is provably inside the storage fsync.
	select {
	case <-st.started:
	case <-time.After(5 * time.Second):
		t.Fatal("leader never reached the storage fsync")
	}

	followerDone := make(chan error, 1)
	go func() { followerDone <- l.Sync() }()
	// The follower's records were flushed by the leader, so it must park
	// on the in-flight fsync. Give it a moment to reach the wait, then
	// release the gate; any later fsync it might wrongly issue would pass
	// straight through (disarm first) rather than deadlock the test.
	time.Sleep(20 * time.Millisecond)
	st.disarm()
	st.gate <- struct{}{}

	for i, ch := range []chan error{leaderDone, followerDone} {
		select {
		case err := <-ch:
			if err != nil {
				t.Fatalf("sync %d: %v", i, err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("sync %d never returned", i)
		}
	}

	s := l.Stats()
	if s.GroupCommitPiggybacks < 1 {
		t.Fatalf("GroupCommitPiggybacks = %d, want >= 1", s.GroupCommitPiggybacks)
	}
	if s.Syncs != 1 {
		t.Fatalf("Syncs = %d, want 1 (follower must not fsync)", s.Syncs)
	}
	if l.DurableLSN() != uint64(l.NextLSN()) {
		t.Fatalf("durable %d != next %d after group commit", l.DurableLSN(), l.NextLSN())
	}
}

// TestGroupCommitLateArrival checks commit pipelining: a committer whose
// records were appended after the leader's flush must not piggyback on
// the in-flight fsync (it does not cover them) — it waits and leads the
// next sync.
func TestGroupCommitLateArrival(t *testing.T) {
	st := newGatedStorage()
	l, err := Open(st, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = l.Close() }()

	if _, err := l.Append(RecCommit, []byte("early")); err != nil {
		t.Fatal(err)
	}
	st.arm()
	leaderDone := make(chan error, 1)
	go func() { leaderDone <- l.Sync() }()
	select {
	case <-st.started:
	case <-time.After(5 * time.Second):
		t.Fatal("leader never reached the storage fsync")
	}

	// Appended while the leader's fsync is in flight: not covered by it.
	if _, err := l.Append(RecCommit, []byte("late")); err != nil {
		t.Fatal(err)
	}
	lateLSN := l.NextLSN()
	lateDone := make(chan error, 1)
	go func() { lateDone <- l.Sync() }()

	// Release the first fsync; the late committer must then run its own.
	st.gate <- struct{}{}
	select {
	case <-st.started:
	case <-time.After(5 * time.Second):
		t.Fatal("late committer never started its own fsync")
	}
	st.disarm()
	st.gate <- struct{}{}

	for i, ch := range []chan error{leaderDone, lateDone} {
		select {
		case err := <-ch:
			if err != nil {
				t.Fatalf("sync %d: %v", i, err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("sync %d never returned", i)
		}
	}
	if got := l.DurableLSN(); got != uint64(lateLSN) {
		t.Fatalf("durable %d, want %d", got, lateLSN)
	}
	if s := l.Stats(); s.Syncs != 2 {
		t.Fatalf("Syncs = %d, want 2 (late records need a second fsync)", s.Syncs)
	}
}

// TestGroupCommitConcurrentSyncStress hammers Append+Sync from many
// goroutines to shake races out under -race; every committer must see
// its own records durable when its Sync returns.
func TestGroupCommitConcurrentSyncStress(t *testing.T) {
	l, err := Open(NewMemStorage(), Options{SegmentSize: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = l.Close() }()
	const workers = 8
	const perWorker = 50
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	payload := make([]byte, 256)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				lsn, err := l.Append(RecCommit, payload)
				if err != nil {
					errs <- err
					return
				}
				if err := l.Sync(); err != nil {
					errs <- err
					return
				}
				end := uint64(lsn + FrameSize(len(payload)))
				if d := l.DurableLSN(); d < end {
					errs <- &durabilityError{got: d, want: end}
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	s := l.Stats()
	if s.Records != workers*perWorker {
		t.Fatalf("Records = %d, want %d", s.Records, workers*perWorker)
	}
	t.Logf("syncs=%d piggybacks=%d rolls=%d", s.Syncs, s.GroupCommitPiggybacks, s.SegmentRolls)
}

type durabilityError struct{ got, want uint64 }

func (e *durabilityError) Error() string {
	return "sync returned but durable < record end"
}
