// Package wal implements the redo-only write-ahead log behind the
// sqlarray engine's durability story: an append-only stream of
// CRC-framed records over numbered segment files, monotonically
// increasing log sequence numbers, a group-commit buffer flushed by an
// explicit Sync, and checkpoint records that bound how much of the log
// recovery has to replay.
//
// The log is deliberately engine-agnostic: record payloads are opaque
// bytes. The engine logs full page after-images plus commit records
// carrying catalog deltas; because after-images are physical and
// replayed in log order, recovery is idempotent — replaying a record
// twice, or replaying a change that already reached the database file,
// converges to the same bytes. That is what lets recovery start from an
// arbitrary mix of flushed and unflushed pages (the paper's arrays live
// inside SQL Server for exactly this property: in-place array updates
// with ACID semantics, §1).
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sync"
	"sync/atomic"
	"time"

	"sqlarray/internal/obs"
)

// LSN is a log sequence number: the logical byte offset of a record's
// frame within the whole log stream. LSNs increase monotonically and
// survive segment rolls; LSN 0 is "nothing logged".
type LSN uint64

// RecordType tags what a record's payload means. The wal package only
// interprets RecCheckpoint (replay bound, segment pruning); everything
// else is opaque to it.
type RecordType uint8

const (
	// RecPageImage is a full page after-image: payload is a 4-byte
	// little-endian page id followed by the page bytes.
	RecPageImage RecordType = 1
	// RecCommit marks a statement boundary; payload is the engine's
	// catalog delta. Records after the last RecCommit/RecCheckpoint are
	// an uncommitted tail and are discarded by recovery.
	RecCommit RecordType = 2
	// RecCheckpoint bounds replay: payload is the engine's full catalog
	// snapshot, and every earlier record is already reflected in the
	// database file.
	RecCheckpoint RecordType = 3
	// RecPagePrefix is a truncated page after-image: payload is a 4-byte
	// little-endian page id followed by only the page's header plus used
	// body bytes. The writer guarantees the omitted tail is zero, so
	// recovery reconstructs the full page by zero-extending — byte-exact,
	// checksum included. Used for blob pages, where compressed chunks
	// leave most of the 8 kB body empty and full images would bloat the
	// log.
	RecPagePrefix RecordType = 4
)

const (
	// frame: crc32 | payload len | type | lsn
	frameHeaderSize = 4 + 4 + 1 + 8
	// segment file header: magic + base LSN.
	segHeaderSize = 16
	segMagic      = "SQAWAL01"
	// DefaultSegmentSize is the roll-over threshold for segment files.
	DefaultSegmentSize = 4 << 20
	// maxRecordSize bounds a single record (a page image plus slack is
	// ~8.2 kB; catalog snapshots are small — 16 MB is a corruption
	// tripwire, not a real limit).
	maxRecordSize = 16 << 20
)

// Errors returned by the log.
var (
	ErrClosed   = errors.New("wal: log closed")
	ErrTooLarge = errors.New("wal: record too large")
)

// Stats is a snapshot of the log's I/O counters, surfaced by sqlsh's
// .stats and the WAL benchmarks.
type Stats struct {
	Records      uint64 // records appended
	BytesLogged  uint64 // framed bytes appended (buffered or written)
	Syncs        uint64 // explicit Sync calls that reached the storage
	Checkpoints  uint64
	SegmentRolls uint64
	// GroupCommitPiggybacks counts Sync calls that became durable by
	// waiting on another caller's in-flight fsync instead of issuing
	// their own — the group-commit win under concurrent committers.
	GroupCommitPiggybacks uint64
}

// Options configures a log.
type Options struct {
	// SegmentSize is the roll-over threshold in bytes (default 4 MB).
	SegmentSize int64
}

// segInfo describes one live segment.
type segInfo struct {
	seq  uint32
	base LSN // LSN of the first record in the segment
}

// Log is the write-ahead log. Appends are buffered (group commit) and
// become durable on Sync. A Log is safe for concurrent use, though the
// engine serializes writers anyway; DurableLSN is lock-free so the
// buffer pool's flush gate never contends with appends.
type Log struct {
	mu       sync.Mutex
	st       Storage
	segs     []segInfo
	cur      Segment
	curSize  int64 // bytes in the current segment, including buffered
	buf      []byte
	nextLSN  LSN
	durable  atomic.Uint64
	lastCkpt LSN // LSN of the last checkpoint record (0 = none)
	segLimit int64
	closed   bool

	// Group commit: at most one goroutine (the sync leader) runs the
	// storage fsync at a time, with l.mu released. syncing is true while
	// that fsync is in flight; syncCond wakes everyone parked on it —
	// followers whose records the leader's flush already covered return
	// without an fsync of their own. While syncing is true, durable is
	// frozen (only the leader advances it, after re-acquiring l.mu), and
	// the active segment must not be closed, truncated, or rolled.
	syncing  bool
	syncCond *sync.Cond

	records      obs.Counter
	bytesLogged  obs.Counter
	syncs        obs.Counter
	checkpoints  obs.Counter
	segmentRolls obs.Counter
	piggybacks   obs.Counter
	// syncLatency observes the wall time of each leader fsync (followers
	// that piggyback are not observed — they paid no storage round trip).
	syncLatency obs.Histogram
}

// RegisterMetrics attaches the log's counters to reg under the "wal."
// prefix, including the leader-fsync latency histogram.
func (l *Log) RegisterMetrics(reg *obs.Registry) {
	reg.Attach("wal.records", &l.records)
	reg.Attach("wal.bytes_logged", &l.bytesLogged)
	reg.Attach("wal.syncs", &l.syncs)
	reg.Attach("wal.checkpoints", &l.checkpoints)
	reg.Attach("wal.segment_rolls", &l.segmentRolls)
	reg.Attach("wal.group_commit_piggybacks", &l.piggybacks)
	reg.AttachHistogram("wal.sync_latency", &l.syncLatency)
}

// Open opens (or initializes) a log over st, scanning existing segments
// to find the end of the valid record stream. A torn tail — a record
// whose frame is short or whose CRC does not match — is truncated away,
// along with any later segments. The returned log is positioned to
// append after the last valid record; call Recover before appending to
// replay the tail since the last checkpoint.
func Open(st Storage, o Options) (*Log, error) {
	if o.SegmentSize <= 0 {
		o.SegmentSize = DefaultSegmentSize
	}
	l := &Log{st: st, segLimit: o.SegmentSize}
	l.syncCond = sync.NewCond(&l.mu)
	seqs, err := st.List()
	if err != nil {
		return nil, err
	}
	if len(seqs) == 0 {
		if err := l.createSegment(0, 0); err != nil {
			return nil, err
		}
		return l, nil
	}
	// Scan segments in order, validating the record chain.
	var lastValidEnd LSN
	torn := false
	for i, seq := range seqs {
		if torn {
			// Everything past the torn point is unreachable.
			_ = st.Remove(seq)
			continue
		}
		seg, err := st.Open(seq)
		if err != nil {
			return nil, err
		}
		base, end, ckpt, segTorn, err := l.scanSegment(seg)
		if err != nil {
			seg.Close()
			return nil, fmt.Errorf("wal: segment %d: %w", seq, err)
		}
		if i == 0 {
			l.nextLSN = base
		} else if base != lastValidEnd {
			// Gap between segments: treat the remainder as lost.
			seg.Close()
			torn = true
			_ = st.Remove(seq)
			continue
		}
		l.segs = append(l.segs, segInfo{seq: seq, base: base})
		if ckpt != 0 {
			l.lastCkpt = ckpt
		}
		lastValidEnd = end
		if segTorn {
			if err := seg.Truncate(segHeaderSize + int64(end-base)); err != nil {
				seg.Close()
				return nil, err
			}
			torn = true
		}
		if i == len(seqs)-1 || torn {
			l.cur = seg
			l.curSize = segHeaderSize + int64(end-base)
		} else {
			seg.Close()
		}
	}
	l.nextLSN = lastValidEnd
	l.durable.Store(uint64(lastValidEnd))
	if l.cur == nil {
		// The tail was lost to an inter-segment gap after a fully valid
		// (and already closed) segment: reopen the last valid segment
		// for appending rather than fabricating a new one — its file
		// still exists, and its record prefix is the log.
		if len(l.segs) > 0 {
			last := l.segs[len(l.segs)-1]
			seg, err := l.st.Open(last.seq)
			if err != nil {
				return nil, err
			}
			l.cur = seg
			l.curSize = segHeaderSize + int64(lastValidEnd-last.base)
		} else if err := l.createSegment(0, 0); err != nil {
			return nil, err
		}
	}
	return l, nil
}

// scanSegment validates a segment's header and walks its records,
// returning the base LSN, the LSN just past the last valid record, the
// LSN of the last checkpoint record seen, and whether the tail was torn.
func (l *Log) scanSegment(seg Segment) (base, end, ckpt LSN, torn bool, err error) {
	var hdr [segHeaderSize]byte
	if _, err := seg.ReadAt(hdr[:], 0); err != nil {
		return 0, 0, 0, false, fmt.Errorf("short segment header: %w", err)
	}
	if string(hdr[:8]) != segMagic {
		return 0, 0, 0, false, fmt.Errorf("bad segment magic %q", hdr[:8])
	}
	base = LSN(binary.LittleEndian.Uint64(hdr[8:]))
	size, err := seg.Size()
	if err != nil {
		return 0, 0, 0, false, err
	}
	off := int64(segHeaderSize)
	end = base
	for off < size {
		_, typ, n, ok := readFrame(seg, off, size)
		if !ok {
			return base, end, ckpt, true, nil
		}
		if typ == RecCheckpoint {
			ckpt = end
		}
		off += n
		end = base + LSN(off-segHeaderSize)
	}
	return base, end, ckpt, false, nil
}

// readFrame reads and validates one record frame at off, returning the
// payload, type and frame length. ok=false marks a torn/corrupt frame.
func readFrame(seg Segment, off, size int64) (payload []byte, typ RecordType, n int64, ok bool) {
	if off+frameHeaderSize > size {
		return nil, 0, 0, false
	}
	var hdr [frameHeaderSize]byte
	if _, err := seg.ReadAt(hdr[:], off); err != nil {
		return nil, 0, 0, false
	}
	plen := binary.LittleEndian.Uint32(hdr[4:8])
	if plen > maxRecordSize || off+frameHeaderSize+int64(plen) > size {
		return nil, 0, 0, false
	}
	buf := make([]byte, frameHeaderSize+int(plen))
	if _, err := seg.ReadAt(buf, off); err != nil {
		return nil, 0, 0, false
	}
	stored := binary.LittleEndian.Uint32(buf[:4])
	if crc32.ChecksumIEEE(buf[4:]) != stored {
		return nil, 0, 0, false
	}
	return buf[frameHeaderSize:], RecordType(buf[8]), int64(len(buf)), true
}

// createSegment makes seq the active segment with the given base LSN.
func (l *Log) createSegment(seq uint32, base LSN) error {
	seg, err := l.st.Create(seq)
	if err != nil {
		return err
	}
	var hdr [segHeaderSize]byte
	copy(hdr[:], segMagic)
	binary.LittleEndian.PutUint64(hdr[8:], uint64(base))
	if err := seg.Append(hdr[:]); err != nil {
		seg.Close()
		return err
	}
	l.cur = seg
	l.curSize = segHeaderSize
	l.segs = append(l.segs, segInfo{seq: seq, base: base})
	return nil
}

// FrameSize returns the framed size of a record with the given payload
// length; lsn + FrameSize(len(payload)) is the LSN just past a record,
// which is what recovery hands TruncateTo to drop an uncommitted tail.
func FrameSize(payloadLen int) LSN { return LSN(frameHeaderSize + payloadLen) }

// NextLSN returns the LSN the next appended record will get. The engine
// stamps it into page headers before logging the page image.
func (l *Log) NextLSN() LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextLSN
}

// DurableLSN returns the highest LSN known to be durable: every record
// with start LSN below it has been synced to storage. Lock-free — the
// buffer pool's eviction path reads it on every dirty-victim check.
func (l *Log) DurableLSN() uint64 { return l.durable.Load() }

// LastCheckpointLSN returns the LSN of the most recent checkpoint
// record, or 0 if none has been written.
func (l *Log) LastCheckpointLSN() LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lastCkpt
}

// Stats returns a snapshot of the log counters.
func (l *Log) Stats() Stats {
	return Stats{
		Records:               l.records.Load(),
		BytesLogged:           l.bytesLogged.Load(),
		Syncs:                 l.syncs.Load(),
		Checkpoints:           l.checkpoints.Load(),
		SegmentRolls:          l.segmentRolls.Load(),
		GroupCommitPiggybacks: l.piggybacks.Load(),
	}
}

// Append frames a record into the group-commit buffer and returns its
// LSN. The record is not durable until Sync returns; a crash before
// that loses it (and recovery discards the whole uncommitted group, see
// RecCommit).
func (l *Log) Append(typ RecordType, payload []byte) (LSN, error) {
	if len(payload) > maxRecordSize {
		return 0, fmt.Errorf("%w: %d bytes", ErrTooLarge, len(payload))
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	frame := int64(frameHeaderSize + len(payload))
	// Roll to a fresh segment when this record would overflow the
	// current one (records never span segments). Rolling closes the
	// active segment, so wait out any in-flight group-commit fsync;
	// waiting releases l.mu, so re-check the roll condition after —
	// another appender may have rolled already.
	if l.curSize > segHeaderSize && l.curSize+frame > l.segLimit {
		for l.syncing {
			l.syncCond.Wait()
			if l.closed {
				return 0, ErrClosed
			}
		}
		if l.curSize > segHeaderSize && l.curSize+frame > l.segLimit {
			if err := l.rollLocked(); err != nil {
				return 0, err
			}
		}
	}
	lsn := l.nextLSN
	var hdr [frameHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(len(payload)))
	hdr[8] = byte(typ)
	binary.LittleEndian.PutUint64(hdr[9:], uint64(lsn))
	crc := crc32.ChecksumIEEE(hdr[4:])
	crc = crc32.Update(crc, crc32.IEEETable, payload)
	binary.LittleEndian.PutUint32(hdr[:4], crc)
	l.buf = append(l.buf, hdr[:]...)
	l.buf = append(l.buf, payload...)
	l.curSize += frame
	l.nextLSN += LSN(frame)
	l.records.Add(1)
	l.bytesLogged.Add(uint64(frame))
	return lsn, nil
}

// rollLocked flushes the buffer, syncs and closes the current segment,
// and opens the next one. Caller holds l.mu.
func (l *Log) rollLocked() error {
	if err := l.flushLocked(); err != nil {
		return err
	}
	if err := l.cur.Sync(); err != nil {
		return err
	}
	l.durable.Store(uint64(l.nextLSN))
	if err := l.cur.Close(); err != nil {
		return err
	}
	next := l.segs[len(l.segs)-1].seq + 1
	l.segmentRolls.Add(1)
	return l.createSegment(next, l.nextLSN)
}

// flushLocked writes the group-commit buffer to the current segment
// without syncing. Caller holds l.mu.
func (l *Log) flushLocked() error {
	if len(l.buf) == 0 {
		return nil
	}
	if err := l.cur.Append(l.buf); err != nil {
		return err
	}
	l.buf = l.buf[:0]
	return nil
}

// Sync flushes the group-commit buffer and makes every appended record
// durable. This is the commit point: DurableLSN advances to NextLSN.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	//lint:allow latchorder syncLocked's reacquire of l.mu after the leader fsync is a release-then-relock, not a nested acquisition
	return l.syncLocked()
}

// syncLocked makes every record appended so far durable. Concurrent
// callers group-commit: the first one through becomes the sync leader
// and runs the storage fsync with l.mu released; later callers park on
// syncCond and, once the leader's fsync covers their records, return
// without touching the storage (counted as a piggyback). A caller whose
// records the in-flight fsync does NOT cover (appended after the
// leader's flush) waits it out and then leads the next sync — fsyncs
// pipeline instead of serializing behind one another. Caller holds l.mu.
func (l *Log) syncLocked() error {
	if l.closed {
		return ErrClosed
	}
	target := l.nextLSN
	waited := false
	for {
		if uint64(target) <= l.durable.Load() {
			if waited {
				l.piggybacks.Add(1)
			}
			return nil // an earlier sync already covered our records
		}
		if l.closed {
			return ErrClosed
		}
		if !l.syncing {
			break // become the leader
		}
		waited = true
		l.syncCond.Wait()
	}
	if err := l.flushLocked(); err != nil {
		return err
	}
	flushed := l.nextLSN
	cur := l.cur
	l.syncing = true
	l.mu.Unlock()
	syncStart := time.Now()
	err := cur.Sync()
	l.syncLatency.Observe(time.Since(syncStart))
	l.mu.Lock()
	l.syncing = false
	if err == nil {
		// Advance durable before waking followers so they observe it.
		l.durable.Store(uint64(flushed))
		l.syncs.Add(1)
	}
	l.syncCond.Broadcast()
	return err
}

// Checkpoint appends a checkpoint record, syncs, and prunes every
// segment that lies entirely before the checkpoint — those records can
// never be replayed again, because recovery starts at the last
// checkpoint.
func (l *Log) Checkpoint(payload []byte) (LSN, error) {
	lsn, err := l.Append(RecCheckpoint, payload)
	if err != nil {
		return 0, err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	//lint:allow latchorder syncLocked's reacquire of l.mu after the leader fsync is a release-then-relock, not a nested acquisition
	if err := l.syncLocked(); err != nil {
		return 0, err
	}
	l.lastCkpt = lsn
	l.checkpoints.Add(1)
	// Prune segments whose successor starts at or before the checkpoint:
	// every record in them precedes the checkpoint record.
	keep := 0
	for keep < len(l.segs)-1 && l.segs[keep+1].base <= lsn {
		keep++
	}
	for _, s := range l.segs[:keep] {
		_ = l.st.Remove(s.seq)
	}
	l.segs = append([]segInfo(nil), l.segs[keep:]...)
	return lsn, nil
}

// Recover replays the durable record stream starting at the last
// checkpoint record (or the log's beginning if none), invoking fn for
// every record in LSN order. It reads only synced storage; call it
// after Open and before appending.
func (l *Log) Recover(fn func(lsn LSN, typ RecordType, payload []byte) error) error {
	l.mu.Lock()
	segs := append([]segInfo(nil), l.segs...)
	start := l.lastCkpt
	end := l.nextLSN
	cur := l.cur
	l.mu.Unlock()
	for i, si := range segs {
		segEnd := end
		if i < len(segs)-1 {
			segEnd = segs[i+1].base
		}
		if segEnd <= start {
			continue
		}
		seg, err := l.st.Open(si.seq)
		if err != nil {
			return err
		}
		// The active segment may come back as the same handle (MemStorage)
		// or a second one (DirStorage); only a distinct handle is ours to
		// close.
		closeSeg := func() {
			if seg != cur {
				seg.Close()
			}
		}
		size := segHeaderSize + int64(segEnd-si.base)
		off := int64(segHeaderSize)
		lsn := si.base
		for off < size {
			payload, typ, n, ok := readFrame(seg, off, size)
			if !ok {
				if i < len(segs)-1 {
					closeSeg()
					return fmt.Errorf("wal: corrupt record at lsn %d in non-final segment %d", lsn, si.seq)
				}
				break
			}
			if lsn >= start {
				if err := fn(lsn, typ, payload); err != nil {
					closeSeg()
					return err
				}
			}
			off += n
			lsn += LSN(n)
		}
		closeSeg()
	}
	return nil
}

// TruncateTo discards every record whose start LSN is >= lsn — the
// engine calls this after recovery to drop an uncommitted tail (records
// appended but not followed by a commit record before the crash), so
// fresh appends cannot merge with half-a-statement of old ones.
func (l *Log) TruncateTo(lsn LSN) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	// Truncation rewrites the active segment; wait out any in-flight
	// group-commit fsync first.
	for l.syncing {
		l.syncCond.Wait()
		if l.closed {
			return ErrClosed
		}
	}
	if lsn >= l.nextLSN {
		return nil
	}
	if len(l.buf) > 0 {
		return fmt.Errorf("wal: TruncateTo with buffered appends")
	}
	// Find the segment containing lsn and drop everything after.
	idx := len(l.segs) - 1
	for idx > 0 && l.segs[idx].base > lsn {
		idx--
	}
	if l.segs[idx].base > lsn {
		return fmt.Errorf("wal: truncate target %d precedes the log", lsn)
	}
	for _, s := range l.segs[idx+1:] {
		_ = l.st.Remove(s.seq)
	}
	l.segs = l.segs[:idx+1]
	if l.cur != nil {
		l.cur.Close()
	}
	seg, err := l.st.Open(l.segs[idx].seq)
	if err != nil {
		return err
	}
	newSize := segHeaderSize + int64(lsn-l.segs[idx].base)
	if err := seg.Truncate(newSize); err != nil {
		seg.Close()
		return err
	}
	if err := seg.Sync(); err != nil {
		seg.Close()
		return err
	}
	l.cur = seg
	l.curSize = newSize
	l.nextLSN = lsn
	l.durable.Store(uint64(lsn))
	if l.lastCkpt >= lsn {
		l.lastCkpt = 0
	}
	return nil
}

// Segments returns the number of live segment files.
func (l *Log) Segments() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.segs)
}

// Close flushes and syncs the buffer and closes the active segment.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	//lint:allow latchorder syncLocked's reacquire of l.mu after the leader fsync is a release-then-relock, not a nested acquisition
	err := l.syncLocked()
	// Our own records are durable, but a later caller's fsync may still
	// be in flight against the active segment; wait it out before
	// closing the handle under it.
	for l.syncing {
		l.syncCond.Wait()
	}
	if l.closed {
		return err
	}
	l.closed = true
	l.syncCond.Broadcast()
	if l.cur != nil {
		if cerr := l.cur.Close(); err == nil {
			err = cerr
		}
		l.cur = nil
	}
	return err
}
