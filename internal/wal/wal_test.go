package wal

import (
	"bytes"
	"fmt"
	"testing"
)

// collect replays the log into a slice of (type, payload) pairs.
func collect(t *testing.T, l *Log) (types []RecordType, payloads [][]byte, lsns []LSN) {
	t.Helper()
	err := l.Recover(func(lsn LSN, typ RecordType, payload []byte) error {
		lsns = append(lsns, lsn)
		types = append(types, typ)
		payloads = append(payloads, append([]byte(nil), payload...))
		return nil
	})
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	return
}

func TestAppendSyncDurable(t *testing.T) {
	st := NewMemStorage()
	l, err := Open(st, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := l.DurableLSN(); got != 0 {
		t.Fatalf("fresh log durable LSN = %d", got)
	}
	l1, err := l.Append(RecCommit, []byte("one"))
	if err != nil {
		t.Fatal(err)
	}
	l2, err := l.Append(RecCommit, []byte("two"))
	if err != nil {
		t.Fatal(err)
	}
	if l2 <= l1 {
		t.Fatalf("LSNs not increasing: %d then %d", l1, l2)
	}
	if got := l.DurableLSN(); got != 0 {
		t.Fatalf("durable LSN advanced before Sync: %d", got)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if got, want := LSN(l.DurableLSN()), l2+FrameSize(3); got != want {
		t.Fatalf("durable LSN = %d, want %d", got, want)
	}
	st2 := l.Stats()
	if st2.Records != 2 || st2.Syncs != 1 {
		t.Fatalf("stats = %+v", st2)
	}
}

func TestReplayRoundTripAcrossReopen(t *testing.T) {
	st := NewMemStorage()
	l, err := Open(st, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := [][]byte{[]byte("alpha"), []byte("beta"), []byte("gamma")}
	for _, p := range want {
		if _, err := l.Append(RecPageImage, p); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(st, Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, payloads, lsns := collect(t, l2)
	if len(payloads) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(payloads), len(want))
	}
	for i := range want {
		if !bytes.Equal(payloads[i], want[i]) {
			t.Fatalf("record %d = %q, want %q", i, payloads[i], want[i])
		}
	}
	// Appends after reopen continue the LSN sequence.
	nl, err := l2.Append(RecCommit, nil)
	if err != nil {
		t.Fatal(err)
	}
	if nl <= lsns[len(lsns)-1] {
		t.Fatalf("post-reopen LSN %d not past %d", nl, lsns[len(lsns)-1])
	}
}

func TestCrashDropsUnsyncedTail(t *testing.T) {
	st := NewMemStorage()
	l, err := Open(st, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(RecCommit, []byte("durable")); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(RecCommit, []byte("lost")); err != nil {
		t.Fatal(err)
	}
	// No Sync: the second record lives only in the group-commit buffer
	// (and would be lost even without Crash), but flush it through a
	// segment-file write without sync to exercise the synced-prefix cut.
	l.mu.Lock()
	if err := l.flushLocked(); err != nil {
		t.Fatal(err)
	}
	l.mu.Unlock()
	st.Crash()
	l2, err := Open(st, Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, payloads, _ := collect(t, l2)
	if len(payloads) != 1 || string(payloads[0]) != "durable" {
		t.Fatalf("after crash got %d records %q, want just \"durable\"", len(payloads), payloads)
	}
}

func TestTornTailTruncated(t *testing.T) {
	st := NewMemStorage()
	l, err := Open(st, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(RecCommit, []byte("good")); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(RecCommit, []byte("mangled-record-payload")); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	st.CorruptTail(10) // flip bytes inside the last record
	l2, err := Open(st, Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, payloads, _ := collect(t, l2)
	if len(payloads) != 1 || string(payloads[0]) != "good" {
		t.Fatalf("after torn tail got %q, want just \"good\"", payloads)
	}
	// The torn bytes are gone: new appends replay cleanly.
	if _, err := l2.Append(RecCommit, []byte("fresh")); err != nil {
		t.Fatal(err)
	}
	if err := l2.Sync(); err != nil {
		t.Fatal(err)
	}
	l3, err := Open(st, Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, payloads, _ = collect(t, l3)
	if len(payloads) != 2 || string(payloads[1]) != "fresh" {
		t.Fatalf("after repair got %q", payloads)
	}
}

func TestSegmentRollAndCheckpointPrune(t *testing.T) {
	st := NewMemStorage()
	l, err := Open(st, Options{SegmentSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 100)
	for i := 0; i < 10; i++ {
		if _, err := l.Append(RecPageImage, payload); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if l.Segments() < 3 {
		t.Fatalf("expected several segments, got %d", l.Segments())
	}
	ck, err := l.Checkpoint([]byte("snapshot"))
	if err != nil {
		t.Fatal(err)
	}
	if l.Segments() != 1 {
		t.Fatalf("checkpoint left %d segments, want 1", l.Segments())
	}
	if _, err := l.Append(RecCommit, []byte("after")); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	// Reopen: replay starts at the checkpoint.
	l2, err := Open(st, Options{SegmentSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	if got := l2.LastCheckpointLSN(); got != ck {
		t.Fatalf("recovered checkpoint LSN %d, want %d", got, ck)
	}
	types, payloads, _ := collect(t, l2)
	if len(types) != 2 || types[0] != RecCheckpoint || string(payloads[1]) != "after" {
		t.Fatalf("replay after checkpoint: types %v payloads %q", types, payloads)
	}
}

func TestTruncateToDropsUncommittedTail(t *testing.T) {
	st := NewMemStorage()
	l, err := Open(st, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(RecCommit, []byte("committed")); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	boundary := l.NextLSN()
	if _, err := l.Append(RecPageImage, []byte("orphan page")); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := l.TruncateTo(boundary); err != nil {
		t.Fatal(err)
	}
	if got := l.NextLSN(); got != boundary {
		t.Fatalf("NextLSN after truncate = %d, want %d", got, boundary)
	}
	_, payloads, _ := collect(t, l)
	if len(payloads) != 1 || string(payloads[0]) != "committed" {
		t.Fatalf("after truncate got %q", payloads)
	}
}

// TestSegmentGapKeepsValidPrefixAppendable: when a mid-log segment's
// base LSN no longer chains (inter-segment damage), Open must keep the
// valid prefix, drop the unreachable tail, and reopen the last valid
// segment for appending — not try to re-create an existing file.
func TestSegmentGapKeepsValidPrefixAppendable(t *testing.T) {
	st := NewMemStorage()
	l, err := Open(st, Options{SegmentSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 100)
	for i := 0; i < 10; i++ {
		if _, err := l.Append(RecCommit, payload); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if len(st.segs) < 3 {
		t.Fatalf("want several segments, got %d", len(st.segs))
	}
	// Damage segment 1's base LSN so it no longer chains after seg 0.
	st.segs[1].data[8] ^= 0x7F
	st.segs[1].synced = len(st.segs[1].data)

	l2, err := Open(st, Options{SegmentSize: 256})
	if err != nil {
		t.Fatalf("Open over gapped log: %v", err)
	}
	_, payloads, _ := collect(t, l2)
	if len(payloads) == 0 {
		t.Fatal("valid prefix lost")
	}
	// The log is appendable and survives another reopen.
	if _, err := l2.Append(RecCommit, []byte("after-gap")); err != nil {
		t.Fatal(err)
	}
	if err := l2.Sync(); err != nil {
		t.Fatal(err)
	}
	l3, err := Open(st, Options{SegmentSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	_, payloads3, _ := collect(t, l3)
	if string(payloads3[len(payloads3)-1]) != "after-gap" {
		t.Fatalf("append after gap lost: %q", payloads3[len(payloads3)-1])
	}
	if len(payloads3) != len(payloads)+1 {
		t.Fatalf("replay count %d, want %d", len(payloads3), len(payloads)+1)
	}
}

func TestDirStorageRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st, err := NewDirStorage(dir)
	if err != nil {
		t.Fatal(err)
	}
	l, err := Open(st, Options{SegmentSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if _, err := l.Append(RecCommit, []byte(fmt.Sprintf("rec-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := NewDirStorage(dir)
	if err != nil {
		t.Fatal(err)
	}
	l2, err := Open(st2, Options{SegmentSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	_, payloads, _ := collect(t, l2)
	if len(payloads) != 8 || string(payloads[7]) != "rec-7" {
		t.Fatalf("file-backed replay got %d records", len(payloads))
	}
}
