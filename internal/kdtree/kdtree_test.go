package kdtree

import (
	"errors"
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func randPoints(rng *rand.Rand, n, dim int) []Point {
	pts := make([]Point, n)
	for i := range pts {
		c := make([]float64, dim)
		for d := range c {
			c[d] = rng.NormFloat64()
		}
		pts[i] = Point{Coords: c, ID: int64(i)}
	}
	return pts
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build(nil, 0); err == nil {
		t.Error("zero dim must fail")
	}
	if _, err := Build([]Point{{Coords: []float64{1}}}, 2); !errors.Is(err, ErrDim) {
		t.Errorf("dim mismatch: %v", err)
	}
}

func TestEmptyTree(t *testing.T) {
	tr, err := Build(nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 0 {
		t.Errorf("Len = %d", tr.Len())
	}
	ns, err := tr.KNN([]float64{0, 0, 0}, 5)
	if err != nil || ns != nil {
		t.Errorf("KNN on empty = %v, %v", ns, err)
	}
	if _, err := tr.Nearest([]float64{0, 0, 0}); err == nil {
		t.Error("Nearest on empty must fail")
	}
}

func TestKNNMatchesBruteForceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func() bool {
		n := 1 + rng.Intn(300)
		dim := 1 + rng.Intn(5)
		pts := randPoints(rng, n, dim)
		ref := make([]Point, len(pts))
		copy(ref, pts)
		tr, err := Build(pts, dim)
		if err != nil {
			return false
		}
		q := make([]float64, dim)
		for d := range q {
			q[d] = rng.NormFloat64()
		}
		k := 1 + rng.Intn(10)
		got, err := tr.KNN(q, k)
		if err != nil {
			return false
		}
		want := BruteKNN(ref, q, k)
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			// Compare distances (ties may reorder IDs).
			if math.Abs(got[i].Dist2-want[i].Dist2) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestNearestExactMatch(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts := randPoints(rng, 500, 3)
	target := pts[123]
	tr, err := Build(pts, 3)
	if err != nil {
		t.Fatal(err)
	}
	n, err := tr.Nearest(target.Coords)
	if err != nil {
		t.Fatal(err)
	}
	if n.Dist2 != 0 || n.Point.ID != target.ID {
		t.Errorf("Nearest = %+v, want exact point %d", n, target.ID)
	}
}

func TestKNNSortedAscending(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tr, err := Build(randPoints(rng, 200, 2), 2)
	if err != nil {
		t.Fatal(err)
	}
	ns, err := tr.KNN([]float64{0.5, -0.2}, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(ns) != 20 {
		t.Fatalf("got %d neighbors", len(ns))
	}
	if !sort.SliceIsSorted(ns, func(i, j int) bool { return ns[i].Dist2 < ns[j].Dist2 }) {
		t.Error("KNN result not sorted")
	}
}

func TestKNNMoreThanAvailable(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	tr, _ := Build(randPoints(rng, 5, 2), 2)
	ns, err := tr.KNN([]float64{0, 0}, 50)
	if err != nil || len(ns) != 5 {
		t.Errorf("KNN(50 of 5) = %d, %v", len(ns), err)
	}
	if _, err := tr.KNN([]float64{0}, 3); !errors.Is(err, ErrDim) {
		t.Errorf("dim mismatch: %v", err)
	}
	if ns, _ := tr.KNN([]float64{0, 0}, 0); ns != nil {
		t.Error("k=0 must return nothing")
	}
}

func TestWithinRadiusMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pts := randPoints(rng, 400, 3)
	ref := make([]Point, len(pts))
	copy(ref, pts)
	tr, _ := Build(pts, 3)
	for trial := 0; trial < 20; trial++ {
		q := []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		r := 0.2 + rng.Float64()
		got, err := tr.WithinRadius(q, r)
		if err != nil {
			t.Fatal(err)
		}
		want := map[int64]bool{}
		for _, p := range ref {
			d := 0.0
			for i := range q {
				dd := q[i] - p.Coords[i]
				d += dd * dd
			}
			if d <= r*r {
				want[p.ID] = true
			}
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d in radius, want %d", trial, len(got), len(want))
		}
		for _, n := range got {
			if !want[n.Point.ID] {
				t.Fatalf("trial %d: unexpected point %d", trial, n.Point.ID)
			}
		}
	}
	if _, err := tr.WithinRadius([]float64{0}, 1); !errors.Is(err, ErrDim) {
		t.Errorf("dim mismatch: %v", err)
	}
	if out, _ := tr.WithinRadius([]float64{0, 0, 0}, -1); out != nil {
		t.Error("negative radius must return nothing")
	}
}

func TestDuplicatePoints(t *testing.T) {
	pts := []Point{
		{Coords: []float64{1, 1}, ID: 1},
		{Coords: []float64{1, 1}, ID: 2},
		{Coords: []float64{1, 1}, ID: 3},
		{Coords: []float64{2, 2}, ID: 4},
	}
	tr, err := Build(pts, 2)
	if err != nil {
		t.Fatal(err)
	}
	ns, err := tr.KNN([]float64{1, 1}, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range ns {
		if n.Dist2 != 0 {
			t.Errorf("duplicate point at distance %g", n.Dist2)
		}
	}
}

func TestHighDimensional(t *testing.T) {
	// PCA coefficient spaces are ~5-20 dimensional (§2.2).
	rng := rand.New(rand.NewSource(6))
	dim := 15
	pts := randPoints(rng, 1000, dim)
	ref := make([]Point, len(pts))
	copy(ref, pts)
	tr, err := Build(pts, dim)
	if err != nil {
		t.Fatal(err)
	}
	q := make([]float64, dim)
	got, err := tr.KNN(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	want := BruteKNN(ref, q, 5)
	for i := range got {
		if math.Abs(got[i].Dist2-want[i].Dist2) > 1e-12 {
			t.Errorf("neighbor %d: %g vs %g", i, got[i].Dist2, want[i].Dist2)
		}
	}
}
