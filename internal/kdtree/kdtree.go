// Package kdtree implements a k-d tree over points in R^k with k-nearest
// neighbour and radius queries. The paper's similar-spectrum search
// (§2.2) "builds a kd-tree over the [PCA] coefficients so nearest
// neighbor searches can be executed very quickly"; package spectra uses
// this tree for exactly that.
package kdtree

import (
	"container/heap"
	"errors"
	"fmt"
	"sort"
)

// ErrDim reports a query whose dimensionality does not match the tree.
var ErrDim = errors.New("kdtree: dimension mismatch")

// Point is one indexed point: coordinates plus the caller's identifier.
type Point struct {
	Coords []float64
	ID     int64
}

// Tree is an immutable k-d tree built once over a point set.
type Tree struct {
	dim   int
	pts   []Point // reordered in place; node i's point is pts[mid]
	nodes []node
	root  int
}

type node struct {
	ptIdx       int // index into pts
	axis        int
	left, right int // node indexes, -1 = leaf edge
}

// Build constructs a tree over the given points (the slice is reordered).
func Build(pts []Point, dim int) (*Tree, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("kdtree: dimension %d", dim)
	}
	for i := range pts {
		if len(pts[i].Coords) != dim {
			return nil, fmt.Errorf("%w: point %d has %d coords, want %d",
				ErrDim, i, len(pts[i].Coords), dim)
		}
	}
	t := &Tree{dim: dim, pts: pts, root: -1}
	if len(pts) > 0 {
		t.nodes = make([]node, 0, len(pts))
		t.root = t.build(0, len(pts), 0)
	}
	return t, nil
}

// build recursively median-splits pts[lo:hi) on the cycling axis.
func (t *Tree) build(lo, hi, depth int) int {
	if lo >= hi {
		return -1
	}
	axis := depth % t.dim
	mid := (lo + hi) / 2
	nthElement(t.pts[lo:hi], mid-lo, axis)
	idx := len(t.nodes)
	t.nodes = append(t.nodes, node{ptIdx: mid, axis: axis, left: -1, right: -1})
	left := t.build(lo, mid, depth+1)
	right := t.build(mid+1, hi, depth+1)
	t.nodes[idx].left = left
	t.nodes[idx].right = right
	return idx
}

// nthElement partially sorts so that pts[n] is the n-th point by the
// axis coordinate (quickselect).
func nthElement(pts []Point, n, axis int) {
	lo, hi := 0, len(pts)-1
	for lo < hi {
		p := pts[(lo+hi)/2].Coords[axis]
		i, j := lo, hi
		for i <= j {
			for pts[i].Coords[axis] < p {
				i++
			}
			for pts[j].Coords[axis] > p {
				j--
			}
			if i <= j {
				pts[i], pts[j] = pts[j], pts[i]
				i++
				j--
			}
		}
		if n <= j {
			hi = j
		} else if n >= i {
			lo = i
		} else {
			return
		}
	}
}

// Len returns the number of indexed points.
func (t *Tree) Len() int { return len(t.pts) }

// Neighbor is one k-NN result.
type Neighbor struct {
	Point Point
	Dist2 float64
}

// resultHeap is a max-heap on Dist2 (the worst current candidate on top).
type resultHeap []Neighbor

func (h resultHeap) Len() int           { return len(h) }
func (h resultHeap) Less(i, j int) bool { return h[i].Dist2 > h[j].Dist2 }
func (h resultHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *resultHeap) Push(x any)        { *h = append(*h, x.(Neighbor)) }
func (h *resultHeap) Pop() any          { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

// KNN returns the k nearest neighbours of q, closest first.
func (t *Tree) KNN(q []float64, k int) ([]Neighbor, error) {
	if len(q) != t.dim {
		return nil, fmt.Errorf("%w: query has %d coords, want %d", ErrDim, len(q), t.dim)
	}
	if k <= 0 || t.root < 0 {
		return nil, nil
	}
	h := make(resultHeap, 0, k+1)
	t.knn(t.root, q, k, &h)
	sort.Slice(h, func(i, j int) bool { return h[i].Dist2 < h[j].Dist2 })
	return h, nil
}

func (t *Tree) knn(ni int, q []float64, k int, h *resultHeap) {
	if ni < 0 {
		return
	}
	nd := &t.nodes[ni]
	p := &t.pts[nd.ptIdx]
	d2 := dist2(q, p.Coords)
	if len(*h) < k {
		heap.Push(h, Neighbor{Point: *p, Dist2: d2})
	} else if d2 < (*h)[0].Dist2 {
		(*h)[0] = Neighbor{Point: *p, Dist2: d2}
		heap.Fix(h, 0)
	}
	delta := q[nd.axis] - p.Coords[nd.axis]
	near, far := nd.left, nd.right
	if delta > 0 {
		near, far = far, near
	}
	t.knn(near, q, k, h)
	// Prune the far side unless the splitting plane is closer than the
	// current k-th best.
	if len(*h) < k || delta*delta < (*h)[0].Dist2 {
		t.knn(far, q, k, h)
	}
}

// Nearest returns the single nearest neighbour.
func (t *Tree) Nearest(q []float64) (Neighbor, error) {
	ns, err := t.KNN(q, 1)
	if err != nil {
		return Neighbor{}, err
	}
	if len(ns) == 0 {
		return Neighbor{}, errors.New("kdtree: empty tree")
	}
	return ns[0], nil
}

// WithinRadius returns every point within radius r of q (unsorted).
func (t *Tree) WithinRadius(q []float64, r float64) ([]Neighbor, error) {
	if len(q) != t.dim {
		return nil, fmt.Errorf("%w: query has %d coords, want %d", ErrDim, len(q), t.dim)
	}
	if r < 0 || t.root < 0 {
		return nil, nil
	}
	var out []Neighbor
	r2 := r * r
	var walk func(ni int)
	walk = func(ni int) {
		if ni < 0 {
			return
		}
		nd := &t.nodes[ni]
		p := &t.pts[nd.ptIdx]
		if d2 := dist2(q, p.Coords); d2 <= r2 {
			out = append(out, Neighbor{Point: *p, Dist2: d2})
		}
		delta := q[nd.axis] - p.Coords[nd.axis]
		if delta <= r {
			walk(nd.left)
		}
		if -delta <= r {
			walk(nd.right)
		}
	}
	walk(t.root)
	return out, nil
}

func dist2(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// BruteKNN is the O(n) reference used by tests and tiny point sets.
func BruteKNN(pts []Point, q []float64, k int) []Neighbor {
	out := make([]Neighbor, 0, len(pts))
	for _, p := range pts {
		out = append(out, Neighbor{Point: p, Dist2: dist2(q, p.Coords)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist2 != out[j].Dist2 {
			return out[i].Dist2 < out[j].Dist2
		}
		return out[i].Point.ID < out[j].Point.ID
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}
