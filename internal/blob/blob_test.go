package blob

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"

	"sqlarray/internal/pages"
)

func newStore(t *testing.T) *Store {
	t.Helper()
	return NewStore(pages.NewBufferPool(pages.NewMemDisk(), 1024))
}

func randBytes(rng *rand.Rand, n int) []byte {
	b := make([]byte, n)
	rng.Read(b)
	return b
}

func TestWriteReadAllSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := newStore(t)
	for _, n := range []int{1, 100, ChunkSize - 1, ChunkSize, ChunkSize + 1,
		3 * ChunkSize, 3*ChunkSize + 17, 64 * 1024} {
		data := randBytes(rng, n)
		ref, err := s.Write(data)
		if err != nil {
			t.Fatalf("Write %d: %v", n, err)
		}
		if ref.Length != int64(n) {
			t.Errorf("Length = %d, want %d", ref.Length, n)
		}
		got, err := s.ReadAll(ref)
		if err != nil {
			t.Fatalf("ReadAll %d: %v", n, err)
		}
		if !bytes.Equal(got, data) {
			t.Errorf("roundtrip mismatch at %d bytes", n)
		}
	}
}

func TestEmptyBlob(t *testing.T) {
	s := newStore(t)
	ref, err := s.Write(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !ref.IsNull() {
		t.Error("empty write must produce null ref")
	}
	got, err := s.ReadAll(ref)
	if err != nil || got != nil {
		t.Errorf("ReadAll(null) = %v, %v", got, err)
	}
}

func TestRefEncodeDecode(t *testing.T) {
	r := Ref{Root: 42, Length: 1 << 40}
	var buf [RefSize]byte
	r.Encode(buf[:])
	back, err := DecodeRef(buf[:])
	if err != nil || back != r {
		t.Errorf("roundtrip = %+v, %v", back, err)
	}
	if _, err := DecodeRef(buf[:5]); !errors.Is(err, ErrBadRef) {
		t.Errorf("short decode: %v", err)
	}
}

func TestPartialReadTouchesFewChunks(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s := newStore(t)
	data := randBytes(rng, 10*ChunkSize)
	ref, err := s.Write(data)
	if err != nil {
		t.Fatal(err)
	}
	s.ResetStats()
	// Read 100 bytes from the middle of chunk 5.
	off := int64(5*ChunkSize + 123)
	dst := make([]byte, 100)
	if err := s.ReadAt(ref, dst, off); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst, data[off:off+100]) {
		t.Error("partial read data mismatch")
	}
	st := s.Stats()
	if st.ChunkReads != 1 {
		t.Errorf("ChunkReads = %d, want 1 (partial read must not touch other chunks)", st.ChunkReads)
	}
	// A read spanning a chunk boundary touches exactly 2.
	s.ResetStats()
	off = int64(3*ChunkSize - 50)
	dst = make([]byte, 100)
	if err := s.ReadAt(ref, dst, off); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst, data[off:off+100]) {
		t.Error("boundary read mismatch")
	}
	if s.Stats().ChunkReads != 2 {
		t.Errorf("boundary ChunkReads = %d, want 2", s.Stats().ChunkReads)
	}
}

func TestReadAtBounds(t *testing.T) {
	s := newStore(t)
	ref, err := s.Write(make([]byte, 100))
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, 10)
	if err := s.ReadAt(ref, dst, 95); !errors.Is(err, ErrShortRead) {
		t.Errorf("past-end read: %v", err)
	}
	if err := s.ReadAt(ref, dst, -1); !errors.Is(err, ErrShortRead) {
		t.Errorf("negative offset: %v", err)
	}
	if err := s.ReadAt(Ref{}, dst, 0); !errors.Is(err, ErrBadRef) {
		t.Errorf("null blob read: %v", err)
	}
	if err := s.ReadAt(ref, nil, 0); err != nil {
		t.Errorf("zero-length read: %v", err)
	}
}

func TestReadRuns(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := newStore(t)
	data := randBytes(rng, 4*ChunkSize)
	ref, err := s.Write(data)
	if err != nil {
		t.Fatal(err)
	}
	runs := []Run{
		{SrcOff: 10, DstOff: 0, Len: 64},
		{SrcOff: ChunkSize + 5, DstOff: 64, Len: 128},
		{SrcOff: 3*ChunkSize - 8, DstOff: 192, Len: 16}, // spans boundary
	}
	dst := make([]byte, 208)
	if err := s.ReadRuns(ref, dst, runs); err != nil {
		t.Fatal(err)
	}
	for _, r := range runs {
		if !bytes.Equal(dst[r.DstOff:r.DstOff+r.Len], data[r.SrcOff:r.SrcOff+r.Len]) {
			t.Errorf("run %+v mismatch", r)
		}
	}
	if err := s.ReadRuns(ref, dst, []Run{{SrcOff: 4*ChunkSize - 1, DstOff: 0, Len: 10}}); !errors.Is(err, ErrShortRead) {
		t.Errorf("overflowing run: %v", err)
	}
	if err := s.ReadRuns(ref, nil, nil); err != nil {
		t.Errorf("empty runs: %v", err)
	}
}

func TestHugeBlobMultipleDirectoryPages(t *testing.T) {
	// More chunks than fit one directory page (idsPerDir = 2024):
	// use a blob of 2100 chunks but write it sparsely — too big for a
	// unit test in memory? 2100*8096 ≈ 17 MB, fine.
	rng := rand.New(rand.NewSource(4))
	s := NewStore(pages.NewBufferPool(pages.NewMemDisk(), 4096))
	n := (idsPerDir + 76) * ChunkSize
	data := randBytes(rng, n)
	ref, err := s.Write(data)
	if err != nil {
		t.Fatal(err)
	}
	// Verify a few scattered offsets rather than the whole 17 MB.
	for _, off := range []int64{0, int64(idsPerDir)*ChunkSize - 1, int64(idsPerDir) * ChunkSize, int64(n) - 1} {
		dst := make([]byte, 1)
		if err := s.ReadAt(ref, dst, off); err != nil {
			t.Fatalf("ReadAt %d: %v", off, err)
		}
		if dst[0] != data[off] {
			t.Errorf("byte %d = %#x, want %#x", off, dst[0], data[off])
		}
	}
	s.ResetStats()
	dst := make([]byte, 1)
	if err := s.ReadAt(ref, dst, int64(n)-1); err != nil {
		t.Fatal(err)
	}
	if s.Stats().DirectoryReads != 2 {
		t.Errorf("DirectoryReads = %d, want 2 (chained directory)", s.Stats().DirectoryReads)
	}
}

func TestStreamReaderSeeker(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s := newStore(t)
	data := randBytes(rng, 2*ChunkSize+100)
	ref, err := s.Write(data)
	if err != nil {
		t.Fatal(err)
	}
	st := s.Open(ref)
	if st.Len() != int64(len(data)) {
		t.Errorf("Len = %d", st.Len())
	}
	// io.ReadAll through the wrapper.
	got, err := io.ReadAll(st)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("stream read mismatch")
	}
	// Seek + read.
	if _, err := st.Seek(100, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	n, err := st.Read(buf)
	if err != nil || n != 8 || !bytes.Equal(buf, data[100:108]) {
		t.Errorf("after seek: %d, %v", n, err)
	}
	if _, err := st.Seek(-4, io.SeekCurrent); err != nil {
		t.Fatal(err)
	}
	if pos, _ := st.Seek(0, io.SeekCurrent); pos != 104 {
		t.Errorf("pos = %d, want 104", pos)
	}
	if pos, err := st.Seek(-10, io.SeekEnd); err != nil || pos != int64(len(data))-10 {
		t.Errorf("seek end: %d, %v", pos, err)
	}
	if _, err := st.Seek(-1, io.SeekStart); err == nil {
		t.Error("seek before start must fail")
	}
	if _, err := st.Seek(0, 99); err == nil {
		t.Error("bad whence must fail")
	}
	// ReaderAt with short tail.
	big := make([]byte, 64)
	n, err = st.ReadAt(big, int64(len(data))-10)
	if n != 10 || err != io.EOF {
		t.Errorf("tail ReadAt = %d, %v", n, err)
	}
	if _, err := st.ReadAt(big, int64(len(data))); err != io.EOF {
		t.Errorf("past-end ReadAt: %v", err)
	}
	if s.Stats().StreamCalls == 0 {
		t.Error("stream calls must be counted")
	}
}

func TestNumChunks(t *testing.T) {
	cases := []struct {
		n    int64
		want int
	}{{0, 0}, {1, 1}, {ChunkSize, 1}, {ChunkSize + 1, 2}, {10 * ChunkSize, 10}}
	for _, c := range cases {
		if got := NumChunks(c.n); got != c.want {
			t.Errorf("NumChunks(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestStatsAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	s := newStore(t)
	data := randBytes(rng, 3*ChunkSize)
	ref, err := s.Write(data)
	if err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.ChunksWritten != 3 || st.BytesWritten != uint64(len(data)) {
		t.Errorf("write stats = %+v", st)
	}
	s.ResetStats()
	if _, err := s.ReadAll(ref); err != nil {
		t.Fatal(err)
	}
	st = s.Stats()
	if st.ChunkReads != 3 || st.BytesRead != uint64(len(data)) || st.DirectoryReads != 1 {
		t.Errorf("read stats = %+v", st)
	}
}
