// Per-chunk compression codecs for blob storage.
//
// The paper stores arrays as chunked VARBINARY(MAX) blobs so they ride
// the engine's page machinery; once subarray I/O pushdown (PR 4) made
// reads touch only the chunks they need, raw throughput became bounded
// by I/O volume. Chunk compression is the standard next lever for
// scientific array stores (ArrayBridge, the array-storage surveys in
// PAPERS.md): fixed-width numeric data is highly byte-plane-redundant,
// and simulation floats change slowly along the fastest-varying
// dimension. Everything here is stdlib-only:
//
//   - CodecLZ: byte-shuffle at the element width (grouping the i-th
//     byte of every element, the classic "shuffle" filter) followed by
//     an LZ4-flavoured LZ77 with 16-bit match offsets.
//   - CodecXOR: Gorilla-style XOR-delta over little-endian float64
//     words, storing per word only the significant low bytes of the
//     XOR against the previous word (a zero control byte encodes an
//     exact repeat).
//   - Per-block raw fallback: any block whose encoding would not shrink
//     is stored verbatim, so incompressible data costs one header, not
//     an expansion.
//
// Compression operates on fixed BlockSize slices of the logical blob
// ("blocks"); compressed blocks are then packed into chunk pages, so a
// compressible blob occupies fewer pages — the bytes-read win — while a
// reader can still decompress exactly the blocks a subarray run
// touches (decompress-then-slice per block, never whole-blob).
package blob

import (
	"encoding/binary"
	"fmt"
	"math/bits"
)

// CodecKind selects the compression family applied to a blob's blocks.
type CodecKind uint8

const (
	// CodecNone stores the blob in the legacy raw chunk format.
	CodecNone CodecKind = iota
	// CodecLZ byte-shuffles each block at the element width, then
	// applies the LZ77 coder. Width 1 degenerates to plain LZ.
	CodecLZ
	// CodecXOR encodes each block as XOR deltas of consecutive
	// little-endian 64-bit words (FLOAT arrays; complex128 works too).
	CodecXOR
)

// Codec is the compression choice for one blob, made by the engine per
// element type at write time and recorded in each chunk page header so
// in-place rewrites re-encode with the writer's intent.
type Codec struct {
	Kind  CodecKind
	Width int // element width for CodecLZ's shuffle; ignored by others
	// Phase aligns CodecXOR's word grid with the element grid when the
	// blob's payload starts at a non-8-aligned offset (a serialized
	// array's header precedes its elements): the first Phase bytes of
	// every block are stored verbatim and the XOR words start after
	// them. BlockSize is a multiple of 8, so one phase fits all blocks.
	// The shuffle filter is phase-insensitive (a shifted byte plane is
	// still a coherent plane), so CodecLZ ignores it.
	Phase int
}

// Block geometry. A block is the unit of compression; blocks are packed
// into chunk pages. BlockSize is a multiple of 8 so float64 values
// never straddle a block boundary (the turbulence stencil decoder's
// zero-copy fast path relies on this, exactly as it relies on ChunkSize
// being a multiple of 8 for raw blobs).
const (
	// BlockSize is the logical bytes covered by one compression block.
	// Chosen so a raw-fallback block plus its header still fits a chunk
	// page: chunkHdrSize + blockHdrSize + BlockSize <= ChunkSize.
	BlockSize = 8064
	// chunkHdrSize is the compressed chunk page's own header: version,
	// block count, and the blob's preferred codec (kind + width).
	chunkHdrSize = 8
	// blockHdrSize prefixes every packed block: stored format, shuffle
	// width, stored length, logical (uncompressed) length.
	blockHdrSize = 8
	// chunkPayloadCap is the stored bytes one chunk page can pack.
	chunkPayloadCap = ChunkSize - chunkHdrSize
	// maxBlocksPerChunk caps how many blocks pack into one page, which
	// bounds a chunk's logical size (and therefore the staging buffer a
	// decompressing reader may need) to 16*BlockSize = 126 kB.
	maxBlocksPerChunk = 16
	// maxChunkLogical is the largest logical byte count one compressed
	// chunk page may cover.
	maxChunkLogical = maxBlocksPerChunk * BlockSize

	// chunkFormatVersion is stored in compressed chunk headers.
	chunkFormatVersion = 1
)

// Stored block formats (what the bytes in the page actually are). The
// preferred Codec may be LZ while individual blocks fall back to raw.
const (
	blockRaw = 0
	blockLZ  = 1
	blockXOR = 2
)

// codecScratch holds the reusable staging buffers of one encode or
// decode pass, so per-block compression never allocates in steady
// state. The buffers never escape: encode output is copied into the
// page, decode output is copied (or decoded directly) into the
// caller's destination.
type codecScratch struct {
	a []byte // shuffle / decode staging
	b []byte // encode output / unshuffle staging
}

func newCodecScratch() *codecScratch {
	return &codecScratch{
		a: make([]byte, 0, BlockSize+BlockSize/8+64),
		b: make([]byte, 0, BlockSize+BlockSize/8+64),
	}
}

// encodeBlock compresses one logical block under the blob's codec,
// returning the stored format byte, the shuffle width to record, and
// the payload to store. The payload aliases either blk itself (raw
// fallback) or scr; it is valid until the next encodeBlock call and
// must be copied into the page before then. Encodings that fail to
// shrink the block fall back to raw.
func encodeBlock(blk []byte, c Codec, scr *codecScratch) (format, width byte, payload []byte) {
	switch c.Kind {
	case CodecXOR:
		p := c.Phase
		if p < 0 || p > 7 {
			p = 0
		}
		enc := xorAppend(scr.b[:0], blk, p)
		scr.b = enc[:0]
		if len(enc) < len(blk) {
			// The width byte of an XOR block records its phase.
			return blockXOR, byte(p), enc
		}
	case CodecLZ:
		w := c.Width
		if w < 1 {
			w = 1
		}
		if w > 255 {
			w = 1 // width is stored in one byte; fall back to plain LZ
		}
		src := blk
		if w > 1 {
			scr.a = grow(scr.a, len(blk))
			shuffle(blk, w, scr.a)
			src = scr.a[:len(blk)]
		}
		enc := lzAppend(scr.b[:0], src)
		scr.b = enc[:0]
		if len(enc) < len(blk) {
			return blockLZ, byte(w), enc
		}
	}
	return blockRaw, 0, blk
}

// decodeBlock expands one stored block to its logical bytes. Raw blocks
// return the stored slice itself (aliasing the page body — zero-copy);
// compressed blocks decode into dst (which must have capacity for
// logical bytes) and return dst[:logical]. scr provides the unshuffle
// staging for CodecLZ.
func decodeBlock(format, width byte, stored []byte, logical int, dst []byte, scr *codecScratch) ([]byte, error) {
	switch format {
	case blockRaw:
		if len(stored) != logical {
			return nil, fmt.Errorf("%w: raw block stores %d bytes, logical %d", ErrBadRef, len(stored), logical)
		}
		return stored, nil
	case blockLZ:
		w := int(width)
		if w < 1 {
			w = 1
		}
		out := dst[:logical]
		if w > 1 {
			scr.a = grow(scr.a, logical)
			if err := lzDecode(stored, scr.a[:logical]); err != nil {
				return nil, err
			}
			unshuffle(scr.a[:logical], w, out)
			return out, nil
		}
		if err := lzDecode(stored, out); err != nil {
			return nil, err
		}
		return out, nil
	case blockXOR:
		p := int(width) // phase, not a shuffle width
		if p > 7 {
			return nil, errCorrupt("xor phase")
		}
		out := dst[:logical]
		if err := xorDecode(stored, out, p); err != nil {
			return nil, err
		}
		return out, nil
	default:
		return nil, fmt.Errorf("%w: unknown block format %d", ErrBadRef, format)
	}
}

// grow returns b with length >= n (reallocating if needed).
func grow(b []byte, n int) []byte {
	if cap(b) < n {
		return make([]byte, n)
	}
	return b[:n]
}

// shuffle transposes src into dst byte-plane-major at the given element
// width: all first bytes of every element, then all second bytes, and
// so on. The tail that does not fill a whole element is copied
// verbatim. len(dst) must equal len(src); dst must not alias src.
func shuffle(src []byte, width int, dst []byte) {
	n := len(src) / width * width
	rows := n / width
	for j := 0; j < width; j++ {
		plane := dst[j*rows:]
		for i := 0; i < rows; i++ {
			plane[i] = src[i*width+j]
		}
	}
	copy(dst[n:], src[n:])
}

// unshuffle inverts shuffle. len(dst) must equal len(src); dst must not
// alias src.
func unshuffle(src []byte, width int, dst []byte) {
	n := len(src) / width * width
	rows := n / width
	for j := 0; j < width; j++ {
		plane := src[j*rows:]
		for i := 0; i < rows; i++ {
			dst[i*width+j] = plane[i]
		}
	}
	copy(dst[n:], src[n:])
}

// LZ77 coder, LZ4-flavoured: a sequence is a token byte (high nibble =
// literal count, low nibble = match length - 4, 15 = extended with
// 255-continued bytes), the literals, then a 2-byte little-endian match
// offset. The final sequence carries only literals (the stream simply
// ends after them). Match offsets are bounded by the 64 kB window,
// which always covers a whole block.

const lzMinMatch = 4

// lzHashShift yields a 12-bit hash (4096-entry table) from 4 bytes.
func lzHash(v uint32) uint32 { return (v * 2654435761) >> 20 }

func le32(b []byte) uint32 { return binary.LittleEndian.Uint32(b) }

// lzAppend appends the LZ77 encoding of src to dst and returns it.
func lzAppend(dst, src []byte) []byte {
	var table [4096]int32 // position+1 of a recent occurrence of a 4-byte hash
	anchor := 0
	i := 0
	limit := len(src) - lzMinMatch
	for i <= limit {
		v := le32(src[i:])
		h := lzHash(v)
		cand := int(table[h]) - 1
		table[h] = int32(i + 1)
		if cand < 0 || i-cand > 0xFFFF || le32(src[cand:]) != v {
			i++
			continue
		}
		ml := lzMinMatch
		for i+ml < len(src) && src[cand+ml] == src[i+ml] {
			ml++
		}
		dst = lzEmit(dst, src[anchor:i], i-cand, ml)
		i += ml
		anchor = i
	}
	return lzEmit(dst, src[anchor:], 0, 0)
}

// lzEmit appends one sequence. matchLen == 0 emits the final
// literal-only sequence (no offset follows).
func lzEmit(dst, lit []byte, offset, matchLen int) []byte {
	litLen := len(lit)
	tok := byte(0)
	if litLen >= 15 {
		tok = 15 << 4
	} else {
		tok = byte(litLen) << 4
	}
	ext := 0
	if matchLen != 0 {
		ext = matchLen - lzMinMatch
		if ext >= 15 {
			tok |= 15
		} else {
			tok |= byte(ext)
		}
	}
	dst = append(dst, tok)
	if litLen >= 15 {
		dst = lzExt(dst, litLen-15)
	}
	dst = append(dst, lit...)
	if matchLen != 0 {
		dst = append(dst, byte(offset), byte(offset>>8))
		if ext >= 15 {
			dst = lzExt(dst, ext-15)
		}
	}
	return dst
}

// lzExt appends the 255-continued extension of a length nibble.
func lzExt(dst []byte, n int) []byte {
	for n >= 255 {
		dst = append(dst, 255)
		n -= 255
	}
	return append(dst, byte(n))
}

// errCorrupt wraps malformed compressed payloads; fuzzed inputs must
// land here, never in a panic.
func errCorrupt(what string) error {
	return fmt.Errorf("%w: corrupt compressed block (%s)", ErrBadRef, what)
}

// lzDecode expands src into dst, which must be exactly the logical
// length. Every bound is validated so arbitrary (corrupt or fuzzed)
// input yields an error, not a panic.
func lzDecode(src, dst []byte) error {
	r, w := 0, 0
	for {
		if r >= len(src) {
			if w != len(dst) {
				return errCorrupt("short stream")
			}
			return nil
		}
		tok := src[r]
		r++
		litLen := int(tok >> 4)
		if litLen == 15 {
			n, nr, err := lzReadExt(src, r)
			if err != nil {
				return err
			}
			litLen += n
			r = nr
		}
		if litLen > len(src)-r || litLen > len(dst)-w {
			return errCorrupt("literal run overflow")
		}
		copy(dst[w:], src[r:r+litLen])
		r += litLen
		w += litLen
		if r == len(src) {
			// Final sequence: literals only.
			if w != len(dst) {
				return errCorrupt("short stream")
			}
			return nil
		}
		if r+2 > len(src) {
			return errCorrupt("truncated offset")
		}
		offset := int(src[r]) | int(src[r+1])<<8
		r += 2
		matchLen := int(tok&0x0F) + lzMinMatch
		if tok&0x0F == 15 {
			n, nr, err := lzReadExt(src, r)
			if err != nil {
				return err
			}
			matchLen += n
			r = nr
		}
		if offset == 0 || offset > w {
			return errCorrupt("bad match offset")
		}
		if matchLen > len(dst)-w {
			return errCorrupt("match overflow")
		}
		// Byte-at-a-time: matches may overlap their own output (RLE).
		for k := 0; k < matchLen; k++ {
			dst[w] = dst[w-offset]
			w++
		}
	}
}

// lzReadExt reads a 255-continued length extension at src[r:].
func lzReadExt(src []byte, r int) (n, nr int, err error) {
	for {
		if r >= len(src) {
			return 0, 0, errCorrupt("truncated length")
		}
		b := src[r]
		r++
		n += int(b)
		if n > ChunkSize*maxBlocksPerChunk {
			return 0, 0, errCorrupt("absurd length")
		}
		if b != 255 {
			return n, r, nil
		}
	}
}

// xorAppend appends the XOR-delta encoding of src to dst: per 64-bit
// little-endian word, a control byte holding the count of significant
// low bytes of word XOR previous-word (0 = exact repeat), then those
// bytes. A trailing sub-word tail is stored verbatim.
func xorAppend(dst, src []byte, phase int) []byte {
	if phase > len(src) {
		phase = len(src)
	}
	dst = append(dst, src[:phase]...)
	src = src[phase:]
	n := len(src) &^ 7
	var prev uint64
	for o := 0; o < n; o += 8 {
		x := binary.LittleEndian.Uint64(src[o:])
		d := x ^ prev
		prev = x
		if d == 0 {
			dst = append(dst, 0)
			continue
		}
		sig := 8 - bits.LeadingZeros64(d)/8
		dst = append(dst, byte(sig))
		var tmp [8]byte
		binary.LittleEndian.PutUint64(tmp[:], d)
		dst = append(dst, tmp[:sig]...)
	}
	return append(dst, src[n:]...)
}

// xorDecode expands src into dst, which must be exactly the logical
// length. Bounds are validated for fuzzed input.
func xorDecode(src, dst []byte, phase int) error {
	if phase > len(dst) {
		phase = len(dst)
	}
	if phase > len(src) {
		return errCorrupt("truncated xor preamble")
	}
	copy(dst[:phase], src[:phase])
	src, dst = src[phase:], dst[phase:]
	n := len(dst) &^ 7
	r := 0
	var prev uint64
	for w := 0; w < n; w += 8 {
		if r >= len(src) {
			return errCorrupt("truncated xor stream")
		}
		sig := int(src[r])
		r++
		if sig > 8 {
			return errCorrupt("xor control byte")
		}
		if sig > len(src)-r {
			return errCorrupt("truncated xor delta")
		}
		var tmp [8]byte
		copy(tmp[:], src[r:r+sig])
		r += sig
		d := binary.LittleEndian.Uint64(tmp[:])
		prev ^= d
		binary.LittleEndian.PutUint64(dst[w:], prev)
	}
	if len(src)-r != len(dst)-n {
		return errCorrupt("xor tail length")
	}
	copy(dst[n:], src[r:])
	return nil
}
