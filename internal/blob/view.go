// Pinned, zero-copy read paths over the blob store.
//
// The seed store's only read primitives (ReadAll / ReadAt / ReadRuns)
// copy every byte out of the buffer pool into caller memory — fine for
// whole-array materialization, wasteful when the consumer immediately
// decodes or re-copies the bytes. The types here instead hand the caller
// the chunk pages' own body slices, pinned in the pool for the lifetime
// of the view:
//
//   - View pins every chunk of a blob (whole-blob consumers; a
//     single-chunk blob exposes its full payload as one zero-copy
//     slice via Contiguous).
//   - RunsView pins only the chunks a run list touches (subarray-shaped
//     consumers; each run is visited as page-resident segments).
//
// Both must be Released exactly like a Frame must be Unpinned: a leaked
// view holds its frames pinned, which blocks eviction and
// DropCleanBuffers — the golden suites assert PinnedFrames() == 0 after
// every query for this reason. Release is idempotent and returns the
// frames to their shard's LRU, making them evictable again.
package blob

import (
	"fmt"
	"sort"

	"sqlarray/internal/pages"
)

// View is a whole blob pinned in the buffer pool, exposing the chunk
// page bodies without copying. Chunk i holds bytes
// [i*ChunkSize, min((i+1)*ChunkSize, Len())).
type View struct {
	s        *Store
	ref      Ref
	frames   []*pages.Frame
	bodies   [][]byte
	released bool
}

// View pins all chunk pages of a blob and returns the zero-copy view.
// The caller must Release it. Pinning a blob holds NumChunks(Len())
// frames, so very large blobs should prefer RunsView or the copying
// reads; a null ref yields an empty view.
func (s *Store) View(ref Ref) (*View, error) {
	v := &View{s: s, ref: ref}
	if ref.IsNull() {
		return v, nil
	}
	ids, err := s.chunkIDs(ref)
	if err != nil {
		return nil, err
	}
	v.frames = make([]*pages.Frame, 0, len(ids))
	v.bodies = make([][]byte, 0, len(ids))
	for _, id := range ids {
		f, err := s.bp.Fetch(id)
		if err != nil {
			v.Release()
			return nil, err
		}
		if f.Page.Type() != pages.TypeBlobData {
			s.bp.Unpin(f, false)
			v.Release()
			return nil, fmt.Errorf("%w: page %d is not a blob chunk", ErrBadRef, id)
		}
		used := f.Page.Used()
		s.stats.chunkReads.Add(1)
		s.stats.bytesRead.Add(uint64(used))
		v.frames = append(v.frames, f)
		v.bodies = append(v.bodies, f.Page.Body()[:used])
	}
	return v, nil
}

// Len returns the blob length in bytes.
func (v *View) Len() int64 { return v.ref.Length }

// NumChunks returns how many chunk pages the view pins.
func (v *View) NumChunks() int { return len(v.frames) }

// Chunk returns chunk i's payload bytes, aliasing the pinned page body.
// Valid until Release.
func (v *View) Chunk(i int) []byte { return v.bodies[i] }

// Contiguous returns the whole payload as one slice without copying,
// which is possible exactly when the blob occupies a single chunk page
// (<= ChunkSize bytes). Larger blobs return ok=false — the copying
// fallback (AppendTo / ReadAll) applies.
func (v *View) Contiguous() ([]byte, bool) {
	if len(v.bodies) == 1 {
		return v.bodies[0], true
	}
	return nil, false
}

// AppendTo appends the whole payload to dst (copying from the pinned
// bodies — no second directory walk or chunk fetch).
func (v *View) AppendTo(dst []byte) []byte {
	for _, b := range v.bodies {
		dst = append(dst, b...)
	}
	return dst
}

// ReadAt copies blob bytes [off, off+len(dst)) out of the pinned bodies.
func (v *View) ReadAt(dst []byte, off int64) error {
	if off < 0 || off+int64(len(dst)) > v.ref.Length {
		return fmt.Errorf("%w: [%d,%d) of %d", ErrShortRead, off, off+int64(len(dst)), v.ref.Length)
	}
	w := 0
	for c := int(off / ChunkSize); w < len(dst) && c < len(v.bodies); c++ {
		lo := 0
		if c == int(off/ChunkSize) {
			lo = int(off % ChunkSize)
		}
		w += copy(dst[w:], v.bodies[c][lo:])
	}
	if w != len(dst) {
		return fmt.Errorf("%w: wanted %d bytes, view yielded %d", ErrShortRead, len(dst), w)
	}
	return nil
}

// Release unpins every chunk page, returning the frames to the LRU.
// Idempotent; the view must not be used afterward.
func (v *View) Release() {
	if v.released {
		return
	}
	v.released = true
	for _, f := range v.frames {
		v.s.bp.Unpin(f, false)
	}
	v.frames = nil
	v.bodies = nil
}

// RunsView is the pinned form of ReadRuns: only the chunk pages the run
// list touches are fetched (each exactly once, even when several runs
// land on the same chunk), and the run bytes are exposed as segments of
// the pinned page bodies instead of being copied out.
type RunsView struct {
	s        *Store
	ref      Ref
	runs     []Run
	chunkIdx []int // sorted, deduped chunk indices the runs touch
	frames   []*pages.Frame
	bodies   [][]byte // parallel to chunkIdx
	released bool
}

// ReadRunsPinned validates runs against the blob, pins the touched
// chunks and returns the view. The caller must Release it. The runs
// slice is retained (not copied); it must not be mutated while the view
// is live.
func (s *Store) ReadRunsPinned(ref Ref, runs []Run) (*RunsView, error) {
	rv := &RunsView{s: s, ref: ref, runs: runs}
	if len(runs) == 0 {
		return rv, nil
	}
	if ref.IsNull() {
		return nil, fmt.Errorf("%w: null blob", ErrBadRef)
	}
	// Collect the touched chunk indices: append each run's chunk range,
	// then sort and compact. SubarrayPlan emits runs in ascending source
	// order, so the sort is usually a no-op pass over an already-ordered
	// slice (cheaper than a map for the stencil-sized run counts here).
	idx := make([]int, 0, len(runs)+4)
	for _, r := range runs {
		if r.Len <= 0 {
			return nil, fmt.Errorf("%w: run length %d", ErrShortRead, r.Len)
		}
		if r.SrcOff < 0 || int64(r.SrcOff+r.Len) > ref.Length {
			return nil, fmt.Errorf("%w: run [%d,%d) of %d", ErrShortRead, r.SrcOff, r.SrcOff+r.Len, ref.Length)
		}
		for c := r.SrcOff / ChunkSize; c <= (r.SrcOff+r.Len-1)/ChunkSize; c++ {
			idx = append(idx, c)
		}
	}
	sort.Ints(idx)
	rv.chunkIdx = idx[:0]
	for i, c := range idx {
		if i == 0 || c != idx[i-1] {
			rv.chunkIdx = append(rv.chunkIdx, c)
		}
	}
	ids, err := s.chunkIDs(ref)
	if err != nil {
		return nil, err
	}
	rv.frames = make([]*pages.Frame, 0, len(rv.chunkIdx))
	rv.bodies = make([][]byte, 0, len(rv.chunkIdx))
	for _, c := range rv.chunkIdx {
		if c >= len(ids) {
			rv.Release()
			return nil, fmt.Errorf("%w: chunk %d of %d", ErrBadRef, c, len(ids))
		}
		f, err := s.bp.Fetch(ids[c])
		if err != nil {
			rv.Release()
			return nil, err
		}
		if f.Page.Type() != pages.TypeBlobData {
			s.bp.Unpin(f, false)
			rv.Release()
			return nil, fmt.Errorf("%w: page %d is not a blob chunk", ErrBadRef, ids[c])
		}
		s.stats.chunkReads.Add(1)
		rv.frames = append(rv.frames, f)
		rv.bodies = append(rv.bodies, f.Page.Body()[:f.Page.Used()])
	}
	return rv, nil
}

// body returns the pinned body of absolute chunk index c.
func (rv *RunsView) body(c int) []byte {
	i := sort.SearchInts(rv.chunkIdx, c)
	return rv.bodies[i]
}

// NumRuns returns the run count.
func (rv *RunsView) NumRuns() int { return len(rv.runs) }

// PinnedChunks returns how many distinct chunk pages the view pins.
func (rv *RunsView) PinnedChunks() int { return len(rv.frames) }

// VisitRun invokes fn for each page-resident segment of run i in source
// order. dstOff is the segment's absolute destination offset (the run's
// DstOff plus the progress within the run); seg aliases the pinned page
// body and is valid until Release. A run contained in one chunk — the
// common case for stencil reads — is visited exactly once.
func (rv *RunsView) VisitRun(i int, fn func(dstOff int, seg []byte)) {
	r := rv.runs[i]
	read := 0
	for c := r.SrcOff / ChunkSize; read < r.Len; c++ {
		body := rv.body(c)
		lo := 0
		if c == r.SrcOff/ChunkSize {
			lo = r.SrcOff % ChunkSize
		}
		seg := body[lo:]
		if rem := r.Len - read; len(seg) > rem {
			seg = seg[:rem]
		}
		fn(r.DstOff+read, seg)
		read += len(seg)
		rv.s.stats.bytesRead.Add(uint64(len(seg)))
	}
}

// CopyTo scatters every run into dst, equivalent to ReadRuns but from
// the already-pinned bodies.
func (rv *RunsView) CopyTo(dst []byte) {
	for i := range rv.runs {
		rv.VisitRun(i, func(dstOff int, seg []byte) {
			copy(dst[dstOff:], seg)
		})
	}
}

// Release unpins the touched chunk pages. Idempotent.
func (rv *RunsView) Release() {
	if rv.released {
		return
	}
	rv.released = true
	for _, f := range rv.frames {
		rv.s.bp.Unpin(f, false)
	}
	rv.frames = nil
	rv.bodies = nil
}
