// Pinned, zero-copy read paths over the blob store.
//
// The seed store's only read primitives (ReadAll / ReadAt / ReadRuns)
// copy every byte out of the buffer pool into caller memory — fine for
// whole-array materialization, wasteful when the consumer immediately
// decodes or re-copies the bytes. The types here instead hand the caller
// the chunk pages' own body slices, pinned in the pool for the lifetime
// of the view:
//
//   - View pins every chunk of a blob (whole-blob consumers; a
//     single-chunk blob exposes its full payload as one zero-copy
//     slice via Contiguous).
//   - RunsView pins only the chunks a run list touches (subarray-shaped
//     consumers; each run is visited as page-resident segments).
//
// Compressed chunks cannot alias page bodies: their page bytes are the
// packed codec stream, not the payload. For those, both views decode
// the whole touched chunk into a view-owned buffer and unpin the frame
// immediately — the view then holds memory, not pins, so a compressed
// view never blocks eviction for longer than the decode itself. The
// view API is identical either way; callers cannot tell the formats
// apart.
//
// Views must be Released exactly like a Frame must be Unpinned: a
// leaked view holds its (raw-chunk) frames pinned, which blocks
// eviction and DropCleanBuffers — the golden suites assert
// PinnedFrames() == 0 after every query for this reason. Release is
// idempotent and returns the frames to their shard's LRU, making them
// evictable again.
package blob

import (
	"fmt"
	"sort"

	"sqlarray/internal/pages"
)

// View is a whole blob pinned in the buffer pool, exposing the chunk
// page bodies without copying. Chunk i holds the logical byte range
// recorded in the blob directory (fixed ChunkSize strides for raw
// blobs, variable for compressed ones).
type View struct {
	s        *Store
	ref      Ref
	chunks   []chunkInfo
	frames   []*pages.Frame
	bodies   [][]byte
	released bool
}

// View pins all chunk pages of a blob and returns the zero-copy view.
// The caller must Release it. Pinning a raw blob holds NumChunks(Len())
// frames, so very large blobs should prefer RunsView or the copying
// reads; a null ref yields an empty view. Compressed chunks are decoded
// into view-owned buffers and their frames unpinned immediately.
func (s *Store) View(ref Ref) (*View, error) {
	v := &View{s: s, ref: ref}
	if ref.IsNull() {
		return v, nil
	}
	chunks, compressed, err := s.loadChunks(ref)
	if err != nil {
		return nil, err
	}
	v.chunks = chunks
	var scr *codecScratch
	if compressed {
		scr = scratchPool.Get().(*codecScratch)
		defer scratchPool.Put(scr)
	}
	v.frames = make([]*pages.Frame, 0, len(chunks))
	v.bodies = make([][]byte, 0, len(chunks))
	for _, ci := range chunks {
		body, f, err := s.loadChunkBody(ci, compressed, scr)
		if err != nil {
			v.Release()
			return nil, err
		}
		if f != nil {
			v.frames = append(v.frames, f)
		}
		v.bodies = append(v.bodies, body)
	}
	return v, nil
}

// loadChunkBody fetches one chunk and returns its logical payload. Raw
// chunks keep the frame pinned and alias its body (frame returned for
// the caller to own); compressed chunks decode into a fresh buffer and
// unpin before returning (frame is nil). Counts chunkReads/bytesRead
// load-time, matching the seed View semantics.
func (s *Store) loadChunkBody(ci chunkInfo, compressed bool, scr *codecScratch) ([]byte, *pages.Frame, error) {
	f, err := s.fx.Fetch(ci.id)
	if err != nil {
		return nil, nil, err
	}
	if f.Page.Type() != pages.TypeBlobData {
		s.fx.Unpin(f, false)
		return nil, nil, fmt.Errorf("%w: page %d is not a blob chunk", ErrBadRef, ci.id)
	}
	s.stats.chunkReads.Add(1)
	used := f.Page.Used()
	if !compressed {
		s.stats.bytesRead.Add(uint64(used))
		return f.Page.Body()[:used], f, nil
	}
	s.stats.compressedBytesRead.Add(uint64(used))
	buf := make([]byte, ci.n)
	derr := decodeWholeChunk(&f.Page, buf, scr)
	s.fx.Unpin(f, false)
	if derr != nil {
		return nil, nil, derr
	}
	s.stats.bytesRead.Add(uint64(ci.n))
	return buf, nil, nil
}

// Len returns the blob length in bytes.
func (v *View) Len() int64 { return v.ref.Length }

// NumChunks returns how many chunks the view exposes.
func (v *View) NumChunks() int { return len(v.bodies) }

// Chunk returns chunk i's payload bytes — aliasing the pinned page body
// for raw chunks, view-owned decoded bytes for compressed ones. Valid
// until Release.
func (v *View) Chunk(i int) []byte { return v.bodies[i] }

// Contiguous returns the whole payload as one slice without a
// per-call copy, which is possible exactly when the blob occupies a
// single chunk page. Larger blobs return ok=false — the copying
// fallback (AppendTo / ReadAll) applies.
func (v *View) Contiguous() ([]byte, bool) {
	if len(v.bodies) == 1 {
		return v.bodies[0], true
	}
	return nil, false
}

// AppendTo appends the whole payload to dst (copying from the loaded
// bodies — no second directory walk or chunk fetch).
func (v *View) AppendTo(dst []byte) []byte {
	for _, b := range v.bodies {
		dst = append(dst, b...)
	}
	return dst
}

// ReadAt copies blob bytes [off, off+len(dst)) out of the loaded bodies.
func (v *View) ReadAt(dst []byte, off int64) error {
	if off < 0 || off+int64(len(dst)) > v.ref.Length {
		return fmt.Errorf("%w: [%d,%d) of %d", ErrShortRead, off, off+int64(len(dst)), v.ref.Length)
	}
	w := 0
	for c := findChunk(v.chunks, off); w < len(dst) && c >= 0 && c < len(v.bodies); c++ {
		lo := int(off + int64(w) - v.chunks[c].off)
		w += copy(dst[w:], v.bodies[c][lo:])
	}
	if w != len(dst) {
		return fmt.Errorf("%w: wanted %d bytes, view yielded %d", ErrShortRead, len(dst), w)
	}
	return nil
}

// Release unpins every pinned chunk page, returning the frames to the
// LRU. Idempotent; the view must not be used afterward.
func (v *View) Release() {
	if v.released {
		return
	}
	v.released = true
	for _, f := range v.frames {
		v.s.fx.Unpin(f, false)
	}
	v.frames = nil
	v.bodies = nil
}

// RunsView is the pinned form of ReadRuns: only the chunk pages the run
// list touches are fetched (each exactly once, even when several runs
// land on the same chunk), and the run bytes are exposed as segments of
// the chunk bodies instead of being copied out. Compressed chunks are
// decoded whole into view-owned buffers (decompress-then-slice: only
// touched chunks are ever fetched or decoded, never the whole blob).
type RunsView struct {
	s        *Store
	ref      Ref
	runs     []Run
	chunks   []chunkInfo
	chunkIdx []int // sorted, deduped chunk indices the runs touch
	frames   []*pages.Frame
	bodies   [][]byte // parallel to chunkIdx
	released bool
}

// ReadRunsPinned validates runs against the blob, pins the touched
// chunks and returns the view. The caller must Release it. The runs
// slice is retained (not copied); it must not be mutated while the view
// is live.
func (s *Store) ReadRunsPinned(ref Ref, runs []Run) (*RunsView, error) {
	rv := &RunsView{s: s, ref: ref, runs: runs}
	if len(runs) == 0 {
		return rv, nil
	}
	if ref.IsNull() {
		return nil, fmt.Errorf("%w: null blob", ErrBadRef)
	}
	for _, r := range runs {
		if r.Len <= 0 {
			return nil, fmt.Errorf("%w: run length %d", ErrShortRead, r.Len)
		}
		if r.SrcOff < 0 || int64(r.SrcOff+r.Len) > ref.Length {
			return nil, fmt.Errorf("%w: run [%d,%d) of %d", ErrShortRead, r.SrcOff, r.SrcOff+r.Len, ref.Length)
		}
	}
	chunks, compressed, err := s.loadChunks(ref)
	if err != nil {
		return nil, err
	}
	rv.chunks = chunks
	var cover int64
	if n := len(chunks); n > 0 {
		cover = chunks[n-1].off + int64(chunks[n-1].n)
	}
	// Collect the touched chunk indices: append each run's chunk range,
	// then sort and compact. SubarrayPlan emits runs in ascending source
	// order, so the sort is usually a no-op pass over an already-ordered
	// slice (cheaper than a map for the stencil-sized run counts here).
	idx := make([]int, 0, len(runs)+4)
	// needed tracks, per touched chunk, the union byte range the runs
	// cover within it, so compressed chunks decode only the blocks that
	// range overlaps (a stencil-sized run list touches a sliver of each
	// chunk, not its full logical span).
	var needed map[int][2]int
	if compressed {
		needed = make(map[int][2]int, len(runs)+4)
	}
	for _, r := range runs {
		if int64(r.SrcOff+r.Len) > cover {
			// The directory covers fewer bytes than the ref declares.
			return nil, fmt.Errorf("%w: chunk %d of %d", ErrBadRef, len(chunks), len(chunks))
		}
		c := findChunk(chunks, int64(r.SrcOff))
		if c < 0 {
			c = 0
		}
		for ; c < len(chunks) && chunks[c].off < int64(r.SrcOff+r.Len); c++ {
			idx = append(idx, c)
			if compressed {
				ci := chunks[c]
				lo := int(int64(r.SrcOff) - ci.off)
				if lo < 0 {
					lo = 0
				}
				hi := int(int64(r.SrcOff+r.Len) - ci.off)
				if hi > ci.n {
					hi = ci.n
				}
				if rng, ok := needed[c]; ok {
					if rng[0] < lo {
						lo = rng[0]
					}
					if rng[1] > hi {
						hi = rng[1]
					}
				}
				needed[c] = [2]int{lo, hi}
			}
		}
	}
	sort.Ints(idx)
	rv.chunkIdx = idx[:0]
	for i, c := range idx {
		if i == 0 || c != idx[i-1] {
			rv.chunkIdx = append(rv.chunkIdx, c)
		}
	}
	var scr *codecScratch
	if compressed {
		scr = scratchPool.Get().(*codecScratch)
		defer scratchPool.Put(scr)
	}
	rv.frames = make([]*pages.Frame, 0, len(rv.chunkIdx))
	rv.bodies = make([][]byte, 0, len(rv.chunkIdx))
	for _, c := range rv.chunkIdx {
		lo, hi := 0, chunks[c].n
		if compressed {
			rng := needed[c]
			lo, hi = rng[0], rng[1]
		}
		body, f, err := s.loadRunChunkBody(chunks[c], compressed, scr, lo, hi)
		if err != nil {
			rv.Release()
			return nil, err
		}
		if f != nil {
			rv.frames = append(rv.frames, f)
		}
		rv.bodies = append(rv.bodies, body)
	}
	return rv, nil
}

// loadRunChunkBody is loadChunkBody minus the load-time bytesRead
// accounting: RunsView counts logical bytes in VisitRun (per segment
// actually consumed), matching the seed semantics. For compressed
// chunks only the blocks overlapping [lo,hi) — the union range the
// view's runs need from this chunk — are decoded; the rest of the
// buffer stays zero and is never visited.
func (s *Store) loadRunChunkBody(ci chunkInfo, compressed bool, scr *codecScratch, lo, hi int) ([]byte, *pages.Frame, error) {
	f, err := s.fx.Fetch(ci.id)
	if err != nil {
		return nil, nil, err
	}
	if f.Page.Type() != pages.TypeBlobData {
		s.fx.Unpin(f, false)
		return nil, nil, fmt.Errorf("%w: page %d is not a blob chunk", ErrBadRef, ci.id)
	}
	s.stats.chunkReads.Add(1)
	if !compressed {
		return f.Page.Body()[:f.Page.Used()], f, nil
	}
	s.stats.compressedBytesRead.Add(uint64(f.Page.Used()))
	buf := make([]byte, ci.n)
	derr := decodeChunkRange(&f.Page, buf, lo, hi, scr)
	s.fx.Unpin(f, false)
	if derr != nil {
		return nil, nil, derr
	}
	return buf, nil, nil
}

// body returns the loaded body of absolute chunk index c.
func (rv *RunsView) body(c int) []byte {
	i := sort.SearchInts(rv.chunkIdx, c)
	return rv.bodies[i]
}

// NumRuns returns the run count.
func (rv *RunsView) NumRuns() int { return len(rv.runs) }

// PinnedChunks returns how many distinct chunk pages the view loaded
// (for raw blobs these are held pinned; compressed chunks were decoded
// and unpinned at load).
func (rv *RunsView) PinnedChunks() int { return len(rv.bodies) }

// VisitRun invokes fn for each chunk-resident segment of run i in
// source order. dstOff is the segment's absolute destination offset
// (the run's DstOff plus the progress within the run); seg aliases the
// chunk body and is valid until Release. A run contained in one chunk —
// the common case for stencil reads — is visited exactly once.
func (rv *RunsView) VisitRun(i int, fn func(dstOff int, seg []byte)) {
	r := rv.runs[i]
	read := 0
	for c := findChunk(rv.chunks, int64(r.SrcOff)); read < r.Len; c++ {
		ci := rv.chunks[c]
		body := rv.body(c)
		lo := int(int64(r.SrcOff+read) - ci.off)
		seg := body[lo:]
		if rem := r.Len - read; len(seg) > rem {
			seg = seg[:rem]
		}
		fn(r.DstOff+read, seg)
		read += len(seg)
		rv.s.stats.bytesRead.Add(uint64(len(seg)))
	}
}

// CopyTo scatters every run into dst, equivalent to ReadRuns but from
// the already-loaded bodies.
func (rv *RunsView) CopyTo(dst []byte) {
	for i := range rv.runs {
		rv.VisitRun(i, func(dstOff int, seg []byte) {
			copy(dst[dstOff:], seg)
		})
	}
}

// Release unpins the touched chunk pages. Idempotent.
func (rv *RunsView) Release() {
	if rv.released {
		return
	}
	rv.released = true
	for _, f := range rv.frames {
		rv.s.fx.Unpin(f, false)
	}
	rv.frames = nil
	rv.bodies = nil
}
