package blob

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"
	"time"
)

// smoothFloats builds a compressible float64 signal: a small
// fluctuation on a large mean, so consecutive values share their
// sign/exponent/high-mantissa bytes and the XOR delta is confined to
// the low bytes — the shape the byte-level XOR codec exploits.
func smoothFloats(n int, seed int64) []byte {
	out := make([]byte, 8*n)
	for i := 0; i < n; i++ {
		v := 1000.0 + math.Sin(float64(i)/37.0+float64(seed))*1e-9
		binary.LittleEndian.PutUint64(out[8*i:], math.Float64bits(v))
	}
	return out
}

// seqInts builds sequential int64s — byte-plane redundant, the shuffle
// filter's best case.
func seqInts(n int, start int64) []byte {
	out := make([]byte, 8*n)
	for i := 0; i < n; i++ {
		binary.LittleEndian.PutUint64(out[8*i:], uint64(start+int64(i)))
	}
	return out
}

func encodeDecodeBlock(t *testing.T, blk []byte, c Codec) []byte {
	t.Helper()
	scr := newCodecScratch()
	format, width, payload := encodeBlock(blk, c, scr)
	stored := append([]byte(nil), payload...) // payload aliases scr
	dst := make([]byte, len(blk))
	dec, err := decodeBlock(format, width, stored, len(blk), dst, scr)
	if err != nil {
		t.Fatalf("decodeBlock(%v, width=%d): %v", c, width, err)
	}
	return dec
}

func TestShuffleRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, width := range []int{1, 2, 3, 4, 7, 8, 16} {
		for _, n := range []int{0, 1, width - 1, width, width + 1, 5 * width, 1000, 1003} {
			if n < 0 {
				continue
			}
			src := randBytes(rng, n)
			shuffled := make([]byte, n)
			back := make([]byte, n)
			shuffle(src, width, shuffled)
			unshuffle(shuffled, width, back)
			if !bytes.Equal(src, back) {
				t.Fatalf("shuffle width=%d n=%d not invertible", width, n)
			}
		}
	}
}

func TestLZRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	cases := [][]byte{
		nil,
		[]byte("a"),
		[]byte("abcabcabcabcabcabcabc"),
		bytes.Repeat([]byte{0}, BlockSize),  // pure RLE (overlapping match)
		bytes.Repeat([]byte{1, 2, 3}, 1000), // short period
		randBytes(rng, 300),                 // incompressible
		append(bytes.Repeat([]byte{9}, 500), randBytes(rng, 500)...), // mixed
		seqInts(BlockSize/8, 42),
	}
	for i, src := range cases {
		enc := lzAppend(nil, src)
		dst := make([]byte, len(src))
		if err := lzDecode(enc, dst); err != nil {
			t.Fatalf("case %d: lzDecode: %v", i, err)
		}
		if !bytes.Equal(src, dst) {
			t.Fatalf("case %d: lz round trip mismatch", i)
		}
	}
}

func TestXORRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	cases := [][]byte{
		nil,
		[]byte{1, 2, 3}, // sub-word tail only
		smoothFloats(100, 1),
		bytes.Repeat([]byte{5}, 64), // repeats (zero control bytes)
		randBytes(rng, 128),
		append(smoothFloats(10, 2), 0xAA, 0xBB, 0xCC), // word body + tail
	}
	for i, src := range cases {
		enc := xorAppend(nil, src, 0)
		dst := make([]byte, len(src))
		if err := xorDecode(enc, dst, 0); err != nil {
			t.Fatalf("case %d: xorDecode: %v", i, err)
		}
		if !bytes.Equal(src, dst) {
			t.Fatalf("case %d: xor round trip mismatch", i)
		}
	}
}

func TestEncodeBlockRoundTripAllCodecs(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	inputs := map[string][]byte{
		"smooth-floats":  smoothFloats(BlockSize/8, 3),
		"seq-ints":       seqInts(BlockSize/8, 1000),
		"zeros":          make([]byte, BlockSize),
		"incompressible": randBytes(rng, BlockSize),
		"tiny":           {1},
		"short-tail":     randBytes(rng, 777),
	}
	codecs := []Codec{
		{Kind: CodecXOR, Width: 8},
		{Kind: CodecXOR, Width: 8, Phase: 4},
		{Kind: CodecLZ, Width: 8},
		{Kind: CodecLZ, Width: 4},
		{Kind: CodecLZ, Width: 1},
	}
	for name, blk := range inputs {
		for _, c := range codecs {
			dec := encodeDecodeBlock(t, blk, c)
			if !bytes.Equal(blk, dec) {
				t.Errorf("%s under %+v: round trip mismatch", name, c)
			}
		}
	}
}

func TestEncodeBlockRawFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	blk := randBytes(rng, BlockSize)
	scr := newCodecScratch()
	format, _, payload := encodeBlock(blk, Codec{Kind: CodecLZ, Width: 8}, scr)
	if format != blockRaw {
		t.Errorf("incompressible block stored as format %d, want raw", format)
	}
	if &payload[0] != &blk[0] {
		t.Error("raw fallback must alias the input block (no copy)")
	}
}

// TestDecodeRejectsCorrupt drives truncated and mangled streams through
// every decoder: each must fail with ErrBadRef, never panic.
func TestDecodeRejectsCorrupt(t *testing.T) {
	src := smoothFloats(512, 4)
	scr := newCodecScratch()
	for _, c := range []Codec{{Kind: CodecXOR, Width: 8}, {Kind: CodecLZ, Width: 8}} {
		format, width, payload := encodeBlock(src, c, scr)
		if format == blockRaw {
			t.Fatalf("%+v: test input unexpectedly incompressible", c)
		}
		stored := append([]byte(nil), payload...)
		dst := make([]byte, len(src))
		for cut := 0; cut < len(stored); cut += 7 {
			if _, err := decodeBlock(format, width, stored[:cut], len(src), dst, scr); err == nil {
				t.Fatalf("%+v: truncation at %d decoded successfully", c, cut)
			} else if !errors.Is(err, ErrBadRef) {
				t.Fatalf("%+v: truncation error %v not ErrBadRef", c, err)
			}
		}
		// Wrong logical length must be caught by the LZ decoder (the XOR
		// stream has no internal length framing beyond the word grid, so
		// only the chunk header guards it there).
		if c.Kind == CodecLZ {
			if _, err := decodeBlock(format, width, stored, len(src)-1, dst, scr); err == nil {
				t.Fatalf("%+v: wrong logical length decoded successfully", c)
			}
		}
	}
	// Unknown format byte.
	if _, err := decodeBlock(99, 0, []byte{1, 2}, 2, make([]byte, 2), scr); !errors.Is(err, ErrBadRef) {
		t.Errorf("unknown format: %v", err)
	}
}

// TestXORPhaseAlignsHeaderOffsetFloats is the regression the Phase
// field exists for: a serialized array's header shifts the float64 grid
// off the 8-byte stream grid, and without the phase the XOR deltas
// straddle element boundaries and stop compressing.
func TestXORPhaseAlignsHeaderOffsetFloats(t *testing.T) {
	blk := append([]byte{1, 2, 3, 4}, smoothFloats(BlockSize/8-1, 9)...)
	scr := newCodecScratch()
	_, _, misaligned := encodeBlock(blk, Codec{Kind: CodecXOR, Width: 8}, scr)
	misLen := len(misaligned)
	format, width, aligned := encodeBlock(blk, Codec{Kind: CodecXOR, Width: 8, Phase: 4}, scr)
	if format != blockXOR || width != 4 {
		t.Fatalf("phased encode: format=%d width=%d, want XOR with phase 4", format, width)
	}
	if len(aligned)*2 >= misLen {
		t.Errorf("phase 4 encodes %d bytes vs %d misaligned; expected at least 2x better", len(aligned), misLen)
	}
	dec := encodeDecodeBlock(t, blk, Codec{Kind: CodecXOR, Width: 8, Phase: 4})
	if !bytes.Equal(dec, blk) {
		t.Fatal("phased round trip mismatch")
	}
}

// FuzzCodecRoundTrip fuzzes the compress∘decompress identity over
// random codec choices and data shapes, and feeds the same bytes to the
// decoders directly (decoding attacker-controlled input must error, not
// panic).
func FuzzCodecRoundTrip(f *testing.F) {
	f.Add(uint8(1), uint8(8), uint8(0), []byte{})
	f.Add(uint8(1), uint8(1), uint8(0), []byte("hello hello hello"))
	f.Add(uint8(2), uint8(8), uint8(0), smoothFloats(64, 5))
	f.Add(uint8(2), uint8(8), uint8(4), smoothFloats(64, 5))                          // phased word grid
	f.Add(uint8(1), uint8(4), uint8(0), make([]byte, 1000))                           // all-zero
	f.Add(uint8(2), uint8(8), uint8(0), randBytes(rand.New(rand.NewSource(23)), 512)) // incompressible
	f.Add(uint8(0), uint8(0), uint8(7), []byte{0, 255, 0, 255})
	f.Fuzz(func(t *testing.T, kind, width, phase uint8, data []byte) {
		if len(data) > BlockSize {
			data = data[:BlockSize]
		}
		c := Codec{Kind: CodecKind(kind % 3), Width: int(width), Phase: int(phase % 8)}
		scr := newCodecScratch()
		format, w, payload := encodeBlock(data, c, scr)
		stored := append([]byte(nil), payload...)
		if len(data) > 0 {
			dst := make([]byte, len(data))
			dec, err := decodeBlock(format, w, stored, len(data), dst, scr)
			if err != nil {
				t.Fatalf("decode of own encoding failed: %v", err)
			}
			if !bytes.Equal(dec, data) {
				t.Fatalf("round trip mismatch: kind=%d width=%d len=%d", kind, width, len(data))
			}
		}
		// Decoders over raw fuzz input: must never panic.
		dst := make([]byte, len(data)+16)
		_ = lzDecode(data, dst)
		_ = xorDecode(data, dst, 0)
		_, _ = decodeBlock(format, w, data, len(dst), dst, scr)
		_ = forEachBlock(data, len(data), func(int, byte, byte, int, []byte) error { return nil })
	})
}

// ratioCase is one row of the compression-ratio table the bench
// artifact publishes.
type ratioCase struct {
	name  string
	codec Codec
	data  []byte
}

func ratioCases() []ratioCase {
	rng := rand.New(rand.NewSource(29))
	const n = 1 << 20 // 1 MiB per row
	return []ratioCase{
		{"xor/float64-smooth", Codec{Kind: CodecXOR, Width: 8}, smoothFloats(n/8, 6)},
		{"xor/float64-random", Codec{Kind: CodecXOR, Width: 8}, randBytes(rng, n)},
		{"lz/int64-seq", Codec{Kind: CodecLZ, Width: 8}, seqInts(n/8, 0)},
		{"lz/int32-small", Codec{Kind: CodecLZ, Width: 4}, func() []byte {
			b := make([]byte, n)
			for i := 0; i < n/4; i++ {
				binary.LittleEndian.PutUint32(b[4*i:], uint32(rng.Intn(100)))
			}
			return b
		}()},
		{"lz/bytes-zero", Codec{Kind: CodecLZ, Width: 1}, make([]byte, n)},
		{"lz/bytes-random", Codec{Kind: CodecLZ, Width: 1}, randBytes(rng, n)},
	}
}

// TestCompressionRatioTable measures ratio and encode/decode throughput
// per codec and element type and prints one parseable line per row
// (the bench regeneration script lifts these into the bench artifact).
func TestCompressionRatioTable(t *testing.T) {
	if testing.Short() {
		t.Skip("ratio table skipped in -short")
	}
	scr := newCodecScratch()
	for _, rc := range ratioCases() {
		var storedTotal int
		blocks := make([][]byte, 0, len(rc.data)/BlockSize+1)
		formats := make([]byte, 0, cap(blocks))
		widths := make([]byte, 0, cap(blocks))
		logicals := make([]int, 0, cap(blocks))
		encStart := time.Now()
		for off := 0; off < len(rc.data); off += BlockSize {
			end := off + BlockSize
			if end > len(rc.data) {
				end = len(rc.data)
			}
			format, w, payload := encodeBlock(rc.data[off:end], rc.codec, scr)
			storedTotal += len(payload)
			blocks = append(blocks, append([]byte(nil), payload...))
			formats = append(formats, format)
			widths = append(widths, w)
			logicals = append(logicals, end-off)
		}
		encSecs := time.Since(encStart).Seconds()
		dst := make([]byte, BlockSize)
		decStart := time.Now()
		for i, stored := range blocks {
			dec, err := decodeBlock(formats[i], widths[i], stored, logicals[i], dst, scr)
			if err != nil {
				t.Fatalf("%s: decode block %d: %v", rc.name, i, err)
			}
			_ = dec
		}
		decSecs := time.Since(decStart).Seconds()
		mb := float64(len(rc.data)) / (1 << 20)
		ratio := float64(len(rc.data)) / float64(storedTotal)
		// Parseable by scripts/bench_baseline.sh: keep this format.
		fmt.Printf("ratio-table: name=%s ratio=%.2f enc_mbps=%.0f dec_mbps=%.0f\n",
			rc.name, ratio, mb/encSecs, mb/decSecs)
		if rc.name == "xor/float64-smooth" && ratio < 1.5 {
			t.Errorf("smooth float64 ratio = %.2f, want >= 1.5", ratio)
		}
		if rc.name == "lz/int64-seq" && ratio < 2 {
			t.Errorf("sequential int64 ratio = %.2f, want >= 2", ratio)
		}
		if rc.name == "lz/bytes-random" && ratio < 0.99 {
			t.Errorf("incompressible ratio = %.2f, must not expand (raw fallback)", ratio)
		}
	}
}

func benchCodec(b *testing.B, data []byte, c Codec, decode bool) {
	scr := newCodecScratch()
	format, w, payload := encodeBlock(data, c, scr)
	stored := append([]byte(nil), payload...)
	dst := make([]byte, len(data))
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if decode {
			if _, err := decodeBlock(format, w, stored, len(data), dst, scr); err != nil {
				b.Fatal(err)
			}
		} else {
			encodeBlock(data, c, scr)
		}
	}
}

func BenchmarkCodecXOREncode(b *testing.B) {
	benchCodec(b, smoothFloats(BlockSize/8, 7), Codec{Kind: CodecXOR, Width: 8}, false)
}

func BenchmarkCodecXORDecode(b *testing.B) {
	benchCodec(b, smoothFloats(BlockSize/8, 7), Codec{Kind: CodecXOR, Width: 8}, true)
}

func BenchmarkCodecLZEncode(b *testing.B) {
	benchCodec(b, seqInts(BlockSize/8, 0), Codec{Kind: CodecLZ, Width: 8}, false)
}

func BenchmarkCodecLZDecode(b *testing.B) {
	benchCodec(b, seqInts(BlockSize/8, 0), Codec{Kind: CodecLZ, Width: 8}, true)
}
