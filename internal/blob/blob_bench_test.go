package blob

import (
	"math/rand"
	"testing"

	"sqlarray/internal/pages"
)

func benchStore(b *testing.B, blobBytes int) (*Store, Ref) {
	b.Helper()
	s := NewStore(pages.NewBufferPool(pages.NewMemDisk(), 1<<15))
	rng := rand.New(rand.NewSource(1))
	data := make([]byte, blobBytes)
	rng.Read(data)
	ref, err := s.Write(data)
	if err != nil {
		b.Fatal(err)
	}
	return s, ref
}

func BenchmarkWrite1MB(b *testing.B) {
	data := make([]byte, 1<<20)
	b.SetBytes(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := NewStore(pages.NewBufferPool(pages.NewMemDisk(), 1<<15))
		if _, err := s.Write(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReadAll1MB(b *testing.B) {
	s, ref := benchStore(b, 1<<20)
	b.SetBytes(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.ReadAll(ref); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPartialRead4kOf1MB(b *testing.B) {
	s, ref := benchStore(b, 1<<20)
	dst := make([]byte, 4096)
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		off := int64((i * 37) % (1<<20 - 4096))
		if err := s.ReadAt(ref, dst, off); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReadRunsPinnedStencil is the zero-copy counterpart of
// BenchmarkReadRunsStencil: the same 64-run stencil shape, but the run
// bytes are visited in place on the pinned chunk pages instead of being
// scattered into a destination buffer.
func BenchmarkReadRunsPinnedStencil(b *testing.B) {
	s, ref := benchStore(b, 1<<20)
	runs := make([]Run, 64)
	for i := range runs {
		runs[i] = Run{SrcOff: i * 8192, DstOff: i * 512, Len: 512}
	}
	b.SetBytes(64 * 512)
	b.ResetTimer()
	sink := byte(0)
	for i := 0; i < b.N; i++ {
		rv, err := s.ReadRunsPinned(ref, runs)
		if err != nil {
			b.Fatal(err)
		}
		for r := range runs {
			rv.VisitRun(r, func(_ int, seg []byte) { sink ^= seg[0] })
		}
		rv.Release()
	}
	_ = sink
}

func BenchmarkReadRunsStencil(b *testing.B) {
	// 64 runs of 512 bytes: the shape of an 8³ float64 stencil fetch.
	s, ref := benchStore(b, 1<<20)
	runs := make([]Run, 64)
	for i := range runs {
		runs[i] = Run{SrcOff: i * 8192, DstOff: i * 512, Len: 512}
	}
	dst := make([]byte, 64*512)
	b.SetBytes(64 * 512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.ReadRuns(ref, dst, runs); err != nil {
			b.Fatal(err)
		}
	}
}
