package blob

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"sqlarray/internal/pages"
)

func viewTestStore(t *testing.T, blobBytes int) (*Store, Ref, []byte, *pages.BufferPool) {
	t.Helper()
	bp := pages.NewBufferPool(pages.NewMemDisk(), 1<<12)
	s := NewStore(bp)
	data := make([]byte, blobBytes)
	rng := rand.New(rand.NewSource(7))
	rng.Read(data)
	ref, err := s.Write(data)
	if err != nil {
		t.Fatal(err)
	}
	return s, ref, data, bp
}

func TestViewWholeBlob(t *testing.T) {
	for _, n := range []int{1, ChunkSize, ChunkSize + 1, 3*ChunkSize + 17} {
		s, ref, data, bp := viewTestStore(t, n)
		v, err := s.View(ref)
		if err != nil {
			t.Fatalf("View(%d): %v", n, err)
		}
		if v.Len() != int64(n) {
			t.Errorf("Len = %d, want %d", v.Len(), n)
		}
		wantChunks := NumChunks(int64(n))
		if v.NumChunks() != wantChunks {
			t.Errorf("NumChunks = %d, want %d", v.NumChunks(), wantChunks)
		}
		if got := v.AppendTo(nil); !bytes.Equal(got, data) {
			t.Errorf("AppendTo mismatch for %d bytes", n)
		}
		if c, ok := v.Contiguous(); ok != (wantChunks == 1) {
			t.Errorf("Contiguous ok = %v for %d chunks", ok, wantChunks)
		} else if ok && !bytes.Equal(c, data) {
			t.Errorf("Contiguous bytes mismatch")
		}
		// ReadAt against a straddling range.
		if n > 10 {
			dst := make([]byte, n-7)
			if err := v.ReadAt(dst, 5); err != nil {
				t.Fatalf("ReadAt: %v", err)
			}
			if !bytes.Equal(dst, data[5:5+len(dst)]) {
				t.Error("ReadAt mismatch")
			}
			if err := v.ReadAt(make([]byte, 8), int64(n)-4); !errors.Is(err, ErrShortRead) {
				t.Errorf("out-of-range ReadAt: %v", err)
			}
		}
		if got := bp.PinnedFrames(); got != wantChunks {
			t.Errorf("PinnedFrames while viewed = %d, want %d", got, wantChunks)
		}
		v.Release()
		v.Release() // idempotent
		if got := bp.PinnedFrames(); got != 0 {
			t.Errorf("PinnedFrames after Release = %d", got)
		}
	}
}

// TestViewReleaseReturnsFrameToLRU is the pin-lifecycle regression test:
// while a view is live its frames must be unevictable (DropCleanBuffers
// fails), and after Release the frames must be back on the LRU so the
// pool can quiesce and evict them.
func TestViewReleaseReturnsFrameToLRU(t *testing.T) {
	s, ref, _, bp := viewTestStore(t, 2*ChunkSize)
	v, err := s.View(ref)
	if err != nil {
		t.Fatal(err)
	}
	if err := bp.DropCleanBuffers(); err == nil {
		t.Fatal("DropCleanBuffers must fail while a view pins chunk pages")
	}
	v.Release()
	if err := bp.DropCleanBuffers(); err != nil {
		t.Fatalf("DropCleanBuffers after Release: %v", err)
	}
	if got := bp.CachedPages(); got != 0 {
		t.Errorf("CachedPages after drop = %d (released frames not evictable)", got)
	}
	// The blob must still be readable cold.
	if _, err := s.ReadAll(ref); err != nil {
		t.Fatalf("cold ReadAll after drop: %v", err)
	}
}

func TestReadRunsPinnedMatchesReadRuns(t *testing.T) {
	s, ref, data, bp := viewTestStore(t, 4*ChunkSize)
	runs := []Run{
		{SrcOff: 10, DstOff: 0, Len: 100},
		{SrcOff: ChunkSize - 8, DstOff: 100, Len: 16}, // straddles chunks 0/1
		{SrcOff: 3 * ChunkSize, DstOff: 116, Len: 64},
		{SrcOff: 20, DstOff: 180, Len: 8}, // same chunk as run 0 (dedup)
	}
	want := make([]byte, 188)
	if err := s.ReadRuns(ref, want, runs); err != nil {
		t.Fatal(err)
	}
	rv, err := s.ReadRunsPinned(ref, runs)
	if err != nil {
		t.Fatal(err)
	}
	// Chunks 0, 1, 3 are touched; chunk 2 is not.
	if got := rv.PinnedChunks(); got != 3 {
		t.Errorf("PinnedChunks = %d, want 3", got)
	}
	got := make([]byte, 188)
	rv.CopyTo(got)
	if !bytes.Equal(got, want) {
		t.Error("CopyTo disagrees with ReadRuns")
	}
	// Segment visiting yields the same bytes in destination order.
	seg2 := make([]byte, 188)
	for i := range runs {
		rv.VisitRun(i, func(dstOff int, seg []byte) {
			copy(seg2[dstOff:], seg)
		})
	}
	if !bytes.Equal(seg2, want) {
		t.Error("VisitRun disagrees with ReadRuns")
	}
	// The straddling run must arrive as exactly two segments.
	nseg := 0
	rv.VisitRun(1, func(int, []byte) { nseg++ })
	if nseg != 2 {
		t.Errorf("straddling run visited as %d segments, want 2", nseg)
	}
	// Spot-check against the source bytes directly.
	if !bytes.Equal(got[:100], data[10:110]) {
		t.Error("run 0 bytes do not match the source blob")
	}
	rv.Release()
	if got := bp.PinnedFrames(); got != 0 {
		t.Errorf("PinnedFrames after Release = %d", got)
	}
	// Bounds violations fail before pinning anything.
	//lint:allow pinleak the call is expected to fail; the zero-pin state is asserted below
	if _, err := s.ReadRunsPinned(ref, []Run{{SrcOff: 4*ChunkSize - 4, DstOff: 0, Len: 8}}); !errors.Is(err, ErrShortRead) {
		t.Errorf("out-of-range run: %v", err)
	}
	if got := bp.PinnedFrames(); got != 0 {
		t.Errorf("PinnedFrames after failed pin = %d", got)
	}
}

// TestSubarrayReadTouchesFewerChunks is the acceptance check: a
// subarray-shaped run read over a multi-chunk blob must report strictly
// fewer ChunkReads than materializing the same blob via ReadAll.
func TestSubarrayReadTouchesFewerChunks(t *testing.T) {
	s, ref, _, _ := viewTestStore(t, 16*ChunkSize)
	s.ResetStats()
	if _, err := s.ReadAll(ref); err != nil {
		t.Fatal(err)
	}
	whole := s.Stats().ChunkReads
	s.ResetStats()
	// A sliced read: three short runs spread over the blob.
	runs := []Run{
		{SrcOff: 0, DstOff: 0, Len: 64},
		{SrcOff: 7 * ChunkSize, DstOff: 64, Len: 64},
		{SrcOff: 15 * ChunkSize, DstOff: 128, Len: 64},
	}
	rv, err := s.ReadRunsPinned(ref, runs)
	if err != nil {
		t.Fatal(err)
	}
	rv.Release()
	sliced := s.Stats().ChunkReads
	if sliced >= whole {
		t.Errorf("sliced read touched %d chunks, ReadAll touched %d — pushdown not effective", sliced, whole)
	}
	if sliced != 3 {
		t.Errorf("sliced read touched %d chunks, want exactly 3", sliced)
	}
}

func TestViewNullAndEmpty(t *testing.T) {
	bp := pages.NewBufferPool(pages.NewMemDisk(), 64)
	s := NewStore(bp)
	v, err := s.View(Ref{})
	if err != nil {
		t.Fatalf("View(null): %v", err)
	}
	if v.NumChunks() != 0 || v.Len() != 0 {
		t.Errorf("null view: %d chunks, len %d", v.NumChunks(), v.Len())
	}
	v.Release()
	rv, err := s.ReadRunsPinned(Ref{}, nil)
	if err != nil {
		t.Fatalf("ReadRunsPinned(null, none): %v", err)
	}
	rv.Release()
	//lint:allow pinleak a null ref fails validation before any chunk is pinned
	if _, err := s.ReadRunsPinned(Ref{}, []Run{{Len: 1}}); !errors.Is(err, ErrBadRef) {
		t.Errorf("ReadRunsPinned(null, runs): %v", err)
	}
}
