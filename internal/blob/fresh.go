package blob

import (
	"encoding/binary"

	"sqlarray/internal/pages"
)

// Page sinks: blob writes are parameterized over where pages come from
// and what happens when one is complete, so the transactional path and
// the bulk-ingest path share one layout implementation.
//
//   - The reuse sink (Write/WriteCompressed) allocates through the free
//     list — which mutates shared committed pages (the free-list head
//     and the meta page), so it is only legal inside a write capture —
//     and simply unpins completed pages; the enclosing Tx commit logs
//     them from the capture set.
//   - The fresh sink (WriteFresh) allocates brand-new pages only, never
//     touching the free list, and hands each completed page to the
//     caller while still pinned so its WAL image can be streamed out
//     immediately. That makes it safe to run OUTSIDE a capture: no
//     shared state is written, and logged pages become evictable as
//     soon as the log syncs past them — bounded memory for arbitrarily
//     large loads.
type pageSink struct {
	alloc  func(typ pages.PageType) (*pages.Frame, error)
	finish func(f *pages.Frame) error
}

// reuseSink is the transactional allocation policy (free list first).
func (s *Store) reuseSink() pageSink {
	return pageSink{
		alloc: s.allocPage,
		finish: func(f *pages.Frame) error {
			s.bp.Unpin(f, true)
			return nil
		},
	}
}

// freshSink allocates new pages and logs them via onPage while pinned.
func (s *Store) freshSink(onPage func(f *pages.Frame) error) pageSink {
	return pageSink{
		alloc: func(typ pages.PageType) (*pages.Frame, error) {
			return s.bp.NewPage(typ)
		},
		finish: func(f *pages.Frame) error {
			var err error
			if onPage != nil {
				err = onPage(f)
			}
			s.bp.Unpin(f, true)
			return err
		},
	}
}

// WriteFresh stores data as a new blob on freshly allocated pages only,
// bypassing the free list, compressing under c (CodecNone stores raw,
// as does any blob the codec fails to shrink). onPage is invoked for
// every completed page while it is still pinned — the bulk loader
// streams the page image into the WAL there — and may be nil.
func (s *Store) WriteFresh(data []byte, c Codec, onPage func(f *pages.Frame) error) (Ref, error) {
	sink := s.freshSink(onPage)
	if c.Kind == CodecNone || c.Kind > CodecXOR {
		return s.writeRaw(data, sink)
	}
	return s.writeCompressedVia(data, c, sink)
}

// writeRaw is Write parameterized over the page sink.
func (s *Store) writeRaw(data []byte, sink pageSink) (Ref, error) {
	if len(data) == 0 {
		return Ref{}, nil
	}
	nChunks := (len(data) + ChunkSize - 1) / ChunkSize
	chunkIDs := make([]pages.PageID, 0, nChunks)
	for off := 0; off < len(data); off += ChunkSize {
		end := off + ChunkSize
		if end > len(data) {
			end = len(data)
		}
		f, err := sink.alloc(pages.TypeBlobData)
		if err != nil {
			return Ref{}, err
		}
		n := copy(f.Page.Body(), data[off:end])
		f.Page.SetUsed(n)
		chunkIDs = append(chunkIDs, f.Page.ID)
		if err := sink.finish(f); err != nil {
			return Ref{}, err
		}
		s.stats.chunksWritten.Add(1)
		s.stats.bytesWritten.Add(uint64(n))
	}
	root, err := s.writeDirectoryVia(chunkIDs, sink)
	if err != nil {
		return Ref{}, err
	}
	return Ref{Root: root, Length: int64(len(data))}, nil
}

// writeDirectoryVia lays the chunk id list into a chain of directory
// pages and returns the first page id.
func (s *Store) writeDirectoryVia(ids []pages.PageID, sink pageSink) (pages.PageID, error) {
	var first pages.PageID
	var prevFrame *pages.Frame
	for off := 0; off < len(ids); off += idsPerDir {
		end := off + idsPerDir
		if end > len(ids) {
			end = len(ids)
		}
		f, err := sink.alloc(pages.TypeBlobTree)
		if err != nil {
			if prevFrame != nil {
				s.bp.Unpin(prevFrame, true)
			}
			return 0, err
		}
		body := f.Page.Body()
		for i, id := range ids[off:end] {
			binary.LittleEndian.PutUint32(body[4*i:], uint32(id))
		}
		f.Page.SetUsed((end - off) * 4)
		if first == pages.InvalidPageID {
			first = f.Page.ID
		}
		if prevFrame != nil {
			prevFrame.Page.SetNext(f.Page.ID)
			if err := sink.finish(prevFrame); err != nil {
				s.bp.Unpin(f, true)
				return 0, err
			}
		}
		prevFrame = f
	}
	if prevFrame != nil {
		if err := sink.finish(prevFrame); err != nil {
			return 0, err
		}
	}
	return first, nil
}

// writeCompressedVia is WriteCompressed parameterized over the page
// sink.
func (s *Store) writeCompressedVia(data []byte, c Codec, sink pageSink) (Ref, error) {
	if c.Kind == CodecNone || c.Kind > CodecXOR {
		return s.writeRaw(data, sink)
	}
	if len(data) == 0 {
		return Ref{}, nil
	}
	if c.Width < 1 || c.Width > 255 {
		c.Width = 1
	}
	if c.Phase < 0 || c.Phase > 7 {
		c.Phase = 0
	}
	scr := scratchPool.Get().(*codecScratch)
	defer scratchPool.Put(scr)
	blocks, stage := encodeBlocks(data, c, scr, nil)
	plan := packBlocks(blocks)
	if len(plan) >= NumChunks(int64(len(data))) {
		return s.writeRaw(data, sink)
	}
	chunks := make([]chunkInfo, 0, len(plan))
	var off int64
	for _, pk := range plan {
		f, err := sink.alloc(pages.TypeBlobData)
		if err != nil {
			return Ref{}, err
		}
		w := fillChunkPage(&f.Page, c, blocks[pk.first:pk.first+pk.n], stage)
		chunks = append(chunks, chunkInfo{id: f.Page.ID, off: off, n: pk.logical})
		off += int64(pk.logical)
		if err := sink.finish(f); err != nil {
			return Ref{}, err
		}
		s.stats.chunksWritten.Add(1)
		s.stats.compressedBytesWritten.Add(uint64(w))
	}
	s.stats.bytesWritten.Add(uint64(len(data)))
	root, err := s.writeCompressedDirectoryVia(chunks, sink)
	if err != nil {
		return Ref{}, err
	}
	return Ref{Root: root, Length: int64(len(data))}, nil
}

// writeCompressedDirectoryVia lays 8-byte (page id, logical length)
// entries into a flagged directory chain and returns the first page id.
func (s *Store) writeCompressedDirectoryVia(chunks []chunkInfo, sink pageSink) (pages.PageID, error) {
	var first pages.PageID
	var prevFrame *pages.Frame
	for off := 0; off < len(chunks); off += entriesPerDirC {
		end := off + entriesPerDirC
		if end > len(chunks) {
			end = len(chunks)
		}
		f, err := sink.alloc(pages.TypeBlobTree)
		if err != nil {
			if prevFrame != nil {
				s.bp.Unpin(prevFrame, true)
			}
			return 0, err
		}
		f.Page.SetFlags(pages.FlagCompressedBlob)
		body := f.Page.Body()
		for i, ci := range chunks[off:end] {
			binary.LittleEndian.PutUint32(body[8*i:], uint32(ci.id))
			binary.LittleEndian.PutUint32(body[8*i+4:], uint32(ci.n))
		}
		f.Page.SetUsed((end - off) * 8)
		if first == pages.InvalidPageID {
			first = f.Page.ID
		}
		if prevFrame != nil {
			prevFrame.Page.SetNext(f.Page.ID)
			if err := sink.finish(prevFrame); err != nil {
				s.bp.Unpin(f, true)
				return 0, err
			}
		}
		prevFrame = f
	}
	if prevFrame != nil {
		if err := sink.finish(prevFrame); err != nil {
			return 0, err
		}
	}
	return first, nil
}
