package blob

import (
	"bytes"
	"math/rand"
	"testing"

	"sqlarray/internal/pages"
)

// storeWithPool mirrors newStore but also hands back the pool so tests
// can assert pin accounting.
func storeWithPool(t testing.TB) (*Store, *pages.BufferPool) {
	t.Helper()
	bp := pages.NewBufferPool(pages.NewMemDisk(), 1024)
	return NewStore(bp), bp
}

var compressedCodecs = []Codec{
	{Kind: CodecXOR, Width: 8},
	{Kind: CodecLZ, Width: 8},
	{Kind: CodecLZ, Width: 1},
}

func TestWriteCompressedRoundTripSizes(t *testing.T) {
	sizes := []int{1, 100, BlockSize - 1, BlockSize, BlockSize + 1,
		ChunkSize, ChunkSize + 1, maxChunkLogical, maxChunkLogical + 1,
		3 * ChunkSize, 3*ChunkSize + 17, 64 * 1024, 512 * 1024}
	for _, c := range compressedCodecs {
		s := newStore(t)
		for _, n := range sizes {
			data := smoothFloats((n+7)/8, int64(n))[:n]
			ref, err := s.WriteCompressed(data, c)
			if err != nil {
				t.Fatalf("%+v WriteCompressed %d: %v", c, n, err)
			}
			if ref.Length != int64(n) {
				t.Errorf("%+v %d: Length = %d", c, n, ref.Length)
			}
			got, err := s.ReadAll(ref)
			if err != nil {
				t.Fatalf("%+v ReadAll %d: %v", c, n, err)
			}
			if !bytes.Equal(got, data) {
				t.Errorf("%+v: roundtrip mismatch at %d bytes", c, n)
			}
		}
	}
}

func TestWriteCompressedEmpty(t *testing.T) {
	s := newStore(t)
	ref, err := s.WriteCompressed(nil, Codec{Kind: CodecXOR, Width: 8})
	if err != nil || !ref.IsNull() {
		t.Fatalf("WriteCompressed(nil) = %v, %v, want null ref", ref, err)
	}
}

func TestWriteCompressedUnknownCodecFallsBackRaw(t *testing.T) {
	s := newStore(t)
	data := smoothFloats(4096, 1)
	for _, c := range []Codec{{}, {Kind: CodecKind(77), Width: 8}} {
		ref, err := s.WriteCompressed(data, c)
		if err != nil {
			t.Fatalf("%+v: %v", c, err)
		}
		chunks, _, compressed, err := s.walkDir(ref)
		if err != nil {
			t.Fatal(err)
		}
		if compressed {
			t.Errorf("%+v: stored compressed, want raw format", c)
		}
		if len(chunks) != NumChunks(ref.Length) {
			t.Errorf("%+v: %d chunks, want %d", c, len(chunks), NumChunks(ref.Length))
		}
	}
}

// TestCompressedUsesFewerPages is the point of the feature: a
// compressible multi-chunk blob must occupy fewer chunk pages than the
// raw layout, and the stored-bytes counter must show the reduction.
func TestCompressedUsesFewerPages(t *testing.T) {
	s := newStore(t)
	data := seqInts(128*1024, 0) // 1 MiB, shuffles to near-constant planes
	ref, err := s.WriteCompressed(data, Codec{Kind: CodecLZ, Width: 8})
	if err != nil {
		t.Fatal(err)
	}
	chunks, _, compressed, err := s.walkDir(ref)
	if err != nil {
		t.Fatal(err)
	}
	if !compressed {
		t.Fatal("sequential ints stored raw")
	}
	raw := NumChunks(ref.Length)
	if len(chunks) >= raw/4 {
		t.Errorf("compressed blob uses %d chunk pages, raw would use %d — want < raw/4", len(chunks), raw)
	}
	st := s.Stats()
	if st.CompressedBytesWritten == 0 || st.CompressedBytesWritten >= st.BytesWritten/4 {
		t.Errorf("CompressedBytesWritten = %d vs logical %d, want < 1/4", st.CompressedBytesWritten, st.BytesWritten)
	}
	got, err := s.ReadAll(ref)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("roundtrip after packed write failed: %v", err)
	}
	if rst := s.Stats(); rst.CompressedBytesRead == 0 {
		t.Error("CompressedBytesRead = 0 after reading a compressed blob")
	}
}

// TestIncompressibleFallsBackRaw: when compression would not save a
// page, WriteCompressed must store the raw single-format layout so the
// page count never exceeds the raw write.
func TestIncompressibleFallsBackRaw(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	s := newStore(t)
	data := randBytes(rng, 64*1024)
	ref, err := s.WriteCompressed(data, Codec{Kind: CodecLZ, Width: 8})
	if err != nil {
		t.Fatal(err)
	}
	chunks, _, compressed, err := s.walkDir(ref)
	if err != nil {
		t.Fatal(err)
	}
	if compressed {
		t.Error("incompressible data stored in compressed format")
	}
	if len(chunks) != NumChunks(ref.Length) {
		t.Errorf("%d chunks, want %d", len(chunks), NumChunks(ref.Length))
	}
	got, err := s.ReadAll(ref)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("roundtrip failed: %v", err)
	}
}

// TestCompressedReadEquivalence writes the same payload raw and
// compressed and drives every read path over both, asserting identical
// results and clean pin accounting.
func TestCompressedReadEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	s, bp := storeWithPool(t)
	data := smoothFloats(40000, 2) // ~312 KiB, multi-chunk either way
	rawRef, err := s.Write(data)
	if err != nil {
		t.Fatal(err)
	}
	compRef, err := s.WriteCompressed(data, Codec{Kind: CodecXOR, Width: 8})
	if err != nil {
		t.Fatal(err)
	}
	refs := map[string]Ref{"raw": rawRef, "compressed": compRef}

	// ReadAt at random offsets, including chunk- and block-straddling.
	for i := 0; i < 50; i++ {
		n := 1 + rng.Intn(20000)
		off := rng.Intn(len(data) - n)
		want := data[off : off+n]
		for name, ref := range refs {
			dst := make([]byte, n)
			if err := s.ReadAt(ref, dst, int64(off)); err != nil {
				t.Fatalf("%s ReadAt(%d,%d): %v", name, off, n, err)
			}
			if !bytes.Equal(dst, want) {
				t.Fatalf("%s ReadAt(%d,%d) mismatch", name, off, n)
			}
		}
	}

	// ReadRuns and ReadRunsPinned over random scattered runs.
	for i := 0; i < 20; i++ {
		nRuns := 1 + rng.Intn(6)
		runs := make([]Run, 0, nRuns)
		want := make([]byte, 0, nRuns*512)
		dstOff := 0
		srcOff := rng.Intn(1024)
		for j := 0; j < nRuns && srcOff < len(data)-8; j++ {
			l := 8 * (1 + rng.Intn(64))
			if srcOff+l > len(data) {
				l = len(data) - srcOff
			}
			runs = append(runs, Run{SrcOff: srcOff, DstOff: dstOff, Len: l})
			want = append(want, data[srcOff:srcOff+l]...)
			dstOff += l
			srcOff += l + rng.Intn(2*ChunkSize)
		}
		for name, ref := range refs {
			dst := make([]byte, dstOff)
			if err := s.ReadRuns(ref, dst, runs); err != nil {
				t.Fatalf("%s ReadRuns: %v", name, err)
			}
			if !bytes.Equal(dst, want) {
				t.Fatalf("%s ReadRuns mismatch (iter %d)", name, i)
			}
			rv, err := s.ReadRunsPinned(ref, runs)
			if err != nil {
				t.Fatalf("%s ReadRunsPinned: %v", name, err)
			}
			pinned := make([]byte, dstOff)
			rv.CopyTo(pinned)
			rv.Release()
			if !bytes.Equal(pinned, want) {
				t.Fatalf("%s ReadRunsPinned mismatch (iter %d)", name, i)
			}
		}
	}

	// Whole-blob views.
	for name, ref := range refs {
		v, err := s.View(ref)
		if err != nil {
			t.Fatalf("%s View: %v", name, err)
		}
		if got := v.AppendTo(nil); !bytes.Equal(got, data) {
			t.Fatalf("%s View.AppendTo mismatch", name)
		}
		v.Release()
	}
	if got := bp.PinnedFrames(); got != 0 {
		t.Fatalf("PinnedFrames = %d after releases, want 0", got)
	}
}

// TestCompressedViewHoldsNoPins: compressed chunks decode into
// view-owned buffers and unpin their frames immediately, so a live view
// over a compressed blob holds zero pins (a raw view holds one per
// chunk until Release).
func TestCompressedViewHoldsNoPins(t *testing.T) {
	s, bp := storeWithPool(t)
	data := smoothFloats(8192, 3)
	rawRef, err := s.Write(data)
	if err != nil {
		t.Fatal(err)
	}
	compRef, err := s.WriteCompressed(data, Codec{Kind: CodecXOR, Width: 8})
	if err != nil {
		t.Fatal(err)
	}
	rawView, err := s.View(rawRef)
	if err != nil {
		t.Fatal(err)
	}
	if got := bp.PinnedFrames(); got == 0 {
		t.Error("raw view should hold pinned frames while live")
	}
	rawView.Release()
	compView, err := s.View(compRef)
	if err != nil {
		t.Fatal(err)
	}
	if got := bp.PinnedFrames(); got != 0 {
		t.Errorf("compressed view holds %d pins, want 0 (decoded buffers own the bytes)", got)
	}
	if got := compView.AppendTo(nil); !bytes.Equal(got, data) {
		t.Error("compressed view content mismatch")
	}
	compView.Release()
	if got := bp.PinnedFrames(); got != 0 {
		t.Fatalf("PinnedFrames = %d, want 0", got)
	}
}

// TestCompressedWriteRunsInPlace patches a compressed blob with
// similarly compressible bytes: the re-encoded chunks still fit and the
// blob must read back byte-identical to the patched reference.
func TestCompressedWriteRunsInPlace(t *testing.T) {
	s := newStore(t)
	data := smoothFloats(40000, 4)
	ref, err := s.WriteCompressed(data, Codec{Kind: CodecXOR, Width: 8})
	if err != nil {
		t.Fatal(err)
	}
	want := append([]byte(nil), data...)
	patch := smoothFloats(4096, 99)
	runs := []Run{
		{SrcOff: 0, DstOff: 0, Len: 512},
		{SrcOff: 100000, DstOff: 512, Len: 16384}, // straddles chunks
		{SrcOff: len(data) - 64, DstOff: 17000, Len: 64},
	}
	for _, r := range runs {
		copy(want[r.SrcOff:r.SrcOff+r.Len], patch[r.DstOff:r.DstOff+r.Len])
	}
	if err := s.WriteRuns(ref, patch, runs); err != nil {
		t.Fatal(err)
	}
	got, err := s.ReadAll(ref)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("in-place compressed patch: content mismatch")
	}
}

// TestCompressedWriteRunsSplit patches a tightly packed compressed blob
// with incompressible bytes, forcing re-encoded chunks past their page
// capacity: the store must split chunks, rewrite the directory in
// place, and keep the Ref stable.
func TestCompressedWriteRunsSplit(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	s, bp := storeWithPool(t)
	data := make([]byte, 512*1024) // zeros pack many blocks per chunk
	ref, err := s.WriteCompressed(data, Codec{Kind: CodecLZ, Width: 8})
	if err != nil {
		t.Fatal(err)
	}
	before, _, _, err := s.walkDir(ref)
	if err != nil {
		t.Fatal(err)
	}
	want := append([]byte(nil), data...)
	// Overwrite a large middle region and the tail with random bytes.
	patch := randBytes(rng, 200*1024)
	runs := []Run{
		{SrcOff: 100000, DstOff: 0, Len: 150 * 1024},
		{SrcOff: len(data) - 30000, DstOff: 150 * 1024, Len: 30000},
	}
	for _, r := range runs {
		copy(want[r.SrcOff:r.SrcOff+r.Len], patch[r.DstOff:r.DstOff+r.Len])
	}
	if err := s.WriteRuns(ref, patch, runs); err != nil {
		t.Fatal(err)
	}
	after, _, compressed, err := s.walkDir(ref)
	if err != nil {
		t.Fatalf("walkDir after split (same ref): %v", err)
	}
	if !compressed {
		t.Fatal("blob lost its compressed format")
	}
	if len(after) <= len(before) {
		t.Errorf("chunk count %d -> %d, expected a split to add pages", len(before), len(after))
	}
	got, err := s.ReadAll(ref)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("split compressed patch: content mismatch")
	}
	if got := bp.PinnedFrames(); got != 0 {
		t.Fatalf("PinnedFrames = %d after WriteRuns, want 0", got)
	}
}

// TestCompressedWriteRunsRandomized cross-checks WriteRuns against a
// plain byte-slice reference over many random patches, mixing
// compressible and incompressible payloads so both the in-place and
// split paths run.
func TestCompressedWriteRunsRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for _, c := range compressedCodecs {
		s := newStore(t)
		want := smoothFloats(32768, 5) // 256 KiB
		ref, err := s.WriteCompressed(want, c)
		if err != nil {
			t.Fatal(err)
		}
		want = append([]byte(nil), want...)
		for iter := 0; iter < 40; iter++ {
			var patch []byte
			if iter%3 == 0 {
				patch = randBytes(rng, 32*1024) // force splits
			} else {
				patch = smoothFloats(4096, int64(iter))
			}
			nRuns := 1 + rng.Intn(4)
			runs := make([]Run, 0, nRuns)
			dstOff := 0
			for j := 0; j < nRuns; j++ {
				l := 1 + rng.Intn(len(patch)/nRuns-1)
				if dstOff+l > len(patch) {
					break
				}
				srcOff := rng.Intn(len(want) - l)
				runs = append(runs, Run{SrcOff: srcOff, DstOff: dstOff, Len: l})
				copy(want[srcOff:srcOff+l], patch[dstOff:dstOff+l])
				dstOff += l
			}
			if len(runs) == 0 {
				continue
			}
			if err := s.WriteRuns(ref, patch, runs); err != nil {
				t.Fatalf("%+v iter %d: WriteRuns: %v", c, iter, err)
			}
			got, err := s.ReadAll(ref)
			if err != nil {
				t.Fatalf("%+v iter %d: ReadAll: %v", c, iter, err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("%+v iter %d: content diverged from reference", c, iter)
			}
		}
	}
}

// TestCompressedFreeReclaims: Free must push every page of a compressed
// blob (chunks and directory, including post-split layouts) onto the
// free list, and a following write must reuse them.
func TestCompressedFreeReclaims(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	s := newStore(t)
	data := make([]byte, 256*1024)
	ref, err := s.WriteCompressed(data, Codec{Kind: CodecLZ, Width: 8})
	if err != nil {
		t.Fatal(err)
	}
	// Split some chunks first so Free sees the rewritten directory.
	if err := s.WriteRuns(ref, randBytes(rng, 64*1024), []Run{{SrcOff: 50000, DstOff: 0, Len: 64 * 1024}}); err != nil {
		t.Fatal(err)
	}
	chunks, dirIDs, _, err := s.walkDir(ref)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Free(ref); err != nil {
		t.Fatal(err)
	}
	free, err := s.FreeListLen()
	if err != nil {
		t.Fatal(err)
	}
	if want := len(chunks) + len(dirIDs); free != want {
		t.Errorf("FreeListLen = %d, want %d (chunks %d + dirs %d)", free, want, len(chunks), len(dirIDs))
	}
	grew := s.bp.Disk().NumPages()
	if _, err := s.WriteCompressed(data[:64*1024], Codec{Kind: CodecLZ, Width: 8}); err != nil {
		t.Fatal(err)
	}
	if now := s.bp.Disk().NumPages(); now != grew {
		t.Errorf("disk grew %d -> %d pages; freed pages not reused", grew, now)
	}
}
