// Page free-list and blob reclamation.
//
// The seed store could only ever grow: overwriting or deleting a MAX
// value leaked its chunk and directory pages forever, because nothing
// recorded that they were dead. The store now keeps a persistent
// free-list — a stack of TypeFree pages threaded through their Next
// links, with the head pointer stored on the reserved metadata page 0 —
// and every allocation pops it before extending the file. Free(ref)
// pushes a blob's chunk and directory pages onto the list; the engine
// routes every rewrite and delete path through it, so steady-state
// update workloads stop growing the database file.
//
// All free-list mutations happen on the single-writer path (the engine
// holds its database write lock), so no extra locking is needed beyond
// the buffer pool's own.
package blob

import (
	"encoding/binary"
	"fmt"
	"sort"

	"sqlarray/internal/pages"
)

// freeHead reads the free-list head page id from the metadata page.
func (s *Store) freeHead() (pages.PageID, error) {
	f, err := s.bp.Fetch(0)
	if err != nil {
		return 0, err
	}
	defer s.bp.Unpin(f, false)
	if f.Page.Type() != pages.TypeMeta {
		return 0, nil // never initialized: empty free list
	}
	return pages.PageID(binary.LittleEndian.Uint32(f.Page.Body())), nil
}

// setFreeHead stores the free-list head, initializing the metadata page
// on first use.
func (s *Store) setFreeHead(id pages.PageID) error {
	f, err := s.bp.FetchForWrite(0)
	if err != nil {
		return err
	}
	if f.Page.Type() != pages.TypeMeta {
		f.Page.Init(pages.TypeMeta)
	}
	binary.LittleEndian.PutUint32(f.Page.Body(), uint32(id))
	s.bp.Unpin(f, true)
	return nil
}

// allocPage returns a pinned, initialized page of the given type,
// serving from the free list when possible and extending the file
// otherwise. The caller owns the pin (and must Unpin dirty).
func (s *Store) allocPage(t pages.PageType) (*pages.Frame, error) {
	head, err := s.freeHead()
	if err != nil {
		return nil, err
	}
	if head == pages.InvalidPageID {
		return s.bp.NewPage(t)
	}
	f, err := s.bp.FetchForWrite(head)
	if err != nil {
		return nil, err
	}
	if f.Page.Type() != pages.TypeFree {
		s.bp.Unpin(f, false)
		return nil, fmt.Errorf("blob: free-list head page %d has type %d, not free", head, f.Page.Type())
	}
	next := f.Page.Next()
	if err := s.setFreeHead(next); err != nil {
		s.bp.Unpin(f, false)
		return nil, err
	}
	f.Page.Init(t)
	s.stats.pagesReused.Add(1)
	return f, nil
}

// freePages pushes the given pages onto the persistent free list,
// retyping them TypeFree.
func (s *Store) freePages(ids []pages.PageID) error {
	if len(ids) == 0 {
		return nil
	}
	head, err := s.freeHead()
	if err != nil {
		return err
	}
	for _, id := range ids {
		f, err := s.bp.FetchForWrite(id)
		if err != nil {
			return err
		}
		f.Page.Init(pages.TypeFree)
		f.Page.SetNext(head)
		s.bp.Unpin(f, true)
		head = id
		s.stats.pagesFreed.Add(1)
	}
	return s.setFreeHead(head)
}

// Free returns every page of a blob — chunk pages and directory pages —
// to the free list, for either chunk format. A null ref is a no-op. The
// ref must not be used afterward; reading a freed blob returns
// type-mismatch errors (the pages are retyped TypeFree).
func (s *Store) Free(ref Ref) error {
	if ref.IsNull() {
		return nil
	}
	chunks, dirIDs, _, err := s.walkDir(ref)
	if err != nil {
		return err
	}
	ids := make([]pages.PageID, 0, len(chunks)+len(dirIDs))
	for _, ci := range chunks {
		ids = append(ids, ci.id)
	}
	ids = append(ids, dirIDs...)
	return s.freePages(ids)
}

// FreeListLen walks the free list and returns its length (test hook).
func (s *Store) FreeListLen() (int, error) {
	id, err := s.freeHead()
	if err != nil {
		return 0, err
	}
	n := 0
	for id != pages.InvalidPageID {
		f, err := s.bp.Fetch(id)
		if err != nil {
			return 0, err
		}
		if f.Page.Type() != pages.TypeFree {
			s.bp.Unpin(f, false)
			return 0, fmt.Errorf("blob: free-list page %d has type %d", id, f.Page.Type())
		}
		next := f.Page.Next()
		s.bp.Unpin(f, false)
		id = next
		n++
		if n > s.bp.Disk().NumPages() {
			return 0, fmt.Errorf("blob: free-list cycle detected")
		}
	}
	return n, nil
}

// WriteRuns writes a batch of partial updates into an existing blob,
// described as runs where SrcOff addresses the stored blob and DstOff
// addresses the src buffer — the write-side mirror of ReadRuns, sharing
// one directory walk and touching only the chunk pages the runs cover.
// This is the storage half of in-place subarray updates: rewriting a
// slice of a multi-chunk array dirties (and later logs) only the chunks
// the slice lands on, never the whole blob.
//
// On compressed blobs each touched chunk is decoded whole, patched, and
// re-encoded on its block grid. If the re-encoded chunk no longer fits
// its page (the new bytes compress worse), the chunk is split across
// additional pages and the directory chain is rewritten in place — the
// blob's Ref (its root page and length) never changes.
func (s *Store) WriteRuns(ref Ref, src []byte, runs []Run) error {
	if len(runs) == 0 {
		return nil
	}
	if ref.IsNull() {
		return fmt.Errorf("%w: null blob", ErrBadRef)
	}
	chunks, dirIDs, compressed, err := s.walkDir(ref)
	if err != nil {
		return err
	}
	var cover int64
	if n := len(chunks); n > 0 {
		cover = chunks[n-1].off + int64(chunks[n-1].n)
	}
	for _, r := range runs {
		if r.Len <= 0 {
			return fmt.Errorf("%w: run length %d", ErrShortRead, r.Len)
		}
		if r.SrcOff < 0 || int64(r.SrcOff+r.Len) > ref.Length {
			return fmt.Errorf("%w: run [%d,%d) of %d", ErrShortRead, r.SrcOff, r.SrcOff+r.Len, ref.Length)
		}
		if r.DstOff < 0 || r.DstOff+r.Len > len(src) {
			return fmt.Errorf("%w: source range [%d,%d) of %d", ErrShortRead, r.DstOff, r.DstOff+r.Len, len(src))
		}
		if int64(r.SrcOff+r.Len) > cover {
			return fmt.Errorf("%w: chunk %d of %d", ErrBadRef, len(chunks), len(chunks))
		}
	}
	if !compressed {
		return s.writeRunsRaw(src, runs, chunks)
	}
	return s.writeRunsCompressed(ref, src, runs, chunks, dirIDs)
}

// writeRunsRaw patches raw chunk pages in place.
func (s *Store) writeRunsRaw(src []byte, runs []Run, chunks []chunkInfo) error {
	for _, r := range runs {
		read := 0
		for c := findChunk(chunks, int64(r.SrcOff)); read < r.Len; c++ {
			if c < 0 || c >= len(chunks) {
				return fmt.Errorf("%w: chunk %d of %d", ErrBadRef, c, len(chunks))
			}
			ci := chunks[c]
			f, err := s.bp.FetchForWrite(ci.id)
			if err != nil {
				return err
			}
			if f.Page.Type() != pages.TypeBlobData {
				s.bp.Unpin(f, false)
				return fmt.Errorf("%w: page %d is not a blob chunk", ErrBadRef, ci.id)
			}
			lo := int(int64(r.SrcOff+read) - ci.off)
			hi := f.Page.Used()
			span := hi - lo
			if rem := r.Len - read; span > rem {
				span = rem
			}
			if span <= 0 {
				s.bp.Unpin(f, false)
				return fmt.Errorf("%w: run wanted %d bytes, wrote %d", ErrShortRead, r.Len, read)
			}
			n := copy(f.Page.Body()[lo:lo+span], src[r.DstOff+read:])
			read += n
			s.bp.Unpin(f, true)
			s.stats.chunksWritten.Add(1)
			s.stats.bytesWritten.Add(uint64(n))
		}
	}
	return nil
}

// chunkPatch is one contiguous span to overwrite within a chunk:
// chunk-relative offset and a span of src.
type chunkPatch struct {
	chunkOff, srcOff, n int
}

// writeRunsCompressed patches compressed chunks: decode whole chunk,
// apply every run span landing on it, re-encode on the chunk-local
// block grid, and rewrite — in place when the result still fits the
// page, splitting into freshly allocated pages (and rewriting the
// directory) when it does not.
func (s *Store) writeRunsCompressed(ref Ref, src []byte, runs []Run, chunks []chunkInfo, dirIDs []pages.PageID) error {
	// Group the runs' spans by touched chunk so each chunk is decoded
	// and re-encoded exactly once no matter how many runs land on it.
	patches := make(map[int][]chunkPatch)
	touched := make([]int, 0, len(runs))
	for _, r := range runs {
		read := 0
		for c := findChunk(chunks, int64(r.SrcOff)); read < r.Len; c++ {
			ci := chunks[c]
			lo := int(int64(r.SrcOff+read) - ci.off)
			span := ci.n - lo
			if rem := r.Len - read; span > rem {
				span = rem
			}
			if _, ok := patches[c]; !ok {
				touched = append(touched, c)
			}
			patches[c] = append(patches[c], chunkPatch{lo, r.DstOff + read, span})
			read += span
		}
	}
	sort.Ints(touched)
	scr := scratchPool.Get().(*codecScratch)
	defer scratchPool.Put(scr)
	replacements := make(map[int][]chunkInfo)
	for _, c := range touched {
		ci := chunks[c]
		f, err := s.bp.FetchForWrite(ci.id)
		if err != nil {
			return err
		}
		if f.Page.Type() != pages.TypeBlobData {
			s.bp.Unpin(f, false)
			return fmt.Errorf("%w: page %d is not a blob chunk", ErrBadRef, ci.id)
		}
		codec, err := chunkCodec(&f.Page)
		if err != nil {
			s.bp.Unpin(f, false)
			return err
		}
		buf := make([]byte, ci.n)
		if err := decodeWholeChunk(&f.Page, buf, scr); err != nil {
			s.bp.Unpin(f, false)
			return err
		}
		patched := 0
		for _, p := range patches[c] {
			copy(buf[p.chunkOff:p.chunkOff+p.n], src[p.srcOff:p.srcOff+p.n])
			patched += p.n
		}
		// Re-encode on the chunk-local BlockSize grid. Chunk logical
		// starts are always block-aligned (packing never splits a
		// block), so the grid is stable across rewrites.
		blocks, stage := encodeBlocks(buf, codec, scr, nil)
		plan := packBlocks(blocks)
		if len(plan) == 1 {
			w := fillChunkPage(&f.Page, codec, blocks, stage)
			s.bp.Unpin(f, true)
			s.stats.chunksWritten.Add(1)
			s.stats.bytesWritten.Add(uint64(patched))
			s.stats.compressedBytesWritten.Add(uint64(w))
			continue
		}
		// Split: the patched bytes compress worse and no longer fit one
		// page. The first part reuses this page (keeping its id); the
		// rest get fresh pages.
		repl := make([]chunkInfo, 0, len(plan))
		for i, pk := range plan {
			frame := f
			if i > 0 {
				frame, err = s.allocPage(pages.TypeBlobData)
				if err != nil {
					return err
				}
			}
			w := fillChunkPage(&frame.Page, codec, blocks[pk.first:pk.first+pk.n], stage)
			repl = append(repl, chunkInfo{id: frame.Page.ID, n: pk.logical})
			s.bp.Unpin(frame, true)
			s.stats.chunksWritten.Add(1)
			s.stats.compressedBytesWritten.Add(uint64(w))
		}
		s.stats.bytesWritten.Add(uint64(patched))
		replacements[c] = repl
	}
	if len(replacements) == 0 {
		return nil
	}
	// Splice the split chunks into the chunk list, recompute logical
	// offsets, and rewrite the directory chain in place.
	rebuilt := make([]chunkInfo, 0, len(chunks)+2*len(replacements))
	for i, ci := range chunks {
		if repl, ok := replacements[i]; ok {
			rebuilt = append(rebuilt, repl...)
		} else {
			rebuilt = append(rebuilt, ci)
		}
	}
	var off int64
	for i := range rebuilt {
		rebuilt[i].off = off
		off += int64(rebuilt[i].n)
	}
	if off != ref.Length {
		return fmt.Errorf("%w: rewrite covers %d bytes, ref declares %d", ErrBadRef, off, ref.Length)
	}
	return s.rewriteDirectory(dirIDs, rebuilt)
}

// rewriteDirectory rewrites a compressed blob's directory chain in
// place to describe chunks, extending the chain when the chunk list
// outgrew it and freeing surplus pages when it shrank. The first
// directory page is always reused, so the blob's Ref never changes.
func (s *Store) rewriteDirectory(dirIDs []pages.PageID, chunks []chunkInfo) error {
	var prev *pages.Frame
	di := 0
	for off := 0; off < len(chunks); off += entriesPerDirC {
		end := off + entriesPerDirC
		if end > len(chunks) {
			end = len(chunks)
		}
		var f *pages.Frame
		var err error
		if di < len(dirIDs) {
			f, err = s.bp.FetchForWrite(dirIDs[di])
			if err == nil && f.Page.Type() != pages.TypeBlobTree {
				s.bp.Unpin(f, false)
				err = fmt.Errorf("%w: page %d is not a blob directory", ErrBadRef, dirIDs[di])
			}
		} else {
			f, err = s.allocPage(pages.TypeBlobTree)
		}
		if err != nil {
			if prev != nil {
				s.bp.Unpin(prev, true)
			}
			return err
		}
		di++
		f.Page.SetFlags(pages.FlagCompressedBlob)
		f.Page.SetNext(pages.InvalidPageID)
		body := f.Page.Body()
		for i, ci := range chunks[off:end] {
			binary.LittleEndian.PutUint32(body[8*i:], uint32(ci.id))
			binary.LittleEndian.PutUint32(body[8*i+4:], uint32(ci.n))
		}
		f.Page.SetUsed((end - off) * 8)
		if prev != nil {
			prev.Page.SetNext(f.Page.ID)
			s.bp.Unpin(prev, true)
		}
		prev = f
	}
	if prev != nil {
		s.bp.Unpin(prev, true)
	}
	if di < len(dirIDs) {
		return s.freePages(dirIDs[di:])
	}
	return nil
}
