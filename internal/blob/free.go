// Page free-list and blob reclamation.
//
// The seed store could only ever grow: overwriting or deleting a MAX
// value leaked its chunk and directory pages forever, because nothing
// recorded that they were dead. The store now keeps a persistent
// free-list — a stack of TypeFree pages threaded through their Next
// links, with the head pointer stored on the reserved metadata page 0 —
// and every allocation pops it before extending the file. Free(ref)
// pushes a blob's chunk and directory pages onto the list; the engine
// routes every rewrite and delete path through it, so steady-state
// update workloads stop growing the database file.
//
// All free-list mutations happen on the single-writer path (the engine
// holds its database write lock), so no extra locking is needed beyond
// the buffer pool's own.
package blob

import (
	"encoding/binary"
	"fmt"

	"sqlarray/internal/pages"
)

// freeHead reads the free-list head page id from the metadata page.
func (s *Store) freeHead() (pages.PageID, error) {
	f, err := s.bp.Fetch(0)
	if err != nil {
		return 0, err
	}
	defer s.bp.Unpin(f, false)
	if f.Page.Type() != pages.TypeMeta {
		return 0, nil // never initialized: empty free list
	}
	return pages.PageID(binary.LittleEndian.Uint32(f.Page.Body())), nil
}

// setFreeHead stores the free-list head, initializing the metadata page
// on first use.
func (s *Store) setFreeHead(id pages.PageID) error {
	f, err := s.bp.Fetch(0)
	if err != nil {
		return err
	}
	if f.Page.Type() != pages.TypeMeta {
		f.Page.Init(pages.TypeMeta)
	}
	binary.LittleEndian.PutUint32(f.Page.Body(), uint32(id))
	s.bp.Unpin(f, true)
	return nil
}

// allocPage returns a pinned, initialized page of the given type,
// serving from the free list when possible and extending the file
// otherwise. The caller owns the pin (and must Unpin dirty).
func (s *Store) allocPage(t pages.PageType) (*pages.Frame, error) {
	head, err := s.freeHead()
	if err != nil {
		return nil, err
	}
	if head == pages.InvalidPageID {
		return s.bp.NewPage(t)
	}
	f, err := s.bp.Fetch(head)
	if err != nil {
		return nil, err
	}
	if f.Page.Type() != pages.TypeFree {
		s.bp.Unpin(f, false)
		return nil, fmt.Errorf("blob: free-list head page %d has type %d, not free", head, f.Page.Type())
	}
	next := f.Page.Next()
	if err := s.setFreeHead(next); err != nil {
		s.bp.Unpin(f, false)
		return nil, err
	}
	f.Page.Init(t)
	s.stats.pagesReused.Add(1)
	return f, nil
}

// Free returns every page of a blob — chunk pages and directory pages —
// to the free list. A null ref is a no-op. The ref must not be used
// afterward; reading a freed blob returns type-mismatch errors (the
// pages are retyped TypeFree).
func (s *Store) Free(ref Ref) error {
	if ref.IsNull() {
		return nil
	}
	// Collect directory page ids while loading the chunk list, so both
	// levels of the blob tree are reclaimed.
	var dirIDs []pages.PageID
	var chunkIDs []pages.PageID
	id := ref.Root
	for id != pages.InvalidPageID {
		f, err := s.bp.Fetch(id)
		if err != nil {
			return err
		}
		if f.Page.Type() != pages.TypeBlobTree {
			s.bp.Unpin(f, false)
			return fmt.Errorf("%w: page %d is not a blob directory", ErrBadRef, id)
		}
		used := f.Page.Used()
		body := f.Page.Body()
		for i := 0; i < used; i += 4 {
			chunkIDs = append(chunkIDs, pages.PageID(binary.LittleEndian.Uint32(body[i:])))
		}
		dirIDs = append(dirIDs, id)
		next := f.Page.Next()
		s.bp.Unpin(f, false)
		id = next
	}
	head, err := s.freeHead()
	if err != nil {
		return err
	}
	push := func(id pages.PageID) error {
		f, err := s.bp.Fetch(id)
		if err != nil {
			return err
		}
		f.Page.Init(pages.TypeFree)
		f.Page.SetNext(head)
		s.bp.Unpin(f, true)
		head = id
		s.stats.pagesFreed.Add(1)
		return nil
	}
	for _, id := range chunkIDs {
		if err := push(id); err != nil {
			return err
		}
	}
	for _, id := range dirIDs {
		if err := push(id); err != nil {
			return err
		}
	}
	return s.setFreeHead(head)
}

// FreeListLen walks the free list and returns its length (test hook).
func (s *Store) FreeListLen() (int, error) {
	id, err := s.freeHead()
	if err != nil {
		return 0, err
	}
	n := 0
	for id != pages.InvalidPageID {
		f, err := s.bp.Fetch(id)
		if err != nil {
			return 0, err
		}
		if f.Page.Type() != pages.TypeFree {
			s.bp.Unpin(f, false)
			return 0, fmt.Errorf("blob: free-list page %d has type %d", id, f.Page.Type())
		}
		next := f.Page.Next()
		s.bp.Unpin(f, false)
		id = next
		n++
		if n > s.bp.Disk().NumPages() {
			return 0, fmt.Errorf("blob: free-list cycle detected")
		}
	}
	return n, nil
}

// WriteRuns writes a batch of partial updates into an existing blob,
// described as runs where SrcOff addresses the stored blob and DstOff
// addresses the src buffer — the write-side mirror of ReadRuns, sharing
// one directory walk and touching only the chunk pages the runs cover.
// This is the storage half of in-place subarray updates: rewriting a
// slice of a multi-chunk array dirties (and later logs) only the chunks
// the slice lands on, never the whole blob.
func (s *Store) WriteRuns(ref Ref, src []byte, runs []Run) error {
	if len(runs) == 0 {
		return nil
	}
	if ref.IsNull() {
		return fmt.Errorf("%w: null blob", ErrBadRef)
	}
	ids, err := s.chunkIDs(ref)
	if err != nil {
		return err
	}
	for _, r := range runs {
		if r.Len <= 0 {
			return fmt.Errorf("%w: run length %d", ErrShortRead, r.Len)
		}
		if r.SrcOff < 0 || int64(r.SrcOff+r.Len) > ref.Length {
			return fmt.Errorf("%w: run [%d,%d) of %d", ErrShortRead, r.SrcOff, r.SrcOff+r.Len, ref.Length)
		}
		if r.DstOff < 0 || r.DstOff+r.Len > len(src) {
			return fmt.Errorf("%w: source range [%d,%d) of %d", ErrShortRead, r.DstOff, r.DstOff+r.Len, len(src))
		}
		first := r.SrcOff / ChunkSize
		last := (r.SrcOff + r.Len - 1) / ChunkSize
		read := 0
		for c := first; c <= last; c++ {
			if c >= len(ids) {
				return fmt.Errorf("%w: chunk %d of %d", ErrBadRef, c, len(ids))
			}
			f, err := s.bp.Fetch(ids[c])
			if err != nil {
				return err
			}
			if f.Page.Type() != pages.TypeBlobData {
				s.bp.Unpin(f, false)
				return fmt.Errorf("%w: page %d is not a blob chunk", ErrBadRef, ids[c])
			}
			lo := 0
			if c == first {
				lo = r.SrcOff % ChunkSize
			}
			hi := f.Page.Used()
			span := hi - lo
			if rem := r.Len - read; span > rem {
				span = rem
			}
			n := copy(f.Page.Body()[lo:lo+span], src[r.DstOff+read:])
			read += n
			s.bp.Unpin(f, true)
			s.stats.chunksWritten.Add(1)
			s.stats.bytesWritten.Add(uint64(n))
		}
		if read != r.Len {
			return fmt.Errorf("%w: run wanted %d bytes, wrote %d", ErrShortRead, r.Len, read)
		}
	}
	return nil
}
