// Package blob implements out-of-page binary large object storage for the
// sqlarray engine, mirroring SQL Server's VARBINARY(MAX) handling that the
// paper builds on (§3.3): blobs larger than a data page are stored outside
// the row as a tree of chunk pages, reached through a stream wrapper that
// "supports reading only parts of the binary data if the whole array is
// not required" — the property that makes subsetting max arrays cheap.
//
// Layout: a blob is a chain of directory pages (TypeBlobTree), each
// holding an array of chunk page ids; chunk pages (TypeBlobData) hold up
// to 8096 payload bytes each. The row stores only a fixed-size Ref.
package blob

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync/atomic"

	"sqlarray/internal/pages"
)

// ChunkSize is the payload capacity of one blob chunk page.
const ChunkSize = pages.PageSize - pages.HeaderSize

// idsPerDir is how many chunk ids fit one directory page.
const idsPerDir = ChunkSize / 4

// RefSize is the encoded size of a Ref as stored inside a row.
const RefSize = 12

// Errors returned by the blob store.
var (
	ErrBadRef    = errors.New("blob: invalid blob reference")
	ErrShortRead = errors.New("blob: read past end of blob")
)

// Ref locates a blob: the first directory page and the total length.
// A zero Ref (Root == 0) is the null blob.
type Ref struct {
	Root   pages.PageID
	Length int64
}

// IsNull reports whether the Ref addresses no blob.
func (r Ref) IsNull() bool { return r.Root == pages.InvalidPageID }

// Encode writes the Ref to a fixed 12-byte buffer.
func (r Ref) Encode(dst []byte) {
	binary.LittleEndian.PutUint32(dst, uint32(r.Root))
	binary.LittleEndian.PutUint64(dst[4:], uint64(r.Length))
}

// DecodeRef reads a Ref from its fixed 12-byte form.
func DecodeRef(b []byte) (Ref, error) {
	if len(b) < RefSize {
		return Ref{}, fmt.Errorf("%w: %d bytes", ErrBadRef, len(b))
	}
	return Ref{
		Root:   pages.PageID(binary.LittleEndian.Uint32(b)),
		Length: int64(binary.LittleEndian.Uint64(b[4:])),
	}, nil
}

// Stats is a snapshot of blob-store I/O at the chunk granularity,
// allowing the benchmarks to show how partial reads touch fewer pages.
type Stats struct {
	DirectoryReads uint64
	ChunkReads     uint64
	BytesRead      uint64
	ChunksWritten  uint64
	BytesWritten   uint64
	StreamCalls    uint64 // stream-wrapper invocations (the CLR-boundary analogue)
	PagesFreed     uint64 // pages returned to the free list by Free
	PagesReused    uint64 // allocations served from the free list
}

// counters is the live, atomic form of Stats. The store is read from
// parallel scan workers concurrently, so plain-field increments would be
// a data race (and were, before this was converted).
type counters struct {
	directoryReads atomic.Uint64
	chunkReads     atomic.Uint64
	bytesRead      atomic.Uint64
	chunksWritten  atomic.Uint64
	bytesWritten   atomic.Uint64
	streamCalls    atomic.Uint64
	pagesFreed     atomic.Uint64
	pagesReused    atomic.Uint64
}

// Store reads and writes blobs over a buffer pool. It is safe for
// concurrent use to the same degree the underlying pool is.
type Store struct {
	bp    *pages.BufferPool
	stats counters
}

// NewStore creates a blob store on bp.
func NewStore(bp *pages.BufferPool) *Store { return &Store{bp: bp} }

// Stats returns a snapshot of the store counters. Lock-free.
func (s *Store) Stats() Stats {
	return Stats{
		DirectoryReads: s.stats.directoryReads.Load(),
		ChunkReads:     s.stats.chunkReads.Load(),
		BytesRead:      s.stats.bytesRead.Load(),
		ChunksWritten:  s.stats.chunksWritten.Load(),
		BytesWritten:   s.stats.bytesWritten.Load(),
		StreamCalls:    s.stats.streamCalls.Load(),
		PagesFreed:     s.stats.pagesFreed.Load(),
		PagesReused:    s.stats.pagesReused.Load(),
	}
}

// ResetStats zeroes the counters.
func (s *Store) ResetStats() {
	s.stats.directoryReads.Store(0)
	s.stats.chunkReads.Store(0)
	s.stats.bytesRead.Store(0)
	s.stats.chunksWritten.Store(0)
	s.stats.bytesWritten.Store(0)
	s.stats.streamCalls.Store(0)
}

// Write stores data as a new blob and returns its Ref.
func (s *Store) Write(data []byte) (Ref, error) {
	if len(data) == 0 {
		return Ref{}, nil
	}
	nChunks := (len(data) + ChunkSize - 1) / ChunkSize
	chunkIDs := make([]pages.PageID, 0, nChunks)
	for off := 0; off < len(data); off += ChunkSize {
		end := off + ChunkSize
		if end > len(data) {
			end = len(data)
		}
		f, err := s.allocPage(pages.TypeBlobData)
		if err != nil {
			return Ref{}, err
		}
		n := copy(f.Page.Body(), data[off:end])
		f.Page.SetUsed(n)
		chunkIDs = append(chunkIDs, f.Page.ID)
		s.bp.Unpin(f, true)
		s.stats.chunksWritten.Add(1)
		s.stats.bytesWritten.Add(uint64(n))
	}
	root, err := s.writeDirectory(chunkIDs)
	if err != nil {
		return Ref{}, err
	}
	return Ref{Root: root, Length: int64(len(data))}, nil
}

// writeDirectory lays the chunk id list into a chain of directory pages
// and returns the first page id.
func (s *Store) writeDirectory(ids []pages.PageID) (pages.PageID, error) {
	var first, prev pages.PageID
	var prevFrame *pages.Frame
	for off := 0; off < len(ids); off += idsPerDir {
		end := off + idsPerDir
		if end > len(ids) {
			end = len(ids)
		}
		f, err := s.allocPage(pages.TypeBlobTree)
		if err != nil {
			if prevFrame != nil {
				s.bp.Unpin(prevFrame, true)
			}
			return 0, err
		}
		body := f.Page.Body()
		for i, id := range ids[off:end] {
			binary.LittleEndian.PutUint32(body[4*i:], uint32(id))
		}
		f.Page.SetUsed((end - off) * 4)
		if first == pages.InvalidPageID {
			first = f.Page.ID
		}
		if prevFrame != nil {
			prevFrame.Page.SetNext(f.Page.ID)
			s.bp.Unpin(prevFrame, true)
		}
		prev = f.Page.ID
		prevFrame = f
	}
	_ = prev
	if prevFrame != nil {
		s.bp.Unpin(prevFrame, true)
	}
	return first, nil
}

// chunkIDs loads the full chunk id list of a blob.
func (s *Store) chunkIDs(ref Ref) ([]pages.PageID, error) {
	if ref.IsNull() {
		return nil, nil
	}
	var ids []pages.PageID
	id := ref.Root
	for id != pages.InvalidPageID {
		f, err := s.bp.Fetch(id)
		if err != nil {
			return nil, err
		}
		if f.Page.Type() != pages.TypeBlobTree {
			s.bp.Unpin(f, false)
			return nil, fmt.Errorf("%w: page %d is not a blob directory", ErrBadRef, id)
		}
		s.stats.directoryReads.Add(1)
		used := f.Page.Used()
		body := f.Page.Body()
		for i := 0; i < used; i += 4 {
			ids = append(ids, pages.PageID(binary.LittleEndian.Uint32(body[i:])))
		}
		next := f.Page.Next()
		s.bp.Unpin(f, false)
		id = next
	}
	return ids, nil
}

// ReadAll fetches the entire blob.
func (s *Store) ReadAll(ref Ref) ([]byte, error) {
	if ref.IsNull() {
		return nil, nil
	}
	out := make([]byte, ref.Length)
	if err := s.ReadAt(ref, out, 0); err != nil {
		return nil, err
	}
	return out, nil
}

// ReadAt fills dst with blob bytes starting at offset off, touching only
// the chunk pages the range covers — the partial-read path.
func (s *Store) ReadAt(ref Ref, dst []byte, off int64) error {
	if ref.IsNull() {
		if len(dst) == 0 {
			return nil
		}
		return fmt.Errorf("%w: null blob", ErrBadRef)
	}
	if off < 0 || off+int64(len(dst)) > ref.Length {
		return fmt.Errorf("%w: [%d,%d) of %d", ErrShortRead, off, off+int64(len(dst)), ref.Length)
	}
	if len(dst) == 0 {
		return nil
	}
	ids, err := s.chunkIDs(ref)
	if err != nil {
		return err
	}
	first := int(off / ChunkSize)
	last := int((off + int64(len(dst)) - 1) / ChunkSize)
	w := 0
	for c := first; c <= last; c++ {
		if c >= len(ids) {
			return fmt.Errorf("%w: chunk %d of %d", ErrBadRef, c, len(ids))
		}
		f, err := s.bp.Fetch(ids[c])
		if err != nil {
			return err
		}
		if f.Page.Type() != pages.TypeBlobData {
			s.bp.Unpin(f, false)
			return fmt.Errorf("%w: page %d is not a blob chunk", ErrBadRef, ids[c])
		}
		s.stats.chunkReads.Add(1)
		lo := 0
		if c == first {
			lo = int(off % ChunkSize)
		}
		hi := f.Page.Used()
		body := f.Page.Body()[lo:hi]
		n := copy(dst[w:], body)
		w += n
		s.stats.bytesRead.Add(uint64(n))
		s.bp.Unpin(f, false)
	}
	if w != len(dst) {
		return fmt.Errorf("%w: wanted %d bytes, blob yielded %d", ErrShortRead, len(dst), w)
	}
	return nil
}

// ReadRuns performs a batch of partial reads described as (srcOff, dstOff,
// len) runs into dst, sharing one directory walk. This is the fast path
// used by Subarray on max arrays: the run list comes straight from
// core.SubarrayPlan, offset by the array header size.
func (s *Store) ReadRuns(ref Ref, dst []byte, runs []Run) error {
	if len(runs) == 0 {
		return nil
	}
	ids, err := s.chunkIDs(ref)
	if err != nil {
		return err
	}
	for _, r := range runs {
		if r.SrcOff < 0 || int64(r.SrcOff+r.Len) > ref.Length {
			return fmt.Errorf("%w: run [%d,%d) of %d", ErrShortRead, r.SrcOff, r.SrcOff+r.Len, ref.Length)
		}
		first := r.SrcOff / ChunkSize
		last := (r.SrcOff + r.Len - 1) / ChunkSize
		w := r.DstOff
		for c := first; c <= last; c++ {
			f, err := s.bp.Fetch(ids[c])
			if err != nil {
				return err
			}
			s.stats.chunkReads.Add(1)
			lo := 0
			if c == first {
				lo = r.SrcOff % ChunkSize
			}
			hi := f.Page.Used()
			want := r.DstOff + r.Len - w
			body := f.Page.Body()[lo:hi]
			if len(body) > want {
				body = body[:want]
			}
			n := copy(dst[w:], body)
			w += n
			s.stats.bytesRead.Add(uint64(n))
			s.bp.Unpin(f, false)
		}
	}
	return nil
}

// Run mirrors core.Run at the blob layer (byte ranges of the stored
// blob). Declared locally to keep the package dependency-free.
type Run struct {
	SrcOff int
	DstOff int
	Len    int
}

// NumChunks returns how many chunk pages a blob of n bytes occupies.
func NumChunks(n int64) int {
	return int((n + ChunkSize - 1) / ChunkSize)
}
