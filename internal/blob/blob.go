// Package blob implements out-of-page binary large object storage for the
// sqlarray engine, mirroring SQL Server's VARBINARY(MAX) handling that the
// paper builds on (§3.3): blobs larger than a data page are stored outside
// the row as a tree of chunk pages, reached through a stream wrapper that
// "supports reading only parts of the binary data if the whole array is
// not required" — the property that makes subsetting max arrays cheap.
//
// Layout: a blob is a chain of directory pages (TypeBlobTree), each
// holding an array of chunk page ids; chunk pages (TypeBlobData) hold up
// to 8096 payload bytes each. The row stores only a fixed-size Ref.
//
// Two chunk formats coexist, discriminated by the page-header flag
// pages.FlagCompressedBlob on the blob's directory and chunk pages:
//
//   - Raw (legacy, Write): chunk c holds logical bytes
//     [c*ChunkSize, (c+1)*ChunkSize) verbatim; directory entries are
//     4-byte chunk page ids.
//   - Compressed (WriteCompressed): the logical blob is cut into
//     BlockSize blocks, each compressed independently (see codec.go)
//     and packed — several blocks per chunk page — so compressible
//     blobs occupy fewer pages; directory entries are 8 bytes (page
//     id plus the chunk's logical length). Readers locate chunks by binary
//     search over the logical offsets and decompress only the blocks a
//     requested range overlaps.
//
// All read paths (ReadAt/ReadRuns/View/ReadRunsPinned) are format
// agnostic: a Ref does not say how its bytes are stored.
package blob

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"sqlarray/internal/obs"
	"sqlarray/internal/pages"
)

// ChunkSize is the payload capacity of one blob chunk page.
const ChunkSize = pages.PageSize - pages.HeaderSize

// idsPerDir is how many 4-byte chunk ids fit one raw directory page.
const idsPerDir = ChunkSize / 4

// entriesPerDirC is how many 8-byte (id, logicalLen) entries fit one
// compressed-format directory page.
const entriesPerDirC = ChunkSize / 8

// RefSize is the encoded size of a Ref as stored inside a row.
const RefSize = 12

// Errors returned by the blob store.
var (
	ErrBadRef    = errors.New("blob: invalid blob reference")
	ErrShortRead = errors.New("blob: read past end of blob")
)

// Ref locates a blob: the first directory page and the total length.
// A zero Ref (Root == 0) is the null blob.
type Ref struct {
	Root   pages.PageID
	Length int64
}

// IsNull reports whether the Ref addresses no blob.
func (r Ref) IsNull() bool { return r.Root == pages.InvalidPageID }

// Encode writes the Ref to a fixed 12-byte buffer.
func (r Ref) Encode(dst []byte) {
	binary.LittleEndian.PutUint32(dst, uint32(r.Root))
	binary.LittleEndian.PutUint64(dst[4:], uint64(r.Length))
}

// DecodeRef reads a Ref from its fixed 12-byte form.
func DecodeRef(b []byte) (Ref, error) {
	if len(b) < RefSize {
		return Ref{}, fmt.Errorf("%w: %d bytes", ErrBadRef, len(b))
	}
	return Ref{
		Root:   pages.PageID(binary.LittleEndian.Uint32(b)),
		Length: int64(binary.LittleEndian.Uint64(b[4:])),
	}, nil
}

// Stats is a snapshot of blob-store I/O at the chunk granularity,
// allowing the benchmarks to show how partial reads touch fewer pages.
// BytesRead/BytesWritten count logical (uncompressed) bytes; the
// Compressed* counters count the stored bytes of compressed chunks, so
// BytesWritten / CompressedBytesWritten is the live compression ratio.
type Stats struct {
	DirectoryReads uint64
	ChunkReads     uint64
	BytesRead      uint64
	ChunksWritten  uint64
	BytesWritten   uint64
	StreamCalls    uint64 // stream-wrapper invocations (the CLR-boundary analogue)
	PagesFreed     uint64 // pages returned to the free list by Free
	PagesReused    uint64 // allocations served from the free list
	// CompressedBytesWritten is the stored (post-compression) size of
	// chunk pages written by WriteCompressed and compressed WriteRuns.
	CompressedBytesWritten uint64
	// CompressedBytesRead is the stored size of every compressed chunk
	// page fetched by a read path — the physical I/O volume a
	// compressed read actually paid, vs the logical BytesRead.
	CompressedBytesRead uint64
}

// counters is the live, atomic form of Stats. The store is read from
// parallel scan workers concurrently, so plain-field increments would be
// a data race (and were, before this was converted).
type counters struct {
	directoryReads         obs.Counter
	chunkReads             obs.Counter
	bytesRead              obs.Counter
	chunksWritten          obs.Counter
	bytesWritten           obs.Counter
	streamCalls            obs.Counter
	pagesFreed             obs.Counter
	pagesReused            obs.Counter
	compressedBytesWritten obs.Counter
	compressedBytesRead    obs.Counter
}

// RegisterMetrics attaches the store's counters to reg under the
// "blob." prefix. WithFetcher views share the primary store's
// counters, so snapshot-scan reads land in the same series.
func (s *Store) RegisterMetrics(reg *obs.Registry) {
	c := s.stats
	reg.Attach("blob.directory_reads", &c.directoryReads)
	reg.Attach("blob.chunk_reads", &c.chunkReads)
	reg.Attach("blob.bytes_read", &c.bytesRead)
	reg.Attach("blob.chunks_written", &c.chunksWritten)
	reg.Attach("blob.bytes_written", &c.bytesWritten)
	reg.Attach("blob.stream_calls", &c.streamCalls)
	reg.Attach("blob.pages_freed", &c.pagesFreed)
	reg.Attach("blob.pages_reused", &c.pagesReused)
	reg.Attach("blob.compressed_bytes_written", &c.compressedBytesWritten)
	reg.Attach("blob.compressed_bytes_read", &c.compressedBytesRead)
}

// Store reads and writes blobs over a buffer pool. It is safe for
// concurrent use to the same degree the underlying pool is.
//
// Read paths resolve page fetches through fx — the pool itself on the
// primary store, or a pages.Snapshot on stores derived with
// WithFetcher, which pins chunk pages as of a frozen commit. Write
// paths always go through bp and are only legal on the primary store.
type Store struct {
	bp    *pages.BufferPool
	fx    pages.Fetcher
	stats *counters
}

// NewStore creates a blob store on bp.
func NewStore(bp *pages.BufferPool) *Store {
	return &Store{bp: bp, fx: bp, stats: &counters{}}
}

// WithFetcher returns a read-only view of the store whose page fetches
// resolve through fx (typically a pages.Snapshot). The view shares the
// primary store's counters; writing through it is a programming error.
func (s *Store) WithFetcher(fx pages.Fetcher) *Store {
	return &Store{fx: fx, stats: s.stats}
}

// Stats returns a snapshot of the store counters. Lock-free.
func (s *Store) Stats() Stats {
	return Stats{
		DirectoryReads:         s.stats.directoryReads.Load(),
		ChunkReads:             s.stats.chunkReads.Load(),
		BytesRead:              s.stats.bytesRead.Load(),
		ChunksWritten:          s.stats.chunksWritten.Load(),
		BytesWritten:           s.stats.bytesWritten.Load(),
		StreamCalls:            s.stats.streamCalls.Load(),
		PagesFreed:             s.stats.pagesFreed.Load(),
		PagesReused:            s.stats.pagesReused.Load(),
		CompressedBytesWritten: s.stats.compressedBytesWritten.Load(),
		CompressedBytesRead:    s.stats.compressedBytesRead.Load(),
	}
}

// ResetStats zeroes the counters.
func (s *Store) ResetStats() {
	s.stats.directoryReads.Store(0)
	s.stats.chunkReads.Store(0)
	s.stats.bytesRead.Store(0)
	s.stats.chunksWritten.Store(0)
	s.stats.bytesWritten.Store(0)
	s.stats.streamCalls.Store(0)
	s.stats.compressedBytesWritten.Store(0)
	s.stats.compressedBytesRead.Store(0)
}

// scratchPool recycles codec staging buffers across read/write calls so
// decompressing reads do not allocate per call. The buffers never leak
// out of a call: decoded bytes destined to outlive it (pinned views)
// are copied into call-owned memory.
var scratchPool = sync.Pool{New: func() any { return newCodecScratch() }}

// chunkInfo locates one chunk page and the logical byte range it
// covers: [off, off+n). Raw blobs have the fixed ChunkSize geometry;
// compressed blobs have variable chunk coverage recorded in their
// directory entries.
type chunkInfo struct {
	id  pages.PageID
	off int64
	n   int
}

// findChunk returns the index of the chunk containing logical offset
// off — the last chunk whose start is <= off — or -1 when off precedes
// the first chunk.
func findChunk(chunks []chunkInfo, off int64) int {
	lo, hi := 0, len(chunks)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if chunks[mid].off <= off {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo - 1
}

// walkDir walks a blob's directory chain, returning the chunk list,
// the directory page ids, and whether the blob uses the compressed
// format (from the first directory page's flags).
func (s *Store) walkDir(ref Ref) (chunks []chunkInfo, dirIDs []pages.PageID, compressed bool, err error) {
	if ref.IsNull() {
		return nil, nil, false, nil
	}
	id := ref.Root
	first := true
	var off int64
	for id != pages.InvalidPageID {
		f, err := s.fx.Fetch(id)
		if err != nil {
			return nil, nil, false, err
		}
		if f.Page.Type() != pages.TypeBlobTree {
			s.fx.Unpin(f, false)
			return nil, nil, false, fmt.Errorf("%w: page %d is not a blob directory", ErrBadRef, id)
		}
		if first {
			compressed = f.Page.Flags()&pages.FlagCompressedBlob != 0
			first = false
		}
		s.stats.directoryReads.Add(1)
		used := f.Page.Used()
		body := f.Page.Body()
		if compressed {
			for i := 0; i+8 <= used; i += 8 {
				n := int(binary.LittleEndian.Uint32(body[i+4:]))
				if n <= 0 || n > maxChunkLogical {
					s.fx.Unpin(f, false)
					return nil, nil, false, fmt.Errorf("%w: directory entry covers %d bytes", ErrBadRef, n)
				}
				chunks = append(chunks, chunkInfo{
					id:  pages.PageID(binary.LittleEndian.Uint32(body[i:])),
					off: off,
					n:   n,
				})
				off += int64(n)
			}
		} else {
			for i := 0; i+4 <= used; i += 4 {
				n := ChunkSize
				if rem := ref.Length - off; int64(n) > rem {
					n = int(rem)
				}
				chunks = append(chunks, chunkInfo{
					id:  pages.PageID(binary.LittleEndian.Uint32(body[i:])),
					off: off,
					n:   n,
				})
				off += int64(n)
			}
		}
		dirIDs = append(dirIDs, id)
		next := f.Page.Next()
		s.fx.Unpin(f, false)
		id = next
	}
	if compressed && off != ref.Length {
		return nil, nil, false, fmt.Errorf("%w: directory covers %d bytes, ref declares %d",
			ErrBadRef, off, ref.Length)
	}
	return chunks, dirIDs, compressed, nil
}

// loadChunks is walkDir without the directory page ids (read paths).
func (s *Store) loadChunks(ref Ref) ([]chunkInfo, bool, error) {
	chunks, _, compressed, err := s.walkDir(ref)
	return chunks, compressed, err
}

// Write stores data as a new blob in the raw (uncompressed) chunk
// format and returns its Ref. WriteCompressed is the compressing
// variant; the engine picks per element type. Pages come from the free
// list (see fresh.go for the bulk-ingest fresh-page variant).
func (s *Store) Write(data []byte) (Ref, error) {
	return s.writeRaw(data, s.reuseSink())
}

// encBlock is one encoded block staged before page packing: header
// fields plus a span of the shared staging buffer.
type encBlock struct {
	format, width  byte
	logical        int
	payOff, payLen int
}

// chunkPlan assigns a run of staged blocks to one chunk page.
type chunkPlan struct {
	first, n, stored, logical int
}

// encodeBlocks cuts data on the BlockSize grid and encodes every block
// under c, appending payloads to stage. Blocks that fail to shrink are
// staged raw.
func encodeBlocks(data []byte, c Codec, scr *codecScratch, stage []byte) ([]encBlock, []byte) {
	blocks := make([]encBlock, 0, (len(data)+BlockSize-1)/BlockSize)
	for off := 0; off < len(data); off += BlockSize {
		end := off + BlockSize
		if end > len(data) {
			end = len(data)
		}
		format, width, payload := encodeBlock(data[off:end], c, scr)
		blocks = append(blocks, encBlock{
			format:  format,
			width:   width,
			logical: end - off,
			payOff:  len(stage),
			payLen:  len(payload),
		})
		stage = append(stage, payload...)
	}
	return blocks, stage
}

// packBlocks greedily assigns staged blocks to chunk pages, bounded by
// the page payload capacity and maxBlocksPerChunk.
func packBlocks(blocks []encBlock) []chunkPlan {
	var plan []chunkPlan
	cur := chunkPlan{}
	for i, b := range blocks {
		need := blockHdrSize + b.payLen
		if cur.n > 0 && (cur.stored+need > chunkPayloadCap || cur.n == maxBlocksPerChunk) {
			plan = append(plan, cur)
			cur = chunkPlan{}
		}
		if cur.n == 0 {
			cur.first = i
		}
		cur.n++
		cur.stored += need
		cur.logical += b.logical
	}
	if cur.n > 0 {
		plan = append(plan, cur)
	}
	return plan
}

// fillChunkPage lays one chunk plan's blocks into a page body and
// stamps the compressed-chunk header (format version, block count, and
// the blob's preferred codec so in-place rewrites re-encode with the
// writer's intent). Returns the stored byte count (the page's Used).
func fillChunkPage(p *pages.Page, c Codec, blocks []encBlock, stage []byte) int {
	body := p.Body()
	body[0] = chunkFormatVersion
	binary.LittleEndian.PutUint16(body[1:], uint16(len(blocks)))
	body[3] = byte(c.Kind)
	body[4] = byte(c.Width)
	body[5] = byte(c.Phase & 7)
	body[6], body[7] = 0, 0
	w := chunkHdrSize
	for _, b := range blocks {
		body[w] = b.format
		body[w+1] = b.width
		binary.LittleEndian.PutUint16(body[w+2:], uint16(b.payLen))
		binary.LittleEndian.PutUint16(body[w+4:], uint16(b.logical))
		body[w+6], body[w+7] = 0, 0
		copy(body[w+blockHdrSize:], stage[b.payOff:b.payOff+b.payLen])
		w += blockHdrSize + b.payLen
	}
	p.SetUsed(w)
	p.SetFlags(pages.FlagCompressedBlob)
	return w
}

// WriteCompressed stores data as a new blob in the compressed chunk
// format under codec c (CodecNone delegates to Write). If the packed
// compressed form would not occupy fewer chunk pages than raw storage,
// the blob is stored raw instead — compression never costs pages, and
// incompressible single-chunk blobs keep the zero-copy resolve path.
func (s *Store) WriteCompressed(data []byte, c Codec) (Ref, error) {
	return s.writeCompressedVia(data, c, s.reuseSink())
}

// errStopVisit short-circuits a block walk once past the wanted range.
var errStopVisit = errors.New("blob: stop block visit")

// forEachBlock walks the packed block sequence of a compressed chunk
// page body, invoking fn with each block's chunk-relative logical
// offset, header fields and stored payload. Every bound is validated so
// a corrupt page yields an error, never a panic.
func forEachBlock(body []byte, used int, fn func(blkOff int, format, width byte, logical int, stored []byte) error) error {
	if used < chunkHdrSize || used > len(body) {
		return errCorrupt("chunk header")
	}
	if body[0] != chunkFormatVersion {
		return errCorrupt("chunk format version")
	}
	nBlocks := int(binary.LittleEndian.Uint16(body[1:]))
	r := chunkHdrSize
	blkOff := 0
	for b := 0; b < nBlocks; b++ {
		if r+blockHdrSize > used {
			return errCorrupt("block header")
		}
		format := body[r]
		width := body[r+1]
		stored := int(binary.LittleEndian.Uint16(body[r+2:]))
		logical := int(binary.LittleEndian.Uint16(body[r+4:]))
		r += blockHdrSize
		if stored > used-r || logical == 0 || logical > BlockSize {
			return errCorrupt("block length")
		}
		if err := fn(blkOff, format, width, logical, body[r:r+stored]); err != nil {
			return err
		}
		r += stored
		blkOff += logical
	}
	return nil
}

// chunkCodec reads the preferred codec recorded in a compressed chunk
// page header.
func chunkCodec(p *pages.Page) (Codec, error) {
	if p.Used() < chunkHdrSize {
		return Codec{}, errCorrupt("chunk header")
	}
	body := p.Body()
	return Codec{Kind: CodecKind(body[3]), Width: int(body[4]), Phase: int(body[5] & 7)}, nil
}

// decodeWholeChunk expands every block of a compressed chunk page into
// dst, which must be exactly the chunk's logical size.
func decodeWholeChunk(p *pages.Page, dst []byte, scr *codecScratch) error {
	used := p.Used()
	body := p.Body()
	return forEachBlock(body, used, func(blkOff int, format, width byte, logical int, stored []byte) error {
		if blkOff+logical > len(dst) {
			return errCorrupt("chunk logical overflow")
		}
		out := dst[blkOff : blkOff+logical]
		dec, err := decodeBlock(format, width, stored, logical, out, scr)
		if err != nil {
			return err
		}
		if &dec[0] != &out[0] {
			copy(out, dec) // raw block: copy out of the page body
		}
		return nil
	})
}

// decodeChunkRange expands only the blocks of a compressed chunk page
// that overlap the chunk-relative logical range [lo, hi) into dst,
// which must be exactly the chunk's logical size. Bytes of dst outside
// the decoded blocks are left untouched — callers must only read the
// requested range.
func decodeChunkRange(p *pages.Page, dst []byte, lo, hi int, scr *codecScratch) error {
	if lo < 0 {
		lo = 0
	}
	if hi > len(dst) {
		hi = len(dst)
	}
	if lo >= hi {
		return nil
	}
	used := p.Used()
	body := p.Body()
	err := forEachBlock(body, used, func(blkOff int, format, width byte, logical int, stored []byte) error {
		if blkOff >= hi {
			return errStopVisit
		}
		if blkOff+logical <= lo {
			return nil
		}
		if blkOff+logical > len(dst) {
			return errCorrupt("chunk logical overflow")
		}
		out := dst[blkOff : blkOff+logical]
		dec, err := decodeBlock(format, width, stored, logical, out, scr)
		if err != nil {
			return err
		}
		if &dec[0] != &out[0] {
			copy(out, dec) // raw block: copy out of the page body
		}
		return nil
	})
	if err == errStopVisit {
		return nil
	}
	return err
}

// visitChunk fetches one chunk page and emits the logical byte segments
// overlapping the chunk-relative range [lo, hi), in ascending order.
// Raw chunks emit a single segment aliasing the pinned page body;
// compressed chunks decode only the overlapping blocks into scr and
// emit slices of it — decompress-then-slice per block, never the whole
// blob. Segments are valid only during the callback: the frame is
// unpinned before visitChunk returns.
func (s *Store) visitChunk(ci chunkInfo, compressed bool, lo, hi int, scr *codecScratch, emit func(off int, seg []byte)) error {
	f, err := s.fx.Fetch(ci.id)
	if err != nil {
		return err
	}
	defer s.fx.Unpin(f, false)
	if f.Page.Type() != pages.TypeBlobData {
		return fmt.Errorf("%w: page %d is not a blob chunk", ErrBadRef, ci.id)
	}
	s.stats.chunkReads.Add(1)
	used := f.Page.Used()
	body := f.Page.Body()
	if !compressed {
		if hi > used {
			hi = used
		}
		if lo < hi {
			emit(lo, body[lo:hi])
		}
		return nil
	}
	s.stats.compressedBytesRead.Add(uint64(used))
	err = forEachBlock(body, used, func(blkOff int, format, width byte, logical int, stored []byte) error {
		if blkOff+logical <= lo {
			return nil
		}
		if blkOff >= hi {
			return errStopVisit
		}
		scr.b = grow(scr.b, logical)
		dec, err := decodeBlock(format, width, stored, logical, scr.b[:logical], scr)
		if err != nil {
			return err
		}
		l, h := blkOff, blkOff+logical
		if lo > l {
			l = lo
		}
		if hi < h {
			h = hi
		}
		emit(l, dec[l-blkOff:h-blkOff])
		return nil
	})
	if err == errStopVisit {
		err = nil
	}
	return err
}

// readRange copies logical blob bytes [off, off+len(dst)) into dst.
// The caller has validated the range against the ref.
func (s *Store) readRange(chunks []chunkInfo, compressed bool, off int64, dst []byte, scr *codecScratch) error {
	if len(dst) == 0 {
		return nil
	}
	read := 0
	c := findChunk(chunks, off)
	if c < 0 {
		return fmt.Errorf("%w: chunk -1 of %d", ErrBadRef, len(chunks))
	}
	for read < len(dst) {
		if c >= len(chunks) {
			return fmt.Errorf("%w: chunk %d of %d", ErrBadRef, c, len(chunks))
		}
		ci := chunks[c]
		lo := int(off + int64(read) - ci.off)
		hi := ci.n
		if rem := len(dst) - read; hi-lo > rem {
			hi = lo + rem
		}
		base := read - lo
		copied := 0
		if err := s.visitChunk(ci, compressed, lo, hi, scr, func(o int, seg []byte) {
			copied += copy(dst[base+o:], seg)
		}); err != nil {
			return err
		}
		if copied != hi-lo {
			return fmt.Errorf("%w: wanted %d bytes, chunk %d yielded %d", ErrShortRead, hi-lo, c, copied)
		}
		read += copied
		s.stats.bytesRead.Add(uint64(copied))
		c++
	}
	return nil
}

// ReadAll fetches the entire blob.
func (s *Store) ReadAll(ref Ref) ([]byte, error) {
	if ref.IsNull() {
		return nil, nil
	}
	out := make([]byte, ref.Length)
	if err := s.ReadAt(ref, out, 0); err != nil {
		return nil, err
	}
	return out, nil
}

// ReadAt fills dst with blob bytes starting at offset off, touching only
// the chunk pages the range covers — the partial-read path. Compressed
// chunks decompress only the blocks the range overlaps.
func (s *Store) ReadAt(ref Ref, dst []byte, off int64) error {
	if ref.IsNull() {
		if len(dst) == 0 {
			return nil
		}
		return fmt.Errorf("%w: null blob", ErrBadRef)
	}
	if off < 0 || off+int64(len(dst)) > ref.Length {
		return fmt.Errorf("%w: [%d,%d) of %d", ErrShortRead, off, off+int64(len(dst)), ref.Length)
	}
	if len(dst) == 0 {
		return nil
	}
	chunks, compressed, err := s.loadChunks(ref)
	if err != nil {
		return err
	}
	var scr *codecScratch
	if compressed {
		scr = scratchPool.Get().(*codecScratch)
		defer scratchPool.Put(scr)
	}
	return s.readRange(chunks, compressed, off, dst, scr)
}

// ReadRuns performs a batch of partial reads described as (srcOff, dstOff,
// len) runs into dst, sharing one directory walk. This is the fast path
// used by Subarray on max arrays: the run list comes straight from
// core.SubarrayPlan, offset by the array header size.
func (s *Store) ReadRuns(ref Ref, dst []byte, runs []Run) error {
	if len(runs) == 0 {
		return nil
	}
	chunks, compressed, err := s.loadChunks(ref)
	if err != nil {
		return err
	}
	var scr *codecScratch
	if compressed {
		scr = scratchPool.Get().(*codecScratch)
		defer scratchPool.Put(scr)
	}
	for _, r := range runs {
		if r.SrcOff < 0 || int64(r.SrcOff+r.Len) > ref.Length {
			return fmt.Errorf("%w: run [%d,%d) of %d", ErrShortRead, r.SrcOff, r.SrcOff+r.Len, ref.Length)
		}
		if r.Len <= 0 {
			continue
		}
		if r.DstOff < 0 {
			return fmt.Errorf("%w: destination offset %d", ErrShortRead, r.DstOff)
		}
		end := r.DstOff + r.Len
		if end > len(dst) {
			end = len(dst)
		}
		if r.DstOff >= end {
			continue
		}
		if err := s.readRange(chunks, compressed, int64(r.SrcOff), dst[r.DstOff:end], scr); err != nil {
			return err
		}
	}
	return nil
}

// Run mirrors core.Run at the blob layer (byte ranges of the stored
// blob). Declared locally to keep the package dependency-free.
type Run struct {
	SrcOff int
	DstOff int
	Len    int
}

// NumChunks returns how many chunk pages a blob of n bytes occupies in
// the raw format (compressed blobs occupy at most this many).
func NumChunks(n int64) int {
	return int((n + ChunkSize - 1) / ChunkSize)
}
