package blob

import (
	"bytes"
	"testing"

	"sqlarray/internal/pages"
)

// TestFreeReusesPages is the leak regression: overwriting or deleting a
// blob must return its chunk AND directory pages to the free list, so a
// delete+rewrite cycle leaves the database file at its baseline size
// instead of growing by the blob's footprint each round.
func TestFreeReusesPages(t *testing.T) {
	disk := pages.NewMemDisk()
	bp := pages.NewBufferPool(disk, 256)
	s := NewStore(bp)

	data := make([]byte, 4*ChunkSize+100) // 5 chunks + 1 directory page
	for i := range data {
		data[i] = byte(i)
	}
	ref, err := s.Write(data)
	if err != nil {
		t.Fatal(err)
	}
	baseline := disk.NumPages()

	for round := 0; round < 5; round++ {
		if err := s.Free(ref); err != nil {
			t.Fatal(err)
		}
		n, err := s.FreeListLen()
		if err != nil {
			t.Fatal(err)
		}
		if want := NumChunks(int64(len(data))) + 1; n != want {
			t.Fatalf("round %d: free list holds %d pages, want %d (chunks + directory)", round, n, want)
		}
		ref, err = s.Write(data)
		if err != nil {
			t.Fatal(err)
		}
		if got := disk.NumPages(); got != baseline {
			t.Fatalf("round %d: file grew from %d to %d pages — blob rewrite leaked", round, baseline, got)
		}
	}
	// Data still reads back correctly through recycled pages.
	got, err := s.ReadAll(ref)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("payload mismatch after page recycling")
	}
	st := s.Stats()
	if st.PagesFreed == 0 || st.PagesReused == 0 {
		t.Fatalf("stats did not record reclamation: %+v", st)
	}
	if bp.PinnedFrames() != 0 {
		t.Fatalf("%d frames left pinned", bp.PinnedFrames())
	}
}

// TestFreeNullAndReadAfterFree: freeing the null ref is a no-op, and a
// dangling ref is detected (the pages were retyped), not silently read.
func TestFreeNullAndReadAfterFree(t *testing.T) {
	bp := pages.NewBufferPool(pages.NewMemDisk(), 64)
	s := NewStore(bp)
	if err := s.Free(Ref{}); err != nil {
		t.Fatalf("freeing null ref: %v", err)
	}
	ref, err := s.Write(make([]byte, 3*ChunkSize))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Free(ref); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ReadAll(ref); err == nil {
		t.Fatal("reading a freed blob succeeded")
	}
}

// TestWriteRunsTouchesOnlyAffectedChunks: an in-place run write on a
// multi-chunk blob dirties only the chunks the runs land on, strictly
// fewer than a whole-blob rewrite would.
func TestWriteRunsTouchesOnlyAffectedChunks(t *testing.T) {
	bp := pages.NewBufferPool(pages.NewMemDisk(), 256)
	s := NewStore(bp)
	const nChunks = 16
	data := make([]byte, nChunks*ChunkSize)
	ref, err := s.Write(data)
	if err != nil {
		t.Fatal(err)
	}
	before := s.Stats().ChunksWritten

	// Patch 100 bytes in chunk 3 and 100 straddling chunks 7/8.
	patch := make([]byte, 200)
	for i := range patch {
		patch[i] = 0xEE
	}
	runs := []Run{
		{SrcOff: 3*ChunkSize + 50, DstOff: 0, Len: 100},
		{SrcOff: 8*ChunkSize - 50, DstOff: 100, Len: 100},
	}
	if err := s.WriteRuns(ref, patch, runs); err != nil {
		t.Fatal(err)
	}
	touched := s.Stats().ChunksWritten - before
	if touched >= nChunks {
		t.Fatalf("run write touched %d chunks, not fewer than the %d a full rewrite costs", touched, nChunks)
	}
	if touched != 3 { // chunk 3, chunk 7, chunk 8
		t.Fatalf("run write touched %d chunks, want 3", touched)
	}
	// Verify the patched bytes and one untouched neighbour.
	got := make([]byte, 100)
	if err := s.ReadAt(ref, got, int64(3*ChunkSize+50)); err != nil {
		t.Fatal(err)
	}
	if got[0] != 0xEE || got[99] != 0xEE {
		t.Fatal("patch did not land")
	}
	if err := s.ReadAt(ref, got, 0); err != nil {
		t.Fatal(err)
	}
	if got[0] != 0 {
		t.Fatal("untouched chunk changed")
	}
	if bp.PinnedFrames() != 0 {
		t.Fatalf("%d frames left pinned", bp.PinnedFrames())
	}
}
