package blob

import (
	"fmt"
	"io"
)

// Stream is the binary stream wrapper over an out-of-page blob — the
// analogue of the SqlBytes stream the paper's max arrays must go through
// ("out-of-page data has to go through the ... .NET binary stream wrapper
// that interfaces with the B-trees and provides random access to the
// blobs", §3.3). Every call is counted in the store's StreamCalls so the
// wrapper overhead is visible in benchmarks.
//
// Stream implements io.Reader, io.ReaderAt and io.Seeker.
type Stream struct {
	store *Store
	ref   Ref
	pos   int64
}

// Open returns a stream positioned at the start of the blob.
func (s *Store) Open(ref Ref) *Stream {
	return &Stream{store: s, ref: ref}
}

// Len returns the blob length.
func (st *Stream) Len() int64 { return st.ref.Length }

// Read implements io.Reader.
func (st *Stream) Read(p []byte) (int, error) {
	st.store.stats.streamCalls.Add(1)
	if st.pos >= st.ref.Length {
		return 0, io.EOF
	}
	n := int64(len(p))
	if st.pos+n > st.ref.Length {
		n = st.ref.Length - st.pos
	}
	if err := st.store.ReadAt(st.ref, p[:n], st.pos); err != nil {
		return 0, err
	}
	st.pos += n
	return int(n), nil
}

// ReadAt implements io.ReaderAt.
func (st *Stream) ReadAt(p []byte, off int64) (int, error) {
	st.store.stats.streamCalls.Add(1)
	if off >= st.ref.Length {
		return 0, io.EOF
	}
	n := int64(len(p))
	short := false
	if off+n > st.ref.Length {
		n = st.ref.Length - off
		short = true
	}
	if err := st.store.ReadAt(st.ref, p[:n], off); err != nil {
		return 0, err
	}
	if short {
		return int(n), io.EOF
	}
	return int(n), nil
}

// Seek implements io.Seeker.
func (st *Stream) Seek(offset int64, whence int) (int64, error) {
	st.store.stats.streamCalls.Add(1)
	var abs int64
	switch whence {
	case io.SeekStart:
		abs = offset
	case io.SeekCurrent:
		abs = st.pos + offset
	case io.SeekEnd:
		abs = st.ref.Length + offset
	default:
		return 0, fmt.Errorf("blob: invalid seek whence %d", whence)
	}
	if abs < 0 {
		return 0, fmt.Errorf("blob: seek before start (%d)", abs)
	}
	st.pos = abs
	return abs, nil
}
