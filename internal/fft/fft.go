// Package fft is the library's FFTW substitute: complex discrete Fourier
// transforms of arbitrary length (iterative radix-2 with a Bluestein
// fallback), inverse transforms, real-input helpers and multi-dimensional
// transforms over column-major data — the layout sqlarray blobs use, so a
// max array's payload feeds straight into these routines.
//
// Mirroring FFTW's API shape (§5.3 of the paper: "FFTW requires specially
// aligned memory buffers ... a memory copy into a pre-aligned buffer is
// necessary"), transforms are driven through Plans that own staging
// buffers; Execute copies input into the plan's buffer, transforms, and
// copies out.
package fft

import (
	"errors"
	"fmt"
	"math"
	"math/bits"
)

// ErrSize reports an invalid transform size.
var ErrSize = errors.New("fft: invalid transform size")

// Direction selects forward (engineering sign convention, e^{-2πi kn/N})
// or inverse (with 1/N normalization).
type Direction int

// Transform directions.
const (
	Forward Direction = -1
	Inverse Direction = +1
)

// Plan holds precomputed tables for a fixed-size 1-D complex transform.
type Plan struct {
	n       int
	dir     Direction
	pow2    bool
	rev     []int          // bit-reversal permutation (pow2)
	tw      []complex128   // stage twiddles (pow2)
	blue    *bluesteinPlan // arbitrary-n fallback
	staging []complex128   // the "aligned buffer" work area
}

// NewPlan prepares a transform of length n in the given direction.
func NewPlan(n int, dir Direction) (*Plan, error) {
	if n <= 0 {
		return nil, fmt.Errorf("%w: %d", ErrSize, n)
	}
	p := &Plan{n: n, dir: dir, staging: make([]complex128, n)}
	if n&(n-1) == 0 {
		p.pow2 = true
		p.rev = bitRevTable(n)
		p.tw = twiddles(n, dir)
		return p, nil
	}
	p.blue = newBluestein(n, dir)
	return p, nil
}

// Len returns the transform length.
func (p *Plan) Len() int { return p.n }

// Execute transforms src into dst (both length n; they may alias). The
// input is staged through the plan's internal buffer, mimicking FFTW's
// aligned-buffer copy.
func (p *Plan) Execute(dst, src []complex128) error {
	if len(src) != p.n || len(dst) != p.n {
		return fmt.Errorf("%w: plan is %d, buffers are %d/%d", ErrSize, p.n, len(src), len(dst))
	}
	copy(p.staging, src)
	if p.pow2 {
		p.radix2(p.staging)
	} else {
		p.blue.transform(p.staging)
	}
	if p.dir == Inverse {
		inv := complex(1/float64(p.n), 0)
		for i := range p.staging {
			p.staging[i] *= inv
		}
	}
	copy(dst, p.staging)
	return nil
}

// bitRevTable computes the bit-reversal permutation for size n (a power
// of two).
func bitRevTable(n int) []int {
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	rev := make([]int, n)
	for i := range rev {
		rev[i] = int(bits.Reverse64(uint64(i)) >> shift)
	}
	return rev
}

// twiddles precomputes e^{dir·2πi k/n} for all stage sizes, packed
// contiguously: sizes 2,4,8,...,n each contribute size/2 factors.
func twiddles(n int, dir Direction) []complex128 {
	tw := make([]complex128, 0, n-1)
	for size := 2; size <= n; size <<= 1 {
		ang := float64(dir) * 2 * math.Pi / float64(size)
		for k := 0; k < size/2; k++ {
			s, c := math.Sincos(ang * float64(k))
			tw = append(tw, complex(c, s))
		}
	}
	return tw
}

// radix2 runs the iterative Cooley-Tukey butterfly over a (bit-reversed)
// buffer in place.
func (p *Plan) radix2(a []complex128) {
	n := p.n
	for i, r := range p.rev {
		if i < r {
			a[i], a[r] = a[r], a[i]
		}
	}
	twOff := 0
	for size := 2; size <= n; size <<= 1 {
		half := size / 2
		tw := p.tw[twOff : twOff+half]
		for start := 0; start < n; start += size {
			for k := 0; k < half; k++ {
				u := a[start+k]
				v := a[start+k+half] * tw[k]
				a[start+k] = u + v
				a[start+k+half] = u - v
			}
		}
		twOff += half
	}
}

// bluesteinPlan implements the chirp-z trick: an arbitrary-n DFT as a
// cyclic convolution carried by a power-of-two FFT of length >= 2n-1.
type bluesteinPlan struct {
	n    int
	m    int // power-of-two convolution size
	dir  Direction
	w    []complex128 // chirp factors e^{dir·πi k²/n}
	bHat []complex128 // FFT of the chirp kernel
	fwd  *Plan
	inv  *Plan
	work []complex128
}

func newBluestein(n int, dir Direction) *bluesteinPlan {
	m := 1
	for m < 2*n-1 {
		m <<= 1
	}
	bp := &bluesteinPlan{n: n, m: m, dir: dir}
	bp.w = make([]complex128, n)
	for k := 0; k < n; k++ {
		// k² mod 2n keeps the angle accurate for large k.
		kk := (int64(k) * int64(k)) % int64(2*n)
		ang := float64(dir) * math.Pi * float64(kk) / float64(n)
		s, c := math.Sincos(ang)
		bp.w[k] = complex(c, s)
	}
	b := make([]complex128, m)
	b[0] = bp.w[0]
	for k := 1; k < n; k++ {
		conj := complex(real(bp.w[k]), -imag(bp.w[k]))
		b[k] = conj
		b[m-k] = conj
	}
	bp.fwd, _ = NewPlan(m, Forward)
	bp.inv, _ = NewPlan(m, Inverse)
	bp.bHat = make([]complex128, m)
	_ = bp.fwd.Execute(bp.bHat, b)
	bp.work = make([]complex128, m)
	return bp
}

func (bp *bluesteinPlan) transform(a []complex128) {
	n := bp.n
	work := bp.work
	for i := range work {
		work[i] = 0
	}
	for k := 0; k < n; k++ {
		work[k] = a[k] * bp.w[k]
	}
	_ = bp.fwd.Execute(work, work)
	for i := range work {
		work[i] *= bp.bHat[i]
	}
	_ = bp.inv.Execute(work, work)
	// The length-m inverse already divided by m; undo nothing further.
	for k := 0; k < n; k++ {
		a[k] = work[k] * bp.w[k]
	}
}

// FFT transforms src, allocating the result (convenience wrapper).
func FFT(src []complex128) ([]complex128, error) {
	p, err := NewPlan(len(src), Forward)
	if err != nil {
		return nil, err
	}
	dst := make([]complex128, len(src))
	if err := p.Execute(dst, src); err != nil {
		return nil, err
	}
	return dst, nil
}

// IFFT inverse-transforms src with 1/N scaling.
func IFFT(src []complex128) ([]complex128, error) {
	p, err := NewPlan(len(src), Inverse)
	if err != nil {
		return nil, err
	}
	dst := make([]complex128, len(src))
	if err := p.Execute(dst, src); err != nil {
		return nil, err
	}
	return dst, nil
}

// FFTReal transforms real input, returning the full complex spectrum.
func FFTReal(src []float64) ([]complex128, error) {
	c := make([]complex128, len(src))
	for i, v := range src {
		c[i] = complex(v, 0)
	}
	return FFT(c)
}

// DFTNaive is the O(n²) reference transform used by tests.
func DFTNaive(src []complex128, dir Direction) []complex128 {
	n := len(src)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var sum complex128
		for j := 0; j < n; j++ {
			ang := float64(dir) * 2 * math.Pi * float64(k*j) / float64(n)
			s, c := math.Sincos(ang)
			sum += src[j] * complex(c, s)
		}
		out[k] = sum
	}
	if dir == Inverse {
		for k := range out {
			out[k] /= complex(float64(n), 0)
		}
	}
	return out
}
