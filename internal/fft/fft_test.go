package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func maxErr(a, b []complex128) float64 {
	m := 0.0
	for i := range a {
		if d := cmplx.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

func randComplex(rng *rand.Rand, n int) []complex128 {
	out := make([]complex128, n)
	for i := range out {
		out[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return out
}

func TestFFTMatchesNaiveDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 12, 16, 17, 32, 100, 128, 243} {
		src := randComplex(rng, n)
		got, err := FFT(src)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		want := DFTNaive(src, Forward)
		if e := maxErr(got, want); e > 1e-9*float64(n) {
			t.Errorf("n=%d: max error %g", n, e)
		}
	}
}

func TestInverseIsIdentityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := func() bool {
		n := 1 + rng.Intn(200)
		src := randComplex(rng, n)
		freq, err := FFT(src)
		if err != nil {
			return false
		}
		back, err := IFFT(freq)
		if err != nil {
			return false
		}
		return maxErr(src, back) < 1e-9*float64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestParsevalProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{16, 37, 64, 129} {
		src := randComplex(rng, n)
		freq, err := FFT(src)
		if err != nil {
			t.Fatal(err)
		}
		var et, ef float64
		for i := 0; i < n; i++ {
			et += real(src[i])*real(src[i]) + imag(src[i])*imag(src[i])
			ef += real(freq[i])*real(freq[i]) + imag(freq[i])*imag(freq[i])
		}
		if math.Abs(et-ef/float64(n)) > 1e-8*et {
			t.Errorf("n=%d: Parseval violated: %g vs %g", n, et, ef/float64(n))
		}
	}
}

func TestPureToneSpectrum(t *testing.T) {
	const n = 64
	const bin = 5
	src := make([]complex128, n)
	for i := range src {
		ang := 2 * math.Pi * bin * float64(i) / n
		src[i] = complex(math.Cos(ang), math.Sin(ang))
	}
	freq, err := FFT(src)
	if err != nil {
		t.Fatal(err)
	}
	for k := range freq {
		want := 0.0
		if k == bin {
			want = n
		}
		if math.Abs(cmplx.Abs(freq[k])-want) > 1e-9 {
			t.Errorf("bin %d amplitude = %g, want %g", k, cmplx.Abs(freq[k]), want)
		}
	}
}

func TestFFTRealConjugateSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	src := make([]float64, 48)
	for i := range src {
		src[i] = rng.NormFloat64()
	}
	freq, err := FFTReal(src)
	if err != nil {
		t.Fatal(err)
	}
	n := len(src)
	for k := 1; k < n; k++ {
		if cmplx.Abs(freq[k]-cmplx.Conj(freq[n-k])) > 1e-9 {
			t.Errorf("hermitian symmetry broken at %d", k)
		}
	}
}

func TestPlanReuseAndAliasing(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p, err := NewPlan(64, Forward)
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 64 {
		t.Errorf("Len = %d", p.Len())
	}
	for trial := 0; trial < 5; trial++ {
		src := randComplex(rng, 64)
		want := DFTNaive(src, Forward)
		// In-place execution (dst aliases src).
		if err := p.Execute(src, src); err != nil {
			t.Fatal(err)
		}
		if e := maxErr(src, want); e > 1e-9 {
			t.Errorf("trial %d: in-place error %g", trial, e)
		}
	}
	if err := p.Execute(make([]complex128, 32), make([]complex128, 64)); err == nil {
		t.Error("size mismatch must fail")
	}
}

func TestPlanErrors(t *testing.T) {
	if _, err := NewPlan(0, Forward); err == nil {
		t.Error("zero size must fail")
	}
	if _, err := NewPlan(-4, Inverse); err == nil {
		t.Error("negative size must fail")
	}
	if _, err := FFT(nil); err == nil {
		t.Error("empty FFT must fail")
	}
}

func TestFFTNRoundtrip3D(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	dims := []int{8, 6, 5}
	n := 8 * 6 * 5
	src := randComplex(rng, n)
	data := append([]complex128(nil), src...)
	if err := FFTN(data, dims, Forward); err != nil {
		t.Fatal(err)
	}
	if err := FFTN(data, dims, Inverse); err != nil {
		t.Fatal(err)
	}
	if e := maxErr(data, src); e > 1e-9 {
		t.Errorf("3D roundtrip error %g", e)
	}
}

func TestFFTNMatchesPerAxisNaive2D(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	nx, ny := 4, 3
	src := randComplex(rng, nx*ny)
	got := append([]complex128(nil), src...)
	if err := FFTN(got, []int{nx, ny}, Forward); err != nil {
		t.Fatal(err)
	}
	// Naive 2D DFT.
	want := make([]complex128, nx*ny)
	for kx := 0; kx < nx; kx++ {
		for ky := 0; ky < ny; ky++ {
			var sum complex128
			for x := 0; x < nx; x++ {
				for y := 0; y < ny; y++ {
					ang := -2 * math.Pi * (float64(kx*x)/float64(nx) + float64(ky*y)/float64(ny))
					s, c := math.Sincos(ang)
					sum += src[y*nx+x] * complex(c, s)
				}
			}
			want[ky*nx+kx] = sum
		}
	}
	if e := maxErr(got, want); e > 1e-9 {
		t.Errorf("2D error %g", e)
	}
}

func TestFFTAxesSingleAxis(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	dims := []int{8, 4}
	src := randComplex(rng, 32)
	data := append([]complex128(nil), src...)
	if err := FFTAxes(data, dims, Forward, []int{0}); err != nil {
		t.Fatal(err)
	}
	// Each column (fixed second index) must equal its own 1-D DFT.
	for c := 0; c < 4; c++ {
		col := src[c*8 : (c+1)*8]
		want := DFTNaive(col, Forward)
		if e := maxErr(data[c*8:(c+1)*8], want); e > 1e-9 {
			t.Errorf("column %d error %g", c, e)
		}
	}
	if err := FFTAxes(data, dims, Forward, []int{2}); err == nil {
		t.Error("bad axis must fail")
	}
	if err := FFTN(data, []int{5, 5}, Forward); err == nil {
		t.Error("dims/data mismatch must fail")
	}
	if err := FFTN(data, []int{-1}, Forward); err == nil {
		t.Error("negative dim must fail")
	}
}

func TestPowerSpectrumDeltaField(t *testing.T) {
	// A constant field has all its power at k=0.
	const n = 8
	f := make([]complex128, n*n*n)
	for i := range f {
		f[i] = 1
	}
	if err := FFTN(f, []int{n, n, n}, Forward); err != nil {
		t.Fatal(err)
	}
	p, counts, err := PowerSpectrum3D(f, n)
	if err != nil {
		t.Fatal(err)
	}
	if p[0] == 0 {
		t.Error("k=0 power must be non-zero for constant field")
	}
	for k := 1; k < len(p); k++ {
		if p[k] > 1e-12 {
			t.Errorf("k=%d power = %g, want 0", k, p[k])
		}
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total > n*n*n {
		t.Errorf("binned %d modes out of %d", total, n*n*n)
	}
	if _, _, err := PowerSpectrum3D(f, n+1); err == nil {
		t.Error("size mismatch must fail")
	}
}

func TestPowerSpectrumSingleMode(t *testing.T) {
	const n = 16
	f := make([]complex128, n*n*n)
	// A plane wave along x with |k|=3.
	for z := 0; z < n; z++ {
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				ang := 2 * math.Pi * 3 * float64(x) / n
				f[(z*n+y)*n+x] = complex(math.Cos(ang), 0)
			}
		}
	}
	if err := FFTN(f, []int{n, n, n}, Forward); err != nil {
		t.Fatal(err)
	}
	p, _, err := PowerSpectrum3D(f, n)
	if err != nil {
		t.Fatal(err)
	}
	peak := 0
	for k := 1; k < len(p); k++ {
		if p[k] > p[peak] {
			peak = k
		}
	}
	if peak != 3 {
		t.Errorf("power peak at k=%d, want 3", peak)
	}
}
