package fft

import "fmt"

// FFTN transforms a column-major multi-dimensional complex array along
// every axis. data has length prod(dims); dims[0] varies fastest,
// matching the sqlarray blob layout. The transform happens in place.
func FFTN(data []complex128, dims []int, dir Direction) error {
	return fftAxes(data, dims, dir, nil)
}

// FFTAxes transforms only the listed axes (nil = all), in place.
func FFTAxes(data []complex128, dims []int, dir Direction, axes []int) error {
	return fftAxes(data, dims, dir, axes)
}

func fftAxes(data []complex128, dims []int, dir Direction, axes []int) error {
	total := 1
	for _, d := range dims {
		if d <= 0 {
			return fmt.Errorf("%w: dimension %d", ErrSize, d)
		}
		total *= d
	}
	if len(data) != total {
		return fmt.Errorf("%w: %d elements for dims %v", ErrSize, len(data), dims)
	}
	if axes == nil {
		axes = make([]int, len(dims))
		for i := range axes {
			axes[i] = i
		}
	}
	for _, axis := range axes {
		if axis < 0 || axis >= len(dims) {
			return fmt.Errorf("%w: axis %d of rank %d", ErrSize, axis, len(dims))
		}
		if err := fftAxis(data, dims, axis, dir); err != nil {
			return err
		}
	}
	return nil
}

// fftAxis runs length-dims[axis] transforms along one axis of a
// column-major array. Lines along the axis have stride inner =
// prod(dims[:axis]); there are inner*outer of them.
func fftAxis(data []complex128, dims []int, axis int, dir Direction) error {
	n := dims[axis]
	plan, err := NewPlan(n, dir)
	if err != nil {
		return err
	}
	inner := 1
	for k := 0; k < axis; k++ {
		inner *= dims[k]
	}
	outer := len(data) / (inner * n)
	line := make([]complex128, n)
	for o := 0; o < outer; o++ {
		base := o * inner * n
		for in := 0; in < inner; in++ {
			// Gather the strided line, transform, scatter back.
			for j := 0; j < n; j++ {
				line[j] = data[base+in+j*inner]
			}
			if err := plan.Execute(line, line); err != nil {
				return err
			}
			for j := 0; j < n; j++ {
				data[base+in+j*inner] = line[j]
			}
		}
	}
	return nil
}

// PowerSpectrum3D bins |F(k)|² of a cubic field into spherical shells of
// integer |k|, returning P(k) for k = 0..n/2. The field must already be
// Fourier transformed (length n³, column-major cube of side n). This is
// the final step of the paper's §2.3 pipeline ("compute the density over
// a grid ... then Fourier transform it and compute its power spectrum").
func PowerSpectrum3D(f []complex128, n int) ([]float64, []int, error) {
	if len(f) != n*n*n {
		return nil, nil, fmt.Errorf("%w: %d elements for %d^3", ErrSize, len(f), n)
	}
	nk := n/2 + 1
	power := make([]float64, nk)
	count := make([]int, nk)
	for kz := 0; kz < n; kz++ {
		fz := foldFreq(kz, n)
		for ky := 0; ky < n; ky++ {
			fy := foldFreq(ky, n)
			base := (kz*n + ky) * n
			for kx := 0; kx < n; kx++ {
				fx := foldFreq(kx, n)
				k2 := fx*fx + fy*fy + fz*fz
				kbin := isqrt(k2)
				if kbin >= nk {
					continue
				}
				v := f[base+kx]
				power[kbin] += real(v)*real(v) + imag(v)*imag(v)
				count[kbin]++
			}
		}
	}
	for i := range power {
		if count[i] > 0 {
			power[i] /= float64(count[i])
		}
	}
	return power, count, nil
}

// foldFreq maps a DFT index to its signed frequency.
func foldFreq(k, n int) int {
	if k > n/2 {
		return k - n
	}
	return k
}

func isqrt(x int) int {
	if x < 0 {
		return 0
	}
	r := 0
	for (r+1)*(r+1) <= x {
		r++
	}
	return r
}
