package interp

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func TestSchemeMetadata(t *testing.T) {
	cases := []struct {
		s      Scheme
		points int
	}{{Nearest, 1}, {Linear, 2}, {PCHIP, 4}, {Lag4, 4}, {Lag6, 6}, {Lag8, 8}}
	for _, c := range cases {
		if c.s.Points() != c.points {
			t.Errorf("%v.Points() = %d, want %d", c.s, c.s.Points(), c.points)
		}
		if c.s.String() == "" {
			t.Errorf("%v has empty name", c.s)
		}
	}
}

func TestLagrangeWeightsPartitionOfUnity(t *testing.T) {
	for _, np := range []int{4, 6, 8} {
		for _, tt := range []float64{0, 0.25, 0.5, 0.9} {
			w := make([]float64, np)
			lagrangeWeights(np, tt, w)
			sum := 0.0
			for _, v := range w {
				sum += v
			}
			if math.Abs(sum-1) > 1e-12 {
				t.Errorf("np=%d t=%g: weights sum to %g", np, tt, sum)
			}
		}
	}
}

func TestInterpolationExactAtNodes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	data := make([]float64, 32)
	for i := range data {
		data[i] = rng.NormFloat64()
	}
	for _, s := range []Scheme{Nearest, Linear, PCHIP, Lag4, Lag6, Lag8} {
		for i := 0; i < len(data); i++ {
			got := Periodic1D(data, float64(i), s)
			if math.Abs(got-data[i]) > 1e-12 {
				t.Errorf("%v at node %d: %g, want %g", s, i, got, data[i])
			}
		}
	}
}

func TestPolynomialReproduction(t *testing.T) {
	// A degree-(np-1) Lagrange stencil reproduces polynomials of that
	// degree exactly. Use a cubic on Lag4/Lag6/Lag8 interior points.
	n := 64
	cubic := func(x float64) float64 { return 0.5 + 0.25*x + 0.1*x*x - 0.002*x*x*x }
	data := make([]float64, n)
	for i := range data {
		data[i] = cubic(float64(i))
	}
	for _, s := range []Scheme{Lag4, Lag6, Lag8} {
		for _, x := range []float64{20.3, 25.75, 30.5} {
			got := Periodic1D(data, x, s)
			want := cubic(x)
			if math.Abs(got-want) > 1e-9 {
				t.Errorf("%v at %g: %g, want %g", s, x, got, want)
			}
		}
	}
}

func TestHigherOrderConvergesOnSmoothSignal(t *testing.T) {
	// Interpolating a sine off-grid: error(Lag8) < error(Lag4) < error(Linear).
	n := 32
	data := make([]float64, n)
	for i := range data {
		data[i] = math.Sin(2 * math.Pi * float64(i) / float64(n))
	}
	truth := func(x float64) float64 { return math.Sin(2 * math.Pi * x / float64(n)) }
	maxErrFor := func(s Scheme) float64 {
		worst := 0.0
		for k := 0; k < 200; k++ {
			x := float64(k) * float64(n) / 200
			if e := math.Abs(Periodic1D(data, x, s) - truth(x)); e > worst {
				worst = e
			}
		}
		return worst
	}
	eLin, e4, e8 := maxErrFor(Linear), maxErrFor(Lag4), maxErrFor(Lag8)
	if !(e8 < e4 && e4 < eLin) {
		t.Errorf("errors not ordered: linear %g, lag4 %g, lag8 %g", eLin, e4, e8)
	}
}

func TestPeriodicWrapping(t *testing.T) {
	data := []float64{1, 2, 3, 4}
	for _, s := range []Scheme{Linear, Lag4, PCHIP} {
		a := Periodic1D(data, 0.5, s)
		b := Periodic1D(data, 4.5, s)  // one period later
		c := Periodic1D(data, -3.5, s) // one period earlier
		if math.Abs(a-b) > 1e-12 || math.Abs(a-c) > 1e-12 {
			t.Errorf("%v: wrap mismatch %g / %g / %g", s, a, b, c)
		}
	}
	if !math.IsNaN(Periodic1D(nil, 0, Linear)) {
		t.Error("empty data must yield NaN")
	}
}

func TestPCHIPMonotonicityPreserved(t *testing.T) {
	// Monotone data: PCHIP must not overshoot, unlike Lagrange.
	data := []float64{0, 0, 0, 1, 1, 1, 2, 8, 8, 8}
	xs, ys := make([]float64, len(data)), data
	for i := range xs {
		xs[i] = float64(i)
	}
	prev := math.Inf(-1)
	for k := 0; k <= 90; k++ {
		x := float64(k) / 10
		v, err := NonUniform1D(xs, ys, x, PCHIP)
		if err != nil {
			t.Fatalf("at %g: %v", x, err)
		}
		if v < prev-1e-12 {
			t.Fatalf("PCHIP not monotone at %g: %g < %g", x, v, prev)
		}
		prev = v
	}
}

func TestNonUniform1D(t *testing.T) {
	xs := []float64{0, 1, 3, 6, 10}
	ys := []float64{0, 2, 6, 12, 20} // y = 2x: linear, all schemes exact
	for _, s := range []Scheme{Linear, PCHIP} {
		for _, x := range []float64{0, 0.5, 2, 5.5, 10} {
			v, err := NonUniform1D(xs, ys, x, s)
			if err != nil {
				t.Fatalf("%v at %g: %v", s, x, err)
			}
			if math.Abs(v-2*x) > 1e-12 {
				t.Errorf("%v at %g: %g, want %g", s, x, v, 2*x)
			}
		}
	}
	if _, err := NonUniform1D(xs, ys, -1, Linear); !errors.Is(err, ErrDomain) {
		t.Errorf("below domain: %v", err)
	}
	if _, err := NonUniform1D(xs, ys, 11, Linear); !errors.Is(err, ErrDomain) {
		t.Errorf("above domain: %v", err)
	}
	if _, err := NonUniform1D(xs, ys[:2], 1, Linear); err == nil {
		t.Error("length mismatch must fail")
	}
	if _, err := NonUniform1D(xs, ys, 1, Lag8); err == nil {
		t.Error("unsupported scheme must fail")
	}
	// Nearest picks the closer node.
	v, _ := NonUniform1D(xs, ys, 0.4, Nearest)
	if v != 0 {
		t.Errorf("nearest(0.4) = %g", v)
	}
	v, _ = NonUniform1D(xs, ys, 0.6, Nearest)
	if v != 2 {
		t.Errorf("nearest(0.6) = %g", v)
	}
}

func TestGrid3DSampleExactAtNodes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 8
	data := make([]float64, n*n*n)
	for i := range data {
		data[i] = rng.NormFloat64()
	}
	g, err := NewGrid3D(n, data)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []Scheme{Nearest, Linear, Lag4, Lag6, Lag8} {
		for trial := 0; trial < 20; trial++ {
			x, y, z := rng.Intn(n), rng.Intn(n), rng.Intn(n)
			got := g.Sample(float64(x), float64(y), float64(z), s)
			want := g.At(x, y, z)
			if math.Abs(got-want) > 1e-12 {
				t.Errorf("%v at (%d,%d,%d): %g, want %g", s, x, y, z, got, want)
			}
		}
	}
	if _, err := NewGrid3D(3, data); err == nil {
		t.Error("bad grid size must fail")
	}
}

func TestGrid3DTrilinearKnown(t *testing.T) {
	// f(x,y,z) = x + 10y + 100z is trilinear: Linear sampling is exact.
	n := 4
	data := make([]float64, n*n*n)
	for z := 0; z < n; z++ {
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				data[(z*n+y)*n+x] = float64(x) + 10*float64(y) + 100*float64(z)
			}
		}
	}
	g, _ := NewGrid3D(n, data)
	got := g.Sample(1.5, 0.25, 2.75, Linear)
	want := 1.5 + 10*0.25 + 100*2.75
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("trilinear = %g, want %g", got, want)
	}
}

func TestGrid3DSmoothFieldAccuracy(t *testing.T) {
	// An 8-point kernel on a band-limited field: error far below linear.
	n := 16
	f := func(x, y, z float64) float64 {
		k := 2 * math.Pi / float64(n)
		return math.Sin(k*x)*math.Cos(2*k*y) + 0.5*math.Sin(k*z)
	}
	data := make([]float64, n*n*n)
	for z := 0; z < n; z++ {
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				data[(z*n+y)*n+x] = f(float64(x), float64(y), float64(z))
			}
		}
	}
	g, _ := NewGrid3D(n, data)
	rng := rand.New(rand.NewSource(3))
	var eLin, e8 float64
	for trial := 0; trial < 100; trial++ {
		x := rng.Float64() * float64(n)
		y := rng.Float64() * float64(n)
		z := rng.Float64() * float64(n)
		want := f(x, y, z)
		if e := math.Abs(g.Sample(x, y, z, Linear) - want); e > eLin {
			eLin = e
		}
		if e := math.Abs(g.Sample(x, y, z, Lag8) - want); e > e8 {
			e8 = e
		}
	}
	if e8 > eLin/10 {
		t.Errorf("Lag8 error %g not clearly better than linear %g", e8, eLin)
	}
}
