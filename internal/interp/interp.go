// Package interp implements the interpolation kernels the paper's
// turbulence service exposes (§2.1): nearest point, PCHIP (monotone
// piecewise cubic Hermite), and 4/6/8-point Lagrangian schemes, in 1-D
// and as tensor products over 3-D periodic grids — the "convolve an 8³
// neighborhood with an 8³ interpolation kernel" operation.
package interp

import (
	"errors"
	"fmt"
	"math"
)

// Scheme selects an interpolation method.
type Scheme uint8

// Supported schemes; LagN uses N points (N/2 on each side).
const (
	Nearest Scheme = iota
	Linear
	PCHIP
	Lag4
	Lag6
	Lag8
)

// String names the scheme.
func (s Scheme) String() string {
	switch s {
	case Nearest:
		return "nearest"
	case Linear:
		return "linear"
	case PCHIP:
		return "pchip"
	case Lag4:
		return "lag4"
	case Lag6:
		return "lag6"
	case Lag8:
		return "lag8"
	}
	return fmt.Sprintf("Scheme(%d)", uint8(s))
}

// Points returns the stencil width of the scheme.
func (s Scheme) Points() int {
	switch s {
	case Nearest:
		return 1
	case Linear:
		return 2
	case PCHIP, Lag4:
		return 4
	case Lag6:
		return 6
	case Lag8:
		return 8
	}
	return 0
}

// ErrDomain reports an interpolation point outside the sample domain.
var ErrDomain = errors.New("interp: point outside domain")

// lagrangeWeights fills w with the Lagrange basis values for np stencil
// points at offsets (-np/2+1 .. np/2) relative to the base index, for a
// fractional position t in [0,1) between points np/2-1 and np/2.
func lagrangeWeights(np int, t float64, w []float64) {
	// Node positions: x_k = k - (np/2 - 1), so t lives between node
	// np/2-1 (x=0) and node np/2 (x=1).
	for k := 0; k < np; k++ {
		xk := float64(k - (np/2 - 1))
		num, den := 1.0, 1.0
		for j := 0; j < np; j++ {
			if j == k {
				continue
			}
			xj := float64(j - (np/2 - 1))
			num *= t - xj
			den *= xk - xj
		}
		w[k] = num / den
	}
}

// Periodic1D interpolates a uniformly sampled periodic signal of length
// n at fractional index x (in grid units; any real value, wrapped).
func Periodic1D(data []float64, x float64, scheme Scheme) float64 {
	n := len(data)
	if n == 0 {
		return math.NaN()
	}
	xw := math.Mod(x, float64(n))
	if xw < 0 {
		xw += float64(n)
	}
	i0 := int(math.Floor(xw))
	t := xw - float64(i0)
	wrap := func(i int) int {
		i %= n
		if i < 0 {
			i += n
		}
		return i
	}
	switch scheme {
	case Nearest:
		return data[wrap(i0+int(math.Round(t)))]
	case Linear:
		return (1-t)*data[wrap(i0)] + t*data[wrap(i0+1)]
	case PCHIP:
		ym1, y0, y1, y2 := data[wrap(i0-1)], data[wrap(i0)], data[wrap(i0+1)], data[wrap(i0+2)]
		return pchipSegment(ym1, y0, y1, y2, t)
	case Lag4, Lag6, Lag8:
		np := scheme.Points()
		var w [8]float64
		lagrangeWeights(np, t, w[:np])
		base := i0 - (np/2 - 1)
		s := 0.0
		for k := 0; k < np; k++ {
			s += w[k] * data[wrap(base+k)]
		}
		return s
	}
	return math.NaN()
}

// pchipSegment evaluates the Fritsch-Carlson monotone cubic on the
// middle interval of four uniformly spaced samples.
func pchipSegment(ym1, y0, y1, y2, t float64) float64 {
	d0 := pchipSlope(y0-ym1, y1-y0)
	d1 := pchipSlope(y1-y0, y2-y1)
	h00 := (1 + 2*t) * (1 - t) * (1 - t)
	h10 := t * (1 - t) * (1 - t)
	h01 := t * t * (3 - 2*t)
	h11 := t * t * (t - 1)
	return h00*y0 + h10*d0 + h01*y1 + h11*d1
}

// pchipSlope limits the derivative so the interpolant preserves
// monotonicity (harmonic mean of one-sided slopes, zero across extrema).
func pchipSlope(sL, sR float64) float64 {
	if sL*sR <= 0 {
		return 0
	}
	return 2 * sL * sR / (sL + sR)
}

// Grid3D is a scalar field sampled on an N³ periodic lattice in
// column-major order (x fastest), the in-memory form of a turbulence
// blob component.
type Grid3D struct {
	N    int
	Data []float64
}

// NewGrid3D wraps data as an n³ field.
func NewGrid3D(n int, data []float64) (*Grid3D, error) {
	if len(data) != n*n*n {
		return nil, fmt.Errorf("interp: %d samples for %d^3 grid", len(data), n)
	}
	return &Grid3D{N: n, Data: data}, nil
}

// At returns the sample at integer coordinates, wrapped periodically.
func (g *Grid3D) At(x, y, z int) float64 {
	n := g.N
	x, y, z = wrapIdx(x, n), wrapIdx(y, n), wrapIdx(z, n)
	return g.Data[(z*n+y)*n+x]
}

func wrapIdx(i, n int) int {
	i %= n
	if i < 0 {
		i += n
	}
	return i
}

// Sample interpolates the field at a real position (in grid units) with
// a tensor-product stencil: weights along each axis multiply, so an
// 8-point scheme convolves an 8³ neighborhood exactly as §2.1 describes.
func (g *Grid3D) Sample(x, y, z float64, scheme Scheme) float64 {
	if scheme == Nearest {
		return g.At(int(math.Round(x)), int(math.Round(y)), int(math.Round(z)))
	}
	np := scheme.Points()
	ix, tx := splitFrac(x, g.N)
	iy, ty := splitFrac(y, g.N)
	iz, tz := splitFrac(z, g.N)
	var wx, wy, wz [8]float64
	axisWeights(scheme, tx, wx[:np])
	axisWeights(scheme, ty, wy[:np])
	axisWeights(scheme, tz, wz[:np])
	base := np/2 - 1
	s := 0.0
	for kz := 0; kz < np; kz++ {
		wzk := wz[kz]
		if wzk == 0 {
			continue
		}
		for ky := 0; ky < np; ky++ {
			wyk := wy[ky] * wzk
			if wyk == 0 {
				continue
			}
			for kx := 0; kx < np; kx++ {
				s += wx[kx] * wyk * g.At(ix-base+kx, iy-base+ky, iz-base+kz)
			}
		}
	}
	return s
}

// axisWeights computes per-axis stencil weights for non-nearest schemes.
// PCHIP is not separable in general; its tensor form uses the cubic
// Hermite weights derived from the 1-D case with slope limiting applied
// per axis line — here we use the Lagrange-4 weights as its tensor
// surrogate and keep exact PCHIP for 1-D series, documenting the
// substitution (the turbulence DB's PCHIP is likewise a per-axis
// construction).
func axisWeights(scheme Scheme, t float64, w []float64) {
	switch scheme {
	case Linear:
		w[0], w[1] = 1-t, t
	case PCHIP, Lag4:
		lagrangeWeights(4, t, w)
	case Lag6:
		lagrangeWeights(6, t, w)
	case Lag8:
		lagrangeWeights(8, t, w)
	}
}

func splitFrac(x float64, n int) (int, float64) {
	xw := math.Mod(x, float64(n))
	if xw < 0 {
		xw += float64(n)
	}
	i := int(math.Floor(xw))
	return i, xw - float64(i)
}

// NonUniform1D interpolates a monotonically increasing abscissa
// (xs, ys) at x. PCHIP and Linear are supported; points outside the
// domain return ErrDomain. Spectrum resampling (§2.2) uses this for
// wavelength grids, which "can change from observation to observation"
// and are "usually not linear".
func NonUniform1D(xs, ys []float64, x float64, scheme Scheme) (float64, error) {
	n := len(xs)
	if n == 0 || len(ys) != n {
		return 0, fmt.Errorf("interp: bad series lengths %d/%d", len(xs), len(ys))
	}
	if x < xs[0] || x > xs[n-1] {
		return 0, fmt.Errorf("%w: %g outside [%g,%g]", ErrDomain, x, xs[0], xs[n-1])
	}
	// Binary search for the segment.
	lo, hi := 0, n-1
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if xs[mid] <= x {
			lo = mid
		} else {
			hi = mid
		}
	}
	h := xs[hi] - xs[lo]
	if h == 0 {
		return ys[lo], nil
	}
	t := (x - xs[lo]) / h
	switch scheme {
	case Nearest:
		if t < 0.5 {
			return ys[lo], nil
		}
		return ys[hi], nil
	case Linear:
		return (1-t)*ys[lo] + t*ys[hi], nil
	case PCHIP:
		d0 := nonUniformSlope(xs, ys, lo)
		d1 := nonUniformSlope(xs, ys, hi)
		h00 := (1 + 2*t) * (1 - t) * (1 - t)
		h10 := t * (1 - t) * (1 - t)
		h01 := t * t * (3 - 2*t)
		h11 := t * t * (t - 1)
		return h00*ys[lo] + h10*h*d0 + h01*ys[hi] + h11*h*d1, nil
	}
	return 0, fmt.Errorf("interp: scheme %v unsupported on non-uniform grids", scheme)
}

// nonUniformSlope computes the limited PCHIP derivative at node i.
func nonUniformSlope(xs, ys []float64, i int) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	if i == 0 {
		return (ys[1] - ys[0]) / (xs[1] - xs[0])
	}
	if i == n-1 {
		return (ys[n-1] - ys[n-2]) / (xs[n-1] - xs[n-2])
	}
	hL := xs[i] - xs[i-1]
	hR := xs[i+1] - xs[i]
	sL := (ys[i] - ys[i-1]) / hL
	sR := (ys[i+1] - ys[i]) / hR
	if sL*sR <= 0 {
		return 0
	}
	// Weighted harmonic mean (Fritsch-Carlson).
	w1 := 2*hR + hL
	w2 := hR + 2*hL
	return (w1 + w2) / (w1/sL + w2/sR)
}
