package btree

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"sqlarray/internal/pages"
)

func newTestTree(t *testing.T, poolPages int) *Tree {
	t.Helper()
	bp := pages.NewBufferPool(pages.NewMemDisk(), poolPages)
	tr, err := New(bp)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func val(i int64) []byte {
	var b [16]byte
	binary.LittleEndian.PutUint64(b[:], uint64(i))
	binary.LittleEndian.PutUint64(b[8:], uint64(i*7))
	return b[:]
}

func TestInsertGetSingleLeaf(t *testing.T) {
	tr := newTestTree(t, 16)
	for i := int64(0); i < 50; i++ {
		if err := tr.Insert(i, val(i)); err != nil {
			t.Fatalf("Insert %d: %v", i, err)
		}
	}
	if tr.Len() != 50 {
		t.Errorf("Len = %d", tr.Len())
	}
	if tr.Height() != 1 {
		t.Errorf("50 small records should fit one leaf; height = %d", tr.Height())
	}
	for i := int64(0); i < 50; i++ {
		got, err := tr.Get(i)
		if err != nil {
			t.Fatalf("Get %d: %v", i, err)
		}
		if binary.LittleEndian.Uint64(got[8:]) != uint64(i*7) {
			t.Errorf("Get %d payload mismatch", i)
		}
	}
	if _, err := tr.Get(999); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing key: %v", err)
	}
}

func TestInsertDuplicate(t *testing.T) {
	tr := newTestTree(t, 16)
	if err := tr.Insert(1, val(1)); err != nil {
		t.Fatal(err)
	}
	if err := tr.Insert(1, val(2)); !errors.Is(err, ErrDuplicate) {
		t.Errorf("duplicate insert: %v", err)
	}
	// Put overwrites.
	if err := tr.Put(1, []byte("replaced")); err != nil {
		t.Fatal(err)
	}
	got, err := tr.Get(1)
	if err != nil || string(got) != "replaced" {
		t.Errorf("after Put: %q, %v", got, err)
	}
	if tr.Len() != 1 {
		t.Errorf("Len = %d after overwrite", tr.Len())
	}
}

func TestSplitsSequentialInsert(t *testing.T) {
	tr := newTestTree(t, 256)
	const n = 20000
	for i := int64(0); i < n; i++ {
		if err := tr.Insert(i, val(i)); err != nil {
			t.Fatalf("Insert %d: %v", i, err)
		}
	}
	if tr.Height() < 2 {
		t.Errorf("20k records should split; height = %d", tr.Height())
	}
	for _, k := range []int64{0, 1, n / 2, n - 2, n - 1} {
		got, err := tr.Get(k)
		if err != nil {
			t.Fatalf("Get %d: %v", k, err)
		}
		if binary.LittleEndian.Uint64(got) != uint64(k) {
			t.Errorf("Get %d wrong payload", k)
		}
	}
}

func TestRandomInsertMatchesMapProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	tr := newTestTree(t, 512)
	ref := make(map[int64][]byte)
	for i := 0; i < 30000; i++ {
		k := int64(rng.Intn(10000))
		v := val(int64(rng.Intn(1 << 30)))
		if _, ok := ref[k]; ok {
			if err := tr.Put(k, v); err != nil {
				t.Fatalf("Put %d: %v", k, err)
			}
		} else {
			if err := tr.Insert(k, v); err != nil {
				t.Fatalf("Insert %d: %v", k, err)
			}
		}
		ref[k] = v
	}
	if tr.Len() != len(ref) {
		t.Fatalf("Len = %d, want %d", tr.Len(), len(ref))
	}
	for k, v := range ref {
		got, err := tr.Get(k)
		if err != nil {
			t.Fatalf("Get %d: %v", k, err)
		}
		if string(got) != string(v) {
			t.Fatalf("Get %d mismatch", k)
		}
	}
}

func TestScanOrdered(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tr := newTestTree(t, 512)
	keys := rng.Perm(5000)
	for _, k := range keys {
		if err := tr.Insert(int64(k), val(int64(k))); err != nil {
			t.Fatalf("Insert %d: %v", k, err)
		}
	}
	it, err := tr.Scan()
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	var got []int64
	for it.Next() {
		got = append(got, it.Key())
	}
	if it.Err() != nil {
		t.Fatal(it.Err())
	}
	if len(got) != 5000 {
		t.Fatalf("scanned %d keys", len(got))
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Error("scan not in key order")
	}
	for i, k := range got {
		if k != int64(i) {
			t.Fatalf("position %d = %d", i, k)
		}
	}
}

func TestScanFrom(t *testing.T) {
	tr := newTestTree(t, 256)
	for i := int64(0); i < 1000; i += 2 { // even keys only
		if err := tr.Insert(i, val(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Start at an absent odd key: first result is the next even key.
	it, err := tr.ScanFrom(501)
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	if !it.Next() {
		t.Fatal("no records from 501")
	}
	if it.Key() != 502 {
		t.Errorf("first key = %d, want 502", it.Key())
	}
	n := 1
	for it.Next() {
		n++
	}
	if n != 249 { // 502..998 step 2
		t.Errorf("scanned %d records, want 249", n)
	}
}

func TestDelete(t *testing.T) {
	tr := newTestTree(t, 256)
	for i := int64(0); i < 500; i++ {
		if err := tr.Insert(i, val(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := int64(0); i < 500; i += 3 {
		if err := tr.Delete(i); err != nil {
			t.Fatalf("Delete %d: %v", i, err)
		}
	}
	if err := tr.Delete(0); !errors.Is(err, ErrNotFound) {
		t.Errorf("double delete: %v", err)
	}
	for i := int64(0); i < 500; i++ {
		_, err := tr.Get(i)
		if i%3 == 0 {
			if !errors.Is(err, ErrNotFound) {
				t.Errorf("deleted %d still present: %v", i, err)
			}
		} else if err != nil {
			t.Errorf("surviving %d: %v", i, err)
		}
	}
	want := 500 - (500+2)/3
	if tr.Len() != want {
		t.Errorf("Len = %d, want %d", tr.Len(), want)
	}
}

func TestLargeValuesForceEarlySplits(t *testing.T) {
	tr := newTestTree(t, 512)
	big := make([]byte, 3000)
	for i := int64(0); i < 100; i++ {
		copy(big, fmt.Sprintf("row-%03d", i))
		if err := tr.Insert(i, big); err != nil {
			t.Fatalf("Insert %d: %v", i, err)
		}
	}
	// Only 2 records/page -> deep-ish tree, all retrievable.
	for i := int64(0); i < 100; i++ {
		got, err := tr.Get(i)
		if err != nil || len(got) != 3000 {
			t.Fatalf("Get %d: %d bytes, %v", i, len(got), err)
		}
		if string(got[:7]) != fmt.Sprintf("row-%03d", i) {
			t.Errorf("Get %d payload mismatch: %q", i, got[:7])
		}
	}
	if err := tr.Insert(200, make([]byte, MaxValueSize+1)); !errors.Is(err, ErrTooBig) {
		t.Errorf("oversized value: %v", err)
	}
}

func TestPutGrowingValueAcrossSplitBoundary(t *testing.T) {
	tr := newTestTree(t, 256)
	// Fill a leaf almost exactly, then grow one value so the in-place
	// update fails and the remove+reinsert path (with split) runs.
	v := make([]byte, 1500)
	for i := int64(0); i < 5; i++ {
		if err := tr.Insert(i, v); err != nil {
			t.Fatal(err)
		}
	}
	grown := make([]byte, 2500)
	copy(grown, "grown-value")
	if err := tr.Put(2, grown); err != nil {
		t.Fatalf("growing Put: %v", err)
	}
	got, err := tr.Get(2)
	if err != nil || len(got) != 2500 || string(got[:11]) != "grown-value" {
		t.Fatalf("after grow: %d bytes, %v", len(got), err)
	}
	if tr.Len() != 5 {
		t.Errorf("Len = %d, want 5", tr.Len())
	}
}

func TestNegativeKeys(t *testing.T) {
	tr := newTestTree(t, 64)
	keys := []int64{-100, -1, 0, 1, 100, -50, 50}
	for _, k := range keys {
		if err := tr.Insert(k, val(k)); err != nil {
			t.Fatalf("Insert %d: %v", k, err)
		}
	}
	it, err := tr.Scan()
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	var got []int64
	for it.Next() {
		got = append(got, it.Key())
	}
	want := []int64{-100, -50, -1, 0, 1, 50, 100}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("position %d = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestScanSurvivesSmallBufferPool(t *testing.T) {
	// Pool far smaller than the tree: the scan must not exhaust frames.
	bp := pages.NewBufferPool(pages.NewMemDisk(), 8)
	tr, err := New(bp)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 5000; i++ {
		if err := tr.Insert(i, val(i)); err != nil {
			t.Fatalf("Insert %d: %v", i, err)
		}
	}
	it, err := tr.Scan()
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	n := 0
	for it.Next() {
		n++
	}
	if it.Err() != nil {
		t.Fatal(it.Err())
	}
	if n != 5000 {
		t.Errorf("scanned %d", n)
	}
	if bp.Stats().Evictions == 0 {
		t.Error("expected evictions with an 8-frame pool")
	}
}

func TestScanRange(t *testing.T) {
	tr := newTestTree(t, 64)
	for i := int64(0); i < 500; i++ {
		if err := tr.Insert(i*2, val(i)); err != nil { // even keys 0..998
			t.Fatal(err)
		}
	}
	cases := []struct {
		lo, hi int64
		first  int64
		count  int
	}{
		{0, 998, 0, 500},
		{100, 200, 100, 51},
		{101, 199, 102, 49}, // bounds between keys
		{997, 2000, 998, 1},
		{999, 2000, 0, 0}, // past the end
		{-50, -1, 0, 0},   // before the start
		{10, 5, 0, 0},     // inverted
		{42, 42, 42, 1},   // point
		{43, 43, 0, 0},    // point miss
	}
	for _, c := range cases {
		it, err := tr.ScanRange(c.lo, c.hi)
		if err != nil {
			t.Fatalf("ScanRange(%d,%d): %v", c.lo, c.hi, err)
		}
		n := 0
		var first int64
		for it.Next() {
			if n == 0 {
				first = it.Key()
			}
			if it.Key() < c.lo || it.Key() > c.hi {
				t.Errorf("ScanRange(%d,%d) yielded out-of-range key %d", c.lo, c.hi, it.Key())
			}
			n++
		}
		if err := it.Err(); err != nil {
			t.Fatalf("ScanRange(%d,%d): %v", c.lo, c.hi, err)
		}
		it.Close()
		if n != c.count {
			t.Errorf("ScanRange(%d,%d) = %d keys, want %d", c.lo, c.hi, n, c.count)
		}
		if n > 0 && first != c.first {
			t.Errorf("ScanRange(%d,%d) first = %d, want %d", c.lo, c.hi, first, c.first)
		}
	}
	if got := tr.bp.PinnedFrames(); got != 0 {
		t.Errorf("PinnedFrames after range scans = %d", got)
	}
}

func TestScanRangeUnpinsOnBoundStop(t *testing.T) {
	tr := newTestTree(t, 64)
	for i := int64(0); i < 2000; i++ {
		if err := tr.Insert(i, val(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Exhaust a bounded iterator WITHOUT calling Close: hitting the upper
	// bound must release the pinned leaf on its own.
	it, err := tr.ScanRange(100, 110)
	if err != nil {
		t.Fatal(err)
	}
	for it.Next() {
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	if got := tr.bp.PinnedFrames(); got != 0 {
		t.Errorf("PinnedFrames after bound-terminated scan (no Close) = %d, want 0", got)
	}
	it.Close() // still safe

	// Early Close mid-range must unpin too (the TOP-n path).
	it, err = tr.ScanRange(0, 1999)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if !it.Next() {
			t.Fatal("short scan")
		}
	}
	if got := tr.bp.PinnedFrames(); got != 1 {
		t.Errorf("PinnedFrames mid-scan = %d, want 1", got)
	}
	it.Close()
	if got := tr.bp.PinnedFrames(); got != 0 {
		t.Errorf("PinnedFrames after early Close = %d, want 0", got)
	}
	if err := tr.bp.DropCleanBuffers(); err != nil {
		t.Errorf("DropCleanBuffers after early Close: %v", err)
	}
}

func TestBounds(t *testing.T) {
	tr := newTestTree(t, 64)
	if _, _, ok, err := tr.Bounds(); err != nil || ok {
		t.Fatalf("empty tree Bounds: ok=%v err=%v", ok, err)
	}
	keys := []int64{42, -17, 9000, 3, 512}
	for _, k := range keys {
		if err := tr.Insert(k, val(k)); err != nil {
			t.Fatal(err)
		}
	}
	min, max, ok, err := tr.Bounds()
	if err != nil || !ok {
		t.Fatalf("Bounds: ok=%v err=%v", ok, err)
	}
	if min != -17 || max != 9000 {
		t.Errorf("Bounds = [%d, %d], want [-17, 9000]", min, max)
	}
	// Grow across splits and re-check.
	for i := int64(0); i < 3000; i++ {
		if err := tr.Put(i*3, val(i)); err != nil {
			t.Fatal(err)
		}
	}
	min, max, ok, err = tr.Bounds()
	if err != nil || !ok {
		t.Fatal(err)
	}
	if min != -17 || max != 9000 {
		t.Errorf("Bounds after growth = [%d, %d], want [-17, 9000]", min, max)
	}
	if got := tr.bp.PinnedFrames(); got != 0 {
		t.Errorf("PinnedFrames after Bounds = %d", got)
	}
}

func TestBoundsAfterDeletingMax(t *testing.T) {
	tr := newTestTree(t, 64)
	for i := int64(0); i < 1000; i++ {
		if err := tr.Insert(i, val(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Lazy deletion can leave the rightmost leaf empty; maxKey must walk
	// the prev chain past it.
	for i := int64(400); i < 1000; i++ {
		if err := tr.Delete(i); err != nil {
			t.Fatal(err)
		}
	}
	_, max, ok, err := tr.Bounds()
	if err != nil || !ok {
		t.Fatalf("Bounds after deletes: ok=%v err=%v", ok, err)
	}
	if max != 399 {
		t.Errorf("max after deletes = %d, want 399", max)
	}
}
