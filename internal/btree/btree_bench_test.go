package btree

import (
	"testing"

	"sqlarray/internal/pages"
)

func benchTree(b *testing.B, n int) *Tree {
	b.Helper()
	bp := pages.NewBufferPool(pages.NewMemDisk(), 1<<16)
	tr, err := New(bp)
	if err != nil {
		b.Fatal(err)
	}
	for i := int64(0); i < int64(n); i++ {
		if err := tr.Insert(i, val(i)); err != nil {
			b.Fatal(err)
		}
	}
	return tr
}

func BenchmarkInsertSequential(b *testing.B) {
	bp := pages.NewBufferPool(pages.NewMemDisk(), 1<<16)
	tr, err := New(bp)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tr.Insert(int64(i), val(int64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGet(b *testing.B) {
	tr := benchTree(b, 100_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.Get(int64(i % 100_000)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScan100k(b *testing.B) {
	tr := benchTree(b, 100_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it, err := tr.Scan()
		if err != nil {
			b.Fatal(err)
		}
		n := 0
		for it.Next() {
			n++
		}
		it.Close()
		if n != 100_000 {
			b.Fatalf("scanned %d", n)
		}
	}
	b.ReportMetric(100_000, "rows/op")
}
