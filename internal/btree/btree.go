// Package btree implements the clustered B+tree that backs sqlarray
// engine tables: 64-bit keys mapping to variable-length row images,
// stored on 8 kB pages, with leaf pages chained for ordered scans —
// the "clustered index scan" access path of the paper's Table 1 queries.
package btree

import (
	"encoding/binary"
	"errors"
	"fmt"

	"sqlarray/internal/pages"
)

// Errors returned by the B-tree.
var (
	ErrNotFound  = errors.New("btree: key not found")
	ErrDuplicate = errors.New("btree: duplicate key")
	ErrTooBig    = errors.New("btree: value too large for a page")
)

// MaxValueSize is the largest value insertable (key + value must fit a
// page record).
const MaxValueSize = pages.MaxRecordSize - 8

// Tree is a clustered B+tree over a buffer pool. It is not safe for
// concurrent mutation; the engine serializes writers per table.
//
// Read descents go through fx, which is the pool itself for writer
// trees and a pages.Snapshot for frozen read views (see OpenFetch).
// Mutations always go through bp and are only legal on writer trees.
type Tree struct {
	bp   *pages.BufferPool
	fx   pages.Fetcher
	root pages.PageID
	// height counts levels (1 = root is a leaf).
	height int
	count  int
}

// internal node records: 8-byte separator key + 4-byte child page id.
// Record i covers keys >= key_i (record 0's key is the subtree minimum).
const internalRecSize = 12

// New creates an empty tree whose pages are allocated from bp.
func New(bp *pages.BufferPool) (*Tree, error) {
	f, err := bp.NewPage(pages.TypeData)
	if err != nil {
		return nil, err
	}
	root := f.Page.ID
	bp.Unpin(f, true)
	return &Tree{bp: bp, fx: bp, root: root, height: 1}, nil
}

// Open attaches to an existing tree given its root page. The caller
// supplies the persisted height and count (the engine catalog stores
// them).
func Open(bp *pages.BufferPool, root pages.PageID, height, count int) *Tree {
	return &Tree{bp: bp, fx: bp, root: root, height: height, count: count}
}

// OpenFetch attaches a read-only tree whose page fetches resolve
// through fx — typically a pages.Snapshot, giving a scan a frozen view
// of the tree as of a commit. Mutating a tree opened this way is a
// programming error (there is no pool to allocate from).
func OpenFetch(fx pages.Fetcher, root pages.PageID, height, count int) *Tree {
	return &Tree{fx: fx, root: root, height: height, count: count}
}

// Root returns the current root page id (it changes on root splits).
func (t *Tree) Root() pages.PageID { return t.root }

// Height returns the number of levels.
func (t *Tree) Height() int { return t.height }

// Len returns the number of stored keys.
func (t *Tree) Len() int { return t.count }

func leafKey(rec []byte) int64 {
	return int64(binary.LittleEndian.Uint64(rec))
}

func encodeLeafRec(key int64, val []byte) []byte {
	rec := make([]byte, 8+len(val))
	binary.LittleEndian.PutUint64(rec, uint64(key))
	copy(rec[8:], val)
	return rec
}

func encodeInternalRec(key int64, child pages.PageID) []byte {
	var rec [internalRecSize]byte
	binary.LittleEndian.PutUint64(rec[:], uint64(key))
	binary.LittleEndian.PutUint32(rec[8:], uint32(child))
	return rec[:]
}

func decodeInternalRec(rec []byte) (int64, pages.PageID) {
	return int64(binary.LittleEndian.Uint64(rec)),
		pages.PageID(binary.LittleEndian.Uint32(rec[8:]))
}

// searchSlot finds the position of key in a node. For leaves it returns
// (slot, true) on an exact match or (insertPos, false). For internal
// nodes it returns the child slot to descend into.
func searchSlot(p *pages.Page, key int64) (int, bool) {
	lo, hi := 0, p.NumSlots()
	for lo < hi {
		mid := (lo + hi) / 2
		rec, err := p.Record(mid)
		if err != nil {
			// Dense nodes never have dead slots; treat as not found.
			hi = mid
			continue
		}
		k := leafKey(rec) // both node kinds store the key first
		switch {
		case k == key:
			return mid, true
		case k < key:
			lo = mid + 1
		default:
			hi = mid
		}
	}
	return lo, false
}

// childFor picks the internal-node slot whose subtree covers key.
func childFor(p *pages.Page, key int64) int {
	pos, exact := searchSlot(p, key)
	if exact {
		return pos
	}
	if pos == 0 {
		return 0
	}
	return pos - 1
}

// Get returns the value stored for key. The returned slice is a copy.
func (t *Tree) Get(key int64) ([]byte, error) {
	id := t.root
	for level := t.height; level > 1; level-- {
		f, err := t.fx.Fetch(id)
		if err != nil {
			return nil, err
		}
		slot := childFor(&f.Page, key)
		rec, err := f.Page.Record(slot)
		if err != nil {
			t.fx.Unpin(f, false)
			return nil, fmt.Errorf("btree: corrupt internal node %d: %w", id, err)
		}
		_, child := decodeInternalRec(rec)
		t.fx.Unpin(f, false)
		id = child
	}
	f, err := t.fx.Fetch(id)
	if err != nil {
		return nil, err
	}
	defer t.fx.Unpin(f, false)
	slot, ok := searchSlot(&f.Page, key)
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrNotFound, key)
	}
	rec, err := f.Page.Record(slot)
	if err != nil {
		return nil, err
	}
	return append([]byte(nil), rec[8:]...), nil
}

// splitResult carries a completed child split up the recursion.
type splitResult struct {
	split  bool
	sepKey int64
	right  pages.PageID
}

// Insert stores key -> val, failing on duplicates.
func (t *Tree) Insert(key int64, val []byte) error {
	return t.put(key, val, false)
}

// Put stores key -> val, overwriting an existing value.
func (t *Tree) Put(key int64, val []byte) error {
	return t.put(key, val, true)
}

func (t *Tree) put(key int64, val []byte, overwrite bool) error {
	if len(val) > MaxValueSize {
		return fmt.Errorf("%w: %d bytes > %d", ErrTooBig, len(val), MaxValueSize)
	}
	res, err := t.insertInto(t.root, t.height, key, val, overwrite)
	if err != nil {
		return err
	}
	if res.split {
		// Grow a new root.
		f, err := t.bp.NewPage(pages.TypeIndex)
		if err != nil {
			return err
		}
		// Left entry uses the old root's minimum; any key <= sep works,
		// we use math.MinInt64 semantics via the smallest stored key: the
		// descent only compares >=, so storing the separator of the left
		// subtree as "minimum possible" is simplest.
		if err := f.Page.InsertAt(0, encodeInternalRec(minInt64, t.root)); err != nil {
			t.bp.Unpin(f, true)
			return err
		}
		if err := f.Page.InsertAt(1, encodeInternalRec(res.sepKey, res.right)); err != nil {
			t.bp.Unpin(f, true)
			return err
		}
		t.root = f.Page.ID
		t.height++
		t.bp.Unpin(f, true)
	}
	return nil
}

const minInt64 = -1 << 63

func (t *Tree) insertInto(id pages.PageID, level int, key int64, val []byte, overwrite bool) (splitResult, error) {
	if level == 1 {
		f, err := t.bp.FetchForWrite(id)
		if err != nil {
			return splitResult{}, err
		}
		res, err := t.insertLeaf(f, key, val, overwrite)
		t.bp.Unpin(f, true)
		return res, err
	}
	f, err := t.bp.Fetch(id)
	if err != nil {
		return splitResult{}, err
	}
	slot := childFor(&f.Page, key)
	rec, err := f.Page.Record(slot)
	if err != nil {
		t.bp.Unpin(f, false)
		return splitResult{}, fmt.Errorf("btree: corrupt internal node %d: %w", id, err)
	}
	_, child := decodeInternalRec(rec)
	t.bp.Unpin(f, false) // release before recursing; re-fetch if child split

	res, err := t.insertInto(child, level-1, key, val, overwrite)
	if err != nil || !res.split {
		return splitResult{}, err
	}
	// Insert the new separator into this node.
	f, err = t.bp.FetchForWrite(id)
	if err != nil {
		return splitResult{}, err
	}
	pos, _ := searchSlot(&f.Page, res.sepKey)
	entry := encodeInternalRec(res.sepKey, res.right)
	if err := f.Page.InsertAt(pos, entry); err == nil {
		t.bp.Unpin(f, true)
		return splitResult{}, nil
	} else if !errors.Is(err, pages.ErrPageFull) {
		t.bp.Unpin(f, false)
		return splitResult{}, err
	}
	// Split this internal node.
	out, err := t.splitNode(f, pages.TypeIndex)
	if err != nil {
		t.bp.Unpin(f, true)
		return splitResult{}, err
	}
	// Retry the separator insert into the proper half.
	target := f
	var targetIsRight bool
	if res.sepKey >= out.sepKey {
		targetIsRight = true
	}
	if targetIsRight {
		rf, err := t.bp.FetchForWrite(out.right)
		if err != nil {
			t.bp.Unpin(f, true)
			return splitResult{}, err
		}
		pos, _ := searchSlot(&rf.Page, res.sepKey)
		if err := rf.Page.InsertAt(pos, entry); err != nil {
			t.bp.Unpin(rf, true)
			t.bp.Unpin(f, true)
			return splitResult{}, err
		}
		t.bp.Unpin(rf, true)
	} else {
		pos, _ := searchSlot(&target.Page, res.sepKey)
		if err := target.Page.InsertAt(pos, entry); err != nil {
			t.bp.Unpin(f, true)
			return splitResult{}, err
		}
	}
	t.bp.Unpin(f, true)
	return out, nil
}

func (t *Tree) insertLeaf(f *pages.Frame, key int64, val []byte, overwrite bool) (splitResult, error) {
	slot, exact := searchSlot(&f.Page, key)
	if exact {
		if !overwrite {
			return splitResult{}, fmt.Errorf("%w: %d", ErrDuplicate, key)
		}
		rec := encodeLeafRec(key, val)
		if err := f.Page.Update(slot, rec); err == nil {
			return splitResult{}, nil
		} else if !errors.Is(err, pages.ErrPageFull) {
			return splitResult{}, err
		}
		// No room to grow in place: compact and retry once.
		f.Page.Compact()
		if err := f.Page.Update(slot, rec); err == nil {
			return splitResult{}, nil
		}
		// Remove + reinsert through the split path.
		if err := f.Page.RemoveAt(slot); err != nil {
			return splitResult{}, err
		}
		t.count--
	}
	rec := encodeLeafRec(key, val)
	pos, _ := searchSlot(&f.Page, key)
	if err := f.Page.InsertAt(pos, rec); err == nil {
		t.count++
		return splitResult{}, nil
	} else if !errors.Is(err, pages.ErrPageFull) {
		return splitResult{}, err
	}
	f.Page.Compact()
	if err := f.Page.InsertAt(pos, rec); err == nil {
		t.count++
		return splitResult{}, nil
	}
	out, err := t.splitNode(f, pages.TypeData)
	if err != nil {
		return splitResult{}, err
	}
	// Insert into the proper half.
	if key >= out.sepKey {
		rf, err := t.bp.FetchForWrite(out.right)
		if err != nil {
			return splitResult{}, err
		}
		pos, _ := searchSlot(&rf.Page, key)
		err = rf.Page.InsertAt(pos, rec)
		t.bp.Unpin(rf, true)
		if err != nil {
			return splitResult{}, err
		}
	} else {
		pos, _ := searchSlot(&f.Page, key)
		if err := f.Page.InsertAt(pos, rec); err != nil {
			return splitResult{}, err
		}
	}
	t.count++
	return out, nil
}

// splitNode moves the upper half of f's records into a fresh page and
// returns the separator. For leaves it maintains the sibling chain.
func (t *Tree) splitNode(f *pages.Frame, typ pages.PageType) (splitResult, error) {
	rf, err := t.bp.NewPage(typ)
	if err != nil {
		return splitResult{}, err
	}
	n := f.Page.NumSlots()
	half := n / 2
	sepRec, err := f.Page.Record(half)
	if err != nil {
		t.bp.Unpin(rf, true)
		return splitResult{}, err
	}
	sepKey := leafKey(sepRec)
	// Copy upper records to the right page.
	for i := half; i < n; i++ {
		rec, err := f.Page.Record(i)
		if err != nil {
			t.bp.Unpin(rf, true)
			return splitResult{}, err
		}
		if _, err := rf.Page.Insert(rec); err != nil {
			t.bp.Unpin(rf, true)
			return splitResult{}, err
		}
	}
	for i := n - 1; i >= half; i-- {
		if err := f.Page.RemoveAt(i); err != nil {
			t.bp.Unpin(rf, true)
			return splitResult{}, err
		}
	}
	f.Page.Compact()
	if typ == pages.TypeData {
		rf.Page.SetNext(f.Page.Next())
		rf.Page.SetPrev(f.Page.ID)
		if nxt := f.Page.Next(); nxt != pages.InvalidPageID {
			nf, err := t.bp.FetchForWrite(nxt)
			if err != nil {
				t.bp.Unpin(rf, true)
				return splitResult{}, err
			}
			nf.Page.SetPrev(rf.Page.ID)
			t.bp.Unpin(nf, true)
		}
		f.Page.SetNext(rf.Page.ID)
	}
	right := rf.Page.ID
	t.bp.Unpin(rf, true)
	return splitResult{split: true, sepKey: sepKey, right: right}, nil
}

// Delete removes key, returning ErrNotFound if absent. Nodes are not
// rebalanced (lazy deletion, like many production engines under light
// delete loads); space is reclaimed when pages are compacted on split.
func (t *Tree) Delete(key int64) error {
	id := t.root
	for level := t.height; level > 1; level-- {
		f, err := t.bp.Fetch(id)
		if err != nil {
			return err
		}
		slot := childFor(&f.Page, key)
		rec, err := f.Page.Record(slot)
		if err != nil {
			t.bp.Unpin(f, false)
			return fmt.Errorf("btree: corrupt internal node %d: %w", id, err)
		}
		_, child := decodeInternalRec(rec)
		t.bp.Unpin(f, false)
		id = child
	}
	f, err := t.bp.FetchForWrite(id)
	if err != nil {
		return err
	}
	slot, ok := searchSlot(&f.Page, key)
	if !ok {
		t.bp.Unpin(f, false)
		return fmt.Errorf("%w: %d", ErrNotFound, key)
	}
	err = f.Page.RemoveAt(slot)
	t.bp.Unpin(f, true)
	if err == nil {
		t.count--
	}
	return err
}

// LeafPageCount walks the leaf chain and returns the number of leaf
// pages — the clustered index's data footprint.
func (t *Tree) LeafPageCount() (int, error) {
	id, err := t.leftmostLeaf()
	if err != nil {
		return 0, err
	}
	n := 0
	for id != pages.InvalidPageID {
		f, err := t.fx.Fetch(id)
		if err != nil {
			return 0, err
		}
		n++
		next := f.Page.Next()
		t.fx.Unpin(f, false)
		id = next
	}
	return n, nil
}

// leftmostLeaf descends to the first leaf page.
func (t *Tree) leftmostLeaf() (pages.PageID, error) {
	id := t.root
	for level := t.height; level > 1; level-- {
		f, err := t.fx.Fetch(id)
		if err != nil {
			return 0, err
		}
		rec, err := f.Page.Record(0)
		if err != nil {
			t.fx.Unpin(f, false)
			return 0, err
		}
		_, child := decodeInternalRec(rec)
		t.fx.Unpin(f, false)
		id = child
	}
	return id, nil
}

// Bounds returns the smallest and largest keys currently stored. ok is
// false when the tree is empty. The parallel scan planner uses this to
// partition the key space across workers.
func (t *Tree) Bounds() (min, max int64, ok bool, err error) {
	it, err := t.Scan()
	if err != nil {
		return 0, 0, false, err
	}
	if !it.Next() {
		err := it.Err()
		it.Close()
		return 0, 0, false, err
	}
	min = it.Key()
	it.Close()
	max, ok, err = t.maxKey()
	if err != nil || !ok {
		return 0, 0, false, err
	}
	return min, max, true, nil
}

// maxKey walks to the rightmost leaf (following the prev chain past any
// leaves emptied by lazy deletion) and returns its last live key.
func (t *Tree) maxKey() (int64, bool, error) {
	id := t.root
	for level := t.height; level > 1; level-- {
		f, err := t.fx.Fetch(id)
		if err != nil {
			return 0, false, err
		}
		n := f.Page.NumSlots()
		if n == 0 {
			t.fx.Unpin(f, false)
			return 0, false, fmt.Errorf("btree: empty internal node %d", id)
		}
		rec, err := f.Page.Record(n - 1)
		if err != nil {
			t.fx.Unpin(f, false)
			return 0, false, fmt.Errorf("btree: corrupt internal node %d: %w", id, err)
		}
		_, child := decodeInternalRec(rec)
		t.fx.Unpin(f, false)
		id = child
	}
	for id != pages.InvalidPageID {
		f, err := t.fx.Fetch(id)
		if err != nil {
			return 0, false, err
		}
		for slot := f.Page.NumSlots() - 1; slot >= 0; slot-- {
			rec, err := f.Page.Record(slot)
			if err != nil {
				continue // dead slot
			}
			key := leafKey(rec)
			t.fx.Unpin(f, false)
			return key, true, nil
		}
		prev := f.Page.Prev()
		t.fx.Unpin(f, false)
		id = prev
	}
	return 0, false, nil
}

// leafFor descends to the leaf page that would contain key.
func (t *Tree) leafFor(key int64) (pages.PageID, error) {
	id := t.root
	for level := t.height; level > 1; level-- {
		f, err := t.fx.Fetch(id)
		if err != nil {
			return 0, err
		}
		slot := childFor(&f.Page, key)
		rec, err := f.Page.Record(slot)
		if err != nil {
			t.fx.Unpin(f, false)
			return 0, err
		}
		_, child := decodeInternalRec(rec)
		t.fx.Unpin(f, false)
		id = child
	}
	return id, nil
}
