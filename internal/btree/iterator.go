package btree

import (
	"sqlarray/internal/pages"
)

// Iterator walks leaf records in key order — the clustered index scan.
// Usage:
//
//	it, err := tree.Scan()
//	for it.Next() {
//	    key, val := it.Key(), it.Value()
//	}
//	err = it.Err()
//	it.Close()
//
// Value aliases the pinned page buffer and is only valid until the next
// call to Next or Close; copy to retain.
type Iterator struct {
	t       *Tree
	frame   *pages.Frame
	slot    int
	key     int64
	val     []byte
	err     error
	done    bool
	hi      int64
	bounded bool
}

// EmptyIterator returns an iterator positioned at the end: Next is
// immediately false, Close is a no-op. The engine hands these out for
// scans of tables that do not exist yet in a snapshot's view.
func EmptyIterator() *Iterator { return &Iterator{done: true} }

// Scan returns an iterator over the whole tree.
func (t *Tree) Scan() (*Iterator, error) {
	leaf, err := t.leftmostLeaf()
	if err != nil {
		return nil, err
	}
	return t.newIterator(leaf, 0)
}

// ScanFrom returns an iterator positioned at the first key >= start.
func (t *Tree) ScanFrom(start int64) (*Iterator, error) {
	leaf, err := t.leafFor(start)
	if err != nil {
		return nil, err
	}
	it, err := t.newIterator(leaf, 0)
	if err != nil {
		return nil, err
	}
	if it.frame != nil {
		slot, _ := searchSlot(&it.frame.Page, start)
		it.slot = slot
	}
	return it, nil
}

// ScanRange returns an iterator over keys in [lo, hi], both inclusive.
// The iterator stops — and releases its pinned page — as soon as it sees
// a key past hi, so a narrow range over a large tree touches only the
// pages the range spans plus the root-to-leaf descent.
func (t *Tree) ScanRange(lo, hi int64) (*Iterator, error) {
	if lo > hi {
		return &Iterator{t: t, done: true}, nil
	}
	it, err := t.ScanFrom(lo)
	if err != nil {
		return nil, err
	}
	it.hi = hi
	it.bounded = true
	return it, nil
}

func (t *Tree) newIterator(leaf pages.PageID, slot int) (*Iterator, error) {
	f, err := t.fx.Fetch(leaf)
	if err != nil {
		return nil, err
	}
	return &Iterator{t: t, frame: f, slot: slot}, nil
}

// Next advances to the next record, returning false at the end or on
// error (check Err).
func (it *Iterator) Next() bool {
	if it.done || it.err != nil {
		return false
	}
	for {
		if it.slot < it.frame.Page.NumSlots() {
			rec, err := it.frame.Page.Record(it.slot)
			it.slot++
			if err != nil {
				continue // skip dead slots
			}
			key := leafKey(rec)
			if it.bounded && key > it.hi {
				// Past the upper bound: the scan is over. Unpin now rather
				// than waiting for Close, so a bound-terminated scan leaves
				// no pinned pages even if the caller forgets to Close.
				it.t.fx.Unpin(it.frame, false)
				it.frame = nil
				it.done = true
				return false
			}
			it.key = key
			it.val = rec[8:]
			return true
		}
		next := it.frame.Page.Next()
		it.t.fx.Unpin(it.frame, false)
		it.frame = nil
		if next == pages.InvalidPageID {
			it.done = true
			return false
		}
		f, err := it.t.fx.Fetch(next)
		if err != nil {
			it.err = err
			it.done = true
			return false
		}
		it.frame = f
		it.slot = 0
	}
}

// Key returns the current record's key.
func (it *Iterator) Key() int64 { return it.key }

// Value returns the current record's value, aliasing the page buffer.
func (it *Iterator) Value() []byte { return it.val }

// Err returns the first error encountered while iterating.
func (it *Iterator) Err() error { return it.err }

// Close releases the iterator's pinned page. Safe to call twice.
func (it *Iterator) Close() {
	if it.frame != nil {
		it.t.fx.Unpin(it.frame, false)
		it.frame = nil
	}
	it.done = true
}
