package btree

import (
	"errors"
	"fmt"

	"sqlarray/internal/pages"
)

// Bulk build: the high-throughput ingest path. A LeafWriter packs a
// strictly-ascending (key, value) stream into freshly allocated leaf
// pages with no per-row root descent, and GraftAppend later hangs the
// finished leaves off an existing tree by extending its right spine —
// the classic sorted-bulk-load split of "write data pages fast, wire
// the index afterwards".
//
// The two halves run under different durability regimes on purpose:
// LeafWriter touches only fresh pages (never shared, committed state),
// so the engine can stream them straight into the WAL and evict them
// long before the commit record exists; GraftAppend mutates shared
// pages and must run under a write capture so those edits stay pinned
// until the commit publishes them.

// LeafRef identifies a completed leaf (or, one level up, an internal
// node) by the minimum key it covers.
type LeafRef struct {
	Key int64
	ID  pages.PageID
}

// LeafWriter streams sorted records into fully packed fresh leaves.
// Completed pages are handed to onPage while still pinned — the engine
// logs the page image there — and then unpinned dirty. The sibling
// chain between fresh leaves (and the Prev link back to prev, the
// tree's current rightmost leaf) is wired as pages complete; only the
// old rightmost leaf's forward pointer is left for GraftAppend.
type LeafWriter struct {
	bp      *pages.BufferPool
	onPage  func(f *pages.Frame) error
	prev    pages.PageID
	cur     *pages.Frame
	curMin  int64
	lastKey int64
	n       int
	leaves  []LeafRef
}

// NewLeafWriter starts a bulk leaf stream. prev is the page the first
// fresh leaf's Prev pointer should name (InvalidPageID for an empty
// tree is fine — the empty root leaf still precedes the fresh chain, so
// pass its id). onPage may be nil.
func NewLeafWriter(bp *pages.BufferPool, prev pages.PageID, onPage func(f *pages.Frame) error) *LeafWriter {
	return &LeafWriter{bp: bp, onPage: onPage, prev: prev}
}

// Add appends one record. Keys must arrive in strictly ascending order.
func (w *LeafWriter) Add(key int64, val []byte) error {
	if len(val) > MaxValueSize {
		return fmt.Errorf("%w: %d bytes > %d", ErrTooBig, len(val), MaxValueSize)
	}
	if w.n > 0 && key <= w.lastKey {
		if key == w.lastKey {
			return fmt.Errorf("%w: %d", ErrDuplicate, key)
		}
		return fmt.Errorf("btree: bulk keys out of order: %d after %d", key, w.lastKey)
	}
	rec := encodeLeafRec(key, val)
	if w.cur == nil {
		f, err := w.bp.NewPage(pages.TypeData)
		if err != nil {
			return err
		}
		f.Page.SetPrev(w.prev)
		w.cur, w.curMin = f, key
	}
	if _, err := w.cur.Page.Insert(rec); err != nil {
		if !errors.Is(err, pages.ErrPageFull) {
			return err
		}
		// Allocate the successor before completing the current leaf so
		// its Next pointer is final when the page image is logged.
		nf, err := w.bp.NewPage(pages.TypeData)
		if err != nil {
			return err
		}
		w.cur.Page.SetNext(nf.Page.ID)
		nf.Page.SetPrev(w.cur.Page.ID)
		if err := w.completeCur(); err != nil {
			w.bp.Unpin(nf, true)
			return err
		}
		w.cur, w.curMin = nf, key
		if _, err := w.cur.Page.Insert(rec); err != nil {
			return err
		}
	}
	w.lastKey = key
	w.n++
	return nil
}

// completeCur logs and unpins the current leaf.
func (w *LeafWriter) completeCur() error {
	f := w.cur
	w.cur = nil
	w.leaves = append(w.leaves, LeafRef{Key: w.curMin, ID: f.Page.ID})
	var err error
	if w.onPage != nil {
		err = w.onPage(f)
	}
	w.prev = f.Page.ID
	w.bp.Unpin(f, true)
	return err
}

// Finish completes the last leaf (its Next stays InvalidPageID) and
// returns the refs of every leaf written, in key order.
func (w *LeafWriter) Finish() ([]LeafRef, error) {
	if w.cur != nil {
		if err := w.completeCur(); err != nil {
			return nil, err
		}
	}
	return w.leaves, nil
}

// Count returns the number of records added so far.
func (w *LeafWriter) Count() int { return w.n }

// LastKey returns the most recently added key (valid when Count > 0).
func (w *LeafWriter) LastKey() int64 { return w.lastKey }

// Abandon unpins any open page after a failure; the abandoned fresh
// pages are garbage until the next crash-recovery or file compaction,
// never reachable state.
func (w *LeafWriter) Abandon() {
	if w.cur != nil {
		w.bp.Unpin(w.cur, true)
		w.cur = nil
	}
}

// RightmostLeaf returns the page id of the tree's rightmost leaf — the
// root itself at height 1, possibly an empty leaf under lazy deletion.
// The bulk loader chains its fresh leaves after this page and passes it
// to GraftAppend as prevLeaf.
func (t *Tree) RightmostLeaf() (pages.PageID, error) {
	return t.rightmostNodeAt(1)
}

// GraftAppend attaches bulk-written leaves — every key strictly greater
// than the tree's current maximum — to the tree by extending its right
// spine: leaf refs are appended into the existing rightmost internal
// node per level, overflowing into fresh nodes, and levels above the
// old root are built by packing. prevLeaf is the tree's old rightmost
// leaf (the one the first fresh leaf's Prev names); its Next pointer is
// rewired here. added is the number of records the leaves carry.
//
// Must run inside an active write capture: the mutated shared pages
// (right spine, prevLeaf) are copy-on-write versioned for concurrent
// snapshot readers and held until the enclosing commit publishes.
func (t *Tree) GraftAppend(prevLeaf pages.PageID, leaves []LeafRef, added int) error {
	if len(leaves) == 0 {
		return nil
	}
	if prevLeaf != pages.InvalidPageID {
		f, err := t.bp.FetchForWrite(prevLeaf)
		if err != nil {
			return err
		}
		f.Page.SetNext(leaves[0].ID)
		t.bp.Unpin(f, true)
	}
	entries := append([]LeafRef(nil), leaves...)
	for level := 2; len(entries) > 0; level++ {
		if level <= t.height {
			fresh, err := t.appendRightmost(level, entries)
			if err != nil {
				return err
			}
			entries = fresh
			continue
		}
		if level == t.height+1 {
			// First level above the old root: the old root becomes the
			// leftmost child, carrying the root's minInt64 convention.
			entries = append([]LeafRef{{Key: minInt64, ID: t.root}}, entries...)
		}
		nodes, err := t.packLevel(entries)
		if err != nil {
			return err
		}
		if len(nodes) == 1 {
			t.root = nodes[0].ID
			t.height = level
			entries = nil
		} else {
			entries = nodes
		}
	}
	t.count += added
	return nil
}

// appendRightmost appends entries (all keys greater than anything
// stored) to the rightmost internal node at the given level, spilling
// into fresh nodes when it fills. It returns refs for the fresh nodes,
// which need parents one level up.
func (t *Tree) appendRightmost(level int, entries []LeafRef) ([]LeafRef, error) {
	id, err := t.rightmostNodeAt(level)
	if err != nil {
		return nil, err
	}
	f, err := t.bp.FetchForWrite(id)
	if err != nil {
		return nil, err
	}
	var fresh []LeafRef
	for _, e := range entries {
		rec := encodeInternalRec(e.Key, e.ID)
		if _, err := f.Page.Insert(rec); err == nil {
			continue
		} else if !errors.Is(err, pages.ErrPageFull) {
			t.bp.Unpin(f, true)
			return nil, err
		}
		nf, err := t.bp.NewPage(pages.TypeIndex)
		if err != nil {
			t.bp.Unpin(f, true)
			return nil, err
		}
		t.bp.Unpin(f, true)
		f = nf
		fresh = append(fresh, LeafRef{Key: e.Key, ID: f.Page.ID})
		if _, err := f.Page.Insert(rec); err != nil {
			t.bp.Unpin(f, true)
			return nil, err
		}
	}
	t.bp.Unpin(f, true)
	return fresh, nil
}

// rightmostNodeAt descends the right spine to the internal node at the
// given level (leaves are level 1, the root is level t.height).
func (t *Tree) rightmostNodeAt(level int) (pages.PageID, error) {
	id := t.root
	for lvl := t.height; lvl > level; lvl-- {
		f, err := t.bp.Fetch(id)
		if err != nil {
			return 0, err
		}
		n := f.Page.NumSlots()
		if n == 0 {
			t.bp.Unpin(f, false)
			return 0, fmt.Errorf("btree: empty internal node %d", id)
		}
		rec, err := f.Page.Record(n - 1)
		if err != nil {
			t.bp.Unpin(f, false)
			return 0, fmt.Errorf("btree: corrupt internal node %d: %w", id, err)
		}
		_, child := decodeInternalRec(rec)
		t.bp.Unpin(f, false)
		id = child
	}
	return id, nil
}

// packLevel packs entries into freshly allocated internal nodes,
// returning one ref per node created.
func (t *Tree) packLevel(entries []LeafRef) ([]LeafRef, error) {
	var nodes []LeafRef
	var f *pages.Frame
	for _, e := range entries {
		rec := encodeInternalRec(e.Key, e.ID)
		if f == nil {
			nf, err := t.bp.NewPage(pages.TypeIndex)
			if err != nil {
				return nil, err
			}
			f = nf
			nodes = append(nodes, LeafRef{Key: e.Key, ID: f.Page.ID})
		}
		if _, err := f.Page.Insert(rec); err != nil {
			if !errors.Is(err, pages.ErrPageFull) {
				t.bp.Unpin(f, true)
				return nil, err
			}
			t.bp.Unpin(f, true)
			nf, err := t.bp.NewPage(pages.TypeIndex)
			if err != nil {
				return nil, err
			}
			f = nf
			nodes = append(nodes, LeafRef{Key: e.Key, ID: f.Page.ID})
			if _, err := f.Page.Insert(rec); err != nil {
				t.bp.Unpin(f, true)
				return nil, err
			}
		}
	}
	if f != nil {
		t.bp.Unpin(f, true)
	}
	return nodes, nil
}
