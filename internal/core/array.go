package core

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Array is a decoded view over a serialized array blob. The blob (header +
// column-major payload) is the canonical representation — exactly the bytes
// that would sit in a VARBINARY column — and Array keeps the decoded header
// alongside it for cheap access.
//
// An Array is cheap to copy; the underlying buffer is shared. Mutating
// methods (SetItem and friends) write through to the shared buffer.
type Array struct {
	hdr Header
	buf []byte // full blob: header + payload
}

// New allocates a zero-filled array of the given storage class, element
// type and dimension sizes.
func New(class StorageClass, et ElemType, dims ...int) (*Array, error) {
	h := Header{Class: class, Elem: et, Dims: append([]int(nil), dims...)}
	if err := h.Validate(); err != nil {
		return nil, err
	}
	buf := make([]byte, 0, h.TotalBytes())
	buf = h.AppendEncode(buf)
	buf = append(buf, make([]byte, h.DataBytes())...)
	return &Array{hdr: h, buf: buf}, nil
}

// NewAuto allocates an array choosing the storage class automatically:
// short if the blob fits a data page and respects short-class limits,
// max otherwise.
func NewAuto(et ElemType, dims ...int) (*Array, error) {
	h := Header{Class: Short, Elem: et, Dims: dims}
	if len(dims) <= MaxShortRank && h.Validate() == nil {
		return New(Short, et, dims...)
	}
	return New(Max, et, dims...)
}

// Wrap interprets b as a serialized array. The header is validated and the
// payload length checked; the returned Array aliases b (no copy), matching
// the paper's "convert to .NET arrays by a simple memory copy" fast path
// for on-page data.
func Wrap(b []byte) (*Array, error) {
	h, n, err := DecodeHeader(b)
	if err != nil {
		return nil, err
	}
	if len(b) < n+h.DataBytes() {
		return nil, fmt.Errorf("%w: need %d payload bytes, have %d",
			ErrTruncated, h.DataBytes(), len(b)-n)
	}
	return &Array{hdr: h, buf: b[:n+h.DataBytes()]}, nil
}

// Bytes returns the serialized blob (header + payload). The slice aliases
// the array's storage; callers that persist it should copy.
func (a *Array) Bytes() []byte { return a.buf }

// Header returns a copy of the decoded header.
func (a *Array) Header() Header {
	h := a.hdr
	h.Dims = append([]int(nil), a.hdr.Dims...)
	return h
}

// Class returns the storage class.
func (a *Array) Class() StorageClass { return a.hdr.Class }

// ElemType returns the element type.
func (a *Array) ElemType() ElemType { return a.hdr.Elem }

// Rank returns the number of dimensions.
func (a *Array) Rank() int { return len(a.hdr.Dims) }

// Dims returns a copy of the dimension sizes.
func (a *Array) Dims() []int { return append([]int(nil), a.hdr.Dims...) }

// Dim returns the size of dimension i.
func (a *Array) Dim(i int) int { return a.hdr.Dims[i] }

// Len returns the total number of elements.
func (a *Array) Len() int { return a.hdr.Count() }

// Payload returns the raw element bytes (without the header), aliasing the
// array's storage.
func (a *Array) Payload() []byte { return a.buf[a.hdr.EncodedSize():] }

// String renders small arrays fully and large ones by header only.
func (a *Array) String() string {
	if a.Len() <= 64 {
		return a.hdr.String() + " " + Format(a)
	}
	return a.hdr.String()
}

// LinearIndex converts a multi-dimensional index to the column-major
// linear element index: idx[0] varies fastest (FORTRAN order, §3.5).
func (a *Array) LinearIndex(idx ...int) (int, error) {
	if len(idx) != len(a.hdr.Dims) {
		return 0, fmt.Errorf("%w: got %d indices for rank-%d array", ErrRank, len(idx), len(a.hdr.Dims))
	}
	lin := 0
	stride := 1
	for k, i := range idx {
		d := a.hdr.Dims[k]
		if i < 0 || i >= d {
			return 0, fmt.Errorf("%w: index %d = %d outside [0,%d)", ErrBounds, k, i, d)
		}
		lin += i * stride
		stride *= d
	}
	return lin, nil
}

// MultiIndex converts a column-major linear element index back to a
// multi-dimensional index. It is the inverse of LinearIndex.
func (a *Array) MultiIndex(lin int) ([]int, error) {
	if lin < 0 || lin >= a.Len() {
		return nil, fmt.Errorf("%w: linear index %d outside [0,%d)", ErrBounds, lin, a.Len())
	}
	idx := make([]int, len(a.hdr.Dims))
	for k, d := range a.hdr.Dims {
		idx[k] = lin % d
		lin /= d
	}
	return idx, nil
}

// elemOffset returns the byte offset of linear element i within the blob.
func (a *Array) elemOffset(i int) int {
	return a.hdr.EncodedSize() + i*a.hdr.Elem.Size()
}

// FloatAt returns linear element i converted to float64. Integer types
// are widened; for complex types the real part is returned.
func (a *Array) FloatAt(i int) float64 {
	p := a.buf[a.elemOffset(i):]
	switch a.hdr.Elem {
	case Int8:
		return float64(int8(p[0]))
	case Int16:
		return float64(int16(binary.LittleEndian.Uint16(p)))
	case Int32:
		return float64(int32(binary.LittleEndian.Uint32(p)))
	case Int64:
		return float64(int64(binary.LittleEndian.Uint64(p)))
	case Float32:
		return float64(math.Float32frombits(binary.LittleEndian.Uint32(p)))
	case Float64:
		return math.Float64frombits(binary.LittleEndian.Uint64(p))
	case Complex64:
		return float64(math.Float32frombits(binary.LittleEndian.Uint32(p)))
	case Complex128:
		return math.Float64frombits(binary.LittleEndian.Uint64(p))
	}
	panic("core: invalid element type in validated array")
}

// IntAt returns linear element i converted to int64 (floats truncate
// toward zero, matching T-SQL CAST semantics for integral targets).
func (a *Array) IntAt(i int) int64 {
	p := a.buf[a.elemOffset(i):]
	switch a.hdr.Elem {
	case Int8:
		return int64(int8(p[0]))
	case Int16:
		return int64(int16(binary.LittleEndian.Uint16(p)))
	case Int32:
		return int64(int32(binary.LittleEndian.Uint32(p)))
	case Int64:
		return int64(binary.LittleEndian.Uint64(p))
	case Float32:
		return int64(math.Float32frombits(binary.LittleEndian.Uint32(p)))
	case Float64:
		return int64(math.Float64frombits(binary.LittleEndian.Uint64(p)))
	case Complex64:
		return int64(math.Float32frombits(binary.LittleEndian.Uint32(p)))
	case Complex128:
		return int64(math.Float64frombits(binary.LittleEndian.Uint64(p)))
	}
	panic("core: invalid element type in validated array")
}

// ComplexAt returns linear element i converted to complex128. Real types
// produce a zero imaginary part.
func (a *Array) ComplexAt(i int) complex128 {
	switch a.hdr.Elem {
	case Complex64:
		p := a.buf[a.elemOffset(i):]
		re := math.Float32frombits(binary.LittleEndian.Uint32(p))
		im := math.Float32frombits(binary.LittleEndian.Uint32(p[4:]))
		return complex(float64(re), float64(im))
	case Complex128:
		p := a.buf[a.elemOffset(i):]
		re := math.Float64frombits(binary.LittleEndian.Uint64(p))
		im := math.Float64frombits(binary.LittleEndian.Uint64(p[8:]))
		return complex(re, im)
	default:
		return complex(a.FloatAt(i), 0)
	}
}

// SetFloatAt stores v (converted to the array's element type) at linear
// element i.
func (a *Array) SetFloatAt(i int, v float64) {
	p := a.buf[a.elemOffset(i):]
	switch a.hdr.Elem {
	case Int8:
		p[0] = byte(int8(v))
	case Int16:
		binary.LittleEndian.PutUint16(p, uint16(int16(v)))
	case Int32:
		binary.LittleEndian.PutUint32(p, uint32(int32(v)))
	case Int64:
		binary.LittleEndian.PutUint64(p, uint64(int64(v)))
	case Float32:
		binary.LittleEndian.PutUint32(p, math.Float32bits(float32(v)))
	case Float64:
		binary.LittleEndian.PutUint64(p, math.Float64bits(v))
	case Complex64:
		binary.LittleEndian.PutUint32(p, math.Float32bits(float32(v)))
		binary.LittleEndian.PutUint32(p[4:], 0)
	case Complex128:
		binary.LittleEndian.PutUint64(p, math.Float64bits(v))
		binary.LittleEndian.PutUint64(p[8:], 0)
	default:
		panic("core: invalid element type in validated array")
	}
}

// SetIntAt stores v (converted to the array's element type) at linear
// element i.
func (a *Array) SetIntAt(i int, v int64) {
	switch a.hdr.Elem {
	case Float32, Float64, Complex64, Complex128:
		a.SetFloatAt(i, float64(v))
		return
	}
	p := a.buf[a.elemOffset(i):]
	switch a.hdr.Elem {
	case Int8:
		p[0] = byte(int8(v))
	case Int16:
		binary.LittleEndian.PutUint16(p, uint16(int16(v)))
	case Int32:
		binary.LittleEndian.PutUint32(p, uint32(int32(v)))
	case Int64:
		binary.LittleEndian.PutUint64(p, uint64(v))
	default:
		panic("core: invalid element type in validated array")
	}
}

// SetComplexAt stores v at linear element i. For real element types the
// imaginary part is discarded.
func (a *Array) SetComplexAt(i int, v complex128) {
	switch a.hdr.Elem {
	case Complex64:
		p := a.buf[a.elemOffset(i):]
		binary.LittleEndian.PutUint32(p, math.Float32bits(float32(real(v))))
		binary.LittleEndian.PutUint32(p[4:], math.Float32bits(float32(imag(v))))
	case Complex128:
		p := a.buf[a.elemOffset(i):]
		binary.LittleEndian.PutUint64(p, math.Float64bits(real(v)))
		binary.LittleEndian.PutUint64(p[8:], math.Float64bits(imag(v)))
	default:
		a.SetFloatAt(i, real(v))
	}
}

// Item returns the element at a multi-dimensional index as float64,
// mirroring the T-SQL Item_N functions.
func (a *Array) Item(idx ...int) (float64, error) {
	lin, err := a.LinearIndex(idx...)
	if err != nil {
		return 0, err
	}
	return a.FloatAt(lin), nil
}

// ItemComplex returns the element at a multi-dimensional index as
// complex128.
func (a *Array) ItemComplex(idx ...int) (complex128, error) {
	lin, err := a.LinearIndex(idx...)
	if err != nil {
		return 0, err
	}
	return a.ComplexAt(lin), nil
}

// ItemInt returns the element at a multi-dimensional index as int64.
func (a *Array) ItemInt(idx ...int) (int64, error) {
	lin, err := a.LinearIndex(idx...)
	if err != nil {
		return 0, err
	}
	return a.IntAt(lin), nil
}

// UpdateItem stores v at a multi-dimensional index, mirroring the T-SQL
// UpdateItem_N functions. Unlike T-SQL (which is value-oriented and
// returns a new blob) this mutates in place; use Clone first for
// value semantics.
func (a *Array) UpdateItem(v float64, idx ...int) error {
	lin, err := a.LinearIndex(idx...)
	if err != nil {
		return err
	}
	a.SetFloatAt(lin, v)
	return nil
}

// UpdateItemComplex stores a complex value at a multi-dimensional index.
func (a *Array) UpdateItemComplex(v complex128, idx ...int) error {
	lin, err := a.LinearIndex(idx...)
	if err != nil {
		return err
	}
	a.SetComplexAt(lin, v)
	return nil
}

// Clone returns a deep copy of the array.
func (a *Array) Clone() *Array {
	buf := append([]byte(nil), a.buf...)
	h := a.hdr
	h.Dims = append([]int(nil), a.hdr.Dims...)
	return &Array{hdr: h, buf: buf}
}

// Equal reports whether two arrays have identical class, element type,
// shape and payload bytes.
func (a *Array) Equal(b *Array) bool {
	if a.hdr.Class != b.hdr.Class || a.hdr.Elem != b.hdr.Elem || len(a.hdr.Dims) != len(b.hdr.Dims) {
		return false
	}
	for i := range a.hdr.Dims {
		if a.hdr.Dims[i] != b.hdr.Dims[i] {
			return false
		}
	}
	ap, bp := a.Payload(), b.Payload()
	if len(ap) != len(bp) {
		return false
	}
	for i := range ap {
		if ap[i] != bp[i] {
			return false
		}
	}
	return true
}
