package core

import (
	"fmt"
	"strconv"
	"strings"
)

// Format renders the array as nested bracketed lists ("arrays can also be
// converted to and from strings", §5.1). The textual form is logical
// row-major (the last index varies fastest inside the innermost list)
// while storage remains column-major; Parse is the exact inverse.
//
// A rank-2 array with dims [2,3] therefore prints as
// [[a00,a01,a02],[a10,a11,a12]] where aij = Item(i,j).
func Format(a *Array) string {
	var sb strings.Builder
	formatDim(a, &sb, make([]int, a.Rank()), 0)
	return sb.String()
}

func formatDim(a *Array, sb *strings.Builder, ix []int, dim int) {
	rank := a.Rank()
	if dim == rank {
		lin, _ := a.LinearIndex(ix...)
		if a.ElemType().IsComplex() {
			v := a.ComplexAt(lin)
			fmt.Fprintf(sb, "%g%+gi", real(v), imag(v))
		} else if a.ElemType().IsInteger() {
			fmt.Fprintf(sb, "%d", a.IntAt(lin))
		} else {
			fmt.Fprintf(sb, "%g", a.FloatAt(lin))
		}
		return
	}
	sb.WriteByte('[')
	for i := 0; i < a.Dim(dim); i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		ix[dim] = i
		formatDim(a, sb, ix, dim+1)
	}
	sb.WriteByte(']')
}

// Parse builds an array from the nested-list textual form produced by
// Format. All nesting levels must be rectangular. The storage class is
// chosen automatically.
func Parse(et ElemType, s string) (*Array, error) {
	p := &strParser{s: strings.TrimSpace(s)}
	node, err := p.value()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.s) {
		return nil, fmt.Errorf("%w: trailing characters at offset %d", ErrBadHeader, p.pos)
	}
	dims, err := nodeDims(node)
	if err != nil {
		return nil, err
	}
	a, err := NewAuto(et, dims...)
	if err != nil {
		return nil, err
	}
	ix := make([]int, len(dims))
	if err := fillFromNode(a, node, ix, 0); err != nil {
		return nil, err
	}
	return a, nil
}

// parseNode is either a scalar (leaf) or a list of nodes.
type parseNode struct {
	leaf     bool
	re, im   float64
	children []*parseNode
}

// maxParseDepth bounds nesting in array literals; list nesting maps to
// array rank, so anything past a generous cap is hostile input, not an
// array.
const maxParseDepth = 64

type strParser struct {
	s     string
	pos   int
	depth int
}

func (p *strParser) skipSpace() {
	for p.pos < len(p.s) && (p.s[p.pos] == ' ' || p.s[p.pos] == '\t' || p.s[p.pos] == '\n') {
		p.pos++
	}
}

func (p *strParser) value() (*parseNode, error) {
	p.skipSpace()
	if p.pos >= len(p.s) {
		return nil, fmt.Errorf("core: unexpected end of array literal")
	}
	if p.s[p.pos] == '[' {
		p.depth++
		if p.depth > maxParseDepth {
			return nil, fmt.Errorf("%w: literal nesting exceeds %d levels", ErrShape, maxParseDepth)
		}
		defer func() { p.depth-- }()
		p.pos++
		n := &parseNode{}
		for {
			p.skipSpace()
			if p.pos < len(p.s) && p.s[p.pos] == ']' {
				p.pos++
				return n, nil
			}
			child, err := p.value()
			if err != nil {
				return nil, err
			}
			n.children = append(n.children, child)
			p.skipSpace()
			if p.pos < len(p.s) && p.s[p.pos] == ',' {
				p.pos++
				continue
			}
			if p.pos < len(p.s) && p.s[p.pos] == ']' {
				p.pos++
				return n, nil
			}
			return nil, fmt.Errorf("core: expected ',' or ']' at offset %d", p.pos)
		}
	}
	return p.scalar()
}

func (p *strParser) scalar() (*parseNode, error) {
	start := p.pos
	for p.pos < len(p.s) {
		c := p.s[p.pos]
		if c == ',' || c == ']' || c == ' ' || c == '\t' || c == '\n' {
			break
		}
		p.pos++
	}
	tok := p.s[start:p.pos]
	if tok == "" {
		return nil, fmt.Errorf("core: empty scalar at offset %d", start)
	}
	// Complex literal: "<re>+<im>i" or "<re>-<im>i".
	if strings.HasSuffix(tok, "i") {
		body := tok[:len(tok)-1]
		// Find the sign splitting re and im, skipping a leading sign and
		// exponent signs (e.g. 1e-3+2e-4i).
		for k := len(body) - 1; k > 0; k-- {
			if (body[k] == '+' || body[k] == '-') && body[k-1] != 'e' && body[k-1] != 'E' {
				re, err1 := strconv.ParseFloat(body[:k], 64)
				im, err2 := strconv.ParseFloat(body[k:], 64)
				if err1 == nil && err2 == nil {
					return &parseNode{leaf: true, re: re, im: im}, nil
				}
				break
			}
		}
		if im, err := strconv.ParseFloat(body, 64); err == nil {
			return &parseNode{leaf: true, im: im}, nil
		}
		return nil, fmt.Errorf("core: bad complex literal %q", tok)
	}
	v, err := strconv.ParseFloat(tok, 64)
	if err != nil {
		return nil, fmt.Errorf("core: bad numeric literal %q: %v", tok, err)
	}
	return &parseNode{leaf: true, re: v}, nil
}

// nodeDims derives the rectangular shape of a parsed literal.
func nodeDims(n *parseNode) ([]int, error) {
	if n.leaf {
		return nil, nil
	}
	dims := []int{len(n.children)}
	if len(n.children) == 0 {
		return dims, nil
	}
	sub, err := nodeDims(n.children[0])
	if err != nil {
		return nil, err
	}
	for _, c := range n.children[1:] {
		cd, err := nodeDims(c)
		if err != nil {
			return nil, err
		}
		if len(cd) != len(sub) {
			return nil, fmt.Errorf("%w: ragged array literal", ErrShape)
		}
		for i := range cd {
			if cd[i] != sub[i] {
				return nil, fmt.Errorf("%w: ragged array literal", ErrShape)
			}
		}
	}
	return append(dims, sub...), nil
}

func fillFromNode(a *Array, n *parseNode, ix []int, dim int) error {
	if n.leaf {
		lin, err := a.LinearIndex(ix...)
		if err != nil {
			return err
		}
		if a.ElemType().IsComplex() {
			a.SetComplexAt(lin, complex(n.re, n.im))
		} else {
			a.SetFloatAt(lin, n.re)
		}
		return nil
	}
	for i, c := range n.children {
		ix[dim] = i
		if err := fillFromNode(a, c, ix, dim+1); err != nil {
			return err
		}
	}
	return nil
}
