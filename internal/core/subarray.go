package core

import "fmt"

// Run describes one contiguous byte range of a source blob that a
// subarray extraction needs. Because elements are column-major, a
// contiguous subarray decomposes into runs along the first dimension;
// the blob store uses these to issue partial reads instead of fetching
// the whole out-of-page blob (§3.3: the stream wrapper "supports reading
// only parts of the binary data", which "can significantly speed up
// certain array subsetting operations").
type Run struct {
	SrcOff int // byte offset into the source payload
	DstOff int // byte offset into the destination payload
	Len    int // run length in bytes
}

// SubarrayPlan computes the contiguous runs needed to extract a subarray
// at the given offset with the given size from an array shaped like h.
// offset and size must both have h.Rank() entries.
func SubarrayPlan(h Header, offset, size []int) ([]Run, error) {
	rank := h.Rank()
	if len(offset) != rank || len(size) != rank {
		return nil, fmt.Errorf("%w: offset/size rank %d/%d for rank-%d array",
			ErrRank, len(offset), len(size), rank)
	}
	for k := 0; k < rank; k++ {
		if size[k] <= 0 {
			return nil, fmt.Errorf("%w: size[%d] = %d must be positive", ErrBounds, k, size[k])
		}
		if offset[k] < 0 || offset[k]+size[k] > h.Dims[k] {
			return nil, fmt.Errorf("%w: dim %d: [%d,%d) outside [0,%d)",
				ErrBounds, k, offset[k], offset[k]+size[k], h.Dims[k])
		}
	}
	es := h.Elem.Size()
	if rank == 0 {
		return []Run{{0, 0, es}}, nil
	}
	// Runs are contiguous along dimension 0; iterate the remaining dims.
	nruns := 1
	for k := 1; k < rank; k++ {
		nruns *= size[k]
	}
	runLen := size[0] * es
	runs := make([]Run, 0, nruns)
	// strides in elements of the source array
	strides := make([]int, rank)
	strides[0] = 1
	for k := 1; k < rank; k++ {
		strides[k] = strides[k-1] * h.Dims[k-1]
	}
	idx := make([]int, rank) // index within the subarray, dims 1..rank-1 used
	for r := 0; r < nruns; r++ {
		src := offset[0]
		for k := 1; k < rank; k++ {
			src += (offset[k] + idx[k]) * strides[k]
		}
		runs = append(runs, Run{SrcOff: src * es, DstOff: r * runLen, Len: runLen})
		for k := 1; k < rank; k++ {
			idx[k]++
			if idx[k] < size[k] {
				break
			}
			idx[k] = 0
		}
	}
	return runs, nil
}

// CollapseDims drops dimensions of size 1, mirroring the last parameter
// of the T-SQL Subarray function ("subarrays with length of one in any
// dimension are automatically converted to a lower dimensional array",
// §5.1). A fully-degenerate shape collapses to rank 1 with a single
// element rather than rank 0, matching the paper's example of extracting
// column vectors from a matrix.
func CollapseDims(size []int) []int {
	out := make([]int, 0, len(size))
	for _, d := range size {
		if d != 1 {
			out = append(out, d)
		}
	}
	if len(out) == 0 && len(size) > 0 {
		out = append(out, 1)
	}
	return out
}

// Subarray extracts the contiguous sub-block starting at offset with the
// given size. If collapse is true, result dimensions of size 1 are
// dropped. The result's storage class is short when it fits, max
// otherwise (so subsetting a max array can yield a page-friendly short
// array, one of the paper's stated goals).
func (a *Array) Subarray(offset, size []int, collapse bool) (*Array, error) {
	runs, err := SubarrayPlan(a.hdr, offset, size)
	if err != nil {
		return nil, err
	}
	dims := append([]int(nil), size...)
	if collapse {
		dims = CollapseDims(dims)
	}
	out, err := NewAuto(a.hdr.Elem, dims...)
	if err != nil {
		return nil, err
	}
	src, dst := a.Payload(), out.Payload()
	for _, r := range runs {
		copy(dst[r.DstOff:r.DstOff+r.Len], src[r.SrcOff:])
	}
	return out, nil
}

// SubarrayFrom extracts a subarray given index vectors (IntVector arrays)
// rather than Go slices — the exact T-SQL calling convention:
//
//	FloatArrayMax.Subarray(@a, IntArray.Vector_3(1,4,6), IntArray.Vector_3(5,5,5), 0)
func (a *Array) SubarrayFrom(offset, size *Array, collapse bool) (*Array, error) {
	if offset.Rank() != 1 || size.Rank() != 1 {
		return nil, fmt.Errorf("%w: offset and size must be vectors", ErrRank)
	}
	return a.Subarray(offset.Ints(), size.Ints(), collapse)
}

// Slice1D is a convenience for rank-1 arrays: elements [lo, hi).
func (a *Array) Slice1D(lo, hi int) (*Array, error) {
	if a.Rank() != 1 {
		return nil, fmt.Errorf("%w: Slice1D on rank-%d array", ErrRank, a.Rank())
	}
	if hi <= lo {
		return nil, fmt.Errorf("%w: empty slice [%d,%d)", ErrBounds, lo, hi)
	}
	return a.Subarray([]int{lo}, []int{hi - lo}, false)
}
