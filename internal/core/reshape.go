package core

import "fmt"

// Reshape returns an array with the same payload but new dimension sizes.
// Per §5.1, "original and target sizes must not differ": the element count
// must be preserved. The storage class is kept unless the new rank exceeds
// the short-class limit, in which case the result is promoted to max.
func (a *Array) Reshape(dims ...int) (*Array, error) {
	n := 1
	for _, d := range dims {
		if d < 0 {
			return nil, fmt.Errorf("%w: negative dimension %d", ErrShape, d)
		}
		n *= d
	}
	if n != a.Len() {
		return nil, fmt.Errorf("%w: reshape %v -> %v changes element count %d -> %d",
			ErrShape, a.hdr.Dims, dims, a.Len(), n)
	}
	class := a.hdr.Class
	h := Header{Class: class, Elem: a.hdr.Elem, Dims: dims}
	if class == Short && h.Validate() != nil {
		class = Max
	}
	out, err := New(class, a.hdr.Elem, dims...)
	if err != nil {
		return nil, err
	}
	copy(out.Payload(), a.Payload())
	return out, nil
}

// Cast prefixes raw element bytes with an array header, the counterpart
// of the T-SQL Cast function ("used to treat raw binaries containing
// consecutive numbers to be able to be treated as arrays", §5.1).
func Cast(class StorageClass, et ElemType, raw []byte, dims ...int) (*Array, error) {
	h := Header{Class: class, Elem: et, Dims: dims}
	if err := h.Validate(); err != nil {
		return nil, err
	}
	if len(raw) != h.DataBytes() {
		return nil, fmt.Errorf("%w: %d raw bytes for %d declared payload bytes",
			ErrShape, len(raw), h.DataBytes())
	}
	buf := make([]byte, 0, h.TotalBytes())
	buf = h.AppendEncode(buf)
	buf = append(buf, raw...)
	return &Array{hdr: h, buf: buf}, nil
}

// Raw returns a copy of the element bytes with the header stripped, the
// counterpart of the T-SQL Raw function.
func (a *Array) Raw() []byte {
	return append([]byte(nil), a.Payload()...)
}
