package core

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math"
	"math/rand"
	"testing"
)

// Property-based tests over randomized shapes and element types: the
// algebraic identities the array calculus promises (§5.1) must hold for
// every shape, not just the hand-picked cases in the unit tests.

var propElemTypes = []ElemType{
	Int8, Int16, Int32, Int64, Float32, Float64, Complex64, Complex128,
}

// randomArray builds an array with rank 0..4, dimensions 1..6 and
// random elements representable in the element type (integers stay
// within int8 range so every narrower type round-trips exactly).
func randomArray(rng *rand.Rand) *Array {
	et := propElemTypes[rng.Intn(len(propElemTypes))]
	rank := rng.Intn(5)
	dims := make([]int, rank)
	for i := range dims {
		dims[i] = 1 + rng.Intn(6)
	}
	a, err := NewAuto(et, dims...)
	if err != nil {
		panic(err)
	}
	for i := 0; i < a.Len(); i++ {
		switch {
		case et.IsInteger():
			a.SetIntAt(i, int64(rng.Intn(256)-128))
		case et.IsComplex():
			a.SetComplexAt(i, complex(rng.NormFloat64(), rng.NormFloat64()))
		default:
			a.SetFloatAt(i, rng.NormFloat64())
		}
	}
	return a
}

// TestPropSubarrayComposition: extracting a subarray of a subarray is
// the same as extracting once with composed offsets —
// a.Subarray(o1, s1).Subarray(o2, s2) == a.Subarray(o1+o2, s2).
func TestPropSubarrayComposition(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for iter := 0; iter < 500; iter++ {
		a := randomArray(rng)
		if a.Rank() == 0 {
			continue
		}
		rank := a.Rank()
		o1, s1 := make([]int, rank), make([]int, rank)
		o2, s2 := make([]int, rank), make([]int, rank)
		composed := make([]int, rank)
		for k := 0; k < rank; k++ {
			d := a.Dim(k)
			o1[k] = rng.Intn(d)
			s1[k] = 1 + rng.Intn(d-o1[k])
			o2[k] = rng.Intn(s1[k])
			s2[k] = 1 + rng.Intn(s1[k]-o2[k])
			composed[k] = o1[k] + o2[k]
		}
		outer, err := a.Subarray(o1, s1, false)
		if err != nil {
			t.Fatalf("iter %d: outer subarray %v/%v of %v: %v", iter, o1, s1, a.Dims(), err)
		}
		inner, err := outer.Subarray(o2, s2, false)
		if err != nil {
			t.Fatalf("iter %d: inner subarray %v/%v of %v: %v", iter, o2, s2, outer.Dims(), err)
		}
		direct, err := a.Subarray(composed, s2, false)
		if err != nil {
			t.Fatalf("iter %d: composed subarray %v/%v of %v: %v", iter, composed, s2, a.Dims(), err)
		}
		if !inner.Equal(direct) {
			t.Fatalf("iter %d: Subarray(%v,%v)∘Subarray(%v,%v) != Subarray(%v,%v) on %v",
				iter, o1, s1, o2, s2, composed, s2, a.Dims())
		}
	}
}

// TestPropReshapeRoundTrip: reshaping to any factorization of the
// element count and back reproduces the original array bit for bit.
func TestPropReshapeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for iter := 0; iter < 500; iter++ {
		a := randomArray(rng)
		// Random re-factorization of the element count: peel random
		// divisors (>= 2) off n, capped at rank 6 so the intermediate
		// shape stays legal for the original storage class — Reshape
		// promotes Short to Max past rank 6 and never demotes, which
		// would (correctly) break bit-identity of the headers.
		n := a.Len()
		var dims []int
		rest := n
		for rest > 1 && len(dims) < 5 {
			d := 2 + rng.Intn(rest-1)
			for rest%d != 0 {
				d--
			}
			if d < 2 {
				break
			}
			dims = append(dims, d)
			rest /= d
		}
		if rest > 1 || len(dims) == 0 {
			dims = append(dims, rest)
		}
		mid, err := a.Reshape(dims...)
		if err != nil {
			t.Fatalf("iter %d: reshape %v -> %v: %v", iter, a.Dims(), dims, err)
		}
		if !bytes.Equal(mid.Payload(), a.Payload()) {
			t.Fatalf("iter %d: reshape %v -> %v changed the payload", iter, a.Dims(), dims)
		}
		back, err := mid.Reshape(a.Dims()...)
		if err != nil {
			t.Fatalf("iter %d: reshape back %v -> %v: %v", iter, dims, a.Dims(), err)
		}
		if !back.Equal(a) {
			t.Fatalf("iter %d: reshape round-trip %v -> %v -> %v lost the array",
				iter, a.Dims(), dims, a.Dims())
		}
	}
}

// TestPropParseFormatIdentity: Parse is the exact inverse of Format for
// every shape and element type (floats print in shortest round-trip
// form, so even random doubles survive the text round trip exactly).
func TestPropParseFormatIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for iter := 0; iter < 500; iter++ {
		a := randomArray(rng)
		s := Format(a)
		b, err := Parse(a.ElemType(), s)
		if err != nil {
			t.Fatalf("iter %d: Parse(Format(%v %v)) = %q: %v", iter, a.ElemType(), a.Dims(), s, err)
		}
		if !b.Equal(a) {
			t.Fatalf("iter %d: Parse∘Format not identity for %v %v: %q", iter, a.ElemType(), a.Dims(), s)
		}
	}
}

// TestDecodeHeaderCountOverflow pins the hardening FuzzWrap relies on: a
// max-class header whose dimension product overflows (with the declared
// count matching the wrapped product) must be rejected, not wrapped into
// a tiny bogus payload size.
func TestDecodeHeaderCountOverflow(t *testing.T) {
	dims := []uint32{1 << 31 / 2, 1 << 31 / 2, 1 << 31 / 2} // product 2^90, wraps
	wrapped := 1
	for _, d := range dims {
		wrapped *= int(d)
	}
	b := make([]byte, MaxFixedHeaderSize+4*len(dims))
	b[0] = Magic
	b[1] = byte(Max) | FormatVersion<<4
	b[2] = byte(Float64)
	binary.LittleEndian.PutUint32(b[4:8], uint32(len(dims)))
	binary.LittleEndian.PutUint64(b[8:16], uint64(wrapped))
	for i, d := range dims {
		binary.LittleEndian.PutUint32(b[MaxFixedHeaderSize+4*i:], d)
	}
	if _, _, err := DecodeHeader(b); !errors.Is(err, ErrTooLarge) && !errors.Is(err, ErrBadHeader) {
		t.Fatalf("DecodeHeader on overflowing dims = %v, want count-overflow rejection", err)
	}
	if _, err := Wrap(b); err == nil {
		t.Fatal("Wrap accepted a header whose element count overflows")
	}
	// A header at the cap itself must still validate.
	h := Header{Class: Max, Elem: Float64, Dims: []int{1 << 20, 1 << 10}}
	if err := h.Validate(); err != nil {
		t.Fatalf("validate of large-but-sane header: %v", err)
	}
	if math.MaxInt64/16 < int64(maxElements) {
		t.Fatalf("maxElements %d leaves no headroom for 16-byte elements", maxElements)
	}
}
