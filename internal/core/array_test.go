package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func mustNew(t *testing.T, class StorageClass, et ElemType, dims ...int) *Array {
	t.Helper()
	a, err := New(class, et, dims...)
	if err != nil {
		t.Fatalf("New(%v,%v,%v): %v", class, et, dims, err)
	}
	return a
}

func TestNewZeroFilled(t *testing.T) {
	a := mustNew(t, Short, Float64, 4, 3)
	if a.Len() != 12 {
		t.Fatalf("Len = %d, want 12", a.Len())
	}
	for i := 0; i < a.Len(); i++ {
		if a.FloatAt(i) != 0 {
			t.Fatalf("element %d = %g, want 0", i, a.FloatAt(i))
		}
	}
}

func TestWrapRoundtrip(t *testing.T) {
	a := Vector(1, 2, 3, 4, 5)
	b, err := Wrap(a.Bytes())
	if err != nil {
		t.Fatalf("Wrap: %v", err)
	}
	if !a.Equal(b) {
		t.Error("wrapped array differs")
	}
	// Wrap aliases: mutating the wrap must show through.
	b.SetFloatAt(0, 99)
	if a.FloatAt(0) != 99 {
		t.Error("Wrap must alias the input buffer")
	}
}

func TestWrapTruncatedPayload(t *testing.T) {
	a := Vector(1, 2, 3)
	blob := a.Bytes()
	if _, err := Wrap(blob[:len(blob)-1]); !errors.Is(err, ErrTruncated) {
		t.Errorf("got %v, want ErrTruncated", err)
	}
}

func TestColumnMajorLinearIndex(t *testing.T) {
	// dims [2,3]: linear order is (0,0),(1,0),(0,1),(1,1),(0,2),(1,2)
	a := mustNew(t, Short, Float64, 2, 3)
	want := [][2]int{{0, 0}, {1, 0}, {0, 1}, {1, 1}, {0, 2}, {1, 2}}
	for lin, ix := range want {
		got, err := a.LinearIndex(ix[0], ix[1])
		if err != nil || got != lin {
			t.Errorf("LinearIndex(%v) = %d,%v; want %d", ix, got, err, lin)
		}
		back, err := a.MultiIndex(lin)
		if err != nil || back[0] != ix[0] || back[1] != ix[1] {
			t.Errorf("MultiIndex(%d) = %v,%v; want %v", lin, back, err, ix)
		}
	}
}

func TestLinearMultiIndexInverseProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func() bool {
		rank := 1 + rng.Intn(4)
		dims := make([]int, rank)
		for i := range dims {
			dims[i] = 1 + rng.Intn(5)
		}
		a, err := NewAuto(Int32, dims...)
		if err != nil {
			return false
		}
		lin := rng.Intn(a.Len())
		ix, err := a.MultiIndex(lin)
		if err != nil {
			return false
		}
		back, err := a.LinearIndex(ix...)
		return err == nil && back == lin
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestItemAndUpdateItem(t *testing.T) {
	m, err := Matrix(2, 2, 0.1, 0.2, 0.3, 0.4) // column-major: m[0,0]=0.1 m[1,0]=0.2 m[0,1]=0.3 m[1,1]=0.4
	if err != nil {
		t.Fatal(err)
	}
	v, err := m.Item(1, 0)
	if err != nil || v != 0.2 {
		t.Errorf("Item(1,0) = %g,%v; want 0.2", v, err)
	}
	if err := m.UpdateItem(4.5, 1, 1); err != nil {
		t.Fatal(err)
	}
	if v, _ := m.Item(1, 1); v != 4.5 {
		t.Errorf("after UpdateItem, Item(1,1) = %g", v)
	}
	if _, err := m.Item(2, 0); !errors.Is(err, ErrBounds) {
		t.Errorf("out-of-bounds Item: %v", err)
	}
	if _, err := m.Item(0); !errors.Is(err, ErrRank) {
		t.Errorf("wrong-arity Item: %v", err)
	}
}

func TestAllElemTypesRoundtrip(t *testing.T) {
	vals := []float64{-3, 0, 1, 127}
	for et := Int8; et <= Complex128; et++ {
		a, err := NewAuto(et, len(vals))
		if err != nil {
			t.Fatalf("%v: %v", et, err)
		}
		for i, v := range vals {
			a.SetFloatAt(i, v)
		}
		for i, v := range vals {
			if got := a.FloatAt(i); got != v {
				t.Errorf("%v element %d = %g, want %g", et, i, got, v)
			}
			if got := a.IntAt(i); got != int64(v) {
				t.Errorf("%v IntAt %d = %d, want %d", et, i, got, int64(v))
			}
		}
	}
}

func TestComplexAccess(t *testing.T) {
	for _, et := range []ElemType{Complex64, Complex128} {
		a, err := NewAuto(et, 3)
		if err != nil {
			t.Fatal(err)
		}
		want := []complex128{1 + 2i, -3.5 + 0.25i, 0}
		for i, v := range want {
			a.SetComplexAt(i, v)
		}
		for i, v := range want {
			if got := a.ComplexAt(i); got != v {
				t.Errorf("%v ComplexAt(%d) = %v, want %v", et, i, got, v)
			}
		}
		// Real view of a complex array returns the real part.
		if got := a.FloatAt(0); got != 1 {
			t.Errorf("FloatAt on complex = %g, want 1", got)
		}
	}
}

func TestRealArrayComplexView(t *testing.T) {
	a := Vector(2.5)
	if got := a.ComplexAt(0); got != complex(2.5, 0) {
		t.Errorf("ComplexAt on real = %v", got)
	}
	a.SetComplexAt(0, 3+4i) // imaginary part dropped
	if got := a.FloatAt(0); got != 3 {
		t.Errorf("SetComplexAt on real stored %g, want 3", got)
	}
}

func TestIntegerTruncation(t *testing.T) {
	a, _ := NewAuto(Int32, 1)
	a.SetFloatAt(0, 3.9)
	if got := a.IntAt(0); got != 3 {
		t.Errorf("float->int stored %d, want truncation to 3", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	a := Vector(1, 2, 3)
	b := a.Clone()
	b.SetFloatAt(0, 42)
	if a.FloatAt(0) != 1 {
		t.Error("Clone must not share storage")
	}
	if !a.Equal(a.Clone()) {
		t.Error("Clone must compare equal")
	}
}

func TestEqualDiffers(t *testing.T) {
	a := Vector(1, 2, 3)
	if a.Equal(Vector(1, 2, 4)) {
		t.Error("different payloads must differ")
	}
	m, _ := Matrix(3, 1, 1, 2, 3)
	if a.Equal(m) {
		t.Error("different shapes must differ")
	}
	ci, _ := FromInt64s(Short, Int32, []int64{1, 2, 3}, 3)
	if a.Equal(ci) {
		t.Error("different element types must differ")
	}
}

func TestNewAutoClassSelection(t *testing.T) {
	small, err := NewAuto(Float64, 10)
	if err != nil || small.Class() != Short {
		t.Errorf("small array class = %v, err %v; want short", small.Class(), err)
	}
	big, err := NewAuto(Float64, 10000)
	if err != nil || big.Class() != Max {
		t.Errorf("big array class = %v, err %v; want max", big.Class(), err)
	}
	deep, err := NewAuto(Int8, 1, 1, 1, 1, 1, 1, 1) // rank 7 -> max
	if err != nil || deep.Class() != Max {
		t.Errorf("deep array class = %v, err %v; want max", deep.Class(), err)
	}
}

func TestShortClassLimitExact(t *testing.T) {
	// 997 float64 = 7976 bytes payload + 24 header = 8000: exactly fits.
	if _, err := New(Short, Float64, 997); err != nil {
		t.Errorf("997 float64 should fit VARBINARY(8000): %v", err)
	}
	if _, err := New(Short, Float64, 998); !errors.Is(err, ErrTooLarge) {
		t.Errorf("998 float64 must overflow: %v", err)
	}
}

func TestVectorFallsBackToMax(t *testing.T) {
	vals := make([]float64, 2000)
	a := Vector(vals...)
	if a.Class() != Max {
		t.Errorf("2000-element Vector class = %v, want max", a.Class())
	}
	if a.Len() != 2000 {
		t.Errorf("Len = %d", a.Len())
	}
}

func TestWalkOrderAndEarlyStop(t *testing.T) {
	m, _ := Matrix(2, 2, 1, 2, 3, 4)
	var seen []float64
	m.Walk(func(ix []int, v float64) bool {
		seen = append(seen, v)
		return len(seen) < 3
	})
	if len(seen) != 3 || seen[0] != 1 || seen[1] != 2 || seen[2] != 3 {
		t.Errorf("Walk visited %v", seen)
	}
}

func TestNaNRoundtrip(t *testing.T) {
	a := Vector(math.NaN(), math.Inf(1), math.Inf(-1))
	if !math.IsNaN(a.FloatAt(0)) || !math.IsInf(a.FloatAt(1), 1) || !math.IsInf(a.FloatAt(2), -1) {
		t.Error("special float values must roundtrip")
	}
}
