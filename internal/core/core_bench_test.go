package core

import "testing"

func BenchmarkHeaderDecodeShort(b *testing.B) {
	blob := Vector(1, 2, 3, 4, 5).Bytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := DecodeHeader(blob); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWrap(b *testing.B) {
	blob := Vector(1, 2, 3, 4, 5).Bytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Wrap(blob); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkItem2D(b *testing.B) {
	m, err := New(Short, Float64, 30, 30)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Item(i%30, (i/30)%30); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFloatAtLinear(b *testing.B) {
	a := Vector(make([]float64, 900)...)
	s := 0.0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s += a.FloatAt(i % 900)
	}
	_ = s
}

func BenchmarkFloat64sBulkDecode(b *testing.B) {
	a, err := New(Max, Float64, 65536)
	if err != nil {
		b.Fatal(err)
	}
	dst := make([]float64, a.Len())
	b.SetBytes(int64(8 * a.Len()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.CopyFloat64s(dst)
	}
}

func BenchmarkSum64k(b *testing.B) {
	a, err := New(Max, Float64, 65536)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(8 * a.Len()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = a.Sum()
	}
}

func BenchmarkReduceDimAxis0(b *testing.B) {
	a, err := New(Max, Float64, 256, 256)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.ReduceDim(0, ReduceSum); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSubarrayPlanOnly(b *testing.B) {
	h := Header{Class: Max, Elem: Float64, Dims: []int{128, 128, 128}}
	off := []int{10, 20, 30}
	size := []int{8, 8, 8}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SubarrayPlan(h, off, size); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFormatParse(b *testing.B) {
	m, err := FromFloat64s(Short, Float64, make([]float64, 64), 8, 8)
	if err != nil {
		b.Fatal(err)
	}
	s := Format(m)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(Float64, s); err != nil {
			b.Fatal(err)
		}
	}
}
