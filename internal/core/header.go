package core

import (
	"encoding/binary"
	"fmt"
)

// Header is the decoded form of the blob header described in §3.5 of the
// paper: flags identifying the storage class and the underlying element
// type (so type mismatches are detected at runtime when a blob is passed
// to the wrong function), the number of dimensions, the total element
// count, and the dimension sizes.
//
// Wire layouts (little-endian):
//
//	short (24 bytes fixed):
//	  [0]    magic 0xAB
//	  [1]    flags: bit0 = storage class (0 short), bits 4-7 = version
//	  [2]    element type
//	  [3]    rank (<= 6)
//	  [4:8]  total element count (uint32)
//	  [8:20] six dimension sizes (uint16 each; unused trailing dims = 0)
//	  [20:24] reserved (zero)
//
//	max (16 bytes + 4 per dimension):
//	  [0]    magic 0xAB
//	  [1]    flags: bit0 = 1 (max), bits 4-7 = version
//	  [2]    element type
//	  [3]    reserved
//	  [4:8]  rank (uint32)
//	  [8:16] total element count (uint64)
//	  [16:]  rank dimension sizes (uint32 each)
type Header struct {
	Class StorageClass
	Elem  ElemType
	Dims  []int
}

const classFlagMask = 0x01

// Rank returns the number of dimensions.
func (h *Header) Rank() int { return len(h.Dims) }

// Count returns the total number of elements (the product of the
// dimension sizes; 1 for a rank-0 scalar array).
func (h *Header) Count() int {
	n := 1
	for _, d := range h.Dims {
		n *= d
	}
	return n
}

// DataBytes returns the payload length in bytes.
func (h *Header) DataBytes() int { return h.Count() * h.Elem.Size() }

// EncodedSize returns the number of header bytes this header occupies on
// the wire.
func (h *Header) EncodedSize() int {
	if h.Class == Short {
		return ShortHeaderSize
	}
	return MaxFixedHeaderSize + 4*len(h.Dims)
}

// TotalBytes returns header plus payload length.
func (h *Header) TotalBytes() int { return h.EncodedSize() + h.DataBytes() }

// maxElements caps the element count a header may declare: the payload
// byte size (count times the largest element width, 16) must stay
// representable in an int.
const maxElements = int(^uint(0)>>1) / 16

// checkedCount computes the element count, failing instead of wrapping
// when the product of the dimension sizes overflows. Dimension sizes
// must already be range-checked non-negative.
func (h *Header) checkedCount() (int, error) {
	n := 1
	for _, d := range h.Dims {
		if d != 0 && n > maxElements/d {
			return 0, fmt.Errorf("%w: element count of %v overflows", ErrTooLarge, h.Dims)
		}
		n *= d
	}
	return n, nil
}

// Validate checks the header against the limits of its storage class.
func (h *Header) Validate() error {
	if !h.Elem.Valid() {
		return fmt.Errorf("%w: invalid element type %d", ErrBadHeader, uint8(h.Elem))
	}
	switch h.Class {
	case Short:
		if len(h.Dims) > MaxShortRank {
			return fmt.Errorf("%w: short arrays support at most %d dimensions, got %d",
				ErrRank, MaxShortRank, len(h.Dims))
		}
		for i, d := range h.Dims {
			if d < 0 || d > MaxShortDim {
				return fmt.Errorf("%w: short dimension %d size %d outside [0,%d]",
					ErrBadHeader, i, d, MaxShortDim)
			}
		}
	case Max:
		for i, d := range h.Dims {
			if d < 0 || d > MaxMaxDim {
				return fmt.Errorf("%w: max dimension %d size %d outside [0,%d]",
					ErrBadHeader, i, d, MaxMaxDim)
			}
		}
	default:
		return fmt.Errorf("%w: unknown storage class %d", ErrBadHeader, uint8(h.Class))
	}
	// Element-count overflow would wrap every size computation below
	// (and let a corrupt header declare a tiny payload for huge dims),
	// so it is checked before any byte arithmetic — the invariant
	// FuzzWrap enforces.
	if _, err := h.checkedCount(); err != nil {
		return err
	}
	if h.Class == Short && h.TotalBytes() > MaxShortBytes {
		return fmt.Errorf("%w: %d bytes > VARBINARY(%d)", ErrTooLarge, h.TotalBytes(), MaxShortBytes)
	}
	return nil
}

// AppendEncode appends the wire form of h to dst and returns the extended
// slice. The header must be valid.
func (h *Header) AppendEncode(dst []byte) []byte {
	flags := byte(h.Class)&classFlagMask | FormatVersion<<4
	if h.Class == Short {
		var buf [ShortHeaderSize]byte
		buf[0] = Magic
		buf[1] = flags
		buf[2] = byte(h.Elem)
		buf[3] = byte(len(h.Dims))
		binary.LittleEndian.PutUint32(buf[4:8], uint32(h.Count()))
		for i, d := range h.Dims {
			binary.LittleEndian.PutUint16(buf[8+2*i:], uint16(d))
		}
		return append(dst, buf[:]...)
	}
	var buf [MaxFixedHeaderSize]byte
	buf[0] = Magic
	buf[1] = flags
	buf[2] = byte(h.Elem)
	binary.LittleEndian.PutUint32(buf[4:8], uint32(len(h.Dims)))
	binary.LittleEndian.PutUint64(buf[8:16], uint64(h.Count()))
	dst = append(dst, buf[:]...)
	var dim [4]byte
	for _, d := range h.Dims {
		binary.LittleEndian.PutUint32(dim[:], uint32(d))
		dst = append(dst, dim[:]...)
	}
	return dst
}

// HeaderSizeFromPrefix returns the full encoded header size implied by
// the first bytes of a serialized array, without requiring the whole
// header (let alone the payload) to be present. Callers reading an
// out-of-page array incrementally use it to size the second read: a
// short-class prefix answers after 4 bytes, a max-class prefix after the
// fixed 16 (the rank field). The result is the byte count DecodeHeader
// would consume.
func HeaderSizeFromPrefix(b []byte) (int, error) {
	if len(b) < 4 {
		return 0, fmt.Errorf("%w: %d bytes is shorter than any header", ErrBadHeader, len(b))
	}
	if b[0] != Magic {
		return 0, fmt.Errorf("%w: bad magic byte 0x%02x", ErrBadHeader, b[0])
	}
	if ver := b[1] >> 4; ver != FormatVersion {
		return 0, fmt.Errorf("%w: unsupported format version %d", ErrBadHeader, ver)
	}
	if StorageClass(b[1]&classFlagMask) == Short {
		return ShortHeaderSize, nil
	}
	if len(b) < MaxFixedHeaderSize {
		return 0, fmt.Errorf("%w: max header prefix needs %d bytes, have %d",
			ErrBadHeader, MaxFixedHeaderSize, len(b))
	}
	rank := binary.LittleEndian.Uint32(b[4:8])
	const sanityRank = 1 << 20
	if rank > sanityRank {
		return 0, fmt.Errorf("%w: implausible rank %d", ErrRank, rank)
	}
	return MaxFixedHeaderSize + 4*int(rank), nil
}

// DecodeHeader parses an array header from the front of b, returning the
// header and the number of header bytes consumed. It validates structural
// invariants (magic byte, class limits, count consistency) but does not
// require the payload to be present in b; use Wrap for full validation.
func DecodeHeader(b []byte) (Header, int, error) {
	// HeaderSizeFromPrefix owns the prefix checks (magic, version, rank
	// sanity) and the size arithmetic, so incremental readers sizing a
	// second read and this full decoder can never disagree.
	n, err := HeaderSizeFromPrefix(b)
	if err != nil {
		return Header{}, 0, err
	}
	class := StorageClass(b[1] & classFlagMask)
	if len(b) < n {
		return Header{}, 0, fmt.Errorf("%w: %s header needs %d bytes, have %d",
			ErrBadHeader, class, n, len(b))
	}
	et := ElemType(b[2])
	if !et.Valid() {
		return Header{}, 0, fmt.Errorf("%w: invalid element type %d", ErrBadHeader, b[2])
	}
	var h Header
	if class == Short {
		rank := int(b[3])
		if rank > MaxShortRank {
			return Header{}, 0, fmt.Errorf("%w: short rank %d > %d", ErrRank, rank, MaxShortRank)
		}
		h = Header{Class: Short, Elem: et, Dims: make([]int, rank)}
		for i := range h.Dims {
			h.Dims[i] = int(binary.LittleEndian.Uint16(b[8+2*i:]))
		}
		declared := int(binary.LittleEndian.Uint32(b[4:8]))
		if declared != h.Count() {
			return Header{}, 0, fmt.Errorf("%w: declared count %d != dim product %d",
				ErrBadHeader, declared, h.Count())
		}
	} else {
		rank := (n - MaxFixedHeaderSize) / 4
		h = Header{Class: Max, Elem: et, Dims: make([]int, rank)}
		for i := range h.Dims {
			h.Dims[i] = int(binary.LittleEndian.Uint32(b[MaxFixedHeaderSize+4*i:]))
		}
		declared := binary.LittleEndian.Uint64(b[8:16])
		if declared != uint64(h.Count()) {
			return Header{}, 0, fmt.Errorf("%w: declared count %d != dim product %d",
				ErrBadHeader, declared, h.Count())
		}
	}
	if err := h.Validate(); err != nil {
		return Header{}, 0, err
	}
	return h, n, nil
}

// String renders the header in a compact human-readable form, e.g.
// "float[5x5] short".
func (h *Header) String() string {
	s := h.Elem.String() + "["
	for i, d := range h.Dims {
		if i > 0 {
			s += "x"
		}
		s += fmt.Sprint(d)
	}
	return s + "] " + h.Class.String()
}
