// Package core implements the array data type at the heart of the sqlarray
// library: a binary blob format consisting of a small header (storage class,
// element type, rank, element count, dimension sizes) followed by the
// elements in column-major order, exactly as described in §3.5 of Dobos et
// al., "Array Requirements for Scientific Applications and an Implementation
// for Microsoft SQL Server" (EDBT 2011).
//
// Two storage classes exist, mirroring SQL Server's on-page versus
// out-of-page blob handling (§3.3 of the paper): short arrays fit into an
// 8 kB data page (VARBINARY(8000), at most 6 dimensions, 16-bit dimension
// sizes) while max arrays may be arbitrarily large (VARBINARY(MAX), any
// rank, 32-bit dimension sizes) and are normally stored out-of-page behind
// a stream wrapper that supports partial reads.
package core

import (
	"errors"
	"fmt"
)

// ElemType identifies the primitive element type stored in an array.
// The set matches the paper's §3.4: signed integers of 1/2/4/8 bytes,
// float and double, plus float and double complex.
type ElemType uint8

// Supported element types. The zero value is invalid so that an
// all-zero header never validates.
const (
	Int8 ElemType = iota + 1
	Int16
	Int32
	Int64
	Float32
	Float64
	Complex64
	Complex128

	numElemTypes = iota + 1
)

var elemSizes = [numElemTypes]int{
	Int8: 1, Int16: 2, Int32: 4, Int64: 8,
	Float32: 4, Float64: 8, Complex64: 8, Complex128: 16,
}

var elemNames = [numElemTypes]string{
	Int8: "tinyint", Int16: "smallint", Int32: "int", Int64: "bigint",
	Float32: "real", Float64: "float", Complex64: "complex", Complex128: "doublecomplex",
}

// Valid reports whether t is one of the supported element types.
func (t ElemType) Valid() bool { return t >= Int8 && t <= Complex128 }

// Size returns the element width in bytes.
func (t ElemType) Size() int {
	if !t.Valid() {
		return 0
	}
	return elemSizes[t]
}

// String returns the T-SQL-flavoured name of the type (e.g. "float" for
// a 64-bit floating point number, following SQL Server conventions).
func (t ElemType) String() string {
	if !t.Valid() {
		return fmt.Sprintf("ElemType(%d)", uint8(t))
	}
	return elemNames[t]
}

// IsInteger reports whether t is a signed integer type.
func (t ElemType) IsInteger() bool { return t >= Int8 && t <= Int64 }

// IsFloat reports whether t is a real floating point type.
func (t ElemType) IsFloat() bool { return t == Float32 || t == Float64 }

// IsComplex reports whether t is a complex type.
func (t ElemType) IsComplex() bool { return t == Complex64 || t == Complex128 }

// ElemTypeByName resolves a T-SQL-flavoured type name ("float", "int", …)
// to an ElemType. It is the inverse of ElemType.String.
func ElemTypeByName(name string) (ElemType, error) {
	for t := Int8; t <= Complex128; t++ {
		if elemNames[t] == name {
			return t, nil
		}
	}
	return 0, fmt.Errorf("core: unknown element type %q", name)
}

// StorageClass distinguishes the paper's two array flavours.
type StorageClass uint8

const (
	// Short arrays fit on a database page and are stored in fixed-size
	// binary columns (VARBINARY(8000)).
	Short StorageClass = 0
	// Max arrays are stored out-of-page as B-trees (VARBINARY(MAX)) and
	// accessed through a stream wrapper.
	Max StorageClass = 1
)

// String returns "short" or "max".
func (c StorageClass) String() string {
	if c == Short {
		return "short"
	}
	return "max"
}

// Format and size limits, mirroring §3.3/§3.5 of the paper.
const (
	// Magic is the first byte of every serialized array.
	Magic = 0xAB
	// FormatVersion is the header version emitted by this library.
	FormatVersion = 1

	// ShortHeaderSize is the fixed header length of short arrays (§3.5:
	// "In case of short arrays the header is 24 bytes long").
	ShortHeaderSize = 24
	// MaxFixedHeaderSize is the fixed prefix of a max-array header; the
	// full header adds 4 bytes per dimension.
	MaxFixedHeaderSize = 16

	// MaxShortBytes is the VARBINARY(8000) limit: a short array,
	// including its header, must fit into a SQL Server data page.
	MaxShortBytes = 8000
	// MaxShortRank is the dimension limit of short arrays ("Short arrays
	// have the limit of only six indices").
	MaxShortRank = 6
	// MaxShortDim is the largest dimension size of a short array
	// ("indices are Int16").
	MaxShortDim = 1<<15 - 1
	// MaxMaxDim is the largest dimension size of a max array ("the index
	// type is Int32").
	MaxMaxDim = 1<<31 - 1
)

// Sentinel errors returned by the core package. Callers should match with
// errors.Is; all errors are wrapped with contextual detail.
var (
	ErrBadHeader     = errors.New("core: malformed array header")
	ErrTypeMismatch  = errors.New("core: element type mismatch")
	ErrClassMismatch = errors.New("core: storage class mismatch")
	ErrRank          = errors.New("core: bad rank")
	ErrBounds        = errors.New("core: index out of bounds")
	ErrShape         = errors.New("core: shape mismatch")
	ErrTooLarge      = errors.New("core: array exceeds storage class limit")
	ErrTruncated     = errors.New("core: buffer shorter than declared payload")
)
