package core

import (
	"fmt"
	"math"
)

// Sum returns the sum of all elements as float64 (real part for complex
// arrays; use SumComplex for full complex sums).
func (a *Array) Sum() float64 {
	s := 0.0
	for i, n := 0, a.Len(); i < n; i++ {
		s += a.FloatAt(i)
	}
	return s
}

// SumComplex returns the complex sum of all elements.
func (a *Array) SumComplex() complex128 {
	var s complex128
	for i, n := 0, a.Len(); i < n; i++ {
		s += a.ComplexAt(i)
	}
	return s
}

// Mean returns the arithmetic mean of all elements; NaN for empty arrays.
func (a *Array) Mean() float64 {
	n := a.Len()
	if n == 0 {
		return math.NaN()
	}
	return a.Sum() / float64(n)
}

// MinMax returns the smallest and largest element values. For empty
// arrays it returns (+Inf, -Inf).
func (a *Array) MinMax() (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for i, n := 0, a.Len(); i < n; i++ {
		v := a.FloatAt(i)
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

// Std returns the population standard deviation of the elements.
func (a *Array) Std() float64 {
	n := a.Len()
	if n == 0 {
		return math.NaN()
	}
	mean := a.Mean()
	ss := 0.0
	for i := 0; i < n; i++ {
		d := a.FloatAt(i) - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(n))
}

// Norm2 returns the Euclidean norm of the elements (complex elements
// contribute their modulus).
func (a *Array) Norm2() float64 {
	ss := 0.0
	if a.hdr.Elem.IsComplex() {
		for i, n := 0, a.Len(); i < n; i++ {
			v := a.ComplexAt(i)
			ss += real(v)*real(v) + imag(v)*imag(v)
		}
	} else {
		for i, n := 0, a.Len(); i < n; i++ {
			v := a.FloatAt(i)
			ss += v * v
		}
	}
	return math.Sqrt(ss)
}

// ReduceOp selects the reduction applied along an axis by ReduceDim.
type ReduceOp uint8

const (
	ReduceSum ReduceOp = iota
	ReduceMean
	ReduceMin
	ReduceMax
)

// String returns the SQL-ish name of the reduction.
func (op ReduceOp) String() string {
	switch op {
	case ReduceSum:
		return "SUM"
	case ReduceMean:
		return "AVG"
	case ReduceMin:
		return "MIN"
	case ReduceMax:
		return "MAX"
	}
	return fmt.Sprintf("ReduceOp(%d)", uint8(op))
}

// ReduceDim aggregates over one axis, producing an array of rank-1 lower
// (the paper's "summation over certain axes to get, for example, the
// overall spectrum of an object", §2.2). The result element type is
// Float64 for Sum/Mean and the source type for Min/Max. A rank-1 input
// reduces to a rank-1 single-element array.
func (a *Array) ReduceDim(axis int, op ReduceOp) (*Array, error) {
	rank := a.Rank()
	if axis < 0 || axis >= rank {
		return nil, fmt.Errorf("%w: axis %d for rank-%d array", ErrRank, axis, rank)
	}
	outDims := make([]int, 0, rank-1)
	for k, d := range a.hdr.Dims {
		if k != axis {
			outDims = append(outDims, d)
		}
	}
	if len(outDims) == 0 {
		outDims = []int{1}
	}
	et := Float64
	if op == ReduceMin || op == ReduceMax {
		et = a.hdr.Elem
	}
	out, err := NewAuto(et, outDims...)
	if err != nil {
		return nil, err
	}
	// Column-major iteration: decompose linear index into (inner, axis,
	// outer) where inner covers dims < axis and outer covers dims > axis.
	inner := 1
	for k := 0; k < axis; k++ {
		inner *= a.hdr.Dims[k]
	}
	nAxis := a.hdr.Dims[axis]
	outer := a.Len() / (inner * maxInt(nAxis, 1))
	if nAxis == 0 {
		return nil, fmt.Errorf("%w: cannot reduce over empty axis %d", ErrShape, axis)
	}
	for o := 0; o < outer; o++ {
		for in := 0; in < inner; in++ {
			var acc float64
			switch op {
			case ReduceMin:
				acc = math.Inf(1)
			case ReduceMax:
				acc = math.Inf(-1)
			}
			for j := 0; j < nAxis; j++ {
				v := a.FloatAt(in + inner*(j+nAxis*o))
				switch op {
				case ReduceSum, ReduceMean:
					acc += v
				case ReduceMin:
					if v < acc {
						acc = v
					}
				case ReduceMax:
					if v > acc {
						acc = v
					}
				}
			}
			if op == ReduceMean {
				acc /= float64(nAxis)
			}
			out.SetFloatAt(in+inner*o, acc)
		}
	}
	return out, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
