package core

import "fmt"

// Builder assembles an array from row-by-row (index, value) data — the
// functionality behind the paper's Concat aggregate and its faster
// query-driven UDF replacement (§4.2, §5.1). Cells may arrive in any
// order; unset cells remain zero.
type Builder struct {
	arr  *Array
	seen int
}

// NewBuilder prepares an array of the given shape to be filled cell by
// cell. The dims vector plays the role of the @l IntArray.Vector_2
// argument of the T-SQL Concat example.
func NewBuilder(class StorageClass, et ElemType, dims ...int) (*Builder, error) {
	a, err := New(class, et, dims...)
	if err != nil {
		return nil, err
	}
	return &Builder{arr: a}, nil
}

// NewBuilderFromDims is NewBuilder with the shape supplied as an index
// vector array, matching the T-SQL convention.
func NewBuilderFromDims(class StorageClass, et ElemType, dims *Array) (*Builder, error) {
	if dims.Rank() != 1 {
		return nil, fmt.Errorf("%w: dims must be a vector", ErrRank)
	}
	return NewBuilder(class, et, dims.Ints()...)
}

// Set stores value v at the multi-dimensional index ix.
func (b *Builder) Set(v float64, ix ...int) error {
	if err := b.arr.UpdateItem(v, ix...); err != nil {
		return err
	}
	b.seen++
	return nil
}

// SetVec stores v at an index given as an index-vector array, the exact
// shape of the Concat aggregate's per-row (ix, v) inputs.
func (b *Builder) SetVec(ix *Array, v float64) error {
	return b.Set(v, ix.Ints()...)
}

// SetLinear stores v at column-major linear element index i.
func (b *Builder) SetLinear(i int, v float64) error {
	if i < 0 || i >= b.arr.Len() {
		return fmt.Errorf("%w: linear index %d outside [0,%d)", ErrBounds, i, b.arr.Len())
	}
	b.arr.SetFloatAt(i, v)
	b.seen++
	return nil
}

// Cells returns how many Set calls have been applied.
func (b *Builder) Cells() int { return b.seen }

// Array returns the assembled array. The builder may keep being used;
// the returned array shares storage with it.
func (b *Builder) Array() *Array { return b.arr }

// Cell is one row of the tabular form of an array: the multi-dimensional
// index and the element value, as produced by the T-SQL ToTable /
// MatrixToTable table-valued functions.
type Cell struct {
	Index []int
	Value float64
}

// ToTable converts the array to its tabular form. For large arrays
// prefer Walk, which avoids materializing every row.
func (a *Array) ToTable() []Cell {
	out := make([]Cell, a.Len())
	i := 0
	a.Walk(func(ix []int, v float64) bool {
		out[i] = Cell{Index: append([]int(nil), ix...), Value: v}
		i++
		return true
	})
	return out
}

// Walk visits every element in column-major order, passing the
// multi-dimensional index and the value. The callback's index slice is
// reused between calls; copy it to retain. Return false to stop early.
func (a *Array) Walk(f func(ix []int, v float64) bool) {
	rank := a.Rank()
	ix := make([]int, rank)
	for lin, n := 0, a.Len(); lin < n; lin++ {
		if !f(ix, a.FloatAt(lin)) {
			return
		}
		for k := 0; k < rank; k++ {
			ix[k]++
			if ix[k] < a.hdr.Dims[k] {
				break
			}
			ix[k] = 0
		}
	}
}

// FromCells builds an array of the given shape from tabular cells, the
// bulk counterpart of the Concat aggregate.
func FromCells(class StorageClass, et ElemType, dims []int, cells []Cell) (*Array, error) {
	b, err := NewBuilder(class, et, dims...)
	if err != nil {
		return nil, err
	}
	for _, c := range cells {
		if err := b.Set(c.Value, c.Index...); err != nil {
			return nil, err
		}
	}
	return b.Array(), nil
}
