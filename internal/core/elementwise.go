package core

import (
	"fmt"
	"math"
)

// sameShape verifies a and b have identical dimension sizes.
func sameShape(a, b *Array) error {
	if a.Rank() != b.Rank() {
		return fmt.Errorf("%w: rank %d vs %d", ErrShape, a.Rank(), b.Rank())
	}
	for k := range a.hdr.Dims {
		if a.hdr.Dims[k] != b.hdr.Dims[k] {
			return fmt.Errorf("%w: dim %d: %d vs %d", ErrShape, k, a.hdr.Dims[k], b.hdr.Dims[k])
		}
	}
	return nil
}

// binop applies f elementwise over two same-shaped arrays, producing a
// new array whose element type is the "wider" of the two operands
// (complex beats float beats int; Float64 is used for mixed real math).
func binop(a, b *Array, f func(x, y complex128) complex128) (*Array, error) {
	if err := sameShape(a, b); err != nil {
		return nil, err
	}
	et := resultElem(a.hdr.Elem, b.hdr.Elem)
	out, err := NewAuto(et, a.hdr.Dims...)
	if err != nil {
		return nil, err
	}
	if et.IsComplex() {
		for i, n := 0, a.Len(); i < n; i++ {
			out.SetComplexAt(i, f(a.ComplexAt(i), b.ComplexAt(i)))
		}
	} else {
		for i, n := 0, a.Len(); i < n; i++ {
			out.SetFloatAt(i, real(f(complex(a.FloatAt(i), 0), complex(b.FloatAt(i), 0))))
		}
	}
	return out, nil
}

// resultElem picks the element type of an elementwise binary result.
func resultElem(x, y ElemType) ElemType {
	switch {
	case x == Complex128 || y == Complex128:
		return Complex128
	case x == Complex64 || y == Complex64:
		if x == Float64 || y == Float64 {
			return Complex128
		}
		return Complex64
	case x == Float64 || y == Float64:
		return Float64
	case x == Float32 || y == Float32:
		if x.Size() > 4 || y.Size() > 4 {
			return Float64
		}
		return Float32
	case x.Size() >= y.Size():
		return x
	default:
		return y
	}
}

// Add returns a + b elementwise.
func Add(a, b *Array) (*Array, error) {
	return binop(a, b, func(x, y complex128) complex128 { return x + y })
}

// Sub returns a - b elementwise.
func Sub(a, b *Array) (*Array, error) {
	return binop(a, b, func(x, y complex128) complex128 { return x - y })
}

// Mul returns a * b elementwise (the Hadamard product).
func Mul(a, b *Array) (*Array, error) {
	return binop(a, b, func(x, y complex128) complex128 { return x * y })
}

// Div returns a / b elementwise. Division by zero follows IEEE semantics
// for floating results.
func Div(a, b *Array) (*Array, error) {
	return binop(a, b, func(x, y complex128) complex128 { return x / y })
}

// Scale returns s * a elementwise, preserving a's element type for real
// arrays (the "multiplication by scalar" of §2.2).
func (a *Array) Scale(s float64) (*Array, error) {
	out, err := NewAuto(a.hdr.Elem, a.hdr.Dims...)
	if err != nil {
		return nil, err
	}
	if a.hdr.Elem.IsComplex() {
		for i, n := 0, a.Len(); i < n; i++ {
			out.SetComplexAt(i, complex(s, 0)*a.ComplexAt(i))
		}
	} else {
		for i, n := 0, a.Len(); i < n; i++ {
			out.SetFloatAt(i, s*a.FloatAt(i))
		}
	}
	return out, nil
}

// AXPY computes alpha*x + y into a new array (shapes must match).
func AXPY(alpha float64, x, y *Array) (*Array, error) {
	return binop(x, y, func(a, b complex128) complex128 {
		return complex(alpha, 0)*a + b
	})
}

// Dot returns the real dot product of two same-shaped real arrays.
func Dot(a, b *Array) (float64, error) {
	if err := sameShape(a, b); err != nil {
		return 0, err
	}
	s := 0.0
	for i, n := 0, a.Len(); i < n; i++ {
		s += a.FloatAt(i) * b.FloatAt(i)
	}
	return s, nil
}

// MaskedDot returns the dot product of a and b restricted to positions
// where the flags array is zero (good pixels). This is the §2.2 pattern:
// "because of the flags that mask out wrong measurements bin by bin, dot
// product cannot be used ... but least squares fitting is necessary" —
// MaskedDot is the building block for those masked normal equations.
func MaskedDot(a, b, flags *Array) (float64, int, error) {
	if err := sameShape(a, b); err != nil {
		return 0, 0, err
	}
	if err := sameShape(a, flags); err != nil {
		return 0, 0, err
	}
	s := 0.0
	used := 0
	for i, n := 0, a.Len(); i < n; i++ {
		if flags.IntAt(i) != 0 {
			continue
		}
		s += a.FloatAt(i) * b.FloatAt(i)
		used++
	}
	return s, used, nil
}

// Apply returns a new array with f applied to every element (real view).
func (a *Array) Apply(f func(float64) float64) (*Array, error) {
	out, err := NewAuto(a.hdr.Elem, a.hdr.Dims...)
	if err != nil {
		return nil, err
	}
	for i, n := 0, a.Len(); i < n; i++ {
		out.SetFloatAt(i, f(a.FloatAt(i)))
	}
	return out, nil
}

// Abs returns the elementwise absolute value (modulus for complex
// arrays, which therefore produce a real-typed result).
func (a *Array) Abs() (*Array, error) {
	if !a.hdr.Elem.IsComplex() {
		return a.Apply(math.Abs)
	}
	et := Float64
	if a.hdr.Elem == Complex64 {
		et = Float32
	}
	out, err := NewAuto(et, a.hdr.Dims...)
	if err != nil {
		return nil, err
	}
	for i, n := 0, a.Len(); i < n; i++ {
		v := a.ComplexAt(i)
		out.SetFloatAt(i, math.Hypot(real(v), imag(v)))
	}
	return out, nil
}
