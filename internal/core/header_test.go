package core

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHeaderShortRoundtrip(t *testing.T) {
	h := Header{Class: Short, Elem: Float64, Dims: []int{5, 3}}
	if err := h.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	b := h.AppendEncode(nil)
	if len(b) != ShortHeaderSize {
		t.Fatalf("short header size = %d, want %d", len(b), ShortHeaderSize)
	}
	got, n, err := DecodeHeader(b)
	if err != nil {
		t.Fatalf("DecodeHeader: %v", err)
	}
	if n != ShortHeaderSize {
		t.Errorf("consumed %d bytes, want %d", n, ShortHeaderSize)
	}
	if got.Class != Short || got.Elem != Float64 || got.Rank() != 2 ||
		got.Dims[0] != 5 || got.Dims[1] != 3 {
		t.Errorf("roundtrip mismatch: %+v", got)
	}
}

func TestHeaderMaxRoundtrip(t *testing.T) {
	dims := []int{100, 100, 100, 2, 3, 4, 5} // rank 7: impossible for short
	h := Header{Class: Max, Elem: Complex128, Dims: dims}
	if err := h.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	b := h.AppendEncode(nil)
	if want := MaxFixedHeaderSize + 4*len(dims); len(b) != want {
		t.Fatalf("max header size = %d, want %d", len(b), want)
	}
	got, _, err := DecodeHeader(b)
	if err != nil {
		t.Fatalf("DecodeHeader: %v", err)
	}
	if got.Class != Max || got.Elem != Complex128 || got.Rank() != len(dims) {
		t.Errorf("roundtrip mismatch: %+v", got)
	}
	for i := range dims {
		if got.Dims[i] != dims[i] {
			t.Errorf("dim %d = %d, want %d", i, got.Dims[i], dims[i])
		}
	}
}

func TestHeaderRoundtripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := func() bool {
		var h Header
		if rng.Intn(2) == 0 {
			rank := rng.Intn(MaxShortRank + 1)
			dims := make([]int, rank)
			budget := MaxShortBytes / 16
			for i := range dims {
				dims[i] = 1 + rng.Intn(8)
				budget /= dims[i] + 1
			}
			h = Header{Class: Short, Elem: ElemType(1 + rng.Intn(8)), Dims: dims}
			if h.Validate() != nil {
				return true // over-budget shapes are rejected, fine
			}
		} else {
			rank := rng.Intn(10)
			dims := make([]int, rank)
			for i := range dims {
				dims[i] = 1 + rng.Intn(16)
			}
			h = Header{Class: Max, Elem: ElemType(1 + rng.Intn(8)), Dims: dims}
		}
		b := h.AppendEncode(nil)
		got, n, err := DecodeHeader(b)
		if err != nil || n != len(b) {
			return false
		}
		if got.Class != h.Class || got.Elem != h.Elem || got.Rank() != h.Rank() {
			return false
		}
		for i := range h.Dims {
			if got.Dims[i] != h.Dims[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestHeaderValidationFailures(t *testing.T) {
	cases := []struct {
		name string
		h    Header
		want error
	}{
		{"bad elem", Header{Class: Short, Elem: 0, Dims: []int{2}}, ErrBadHeader},
		{"short rank 7", Header{Class: Short, Elem: Float64, Dims: []int{1, 1, 1, 1, 1, 1, 1}}, ErrRank},
		{"short too large", Header{Class: Short, Elem: Float64, Dims: []int{2000}}, ErrTooLarge},
		{"short dim > int16", Header{Class: Short, Elem: Int8, Dims: []int{40000}}, ErrBadHeader},
		{"negative dim", Header{Class: Max, Elem: Float64, Dims: []int{-1}}, ErrBadHeader},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.h.Validate(); !errors.Is(err, tc.want) {
				t.Errorf("Validate() = %v, want %v", err, tc.want)
			}
		})
	}
}

func TestDecodeHeaderCorruption(t *testing.T) {
	h := Header{Class: Short, Elem: Float64, Dims: []int{4}}
	good := h.AppendEncode(nil)

	t.Run("bad magic", func(t *testing.T) {
		b := append([]byte(nil), good...)
		b[0] = 0x00
		if _, _, err := DecodeHeader(b); !errors.Is(err, ErrBadHeader) {
			t.Errorf("got %v, want ErrBadHeader", err)
		}
	})
	t.Run("bad version", func(t *testing.T) {
		b := append([]byte(nil), good...)
		b[1] |= 0xF0
		if _, _, err := DecodeHeader(b); !errors.Is(err, ErrBadHeader) {
			t.Errorf("got %v, want ErrBadHeader", err)
		}
	})
	t.Run("bad elem type", func(t *testing.T) {
		b := append([]byte(nil), good...)
		b[2] = 200
		if _, _, err := DecodeHeader(b); !errors.Is(err, ErrBadHeader) {
			t.Errorf("got %v, want ErrBadHeader", err)
		}
	})
	t.Run("count mismatch", func(t *testing.T) {
		b := append([]byte(nil), good...)
		b[4] = 99 // declared count no longer matches dim product
		if _, _, err := DecodeHeader(b); !errors.Is(err, ErrBadHeader) {
			t.Errorf("got %v, want ErrBadHeader", err)
		}
	})
	t.Run("truncated", func(t *testing.T) {
		if _, _, err := DecodeHeader(good[:3]); !errors.Is(err, ErrBadHeader) {
			t.Errorf("got %v, want ErrBadHeader", err)
		}
	})
	t.Run("empty", func(t *testing.T) {
		if _, _, err := DecodeHeader(nil); !errors.Is(err, ErrBadHeader) {
			t.Errorf("got %v, want ErrBadHeader", err)
		}
	})
}

func TestElemTypeProperties(t *testing.T) {
	for et := Int8; et <= Complex128; et++ {
		if !et.Valid() {
			t.Errorf("%v should be valid", et)
		}
		if et.Size() <= 0 {
			t.Errorf("%v size = %d", et, et.Size())
		}
		back, err := ElemTypeByName(et.String())
		if err != nil || back != et {
			t.Errorf("name roundtrip %v -> %q -> %v, %v", et, et.String(), back, err)
		}
	}
	if ElemType(0).Valid() || ElemType(9).Valid() {
		t.Error("out-of-range types must be invalid")
	}
	if _, err := ElemTypeByName("nvarchar"); err == nil {
		t.Error("unknown name must fail")
	}
	if !Complex64.IsComplex() || Complex64.IsInteger() || Complex64.IsFloat() {
		t.Error("complex64 classification wrong")
	}
	if !Int16.IsInteger() || Int16.IsFloat() || Int16.IsComplex() {
		t.Error("int16 classification wrong")
	}
	if !Float32.IsFloat() {
		t.Error("float32 classification wrong")
	}
}

func TestHeaderStringForm(t *testing.T) {
	h := Header{Class: Short, Elem: Float64, Dims: []int{5, 5}}
	if got := h.String(); got != "float[5x5] short" {
		t.Errorf("String() = %q", got)
	}
}
