package core

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

// naiveSubarray extracts a subarray by per-element indexing, the obviously
// correct reference implementation.
func naiveSubarray(t *testing.T, a *Array, offset, size []int) []float64 {
	t.Helper()
	n := 1
	for _, s := range size {
		n *= s
	}
	out := make([]float64, 0, n)
	ix := make([]int, len(size))
	for k := 0; k < n; k++ {
		src := make([]int, len(size))
		for d := range src {
			src[d] = offset[d] + ix[d]
		}
		v, err := a.Item(src...)
		if err != nil {
			t.Fatalf("Item(%v): %v", src, err)
		}
		out = append(out, v)
		for d := 0; d < len(size); d++ {
			ix[d]++
			if ix[d] < size[d] {
				break
			}
			ix[d] = 0
		}
	}
	return out
}

func TestSubarray3D(t *testing.T) {
	a := mustNew(t, Max, Float64, 8, 8, 8)
	for i := 0; i < a.Len(); i++ {
		a.SetFloatAt(i, float64(i))
	}
	offset := []int{1, 4, 6}
	size := []int{5, 3, 2}
	sub, err := a.Subarray(offset, size, false)
	if err != nil {
		t.Fatal(err)
	}
	if sub.Rank() != 3 || sub.Dim(0) != 5 || sub.Dim(1) != 3 || sub.Dim(2) != 2 {
		t.Fatalf("sub dims = %v", sub.Dims())
	}
	want := naiveSubarray(t, a, offset, size)
	got := sub.Float64s()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("element %d = %g, want %g", i, got[i], want[i])
		}
	}
}

func TestSubarrayMatchesNaiveProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	f := func() bool {
		rank := 1 + rng.Intn(4)
		dims := make([]int, rank)
		for i := range dims {
			dims[i] = 1 + rng.Intn(6)
		}
		a, err := NewAuto(Float64, dims...)
		if err != nil {
			return false
		}
		for i := 0; i < a.Len(); i++ {
			a.SetFloatAt(i, rng.NormFloat64())
		}
		offset := make([]int, rank)
		size := make([]int, rank)
		for i := range dims {
			offset[i] = rng.Intn(dims[i])
			size[i] = 1 + rng.Intn(dims[i]-offset[i])
		}
		sub, err := a.Subarray(offset, size, false)
		if err != nil {
			return false
		}
		got := sub.Float64s()
		n := 1
		for _, s := range size {
			n *= s
		}
		ix := make([]int, rank)
		for k := 0; k < n; k++ {
			src := make([]int, rank)
			for d := range src {
				src[d] = offset[d] + ix[d]
			}
			v, err := a.Item(src...)
			if err != nil || got[k] != v {
				return false
			}
			for d := 0; d < rank; d++ {
				ix[d]++
				if ix[d] < size[d] {
					break
				}
				ix[d] = 0
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSubarrayCollapse(t *testing.T) {
	m, _ := Matrix(3, 3, 1, 2, 3, 4, 5, 6, 7, 8, 9)
	// Extract column 1 (a 3x1 block) with collapse: should become rank 1.
	col, err := m.Subarray([]int{0, 1}, []int{3, 1}, true)
	if err != nil {
		t.Fatal(err)
	}
	if col.Rank() != 1 || col.Dim(0) != 3 {
		t.Fatalf("collapsed dims = %v, want [3]", col.Dims())
	}
	want := []float64{4, 5, 6} // column-major column 1
	for i, w := range want {
		if got := col.FloatAt(i); got != w {
			t.Errorf("col[%d] = %g, want %g", i, got, w)
		}
	}
	// Without collapse the shape is preserved.
	keep, _ := m.Subarray([]int{0, 1}, []int{3, 1}, false)
	if keep.Rank() != 2 {
		t.Errorf("uncollapsed rank = %d, want 2", keep.Rank())
	}
	// A single element collapses to rank 1, size 1 (not rank 0).
	one, _ := m.Subarray([]int{1, 1}, []int{1, 1}, true)
	if one.Rank() != 1 || one.Dim(0) != 1 {
		t.Errorf("degenerate collapse dims = %v, want [1]", one.Dims())
	}
}

func TestSubarrayErrors(t *testing.T) {
	a := mustNew(t, Short, Float64, 4, 4)
	if _, err := a.Subarray([]int{0}, []int{2}, false); !errors.Is(err, ErrRank) {
		t.Errorf("rank mismatch: %v", err)
	}
	if _, err := a.Subarray([]int{3, 0}, []int{2, 2}, false); !errors.Is(err, ErrBounds) {
		t.Errorf("overflow: %v", err)
	}
	if _, err := a.Subarray([]int{0, 0}, []int{0, 2}, false); !errors.Is(err, ErrBounds) {
		t.Errorf("zero size: %v", err)
	}
	if _, err := a.Subarray([]int{-1, 0}, []int{2, 2}, false); !errors.Is(err, ErrBounds) {
		t.Errorf("negative offset: %v", err)
	}
}

func TestSubarrayFromTSQLConvention(t *testing.T) {
	a := mustNew(t, Max, Float64, 10, 10, 10)
	for i := 0; i < a.Len(); i++ {
		a.SetFloatAt(i, float64(i))
	}
	sub, err := a.SubarrayFrom(IntVector(1, 4, 6), IntVector(5, 5, 3), false)
	if err != nil {
		t.Fatal(err)
	}
	if sub.Dim(0) != 5 || sub.Dim(1) != 5 || sub.Dim(2) != 3 {
		t.Fatalf("dims = %v", sub.Dims())
	}
	v, _ := sub.Item(0, 0, 0)
	w, _ := a.Item(1, 4, 6)
	if v != w {
		t.Errorf("corner = %g, want %g", v, w)
	}
}

func TestSubarrayPlanRunsAreMinimal(t *testing.T) {
	h := Header{Class: Max, Elem: Float64, Dims: []int{64, 64, 64}}
	// A full-width slab along dim 0 should be a small number of runs.
	runs, err := SubarrayPlan(h, []int{0, 10, 10}, []int{64, 4, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 16 {
		t.Errorf("runs = %d, want 16 (4*4 outer iterations)", len(runs))
	}
	for _, r := range runs {
		if r.Len != 64*8 {
			t.Errorf("run length = %d, want %d", r.Len, 64*8)
		}
	}
	// Runs must be disjoint in destination and cover the payload.
	covered := 0
	for _, r := range runs {
		covered += r.Len
	}
	if covered != 64*4*4*8 {
		t.Errorf("covered %d bytes, want %d", covered, 64*4*4*8)
	}
}

func TestSlice1D(t *testing.T) {
	a := Vector(0, 1, 2, 3, 4, 5)
	s, err := a.Slice1D(2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 3 || s.FloatAt(0) != 2 || s.FloatAt(2) != 4 {
		t.Errorf("slice = %v", s.Float64s())
	}
	m, _ := Matrix(2, 2, 1, 2, 3, 4)
	if _, err := m.Slice1D(0, 1); !errors.Is(err, ErrRank) {
		t.Errorf("Slice1D on matrix: %v", err)
	}
	if _, err := a.Slice1D(3, 3); !errors.Is(err, ErrBounds) {
		t.Errorf("empty slice: %v", err)
	}
}

func TestSubarrayClassDemotion(t *testing.T) {
	// Subsetting a max array to a page-sized block yields a short array.
	a := mustNew(t, Max, Float64, 100, 100)
	sub, err := a.Subarray([]int{0, 0}, []int{10, 10}, false)
	if err != nil {
		t.Fatal(err)
	}
	if sub.Class() != Short {
		t.Errorf("10x10 float64 subarray class = %v, want short", sub.Class())
	}
}
