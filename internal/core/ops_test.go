package core

import (
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestReshapePreservesPayload(t *testing.T) {
	a := Vector(1, 2, 3, 4, 5, 6)
	m, err := a.Reshape(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if m.Rank() != 2 || m.Dim(0) != 2 || m.Dim(1) != 3 {
		t.Fatalf("dims = %v", m.Dims())
	}
	// Column-major payload preserved: m[0,0]=1, m[1,0]=2, m[0,1]=3 ...
	v, _ := m.Item(1, 0)
	if v != 2 {
		t.Errorf("Item(1,0) = %g, want 2", v)
	}
	if _, err := a.Reshape(4, 2); !errors.Is(err, ErrShape) {
		t.Errorf("count-changing reshape: %v", err)
	}
}

func TestReshapeProperty(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 || len(raw) > 64 {
			return true
		}
		a := Vector(raw...)
		r, err := a.Reshape(len(raw), 1)
		if err != nil {
			return false
		}
		back, err := r.Reshape(len(raw))
		if err != nil {
			return false
		}
		ap, bp := a.Payload(), back.Payload()
		for i := range ap {
			if ap[i] != bp[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestReshapeRankPromotion(t *testing.T) {
	// Reshaping a short rank-1 array into rank 7 must promote to max.
	a := Vector(1, 2, 3, 4, 5, 6, 7, 8)
	r, err := a.Reshape(2, 2, 2, 1, 1, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Class() != Max {
		t.Errorf("rank-7 reshape class = %v, want max", r.Class())
	}
}

func TestCastRawInverse(t *testing.T) {
	a := Vector(3, 1, 4, 1, 5)
	raw := a.Raw()
	if len(raw) != 5*8 {
		t.Fatalf("raw length = %d", len(raw))
	}
	b, err := Cast(Short, Float64, raw, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Error("Cast(Raw(a)) != a")
	}
	if _, err := Cast(Short, Float64, raw[:8], 5); !errors.Is(err, ErrShape) {
		t.Errorf("short raw buffer: %v", err)
	}
}

func TestConvertElem(t *testing.T) {
	a := Vector(1.9, -2.9, 3.5)
	i32, err := a.ConvertElem(Int32)
	if err != nil {
		t.Fatal(err)
	}
	if i32.ElemType() != Int32 {
		t.Fatalf("elem = %v", i32.ElemType())
	}
	want := []int64{1, -2, 3}
	for i, w := range want {
		if got := i32.IntAt(i); got != w {
			t.Errorf("element %d = %d, want %d", i, got, w)
		}
	}
	// float64 -> complex128 keeps values on the real axis.
	c, err := a.ConvertElem(Complex128)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.ComplexAt(0); got != complex(1.9, 0) {
		t.Errorf("complex convert = %v", got)
	}
	// Widening past the short limit promotes the class.
	big, _ := New(Short, Int8, 900, 2, 2) // 3600 bytes + header: fits short
	w, err := big.ConvertElem(Float64)    // 28800 bytes: must become max
	if err != nil {
		t.Fatal(err)
	}
	if w.Class() != Max {
		t.Errorf("widened class = %v, want max", w.Class())
	}
}

func TestConvertClass(t *testing.T) {
	a := Vector(1, 2, 3)
	m, err := a.ConvertClass(Max)
	if err != nil {
		t.Fatal(err)
	}
	if m.Class() != Max || m.Len() != 3 || m.FloatAt(1) != 2 {
		t.Errorf("max convert wrong: %v", m)
	}
	back, err := m.ConvertClass(Short)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(back) {
		t.Error("short->max->short roundtrip differs")
	}
	// A genuinely large max array cannot demote.
	big := mustNew(t, Max, Float64, 10000)
	if _, err := big.ConvertClass(Short); !errors.Is(err, ErrTooLarge) {
		t.Errorf("oversized demotion: %v", err)
	}
}

func TestAggregates(t *testing.T) {
	a := Vector(1, 2, 3, 4)
	if got := a.Sum(); got != 10 {
		t.Errorf("Sum = %g", got)
	}
	if got := a.Mean(); got != 2.5 {
		t.Errorf("Mean = %g", got)
	}
	lo, hi := a.MinMax()
	if lo != 1 || hi != 4 {
		t.Errorf("MinMax = %g,%g", lo, hi)
	}
	if got := a.Std(); math.Abs(got-math.Sqrt(1.25)) > 1e-12 {
		t.Errorf("Std = %g", got)
	}
	if got := a.Norm2(); math.Abs(got-math.Sqrt(30)) > 1e-12 {
		t.Errorf("Norm2 = %g", got)
	}
}

func TestSumComplex(t *testing.T) {
	c, _ := FromComplex128s(Short, Complex128, []complex128{1 + 1i, 2 - 3i}, 2)
	if got := c.SumComplex(); got != 3-2i {
		t.Errorf("SumComplex = %v", got)
	}
	if got := c.Norm2(); math.Abs(got-math.Sqrt(1+1+4+9)) > 1e-12 {
		t.Errorf("complex Norm2 = %g", got)
	}
}

func TestReduceDim(t *testing.T) {
	// 2x3 matrix, column-major payload [1 2 | 3 4 | 5 6]:
	// m[0,:] = 1,3,5 ; m[1,:] = 2,4,6
	m, _ := Matrix(2, 3, 1, 2, 3, 4, 5, 6)
	rows, err := m.ReduceDim(1, ReduceSum) // sum over columns -> per-row sums
	if err != nil {
		t.Fatal(err)
	}
	if rows.Rank() != 1 || rows.Dim(0) != 2 {
		t.Fatalf("dims = %v", rows.Dims())
	}
	if rows.FloatAt(0) != 9 || rows.FloatAt(1) != 12 {
		t.Errorf("row sums = %v, want [9 12]", rows.Float64s())
	}
	cols, err := m.ReduceDim(0, ReduceSum) // sum over rows -> per-column sums
	if err != nil {
		t.Fatal(err)
	}
	if cols.Dim(0) != 3 || cols.FloatAt(0) != 3 || cols.FloatAt(1) != 7 || cols.FloatAt(2) != 11 {
		t.Errorf("col sums = %v, want [3 7 11]", cols.Float64s())
	}
	mean, _ := m.ReduceDim(0, ReduceMean)
	if mean.FloatAt(0) != 1.5 {
		t.Errorf("col mean = %v", mean.Float64s())
	}
	mn, _ := m.ReduceDim(0, ReduceMin)
	mx, _ := m.ReduceDim(0, ReduceMax)
	if mn.FloatAt(2) != 5 || mx.FloatAt(2) != 6 {
		t.Errorf("min/max = %v / %v", mn.Float64s(), mx.Float64s())
	}
	if _, err := m.ReduceDim(2, ReduceSum); !errors.Is(err, ErrRank) {
		t.Errorf("bad axis: %v", err)
	}
}

func TestReduceDimMatchesManual3D(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := mustNew(t, Max, Float64, 4, 5, 6)
	for i := 0; i < a.Len(); i++ {
		a.SetFloatAt(i, rng.Float64())
	}
	for axis := 0; axis < 3; axis++ {
		red, err := a.ReduceDim(axis, ReduceSum)
		if err != nil {
			t.Fatal(err)
		}
		// Manual: sum over the axis with Item.
		dims := a.Dims()
		outDims := append([]int{}, dims[:axis]...)
		outDims = append(outDims, dims[axis+1:]...)
		check := mustNew(t, Max, Float64, outDims...)
		ix := make([]int, 3)
		for i0 := 0; i0 < dims[0]; i0++ {
			for i1 := 0; i1 < dims[1]; i1++ {
				for i2 := 0; i2 < dims[2]; i2++ {
					ix[0], ix[1], ix[2] = i0, i1, i2
					v, _ := a.Item(ix...)
					out := make([]int, 0, 2)
					for k := 0; k < 3; k++ {
						if k != axis {
							out = append(out, ix[k])
						}
					}
					lin, _ := check.LinearIndex(out...)
					check.SetFloatAt(lin, check.FloatAt(lin)+v)
				}
			}
		}
		for i := 0; i < red.Len(); i++ {
			if math.Abs(red.FloatAt(i)-check.FloatAt(i)) > 1e-9 {
				t.Fatalf("axis %d element %d: %g vs %g", axis, i, red.FloatAt(i), check.FloatAt(i))
			}
		}
	}
}

func TestElementwiseOps(t *testing.T) {
	a := Vector(1, 2, 3)
	b := Vector(10, 20, 30)
	sum, err := Add(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if got := sum.Float64s(); got[0] != 11 || got[2] != 33 {
		t.Errorf("Add = %v", got)
	}
	diff, _ := Sub(b, a)
	if diff.FloatAt(1) != 18 {
		t.Errorf("Sub = %v", diff.Float64s())
	}
	prod, _ := Mul(a, b)
	if prod.FloatAt(2) != 90 {
		t.Errorf("Mul = %v", prod.Float64s())
	}
	quot, _ := Div(b, a)
	if quot.FloatAt(1) != 10 {
		t.Errorf("Div = %v", quot.Float64s())
	}
	sc, _ := a.Scale(2)
	if sc.FloatAt(2) != 6 {
		t.Errorf("Scale = %v", sc.Float64s())
	}
	ax, _ := AXPY(2, a, b)
	if ax.FloatAt(0) != 12 {
		t.Errorf("AXPY = %v", ax.Float64s())
	}
	d, _ := Dot(a, b)
	if d != 140 {
		t.Errorf("Dot = %g", d)
	}
	if _, err := Add(a, Vector(1, 2)); !errors.Is(err, ErrShape) {
		t.Errorf("shape mismatch: %v", err)
	}
}

func TestMaskedDot(t *testing.T) {
	a := Vector(1, 2, 3, 4)
	b := Vector(1, 1, 1, 1)
	flags, _ := FromInt64s(Short, Int16, []int64{0, 1, 0, 0}, 4)
	got, used, err := MaskedDot(a, b, flags)
	if err != nil {
		t.Fatal(err)
	}
	if got != 8 || used != 3 {
		t.Errorf("MaskedDot = %g over %d bins, want 8 over 3", got, used)
	}
}

func TestResultElemPromotion(t *testing.T) {
	i, _ := FromInt64s(Short, Int32, []int64{1, 2}, 2)
	f := Vector(0.5, 0.5)
	sum, err := Add(i, f)
	if err != nil {
		t.Fatal(err)
	}
	if sum.ElemType() != Float64 {
		t.Errorf("int32+float64 elem = %v, want float", sum.ElemType())
	}
	c, _ := FromComplex128s(Short, Complex64, []complex128{1i, 2i}, 2)
	cs, err := Add(c, f)
	if err != nil {
		t.Fatal(err)
	}
	if !cs.ElemType().IsComplex() {
		t.Errorf("complex+float elem = %v", cs.ElemType())
	}
	if got := cs.ComplexAt(0); got != complex(0.5, 1) {
		t.Errorf("complex add = %v", got)
	}
}

func TestApplyAbs(t *testing.T) {
	a := Vector(-1, 2, -3)
	abs, err := a.Abs()
	if err != nil {
		t.Fatal(err)
	}
	if got := abs.Float64s(); got[0] != 1 || got[2] != 3 {
		t.Errorf("Abs = %v", got)
	}
	c, _ := FromComplex128s(Short, Complex128, []complex128{3 + 4i}, 1)
	cm, err := c.Abs()
	if err != nil {
		t.Fatal(err)
	}
	if cm.ElemType() != Float64 || cm.FloatAt(0) != 5 {
		t.Errorf("complex Abs = %v %g", cm.ElemType(), cm.FloatAt(0))
	}
	sq, _ := a.Apply(func(x float64) float64 { return x * x })
	if sq.FloatAt(2) != 9 {
		t.Errorf("Apply = %v", sq.Float64s())
	}
}

func TestBuilderConcat(t *testing.T) {
	// The T-SQL Concat pattern: assemble a 100x200-shaped array cell by cell
	// (scaled down to 4x5 here).
	b, err := NewBuilderFromDims(Short, Float64, IntVector(4, 5))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 5; j++ {
			if err := b.SetVec(IntVector(i, j), float64(10*i+j)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if b.Cells() != 20 {
		t.Errorf("Cells = %d", b.Cells())
	}
	a := b.Array()
	v, _ := a.Item(3, 4)
	if v != 34 {
		t.Errorf("Item(3,4) = %g, want 34", v)
	}
}

func TestToTableFromCellsRoundtrip(t *testing.T) {
	m, _ := Matrix(2, 3, 1, 2, 3, 4, 5, 6)
	cells := m.ToTable()
	if len(cells) != 6 {
		t.Fatalf("cells = %d", len(cells))
	}
	back, err := FromCells(Short, Float64, m.Dims(), cells)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Equal(back) {
		t.Error("ToTable/FromCells roundtrip differs")
	}
}

func TestFormatParseRoundtrip(t *testing.T) {
	m, _ := Matrix(2, 3, 1, 2, 3, 4, 5, 6)
	s := Format(m)
	if !strings.HasPrefix(s, "[[") {
		t.Fatalf("Format = %q", s)
	}
	back, err := Parse(Float64, s)
	if err != nil {
		t.Fatal(err)
	}
	if back.Rank() != 2 || back.Dim(0) != 2 || back.Dim(1) != 3 {
		t.Fatalf("parsed dims = %v", back.Dims())
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			a, _ := m.Item(i, j)
			b, _ := back.Item(i, j)
			if a != b {
				t.Errorf("(%d,%d): %g vs %g", i, j, a, b)
			}
		}
	}
}

func TestFormatParseComplex(t *testing.T) {
	c, _ := FromComplex128s(Short, Complex128, []complex128{1 + 2i, -3 - 0.5i}, 2)
	s := Format(c)
	back, err := Parse(Complex128, s)
	if err != nil {
		t.Fatalf("Parse(%q): %v", s, err)
	}
	for i := 0; i < 2; i++ {
		if back.ComplexAt(i) != c.ComplexAt(i) {
			t.Errorf("element %d: %v vs %v", i, back.ComplexAt(i), c.ComplexAt(i))
		}
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := Parse(Float64, "[1,2,[3]]"); !errors.Is(err, ErrShape) {
		t.Errorf("ragged literal: %v", err)
	}
	if _, err := Parse(Float64, "[1,2"); err == nil {
		t.Error("unterminated literal must fail")
	}
	if _, err := Parse(Float64, "[1,x]"); err == nil {
		t.Error("bad scalar must fail")
	}
	if _, err := Parse(Float64, "[1] trailing"); err == nil {
		t.Error("trailing characters must fail")
	}
	if _, err := Parse(Float64, "  "); err == nil {
		t.Error("empty input must fail")
	}
}

func TestParseScientificAndNegative(t *testing.T) {
	a, err := Parse(Float64, "[1e-3,-2.5E2,+4]")
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1e-3, -250, 4}
	for i, w := range want {
		if got := a.FloatAt(i); got != w {
			t.Errorf("element %d = %g, want %g", i, got, w)
		}
	}
}

func TestFloat64sConversionPaths(t *testing.T) {
	// Exercise the fast path (Float64), the Float32 path and the generic path.
	f64 := Vector(1.5, 2.5)
	if got := f64.Float64s(); got[1] != 2.5 {
		t.Errorf("float64 path: %v", got)
	}
	f32, _ := FromFloat64s(Short, Float32, []float64{1.5, 2.5}, 2)
	if got := f32.Float64s(); got[0] != 1.5 {
		t.Errorf("float32 path: %v", got)
	}
	i16, _ := FromInt64s(Short, Int16, []int64{-7, 9}, 2)
	if got := i16.Float64s(); got[0] != -7 || got[1] != 9 {
		t.Errorf("generic path: %v", got)
	}
	if got := i16.Int64s(); got[0] != -7 {
		t.Errorf("Int64s: %v", got)
	}
	if got := i16.Ints(); got[1] != 9 {
		t.Errorf("Ints: %v", got)
	}
}

func TestSetFloat64s(t *testing.T) {
	a := mustNew(t, Short, Float64, 3)
	if err := a.SetFloat64s([]float64{7, 8, 9}); err != nil {
		t.Fatal(err)
	}
	if a.FloatAt(2) != 9 {
		t.Errorf("SetFloat64s: %v", a.Float64s())
	}
	if err := a.SetFloat64s([]float64{1}); !errors.Is(err, ErrShape) {
		t.Errorf("length mismatch: %v", err)
	}
}
