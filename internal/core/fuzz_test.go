package core

import (
	"testing"
)

// FuzzWrap drives blob decoding (DecodeHeader + payload validation) with
// arbitrary bytes. The invariants: Wrap never panics, a Wrap that
// succeeds yields an array whose accessors are safe to call, and
// re-wrapping the array's own bytes round-trips.
func FuzzWrap(f *testing.F) {
	seed := func(a *Array, err error) {
		if err == nil {
			f.Add(a.Bytes())
		}
	}
	f.Add([]byte{})
	f.Add([]byte{Magic})
	seed(Vector(1, 2, 3, 4, 5), nil)
	f.Add(IntVector(7, 8, 9).Bytes())
	seed(Matrix(3, 4, make([]float64, 12)...))
	seed(New(Max, Float64, 5, 5, 5))
	seed(New(Max, Complex128, 2, 3))
	seed(New(Short, Int8, 6, 1, 2))
	seed(New(Short, Float32, 0))
	// Truncated and corrupted variants of a valid blob.
	v := Vector(1, 2, 3).Bytes()
	f.Add(v[:len(v)-1])
	f.Add(v[:ShortHeaderSize])
	corrupt := append([]byte(nil), v...)
	corrupt[2] = 0xFF
	f.Add(corrupt)
	f.Fuzz(func(t *testing.T, b []byte) {
		a, err := Wrap(b)
		if err != nil {
			return
		}
		// The header validated: every size derived from it must be sane
		// and the element accessors in range.
		if a.Len() < 0 {
			t.Fatalf("Wrap accepted negative element count %d", a.Len())
		}
		h := a.Header()
		if got, want := len(a.Payload()), h.DataBytes(); got != want {
			t.Fatalf("payload %d bytes, header declares %d", got, want)
		}
		if a.Len() > 0 {
			_ = a.FloatAt(0)
			_ = a.IntAt(a.Len() - 1)
			_ = a.ComplexAt(0)
		}
		if a.Len() <= 1<<10 {
			if _, err := Parse(a.ElemType(), Format(a)); err != nil {
				t.Fatalf("Format output failed to parse back: %v", err)
			}
		}
		if _, err := Wrap(a.Bytes()); err != nil {
			t.Fatalf("re-wrap of validated bytes failed: %v", err)
		}
	})
}
