package core

import (
	"encoding/binary"
	"fmt"
	"math"
)

// FromFloat64s builds an array of element type et from float64 data laid
// out in column-major order. len(data) must equal the product of dims.
func FromFloat64s(class StorageClass, et ElemType, data []float64, dims ...int) (*Array, error) {
	a, err := New(class, et, dims...)
	if err != nil {
		return nil, err
	}
	if len(data) != a.Len() {
		return nil, fmt.Errorf("%w: %d values for %d elements", ErrShape, len(data), a.Len())
	}
	for i, v := range data {
		a.SetFloatAt(i, v)
	}
	return a, nil
}

// FromInt64s builds an array of element type et from int64 data.
func FromInt64s(class StorageClass, et ElemType, data []int64, dims ...int) (*Array, error) {
	a, err := New(class, et, dims...)
	if err != nil {
		return nil, err
	}
	if len(data) != a.Len() {
		return nil, fmt.Errorf("%w: %d values for %d elements", ErrShape, len(data), a.Len())
	}
	for i, v := range data {
		a.SetIntAt(i, v)
	}
	return a, nil
}

// FromComplex128s builds a complex array from complex128 data.
func FromComplex128s(class StorageClass, et ElemType, data []complex128, dims ...int) (*Array, error) {
	a, err := New(class, et, dims...)
	if err != nil {
		return nil, err
	}
	if len(data) != a.Len() {
		return nil, fmt.Errorf("%w: %d values for %d elements", ErrShape, len(data), a.Len())
	}
	for i, v := range data {
		a.SetComplexAt(i, v)
	}
	return a, nil
}

// Vector builds a rank-1 short float64 array from its arguments, the Go
// counterpart of the T-SQL FloatArray.Vector_N constructors.
func Vector(vals ...float64) *Array {
	a, err := FromFloat64s(Short, Float64, vals, len(vals))
	if err != nil {
		// A vector that does not fit the short class must be built
		// explicitly as a max array; Vector is the convenience path.
		a, err = FromFloat64s(Max, Float64, vals, len(vals))
		if err != nil {
			panic(err) // unreachable: rank-1 max arrays have no size limit here
		}
	}
	return a
}

// IntVector builds a rank-1 short int32 array, the counterpart of
// IntArray.Vector_N. It is the index-vector type used by Subarray calls.
func IntVector(vals ...int) *Array {
	data := make([]int64, len(vals))
	for i, v := range vals {
		data[i] = int64(v)
	}
	a, err := FromInt64s(Short, Int32, data, len(vals))
	if err != nil {
		panic(err) // index vectors are tiny by construction
	}
	return a
}

// Matrix builds a rank-2 short float64 array with r rows and c columns
// from vals given in column-major order (the storage order), the
// counterpart of FloatArray.Matrix_N.
func Matrix(r, c int, vals ...float64) (*Array, error) {
	return FromFloat64s(Short, Float64, vals, r, c)
}

// Float64s converts the whole payload to a []float64 in column-major
// order — the marshaling step that hands an array to a math library.
func (a *Array) Float64s() []float64 {
	out := make([]float64, a.Len())
	a.CopyFloat64s(out)
	return out
}

// CopyFloat64s fills dst with the array's elements converted to float64.
// dst must have length >= a.Len(). The Float64 case is a straight decode
// loop — the analogue of the paper's "simple memory copy" for on-page
// arrays.
func (a *Array) CopyFloat64s(dst []float64) {
	p := a.Payload()
	switch a.hdr.Elem {
	case Float64:
		for i := range dst[:a.Len()] {
			dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(p[8*i:]))
		}
	case Float32:
		for i := range dst[:a.Len()] {
			dst[i] = float64(math.Float32frombits(binary.LittleEndian.Uint32(p[4*i:])))
		}
	default:
		for i := 0; i < a.Len(); i++ {
			dst[i] = a.FloatAt(i)
		}
	}
}

// SetFloat64s overwrites the payload from src (column-major), converting
// to the array's element type. len(src) must equal a.Len().
func (a *Array) SetFloat64s(src []float64) error {
	if len(src) != a.Len() {
		return fmt.Errorf("%w: %d values for %d elements", ErrShape, len(src), a.Len())
	}
	p := a.Payload()
	switch a.hdr.Elem {
	case Float64:
		for i, v := range src {
			binary.LittleEndian.PutUint64(p[8*i:], math.Float64bits(v))
		}
	default:
		for i, v := range src {
			a.SetFloatAt(i, v)
		}
	}
	return nil
}

// Int64s converts the whole payload to []int64.
func (a *Array) Int64s() []int64 {
	out := make([]int64, a.Len())
	for i := range out {
		out[i] = a.IntAt(i)
	}
	return out
}

// Ints converts the whole payload to []int (useful for index vectors).
func (a *Array) Ints() []int {
	out := make([]int, a.Len())
	for i := range out {
		out[i] = int(a.IntAt(i))
	}
	return out
}

// Complex128s converts the whole payload to []complex128.
func (a *Array) Complex128s() []complex128 {
	out := make([]complex128, a.Len())
	for i := range out {
		out[i] = a.ComplexAt(i)
	}
	return out
}

// ConvertElem returns a new array with the same shape and storage class
// but element type et, converting every element. Converting a complex
// array to a real type keeps the real part.
func (a *Array) ConvertElem(et ElemType) (*Array, error) {
	class := a.hdr.Class
	// The target may not fit the short class if the element widens.
	h := Header{Class: class, Elem: et, Dims: a.hdr.Dims}
	if class == Short && h.Validate() != nil {
		class = Max
	}
	out, err := New(class, et, a.hdr.Dims...)
	if err != nil {
		return nil, err
	}
	switch {
	case et.IsComplex():
		for i := 0; i < a.Len(); i++ {
			out.SetComplexAt(i, a.ComplexAt(i))
		}
	case et.IsInteger() && a.hdr.Elem.IsInteger():
		for i := 0; i < a.Len(); i++ {
			out.SetIntAt(i, a.IntAt(i))
		}
	default:
		for i := 0; i < a.Len(); i++ {
			out.SetFloatAt(i, a.FloatAt(i))
		}
	}
	return out, nil
}

// ConvertClass returns the array re-serialized under the other storage
// class (short <-> max), re-checking short-class limits.
func (a *Array) ConvertClass(class StorageClass) (*Array, error) {
	if class == a.hdr.Class {
		return a.Clone(), nil
	}
	out, err := New(class, a.hdr.Elem, a.hdr.Dims...)
	if err != nil {
		return nil, err
	}
	copy(out.Payload(), a.Payload())
	return out, nil
}
