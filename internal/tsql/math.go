package tsql

import (
	"fmt"

	"sqlarray/internal/core"
	"sqlarray/internal/engine"
	"sqlarray/internal/fft"
	"sqlarray/internal/lapack"
)

// registerMath installs the §5.3 math-library entry points. They live
// under the max-class float/complex schemas, as in the paper's example
// "SET @ft = FloatArrayMax.FFTForward(@a)"; short-class and Float32
// inputs are accepted and promoted, because "calling them only requires
// marshaling pointers" once the blob is in memory.
func registerMath(reg *engine.FuncRegistry) {
	// FFT of any real or complex array (any rank: N-dimensional
	// transform over the column-major payload).
	fftFn := func(dir fft.Direction) engine.ScalarFunc {
		return func(args []engine.Value) (engine.Value, error) {
			a, err := anyArrayArg(args[0])
			if err != nil {
				return engine.Null, err
			}
			data := a.Complex128s()
			dims := a.Dims()
			if len(dims) == 0 {
				dims = []int{1}
			}
			if err := fft.FFTN(data, dims, dir); err != nil {
				return engine.Null, err
			}
			out, err := core.FromComplex128s(core.Max, core.Complex128, data, dims...)
			if err != nil {
				return engine.Null, err
			}
			return arrayResult(out), nil
		}
	}
	reg.Register("FloatArrayMax.FFTForward", 1, fftFn(fft.Forward))
	reg.Register("FloatArrayMax.FFTInverse", 1, fftFn(fft.Inverse))
	reg.Register("DoubleComplexArrayMax.FFTForward", 1, fftFn(fft.Forward))
	reg.Register("DoubleComplexArrayMax.FFTInverse", 1, fftFn(fft.Inverse))

	// matArg converts a rank-2 array into a lapack matrix (zero-copy in
	// spirit: one bulk conversion, no transposition, because both sides
	// are column-major).
	matArg := func(v engine.Value) (lapack.Mat, error) {
		a, err := anyArrayArg(v)
		if err != nil {
			return lapack.Mat{}, err
		}
		if a.Rank() != 2 {
			return lapack.Mat{}, fmt.Errorf("%w: matrix function wants rank 2, got %d",
				core.ErrRank, a.Rank())
		}
		return lapack.MatFrom(a.Dim(0), a.Dim(1), a.Float64s())
	}
	vecArg := func(v engine.Value) ([]float64, error) {
		a, err := anyArrayArg(v)
		if err != nil {
			return nil, err
		}
		if a.Rank() != 1 {
			return nil, fmt.Errorf("%w: vector function wants rank 1, got %d",
				core.ErrRank, a.Rank())
		}
		return a.Float64s(), nil
	}
	vecResult := func(x []float64) (engine.Value, error) {
		out, err := core.FromFloat64s(core.Max, core.Float64, x, len(x))
		if err != nil {
			return engine.Null, err
		}
		return arrayResult(out), nil
	}

	// SVDValues: the *gesvd wrapper of §3.6 reduced to its singular
	// values (full U/V are exposed through the Go API).
	reg.Register("FloatArrayMax.SVDValues", 1, func(args []engine.Value) (engine.Value, error) {
		m, err := matArg(args[0])
		if err != nil {
			return engine.Null, err
		}
		s, err := lapack.SingularValues(m)
		if err != nil {
			return engine.Null, err
		}
		return vecResult(s)
	})
	reg.Register("FloatArrayMax.Solve", 2, func(args []engine.Value) (engine.Value, error) {
		m, err := matArg(args[0])
		if err != nil {
			return engine.Null, err
		}
		b, err := vecArg(args[1])
		if err != nil {
			return engine.Null, err
		}
		x, err := lapack.LeastSquares(m, b)
		if err != nil {
			return engine.Null, err
		}
		return vecResult(x)
	})
	reg.Register("FloatArrayMax.NNLS", 2, func(args []engine.Value) (engine.Value, error) {
		m, err := matArg(args[0])
		if err != nil {
			return engine.Null, err
		}
		b, err := vecArg(args[1])
		if err != nil {
			return engine.Null, err
		}
		x, err := lapack.NNLS(m, b)
		if err != nil {
			return engine.Null, err
		}
		return vecResult(x)
	})
	reg.Register("FloatArrayMax.MatMul", 2, func(args []engine.Value) (engine.Value, error) {
		a, err := matArg(args[0])
		if err != nil {
			return engine.Null, err
		}
		b, err := matArg(args[1])
		if err != nil {
			return engine.Null, err
		}
		c, err := lapack.MatMul(a, b)
		if err != nil {
			return engine.Null, err
		}
		out, err := core.FromFloat64s(core.Max, core.Float64, c.Data, c.M, c.N)
		if err != nil {
			return engine.Null, err
		}
		return arrayResult(out), nil
	})
}
