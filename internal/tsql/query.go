package tsql

import (
	"fmt"

	"sqlarray/internal/core"
	"sqlarray/internal/engine"
	"sqlarray/internal/sqlmini"
)

// registerQueryFuncs installs the table-to-array conversion functions
// that take a SQL query as a string parameter — the paper's replacement
// for the too-slow UDA Concat (§4.2: "we wrote plain SQL CLR scalar
// functions that take a SQL query as an input parameter of string,
// aggregate rows sequentially and return the resulting array").
//
// FloatArrayMax.FromQuery(@l, 'SELECT ix, v FROM table') builds an array
// shaped by the index vector @l from rows of (index-vector, value).
// FloatArrayMax.VectorFromQuery(n, 'SELECT i, v FROM t') is the common
// rank-1 case with plain integer indexes.
func registerQueryFuncs(db *engine.DB) {
	reg := db.Funcs()
	for _, s := range allSchemas() {
		if s.class != core.Max {
			continue // the paper registers these on the max schemas
		}
		s := s
		reg.Register(s.name+".FromQuery", 2, func(args []engine.Value) (engine.Value, error) {
			dims, err := intVectorArg(args[0])
			if err != nil {
				return engine.Null, err
			}
			q, err := args[1].AsBinary()
			if err != nil {
				return engine.Null, err
			}
			res, err := sqlmini.Run(db, string(q))
			if err != nil {
				return engine.Null, fmt.Errorf("tsql: FromQuery inner query: %w", err)
			}
			if len(res.Columns) != 2 {
				return engine.Null, fmt.Errorf("tsql: FromQuery wants (index, value) rows, got %d columns",
					len(res.Columns))
			}
			b, err := core.NewBuilder(core.Max, s.elem, dims...)
			if err != nil {
				return engine.Null, err
			}
			for _, row := range res.Rows {
				ix, err := anyArrayArg(row[0])
				if err != nil {
					return engine.Null, fmt.Errorf("tsql: FromQuery index column: %w", err)
				}
				v, err := row[1].AsFloat()
				if err != nil {
					return engine.Null, err
				}
				if err := b.SetVec(ix, v); err != nil {
					return engine.Null, err
				}
			}
			return arrayResult(b.Array()), nil
		})
		reg.Register(s.name+".VectorFromQuery", 2, func(args []engine.Value) (engine.Value, error) {
			n, err := args[0].AsInt()
			if err != nil {
				return engine.Null, err
			}
			q, err := args[1].AsBinary()
			if err != nil {
				return engine.Null, err
			}
			res, err := sqlmini.Run(db, string(q))
			if err != nil {
				return engine.Null, fmt.Errorf("tsql: VectorFromQuery inner query: %w", err)
			}
			if len(res.Columns) != 2 {
				return engine.Null, fmt.Errorf("tsql: VectorFromQuery wants (i, v) rows, got %d columns",
					len(res.Columns))
			}
			b, err := core.NewBuilder(core.Max, s.elem, int(n))
			if err != nil {
				return engine.Null, err
			}
			for _, row := range res.Rows {
				i, err := row[0].AsInt()
				if err != nil {
					return engine.Null, err
				}
				v, err := row[1].AsFloat()
				if err != nil {
					return engine.Null, err
				}
				if err := b.SetLinear(int(i), v); err != nil {
					return engine.Null, err
				}
			}
			return arrayResult(b.Array()), nil
		})
	}
}
