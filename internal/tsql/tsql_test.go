package tsql

import (
	"errors"
	"math"
	"testing"

	"sqlarray/internal/core"
	"sqlarray/internal/engine"
	"sqlarray/internal/sqlmini"
)

// newDB builds a registered database with a one-row "dual" table (the
// dialect requires a FROM clause) and a small array-valued table.
func newDB(t *testing.T) *engine.DB {
	t.Helper()
	db := engine.NewMemDB()
	RegisterAll(db)
	s, err := engine.NewSchema(engine.Column{Name: "id", Type: engine.ColInt64})
	if err != nil {
		t.Fatal(err)
	}
	dual, err := db.CreateTable("dual", s)
	if err != nil {
		t.Fatal(err)
	}
	if err := dual.Insert([]engine.Value{engine.IntValue(1)}); err != nil {
		t.Fatal(err)
	}
	return db
}

func query1(t *testing.T, db *engine.DB, q string) engine.Value {
	t.Helper()
	res, err := sqlmini.Run(db, q)
	if err != nil {
		t.Fatalf("Run(%q): %v", q, err)
	}
	v, err := res.Scalar()
	if err != nil {
		t.Fatalf("Scalar(%q): %v", q, err)
	}
	return v
}

func TestPaperVectorItemExample(t *testing.T) {
	// §5.1: FloatArray.Vector_5(1.0,...,5.0) then Item_1(@a, 3) returns
	// "the third (zero indexed) element".
	db := newDB(t)
	v := query1(t, db,
		"SELECT FloatArray.Item_1(FloatArray.Vector_5(1.0, 2.0, 3.0, 4.0, 5.0), 3) FROM dual")
	if v.F != 4.0 {
		t.Errorf("Item_1(Vector_5, 3) = %v, want 4", v)
	}
}

func TestPaperMatrixExample(t *testing.T) {
	// §5.1: Matrix_2(0.1,0.2,0.3,0.4); Item_2(@m, 1, 0) — column-major,
	// so element (1,0) is the second listed value.
	db := newDB(t)
	v := query1(t, db,
		"SELECT FloatArray.Item_2(FloatArray.Matrix_2(0.1, 0.2, 0.3, 0.4), 1, 0) FROM dual")
	if v.F != 0.2 {
		t.Errorf("Item_2(Matrix_2, 1, 0) = %v, want 0.2", v)
	}
}

func TestUpdateItemValueSemantics(t *testing.T) {
	db := newDB(t)
	// UpdateItem returns a new blob; reading index 3 of the updated array.
	v := query1(t, db,
		"SELECT FloatArray.Item_1(FloatArray.UpdateItem_1(FloatArray.Vector_5(1,2,3,4,5), 3, 4.5), 3) FROM dual")
	if v.F != 4.5 {
		t.Errorf("updated element = %v, want 4.5", v)
	}
}

func TestSubarrayTSQLConvention(t *testing.T) {
	// The §5.1 Subarray example on a 10x10x10 max array.
	db := newDB(t)
	a, err := core.New(core.Max, core.Float64, 10, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < a.Len(); i++ {
		a.SetFloatAt(i, float64(i))
	}
	s, _ := engine.NewSchema(
		engine.Column{Name: "id", Type: engine.ColInt64},
		engine.Column{Name: "a", Type: engine.ColVarBinaryMax},
	)
	tbl, err := db.CreateTable("cubes", s)
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.Insert([]engine.Value{engine.IntValue(1), engine.BinaryMaxValue(a.Bytes())}); err != nil {
		t.Fatal(err)
	}
	// Blob columns come back as refs; materialize through a scan is the
	// engine-level path — here exercise the pure-function path instead.
	sub, err := db.Funcs().CallByName("FloatArrayMax.Subarray", []engine.Value{
		engine.BinaryMaxValue(a.Bytes()),
		mustCall(t, db, "IntArray.Vector_3", engine.IntValue(1), engine.IntValue(4), engine.IntValue(6)),
		mustCall(t, db, "IntArray.Vector_3", engine.IntValue(5), engine.IntValue(5), engine.IntValue(3)),
		engine.IntValue(0),
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := core.Wrap(sub.B)
	if err != nil {
		t.Fatal(err)
	}
	if got.Rank() != 3 || got.Dim(0) != 5 || got.Dim(2) != 3 {
		t.Fatalf("sub dims = %v", got.Dims())
	}
	corner, _ := got.Item(0, 0, 0)
	want, _ := a.Item(1, 4, 6)
	if corner != want {
		t.Errorf("corner = %g, want %g", corner, want)
	}
	// Collapse flag drops unit dimensions.
	sub2, err := db.Funcs().CallByName("FloatArrayMax.Subarray", []engine.Value{
		engine.BinaryMaxValue(a.Bytes()),
		mustCall(t, db, "IntArray.Vector_3", engine.IntValue(0), engine.IntValue(0), engine.IntValue(0)),
		mustCall(t, db, "IntArray.Vector_3", engine.IntValue(10), engine.IntValue(1), engine.IntValue(1)),
		engine.IntValue(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	col, _ := core.Wrap(sub2.B)
	if col.Rank() != 1 || col.Dim(0) != 10 {
		t.Errorf("collapsed dims = %v", col.Dims())
	}
}

func mustCall(t *testing.T, db *engine.DB, name string, args ...engine.Value) engine.Value {
	t.Helper()
	v, err := db.Funcs().CallByName(name, args)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return v
}

func TestTypeAndClassMismatchDetected(t *testing.T) {
	db := newDB(t)
	intVec := mustCall(t, db, "IntArray.Vector_2", engine.IntValue(1), engine.IntValue(2))
	// Passing an int array to a float function trips the header check.
	if _, err := db.Funcs().CallByName("FloatArray.Sum", []engine.Value{intVec}); !errors.Is(err, core.ErrTypeMismatch) {
		t.Errorf("type mismatch: %v", err)
	}
	// Passing a short array to a max function trips the class check.
	fv := mustCall(t, db, "FloatArray.Vector_2", engine.FloatValue(1), engine.FloatValue(2))
	if _, err := db.Funcs().CallByName("FloatArrayMax.Sum", []engine.Value{fv}); !errors.Is(err, core.ErrClassMismatch) {
		t.Errorf("class mismatch: %v", err)
	}
	// Garbage bytes trip the magic check.
	if _, err := db.Funcs().CallByName("FloatArray.Sum", []engine.Value{engine.BinaryValue([]byte{1, 2, 3})}); !errors.Is(err, core.ErrBadHeader) {
		t.Errorf("garbage blob: %v", err)
	}
}

func TestShapeInspection(t *testing.T) {
	db := newDB(t)
	m := mustCall(t, db, "FloatArray.Matrix_3",
		engine.FloatValue(1), engine.FloatValue(2), engine.FloatValue(3),
		engine.FloatValue(4), engine.FloatValue(5), engine.FloatValue(6),
		engine.FloatValue(7), engine.FloatValue(8), engine.FloatValue(9))
	if v := mustCall(t, db, "FloatArray.Length", m); v.I != 9 {
		t.Errorf("Length = %v", v)
	}
	if v := mustCall(t, db, "FloatArray.Rank", m); v.I != 2 {
		t.Errorf("Rank = %v", v)
	}
	if v := mustCall(t, db, "FloatArray.Dim", m, engine.IntValue(1)); v.I != 3 {
		t.Errorf("Dim = %v", v)
	}
	if _, err := db.Funcs().CallByName("FloatArray.Dim", []engine.Value{m, engine.IntValue(5)}); err == nil {
		t.Error("bad dim index must fail")
	}
}

func TestReshapeCastRawRoundtrip(t *testing.T) {
	db := newDB(t)
	v := mustCall(t, db, "FloatArray.Vector_6",
		engine.FloatValue(1), engine.FloatValue(2), engine.FloatValue(3),
		engine.FloatValue(4), engine.FloatValue(5), engine.FloatValue(6))
	m := mustCall(t, db, "FloatArray.Reshape_2", v, engine.IntValue(2), engine.IntValue(3))
	a, err := core.Wrap(m.B)
	if err != nil || a.Rank() != 2 {
		t.Fatalf("reshape: %v, %v", a, err)
	}
	raw := mustCall(t, db, "FloatArray.Raw", m)
	if len(raw.B) != 48 {
		t.Errorf("raw length = %d", len(raw.B))
	}
	back := mustCall(t, db, "FloatArray.Cast_2", engine.BinaryValue(raw.B), engine.IntValue(2), engine.IntValue(3))
	b, err := core.Wrap(back.B)
	if err != nil || !a.Equal(b) {
		t.Errorf("Cast(Raw) roundtrip failed: %v", err)
	}
	// Reshape with wrong size fails.
	if _, err := db.Funcs().CallByName("FloatArray.Reshape_2", []engine.Value{v, engine.IntValue(4), engine.IntValue(2)}); !errors.Is(err, core.ErrShape) {
		t.Errorf("bad reshape: %v", err)
	}
}

func TestStringConversion(t *testing.T) {
	db := newDB(t)
	v := mustCall(t, db, "FloatArray.Vector_3",
		engine.FloatValue(1.5), engine.FloatValue(-2), engine.FloatValue(0.25))
	s := mustCall(t, db, "FloatArray.ToString", v)
	if string(s.B) != "[1.5,-2,0.25]" {
		t.Errorf("ToString = %q", s.B)
	}
	back := mustCall(t, db, "FloatArray.FromString", engine.BinaryValue(s.B))
	a, _ := core.Wrap(v.B)
	b, err := core.Wrap(back.B)
	if err != nil || !a.Equal(b) {
		t.Errorf("FromString roundtrip failed: %v", err)
	}
}

func TestAggregatesAndReductions(t *testing.T) {
	db := newDB(t)
	v := query1(t, db, "SELECT FloatArray.Sum(FloatArray.Vector_4(1,2,3,4)) FROM dual")
	if v.F != 10 {
		t.Errorf("Sum = %v", v)
	}
	if v := query1(t, db, "SELECT FloatArray.Avg(FloatArray.Vector_4(1,2,3,4)) FROM dual"); v.F != 2.5 {
		t.Errorf("Avg = %v", v)
	}
	if v := query1(t, db, "SELECT FloatArray.Min(FloatArray.Vector_3(5,-1,2)) FROM dual"); v.F != -1 {
		t.Errorf("Min = %v", v)
	}
	if v := query1(t, db, "SELECT FloatArray.Max(FloatArray.Vector_3(5,-1,2)) FROM dual"); v.F != 5 {
		t.Errorf("Max = %v", v)
	}
	if v := query1(t, db, "SELECT FloatArray.Norm(FloatArray.Vector_2(3,4)) FROM dual"); v.F != 5 {
		t.Errorf("Norm = %v", v)
	}
	// SumDim over a 2x2 matrix: sum over axis 0 gives column sums.
	db2 := newDB(t)
	m := mustCall(t, db2, "FloatArray.Matrix_2",
		engine.FloatValue(1), engine.FloatValue(2), engine.FloatValue(3), engine.FloatValue(4))
	red := mustCall(t, db2, "FloatArray.SumDim", m, engine.IntValue(0))
	a, _ := core.Wrap(red.B)
	if a.FloatAt(0) != 3 || a.FloatAt(1) != 7 {
		t.Errorf("SumDim = %v", a.Float64s())
	}
}

func TestElementwiseTSQL(t *testing.T) {
	db := newDB(t)
	v := query1(t, db,
		"SELECT FloatArray.Dot(FloatArray.Vector_3(1,2,3), FloatArray.Vector_3(4,5,6)) FROM dual")
	if v.F != 32 {
		t.Errorf("Dot = %v", v)
	}
	sum := mustCall(t, db, "FloatArray.Add",
		mustCall(t, db, "FloatArray.Vector_2", engine.FloatValue(1), engine.FloatValue(2)),
		mustCall(t, db, "FloatArray.Vector_2", engine.FloatValue(10), engine.FloatValue(20)))
	a, _ := core.Wrap(sum.B)
	if a.FloatAt(1) != 22 {
		t.Errorf("Add = %v", a.Float64s())
	}
	sc := mustCall(t, db, "FloatArray.Scale",
		mustCall(t, db, "FloatArray.Vector_2", engine.FloatValue(1), engine.FloatValue(2)),
		engine.FloatValue(3))
	b, _ := core.Wrap(sc.B)
	if b.FloatAt(1) != 6 {
		t.Errorf("Scale = %v", b.Float64s())
	}
}

func TestConvertAcrossSchemas(t *testing.T) {
	db := newDB(t)
	iv := mustCall(t, db, "IntArray.Vector_3", engine.IntValue(1), engine.IntValue(2), engine.IntValue(3))
	fv := mustCall(t, db, "FloatArrayMax.Convert", iv)
	a, err := core.Wrap(fv.B)
	if err != nil {
		t.Fatal(err)
	}
	if a.ElemType() != core.Float64 || a.Class() != core.Max {
		t.Errorf("converted to %v %v", a.ElemType(), a.Class())
	}
	if a.FloatAt(2) != 3 {
		t.Errorf("values = %v", a.Float64s())
	}
}

func TestIntegerSchemaItemReturnsInt(t *testing.T) {
	db := newDB(t)
	v := mustCall(t, db, "BigIntArray.Item_1",
		mustCall(t, db, "BigIntArray.Vector_2", engine.IntValue(7), engine.IntValue(9)),
		engine.IntValue(1))
	if v.Kind != engine.ColInt64 || v.I != 9 {
		t.Errorf("int item = %v", v)
	}
}

func TestFFTForwardInverseTSQL(t *testing.T) {
	// The paper's §5.3 example: SET @ft = FloatArrayMax.FFTForward(@a).
	db := newDB(t)
	data := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	a, err := core.FromFloat64s(core.Max, core.Float64, data, len(data))
	if err != nil {
		t.Fatal(err)
	}
	ft := mustCall(t, db, "FloatArrayMax.FFTForward", engine.BinaryMaxValue(a.Bytes()))
	spec, err := core.Wrap(ft.B)
	if err != nil {
		t.Fatal(err)
	}
	if spec.ElemType() != core.Complex128 {
		t.Fatalf("spectrum type = %v", spec.ElemType())
	}
	// DC bin = sum of inputs.
	if got := spec.ComplexAt(0); math.Abs(real(got)-36) > 1e-9 || math.Abs(imag(got)) > 1e-9 {
		t.Errorf("DC bin = %v", got)
	}
	// Inverse returns the original (as complex with zero imag).
	back := mustCall(t, db, "DoubleComplexArrayMax.FFTInverse", ft)
	ba, _ := core.Wrap(back.B)
	for i, want := range data {
		got := ba.ComplexAt(i)
		if math.Abs(real(got)-want) > 1e-9 || math.Abs(imag(got)) > 1e-9 {
			t.Errorf("element %d = %v, want %g", i, got, want)
		}
	}
}

func TestSVDValuesTSQL(t *testing.T) {
	db := newDB(t)
	// diag(3,2) as a 2x2 max array.
	m, _ := core.FromFloat64s(core.Max, core.Float64, []float64{3, 0, 0, 2}, 2, 2)
	sv := mustCall(t, db, "FloatArrayMax.SVDValues", engine.BinaryMaxValue(m.Bytes()))
	a, _ := core.Wrap(sv.B)
	if math.Abs(a.FloatAt(0)-3) > 1e-10 || math.Abs(a.FloatAt(1)-2) > 1e-10 {
		t.Errorf("singular values = %v", a.Float64s())
	}
	// Rank check: vector input fails.
	v, _ := core.FromFloat64s(core.Max, core.Float64, []float64{1, 2}, 2)
	if _, err := db.Funcs().CallByName("FloatArrayMax.SVDValues", []engine.Value{engine.BinaryMaxValue(v.Bytes())}); !errors.Is(err, core.ErrRank) {
		t.Errorf("rank check: %v", err)
	}
}

func TestSolveAndMatMulTSQL(t *testing.T) {
	db := newDB(t)
	// A = [[2,0],[0,4]], b = (2, 8) -> x = (1, 2).
	a, _ := core.FromFloat64s(core.Max, core.Float64, []float64{2, 0, 0, 4}, 2, 2)
	b, _ := core.FromFloat64s(core.Max, core.Float64, []float64{2, 8}, 2)
	x := mustCall(t, db, "FloatArrayMax.Solve", engine.BinaryMaxValue(a.Bytes()), engine.BinaryMaxValue(b.Bytes()))
	xa, _ := core.Wrap(x.B)
	if math.Abs(xa.FloatAt(0)-1) > 1e-10 || math.Abs(xa.FloatAt(1)-2) > 1e-10 {
		t.Errorf("Solve = %v", xa.Float64s())
	}
	c := mustCall(t, db, "FloatArrayMax.MatMul", engine.BinaryMaxValue(a.Bytes()), engine.BinaryMaxValue(a.Bytes()))
	ca, _ := core.Wrap(c.B)
	if ca.FloatAt(0) != 4 || ca.FloatAt(3) != 16 {
		t.Errorf("MatMul = %v", ca.Float64s())
	}
	nn := mustCall(t, db, "FloatArrayMax.NNLS", engine.BinaryMaxValue(a.Bytes()), engine.BinaryMaxValue(b.Bytes()))
	na, _ := core.Wrap(nn.B)
	if math.Abs(na.FloatAt(0)-1) > 1e-8 || math.Abs(na.FloatAt(1)-2) > 1e-8 {
		t.Errorf("NNLS = %v", na.Float64s())
	}
}

func TestFromQueryReplacesConcatUDA(t *testing.T) {
	// §4.2/§5.1: assemble an array from a table of (index-vector, value)
	// rows via a query-driven function.
	db := newDB(t)
	s, _ := engine.NewSchema(
		engine.Column{Name: "id", Type: engine.ColInt64},
		engine.Column{Name: "ix", Type: engine.ColVarBinary},
		engine.Column{Name: "v", Type: engine.ColFloat64},
	)
	tbl, err := db.CreateTable("cells", s)
	if err != nil {
		t.Fatal(err)
	}
	id := int64(0)
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			ix := core.IntVector(i, j)
			if err := tbl.Insert([]engine.Value{
				engine.IntValue(id), engine.BinaryValue(ix.Bytes()), engine.FloatValue(float64(10*i + j)),
			}); err != nil {
				t.Fatal(err)
			}
			id++
		}
	}
	dims := core.IntVector(3, 4)
	out := mustCall(t, db, "FloatArrayMax.FromQuery",
		engine.BinaryValue(dims.Bytes()),
		engine.BinaryValue([]byte("SELECT ix, v FROM cells")))
	a, err := core.Wrap(out.B)
	if err != nil {
		t.Fatal(err)
	}
	if a.Rank() != 2 || a.Dim(0) != 3 || a.Dim(1) != 4 {
		t.Fatalf("dims = %v", a.Dims())
	}
	v, _ := a.Item(2, 3)
	if v != 23 {
		t.Errorf("Item(2,3) = %g", v)
	}
	// VectorFromQuery over plain integer indexes.
	s2, _ := engine.NewSchema(
		engine.Column{Name: "i", Type: engine.ColInt64},
		engine.Column{Name: "val", Type: engine.ColFloat64},
	)
	t2, _ := db.CreateTable("vcells", s2)
	for i := int64(0); i < 5; i++ {
		if err := t2.Insert([]engine.Value{engine.IntValue(i), engine.FloatValue(float64(i * i))}); err != nil {
			t.Fatal(err)
		}
	}
	vec := mustCall(t, db, "FloatArrayMax.VectorFromQuery",
		engine.IntValue(5), engine.BinaryValue([]byte("SELECT i, val FROM vcells")))
	va, _ := core.Wrap(vec.B)
	if va.FloatAt(4) != 16 {
		t.Errorf("vector = %v", va.Float64s())
	}
	// Bad inner query surfaces the error.
	if _, err := db.Funcs().CallByName("FloatArrayMax.VectorFromQuery", []engine.Value{
		engine.IntValue(5), engine.BinaryValue([]byte("SELECT nope FROM vcells")),
	}); err == nil {
		t.Error("bad inner query must fail")
	}
}

func TestSchemasEnumeration(t *testing.T) {
	ss := Schemas()
	if len(ss) != 16 {
		t.Fatalf("schemas = %d, want 16 (8 types x 2 classes)", len(ss))
	}
	found := map[string]bool{}
	for _, s := range ss {
		found[s.Name] = true
	}
	for _, want := range []string{"FloatArray", "FloatArrayMax", "IntArray", "IntArrayMax", "DoubleComplexArrayMax"} {
		if !found[want] {
			t.Errorf("schema %s missing", want)
		}
	}
}

func TestRegisteredFunctionCount(t *testing.T) {
	db := newDB(t)
	n := len(db.Funcs().Names())
	// 16 schemas x (16 vector + 3 matrix + 6 item + 6 update + 1 subarray
	// + 6 reshape + 6 cast + raw/length/rank/dim/tostring/fromstring(6)
	// + 6 aggregates + 4 reductions + 4 binops + scale/dot/abs(3) + convert)
	// = 16 x 62 = 992, plus math (8) and query funcs (16).
	if n < 900 {
		t.Errorf("only %d functions registered", n)
	}
}
