// Package tsql binds the array library to the SQL surface exactly as the
// paper organizes it (§5.1): "functions under separate schemas by
// underlying data-type and storage class ... Functions acting on short
// (on-page) arrays of type INT are under the schema IntArray, the ones
// acting on max arrays (out-of-page) are under IntArrayMax etc.", with
// numbered variants standing in for variadic parameters ("denoted with
// an underscore and a number").
//
// RegisterAll installs, for every element type and both storage classes:
//
//	Vector_1..Vector_16      constructors
//	Matrix_2..Matrix_4       square-matrix constructors (N² arguments)
//	Item_1..Item_6           element access by index
//	UpdateItem_1..UpdateItem_6 value-semantics element update
//	Subarray                 contiguous subsetting with collapse flag
//	Reshape_1..Reshape_6     dimension recast (size preserved)
//	Cast_1..Cast_6 / Raw     header prefix / strip
//	Length / Rank / Dim      shape inspection
//	ToString / FromString    text conversion
//	Sum / Avg / Min / Max / Std / Norm  whole-array aggregates
//	SumDim / AvgDim / MinDim / MaxDim   per-axis reductions
//	Add / Sub / Mul / Div / Scale / Dot / Abs  elementwise math
//	Convert                  conversion from any array type/class
//
// plus the math-library entry points of §5.3 (FFTForward, FFTInverse,
// SVDValues, Solve, NNLS, MatMul under FloatArrayMax) and the
// query-driven Concat replacement of §4.2 (FromQuery).
package tsql

import (
	"fmt"

	"sqlarray/internal/core"
	"sqlarray/internal/engine"
)

// schemaInfo describes one T-SQL schema (element type + storage class).
type schemaInfo struct {
	name  string
	elem  core.ElemType
	class core.StorageClass
}

// Schemas lists every registered schema name with its element type and
// storage class, in registration order.
func Schemas() []struct {
	Name  string
	Elem  core.ElemType
	Class core.StorageClass
} {
	out := make([]struct {
		Name  string
		Elem  core.ElemType
		Class core.StorageClass
	}, 0, len(allSchemas()))
	for _, s := range allSchemas() {
		out = append(out, struct {
			Name  string
			Elem  core.ElemType
			Class core.StorageClass
		}{s.name, s.elem, s.class})
	}
	return out
}

func allSchemas() []schemaInfo {
	base := []struct {
		name string
		elem core.ElemType
	}{
		{"TinyIntArray", core.Int8},
		{"SmallIntArray", core.Int16},
		{"IntArray", core.Int32},
		{"BigIntArray", core.Int64},
		{"RealArray", core.Float32},
		{"FloatArray", core.Float64},
		{"ComplexArray", core.Complex64},
		{"DoubleComplexArray", core.Complex128},
	}
	out := make([]schemaInfo, 0, 2*len(base))
	for _, b := range base {
		out = append(out, schemaInfo{b.name, b.elem, core.Short})
		out = append(out, schemaInfo{b.name + "Max", b.elem, core.Max})
	}
	return out
}

// maxVectorArgs bounds the numbered Vector_N constructors.
const maxVectorArgs = 16

// maxIndexArgs bounds Item_N / UpdateItem_N / Reshape_N / Cast_N.
const maxIndexArgs = 6

// RegisterAll installs the complete function surface into db's registry.
func RegisterAll(db *engine.DB) {
	reg := db.Funcs()
	for _, s := range allSchemas() {
		registerSchema(reg, s)
	}
	registerMath(reg)
	registerQueryFuncs(db)
}

// arrayResult wraps an array back into a SQL value of the array's class.
func arrayResult(a *core.Array) engine.Value {
	if a.Class() == core.Max {
		return engine.BinaryMaxValue(a.Bytes())
	}
	return engine.BinaryValue(a.Bytes())
}

// arrayArg decodes and type-checks an array argument against the schema,
// implementing the paper's runtime type-flag check ("we can detect type
// mismatches at runtime when the blobs are passed to the wrong
// functions", §3.5).
func arrayArg(s schemaInfo, v engine.Value) (*core.Array, error) {
	b, err := v.AsBinary()
	if err != nil {
		return nil, err
	}
	a, err := core.Wrap(b)
	if err != nil {
		return nil, err
	}
	if a.ElemType() != s.elem {
		return nil, fmt.Errorf("%w: %s function got %s array",
			core.ErrTypeMismatch, s.name, a.ElemType())
	}
	if a.Class() != s.class {
		return nil, fmt.Errorf("%w: %s function got %s array",
			core.ErrClassMismatch, s.name, a.Class())
	}
	return a, nil
}

// anyArrayArg decodes an array argument without schema checks (used by
// Convert and index-vector parameters).
func anyArrayArg(v engine.Value) (*core.Array, error) {
	b, err := v.AsBinary()
	if err != nil {
		return nil, err
	}
	return core.Wrap(b)
}

// intVectorArg decodes an index-vector parameter (any integer array).
func intVectorArg(v engine.Value) ([]int, error) {
	a, err := anyArrayArg(v)
	if err != nil {
		return nil, err
	}
	if !a.ElemType().IsInteger() || a.Rank() != 1 {
		h := a.Header()
		return nil, fmt.Errorf("%w: index parameter must be an integer vector, got %s",
			core.ErrTypeMismatch, h.String())
	}
	return a.Ints(), nil
}

func intArgs(args []engine.Value) ([]int, error) {
	out := make([]int, len(args))
	for i, a := range args {
		n, err := a.AsInt()
		if err != nil {
			return nil, fmt.Errorf("argument %d: %w", i+1, err)
		}
		out[i] = int(n)
	}
	return out, nil
}

func registerSchema(reg *engine.FuncRegistry, s schemaInfo) {
	name := func(fn string) string { return s.name + "." + fn }

	// Vector_N constructors.
	for n := 1; n <= maxVectorArgs; n++ {
		n := n
		reg.Register(fmt.Sprintf("%s.Vector_%d", s.name, n), n,
			func(args []engine.Value) (engine.Value, error) {
				a, err := core.New(s.class, s.elem, n)
				if err != nil {
					return engine.Null, err
				}
				for i, v := range args {
					if s.elem.IsInteger() {
						x, err := v.AsInt()
						if err != nil {
							return engine.Null, err
						}
						a.SetIntAt(i, x)
					} else {
						x, err := v.AsFloat()
						if err != nil {
							return engine.Null, err
						}
						a.SetFloatAt(i, x)
					}
				}
				return arrayResult(a), nil
			})
	}

	// Matrix_N constructors: side N, N² column-major arguments.
	for n := 2; n <= 4; n++ {
		n := n
		reg.Register(fmt.Sprintf("%s.Matrix_%d", s.name, n), n*n,
			func(args []engine.Value) (engine.Value, error) {
				a, err := core.New(s.class, s.elem, n, n)
				if err != nil {
					return engine.Null, err
				}
				for i, v := range args {
					x, err := v.AsFloat()
					if err != nil {
						return engine.Null, err
					}
					a.SetFloatAt(i, x)
				}
				return arrayResult(a), nil
			})
	}

	// Item_N accessors and UpdateItem_N.
	for n := 1; n <= maxIndexArgs; n++ {
		n := n
		reg.Register(fmt.Sprintf("%s.Item_%d", s.name, n), n+1,
			func(args []engine.Value) (engine.Value, error) {
				a, err := arrayArg(s, args[0])
				if err != nil {
					return engine.Null, err
				}
				idx, err := intArgs(args[1:])
				if err != nil {
					return engine.Null, err
				}
				if s.elem.IsInteger() {
					v, err := a.ItemInt(idx...)
					if err != nil {
						return engine.Null, err
					}
					return engine.IntValue(v), nil
				}
				v, err := a.Item(idx...)
				if err != nil {
					return engine.Null, err
				}
				return engine.FloatValue(v), nil
			})
		reg.Register(fmt.Sprintf("%s.UpdateItem_%d", s.name, n), n+2,
			func(args []engine.Value) (engine.Value, error) {
				a, err := arrayArg(s, args[0])
				if err != nil {
					return engine.Null, err
				}
				idx, err := intArgs(args[1 : len(args)-1])
				if err != nil {
					return engine.Null, err
				}
				v, err := args[len(args)-1].AsFloat()
				if err != nil {
					return engine.Null, err
				}
				// T-SQL value semantics: SET @a = UpdateItem_1(@a, 3, 4.5)
				out := a.Clone()
				if err := out.UpdateItem(v, idx...); err != nil {
					return engine.Null, err
				}
				return arrayResult(out), nil
			})
	}

	// Subarray(a, offsetVec, sizeVec, collapse).
	reg.Register(name("Subarray"), 4, func(args []engine.Value) (engine.Value, error) {
		a, err := arrayArg(s, args[0])
		if err != nil {
			return engine.Null, err
		}
		offset, err := intVectorArg(args[1])
		if err != nil {
			return engine.Null, err
		}
		size, err := intVectorArg(args[2])
		if err != nil {
			return engine.Null, err
		}
		collapse, err := args[3].AsInt()
		if err != nil {
			return engine.Null, err
		}
		sub, err := a.Subarray(offset, size, collapse != 0)
		if err != nil {
			return engine.Null, err
		}
		return arrayResult(sub), nil
	})

	// Reshape_N(a, d1..dN) and Cast_N(raw, d1..dN).
	for n := 1; n <= maxIndexArgs; n++ {
		n := n
		reg.Register(fmt.Sprintf("%s.Reshape_%d", s.name, n), n+1,
			func(args []engine.Value) (engine.Value, error) {
				a, err := arrayArg(s, args[0])
				if err != nil {
					return engine.Null, err
				}
				dims, err := intArgs(args[1:])
				if err != nil {
					return engine.Null, err
				}
				out, err := a.Reshape(dims...)
				if err != nil {
					return engine.Null, err
				}
				return arrayResult(out), nil
			})
		reg.Register(fmt.Sprintf("%s.Cast_%d", s.name, n), n+1,
			func(args []engine.Value) (engine.Value, error) {
				raw, err := args[0].AsBinary()
				if err != nil {
					return engine.Null, err
				}
				dims, err := intArgs(args[1:])
				if err != nil {
					return engine.Null, err
				}
				a, err := core.Cast(s.class, s.elem, raw, dims...)
				if err != nil {
					return engine.Null, err
				}
				return arrayResult(a), nil
			})
	}

	// Raw, shape inspection, string conversion.
	reg.Register(name("Raw"), 1, func(args []engine.Value) (engine.Value, error) {
		a, err := arrayArg(s, args[0])
		if err != nil {
			return engine.Null, err
		}
		return engine.BinaryMaxValue(a.Raw()), nil
	})
	reg.Register(name("Length"), 1, func(args []engine.Value) (engine.Value, error) {
		a, err := arrayArg(s, args[0])
		if err != nil {
			return engine.Null, err
		}
		return engine.IntValue(int64(a.Len())), nil
	})
	reg.Register(name("Rank"), 1, func(args []engine.Value) (engine.Value, error) {
		a, err := arrayArg(s, args[0])
		if err != nil {
			return engine.Null, err
		}
		return engine.IntValue(int64(a.Rank())), nil
	})
	reg.Register(name("Dim"), 2, func(args []engine.Value) (engine.Value, error) {
		a, err := arrayArg(s, args[0])
		if err != nil {
			return engine.Null, err
		}
		k, err := args[1].AsInt()
		if err != nil {
			return engine.Null, err
		}
		if k < 0 || int(k) >= a.Rank() {
			return engine.Null, fmt.Errorf("%w: dim %d of rank-%d array", core.ErrRank, k, a.Rank())
		}
		return engine.IntValue(int64(a.Dim(int(k)))), nil
	})
	reg.Register(name("ToString"), 1, func(args []engine.Value) (engine.Value, error) {
		a, err := arrayArg(s, args[0])
		if err != nil {
			return engine.Null, err
		}
		return engine.BinaryValue([]byte(core.Format(a))), nil
	})
	reg.Register(name("FromString"), 1, func(args []engine.Value) (engine.Value, error) {
		b, err := args[0].AsBinary()
		if err != nil {
			return engine.Null, err
		}
		a, err := core.Parse(s.elem, string(b))
		if err != nil {
			return engine.Null, err
		}
		out, err := a.ConvertClass(s.class)
		if err != nil {
			return engine.Null, err
		}
		return arrayResult(out), nil
	})

	// Whole-array aggregates.
	aggs := map[string]func(a *core.Array) float64{
		"Sum":  (*core.Array).Sum,
		"Avg":  (*core.Array).Mean,
		"Min":  func(a *core.Array) float64 { lo, _ := a.MinMax(); return lo },
		"Max":  func(a *core.Array) float64 { _, hi := a.MinMax(); return hi },
		"Std":  (*core.Array).Std,
		"Norm": (*core.Array).Norm2,
	}
	for fn, impl := range aggs {
		impl := impl
		reg.Register(name(fn), 1, func(args []engine.Value) (engine.Value, error) {
			a, err := arrayArg(s, args[0])
			if err != nil {
				return engine.Null, err
			}
			return engine.FloatValue(impl(a)), nil
		})
	}

	// Per-axis reductions.
	reductions := map[string]core.ReduceOp{
		"SumDim": core.ReduceSum, "AvgDim": core.ReduceMean,
		"MinDim": core.ReduceMin, "MaxDim": core.ReduceMax,
	}
	for fn, op := range reductions {
		op := op
		reg.Register(name(fn), 2, func(args []engine.Value) (engine.Value, error) {
			a, err := arrayArg(s, args[0])
			if err != nil {
				return engine.Null, err
			}
			axis, err := args[1].AsInt()
			if err != nil {
				return engine.Null, err
			}
			out, err := a.ReduceDim(int(axis), op)
			if err != nil {
				return engine.Null, err
			}
			return arrayResult(out), nil
		})
	}

	// Elementwise binary operations (operands must match this schema).
	binops := map[string]func(a, b *core.Array) (*core.Array, error){
		"Add": core.Add, "Sub": core.Sub, "Mul": core.Mul, "Div": core.Div,
	}
	for fn, impl := range binops {
		impl := impl
		reg.Register(name(fn), 2, func(args []engine.Value) (engine.Value, error) {
			a, err := arrayArg(s, args[0])
			if err != nil {
				return engine.Null, err
			}
			b, err := arrayArg(s, args[1])
			if err != nil {
				return engine.Null, err
			}
			out, err := impl(a, b)
			if err != nil {
				return engine.Null, err
			}
			return arrayResult(out), nil
		})
	}
	reg.Register(name("Scale"), 2, func(args []engine.Value) (engine.Value, error) {
		a, err := arrayArg(s, args[0])
		if err != nil {
			return engine.Null, err
		}
		f, err := args[1].AsFloat()
		if err != nil {
			return engine.Null, err
		}
		out, err := a.Scale(f)
		if err != nil {
			return engine.Null, err
		}
		return arrayResult(out), nil
	})
	reg.Register(name("Dot"), 2, func(args []engine.Value) (engine.Value, error) {
		a, err := arrayArg(s, args[0])
		if err != nil {
			return engine.Null, err
		}
		b, err := arrayArg(s, args[1])
		if err != nil {
			return engine.Null, err
		}
		d, err := core.Dot(a, b)
		if err != nil {
			return engine.Null, err
		}
		return engine.FloatValue(d), nil
	})
	reg.Register(name("Abs"), 1, func(args []engine.Value) (engine.Value, error) {
		a, err := arrayArg(s, args[0])
		if err != nil {
			return engine.Null, err
		}
		out, err := a.Abs()
		if err != nil {
			return engine.Null, err
		}
		return arrayResult(out), nil
	})

	// Convert: accept any array, convert to this schema's type and class.
	reg.Register(name("Convert"), 1, func(args []engine.Value) (engine.Value, error) {
		a, err := anyArrayArg(args[0])
		if err != nil {
			return engine.Null, err
		}
		t, err := a.ConvertElem(s.elem)
		if err != nil {
			return engine.Null, err
		}
		out, err := t.ConvertClass(s.class)
		if err != nil {
			return engine.Null, err
		}
		return arrayResult(out), nil
	})
}
