package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// Handler exposes a registry over HTTP — the monitoring plane a
// long-running server (sqlsh .serve-metrics today, sqlarrayd later)
// mounts:
//
//	/metrics      Prometheus text exposition format
//	/debug/vars   expvar-compatible JSON object
//	/             a plain-text index of the two
//
// The handler is read-only and safe for concurrent use.
func Handler(r *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		r.WriteJSON(w)
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "sqlarray metrics")
		fmt.Fprintln(w, "  /metrics      Prometheus text format")
		fmt.Fprintln(w, "  /debug/vars   expvar-style JSON")
	})
	return mux
}

// PromName maps a registry name to its Prometheus series name:
// "pages.logical_reads" becomes "sqlarray_pages_logical_reads", with
// counters additionally suffixed "_total" by the exporter.
func PromName(name string) string {
	return "sqlarray_" + strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			return r
		default:
			return '_'
		}
	}, name)
}

// WritePrometheus writes every metric in the text exposition format.
// Counters and funcs export as counters ("_total"), gauges as gauges,
// histograms as native histograms with cumulative "le" buckets and
// seconds units.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, name := range r.names() {
		e := r.entries[name]
		switch e.kind {
		case kindCounter, kindFunc:
			pn := PromName(name) + "_total"
			fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", pn, pn, e.value())
		case kindGauge:
			var g int64
			for _, gg := range e.gauges {
				g += gg.Load()
			}
			pn := PromName(name)
			fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", pn, pn, g)
		case kindHistogram:
			h := e.histSnapshot()
			pn := PromName(name) + "_seconds"
			fmt.Fprintf(w, "# TYPE %s histogram\n", pn)
			var cum uint64
			for i, n := range h.Buckets {
				cum += n
				if b := BucketBound(i); b >= 0 {
					fmt.Fprintf(w, "%s_bucket{le=\"%g\"} %d\n", pn, b.Seconds(), cum)
				} else {
					fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", pn, cum)
				}
			}
			fmt.Fprintf(w, "%s_sum %g\n", pn, float64(h.SumNS)/1e9)
			fmt.Fprintf(w, "%s_count %d\n", pn, h.Count)
		}
	}
}

// WriteJSON writes every metric as one JSON object keyed by registered
// name (expvar-style). Scalars are numbers; histograms are objects
// with count, sum_ns and the per-bucket counts.
func (r *Registry) WriteJSON(w io.Writer) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]any, len(r.entries))
	for name, e := range r.entries {
		if e.kind == kindHistogram {
			h := e.histSnapshot()
			buckets := make(map[string]uint64, len(h.Buckets))
			for i, n := range h.Buckets {
				if n == 0 {
					continue
				}
				if b := BucketBound(i); b >= 0 {
					buckets[b.String()] = n
				} else {
					buckets["+Inf"] = n
				}
			}
			out[name] = map[string]any{
				"count":   h.Count,
				"sum_ns":  h.SumNS,
				"buckets": buckets,
			}
			continue
		}
		if e.kind == kindGauge {
			var g int64
			for _, gg := range e.gauges {
				g += gg.Load()
			}
			out[name] = g
			continue
		}
		out[name] = e.value()
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(out)
}
