package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"time"
)

// PlanNode is one operator in a rendered query plan. The executor
// (sqlmini) builds a tree of these alongside the operator pipeline;
// EXPLAIN renders the bare tree, EXPLAIN ANALYZE and the slow-query
// log render it with the runtime annotations filled in.
//
// Runtime metrics are inclusive of the node's children, matching the
// usual EXPLAIN ANALYZE convention: a Filter's Pages count includes
// the pages its Scan child read, and the root node's totals equal the
// whole query's buffer-pool delta.
type PlanNode struct {
	Name     string      `json:"name"`             // operator, e.g. "Scan", "Filter", "Gather"
	Detail   string      `json:"detail,omitempty"` // e.g. `range scan keys [10, 99]`
	Children []*PlanNode `json:"children,omitempty"`

	// Filled in by EXPLAIN ANALYZE / slow-query instrumentation.
	Analyzed bool          `json:"analyzed,omitempty"`
	Rows     int64         `json:"rows,omitempty"`    // rows emitted by this node
	Batches  int64         `json:"batches,omitempty"` // nextBatch / next calls that produced rows
	Time     time.Duration `json:"time_ns,omitempty"` // wall time inside this subtree
	Pages    uint64        `json:"pages,omitempty"`   // logical page reads in this subtree
	Chunks   uint64        `json:"chunks,omitempty"`  // blob chunk reads in this subtree

	// Extra holds operator-specific annotations (workers=4,
	// partitions pruned, …) rendered after the built-in metrics, in
	// order.
	Extra []Metric `json:"extra,omitempty"`
}

// Metric is one named annotation on a plan node.
type Metric struct {
	Name  string `json:"name"`
	Value string `json:"value"`
}

// AddExtra appends a formatted annotation.
func (n *PlanNode) AddExtra(name, format string, args ...any) {
	n.Extra = append(n.Extra, Metric{Name: name, Value: fmt.Sprintf(format, args...)})
}

// Render returns the tree in the indented text form EXPLAIN prints,
// one operator per line, children indented under their parent.
func (n *PlanNode) Render() string {
	var b strings.Builder
	n.render(&b, "", true)
	return strings.TrimRight(b.String(), "\n")
}

func (n *PlanNode) render(b *strings.Builder, prefix string, root bool) {
	head := prefix
	childPrefix := prefix
	if !root {
		head += "-> "
		childPrefix += "   "
	}
	b.WriteString(head)
	b.WriteString(n.Name)
	if n.Detail != "" {
		b.WriteString(" ")
		b.WriteString(n.Detail)
	}
	b.WriteString("\n")
	if n.Analyzed {
		b.WriteString(childPrefix)
		fmt.Fprintf(b, "   (actual rows=%d batches=%d time=%s pages=%d chunks=%d",
			n.Rows, n.Batches, n.Time.Round(time.Microsecond), n.Pages, n.Chunks)
		for _, m := range n.Extra {
			fmt.Fprintf(b, " %s=%s", m.Name, m.Value)
		}
		b.WriteString(")\n")
	} else if len(n.Extra) > 0 {
		b.WriteString(childPrefix)
		b.WriteString("   (")
		for i, m := range n.Extra {
			if i > 0 {
				b.WriteString(" ")
			}
			fmt.Fprintf(b, "%s=%s", m.Name, m.Value)
		}
		b.WriteString(")\n")
	}
	for _, c := range n.Children {
		c.render(b, childPrefix, false)
	}
}

// Walk visits the node and all descendants in depth-first order.
func (n *PlanNode) Walk(fn func(*PlanNode)) {
	fn(n)
	for _, c := range n.Children {
		c.Walk(fn)
	}
}

// QueryTrace is the per-query trace context threaded through
// sqlmini.ExecOptions. Point a zero-valued trace at a query (set
// opts.Trace = &t) and after the query's Rows are closed it holds the
// annotated plan, the wall time, and the registry counter deltas the
// query caused. EXPLAIN ANALYZE and the slow-query log are both thin
// renderings of a QueryTrace.
type QueryTrace struct {
	SQL      string        // statement text, when the caller had it
	Start    time.Time     // set by the executor at open
	Duration time.Duration // set when the query's Rows close
	Plan     *PlanNode     // annotated operator tree
	Delta    Snapshot      // registry deltas over the query (nil without a registry)
}

// Summary renders the one-query report the slow-query log emits: the
// headline timing plus the annotated plan tree.
func (t *QueryTrace) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "query: %s\n", t.SQL)
	fmt.Fprintf(&b, "duration: %s  pages_read=%d  blob_chunks=%d  wal_records=%d\n",
		t.Duration.Round(time.Microsecond),
		t.Delta.Get("pages.logical_reads"),
		t.Delta.Get("blob.chunk_reads"),
		t.Delta.Get("wal.records"))
	if t.Plan != nil {
		b.WriteString(t.Plan.Render())
	}
	return b.String()
}

// SlowLogEntry is the JSON shape of one slow-query log line.
type SlowLogEntry struct {
	SQL        string    `json:"sql"`
	Start      time.Time `json:"start"`
	DurationMS float64   `json:"duration_ms"`
	Pages      uint64    `json:"pages_read"`
	Chunks     uint64    `json:"blob_chunk_reads"`
	WALRecords uint64    `json:"wal_records"`
	Plan       *PlanNode `json:"plan,omitempty"`
}

// SlowLog is a structured slow-query log: one JSON object per line,
// safe for concurrent use. Attach one to ExecOptions.SlowQueryLog and
// set SlowQueryThreshold; every query slower than the threshold emits
// its ANALYZE-style trace here.
type SlowLog struct {
	mu sync.Mutex
	w  io.Writer
}

// NewSlowLog creates a slow-query log writing JSON lines to w.
func NewSlowLog(w io.Writer) *SlowLog { return &SlowLog{w: w} }

// DefaultSlowLog writes to stderr; used when a threshold is set with
// no explicit log.
var DefaultSlowLog = NewSlowLog(os.Stderr)

// Log emits one trace as a JSON line. Rendering happens outside the
// lock; only the write is serialized.
func (l *SlowLog) Log(t *QueryTrace) {
	e := SlowLogEntry{
		SQL:        t.SQL,
		Start:      t.Start,
		DurationMS: float64(t.Duration) / float64(time.Millisecond),
		Pages:      t.Delta.Get("pages.logical_reads"),
		Chunks:     t.Delta.Get("blob.chunk_reads"),
		WALRecords: t.Delta.Get("wal.records"),
		Plan:       t.Plan,
	}
	line, err := json.Marshal(e)
	if err != nil {
		return
	}
	line = append(line, '\n')
	l.mu.Lock()
	defer l.mu.Unlock()
	_, _ = l.w.Write(line)
}
