// Package obs is the engine-wide observability plane: a stdlib-only
// metrics registry plus the per-query trace machinery behind EXPLAIN
// ANALYZE and the slow-query log.
//
// Every subsystem counter — buffer-pool I/O, blob chunk reads, WAL
// appends, DML row counts — is an obs handle (Counter, Gauge,
// Histogram) registered by name in a Registry. Handles are plain
// atomics: updating one on a hot path is a single atomic add with no
// map lookup, no lock and no allocation, so instrumentation stays on
// unconditionally. The registry is only consulted when someone *reads*
// the metrics: Snapshot for per-query deltas, Handler (http.go) for
// the Prometheus/expvar export, sqlsh `.stats` for the shell report.
//
// Several handles may be attached under one name; the registry sums
// them on read. A partitioned store opens every member engine.DB
// against the same registry, so the member pools' logical reads all
// fold into a single "pages.logical_reads" series — this is what makes
// scatter-gather queries visible to `.stats` and the HTTP endpoint
// instead of only the primary DB (see partition and cmd/sqlsh).
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric. The zero value is
// ready to use; embed it by value in a subsystem's counter block and
// attach it to a Registry with Attach. Must not be copied after first
// use (it embeds an atomic).
type Counter struct {
	atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Gauge is a metric that can go up and down (pinned frames, open
// snapshots). The zero value is ready to use. Must not be copied after
// first use.
type Gauge struct {
	atomic.Int64
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Histogram bucket upper bounds: powers of four from 1µs to ~17s, plus
// a +Inf overflow bucket. Fixed at compile time so Observe is a shift
// loop over a constant table — no per-histogram configuration, no
// allocation.
var histBounds = [...]time.Duration{
	1 * time.Microsecond,
	4 * time.Microsecond,
	16 * time.Microsecond,
	64 * time.Microsecond,
	256 * time.Microsecond,
	1024 * time.Microsecond,
	4096 * time.Microsecond,
	16384 * time.Microsecond,
	65536 * time.Microsecond,
	262144 * time.Microsecond,
	1048576 * time.Microsecond,
	4194304 * time.Microsecond,
	16777216 * time.Microsecond,
}

// HistBuckets is the number of histogram buckets including the +Inf
// overflow bucket.
const HistBuckets = len(histBounds) + 1

// Histogram is a fixed-bucket latency histogram. The zero value is
// ready to use. Must not be copied after first use.
type Histogram struct {
	buckets [HistBuckets]Counter
	count   Counter
	sumNS   Counter
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	i := 0
	for i < len(histBounds) && d > histBounds[i] {
		i++
	}
	h.buckets[i].Inc()
	h.count.Inc()
	h.sumNS.Add(uint64(d))
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// SumNS returns the total of all observed durations in nanoseconds.
func (h *Histogram) SumNS() uint64 { return h.sumNS.Load() }

// HistSnapshot is a point-in-time copy of one histogram.
type HistSnapshot struct {
	Buckets [HistBuckets]uint64 // per-bucket (non-cumulative) counts
	Count   uint64
	SumNS   uint64
}

func (h *Histogram) snapshot() HistSnapshot {
	var s HistSnapshot
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	s.Count = h.count.Load()
	s.SumNS = h.sumNS.Load()
	return s
}

// BucketBound returns the upper bound of bucket i, or -1 for the +Inf
// overflow bucket.
func BucketBound(i int) time.Duration {
	if i < len(histBounds) {
		return histBounds[i]
	}
	return -1
}

// metricKind discriminates registry entries.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindFunc
	kindHistogram
)

// entry is one named metric. Counters, gauges and funcs may have
// several sources attached under the same name (partition members
// sharing a registry); reads sum them.
type entry struct {
	kind     metricKind
	counters []*Counter
	gauges   []*Gauge
	funcs    []func() uint64
	hists    []*Histogram
}

// histSnapshot merges every attached histogram into one snapshot.
func (e *entry) histSnapshot() HistSnapshot {
	var m HistSnapshot
	for _, h := range e.hists {
		s := h.snapshot()
		for i := range s.Buckets {
			m.Buckets[i] += s.Buckets[i]
		}
		m.Count += s.Count
		m.SumNS += s.SumNS
	}
	return m
}

func (e *entry) value() uint64 {
	var v uint64
	switch e.kind {
	case kindCounter:
		for _, c := range e.counters {
			v += c.Load()
		}
	case kindGauge:
		var g int64
		for _, gg := range e.gauges {
			g += gg.Load()
		}
		if g > 0 {
			v = uint64(g)
		}
	case kindFunc:
		for _, f := range e.funcs {
			v += f()
		}
	}
	return v
}

// Registry maps metric names to handles. Registration takes a write
// lock; reads (Snapshot, export) take a read lock; handle updates take
// no lock at all. Names are conventionally "subsystem.metric_name"
// (pages.logical_reads, wal.syncs); the HTTP exporter maps them to
// Prometheus form (http.go).
type Registry struct {
	mu      sync.RWMutex
	entries map[string]*entry
}

// New creates an empty registry.
func New() *Registry {
	return &Registry{entries: make(map[string]*entry)}
}

func (r *Registry) get(name string, kind metricKind) *entry {
	e, ok := r.entries[name]
	if !ok {
		e = &entry{kind: kind}
		r.entries[name] = e
	}
	if e.kind != kind {
		panic("obs: metric " + name + " registered with conflicting kinds")
	}
	return e
}

// Counter returns the counter registered under name, creating it on
// first use. Callers cache the handle; updates through it never touch
// the registry again.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.get(name, kindCounter)
	if len(e.counters) == 0 {
		e.counters = append(e.counters, &Counter{})
	}
	return e.counters[0]
}

// Attach registers an externally owned counter under name. Several
// counters may share a name — reads sum them — which is how partition
// member databases fold their per-pool counters into one series.
func (r *Registry) Attach(name string, c *Counter) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.get(name, kindCounter)
	for _, have := range e.counters {
		if have == c {
			return
		}
	}
	e.counters = append(e.counters, c)
}

// Gauge returns the gauge registered under name, creating it on first
// use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.get(name, kindGauge)
	if len(e.gauges) == 0 {
		e.gauges = append(e.gauges, &Gauge{})
	}
	return e.gauges[0]
}

// AttachGauge registers an externally owned gauge under name; reads
// sum all attached gauges.
func (r *Registry) AttachGauge(name string, g *Gauge) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.get(name, kindGauge)
	for _, have := range e.gauges {
		if have == g {
			return
		}
	}
	e.gauges = append(e.gauges, g)
}

// Func registers a computed metric: fn is called on every read. Use it
// for values derived from live state (pinned frames, catalog row
// counts) rather than maintained counters. Several funcs may share a
// name; reads sum them.
func (r *Registry) Func(name string, fn func() uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.get(name, kindFunc)
	e.funcs = append(e.funcs, fn)
}

// Histogram returns the first histogram registered under name,
// creating one on first use. Databases sharing a registry share the
// series.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.get(name, kindHistogram)
	if len(e.hists) == 0 {
		e.hists = append(e.hists, &Histogram{})
	}
	return e.hists[0]
}

// AttachHistogram registers an externally owned histogram under name.
// Several histograms may share a name; reads merge their buckets.
func (r *Registry) AttachHistogram(name string, h *Histogram) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.get(name, kindHistogram)
	for _, have := range e.hists {
		if have == h {
			return
		}
	}
	e.hists = append(e.hists, h)
}

// Snapshot is a point-in-time capture of every scalar metric in a
// registry, keyed by registered name. Histograms contribute
// "<name>.count" and "<name>.sum_ns" entries so deltas over them work
// like any counter.
type Snapshot map[string]uint64

// Snapshot captures every metric. Funcs are invoked; counters and
// gauges are atomically loaded. The capture is not a consistent cut
// across metrics — concurrent writers may land between loads — which
// is fine for deltas and export.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := make(Snapshot, len(r.entries)+8)
	for name, e := range r.entries {
		if e.kind == kindHistogram {
			h := e.histSnapshot()
			s[name+".count"] = h.Count
			s[name+".sum_ns"] = h.SumNS
			continue
		}
		s[name] = e.value()
	}
	return s
}

// Delta returns s minus before, clamping each metric at zero (funcs
// and gauges may legitimately decrease). Metrics absent from before
// are reported at their full value.
func (s Snapshot) Delta(before Snapshot) Snapshot {
	d := make(Snapshot, len(s))
	for name, v := range s {
		b := before[name]
		if v >= b {
			d[name] = v - b
		} else {
			d[name] = 0
		}
	}
	return d
}

// Get returns the metric's value, or zero when absent.
func (s Snapshot) Get(name string) uint64 { return s[name] }

// Names returns the snapshot's metric names in sorted order.
func (s Snapshot) Names() []string {
	names := make([]string, 0, len(s))
	for name := range s {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// names returns all registered names sorted; callers hold at least the
// read lock.
func (r *Registry) names() []string {
	names := make([]string, 0, len(r.entries))
	for name := range r.entries {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
