package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterAndGauge(t *testing.T) {
	r := New()
	c := r.Counter("x.count")
	c.Inc()
	c.Add(4)
	if got := r.Snapshot().Get("x.count"); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	g := r.Gauge("x.open")
	g.Inc()
	g.Inc()
	g.Dec()
	if got := r.Snapshot().Get("x.open"); got != 1 {
		t.Errorf("gauge = %d, want 1", got)
	}
	// Same name returns the same handle.
	if r.Counter("x.count") != c || r.Gauge("x.open") != g {
		t.Error("create-or-get returned a new handle for an existing name")
	}
}

// TestMultiAttachSums is the property the partitioned-store .stats fix
// rides on: several owners attached under one name read as one series.
func TestMultiAttachSums(t *testing.T) {
	r := New()
	var a, b, c Counter
	a.Add(10)
	b.Add(20)
	c.Add(30)
	r.Attach("pool.reads", &a)
	r.Attach("pool.reads", &b)
	r.Attach("pool.reads", &c)
	r.Attach("pool.reads", &b) // duplicate attach is a no-op
	if got := r.Snapshot().Get("pool.reads"); got != 60 {
		t.Errorf("summed counter = %d, want 60", got)
	}

	var g1, g2 Gauge
	g1.Add(5)
	g2.Add(-2)
	r.AttachGauge("pool.pinned", &g1)
	r.AttachGauge("pool.pinned", &g2)
	if got := r.Snapshot().Get("pool.pinned"); got != 3 {
		t.Errorf("summed gauge = %d, want 3", got)
	}

	r.Func("derived", func() uint64 { return 7 })
	r.Func("derived", func() uint64 { return 8 })
	if got := r.Snapshot().Get("derived"); got != 15 {
		t.Errorf("summed func = %d, want 15", got)
	}
}

func TestKindConflictPanics(t *testing.T) {
	r := New()
	r.Counter("x")
	defer func() {
		if recover() == nil {
			t.Error("registering a gauge under a counter name did not panic")
		}
	}()
	r.Gauge("x")
}

func TestHistogram(t *testing.T) {
	r := New()
	h := r.Histogram("lat")
	h.Observe(2 * time.Microsecond)   // bucket le=4µs
	h.Observe(2 * time.Microsecond)   // same
	h.Observe(100 * time.Millisecond) // le=262144µs
	h.Observe(time.Hour)              // +Inf overflow
	h.Observe(-time.Second)           // clamped to 0, first bucket

	if h.Count() != 5 {
		t.Errorf("count = %d, want 5", h.Count())
	}
	s := h.snapshot()
	if s.Buckets[0] != 1 || s.Buckets[1] != 2 || s.Buckets[HistBuckets-1] != 1 {
		t.Errorf("bucket layout wrong: %v", s.Buckets)
	}
	var total uint64
	for _, n := range s.Buckets {
		total += n
	}
	if total != s.Count {
		t.Errorf("bucket sum %d != count %d", total, s.Count)
	}

	// Merged multi-attach histograms.
	var h2 Histogram
	h2.Observe(3 * time.Microsecond)
	r.AttachHistogram("lat", &h2)
	snap := r.Snapshot()
	if snap.Get("lat.count") != 6 {
		t.Errorf("merged count = %d, want 6", snap.Get("lat.count"))
	}
}

func TestSnapshotDelta(t *testing.T) {
	r := New()
	c := r.Counter("n")
	c.Add(10)
	before := r.Snapshot()
	c.Add(7)
	d := r.Snapshot().Delta(before)
	if d.Get("n") != 7 {
		t.Errorf("delta = %d, want 7", d.Get("n"))
	}
	// A shrinking func metric clamps at zero instead of wrapping.
	v := uint64(100)
	r.Func("shrinks", func() uint64 { return v })
	before = r.Snapshot()
	v = 40
	if got := r.Snapshot().Delta(before).Get("shrinks"); got != 0 {
		t.Errorf("shrinking delta = %d, want 0 (clamped)", got)
	}
}

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"pages.logical_reads": "sqlarray_pages_logical_reads",
		"wal.sync_latency":    "sqlarray_wal_sync_latency",
		"weird-name/x":        "sqlarray_weird_name_x",
	}
	for in, want := range cases {
		if got := PromName(in); got != want {
			t.Errorf("PromName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestWritePrometheus(t *testing.T) {
	r := New()
	r.Counter("pages.reads").Add(42)
	r.Gauge("engine.open_snapshots").Add(3)
	r.Histogram("wal.sync_latency").Observe(2 * time.Microsecond)

	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"# TYPE sqlarray_pages_reads_total counter",
		"sqlarray_pages_reads_total 42",
		"# TYPE sqlarray_engine_open_snapshots gauge",
		"sqlarray_engine_open_snapshots 3",
		"# TYPE sqlarray_wal_sync_latency_seconds histogram",
		`sqlarray_wal_sync_latency_seconds_bucket{le="+Inf"} 1`,
		"sqlarray_wal_sync_latency_seconds_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
	// Histogram buckets must be cumulative: the 4µs bucket already
	// holds the 2µs observation.
	if !strings.Contains(out, `le="4e-06"} 1`) {
		t.Errorf("cumulative bucket missing:\n%s", out)
	}
}

func TestConcurrentHandleUpdates(t *testing.T) {
	r := New()
	c := r.Counter("hot")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				_ = r.Snapshot() // concurrent reads
			}
		}()
	}
	wg.Wait()
	if got := r.Snapshot().Get("hot"); got != 8000 {
		t.Errorf("counter = %d, want 8000", got)
	}
}
