package obs_test

import (
	"bufio"
	"io"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"sqlarray/internal/engine"
	"sqlarray/internal/obs"
	"sqlarray/internal/sqlmini"
	"sqlarray/internal/wal"
)

// statsNames are the registry series sqlsh `.stats` prints. The
// Prometheus endpoint must serve the same values for all of them —
// this test diffs the two representations after real engine work.
var statsNames = []string{
	"pages.logical_reads", "pages.physical_reads", "pages.bytes_read",
	"pages.admissions", "pages.promotions", "pages.scan_evictions",
	"pages.cow_copies", "pages.snapshot_reads", "pages.versions_retired",
	"blob.chunk_reads", "blob.directory_reads", "blob.bytes_read",
	"blob.stream_calls", "blob.chunks_written",
	"blob.compressed_bytes_written", "blob.compressed_bytes_read",
	"blob.bytes_written",
	"wal.records", "wal.bytes_logged", "wal.syncs",
	"wal.group_commit_piggybacks",
	"engine.rows_inserted", "engine.commits",
}

// scrapeProm parses the text exposition format into name -> value for
// plain counter/gauge samples (histogram series are skipped).
func scrapeProm(t *testing.T, r io.Reader) map[string]uint64 {
	t.Helper()
	out := map[string]uint64{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") || strings.Contains(line, "{") {
			continue
		}
		name, val, ok := strings.Cut(line, " ")
		if !ok {
			t.Fatalf("unparseable sample %q", line)
		}
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		out[name] = uint64(f)
	}
	return out
}

func TestPrometheusMatchesStatsCounters(t *testing.T) {
	l, err := wal.Open(wal.NewMemStorage(), wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	db, err := engine.Open(engine.Options{WAL: l})
	if err != nil {
		t.Fatal(err)
	}
	s, err := engine.NewSchema(
		engine.Column{Name: "id", Type: engine.ColInt64},
		engine.Column{Name: "v", Type: engine.ColFloat64},
	)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := db.CreateTable("t", s)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 500; i++ {
		if err := tbl.Insert([]engine.Value{engine.IntValue(i), engine.FloatValue(float64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := sqlmini.Run(db, "SELECT COUNT(*) FROM t WHERE v > 10"); err != nil {
		t.Fatal(err)
	}

	// What .stats reads...
	snap := db.Metrics().Snapshot()
	// ...and what the HTTP endpoint serves.
	srv := httptest.NewServer(obs.Handler(db.Metrics()))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	prom := scrapeProm(t, resp.Body)

	for _, name := range statsNames {
		pn := obs.PromName(name) + "_total"
		got, ok := prom[pn]
		if !ok {
			t.Errorf("endpoint is missing %s (for %s)", pn, name)
			continue
		}
		if want := snap.Get(name); got != want {
			t.Errorf("%s: endpoint serves %d, .stats snapshot has %d", name, got, want)
		}
	}
	// Sanity: the workload actually moved the interesting counters, so
	// the equality above is not vacuous.
	for _, name := range []string{"pages.logical_reads", "engine.rows_inserted", "engine.commits"} {
		if snap.Get(name) == 0 {
			t.Errorf("%s = 0 after 500 inserts and a scan; workload not measured", name)
		}
	}
}
