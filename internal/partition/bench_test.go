package partition

import (
	"math"
	"testing"

	"sqlarray/internal/engine"
	"sqlarray/internal/sfc"
)

// benchGridRows builds one row per cell of a side³ grid keyed by Morton
// code (see gridRows; this variant is sized for benchmarks).
func benchGridRows(tb testing.TB, side uint32) [][]engine.Value {
	tb.Helper()
	rows := make([][]engine.Value, 0, int(side)*int(side)*int(side))
	for x := uint32(0); x < side; x++ {
		for y := uint32(0); y < side; y++ {
			for z := uint32(0); z < side; z++ {
				code, err := sfc.Encode3D(x, y, z)
				if err != nil {
					tb.Fatal(err)
				}
				rows = append(rows, []engine.Value{
					engine.IntValue(int64(code)),
					engine.FloatValue(float64(x+y+z) / 3),
				})
			}
		}
	}
	return rows
}

func benchSchema(tb testing.TB) engine.Schema {
	tb.Helper()
	s, err := engine.NewSchema(
		engine.Column{Name: "zindex", Type: engine.ColInt64},
		engine.Column{Name: "density", Type: engine.ColFloat64},
	)
	if err != nil {
		tb.Fatal(err)
	}
	return s
}

// BenchmarkPartitionedScanSpeedup answers a box query over a Morton-
// keyed side³ grid two ways: a full scan of the unpartitioned table
// with a decode filter, and the partitioned store's Box path — Morton
// range decomposition, partition pruning, clipped range scans. The box
// is one octant, so the Box path touches 1 of 8 members.
func BenchmarkPartitionedScanSpeedup(b *testing.B) {
	const side = 32
	rows := benchGridRows(b, side)
	lo, hi := [3]uint32{0, 0, 0}, [3]uint32{side/2 - 1, side/2 - 1, side/2 - 1}

	b.Run("full-scan", func(b *testing.B) {
		db := engine.NewMemDB()
		tbl, err := db.CreateTable("cube", benchSchema(b))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := tbl.BulkLoad(engine.NewValuesSource(rows), engine.BulkOptions{}); err != nil {
			b.Fatal(err)
		}
		r0 := db.Pool().Stats().LogicalReads
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			snap := db.Snapshot()
			cur, err := tbl.CursorRangeAt(snap, math.MinInt64, math.MaxInt64)
			if err != nil {
				b.Fatal(err)
			}
			found := 0
			for cur.Next() {
				x, y, z := sfc.Decode3D(uint64(cur.Key()))
				if x >= lo[0] && x <= hi[0] && y >= lo[1] && y <= hi[1] && z >= lo[2] && z <= hi[2] {
					found++
				}
			}
			cur.Close()
			snap.Release()
			if found != len(rows)/8 {
				b.Fatalf("found %d, want %d", found, len(rows)/8)
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(db.Pool().Stats().LogicalReads-r0)/float64(b.N), "pages/op")
	})

	b.Run("box-partitioned", func(b *testing.B) {
		spec, err := MortonSpec8(side)
		if err != nil {
			b.Fatal(err)
		}
		dbs := make([]*engine.DB, spec.Parts())
		for i := range dbs {
			dbs[i] = engine.NewMemDB()
		}
		st, err := New(spec, dbs)
		if err != nil {
			b.Fatal(err)
		}
		if err := st.CreateTable("cube", benchSchema(b)); err != nil {
			b.Fatal(err)
		}
		if _, err := st.BulkLoad("cube", engine.NewValuesSource(rows), engine.BulkOptions{}); err != nil {
			b.Fatal(err)
		}
		poolReads := func() uint64 {
			var n uint64
			for i := 0; i < spec.Parts(); i++ {
				n += st.Member(i).Pool().Stats().LogicalReads
			}
			return n
		}
		r0 := poolReads()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			keys, _, err := st.Box("cube", lo, hi, 0)
			if err != nil {
				b.Fatal(err)
			}
			if len(keys) != len(rows)/8 {
				b.Fatalf("box found %d, want %d", len(keys), len(rows)/8)
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(poolReads()-r0)/float64(b.N), "pages/op")
	})
}
