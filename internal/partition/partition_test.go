package partition

import (
	"math"
	"testing"

	"sqlarray/internal/engine"
	"sqlarray/internal/sfc"
	"sqlarray/internal/sqlmini"
)

const side = 16 // 16³ = 4096 grid points, one row per Morton code

func gridSchema(t *testing.T) engine.Schema {
	t.Helper()
	s, err := engine.NewSchema(
		engine.Column{Name: "zindex", Type: engine.ColInt64},
		engine.Column{Name: "density", Type: engine.ColFloat64},
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// gridRows builds one row per cell of the side³ grid, keyed by Morton
// code, in z-shuffled (code) order.
func gridRows(t *testing.T) [][]engine.Value {
	t.Helper()
	n := side * side * side
	rows := make([][]engine.Value, 0, n)
	for x := uint32(0); x < side; x++ {
		for y := uint32(0); y < side; y++ {
			for z := uint32(0); z < side; z++ {
				code, err := sfc.Encode3D(x, y, z)
				if err != nil {
					t.Fatal(err)
				}
				rows = append(rows, []engine.Value{
					engine.IntValue(int64(code)),
					engine.FloatValue(float64(x+y+z) / 3),
				})
			}
		}
	}
	return rows
}

// mortonStore builds the 8-way octant-partitioned store loaded with the
// full grid.
func mortonStore(t *testing.T) *Store {
	t.Helper()
	spec, err := MortonSpec8(side)
	if err != nil {
		t.Fatal(err)
	}
	dbs := make([]*engine.DB, spec.Parts())
	for i := range dbs {
		dbs[i] = engine.NewMemDB()
	}
	st, err := New(spec, dbs)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.CreateTable("cube", gridSchema(t)); err != nil {
		t.Fatal(err)
	}
	bs, err := st.BulkLoad("cube", engine.NewValuesSource(gridRows(t)), engine.BulkOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if bs.Rows != side*side*side {
		t.Fatalf("loaded %d rows, want %d", bs.Rows, side*side*side)
	}
	return st
}

func TestBulkLoadRoutesByKey(t *testing.T) {
	st := mortonStore(t)
	// The octant split divides the code space evenly: 512 rows each.
	for i := 0; i < st.Spec().Parts(); i++ {
		tbl, err := st.Member(i).Table("cube")
		if err != nil {
			t.Fatal(err)
		}
		if got := tbl.Rows(); got != 512 {
			t.Errorf("member %d holds %d rows, want 512", i, got)
		}
		lo, hi := st.Spec().Range(i)
		snap := st.Member(i).Snapshot()
		cur, err := tbl.CursorRangeAt(snap, math.MinInt64, math.MaxInt64)
		if err != nil {
			t.Fatal(err)
		}
		for cur.Next() {
			if cur.Key() < lo || cur.Key() > hi {
				t.Fatalf("member %d holds key %d outside [%d, %d]", i, cur.Key(), lo, hi)
			}
		}
		cur.Close()
		snap.Release()
	}
	if n, err := st.Rows("cube"); err != nil || n != side*side*side {
		t.Fatalf("Rows = %d, %v", n, err)
	}
}

func TestScatterQueryOverStore(t *testing.T) {
	st := mortonStore(t)
	res, ss, err := st.Query("SELECT COUNT(*), AVG(density) FROM cube", sqlmini.ExecOptions{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if ss.Scanned != 8 {
		t.Errorf("unbounded aggregate scanned %d members, want 8", ss.Scanned)
	}
	if res.Rows[0][0].I != side*side*side {
		t.Errorf("COUNT(*) = %d", res.Rows[0][0].I)
	}
	// mean of (x+y+z)/3 over the cube = mean coordinate = (side-1)/2.
	if got, want := res.Rows[0][1].F, float64(side-1)/2; math.Abs(got-want) > 1e-9 {
		t.Errorf("AVG(density) = %g, want %g", got, want)
	}
	// A key-bounded aggregate prunes members.
	_, ss, err = st.Query("SELECT COUNT(*) FROM cube WHERE zindex < 512", sqlmini.ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if ss.Scanned != 1 {
		t.Errorf("octant-0 count scanned %d members, want 1", ss.Scanned)
	}
}

// boxBrute returns the expected hit count for an inclusive box by
// brute-force enumeration.
func boxBrute(lo, hi [3]uint32) int {
	n := 0
	for x := lo[0]; x <= hi[0]; x++ {
		for y := lo[1]; y <= hi[1]; y++ {
			for z := lo[2]; z <= hi[2]; z++ {
				n++
			}
		}
	}
	return n
}

func checkBox(t *testing.T, st *Store, lo, hi [3]uint32, maxRanges int) BoxStats {
	t.Helper()
	keys, bs, err := st.Box("cube", lo, hi, maxRanges)
	if err != nil {
		t.Fatal(err)
	}
	if want := boxBrute(lo, hi); len(keys) != want {
		t.Fatalf("box %v..%v: %d keys, want %d", lo, hi, len(keys), want)
	}
	for i, k := range keys {
		x, y, z := sfc.Decode3D(uint64(k))
		if x < lo[0] || x > hi[0] || y < lo[1] || y > hi[1] || z < lo[2] || z > hi[2] {
			t.Fatalf("key %d decodes to (%d,%d,%d), outside box", k, x, y, z)
		}
		if i > 0 && keys[i-1] >= k {
			t.Fatalf("keys out of order: %d then %d", keys[i-1], k)
		}
	}
	return bs
}

func TestBoxQueryCorrectness(t *testing.T) {
	st := mortonStore(t)
	// Inside one octant.
	bs := checkBox(t, st, [3]uint32{0, 0, 0}, [3]uint32{3, 3, 3}, 0)
	if bs.PartitionsScanned != 1 {
		t.Errorf("corner box scanned %d members, want 1", bs.PartitionsScanned)
	}
	// Straddling every octant boundary.
	bs = checkBox(t, st, [3]uint32{6, 6, 6}, [3]uint32{9, 9, 9}, 0)
	if bs.PartitionsScanned != 8 {
		t.Errorf("center box scanned %d members, want 8", bs.PartitionsScanned)
	}
	// Coarse covering under a tight range cap must stay exact: the
	// decoder filter drops the extra codes the coarse ranges sweep in.
	tight := checkBox(t, st, [3]uint32{1, 2, 3}, [3]uint32{9, 6, 12}, 4)
	exact := checkBox(t, st, [3]uint32{1, 2, 3}, [3]uint32{9, 6, 12}, 0)
	if tight.Ranges > 4+1 {
		t.Errorf("capped decomposition produced %d ranges", tight.Ranges)
	}
	if tight.KeysExamined < exact.KeysExamined {
		t.Errorf("coarse cover examined %d keys, exact %d — cap should widen, not narrow",
			tight.KeysExamined, exact.KeysExamined)
	}
}

// TestBoxPrunesPartitionsAndPages is the acceptance check for the
// partitioned layout: a Morton-decomposed box query must touch strictly
// fewer partitions AND strictly fewer pages than scanning the whole
// table, not merely return the right rows.
func TestBoxPrunesPartitionsAndPages(t *testing.T) {
	st := mortonStore(t)

	// Unpartitioned twin: same rows in one database.
	mono := engine.NewMemDB()
	tbl, err := mono.CreateTable("cube", gridSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.BulkLoad(engine.NewValuesSource(gridRows(t)), engine.BulkOptions{}); err != nil {
		t.Fatal(err)
	}

	// An octant-aligned box decomposes into one code range; a ragged box
	// at this tiny grid size pays more per-range tree descents than the
	// whole (18-page) table costs to scan, so alignment is what makes
	// the page comparison meaningful at test scale.
	lo, hi := [3]uint32{0, 0, 0}, [3]uint32{7, 7, 7}

	poolReads := func() uint64 {
		var n uint64
		for i := 0; i < st.Spec().Parts(); i++ {
			n += st.Member(i).Pool().Stats().LogicalReads
		}
		return n
	}

	r0 := poolReads()
	keys, bs, err := st.Box("cube", lo, hi, 0)
	if err != nil {
		t.Fatal(err)
	}
	boxPages := poolReads() - r0

	if want := boxBrute(lo, hi); len(keys) != want {
		t.Fatalf("box returned %d keys, want %d", len(keys), want)
	}
	if bs.PartitionsScanned >= bs.Partitions {
		t.Fatalf("box scanned %d of %d partitions — no partition pruning", bs.PartitionsScanned, bs.Partitions)
	}

	// Full scan of the unpartitioned twin with the same decode filter.
	m0 := mono.Pool().Stats().LogicalReads
	snap := mono.Snapshot()
	cur, err := tbl.CursorRangeAt(snap, math.MinInt64, math.MaxInt64)
	if err != nil {
		t.Fatal(err)
	}
	found := 0
	for cur.Next() {
		x, y, z := sfc.Decode3D(uint64(cur.Key()))
		if x >= lo[0] && x <= hi[0] && y >= lo[1] && y <= hi[1] && z >= lo[2] && z <= hi[2] {
			found++
		}
	}
	if err := cur.Err(); err != nil {
		t.Fatal(err)
	}
	cur.Close()
	snap.Release()
	fullPages := mono.Pool().Stats().LogicalReads - m0

	if found != len(keys) {
		t.Fatalf("full scan found %d, box found %d", found, len(keys))
	}
	if boxPages >= fullPages {
		t.Fatalf("box query read %d pages, full scan %d — no page pruning", boxPages, fullPages)
	}
	t.Logf("box: %d/%d partitions, %d pages; full scan: %d pages (%.1fx fewer)",
		bs.PartitionsScanned, bs.Partitions, boxPages, fullPages, float64(fullPages)/float64(boxPages))
}
