// Package partition splits a table across multiple database files by
// clustered-key range. The paper's two large deployments both shard
// this way: the turbulence database spreads its Morton-ordered cube
// keys over many database files, and the N-body archive splits
// snapshots across servers by (step, particle) key range. A partition
// here is a full engine.DB — its own disk file, buffer pool and WAL —
// so partitions load in parallel (each member has its own write latch)
// and crash-recover independently.
//
// Queries run scatter-gather through sqlmini.ScatterExec: sargable
// WHERE bounds prune members whose key range cannot match, survivors
// scan under their own snapshots on worker goroutines, and partials
// merge in key order. For spatial data keyed by 3-D Morton code, Box
// decomposes an axis-aligned box into code ranges (sfc.BoxRanges3D)
// and scans only the members and key ranges the box touches.
package partition

import (
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"

	"sqlarray/internal/engine"
	"sqlarray/internal/sfc"
	"sqlarray/internal/sqlmini"
)

// Mode names how keys were laid out across the partitions. Both modes
// split the key space by range; MortonMode additionally declares that
// keys are 3-D Morton codes, enabling Box queries.
type Mode string

const (
	RangeMode  Mode = "range"
	MortonMode Mode = "morton3d"
)

// Spec describes the split of the clustered-key space: Splits holds the
// ascending inclusive upper bounds of every partition but the last,
// which covers the remainder. len(Splits)+1 partitions total.
type Spec struct {
	Mode   Mode    `json:"mode"`
	Splits []int64 `json:"splits"`
}

// Parts returns the number of partitions the spec describes.
func (s Spec) Parts() int { return len(s.Splits) + 1 }

// Range returns the inclusive key range of partition i.
func (s Spec) Range(i int) (lo, hi int64) {
	lo = math.MinInt64
	if i > 0 {
		lo = s.Splits[i-1] + 1
	}
	hi = math.MaxInt64
	if i < len(s.Splits) {
		hi = s.Splits[i]
	}
	return lo, hi
}

// locate returns the partition index owning key.
func (s Spec) locate(key int64) int {
	return sort.Search(len(s.Splits), func(i int) bool { return key <= s.Splits[i] })
}

func (s Spec) validate() error {
	switch s.Mode {
	case RangeMode, MortonMode:
	default:
		return fmt.Errorf("partition: unknown mode %q", s.Mode)
	}
	for i := 1; i < len(s.Splits); i++ {
		if s.Splits[i] <= s.Splits[i-1] {
			return fmt.Errorf("partition: splits must ascend, got %d after %d", s.Splits[i], s.Splits[i-1])
		}
	}
	return nil
}

// MortonSpec8 builds the canonical eight-way Morton split: one
// partition per octant of a side^3 cube (side a power of two ≤ 2^21).
// Octant o covers codes [o·side³/8, (o+1)·side³/8) because the three
// top coordinate bits are the three top code bits.
func MortonSpec8(side uint32) (Spec, error) {
	if side == 0 || side&(side-1) != 0 || side > sfc.Max3DCoord+1 {
		return Spec{}, fmt.Errorf("partition: side must be a power of two in [1, 2^21], got %d", side)
	}
	total := uint64(side) * uint64(side) * uint64(side)
	splits := make([]int64, 7)
	for o := uint64(1); o < 8; o++ {
		splits[o-1] = int64(o*total/8) - 1
	}
	return Spec{Mode: MortonMode, Splits: splits}, nil
}

// Store is a table space split across member databases per a Spec.
type Store struct {
	spec Spec
	dbs  []*engine.DB
}

// New assembles a partitioned store from pre-opened member databases,
// one per spec range, ordered by key range.
func New(spec Spec, dbs []*engine.DB) (*Store, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	if len(dbs) != spec.Parts() {
		return nil, fmt.Errorf("partition: spec wants %d members, got %d", spec.Parts(), len(dbs))
	}
	return &Store{spec: spec, dbs: dbs}, nil
}

// Spec returns the store's partitioning spec.
func (s *Store) Spec() Spec { return s.spec }

// Member returns partition i's database (benchmarks read its counters).
func (s *Store) Member(i int) *engine.DB { return s.dbs[i] }

// Partitions adapts the store for sqlmini's scatter-gather executor.
func (s *Store) Partitions() []sqlmini.Partition {
	parts := make([]sqlmini.Partition, len(s.dbs))
	for i, db := range s.dbs {
		lo, hi := s.spec.Range(i)
		parts[i] = sqlmini.Partition{DB: db, Lo: lo, Hi: hi}
	}
	return parts
}

// CreateTable creates the table in every member database.
func (s *Store) CreateTable(name string, schema engine.Schema) error {
	for i, db := range s.dbs {
		if _, err := db.CreateTable(name, schema); err != nil {
			return fmt.Errorf("partition %d: %w", i, err)
		}
	}
	return nil
}

// BulkLoad drains src, routes every row to the member owning its key,
// and runs the per-member bulk loads concurrently — each member has its
// own write latch, WAL and group-commit stream, so the loads overlap
// end to end. Per-member all-or-nothing durability carries over; a
// failure reports which members had already committed.
func (s *Store) BulkLoad(table string, src engine.BulkSource, opts engine.BulkOptions) (engine.BulkStats, error) {
	keyCol, err := s.keyColumn(table)
	if err != nil {
		return engine.BulkStats{}, err
	}
	buckets := make([][][]engine.Value, len(s.dbs))
	for {
		vals, err := src.Next()
		if err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return engine.BulkStats{}, err
		}
		if keyCol >= len(vals) {
			return engine.BulkStats{}, fmt.Errorf("partition: row has %d values, key is column %d", len(vals), keyCol)
		}
		key, err := vals[keyCol].AsInt()
		if err != nil {
			return engine.BulkStats{}, err
		}
		i := s.spec.locate(key)
		buckets[i] = append(buckets[i], vals)
	}

	stats := make([]engine.BulkStats, len(s.dbs))
	errs := make([]error, len(s.dbs))
	var wg sync.WaitGroup
	for i, rows := range buckets {
		if len(rows) == 0 {
			continue
		}
		wg.Add(1)
		go func(i int, rows [][]engine.Value) {
			defer wg.Done()
			tbl, err := s.dbs[i].Table(table)
			if err != nil {
				errs[i] = err
				return
			}
			stats[i], errs[i] = tbl.BulkLoad(engine.NewValuesSource(rows), opts)
		}(i, rows)
	}
	wg.Wait()

	var total engine.BulkStats
	var committed, failed []int
	for i := range s.dbs {
		if errs[i] != nil {
			failed = append(failed, i)
			continue
		}
		if len(buckets[i]) > 0 {
			committed = append(committed, i)
		}
		total.Rows += stats[i].Rows
		total.RowBytes += stats[i].RowBytes
		total.BlobBytes += stats[i].BlobBytes
		total.LeafPages += stats[i].LeafPages
		total.BlobPages += stats[i].BlobPages
	}
	if len(failed) > 0 {
		return total, fmt.Errorf("partition: load failed on member(s) %v (committed on %v): %w",
			failed, committed, errs[failed[0]])
	}
	return total, nil
}

// Query executes one SELECT scatter-gather across the partitions.
func (s *Store) Query(query string, opts sqlmini.ExecOptions) (*sqlmini.Result, sqlmini.ScatterStats, error) {
	return sqlmini.ScatterRun(s.Partitions(), query, opts)
}

// Explain renders the scatter-gather plan for a query. It accepts
// either "EXPLAIN [ANALYZE] SELECT ..." or a bare SELECT (treated as
// plain EXPLAIN). ANALYZE executes the statement on every live member
// and annotates the tree with per-partition runtime metrics.
func (s *Store) Explain(query string, opts sqlmini.ExecOptions) (string, sqlmini.ScatterStats, error) {
	stmt, err := sqlmini.ParseStatement(query)
	if err != nil {
		return "", sqlmini.ScatterStats{}, err
	}
	var ex *sqlmini.ExplainStmt
	switch t := stmt.(type) {
	case *sqlmini.ExplainStmt:
		ex = t
	case *sqlmini.SelectStmt:
		ex = &sqlmini.ExplainStmt{Stmt: t}
	default:
		return "", sqlmini.ScatterStats{}, fmt.Errorf("partition: Explain supports SELECT, got %T", stmt)
	}
	return sqlmini.ScatterExplain(s.Partitions(), ex, opts)
}

// Rows sums the table's row count over the members.
func (s *Store) Rows(table string) (int64, error) {
	var n int64
	for _, db := range s.dbs {
		tbl, err := db.Table(table)
		if err != nil {
			return 0, err
		}
		n += tbl.Rows()
	}
	return n, nil
}

// keyColumn returns the clustered-key column index of table, which must
// agree across members (CreateTable enforces it).
func (s *Store) keyColumn(table string) (int, error) {
	tbl, err := s.dbs[0].Table(table)
	if err != nil {
		return 0, err
	}
	return tbl.Schema().Key, nil
}

// BoxStats reports how much of a partitioned Morton table a box query
// touched, against the total it would have touched as a full scan.
type BoxStats struct {
	Ranges            int // Morton code ranges the box decomposed into
	Partitions        int // members of the store
	PartitionsScanned int // members at least one range intersected
	KeysExamined      int // keys the range scans yielded before the box filter
}

// Box returns, in ascending key order, the keys of table whose 3-D
// Morton-decoded coordinates lie inside the inclusive box [lo, hi].
// The box decomposes into Morton code ranges; members whose key range
// intersects no code range are never touched, and each survivor scans
// only the intersecting ranges under one snapshot. Codes from coarse
// covering ranges (maxRanges cap) are filtered out by decoding.
func (s *Store) Box(table string, lo, hi [3]uint32, maxRanges int) ([]int64, BoxStats, error) {
	stats := BoxStats{Partitions: len(s.dbs)}
	if s.spec.Mode != MortonMode {
		return nil, stats, fmt.Errorf("partition: Box requires %q mode, store is %q", MortonMode, s.spec.Mode)
	}
	ranges, err := sfc.BoxRanges3D(lo, hi, maxRanges)
	if err != nil {
		return nil, stats, err
	}
	stats.Ranges = len(ranges)

	// Per-member work list: the code ranges clipped to its key range.
	type span struct{ lo, hi int64 } // inclusive
	work := make([][]span, len(s.dbs))
	for _, r := range ranges {
		rLo, rHi := int64(r.Lo), int64(r.Hi-1) // codes fit in 63 bits
		for i := s.spec.locate(rLo); i < len(s.dbs); i++ {
			pLo, pHi := s.spec.Range(i)
			if pLo > rHi {
				break
			}
			work[i] = append(work[i], span{maxI64(rLo, pLo), minI64(rHi, pHi)})
		}
	}

	type partHits struct {
		keys     []int64
		examined int
		err      error
	}
	hits := make([]partHits, len(s.dbs))
	var wg sync.WaitGroup
	for i, spans := range work {
		if len(spans) == 0 {
			continue
		}
		stats.PartitionsScanned++
		wg.Add(1)
		go func(i int, spans []span) {
			defer wg.Done()
			tbl, err := s.dbs[i].Table(table)
			if err != nil {
				hits[i].err = err
				return
			}
			snap := s.dbs[i].Snapshot()
			defer snap.Release()
			for _, sp := range spans {
				cur, err := tbl.CursorRangeAt(snap, sp.lo, sp.hi)
				if err != nil {
					hits[i].err = err
					return
				}
				for cur.Next() {
					hits[i].examined++
					x, y, z := sfc.Decode3D(uint64(cur.Key()))
					if x >= lo[0] && x <= hi[0] && y >= lo[1] && y <= hi[1] && z >= lo[2] && z <= hi[2] {
						hits[i].keys = append(hits[i].keys, cur.Key())
					}
				}
				err = cur.Err()
				cur.Close()
				if err != nil {
					hits[i].err = err
					return
				}
			}
		}(i, spans)
	}
	wg.Wait()

	var keys []int64
	for i := range hits {
		if hits[i].err != nil {
			return nil, stats, hits[i].err
		}
		stats.KeysExamined += hits[i].examined
		keys = append(keys, hits[i].keys...) // partition order = key order
	}
	return keys, stats, nil
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
